// CSCW: the paper's Figure 2 as a running application.
//
// A shared whiteboard is assembled from four components spread over
// three nodes:
//
//	server      — "whiteboard" (application logic: Board port, emits
//	              StrokeAdded events)
//	workstation — "display" (paint functions; fixed to its host) and two
//	              replaceable GUI parts that consume StrokeAdded events
//	              and draw through the Display port
//	pda         — a thin client with nothing installed: it uses the
//	              Board interface remotely
//
// Every arrow of Fig. 2 is a port connection or event link declared in
// the application assembly; GUI parts belong to the same component model
// as the rest of the application and are replaced at run time by
// re-deploying with a different version requirement.
//
// Run with: go run ./examples/cscw
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"corbalc"
	"corbalc/internal/assembly"
	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/events"
	"corbalc/internal/ior"
	"corbalc/internal/node"
	"corbalc/internal/orb"
	"corbalc/internal/simnet"
	"corbalc/internal/xmldesc"
)

const (
	canvasW = 48
	canvasH = 10
)

// displayInstance provides painting functions for one physical screen.
type displayInstance struct {
	component.Base
	mu   sync.Mutex
	grid [canvasH][canvasW]byte
}

func (di *displayInstance) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	if port != "graphics" {
		return component.ErrNoSuchPort
	}
	switch op {
	case "plot":
		x, err := args.ReadLong()
		if err != nil {
			return err
		}
		y, err := args.ReadLong()
		if err != nil {
			return err
		}
		ch, err := args.ReadChar()
		if err != nil {
			return err
		}
		di.mu.Lock()
		if x >= 0 && int(x) < canvasW && y >= 0 && int(y) < canvasH {
			di.grid[y][x] = ch
		}
		di.mu.Unlock()
		return nil
	case "render":
		di.mu.Lock()
		var sb strings.Builder
		for _, row := range di.grid {
			for _, c := range row {
				if c == 0 {
					c = '.'
				}
				sb.WriteByte(c)
			}
			sb.WriteByte('\n')
		}
		di.mu.Unlock()
		reply.WriteString(sb.String())
		return nil
	}
	return orb.BadOperation()
}

// guiPart draws strokes on the display; v1 renders '*', v2 renders the
// stroke index digit (the "enhanced presentation" replacement).
type guiPart struct {
	component.Base
	glyphDigits bool
	mu          sync.Mutex
	strokes     int
}

func (g *guiPart) ConsumeEvent(port string, ev events.Event) {
	if port != "stroke" {
		return
	}
	d := cdr.NewDecoder(ev.Data, cdr.LittleEndian)
	x, err := d.ReadLong()
	if err != nil {
		return
	}
	y, err := d.ReadLong()
	if err != nil {
		return
	}
	g.mu.Lock()
	g.strokes++
	glyph := byte('*')
	if g.glyphDigits {
		glyph = byte('0' + g.strokes%10)
	}
	g.mu.Unlock()
	disp, err := g.Ctx().UsePort("graphics")
	if err != nil {
		return
	}
	_ = disp.Invoke("plot", func(e *cdr.Encoder) {
		e.WriteLong(x)
		e.WriteLong(y)
		e.WriteChar(glyph)
	}, nil)
}

func (g *guiPart) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	if port == "widget" && op == "strokes" {
		g.mu.Lock()
		n := g.strokes
		g.mu.Unlock()
		reply.WriteLong(int32(n))
		return nil
	}
	return orb.BadOperation()
}

// boardInstance is the application logic: clients add strokes, the board
// publishes them as events for whatever GUI parts are subscribed.
type boardInstance struct {
	component.Base
	mu      sync.Mutex
	strokes int
}

func (b *boardInstance) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	if port != "board" {
		return component.ErrNoSuchPort
	}
	switch op {
	case "add_stroke":
		x, err := args.ReadLong()
		if err != nil {
			return err
		}
		y, err := args.ReadLong()
		if err != nil {
			return err
		}
		b.mu.Lock()
		b.strokes++
		b.mu.Unlock()
		payload := cdr.NewEncoder(cdr.LittleEndian)
		payload.WriteLong(x)
		payload.WriteLong(y)
		return b.Ctx().Emit("stroke_out", payload.Bytes())
	case "count":
		b.mu.Lock()
		n := b.strokes
		b.mu.Unlock()
		reply.WriteLong(int32(n))
		return nil
	}
	return orb.BadOperation()
}

func specs() (display, gui1, gui2, board *component.Spec) {
	display = &component.Spec{
		Name: "display", Version: "1.0.0", Entrypoint: "cscw/display.New",
		Mobility: "fixed", // the screen belongs to its workstation
		IDL: map[string]string{"idl/display.idl": `module cscw {
  interface Display { void plot(in long x, in long y, in char glyph); string render(); };
};`},
	}
	display.Provide("graphics", "IDL:cscw/Display:1.0")

	mkGUI := func(ver string) *component.Spec {
		s := &component.Spec{Name: "gui-strokes", Version: ver, Entrypoint: "cscw/gui.New-" + ver}
		s.Provide("widget", "IDL:cscw/GUIPart:1.0")
		s.Use("graphics", "IDL:cscw/Display:1.0", false)
		s.Consume("stroke", "IDL:cscw/StrokeAdded:1.0", true)
		return s
	}
	gui1, gui2 = mkGUI("1.0.0"), mkGUI("2.0.0")

	board = &component.Spec{
		Name: "whiteboard", Version: "1.0.0", Entrypoint: "cscw/board.New",
		IDL: map[string]string{"idl/board.idl": `module cscw {
  interface Board { void add_stroke(in long x, in long y); long count(); };
};`},
	}
	board.Provide("board", "IDL:cscw/Board:1.0")
	board.Emit("stroke_out", "IDL:cscw/StrokeAdded:1.0")
	return
}

func main() {
	impls := component.NewRegistry()
	impls.Register("cscw/display.New", func() component.Instance { return &displayInstance{} })
	impls.Register("cscw/gui.New-1.0.0", func() component.Instance { return &guiPart{} })
	impls.Register("cscw/gui.New-2.0.0", func() component.Instance { return &guiPart{glyphDigits: true} })
	impls.Register("cscw/board.New", func() component.Instance { return &boardInstance{} })

	opts := corbalc.Options{Impls: impls, UpdateInterval: 25 * time.Millisecond}
	server := corbalc.NewPeer("server", opts)
	ws := corbalc.NewPeer("workstation", opts)
	pdaOpts := opts
	pdaOpts.Profile = node.PDAProfile()
	pda := corbalc.NewPeer("pda", pdaOpts)
	defer server.Close()
	defer ws.Close()
	defer pda.Close()

	net := simnet.New(simnet.Link{Latency: 500 * time.Microsecond})
	must(net.Attach("server", server.Node.ORB()))
	must(net.Attach("workstation", ws.Node.ORB()))
	must(net.Attach("pda", pda.Node.ORB()))
	server.Bootstrap()
	must(ws.Join(server.Contact()))
	must(pda.Join(server.Contact()))

	dispSpec, gui1Spec, gui2Spec, boardSpec := specs()
	install(ws, dispSpec)
	install(ws, gui1Spec)
	install(ws, gui2Spec)
	install(server, boardSpec)
	fmt.Println("installed: display+gui on workstation, whiteboard on server; pda has nothing")

	// The Fig. 2 application: the whiteboard app window is two GUI parts
	// sharing one display; the application core runs wherever the
	// network put it.
	app := &assembly.Assembly{
		Name: "whiteboard-app",
		Instances: []assembly.InstanceDecl{
			{Name: "screen", Component: "display"},
			{Name: "part1", Component: "gui-strokes", Version: "1.*"},
			{Name: "core", Component: "whiteboard"},
		},
		Connections: []assembly.Connection{
			{From: "part1", FromPort: "graphics", To: "screen", ToPort: "graphics"},
		},
		EventLinks: []assembly.EventLink{
			{From: "core", FromPort: "stroke_out", To: "part1", ToPort: "stroke"},
		},
	}
	waitVisible(pda, "component:whiteboard")
	waitVisible(ws, "component:display")

	dep, err := assembly.Deploy(context.Background(), ws.Engine, ws.Node.ORB(), app)
	if err != nil {
		log.Fatal(err)
	}
	for inst, pl := range dep.Placements {
		fmt.Printf("  placed %-7s -> %s (%s)\n", inst, pl.Node, pl.ComponentID)
	}

	// The PDA (thin client) uses the Board interface remotely.
	boardRef := resolve(pda, "IDL:cscw/Board:1.0")
	for i := 0; i < 8; i++ {
		x, y := int32(4+i*5), int32(1+i)
		must(boardRef.Invoke("add_stroke", func(e *cdr.Encoder) {
			e.WriteLong(x)
			e.WriteLong(y)
		}, nil))
	}
	fmt.Println("pda added 8 strokes through the remote Board port")
	time.Sleep(300 * time.Millisecond) // let events cross the bridge

	screen, err := ws.Engine.ProvidePort(context.Background(), dep.Placements["screen"], "graphics")
	must(err)
	fmt.Println("\nworkstation display (gui-strokes 1.x draws '*'):")
	fmt.Print(render(ws, screen))

	// Presentation replacement (§3.1): redeploy the app requiring GUI
	// part 2.x — same model, enhanced rendering, no other change.
	dep.Teardown()
	app.Instances[1].Version = "2.*"
	dep2, err := assembly.Deploy(context.Background(), ws.Engine, ws.Node.ORB(), app)
	must(err)
	defer dep2.Teardown()
	boardRef = resolve(pda, "IDL:cscw/Board:1.0")
	for i := 0; i < 8; i++ {
		must(boardRef.Invoke("add_stroke", func(e *cdr.Encoder) {
			e.WriteLong(int32(4 + i*5))
			e.WriteLong(int32(8 - i))
		}, nil))
	}
	time.Sleep(300 * time.Millisecond)
	screen2, err := ws.Engine.ProvidePort(context.Background(), dep2.Placements["screen"], "graphics")
	must(err)
	fmt.Println("\nafter replacing the GUI part with version 2.x (digits):")
	fmt.Print(render(ws, screen2))
}

func install(p *corbalc.Peer, s *component.Spec) {
	c, err := s.Build()
	must(err)
	_, err = p.Node.InstallComponent(c)
	must(err)
}

func waitVisible(p *corbalc.Peer, key string) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if offers, err := p.Agent.Query(context.Background(), key, "*"); err == nil && len(offers) > 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatalf("%s never became visible", key)
}

func resolve(p *corbalc.Peer, repoID string) *orb.ObjectRef {
	deadline := time.Now().Add(5 * time.Second)
	for {
		ref, err := p.Engine.Resolve(context.Background(), xmldesc.Port{Kind: xmldesc.PortUses, Name: "u", RepoID: repoID})
		if err == nil {
			return p.Node.ORB().NewRef(ref)
		}
		if time.Now().After(deadline) {
			log.Fatalf("resolve %s: %v", repoID, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func render(p *corbalc.Peer, screen *ior.IOR) string {
	ref := p.Node.ORB().NewRef(screen)
	var out string
	must(ref.Invoke("render", nil, func(d *cdr.Decoder) error {
		var e error
		out, e = d.ReadString()
		return e
	}))
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Grid computing: idle/volunteer computation on CORBA-LC (paper §3.2).
//
// A data-parallel "primecount" component (declared splittable, gather
// "sum" — the aggregated-computing static property of §2.1.1) is
// installed on a set of volunteer nodes. The framework's aggregate
// runner discovers every provider through the distributed registry,
// asks the component itself to split the job (the component owns the
// decomposition), farms the chunks across the volunteers, and gathers.
// Mid-run one volunteer crashes; its chunks are resubmitted to the
// survivors, so churn costs time but never correctness.
//
// Each chunk pays a fixed simulated compute cost: the whole grid runs
// inside one process (possibly on one core), so an explicit delay stands
// in for the *remote* CPU time a real volunteer would contribute —
// wall-clock speedup then reflects how well the runner overlaps the
// volunteers.
//
// Run with: go run ./examples/grid
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"corbalc"
	"corbalc/internal/aggregate"
	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/orb"
	"corbalc/internal/simnet"
)

// chunkCost is the simulated per-chunk remote CPU time.
const chunkCost = 20 * time.Millisecond

// primeCounter implements the Aggregable contract for "count primes in
// [lo, hi)": split partitions the range, process counts primes by trial
// division, gather sums the partial counts.
type primeCounter struct{ component.Base }

// Job and result blobs are CDR streams (two ulonglongs and one
// ulonglong respectively), so the example exercises the same transfer
// syntax as the wire instead of a private encoding.

func rangeJob(lo, hi uint64) []byte {
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.WriteULongLong(lo)
	e.WriteULongLong(hi)
	return e.Bytes()
}

func rangeBounds(job []byte) (lo, hi uint64, err error) {
	d := cdr.NewDecoder(job, cdr.LittleEndian)
	if lo, err = d.ReadULongLong(); err != nil {
		return 0, 0, err
	}
	if hi, err = d.ReadULongLong(); err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

func countBlob(count uint64) []byte {
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.WriteULongLong(count)
	return e.Bytes()
}

func readCount(blob []byte) (uint64, error) {
	return cdr.NewDecoder(blob, cdr.LittleEndian).ReadULongLong()
}

func (pc *primeCounter) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	if port != "agg" {
		return component.ErrNoSuchPort
	}
	switch op {
	case "split":
		job, err := args.ReadOctetSeq()
		if err != nil {
			return err
		}
		parts, err := args.ReadLong()
		if err != nil {
			return err
		}
		lo, hi, err := rangeBounds(job)
		if err != nil {
			return err
		}
		span := (hi - lo) / uint64(parts)
		if span == 0 {
			span = 1
		}
		var chunks [][]byte
		for start := lo; start < hi; start += span {
			end := start + span
			if end > hi {
				end = hi
			}
			chunks = append(chunks, rangeJob(start, end))
		}
		reply.WriteULong(uint32(len(chunks)))
		for _, c := range chunks {
			reply.WriteOctetSeq(c)
		}
		return nil
	case "process":
		chunk, err := args.ReadOctetSeq()
		if err != nil {
			return err
		}
		lo, hi, err := rangeBounds(chunk)
		if err != nil {
			return err
		}
		var count uint64
		for n := lo; n < hi; n++ {
			if isPrime(n) {
				count++
			}
		}
		time.Sleep(chunkCost) // simulated remote CPU time
		reply.WriteOctetSeq(countBlob(count))
		return nil
	case "gather":
		n, err := args.ReadULong()
		if err != nil {
			return err
		}
		var total uint64
		for i := uint32(0); i < n; i++ {
			p, err := args.ReadOctetSeq()
			if err != nil {
				return err
			}
			n, err := readCount(p)
			if err != nil {
				return err
			}
			total += n
		}
		reply.WriteOctetSeq(countBlob(total))
		return nil
	}
	return orb.BadOperation()
}

func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func main() {
	impls := component.NewRegistry()
	impls.Register("grid/primecount.New", func() component.Instance { return &primeCounter{} })

	const volunteers = 6
	cluster, err := corbalc.NewCluster(volunteers+1, "vol%02d", simnet.Link{}, corbalc.Options{
		Impls:          impls,
		UpdateInterval: 25 * time.Millisecond,
		GroupSize:      4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.WaitConverged(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	master := cluster.Peers[0]

	spec := &component.Spec{
		Name: "primecount", Version: "1.0.0", Entrypoint: "grid/primecount.New",
		Splittable: true, Gather: "sum",
		IDL: map[string]string{"idl/agg.idl": `module corbalc {
  typedef sequence<octet> Blob;
  typedef sequence<Blob> BlobSeq;
  interface Aggregable {
    BlobSeq split(in Blob job, in long parts);
    Blob process(in Blob chunk);
    Blob gather(in BlobSeq partials);
  };
};`},
	}
	spec.Provide("agg", aggregate.AggregableRepoID)
	comp, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range cluster.Peers[1:] {
		if _, err := p.Node.InstallComponent(comp); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("primecount-1.0.0 (splittable, gather=sum) installed on %d volunteers\n", volunteers)

	// Wait until the registry sees every volunteer's offer.
	deadline := time.Now().Add(5 * time.Second)
	for {
		offers, err := master.Agent.QueryAll(context.Background(), aggregate.AggregableRepoID, "*")
		if err == nil && len(offers) == volunteers {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("volunteers not all visible")
		}
		time.Sleep(20 * time.Millisecond)
	}

	job := rangeJob(0, 100_000)
	run := func(parts int) (*aggregate.Result, time.Duration) {
		r := &aggregate.Runner{ORB: master.Node.ORB(), Query: master.Agent, PartsPerWorker: parts}
		t0 := time.Now()
		res, err := r.Run(context.Background(), "primecount", "*", job)
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(t0)
	}

	// Full fleet.
	res, parTime := run(4)
	count, err := readCount(res.Output)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d workers: %d primes below 100000 in %v (%d chunks)\n",
		res.Workers, count, parTime, res.Chunks)

	// Serial estimate for comparison: chunks x chunkCost on one worker.
	serial := time.Duration(res.Chunks) * chunkCost
	fmt.Printf("one volunteer would need >= %v -> speedup ~%.1fx\n",
		serial, float64(serial)/float64(parTime))

	// Churn: kill a volunteer mid-run; the runner resubmits its chunks.
	go func() {
		time.Sleep(40 * time.Millisecond)
		cluster.Net.SetDown("vol06", true)
		fmt.Println("  !! volunteer vol06 crashed mid-run")
	}()
	res2, churnTime := run(4)
	count2, err := readCount(res2.Output)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with churn: %d primes in %v (retries=%d, still correct)\n",
		count2, churnTime, res2.Retries)
	if count2 != count {
		log.Fatalf("churn changed the answer: %d != %d", count2, count)
	}
}

// Quickstart: two CORBA-LC peers, one component, fully automatic
// deployment.
//
// The example builds a tiny "greeter" component (package + descriptors +
// implementation), installs it on peer "alpha", and then asks peer
// "beta" for something implementing the Greeter interface. Beta has
// never seen the component: the network-as-repository resolves the
// dependency, decides remote use vs. local fetch, and hands back a live
// CORBA object reference.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"corbalc"
	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/orb"
	"corbalc/internal/simnet"
	"corbalc/internal/xmldesc"
)

// greeter is the component implementation: it provides one port
// ("greet", interface IDL:quickstart/Greeter:1.0) with one operation.
type greeter struct{ component.Base }

func (g *greeter) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	if port == "greet" && op == "hello" {
		name, err := args.ReadString()
		if err != nil {
			return err
		}
		reply.WriteString(fmt.Sprintf("Hello %s! (served by node %q)", name, g.Ctx().NodeName()))
		return nil
	}
	return orb.BadOperation()
}

func main() {
	// 1. Register the Go implementation under its entry point (the
	// role a DLL plays in the paper's packaging model).
	impls := component.NewRegistry()
	impls.Register("quickstart/greeter.New", func() component.Instance { return &greeter{} })

	// 2. Describe, package and load the component. Spec assembles the
	// softpkg + componenttype XML descriptors and the ZIP package.
	spec := &component.Spec{
		Name:       "greeter",
		Version:    "1.0.0",
		Title:      "Quickstart greeter",
		Entrypoint: "quickstart/greeter.New",
		IDL: map[string]string{
			"idl/greeter.idl": `module quickstart {
  interface Greeter { string hello(in string name); };
};`,
		},
	}
	spec.Provide("greet", "IDL:quickstart/Greeter:1.0")
	comp, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packaged %s: %d bytes, descriptors + IDL + binary\n",
		comp.ID(), comp.Package().Size())

	// 3. Start two peers on a virtual network and join them into one
	// logical CORBA-LC network.
	opts := corbalc.Options{Impls: impls, UpdateInterval: 25 * time.Millisecond}
	alpha := corbalc.NewPeer("alpha", opts)
	beta := corbalc.NewPeer("beta", opts)
	defer alpha.Close()
	defer beta.Close()

	net := simnet.New(simnet.Link{Latency: time.Millisecond})
	must(net.Attach("alpha", alpha.Node.ORB()))
	must(net.Attach("beta", beta.Node.ORB()))
	alpha.Bootstrap()
	must(beta.Join(alpha.Contact()))
	fmt.Println("alpha bootstrapped, beta joined")

	// 4. Install the component on alpha only — at run time, no restart.
	if _, err := alpha.Node.InstallComponent(comp); err != nil {
		log.Fatal(err)
	}
	fmt.Println("greeter-1.0.0 installed on alpha")

	// 5. Resolve the Greeter interface from beta. Beta's deployment
	// engine queries the distributed registry, finds alpha's offer and
	// binds to a (shared) instance there.
	var ref *orb.ObjectRef
	for deadline := time.Now().Add(5 * time.Second); ; {
		ior, err := beta.Engine.Resolve(context.Background(), xmldesc.Port{
			Kind: xmldesc.PortUses, Name: "g", RepoID: "IDL:quickstart/Greeter:1.0",
		})
		if err == nil {
			ref = beta.Node.ORB().NewRef(ior)
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("resolve: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// 6. Invoke it like any CORBA object.
	var out string
	err = ref.Invoke("hello",
		func(e *cdr.Encoder) { e.WriteString("world") },
		func(d *cdr.Decoder) error {
			var e error
			out, e = d.ReadString()
			return e
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("beta called greeter ->", out)

	msgs, bytes := net.Totals()
	fmt.Printf("virtual network carried %d GIOP messages, %d bytes\n", msgs, bytes)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Benchmark harness: one testing.B entry per experiment in DESIGN.md §4
// (E1–E10). Each heavyweight experiment runs once per benchmark
// iteration at quick scale and reports its headline metrics via
// b.ReportMetric; the rendered tables land in the -v output. Micro
// benchmarks for the hot paths live next to their packages (cdr, giop,
// orb, iiop, events, cpkg, simnet); `go test -bench=. ./...` runs
// everything, and cmd/corbalc-bench re-runs the experiments standalone
// with configurable scale.
package corbalc_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"corbalc/internal/experiments"
)

var benchScale = experiments.Scale{Nodes: 1, Seconds: 0.5}

func parseCell(s string) (float64, bool) {
	f := strings.Fields(strings.TrimSuffix(s, "%"))
	if len(f) == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimRight(f[0], "xs"), 64)
	return v, err == nil
}

func logTable(b *testing.B, t *experiments.Table) {
	b.Helper()
	b.Log("\n" + t.Render())
}

func BenchmarkE1_Invocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E1Invocation(benchScale)
		if i == b.N-1 {
			logTable(b, t)
			// Row 0: collocated null_op µs/call.
			if v, ok := parseCell(t.Rows[0][3]); ok {
				b.ReportMetric(v, "us/null-call-collocated")
			}
			// Row 6: iiop/tcp null_op µs/call.
			if v, ok := parseCell(t.Rows[6][3]); ok {
				b.ReportMetric(v, "us/null-call-tcp")
			}
		}
	}
}

func BenchmarkE1b_Concurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E1bConcurrency(benchScale)
		if i == b.N-1 {
			logTable(b, t)
			// Row 2: iiop/tcp C=64 calls/s; row 3: single-connection.
			if v, ok := parseCell(t.Rows[2][3]); ok {
				b.ReportMetric(v, "calls/s-tcp-c64")
			}
			if v, ok := parseCell(t.Rows[3][3]); ok {
				b.ReportMetric(v, "calls/s-tcp-c64-single")
			}
		}
	}
}

func BenchmarkE2_Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E2Registry(benchScale)
		if i == b.N-1 {
			logTable(b, t)
			last := t.Rows[len(t.Rows)-1]
			if v, ok := parseCell(last[2]); ok {
				b.ReportMetric(v, "queries/s-at-max-repo")
			}
		}
	}
}

func BenchmarkE3_SoftVsStrongConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E3Consistency(benchScale)
		if i == b.N-1 {
			logTable(b, t)
			n := len(t.Rows)
			soft, _ := parseCell(t.Rows[n-2][3])
			strong, _ := parseCell(t.Rows[n-1][3])
			b.ReportMetric(soft, "softB/node/s")
			b.ReportMetric(strong, "strongB/node/s")
		}
	}
}

func BenchmarkE4_HierarchicalVsFlatQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E4QueryHierarchy(benchScale)
		if i == b.N-1 {
			logTable(b, t)
			n := len(t.Rows)
			hier, _ := parseCell(t.Rows[n-2][2])
			flat, _ := parseCell(t.Rows[n-1][2])
			b.ReportMetric(hier, "msgs/query-hier")
			b.ReportMetric(flat, "msgs/query-flat")
		}
	}
}

func BenchmarkE5_MRMFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E5Failover(benchScale)
		if i == b.N-1 {
			logTable(b, t)
		}
	}
}

func BenchmarkE6_RuntimeVsStaticDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E6Deployment(benchScale)
		if i == b.N-1 {
			logTable(b, t)
			static, _ := parseCell(t.Rows[0][4])
			runtime, _ := parseCell(t.Rows[1][4])
			b.ReportMetric(static, "loadstddev-static")
			b.ReportMetric(runtime, "loadstddev-runtime")
		}
	}
}

func BenchmarkE7_FetchVsRemote(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E7Migration(benchScale)
		if i == b.N-1 {
			logTable(b, t)
		}
	}
}

func BenchmarkE8_TinyDevices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E8TinyDevices(benchScale)
		if i == b.N-1 {
			logTable(b, t)
		}
	}
}

func BenchmarkE9_GridSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E9Grid(benchScale)
		if i == b.N-1 {
			logTable(b, t)
			for _, row := range t.Rows {
				if row[0] == "8" && row[1] == "false" {
					if v, ok := parseCell(row[3]); ok {
						b.ReportMetric(v, "speedup-8workers")
					}
				}
			}
		}
	}
}

func BenchmarkE10_PredictiveUpdates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E10Predictive(benchScale)
		if i == b.N-1 {
			logTable(b, t)
		}
	}
}

func BenchmarkE11_EventFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E11FanOut(benchScale)
		if i == b.N-1 {
			logTable(b, t)
			for _, row := range t.Rows {
				if row[0] == "10000" && row[1] == "block" {
					if v, ok := parseCell(row[3]); ok {
						b.ReportMetric(v, "events/s-10k-subs")
					}
				}
			}
		}
	}
}

// BenchmarkE12_Swarm measures the delta-gossip discovery plane against
// the full-state baseline on the same churn workload (converge, kill
// 5%, heal). The N=1000 sub-benchmark is the BENCH_7.json acceptance
// row — heal time and per-node churn bandwidth are ceiling-gated and
// the advantage over full-state exchange is floor-gated at 5x; it is
// -short-guarded because two thousand-node swarms are a measurement
// run, not a compile check.
func BenchmarkE12_Swarm(b *testing.B) {
	for _, n := range []int{60, 1000} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			if n > 100 && testing.Short() {
				b.Skip("short mode: thousand-node swarm")
			}
			for i := 0; i < b.N; i++ {
				delta := experiments.RunSwarm(n, false, 2*time.Second)
				full := experiments.RunSwarm(n, true, 2*time.Second)
				if i == b.N-1 {
					b.Logf("delta: %+v\nfullstate: %+v", delta, full)
					b.ReportMetric(float64(delta.HealTime.Milliseconds()), "heal-ms")
					b.ReportMetric(delta.ChurnBps, "B/node/s")
					if delta.ChurnBps > 0 {
						b.ReportMetric(full.ChurnBps/delta.ChurnBps, "x-vs-fullstate")
					}
				}
			}
		})
	}
}

func BenchmarkA1_FanoutAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.A1Fanout(benchScale)
		if i == b.N-1 {
			logTable(b, t)
		}
	}
}

func BenchmarkA2_ReplicaAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.A2Replicas(benchScale)
		if i == b.N-1 {
			logTable(b, t)
		}
	}
}

func BenchmarkE13_Gateway(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E13Gateway(benchScale)
		if i == b.N-1 {
			logTable(b, t)
			for _, row := range t.Rows {
				if row[0] == "64" {
					if v, ok := parseCell(row[2]); ok {
						b.ReportMetric(v, "gw-rps-C64")
					}
					if v, ok := parseCell(row[3]); ok {
						b.ReportMetric(v, "cached-rps-C64")
					}
				}
			}
		}
	}
}

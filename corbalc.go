// Package corbalc is the public facade of the CORBA Lightweight
// Components (CORBA-LC) implementation: a lightweight, reflective,
// peer/network-centred distributed component model (Sevilla, García,
// Gómez — ICPP 2001) built on an embedded CORBA stack.
//
// A process hosts one or more Peers. Each Peer bundles the Fig. 1 node
// (Component Repository, Resource Manager, Component Registry, Component
// Acceptor), the network cohesion agent (membership, MRM hierarchy,
// soft-consistency updates) and the run-time deployment engine
// (network-wide dependency resolution and placement). Peers connect over
// real IIOP/TCP (ServeIIOP) or over the in-process virtual network
// (simnet) — or both.
//
// Quick start:
//
//	a := corbalc.NewPeer("alpha", corbalc.Options{})
//	b := corbalc.NewPeer("beta", corbalc.Options{})
//	net := simnet.New(simnet.Link{})
//	_ = net.Attach("alpha", a.Node.ORB())
//	_ = net.Attach("beta", b.Node.ORB())
//	a.Bootstrap()
//	_ = b.Join(a.Contact())
//	// install a component anywhere, use it from everywhere
//	id, _ := a.Node.Install(pkgBytes)
//	_ = id
package corbalc

import (
	"crypto/ed25519"
	"fmt"
	"time"

	"corbalc/internal/cohesion"
	"corbalc/internal/component"
	"corbalc/internal/deploy"
	"corbalc/internal/events"
	"corbalc/internal/iiop"
	"corbalc/internal/ior"
	"corbalc/internal/node"
	"corbalc/internal/simnet"
)

// Options configures a Peer.
type Options struct {
	// Profile describes the hardware class (default workstation).
	Profile node.Profile
	// Impls resolves implementation entry points (default the
	// process-wide component.DefaultRegistry).
	Impls *component.Registry
	// TrustedKeys restricts installs to signed packages when non-empty.
	TrustedKeys []ed25519.PublicKey
	// GroupSize is the MRM fanout (default 8).
	GroupSize int
	// Replicas is the MRM replication degree (default 2).
	Replicas int
	// UpdateInterval is the soft-consistency period (default 500ms).
	UpdateInterval time.Duration
	// FailMultiple times UpdateInterval is the failure timeout
	// (default 3).
	FailMultiple int
	// Mode selects Soft (default) or Strong consistency.
	Mode cohesion.Mode
	// Policy refines soft updates (Periodic default, DeadBand,
	// Predictive).
	Policy cohesion.SendPolicy
	// Deploy tunes placement (default deploy.DefaultPolicy).
	Deploy *deploy.Policy
	// IIOP tunes the real TCP transport used by ServeIIOP/UseIIOP.
	// Zero values select the documented defaults; peers on simnet
	// ignore it.
	IIOP IIOPOptions
	// Events tunes the node's event fabric (DESIGN.md §12). Zero
	// values select the documented defaults.
	Events EventOptions
	// Cohesion tunes the delta-gossip discovery plane (DESIGN.md §13).
	// Zero values select the documented defaults.
	Cohesion CohesionOptions
}

// CohesionOptions carries the discovery-plane knobs through the facade
// (DESIGN.md §13). Zero values select the defaults documented in
// internal/cohesion.
type CohesionOptions struct {
	// GossipWindow is the per-destination coalescing window: protocol
	// messages queued for one peer within the window ride a single
	// gossip_batch frame (default 2ms).
	GossipWindow time.Duration
	// GossipDepth bounds each destination's gossip queue; overflow
	// drops the oldest queued message (default 128).
	GossipDepth int
	// AntiEntropyTicks is the digest-ping period in update ticks
	// (default 4*(FailMultiple+1)).
	AntiEntropyTicks int
	// FullState reverts the discovery plane to the legacy full-state
	// exchange — whole-directory broadcasts and point-to-point update
	// oneways — as the bandwidth baseline E12 measures against.
	FullState bool
}

// EventOptions carries the event-fabric knobs through the facade
// (DESIGN.md §12). Zero values select the defaults documented in
// internal/events.
type EventOptions struct {
	// QueueDepth sizes per-subscriber event queues (default 256).
	QueueDepth int
	// Overflow selects what Push does on a full subscriber queue:
	// events.Block (default, backpressure), events.DropOldest or
	// events.DropNewest. Drops are observable through the hub's
	// counters (corbalc-admin `events`).
	Overflow events.OverflowPolicy
	// BatchWindow makes batch subscribers (remote event subscriptions)
	// coalesce a trickle of events into window-sized batches (default
	// 0: deliver immediately).
	BatchWindow time.Duration
}

// IIOPOptions carries the IIOP/TCP concurrency knobs through the
// facade (DESIGN.md §10). Zero values select the defaults documented
// in internal/iiop.
type IIOPOptions struct {
	// PoolSize is the striped connection-pool size kept per remote
	// endpoint (default iiop.DefaultPoolSize = min(8, GOMAXPROCS);
	// negative forces a single multiplexed connection).
	PoolSize int
	// CallTimeout bounds one two-way call (default
	// iiop.DefaultCallTimeout; negative disables the limit).
	CallTimeout time.Duration
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// CoalesceWindow is the group-commit window for write coalescing
	// on both the client and server side of this peer (default
	// iiop.DefaultCoalesceWindow; negative disables the timed window).
	CoalesceWindow time.Duration
	// MaxDispatch bounds concurrently-dispatched server requests — the
	// worker-pool size (default iiop.DefaultMaxDispatch()).
	MaxDispatch int
	// DispatchQueue bounds requests accepted but not yet dispatched
	// (default iiop.DefaultDispatchQueue; negative means no queue).
	// Overflow is refused with a CORBA TRANSIENT system exception.
	DispatchQueue int
}

// Peer is one CORBA-LC node with its protocol agent and deployment
// engine.
type Peer struct {
	Node   *node.Node
	Agent  *cohesion.Agent
	Engine *deploy.Engine

	iiop IIOPOptions
}

// NewPeer assembles a peer (not yet part of any logical network).
func NewPeer(name string, opts Options) *Peer {
	n := node.New(node.Config{
		Name:             name,
		Impls:            opts.Impls,
		Profile:          opts.Profile,
		TrustedKeys:      opts.TrustedKeys,
		EventQueueDepth:  opts.Events.QueueDepth,
		EventOverflow:    opts.Events.Overflow,
		EventBatchWindow: opts.Events.BatchWindow,
	})
	agent := cohesion.NewAgent(cohesion.Config{
		Node:             n,
		GroupSize:        opts.GroupSize,
		Replicas:         opts.Replicas,
		UpdateInterval:   opts.UpdateInterval,
		FailMultiple:     opts.FailMultiple,
		Mode:             opts.Mode,
		Policy:           opts.Policy,
		GossipWindow:     opts.Cohesion.GossipWindow,
		GossipDepth:      opts.Cohesion.GossipDepth,
		AntiEntropyTicks: opts.Cohesion.AntiEntropyTicks,
		FullState:        opts.Cohesion.FullState,
	})
	pol := deploy.DefaultPolicy()
	if opts.Deploy != nil {
		pol = *opts.Deploy
	}
	engine := deploy.NewEngine(n, agent, pol)
	n.SetResolver(engine)
	return &Peer{Node: n, Agent: agent, Engine: engine, iiop: opts.IIOP}
}

// Bootstrap starts a new logical network with this peer as its first
// member.
func (p *Peer) Bootstrap() { p.Agent.Bootstrap() }

// Contact returns the reference other peers pass to Join.
func (p *Peer) Contact() *ior.IOR { return p.Agent.CohesionIOR() }

// Join enters the logical network reachable at contact.
func (p *Peer) Join(contact *ior.IOR) error { return p.Agent.Join(contact) }

// Leave departs gracefully and stops the peer's protocol loop.
func (p *Peer) Leave() { p.Agent.Leave() }

// Close stops everything without notifying the network (crash).
func (p *Peer) Close() {
	p.Agent.Stop()
	p.Node.Close()
}

// ServeIIOP starts a real IIOP/TCP endpoint for the peer and registers
// the client-side transport, so IORs minted by this peer are reachable
// from other processes. The Options.IIOP knobs size the dispatch
// worker pool and tune write coalescing. It returns the listening
// server.
func (p *Peer) ServeIIOP(addr string) (*iiop.Server, error) {
	p.UseIIOP()
	s := iiop.NewServer(p.Node.ORB())
	s.MaxDispatch = p.iiop.MaxDispatch
	s.DispatchQueue = p.iiop.DispatchQueue
	s.CoalesceWindow = p.iiop.CoalesceWindow
	if err := s.ListenActivate(p.Node.ORB(), addr); err != nil {
		return nil, err
	}
	return s, nil
}

// UseIIOP registers only the client-side IIOP transport (for peers that
// call out but do not listen), configured from the Options.IIOP knobs.
func (p *Peer) UseIIOP() {
	p.Node.ORB().RegisterTransport(&iiop.Transport{
		DialTimeout:    p.iiop.DialTimeout,
		CallTimeout:    p.iiop.CallTimeout,
		PoolSize:       p.iiop.PoolSize,
		CoalesceWindow: p.iiop.CoalesceWindow,
	})
}

// Cluster is a set of peers joined into one logical network over an
// in-process virtual network — the harness experiments and examples
// build on.
type Cluster struct {
	Net   *simnet.Network
	Peers []*Peer
}

// NewCluster builds n peers named fmt.Sprintf(nameFmt, i), attaches them
// to a fresh virtual network with the given link quality, bootstraps the
// first and joins the rest.
func NewCluster(n int, nameFmt string, link simnet.Link, opts Options) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("corbalc: cluster needs at least one peer")
	}
	if nameFmt == "" {
		nameFmt = "node%03d"
	}
	c := &Cluster{Net: simnet.New(link)}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf(nameFmt, i)
		p := NewPeer(name, opts)
		if err := c.Net.Attach(name, p.Node.ORB()); err != nil {
			c.Close()
			return nil, err
		}
		c.Peers = append(c.Peers, p)
	}
	c.Peers[0].Bootstrap()
	for i := 1; i < n; i++ {
		// A join is idempotent at the root (a known name is re-placed in
		// its existing group), so a timeout against a momentarily
		// overloaded root — routine while a swarm-sized cluster forms on
		// few cores — is retried rather than surfaced.
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if err = c.Peers[i].Join(c.Peers[0].Contact()); err == nil {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// WaitConverged blocks until every peer's directory covers the whole
// cluster (or the timeout passes).
func (c *Cluster) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, p := range c.Peers {
			if p.Agent.Directory().Len() != len(c.Peers) {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("corbalc: cluster did not converge within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close shuts every peer down.
func (c *Cluster) Close() {
	for _, p := range c.Peers {
		p.Close()
	}
}

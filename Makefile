GO ?= go

.PHONY: check build vet lint escapegate tools test race bench bench-json bench-json-8 fmt tidy clean

## check: the full tier-1 gate — what CI runs on every push/PR.
check: fmt tidy build vet lint escapegate race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## tools: build the repo's own gate binaries once into bin/ — repeated
## `go run` invocations re-link on every call, which doubles the wall
## time of `make check`.
tools:
	$(GO) build -o bin/ ./cmd/corbalc-lint ./cmd/corbalc-escapegate

## lint: the CORBA-LC invariant suite (lockdiscipline, cdralign,
## errpropagation, ctxtimeout, poolreturn, goroutinelifetime,
## atomicfield, lockorder).
lint: tools
	./bin/corbalc-lint ./...

## escapegate: compare the compiler's escape analysis of the invocation
## hot path against the checked-in ESCAPES.json baseline; any new heap
## escape fails the gate. Regenerate deliberately with
## `go run ./cmd/corbalc-escapegate -update`.
escapegate: tools
	./bin/corbalc-escapegate

test:
	$(GO) test ./...

## race: the full suite under the race detector. Runs without -short,
## so it includes the 500-node delta-gossip swarm smoke test
## (cohesion.TestSwarmChurnConvergence) that quick runs skip.
race:
	$(GO) test -race -count=1 ./...

## bench: compile and run every benchmark once (-benchtime=1x) so CI
## catches bench-only bit-rot without paying for real measurement runs.
## -short skips the thousand-node E12 swarm rows — those are a
## measurement run, paid for in bench-json where they are gated.
bench:
	$(GO) test -short -run=^$$ -bench=. -benchtime=1x ./...

## bench-json: run the hot-path benchmark suite with -benchmem, render
## BENCH_5.json, and enforce the perf budgets (DESIGN.md §9/§10).
## Ceilings: a collocated null call stays under 20 allocs (pre-pooling
## it was 36); the vectored write and pooled read paths stay at zero; a
## TCP round trip stays at 2 allocs or fewer (the original BENCH_4
## budget was 37; the scratch-pooled call-ID + pooled cancel-context
## pipeline now measures 0). Floors: concurrent TCP throughput
## at C=64 must not regress more than 20% below the value recorded in
## BENCH_5.json (262k calls/s at recording time, floor 210k).
## Micro benchmarks use -benchtime=1000x so pool warm-up amortises
## away; throughput benchmarks need wall-clock (-benchtime=1s) for a
## stable calls/s; the E1/E3 experiments run once (they are
## whole-testbed simulations).
## The event-fabric fan-out gate renders BENCH_6.json: delivered
## events/s across 10k subscribers must stay above 100k (DESIGN.md
## §12; 6.1M at recording time).
## The swarm gate renders BENCH_7.json: the 1000-node E12 run (DESIGN.md
## §13) must heal a 5% churn within 45s (15.8s at recording time — the
## push repair hints cut the old 22s anti-entropy tail, so the
## ceiling came down from 90s with it), keep churn-window control
## bandwidth under 30K B/node/s (11.8K recorded), and beat the
## full-state baseline by at least 5x (6.2x recorded).
## The web-gateway gate renders BENCH_9.json (DESIGN.md §15): against a
## backend with 15ms service time, uncached RPS at C=64 is bounded by
## the IIOP dispatch worker pool (32/15ms ≈ 2.1k; 2.0k recorded, floor
## 1200) and the cached path must clear 3x that (≈10x recorded);
## allocs/op stay under 200 uncached / 170 cached (136/115 recorded —
## the whole HTTP request/response cycle included).
bench-json:
	@{ \
	$(GO) test -run='^$$' -bench='E1_Invocation|E3_SoftVsStrongConsistency' -benchtime=1x -benchmem . && \
	$(GO) test -run='^$$' -bench='LocalNullInvoke|LocalEchoString' -benchtime=1000x -benchmem ./internal/orb && \
	$(GO) test -run='^$$' -bench='GIOPWriteMessage|GIOPReadMessagePooled' -benchtime=1000x -benchmem ./internal/giop && \
	$(GO) test -run='^$$' -bench='ChannelCall|TCPRoundTrip' -benchtime=1000x -benchmem ./internal/iiop && \
	$(GO) test -run='^$$' -bench='ConcurrentTCPThroughput' -benchtime=1s -benchmem ./internal/iiop && \
	$(GO) test -run='^$$' -bench='ConcurrentSimnetThroughput' -benchtime=1s -benchmem ./internal/simnet ; \
	} | $(GO) run ./cmd/corbalc-benchgate -json BENCH_5.json \
		-max BenchmarkLocalNullInvoke=20 \
		-max BenchmarkGIOPWriteMessage=0 \
		-max BenchmarkGIOPReadMessagePooled=0 \
		-max BenchmarkTCPRoundTrip=2 \
		-max 'BenchmarkConcurrentTCPThroughput/C=64=10' \
		-min 'BenchmarkConcurrentTCPThroughput/C=64:calls/s=210000'
	@$(GO) test -run='^$$' -bench='EventFanout' -benchtime=1s -benchmem ./internal/events \
	| $(GO) run ./cmd/corbalc-benchgate -json BENCH_6.json \
		-max 'BenchmarkEventFanout/subs=10000=0' \
		-min 'BenchmarkEventFanout/subs=10000:events/s=100000'
	@$(GO) test -run='^$$' -bench='E12_Swarm' -benchtime=1x -timeout 30m . \
	| $(GO) run ./cmd/corbalc-benchgate -json BENCH_7.json \
		-max 'BenchmarkE12_Swarm/N=1000:heal-ms=45000' \
		-max 'BenchmarkE12_Swarm/N=1000:B/node/s=30000' \
		-min 'BenchmarkE12_Swarm/N=1000:x-vs-fullstate=5'
	@$(GO) test -run='^$$' -bench='GatewayRPS' -benchtime=1s -benchmem ./internal/gateway \
	| $(GO) run ./cmd/corbalc-benchgate -json BENCH_9.json \
		-max 'BenchmarkGatewayRPS/uncached/C=64=200' \
		-max 'BenchmarkGatewayRPS/cached/C=64=170' \
		-min 'BenchmarkGatewayRPS/uncached/C=64:rps=1200' \
		-minratio 'BenchmarkGatewayRPS/cached/C=64,BenchmarkGatewayRPS/uncached/C=64:rps=3'

## bench-json-8: the multi-core scaling gate (DESIGN.md §14). Sweeps
## the full TCP invocation path across GOMAXPROCS 1,2,4,8 and renders
## BENCH_8.json. Alloc ceilings apply everywhere (the sharded hot path
## stays at 0 allocs/op regardless of core count; budget 2 leaves
## headroom for scheduler noise). The throughput floors — an absolute
## 500k calls/s at 4 procs / C=64 and a 4-vs-1-proc scaling ratio of
## at least 2.5x — only mean something on real cores, so they are
## skipped on hosts with fewer than 4 CPUs (the dev container has 1;
## CI's ubuntu-latest has 4 and enforces them).
bench-json-8:
	@floors=""; \
	if [ "$$(nproc)" -ge 4 ]; then \
		floors="-min BenchmarkConcurrentTCPThroughput/C=64/cpu=4:calls/s=500000"; \
		floors="$$floors -minratio BenchmarkConcurrentTCPThroughput/C=64/cpu=4,BenchmarkConcurrentTCPThroughput/C=64/cpu=1:calls/s=2.5"; \
		floors="$$floors -minratio BenchmarkParallelDispatch/cpu=4,BenchmarkParallelDispatch/cpu=1:calls/s=2.5"; \
	else \
		echo "bench-json-8: $$(nproc) CPU(s) < 4 — recording scaling curve without multi-core floors"; \
	fi; \
	{ \
	$(GO) test -run='^$$' -bench='ParallelDispatch' -cpu 1,2,4,8 -benchtime=1s -benchmem ./internal/iiop && \
	$(GO) test -run='^$$' -bench='ConcurrentTCPThroughput/C=64$$' -cpu 1,2,4,8 -benchtime=1s -benchmem ./internal/iiop ; \
	} | $(GO) run ./cmd/corbalc-benchgate -json BENCH_8.json \
		-max 'BenchmarkParallelDispatch/cpu=4=2' \
		-max 'BenchmarkConcurrentTCPThroughput/C=64/cpu=4=2' \
		$$floors

## fmt: fail (listing offenders) if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## tidy: fail if go.mod/go.sum would change under `go mod tidy`.
tidy:
	$(GO) mod tidy -diff

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: check build vet lint test race bench fmt tidy clean

## check: the full tier-1 gate — what CI runs on every push/PR.
check: fmt tidy build vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: the CORBA-LC invariant suite (lockdiscipline, cdralign,
## errpropagation, ctxtimeout). -vet folds in the curated stock vet
## analyzers so one command covers both layers.
lint:
	$(GO) run ./cmd/corbalc-lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

## bench: compile and run every benchmark once (-benchtime=1x) so CI
## catches bench-only bit-rot without paying for real measurement runs.
bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

## fmt: fail (listing offenders) if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## tidy: fail if go.mod/go.sum would change under `go mod tidy`.
tidy:
	$(GO) mod tidy -diff

clean:
	$(GO) clean ./...

package orb

import (
	"context"
	"sync/atomic"
	"time"
)

// RequestInfo is the per-call metadata exposed to interceptors — the
// lightweight analogue of CORBA Portable Interceptors' ClientRequestInfo/
// ServerRequestInfo. The same value flows through both points of one
// side's chain, so SendRequest/ReceiveRequest state can be correlated in
// ReceiveReply/SendReply.
type RequestInfo struct {
	// Operation is the invoked operation name.
	Operation string
	// ObjectKey addresses the target object. On the server side it
	// aliases the pooled request buffer, which is recycled once the
	// dispatch completes: an interceptor that retains the RequestInfo
	// past its callbacks must copy ObjectKey first.
	ObjectKey []byte
	// RequestID is the GIOP request ID (per-connection scope).
	RequestID uint32
	// CallID is the end-to-end correlation ID carried in the SvcCallID
	// service context; both sides of one call observe the same value.
	CallID string
	// Deadline is the call's absolute deadline (zero when unbounded).
	Deadline time.Time
	// Oneway reports a request that expects no reply.
	Oneway bool
	// Async reports an invocation launched through CallAsync (client
	// side only; on the wire an async call is an ordinary request).
	Async bool
	// Local reports a collocated dispatch that never reached a transport
	// (client side only).
	Local bool
	// Elapsed is the time spent in the call; set at the reply points.
	Elapsed time.Duration
	// Err is the call outcome; set at the reply points (nil on success).
	Err error
}

// ClientInterceptor observes outbound invocations. SendRequest runs after
// the request message is built, before it is handed to a transport;
// ReceiveReply runs after the reply is decoded (or the call failed), with
// Elapsed and Err populated.
type ClientInterceptor interface {
	SendRequest(ctx context.Context, info *RequestInfo)
	ReceiveReply(ctx context.Context, info *RequestInfo)
}

// ServerInterceptor observes inbound dispatches. ReceiveRequest runs
// after the request header is decoded, before the servant; returning a
// non-nil error rejects the request with that error (typically a
// *SystemException) without dispatching. SendReply runs after the servant
// returned, with Elapsed and Err populated.
type ServerInterceptor interface {
	ReceiveRequest(ctx context.Context, info *RequestInfo) error
	SendReply(ctx context.Context, info *RequestInfo)
}

// AddClientInterceptor appends an interceptor to the outbound chain.
// The chain is copy-on-write: registration copies it under the ORB
// mutex, so the per-call snapshot in clientChain is a bare atomic load.
func (o *ORB) AddClientInterceptor(ci ClientInterceptor) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var cur []ClientInterceptor
	if p := o.clientInterceptors.Load(); p != nil {
		cur = *p
	}
	next := make([]ClientInterceptor, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, ci)
	o.clientInterceptors.Store(&next)
}

// AddServerInterceptor appends an interceptor to the inbound chain,
// with AddClientInterceptor's copy-on-write discipline.
func (o *ORB) AddServerInterceptor(si ServerInterceptor) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var cur []ServerInterceptor
	if p := o.serverInterceptors.Load(); p != nil {
		cur = *p
	}
	next := make([]ServerInterceptor, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, si)
	o.serverInterceptors.Store(&next)
}

// clientChain snapshots the outbound interceptor chain. Lock-free: this
// runs on every invocation in every caller goroutine, where a shared
// RWMutex would bounce its cacheline between cores.
func (o *ORB) clientChain() []ClientInterceptor {
	if p := o.clientInterceptors.Load(); p != nil {
		return *p
	}
	return nil
}

// serverChain snapshots the inbound interceptor chain.
func (o *ORB) serverChain() []ServerInterceptor {
	if p := o.serverInterceptors.Load(); p != nil {
		return *p
	}
	return nil
}

// Stats is the shipped stats/latency collector: it counts requests and
// accumulates service times on both sides of the ORB. Every ORB owns one
// (reachable via ORB.Stats; it backs ORB.RequestsServed/RequestsSent),
// fed intrinsically by the dispatch loops rather than through the
// interceptor chain — so the chain can stay empty, and the invocation
// fast path skips the per-call RequestInfo. The interceptor methods
// remain for explicitly-registered instances.
type Stats struct {
	sent        atomic.Uint64
	served      atomic.Uint64
	sentNanos   atomic.Int64
	srvNanos    atomic.Int64
	sentSamples atomic.Uint64
	srvSamples  atomic.Uint64
	sentErrs    atomic.Uint64
	srvErrs     atomic.Uint64

	// Oneways and async launches are counted apart from the two-way
	// request/reply traffic: a oneway has no reply clock to feed the
	// latency estimate, and an async call's clock runs from launch to
	// future resolution, not inside one dispatch frame. Oneways and
	// settled async calls still count in sent/served, so the totals
	// remain "requests that left/entered this ORB".
	oneSent       atomic.Uint64
	oneServed     atomic.Uint64
	asyncLaunched atomic.Uint64
	asyncSettled  atomic.Uint64
}

// latencySampleMask selects the 1-in-8 calls whose service time feeds
// MeanLatency on the intrinsic (empty-chain) fast path. Counts and
// error tallies stay exact; only the latency clock is sampled — two
// clock reads per call are measurable at throughput-benchmark rates.
const latencySampleMask = 7

// SendRequest implements ClientInterceptor.
func (s *Stats) SendRequest(context.Context, *RequestInfo) {}

// ReceiveReply implements ClientInterceptor. Oneway calls are tallied
// in their own bucket and excluded from the latency estimate (they have
// no reply clock — Elapsed only measures the local send path).
func (s *Stats) ReceiveReply(_ context.Context, info *RequestInfo) {
	if info.Oneway {
		s.recordOnewaySent(info.Err)
		return
	}
	s.sent.Add(1)
	s.sentNanos.Add(int64(info.Elapsed))
	s.sentSamples.Add(1)
	if info.Err != nil {
		s.sentErrs.Add(1)
	}
}

// ReceiveRequest implements ServerInterceptor.
func (s *Stats) ReceiveRequest(context.Context, *RequestInfo) error { return nil }

// SendReply implements ServerInterceptor. Oneway dispatches are tallied
// apart and excluded from the latency estimate, mirroring ReceiveReply.
func (s *Stats) SendReply(_ context.Context, info *RequestInfo) {
	if info.Oneway {
		s.recordOnewayServed(info.Err)
		return
	}
	s.served.Add(1)
	s.srvNanos.Add(int64(info.Elapsed))
	s.srvSamples.Add(1)
	if info.Err != nil {
		s.srvErrs.Add(1)
	}
}

// RequestsSent reports completed outbound invocations.
func (s *Stats) RequestsSent() uint64 { return s.sent.Load() }

// RequestsServed reports dispatched inbound requests.
func (s *Stats) RequestsServed() uint64 { return s.served.Load() }

// Errors reports the outbound and inbound error counts.
func (s *Stats) Errors() (sent, served uint64) { return s.sentErrs.Load(), s.srvErrs.Load() }

// Oneways reports the oneway requests sent and served (already included
// in RequestsSent/RequestsServed, but excluded from MeanLatency).
func (s *Stats) Oneways() (sent, served uint64) {
	return s.oneSent.Load(), s.oneServed.Load()
}

// Async reports the asynchronous invocations launched through CallAsync
// and those settled (resolved by reply, failure or cancellation). A
// settled call counts in RequestsSent; launched-but-unsettled calls are
// the in-flight futures.
func (s *Stats) Async() (launched, settled uint64) {
	return s.asyncLaunched.Load(), s.asyncSettled.Load()
}

// recordOnewaySent and recordOnewayServed tally a oneway on the
// intrinsic path: counted in the totals and the oneway bucket, never in
// the latency clock.
func (s *Stats) recordOnewaySent(err error) {
	s.sent.Add(1)
	s.oneSent.Add(1)
	if err != nil {
		s.sentErrs.Add(1)
	}
}

func (s *Stats) recordOnewayServed(err error) {
	s.served.Add(1)
	s.oneServed.Add(1)
	if err != nil {
		s.srvErrs.Add(1)
	}
}

// recordAsyncLaunch and recordAsyncDone bracket one async invocation:
// launch when the request hits the transport, done when the future
// resolves — the elapsed time between them is the AMI completion time,
// which feeds the outbound latency estimate unsampled.
func (s *Stats) recordAsyncLaunch() { s.asyncLaunched.Add(1) }

func (s *Stats) recordAsyncDone(elapsed time.Duration, err error) {
	s.asyncSettled.Add(1)
	s.recordSentTimed(elapsed, err)
}

// sentStart and servedStart open an intrinsic fast-path record: they
// read the clock only for the sampled 1-in-8 calls, returning the zero
// time otherwise. The paired record* call closes the record.
func (s *Stats) sentStart() time.Time {
	if s.sent.Load()&latencySampleMask == 0 {
		return time.Now()
	}
	return time.Time{}
}

func (s *Stats) servedStart() time.Time {
	if s.served.Load()&latencySampleMask == 0 {
		return time.Now()
	}
	return time.Time{}
}

// recordSent and recordServed are the intrinsic entry points the ORB
// dispatch loops call directly, bypassing the RequestInfo an interceptor
// would need. start comes from sentStart/servedStart (zero = unsampled).
func (s *Stats) recordSent(start time.Time, err error) {
	s.sent.Add(1)
	if !start.IsZero() {
		s.sentNanos.Add(int64(time.Since(start)))
		s.sentSamples.Add(1)
	}
	if err != nil {
		s.sentErrs.Add(1)
	}
}

func (s *Stats) recordServed(start time.Time, err error) {
	s.served.Add(1)
	if !start.IsZero() {
		s.srvNanos.Add(int64(time.Since(start)))
		s.srvSamples.Add(1)
	}
	if err != nil {
		s.srvErrs.Add(1)
	}
}

// recordSentTimed and recordServedTimed record a call whose service
// time was measured by the caller (the interceptor-chain path, which
// needs the elapsed time for RequestInfo anyway).
func (s *Stats) recordSentTimed(elapsed time.Duration, err error) {
	s.sent.Add(1)
	s.sentNanos.Add(int64(elapsed))
	s.sentSamples.Add(1)
	if err != nil {
		s.sentErrs.Add(1)
	}
}

func (s *Stats) recordServedTimed(elapsed time.Duration, err error) {
	s.served.Add(1)
	s.srvNanos.Add(int64(elapsed))
	s.srvSamples.Add(1)
	if err != nil {
		s.srvErrs.Add(1)
	}
}

// MeanLatency reports the mean outbound and inbound service times (zero
// when no calls completed on that side). On the intrinsic fast path the
// mean is computed over a 1-in-8 sample of calls.
func (s *Stats) MeanLatency() (sent, served time.Duration) {
	if n := s.sentSamples.Load(); n > 0 {
		sent = time.Duration(uint64(s.sentNanos.Load()) / n)
	}
	if n := s.srvSamples.Load(); n > 0 {
		served = time.Duration(uint64(s.srvNanos.Load()) / n)
	}
	return sent, served
}

// DeadlineEnforcer is the shipped deadline-enforcement server
// interceptor: requests whose propagated deadline has already expired are
// rejected with CORBA::TIMEOUT before reaching the servant — work the
// client gave up on is not worth dispatching. The ORB applies this
// policy intrinsically in its dispatch loop (before any registered
// interceptor runs); the type remains for explicit chains.
type DeadlineEnforcer struct{}

// ReceiveRequest implements ServerInterceptor.
func (DeadlineEnforcer) ReceiveRequest(_ context.Context, info *RequestInfo) error {
	if !info.Deadline.IsZero() && !time.Now().Before(info.Deadline) {
		return Timeout()
	}
	return nil
}

// SendReply implements ServerInterceptor.
func (DeadlineEnforcer) SendReply(context.Context, *RequestInfo) {}

package orb

import (
	"context"
	"sync/atomic"
	"time"
)

// RequestInfo is the per-call metadata exposed to interceptors — the
// lightweight analogue of CORBA Portable Interceptors' ClientRequestInfo/
// ServerRequestInfo. The same value flows through both points of one
// side's chain, so SendRequest/ReceiveRequest state can be correlated in
// ReceiveReply/SendReply.
type RequestInfo struct {
	// Operation is the invoked operation name.
	Operation string
	// ObjectKey addresses the target object. On the server side it
	// aliases the pooled request buffer, which is recycled once the
	// dispatch completes: an interceptor that retains the RequestInfo
	// past its callbacks must copy ObjectKey first.
	ObjectKey []byte
	// RequestID is the GIOP request ID (per-connection scope).
	RequestID uint32
	// CallID is the end-to-end correlation ID carried in the SvcCallID
	// service context; both sides of one call observe the same value.
	CallID string
	// Deadline is the call's absolute deadline (zero when unbounded).
	Deadline time.Time
	// Oneway reports a request that expects no reply.
	Oneway bool
	// Local reports a collocated dispatch that never reached a transport
	// (client side only).
	Local bool
	// Elapsed is the time spent in the call; set at the reply points.
	Elapsed time.Duration
	// Err is the call outcome; set at the reply points (nil on success).
	Err error
}

// ClientInterceptor observes outbound invocations. SendRequest runs after
// the request message is built, before it is handed to a transport;
// ReceiveReply runs after the reply is decoded (or the call failed), with
// Elapsed and Err populated.
type ClientInterceptor interface {
	SendRequest(ctx context.Context, info *RequestInfo)
	ReceiveReply(ctx context.Context, info *RequestInfo)
}

// ServerInterceptor observes inbound dispatches. ReceiveRequest runs
// after the request header is decoded, before the servant; returning a
// non-nil error rejects the request with that error (typically a
// *SystemException) without dispatching. SendReply runs after the servant
// returned, with Elapsed and Err populated.
type ServerInterceptor interface {
	ReceiveRequest(ctx context.Context, info *RequestInfo) error
	SendReply(ctx context.Context, info *RequestInfo)
}

// AddClientInterceptor appends an interceptor to the outbound chain.
func (o *ORB) AddClientInterceptor(ci ClientInterceptor) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.clientInterceptors = append(o.clientInterceptors, ci)
}

// AddServerInterceptor appends an interceptor to the inbound chain.
func (o *ORB) AddServerInterceptor(si ServerInterceptor) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.serverInterceptors = append(o.serverInterceptors, si)
}

// clientChain snapshots the outbound interceptor chain.
func (o *ORB) clientChain() []ClientInterceptor {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.clientInterceptors
}

// serverChain snapshots the inbound interceptor chain.
func (o *ORB) serverChain() []ServerInterceptor {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.serverInterceptors
}

// Stats is the shipped stats/latency interceptor: it counts requests and
// accumulates service times on both sides of the ORB. One instance is
// registered on every ORB at construction (reachable via ORB.Stats), and
// backs ORB.RequestsServed/RequestsSent.
type Stats struct {
	sent      atomic.Uint64
	served    atomic.Uint64
	sentNanos atomic.Int64
	srvNanos  atomic.Int64
	sentErrs  atomic.Uint64
	srvErrs   atomic.Uint64
}

// SendRequest implements ClientInterceptor.
func (s *Stats) SendRequest(context.Context, *RequestInfo) {}

// ReceiveReply implements ClientInterceptor.
func (s *Stats) ReceiveReply(_ context.Context, info *RequestInfo) {
	s.sent.Add(1)
	s.sentNanos.Add(int64(info.Elapsed))
	if info.Err != nil {
		s.sentErrs.Add(1)
	}
}

// ReceiveRequest implements ServerInterceptor.
func (s *Stats) ReceiveRequest(context.Context, *RequestInfo) error { return nil }

// SendReply implements ServerInterceptor.
func (s *Stats) SendReply(_ context.Context, info *RequestInfo) {
	s.served.Add(1)
	s.srvNanos.Add(int64(info.Elapsed))
	if info.Err != nil {
		s.srvErrs.Add(1)
	}
}

// RequestsSent reports completed outbound invocations.
func (s *Stats) RequestsSent() uint64 { return s.sent.Load() }

// RequestsServed reports dispatched inbound requests.
func (s *Stats) RequestsServed() uint64 { return s.served.Load() }

// Errors reports the outbound and inbound error counts.
func (s *Stats) Errors() (sent, served uint64) { return s.sentErrs.Load(), s.srvErrs.Load() }

// MeanLatency reports the mean outbound and inbound service times (zero
// when no calls completed on that side).
func (s *Stats) MeanLatency() (sent, served time.Duration) {
	if n := s.sent.Load(); n > 0 {
		sent = time.Duration(uint64(s.sentNanos.Load()) / n)
	}
	if n := s.served.Load(); n > 0 {
		served = time.Duration(uint64(s.srvNanos.Load()) / n)
	}
	return sent, served
}

// DeadlineEnforcer is the shipped deadline-enforcement server
// interceptor: requests whose propagated deadline has already expired are
// rejected with CORBA::TIMEOUT before reaching the servant — work the
// client gave up on is not worth dispatching. One instance is registered
// on every ORB at construction.
type DeadlineEnforcer struct{}

// ReceiveRequest implements ServerInterceptor.
func (DeadlineEnforcer) ReceiveRequest(_ context.Context, info *RequestInfo) error {
	if !info.Deadline.IsZero() && !time.Now().Before(info.Deadline) {
		return Timeout()
	}
	return nil
}

// SendReply implements ServerInterceptor.
func (DeadlineEnforcer) SendReply(context.Context, *RequestInfo) {}

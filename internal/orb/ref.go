package orb

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/giop"
	"corbalc/internal/ior"
	"corbalc/internal/svcctx"
)

// ObjectRef is a client-side reference to a (possibly remote) CORBA
// object: the dynamic-invocation analogue of a generated stub. It is safe
// for concurrent use.
type ObjectRef struct {
	orb *ORB
	ior *ior.IOR

	// resolvedChans caches the per-profile channel pools: the IOR is
	// immutable and pools live for the ORB's lifetime (failures evict
	// stripes inside a pool, never the pool itself), so re-deriving the
	// endpoint key and profile ordering on every call would be pure
	// overhead on the invocation hot path.
	resolvedChans atomic.Pointer[refChannels]

	// iiopKey caches the object key decoded from the (immutable) IOR's
	// IIOP profile — decoding it per call costs several allocations.
	iiopKeyOnce sync.Once
	iiopKey     []byte
	iiopKeyErr  error
}

// iiopObjectKey returns the object key from the ref's IIOP profile, nil
// when the IOR carries none.
func (r *ObjectRef) iiopObjectKey() ([]byte, error) {
	r.iiopKeyOnce.Do(func() {
		if p := r.ior.Profile(ior.TagInternetIOP); p != nil {
			ip, err := ior.DecodeIIOPProfile(p)
			if err != nil {
				r.iiopKeyErr = err
				return
			}
			r.iiopKey = ip.ObjectKey
		}
	})
	return r.iiopKey, r.iiopKeyErr
}

// refChannels is one generation of an ObjectRef's resolved transport
// channels, aligned index-for-index with its ordered profiles. A nil
// channel marks a profile whose transport could not resolve at caching
// time (e.g. not registered yet); those fall back to per-call lookup.
type refChannels struct {
	gen      uint64
	profiles []ior.TaggedProfile
	chans    []Channel
}

// resolved returns the ref's cached channels, (re)building the cache
// when absent or invalidated by ORB Shutdown.
func (r *ObjectRef) resolved(ctx context.Context) *refChannels {
	gen := r.orb.chanGen.Load()
	if rc := r.resolvedChans.Load(); rc != nil && rc.gen == gen {
		return rc
	}
	profiles := orderedProfiles(r.ior)
	chans := make([]Channel, len(profiles))
	for i, tp := range profiles {
		if ch, err := r.orb.channelFor(ctx, tp.Tag, tp.Data); err == nil {
			chans[i] = ch
		}
	}
	rc := &refChannels{gen: gen, profiles: profiles, chans: chans}
	r.resolvedChans.Store(rc)
	return rc
}

// NewRef wraps an IOR in an invocable reference bound to this ORB.
func (o *ORB) NewRef(r *ior.IOR) *ObjectRef {
	return &ObjectRef{orb: o, ior: r}
}

// ResolveStr parses a stringified IOR or corbaloc URL and returns a
// reference.
func (o *ORB) ResolveStr(s string) (*ObjectRef, error) {
	r, err := ior.Parse(s)
	if err != nil {
		return nil, err
	}
	return o.NewRef(r), nil
}

// IOR returns the reference's underlying IOR.
func (r *ObjectRef) IOR() *ior.IOR { return r.ior }

// TypeID returns the repository ID the reference claims to implement.
func (r *ObjectRef) TypeID() string { return r.ior.TypeID }

// Marshaller writes request arguments; Unmarshaller reads reply results.
type (
	Marshaller   func(*cdr.Encoder)
	Unmarshaller func(*cdr.Decoder) error
)

// InvokeContext performs a synchronous request under ctx: op is the
// operation name, args (may be nil) marshals the in-parameters, result
// (may be nil) unmarshals the reply body. The context's deadline is
// propagated to the server in a SvcDeadline service context; expiry or
// cancellation aborts the call with CORBA::TIMEOUT and (on IIOP) emits a
// GIOP CancelRequest. User and system exceptions surface as errors (see
// IsUserException and *SystemException).
func (r *ObjectRef) InvokeContext(ctx context.Context, op string, args Marshaller, result Unmarshaller) error {
	return r.invoke(ctx, op, args, result, true, SyncWithTransport)
}

// Invoke is the context-less form of InvokeContext, for the public API
// surface and tests; production code inside internal/ should pass a real
// context (enforced by the ctxtimeout analyzer).
func (r *ObjectRef) Invoke(op string, args Marshaller, result Unmarshaller) error {
	return r.InvokeContext(context.Background(), op, args, result)
}

// InvokeOnewayContext sends a request under ctx without waiting for any
// reply, synchronised with the transport (SyncWithTransport): it returns
// once the frame reached the socket.
func (r *ObjectRef) InvokeOnewayContext(ctx context.Context, op string, args Marshaller) error {
	return r.invoke(ctx, op, args, nil, false, SyncWithTransport)
}

// InvokeOnewayScoped sends a oneway request under the given SyncScope:
// SyncWithTransport waits for the frame to reach the socket, SyncNone
// returns as soon as the transport accepts it (ownership of the request
// buffer moves to the transport's write path).
func (r *ObjectRef) InvokeOnewayScoped(ctx context.Context, op string, args Marshaller, scope SyncScope) error {
	return r.invoke(ctx, op, args, nil, false, scope)
}

// InvokeOneway is the context-less form of InvokeOnewayContext.
func (r *ObjectRef) InvokeOneway(op string, args Marshaller) error {
	return r.InvokeOnewayContext(context.Background(), op, args)
}

// ExistsContext probes the reference with a GIOP LocateRequest under ctx:
// it reports whether the target object is currently reachable and active,
// without invoking any operation on it.
func (r *ObjectRef) ExistsContext(ctx context.Context) (bool, error) {
	if r.ior.IsNil() {
		return false, nil
	}
	o := r.orb
	reqID := o.nextRequestID()

	var objectKey []byte
	if k, ok := r.localKey(); ok {
		_, found := o.adapter.Resolve(k)
		return found, nil
	}
	if k, err := r.iiopObjectKey(); err != nil {
		return false, err
	} else if k != nil {
		objectKey = k
	}

	e := giop.NewBodyEncoder(o.order)
	if err := giop.EncodeLocateRequest(e, o.version, &giop.LocateRequestHeader{
		RequestID: reqID, ObjectKey: objectKey,
	}); err != nil {
		return false, err
	}
	msg := &giop.Message{
		Header: giop.Header{Version: o.version, Order: o.order, Type: giop.MsgLocateRequest},
		Body:   e.Bytes(),
	}
	var lastErr error
	rc := r.resolved(ctx)
	for i, tp := range rc.profiles {
		if objectKey == nil {
			tr, ok := o.transportFor(tp.Tag)
			if ok {
				if ke, ok := tr.(KeyExtractor); ok {
					if k, err := ke.ObjectKey(tp.Data); err == nil {
						e2 := giop.NewBodyEncoder(o.order)
						_ = giop.EncodeLocateRequest(e2, o.version, &giop.LocateRequestHeader{
							RequestID: reqID, ObjectKey: k,
						})
						msg.Body = e2.Bytes()
					}
				}
			}
		}
		ch := rc.chans[i]
		if ch == nil {
			var err error
			if ch, err = o.channelFor(ctx, tp.Tag, tp.Data); err != nil {
				lastErr = err
				continue
			}
		}
		reply, err := ch.Call(ctx, msg, reqID)
		if err != nil {
			if ctxDone(ctx, err) {
				return false, ctxError(ctx, err)
			}
			// The pool already evicted the failed stripe; survivors
			// keep serving, so the endpoint stays cached.
			lastErr = err
			continue
		}
		if reply == nil || reply.Header.Type != giop.MsgLocateReply {
			lastErr = fmt.Errorf("orb: unexpected locate reply %v", reply)
			reply.Release()
			continue
		}
		lr, err := giop.DecodeLocateReply(reply.BodyDecoder())
		reply.Release()
		if err != nil {
			lastErr = err
			continue
		}
		return lr.Status == giop.LocateObjectHere, nil
	}
	if lastErr == nil {
		lastErr = NoImplement()
	}
	return false, lastErr
}

// Exists is the context-less form of ExistsContext.
func (r *ObjectRef) Exists() (bool, error) {
	return r.ExistsContext(context.Background())
}

// localKey extracts the object key from the in-process profile if the
// reference designates an object served by this very ORB.
func (r *ObjectRef) localKey() ([]byte, bool) {
	p := r.ior.Profile(ior.TagCorbalcInProcess)
	if p == nil {
		return nil, false
	}
	i := bytes.IndexByte(p, 0)
	if i < 0 || string(p[:i]) != r.orb.id {
		return nil, false
	}
	return p[i+1:], true
}

// ctxDone reports whether a channel error should be attributed to the
// caller's context rather than the channel: either the context is already
// done, or the error chain says so.
func ctxDone(ctx context.Context, err error) bool {
	return ctx.Err() != nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ctxError maps a context-attributed failure to the CORBA exception
// model: both expiry and cancellation surface as CORBA::TIMEOUT (there is
// no standard "cancelled" system exception), with the context error
// preserved in the chain for errors.Is.
func ctxError(ctx context.Context, err error) error {
	cause := ctx.Err()
	if cause == nil {
		cause = err
	}
	var se *SystemException
	if errors.As(err, &se) {
		return err
	}
	return &wrappedException{SystemException: Timeout(), cause: cause}
}

// wrappedException is a system exception that also preserves an
// underlying cause for errors.Is (e.g. context.DeadlineExceeded).
type wrappedException struct {
	*SystemException
	cause error
}

func (w *wrappedException) Error() string {
	return fmt.Sprintf("%v: %v", w.SystemException, w.cause)
}

func (w *wrappedException) Unwrap() []error { return []error{w.SystemException, w.cause} }

// targetKey resolves the object key addressing this reference's target,
// reporting whether the target is collocated with this ORB.
func (r *ObjectRef) targetKey() (objectKey []byte, local bool, err error) {
	o := r.orb
	if k, ok := r.localKey(); ok {
		return k, true, nil
	}
	if k, kerr := r.iiopObjectKey(); kerr != nil {
		return nil, false, fmt.Errorf("orb: bad IIOP profile: %w", kerr)
	} else if k != nil {
		return k, false, nil
	}
	// Fall back to any profile whose transport is registered and can
	// extract the object key (vendor profiles embed it).
	found := false
	for _, tp := range r.ior.Profiles {
		tr, ok := o.transportFor(tp.Tag)
		if !ok {
			continue
		}
		found = true
		if ke, ok := tr.(KeyExtractor); ok {
			if k, kerr := ke.ObjectKey(tp.Data); kerr == nil {
				return k, false, nil
			}
		}
	}
	if !found {
		return nil, false, NoImplement()
	}
	return nil, false, nil
}

func (r *ObjectRef) invoke(ctx context.Context, op string, args Marshaller, result Unmarshaller, twoway bool, scope SyncScope) error {
	if r.ior.IsNil() {
		return ObjectNotExist()
	}
	o := r.orb
	if err := ctx.Err(); err != nil {
		// Expired before any wire activity: nothing to cancel.
		return ctxError(ctx, err)
	}
	chain := o.clientChain()
	callID := svcctx.CallID(ctx)
	if callID == "" && len(chain) > 0 {
		// Interceptors observe ctx, so the minted ID must be attached
		// there, not just put on the wire. With no observer callID stays
		// "" and buildRequest mints the ID straight into the scratch
		// buffer: the ID then travels only in the request's service
		// contexts, and the mint allocates nothing.
		ctx, callID = svcctx.EnsureCallID(ctx)
	}

	// Build the request message once, independent of transport.
	reqID := o.nextRequestID()
	objectKey, local, err := r.targetKey()
	if err != nil {
		return err
	}

	sc := clientScratchPool.Get().(*clientScratch)
	defer clientScratchPool.Put(sc)
	sc.transferred = false
	msg, err := o.buildRequest(ctx, sc, callID, reqID, objectKey, op, args, twoway)
	if err != nil {
		return err
	}
	// Channels do not retain the request past Call/Send (the Channel
	// contract), and the collocated path decodes within HandleMessage,
	// so once dispatch returns the request buffer can be recycled — the
	// one exception is a SyncNone oneway, whose buffer ownership moved
	// to the transport (sc.transferred).
	defer func() {
		if !sc.transferred {
			msg.Release()
		}
	}()

	if len(chain) == 0 {
		if !twoway {
			// No reply clock is meaningful for a oneway: count it in its
			// own bucket and skip the latency sampling entirely.
			err = r.dispatch(ctx, sc, msg, reqID, result, twoway, local, scope)
			o.stats.recordOnewaySent(err)
			return err
		}
		// No interceptor to notify: stats are fed directly, without the
		// RequestInfo nothing would observe (latency sampled 1-in-8).
		start := o.stats.sentStart()
		err = r.dispatch(ctx, sc, msg, reqID, result, twoway, local, scope)
		o.stats.recordSent(start, err)
		return err
	}

	info := &RequestInfo{
		Operation: op,
		ObjectKey: objectKey,
		RequestID: reqID,
		CallID:    callID,
		Oneway:    !twoway,
		Local:     local,
	}
	if dl, ok := ctx.Deadline(); ok {
		info.Deadline = dl
	}
	start := time.Now()
	for _, ci := range chain {
		ci.SendRequest(ctx, info)
	}
	err = r.dispatch(ctx, sc, msg, reqID, result, twoway, local, scope)
	info.Elapsed = time.Since(start)
	info.Err = err
	if twoway {
		o.stats.recordSentTimed(info.Elapsed, err)
	} else {
		o.stats.recordOnewaySent(err)
	}
	for _, ci := range chain {
		ci.ReceiveReply(ctx, info)
	}
	return err
}

// dispatch moves the built request over the collocated fast path or the
// reference's profiles and decodes the reply. A SyncNone oneway that a
// channel accepts via SendOwned sets sc.transferred: the request buffer
// now belongs to the transport's write path, not the invoke frame.
func (r *ObjectRef) dispatch(ctx context.Context, sc *clientScratch, msg *giop.Message, reqID uint32, result Unmarshaller, twoway, local bool, scope SyncScope) error {
	o := r.orb
	if local {
		reply, err := o.HandleMessage(ctx, msg)
		if err != nil {
			return err
		}
		if !twoway {
			return nil
		}
		return o.decodeReply(sc, reply, reqID, result)
	}

	// Remote: pick the first profile with a registered transport,
	// preferring IIOP. A failure attributed to the caller's context does
	// not fail over to the next profile (the caller gave up, not the
	// channel) and keeps the channel cached — other multiplexed calls on
	// it are unaffected.
	var lastErr error
	rc := r.resolved(ctx)
	for i := range rc.profiles {
		ch := rc.chans[i]
		if ch == nil {
			var err error
			tp := rc.profiles[i]
			if ch, err = o.channelFor(ctx, tp.Tag, tp.Data); err != nil {
				if ctxDone(ctx, err) {
					return ctxError(ctx, err)
				}
				lastErr = err
				continue
			}
		}
		if !twoway {
			if scope == SyncNone {
				if oc, ok := ch.(OnewayChannel); ok {
					err := oc.SendOwned(ctx, msg)
					if err == nil {
						sc.transferred = true
						return nil
					}
					if !errors.Is(err, errNoAsync) {
						if ctxDone(ctx, err) {
							return ctxError(ctx, err)
						}
						lastErr = err
						continue
					}
					// Channel cannot take ownership: degrade to the
					// synchronised send below.
				}
			}
			if err := ch.Send(ctx, msg); err != nil {
				if ctxDone(ctx, err) {
					return ctxError(ctx, err)
				}
				// Stripe-level eviction already happened inside the pool.
				lastErr = err
				continue
			}
			return nil
		}
		reply, err := ch.Call(ctx, msg, reqID)
		if err != nil {
			if ctxDone(ctx, err) {
				return ctxError(ctx, err)
			}
			lastErr = err
			continue
		}
		return o.decodeReply(sc, reply, reqID, result)
	}
	if lastErr == nil {
		return NoImplement()
	}
	var se *SystemException
	if errors.As(lastErr, &se) {
		return lastErr
	}
	return fmt.Errorf("%w: %v", CommFailure(), lastErr)
}

// orderedProfiles lists the reference's profiles with IIOP first and the
// in-process profile excluded (it is handled before dialing).
func orderedProfiles(r *ior.IOR) []ior.TaggedProfile {
	out := make([]ior.TaggedProfile, 0, len(r.Profiles))
	for _, p := range r.Profiles {
		if p.Tag == ior.TagInternetIOP {
			out = append(out, p)
		}
	}
	for _, p := range r.Profiles {
		if p.Tag != ior.TagInternetIOP && p.Tag != ior.TagCorbalcInProcess {
			out = append(out, p)
		}
	}
	return out
}

// clientScratch is the pooled per-invocation encode/decode state: the
// request header (service-context slice and call-ID buffer keep their
// capacity across calls) and the reply decoder + header. Nothing in it
// escapes an invocation: EncodeRequest copies header fields into the
// encoder, and every reply value that outlives decodeReply is detached.
type clientScratch struct {
	req   giop.RequestHeader
	idbuf []byte
	dec   cdr.Decoder
	rh    giop.ReplyHeader
	// transferred records that the request buffer's ownership moved to
	// the transport (SyncNone oneway), so invoke must not release it.
	// Reset at the top of every invocation.
	transferred bool
}

var clientScratchPool = sync.Pool{New: func() any { return new(clientScratch) }}

// buildRequest encodes a request into a pooled message; the caller owns
// it and must Release it once every transport attempt is done with it.
func (o *ORB) buildRequest(ctx context.Context, sc *clientScratch, callID string, reqID uint32, objectKey []byte, op string, args Marshaller, twoway bool) (*giop.Message, error) {
	e := giop.GetBodyEncoder(o.order)
	if callID == "" {
		// No interceptor observed the ID, so it was never materialised as
		// a string: mint it directly into the reusable buffer.
		sc.idbuf = svcctx.AppendNewCallID(sc.idbuf[:0])
	} else {
		sc.idbuf = append(sc.idbuf[:0], callID...)
	}
	hdr := &sc.req
	hdr.RequestID = reqID
	hdr.ResponseExpected = twoway
	hdr.ObjectKey = objectKey
	hdr.Operation = op
	hdr.ServiceContexts = svcctx.InjectIDBytes(ctx, sc.idbuf, hdr.ServiceContexts[:0])
	if err := giop.EncodeRequest(e, o.version, hdr); err != nil {
		e.Release()
		return nil, err
	}
	if args != nil {
		giop.AlignBody(e, o.version)
		args(e)
	}
	return giop.MessageFromEncoder(giop.Header{
		Version: o.version, Order: o.order, Type: giop.MsgRequest,
	}, e), nil
}

// decodeReply consumes a reply message: whatever the outcome, the
// (pooled) reply is released before returning, so every value that
// escapes — decoded results, exception members — is copied out first.
func (o *ORB) decodeReply(sc *clientScratch, reply *giop.Message, reqID uint32, result Unmarshaller) error {
	if reply == nil {
		return fmt.Errorf("%w: empty reply", CommFailure())
	}
	defer reply.Release()
	if reply.Header.Type != giop.MsgReply {
		return fmt.Errorf("%w: unexpected %v", CommFailure(), reply.Header.Type)
	}
	d := &sc.dec
	reply.ResetBodyDecoder(d)
	h := &sc.rh
	if err := giop.DecodeReplyInto(d, reply.Header.Version, h); err != nil {
		return fmt.Errorf("orb: bad reply header: %w", err)
	}
	if h.RequestID != reqID {
		return fmt.Errorf("%w: reply id %d for request %d", CommFailure(), h.RequestID, reqID)
	}
	switch h.Status {
	case giop.ReplyNoException:
		if result == nil {
			return nil
		}
		if err := giop.AlignBodyDecode(d, reply.Header.Version); err != nil {
			return err
		}
		if err := result(d); err != nil {
			return fmt.Errorf("%w: decoding result: %v", Marshal(), err)
		}
		return nil
	case giop.ReplyUserException:
		if err := giop.AlignBodyDecode(d, reply.Header.Version); err != nil {
			return err
		}
		id, err := d.ReadString()
		if err != nil {
			return fmt.Errorf("%w: decoding exception id: %v", Marshal(), err)
		}
		// The exception error outlives this call (callers inspect Body at
		// leisure), so detach the members from the pooled reply buffer.
		return &UserException{ID: id, Body: d.Detach()}
	case giop.ReplySystemException:
		if err := giop.AlignBodyDecode(d, reply.Header.Version); err != nil {
			return err
		}
		se, err := unmarshalSystemException(d)
		if err != nil {
			return fmt.Errorf("%w: decoding system exception: %v", Marshal(), err)
		}
		return se
	case giop.ReplyLocationForward:
		return fmt.Errorf("%w: location forward not supported", NoImplement())
	default:
		return fmt.Errorf("%w: reply status %v", CommFailure(), h.Status)
	}
}

package orb

import (
	"testing"

	"corbalc/internal/race"
)

// nullCallAllocBudget is the allocation ceiling for one collocated null
// invocation (request build, dispatch, reply build, reply decode, both
// interceptor chains). The pooled hot path measures 17 allocs/op; the
// ceiling leaves a little headroom for toolchain drift while still
// failing loudly if pooling regresses (the pre-pooling figure was 36).
const nullCallAllocBudget = 20

// TestNullCallAllocBudget is the in-tree allocation gate: a collocated
// null call must stay within nullCallAllocBudget allocations. The CI
// bench gate (cmd/corbalc-benchgate) enforces the same budget on the
// -benchmem output; this test catches regressions in a plain `go test`.
func TestNullCallAllocBudget(t *testing.T) {
	if race.Enabled {
		t.Skip("sync.Pool randomly drops items under the race detector; alloc counts are not stable")
	}
	o := NewORB()
	ref := o.NewRef(o.Activate("test/echo", echoServant{}))
	call := func() {
		if err := ref.Invoke("oneway_ping", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ { // warm every pool on the path
		call()
	}
	allocs := testing.AllocsPerRun(200, call)
	if allocs > nullCallAllocBudget {
		t.Fatalf("null call allocates %.1f times, budget %d", allocs, nullCallAllocBudget)
	}
}

package orb

// Unit tests for the striped channel pool, driven by a scripted fake
// transport: lazy dialing, round-robin distribution, eviction and
// redial of failed or unusable stripes, context-attributed errors
// leaving stripes alone, PoolSizer sizing, and Close semantics.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"corbalc/internal/giop"
	"corbalc/internal/leak"
	"corbalc/internal/race"
)

// skipUnderRace skips tests that assert exact per-stripe dial counts:
// stripe affinity rides on sync.Pool, and under -race sync.Pool drops a
// random quarter of Put items, reseeding hints nondeterministically. The
// pool's failure and concurrency behaviour stays covered under race by
// the failover and context tests.
func skipUnderRace(t *testing.T) {
	if race.Enabled {
		t.Skip("stripe-affinity dial counts are nondeterministic under -race (sync.Pool drops Puts)")
	}
}

// fakeChannel is a scriptable Channel stripe.
type fakeChannel struct {
	id       int
	calls    atomic.Int32
	closed   atomic.Bool
	dead     atomic.Bool // Unusable() reports this
	callErr  error       // returned by every Call when non-nil
	onceFail atomic.Bool // fail exactly the next Call
}

func (f *fakeChannel) Call(ctx context.Context, req *giop.Message, requestID uint32) (*giop.Message, error) {
	f.calls.Add(1)
	if f.onceFail.CompareAndSwap(true, false) {
		return nil, fmt.Errorf("fake: stripe %d write failed", f.id)
	}
	if f.callErr != nil {
		return nil, f.callErr
	}
	return nil, nil
}

func (f *fakeChannel) Send(ctx context.Context, req *giop.Message) error {
	_, err := f.Call(ctx, req, 0)
	return err
}

func (f *fakeChannel) Close() error {
	f.closed.Store(true)
	return nil
}

func (f *fakeChannel) Unusable() bool { return f.dead.Load() }

// fakeTransport dials fakeChannels and records them in dial order.
type fakeTransport struct {
	poolSize int
	dialErr  error

	mu      sync.Mutex
	dialed  []*fakeChannel
	nextErr error // fail exactly the next Dial
}

func (t *fakeTransport) Tag() uint32                             { return 0xFA4E }
func (t *fakeTransport) Endpoint(profile []byte) (string, error) { return string(profile), nil }
func (t *fakeTransport) ChannelPoolSize() int                    { return t.poolSize }

func (t *fakeTransport) Dial(ctx context.Context, profile []byte) (Channel, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.nextErr != nil {
		err := t.nextErr
		t.nextErr = nil
		return nil, err
	}
	if t.dialErr != nil {
		return nil, t.dialErr
	}
	ch := &fakeChannel{id: len(t.dialed)}
	t.dialed = append(t.dialed, ch)
	return ch, nil
}

func (t *fakeTransport) dials() []*fakeChannel {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*fakeChannel(nil), t.dialed...)
}

func TestPoolLazyDialAndStripeAffinity(t *testing.T) {
	skipUnderRace(t)
	leak.Check(t)
	tr := &fakeTransport{poolSize: 4}
	p := newChannelPool(tr, []byte("ep"))
	defer p.Close()
	ctx := context.Background()

	// Stripes dial lazily: the first call opens one connection, not four.
	if _, err := p.Call(ctx, nil, 1); err != nil {
		t.Fatal(err)
	}
	if n := len(tr.dials()); n != 1 {
		t.Fatalf("dials after first call = %d, want 1 (lazy)", n)
	}
	for i := 0; i < 7; i++ {
		if _, err := p.Call(ctx, nil, uint32(i+2)); err != nil {
			t.Fatal(err)
		}
	}
	// Stripe selection is processor-affine: one caller on one core keeps
	// its stripe, so the other three are never dialed.
	chans := tr.dials()
	if len(chans) != 1 {
		t.Fatalf("dials after 8 calls = %d, want 1 (affine caller sticks to its stripe)", len(chans))
	}
	if got := chans[0].calls.Load(); got != 8 {
		t.Fatalf("stripe %d served %d calls, want all 8", chans[0].id, got)
	}
}

func TestPoolFreshHintsSpreadAcrossStripes(t *testing.T) {
	leak.Check(t)
	tr := &fakeTransport{poolSize: 4}
	p := newChannelPool(tr, []byte("ep"))
	defer p.Close()
	ctx := context.Background()

	// Steal the affinity token after every call: each subsequent caller
	// then plays the part of a fresh core and must be seeded onto the
	// next stripe round-robin.
	for i := 0; i < 4; i++ {
		if _, err := p.Call(ctx, nil, uint32(i+1)); err != nil {
			t.Fatal(err)
		}
		p.hints.Get()
	}
	chans := tr.dials()
	if len(chans) != 4 {
		t.Fatalf("dials = %d, want 4 (fresh hints spread round-robin)", len(chans))
	}
	for _, ch := range chans {
		if got := ch.calls.Load(); got != 1 {
			t.Fatalf("stripe %d served %d calls, want 1", ch.id, got)
		}
	}
}

func TestPoolEvictsFailedStripeAndRedials(t *testing.T) {
	skipUnderRace(t)
	leak.Check(t)
	tr := &fakeTransport{poolSize: 2}
	p := newChannelPool(tr, []byte("ep"))
	defer p.Close()
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := p.Call(ctx, nil, uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	victim := tr.dials()[0]
	victim.onceFail.Store(true)

	// Drive calls until the scripted failure surfaces; the error must
	// reach the caller (no transparent retry) and evict the stripe.
	var failed bool
	for i := 0; i < 2 && !failed; i++ {
		_, err := p.Call(ctx, nil, uint32(10+i))
		failed = err != nil
	}
	if !failed {
		t.Fatal("scripted stripe failure never surfaced to the caller")
	}
	if !victim.closed.Load() {
		t.Fatal("failed stripe was not evicted (Close not called)")
	}

	// The evicted slot redials lazily (the caller's affinity hint still
	// points at it) and keeps serving.
	for i := 0; i < 4; i++ {
		if _, err := p.Call(ctx, nil, uint32(20+i)); err != nil {
			t.Fatalf("call after eviction: %v", err)
		}
	}
	if n := len(tr.dials()); n != 2 {
		t.Fatalf("dials after redial = %d, want 2 (1 initial + 1 replacement)", n)
	}
}

func TestPoolUnusableStripeEvictedWithoutWastingACall(t *testing.T) {
	skipUnderRace(t)
	leak.Check(t)
	tr := &fakeTransport{poolSize: 2}
	p := newChannelPool(tr, []byte("ep"))
	defer p.Close()
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := p.Call(ctx, nil, uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	dead := tr.dials()[0]
	served := dead.calls.Load()
	dead.dead.Store(true) // e.g. its read loop noticed the peer vanish

	for i := 0; i < 4; i++ {
		if _, err := p.Call(ctx, nil, uint32(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := dead.calls.Load(); got != served {
		t.Fatalf("unusable stripe served %d more calls, want 0 (eager eviction)", got-served)
	}
	if !dead.closed.Load() {
		t.Fatal("unusable stripe not closed on eviction")
	}
	if n := len(tr.dials()); n != 2 {
		t.Fatalf("dials = %d, want 2 (replacement dialed)", n)
	}
}

func TestPoolContextErrorDoesNotEvict(t *testing.T) {
	leak.Check(t)
	tr := &fakeTransport{poolSize: 1}
	p := newChannelPool(tr, []byte("ep"))
	defer p.Close()

	if _, err := p.Call(context.Background(), nil, 1); err != nil {
		t.Fatal(err)
	}
	ch := tr.dials()[0]
	ch.callErr = context.Canceled

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Call(ctx, nil, 2); err == nil {
		t.Fatal("cancelled call reported success")
	}
	// The caller gave up; the connection is healthy and must survive.
	if ch.closed.Load() {
		t.Fatal("healthy stripe evicted on a context-attributed error")
	}
	ch.callErr = nil
	if _, err := p.Call(context.Background(), nil, 3); err != nil {
		t.Fatalf("call after ctx cancel: %v", err)
	}
	if n := len(tr.dials()); n != 1 {
		t.Fatalf("dials = %d, want 1 (no eviction, no redial)", n)
	}
}

func TestPoolDialFailureSkipsToSurvivor(t *testing.T) {
	leak.Check(t)
	tr := &fakeTransport{poolSize: 2}
	p := newChannelPool(tr, []byte("ep"))
	defer p.Close()
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := p.Call(ctx, nil, uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Kill stripe 0 and make its redial fail once: pick must fall
	// through to the survivor instead of failing the call.
	tr.dials()[0].dead.Store(true)
	tr.mu.Lock()
	tr.nextErr = errors.New("fake: endpoint briefly unreachable")
	tr.mu.Unlock()
	for i := 0; i < 4; i++ {
		if _, err := p.Call(ctx, nil, uint32(10+i)); err != nil {
			t.Fatalf("call with one stripe down: %v", err)
		}
	}
}

func TestPoolAllStripesDownReportsDialError(t *testing.T) {
	leak.Check(t)
	dialErr := errors.New("fake: endpoint down")
	tr := &fakeTransport{poolSize: 3, dialErr: dialErr}
	p := newChannelPool(tr, []byte("ep"))
	defer p.Close()

	if _, err := p.Call(context.Background(), nil, 1); !errors.Is(err, dialErr) {
		t.Fatalf("err = %v, want the dial error when every stripe is down", err)
	}
}

func TestPoolSizerHonored(t *testing.T) {
	leak.Check(t)
	if p := newChannelPool(&fakeTransport{poolSize: 6}, nil); p.size != 6 {
		t.Fatalf("size = %d, want 6 from PoolSizer", p.size)
	}
	// Below-1 answers and transports without the interface pool a
	// single channel (pool-transparent).
	if p := newChannelPool(&fakeTransport{poolSize: -1}, nil); p.size != 1 {
		t.Fatalf("size = %d, want 1 for PoolSizer < 1", p.size)
	}
}

func TestPoolCloseClosesStripesAndFailsFast(t *testing.T) {
	leak.Check(t)
	tr := &fakeTransport{poolSize: 3}
	p := newChannelPool(tr, []byte("ep"))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := p.Call(ctx, nil, uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	dialed := len(tr.dials())
	for _, ch := range tr.dials() {
		if !ch.closed.Load() {
			t.Fatalf("stripe %d not closed by pool Close", ch.id)
		}
	}
	if _, err := p.Call(ctx, nil, 9); !errors.Is(err, errPoolClosed) {
		t.Fatalf("call after Close = %v, want errPoolClosed", err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if n := len(tr.dials()); n != dialed {
		t.Fatalf("dials = %d, want %d (no post-Close redial)", n, dialed)
	}
}

package orb

import (
	"errors"
	"fmt"

	"corbalc/internal/cdr"
	"corbalc/internal/giop"
)

// CompletionStatus tells a client how far an operation got before a
// system exception was raised.
type CompletionStatus uint32

// Completion status codes (CORBA 2.4 §4.11).
const (
	CompletedYes   CompletionStatus = 0
	CompletedNo    CompletionStatus = 1
	CompletedMaybe CompletionStatus = 2
)

func (c CompletionStatus) String() string {
	switch c {
	case CompletedYes:
		return "COMPLETED_YES"
	case CompletedNo:
		return "COMPLETED_NO"
	case CompletedMaybe:
		return "COMPLETED_MAYBE"
	}
	return fmt.Sprintf("CompletionStatus(%d)", uint32(c))
}

// SystemException is a CORBA standard exception: a well-known repository
// ID plus a minor code and completion status. It crosses the wire in
// Reply messages with status SYSTEM_EXCEPTION.
type SystemException struct {
	Name      string // e.g. "OBJECT_NOT_EXIST"
	Minor     uint32
	Completed CompletionStatus
}

func (e *SystemException) Error() string {
	return fmt.Sprintf("CORBA::%s (minor=%d, %v)", e.Name, e.Minor, e.Completed)
}

// RepoID returns the OMG repository ID of the exception.
func (e *SystemException) RepoID() string {
	return "IDL:omg.org/CORBA/" + e.Name + ":1.0"
}

// Standard system exceptions used by CORBA-LC.
func ObjectNotExist() *SystemException {
	return &SystemException{Name: "OBJECT_NOT_EXIST", Completed: CompletedNo}
}
func BadOperation() *SystemException {
	return &SystemException{Name: "BAD_OPERATION", Completed: CompletedNo}
}
func Marshal() *SystemException {
	return &SystemException{Name: "MARSHAL", Completed: CompletedMaybe}
}
func CommFailure() *SystemException {
	return &SystemException{Name: "COMM_FAILURE", Completed: CompletedMaybe}
}
func Transient() *SystemException {
	return &SystemException{Name: "TRANSIENT", Completed: CompletedNo}
}
func NoImplement() *SystemException {
	return &SystemException{Name: "NO_IMPLEMENT", Completed: CompletedNo}
}
func Unknown() *SystemException {
	return &SystemException{Name: "UNKNOWN", Completed: CompletedMaybe}
}
func Timeout() *SystemException {
	return &SystemException{Name: "TIMEOUT", Completed: CompletedMaybe}
}

// marshalSystemException writes the Reply body for a system exception.
func marshalSystemException(e *cdr.Encoder, se *SystemException) {
	e.WriteString(se.RepoID())
	e.WriteULong(se.Minor)
	e.WriteULong(uint32(se.Completed))
}

// unmarshalSystemException reads a SYSTEM_EXCEPTION reply body.
func unmarshalSystemException(d *cdr.Decoder) (*SystemException, error) {
	id, err := d.ReadString()
	if err != nil {
		return nil, err
	}
	minor, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	comp, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	name := id
	// Strip "IDL:omg.org/CORBA/" prefix and ":1.0" suffix when present.
	const pre, suf = "IDL:omg.org/CORBA/", ":1.0"
	if len(name) > len(pre)+len(suf) && name[:len(pre)] == pre && name[len(name)-len(suf):] == suf {
		name = name[len(pre) : len(name)-len(suf)]
	}
	return &SystemException{Name: name, Minor: minor, Completed: CompletionStatus(comp)}, nil
}

// UserException is an application-defined exception declared in IDL. A
// servant raises one by returning it (or an error wrapping it) from
// Invoke; the payload marshaller, if any, contributes exception members
// after the repository ID.
type UserException struct {
	ID      string             // repository ID, e.g. "IDL:corbalc/Node/NotFound:1.0"
	Payload func(*cdr.Encoder) // members, server side (may be nil)
	Body    *cdr.Decoder       // members, client side (nil until received)
}

func (e *UserException) Error() string { return "user exception " + e.ID }

// IsUserException reports whether err is (or wraps) a UserException with
// the given repository ID.
func IsUserException(err error, repoID string) bool {
	var ue *UserException
	return errors.As(err, &ue) && ue.ID == repoID
}

// SystemExceptionReply builds a complete GIOP Reply carrying se, for
// transports that must answer a request they will not dispatch (e.g. a
// dispatch-queue overflow refused with TRANSIENT). The returned message
// is pooled: the caller owns it and must Release it once written.
func SystemExceptionReply(v giop.Version, order cdr.ByteOrder, reqID uint32, se *SystemException) (*giop.Message, error) {
	out := giop.GetBodyEncoder(order)
	if _, err := giop.EncodeReplyPrelude(out, v, reqID, giop.ReplySystemException); err != nil {
		out.Release()
		return nil, err
	}
	giop.AlignBody(out, v)
	marshalSystemException(out, se)
	return giop.MessageFromEncoder(giop.Header{Version: v, Order: order, Type: giop.MsgReply}, out), nil
}

// Asynchronous invocation: the AMI polling model of CORBA Messaging.
// CallAsync sends a request immediately and hands back a Future the
// caller polls (Ready) or waits on (Wait); SyncScope selects how much of
// the send path a oneway invocation synchronises with, mirroring the
// CORBA Messaging SyncScope policy.
//
// Ownership discipline (DESIGN.md §12): the pooled request buffer never
// outlives the launch — every transport path either writes it to the
// socket before returning or takes ownership explicitly. The pooled
// reply buffer is owned by the PendingReply until the future resolves;
// Wait, Ready and Cancel are the release points the poolreturn analyzer
// checks.
package orb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"corbalc/internal/giop"
	"corbalc/internal/svcctx"
)

// SyncScope selects how much of the send path a oneway invocation waits
// for, after CORBA Messaging's SyncScope policy.
type SyncScope int

const (
	// SyncWithTransport (the default) returns once the request has been
	// flushed to the transport: the caller knows the bytes reached the
	// socket, and keeps ownership of the request buffer throughout.
	SyncWithTransport SyncScope = iota
	// SyncNone returns as soon as the transport accepts the frame:
	// ownership of the request buffer transfers to the transport's write
	// path (the coalescer releases it after the batch flushes), and no
	// delivery outcome is reported — fire and forget.
	SyncNone
)

// PendingReply is a transport's handle on one in-flight asynchronous
// call: the demultiplexer slot awaiting the reply. The Future serialises
// all access — implementations may assume Recv/TryRecv/Abandon are never
// invoked concurrently.
type PendingReply interface {
	// Recv blocks until the reply is delivered (ownership of the pooled
	// message transfers to the caller), the call fails terminally, or
	// ctx is done — the latter returns ctx's error WITHOUT abandoning
	// the call, so a bounded Wait can poll again later.
	Recv(ctx context.Context) (*giop.Message, error)
	// TryRecv polls without blocking: done reports whether the call
	// reached a terminal outcome (reply m transferred, or err).
	TryRecv() (m *giop.Message, done bool, err error)
	// Abandon gives up the call: the demux slot is freed, the server is
	// notified (GIOP CancelRequest), and a reply that raced in is
	// released. Called at most once, never concurrently with Recv.
	Abandon()
}

// AsyncChannel is optionally implemented by channels that can register a
// reply listener without parking a goroutine on it (iiop's multiplexed
// connection). Channels without it are adapted via a per-call goroutine.
type AsyncChannel interface {
	// CallAsync registers requestID in the reply demultiplexer and
	// writes req; the request buffer is NOT retained (same contract as
	// Call), so the caller may recycle it once CallAsync returns.
	CallAsync(ctx context.Context, req *giop.Message, requestID uint32) (PendingReply, error)
}

// OnewayChannel is optionally implemented by channels that can take
// ownership of a oneway frame instead of blocking until it is flushed
// (SyncNone). On success the message belongs to the channel, which
// releases it after the write completes; on error the caller retains
// ownership (and may retry another profile).
type OnewayChannel interface {
	SendOwned(ctx context.Context, req *giop.Message) error
}

// errNoAsync reports a channel (or pool stripe) that implements neither
// AsyncChannel nor OnewayChannel; callers fall back to the synchronous
// primitives.
var errNoAsync = errors.New("orb: channel does not support async calls")

// ErrFutureCancelled is the cause recorded when Future.Cancel resolves a
// future (wrapped in CORBA::TIMEOUT; test with errors.Is).
var ErrFutureCancelled = errors.New("orb: future cancelled")

// Future tracks one asynchronous invocation from launch to resolution.
// It resolves exactly once — with the decoded reply outcome, a transport
// failure, or cancellation — and is safe for concurrent use.
type Future struct {
	orb    *ORB
	op     string
	callID string
	reqID  uint32
	result Unmarshaller
	pr     PendingReply // nil once resolved, or for collocated launches

	chain []ClientInterceptor
	info  *RequestInfo
	start time.Time

	mu        sync.Mutex
	cond      sync.Cond
	resolved  bool
	cancelled bool
	waiting   bool
	interrupt context.CancelFunc // set while a Wait is blocked in Recv
	err       error
}

// Operation returns the invoked operation name.
func (f *Future) Operation() string { return f.op }

// CallID returns the call's end-to-end correlation ID (the SvcCallID
// service context both sides of the call observe).
func (f *Future) CallID() string { return f.callID }

// Done reports whether the future has resolved (without polling the
// transport; see Ready).
func (f *Future) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.resolved
}

// Err returns the resolved outcome (nil on success); valid only after
// Wait returned or Ready/Done reported true.
func (f *Future) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Ready polls the transport without blocking: it reports whether the
// future has resolved, decoding the reply (and releasing its pooled
// buffer) when it just arrived.
func (f *Future) Ready() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.resolved {
		return true
	}
	if f.waiting || f.cancelled {
		// A blocked Wait (or a cancel in flight) owns the PendingReply.
		return false
	}
	m, done, err := f.pr.TryRecv()
	if !done {
		return false
	}
	f.resolve(context.Background(), m, err)
	f.cond.Broadcast()
	return true
}

// Wait blocks until the future resolves or ctx is done, returning the
// call's outcome. A ctx expiry does NOT resolve the future: the call
// stays in flight and Wait may be called again (AMI polling); use Cancel
// to give the call up. Concurrent Waits are safe — one polls the
// transport, the rest queue on its resolution.
func (f *Future) Wait(ctx context.Context) error {
	wctx, stop, err, done := f.claimWait(ctx)
	if done {
		return err
	}
	m, rerr := f.pr.Recv(wctx)
	stop()
	return f.settleWait(ctx, m, rerr)
}

// claimWait blocks until the future settles, the ctx expires, or the
// caller becomes the polling waiter (done=false: it must Recv on wctx
// and then settleWait).
func (f *Future) claimWait(ctx context.Context) (wctx context.Context, stop context.CancelFunc, err error, done bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.resolved {
			return nil, nil, f.err, true
		}
		if f.cancelled {
			// Cancel lost its waiter (ctx expiry below); finalise here.
			f.finishCancel()
			f.cond.Broadcast()
			return nil, nil, f.err, true
		}
		if !f.waiting {
			break
		}
		if ctx.Done() != nil && ctx.Err() != nil {
			return nil, nil, ctxError(ctx, ctx.Err()), true
		}
		f.cond.Wait()
	}
	f.waiting = true
	wctx, stop = context.WithCancel(ctx)
	f.interrupt = stop
	return wctx, stop, nil, false
}

// settleWait is the second half of Wait: the polling waiter hands back
// the Recv outcome and the future settles (or stays in flight on a
// caller-ctx expiry).
func (f *Future) settleWait(ctx context.Context, m *giop.Message, err error) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	defer f.cond.Broadcast()
	f.waiting = false
	f.interrupt = nil
	switch {
	case f.cancelled:
		// Cancel interrupted the receive; it owns the resolution. A
		// reply that won the race is released — the caller asked for the
		// call to be dropped.
		if m != nil {
			m.Release()
		}
		f.finishCancel()
	case err != nil && ctxDone(ctx, err):
		// The caller's ctx expired: hand the PendingReply back and
		// leave the call in flight.
		return ctxError(ctx, err)
	default:
		f.resolve(ctx, m, err)
	}
	return f.err
}

// Cancel gives up on the call: the reply slot is freed, the server is
// notified with a GIOP CancelRequest, and the future resolves with
// CORBA::TIMEOUT wrapping ErrFutureCancelled. Idempotent; a no-op once
// resolved.
func (f *Future) Cancel() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.resolved || f.cancelled {
		return
	}
	f.cancelled = true
	if f.waiting {
		// The blocked Wait owns the PendingReply: interrupt its receive
		// and let it finalise the cancellation.
		if f.interrupt != nil {
			f.interrupt()
		}
		for !f.resolved {
			f.cond.Wait()
		}
		return
	}
	f.finishCancel()
	f.cond.Broadcast()
}

// finishCancel abandons the in-flight call and resolves the future as
// cancelled. Caller holds f.mu.
func (f *Future) finishCancel() {
	if f.pr != nil {
		f.pr.Abandon()
	}
	f.complete(context.Background(), &wrappedException{SystemException: Timeout(), cause: ErrFutureCancelled})
}

// resolve maps a terminal PendingReply outcome to the call's result:
// decoding the reply (and releasing its pooled buffer) on success,
// wrapping transport failures in the CORBA exception model otherwise.
// Caller holds f.mu.
func (f *Future) resolve(ctx context.Context, m *giop.Message, err error) {
	var res error
	switch {
	case err != nil:
		var se *SystemException
		switch {
		case errors.As(err, &se):
			res = err
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			res = &wrappedException{SystemException: Timeout(), cause: err}
		default:
			res = fmt.Errorf("%w: %v", CommFailure(), err)
		}
	default:
		sc := clientScratchPool.Get().(*clientScratch)
		res = f.orb.decodeReply(sc, m, f.reqID, f.result)
		clientScratchPool.Put(sc)
	}
	f.complete(ctx, res)
}

// complete records the resolution: outcome, stats, and the interceptor
// reply point. Caller holds f.mu.
func (f *Future) complete(ctx context.Context, res error) {
	f.resolved = true
	f.pr = nil
	f.err = res
	elapsed := time.Since(f.start)
	f.orb.stats.recordAsyncDone(elapsed, res)
	if f.info != nil {
		f.info.Elapsed = elapsed
		f.info.Err = res
		for _, ci := range f.chain {
			ci.ReceiveReply(ctx, f.info)
		}
	}
}

// CallAsyncContext launches an asynchronous invocation (the AMI polling
// model): the request is built and written immediately, and the returned
// Future tracks the reply. On a collocated target the call executes
// synchronously and the future comes back already resolved. A launch
// failure (no reachable profile, dead connection) is returned directly
// and no future is created.
func (r *ObjectRef) CallAsyncContext(ctx context.Context, op string, args Marshaller, result Unmarshaller) (*Future, error) {
	if r.ior.IsNil() {
		return nil, ObjectNotExist()
	}
	o := r.orb
	if err := ctx.Err(); err != nil {
		return nil, ctxError(ctx, err)
	}
	chain := o.clientChain()
	callID := svcctx.CallID(ctx)
	if callID == "" {
		if len(chain) > 0 {
			ctx, callID = svcctx.EnsureCallID(ctx)
		} else {
			callID = svcctx.NewCallID()
		}
	}

	reqID := o.nextRequestID()
	objectKey, local, err := r.targetKey()
	if err != nil {
		return nil, err
	}

	// The scratch state is free as soon as the request is encoded
	// (EncodeRequest copies everything into the pooled encoder), so it
	// does not ride along with the future.
	sc := clientScratchPool.Get().(*clientScratch)
	msg, err := o.buildRequest(ctx, sc, callID, reqID, objectKey, op, args, true)
	clientScratchPool.Put(sc)
	if err != nil {
		return nil, err
	}

	fu := &Future{orb: o, op: op, callID: callID, reqID: reqID, result: result, start: time.Now()}
	fu.cond.L = &fu.mu
	o.stats.recordAsyncLaunch()
	if len(chain) > 0 {
		fu.chain = chain
		fu.info = &RequestInfo{
			Operation: op,
			ObjectKey: objectKey,
			RequestID: reqID,
			CallID:    callID,
			Local:     local,
			Async:     true,
		}
		if dl, ok := ctx.Deadline(); ok {
			fu.info.Deadline = dl
		}
		for _, ci := range chain {
			ci.SendRequest(ctx, fu.info)
		}
	}

	if local {
		reply, herr := o.HandleMessage(ctx, msg)
		msg.Release()
		fu.mu.Lock()
		if herr != nil {
			fu.complete(ctx, herr)
		} else {
			fu.resolve(ctx, reply, nil)
		}
		fu.mu.Unlock()
		return fu, nil
	}

	pr, err := r.dispatchAsync(ctx, msg, reqID)
	if err != nil {
		msg.Release()
		fu.mu.Lock()
		fu.complete(ctx, err)
		fu.mu.Unlock()
		return nil, err
	}
	fu.pr = pr
	return fu, nil
}

// CallAsync is the context-less form of CallAsyncContext, for the public
// API surface and tests.
func (r *ObjectRef) CallAsync(op string, args Marshaller, result Unmarshaller) (*Future, error) {
	return r.CallAsyncContext(context.Background(), op, args, result)
}

// dispatchAsync launches the built request over the reference's
// profiles. On success the message has been consumed (written and
// releasable, or ownership moved to the adapter goroutine); on error the
// caller still owns it.
func (r *ObjectRef) dispatchAsync(ctx context.Context, msg *giop.Message, reqID uint32) (PendingReply, error) {
	o := r.orb
	var lastErr error
	rc := r.resolved(ctx)
	for i := range rc.profiles {
		ch := rc.chans[i]
		if ch == nil {
			var err error
			tp := rc.profiles[i]
			if ch, err = o.channelFor(ctx, tp.Tag, tp.Data); err != nil {
				if ctxDone(ctx, err) {
					return nil, ctxError(ctx, err)
				}
				lastErr = err
				continue
			}
		}
		if ac, ok := ch.(AsyncChannel); ok {
			pr, err := ac.CallAsync(ctx, msg, reqID)
			if err == nil {
				msg.Release()
				return pr, nil
			}
			if errors.Is(err, errNoAsync) {
				return adaptSyncCall(ctx, ch, msg, reqID), nil
			}
			if ctxDone(ctx, err) {
				return nil, ctxError(ctx, err)
			}
			lastErr = err
			continue
		}
		return adaptSyncCall(ctx, ch, msg, reqID), nil
	}
	if lastErr == nil {
		return nil, NoImplement()
	}
	var se *SystemException
	if errors.As(lastErr, &se) {
		return nil, lastErr
	}
	return nil, fmt.Errorf("%w: %v", CommFailure(), lastErr)
}

// syncOutcome is the single delivery of a sync-adapted call.
type syncOutcome struct {
	m   *giop.Message
	err error
}

// syncPending adapts a synchronous Channel.Call to the PendingReply
// shape: a goroutine parks on the call and delivers its outcome exactly
// once into a buffered channel.
type syncPending struct {
	cancel context.CancelFunc // aborts the parked Call
	ch     chan syncOutcome
	done   bool // outcome consumed (Future-serialised, no lock needed)
}

// adaptSyncCall wraps a synchronous channel in a PendingReply. Ownership
// of msg moves to the adapter goroutine, which releases it when the call
// returns.
func adaptSyncCall(ctx context.Context, ch Channel, msg *giop.Message, reqID uint32) PendingReply {
	cctx, cancel := context.WithCancel(ctx)
	p := &syncPending{cancel: cancel, ch: make(chan syncOutcome, 1)}
	//lint:ignore goroutinelifetime bounded by the call itself: ch.Call returns when the reply arrives, cctx is cancelled (Abandon/launch ctx), or the channel's CallTimeout fires
	go func() {
		reply, err := ch.Call(cctx, msg, reqID)
		msg.Release()
		p.ch <- syncOutcome{m: reply, err: err}
	}()
	return p
}

// Recv implements PendingReply.
func (p *syncPending) Recv(ctx context.Context) (*giop.Message, error) {
	select {
	case out := <-p.ch:
		p.done = true
		return out.m, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryRecv implements PendingReply.
func (p *syncPending) TryRecv() (*giop.Message, bool, error) {
	select {
	case out := <-p.ch:
		p.done = true
		return out.m, true, out.err
	default:
		return nil, false, nil
	}
}

// Abandon implements PendingReply: aborting the parked call guarantees a
// prompt outcome delivery, which is consumed so a reply that raced the
// abort is released.
func (p *syncPending) Abandon() {
	if p.done {
		return
	}
	p.cancel()
	out := <-p.ch
	p.done = true
	if out.m != nil {
		out.m.Release()
	}
}

// Package orb implements the lightweight Object Request Broker at the
// heart of CORBA-LC: an object adapter with dynamically-invoked servants,
// GIOP request dispatch, client-side object references with pluggable
// transports, and the CORBA exception model.
//
// The ORB is transport-neutral: it consumes and produces giop.Message
// values. Transports (the real IIOP/TCP transport in internal/iiop, the
// virtual in-process transport in internal/simnet) register themselves by
// IOR profile tag and move those messages.
package orb

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/giop"
	"corbalc/internal/ior"
	"corbalc/internal/svcctx"
)

// Channel is an established duplex connection to a remote endpoint over
// which GIOP messages travel. Call blocks until the reply whose request
// ID matches arrives, the context is done, or the channel fails; on
// cancellation implementations should notify the peer (the IIOP channel
// emits a GIOP CancelRequest). Implementations must be safe for
// concurrent use.
//
// Ownership: implementations must not retain req (or any slice of its
// body) after Call or Send returns — the caller recycles the request
// buffer immediately afterwards. A reply returned by Call is transferred
// to the caller, who releases it once decoded.
type Channel interface {
	Call(ctx context.Context, req *giop.Message, requestID uint32) (*giop.Message, error)
	Send(ctx context.Context, req *giop.Message) error
	Close() error
}

// Transport dials endpoints named by an IOR profile it understands.
type Transport interface {
	// Tag is the IOR profile tag this transport consumes.
	Tag() uint32
	// Endpoint extracts a cache key (e.g. "host:port") from the profile.
	Endpoint(profile []byte) (string, error)
	// Dial opens a channel to the endpoint described by the profile,
	// bounding connection establishment by ctx.
	Dial(ctx context.Context, profile []byte) (Channel, error)
}

// KeyExtractor is optionally implemented by transports whose profiles
// embed the object key (vendor profiles without an accompanying IIOP
// profile). The ORB uses it to address requests sent over that
// transport.
type KeyExtractor interface {
	ObjectKey(profile []byte) ([]byte, error)
}

// IORDecorator mutates every IOR the ORB mints, letting transports add
// their own profiles (e.g. the simnet virtual endpoint).
type IORDecorator func(ref *ior.IOR, objectKey string)

// ORB is one Object Request Broker instance. A process typically runs one
// ORB per CORBA-LC node.
type ORB struct {
	id      string // unique instance identity for collocation shortcuts
	adapter *Adapter
	version giop.Version
	order   cdr.ByteOrder

	// The registry tables below are read on every invocation by every
	// caller goroutine but mutated only by rare control-plane calls
	// (RegisterTransport, AddInterceptor, channel adoption), so they are
	// copy-on-write: readers load an immutable snapshot through an
	// atomic pointer — no shared lock, no cacheline bouncing between
	// cores — while writers copy-and-publish under mu.
	mu                 sync.Mutex // serialises COW writers and guards host/port
	transports         atomic.Pointer[map[uint32]Transport]
	channels           atomic.Pointer[map[string]Channel] // endpoint -> live channel
	decorators         atomic.Pointer[[]IORDecorator]
	clientInterceptors atomic.Pointer[[]ClientInterceptor]
	serverInterceptors atomic.Pointer[[]ServerInterceptor]
	host               string
	port               uint16

	reqID atomic.Uint32

	// chanGen versions the channel cache: Shutdown bumps it so
	// ObjectRef-level resolved-channel caches invalidate themselves.
	chanGen atomic.Uint64

	// stats is the always-registered stats/latency interceptor backing
	// RequestsServed/RequestsSent (exported for the E1 benchmarks).
	stats *Stats
}

var orbSeq atomic.Uint64

// processNonce makes ORB identities unique across processes, so the
// in-process collocation profile of an IOR minted elsewhere can never
// match a local ORB by accident.
var processNonce = func() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the PID; collisions then require PID reuse AND
		// matching ORB sequence numbers.
		return fmt.Sprintf("p%d", os.Getpid())
	}
	return hex.EncodeToString(b[:])
}()

// Option configures an ORB.
type Option func(*ORB)

// WithGIOPVersion selects the GIOP version for outgoing requests
// (incoming requests are answered in the version they arrive in).
func WithGIOPVersion(v giop.Version) Option { return func(o *ORB) { o.version = v } }

// WithByteOrder selects the byte order of outgoing messages.
func WithByteOrder(bo cdr.ByteOrder) Option { return func(o *ORB) { o.order = bo } }

// NewORB creates an ORB with an empty adapter and no transports.
func NewORB(opts ...Option) *ORB {
	o := &ORB{
		id:      fmt.Sprintf("orb-%s-%d", processNonce, orbSeq.Add(1)),
		adapter: NewAdapter(),
		version: giop.V12,
		order:   cdr.LittleEndian,
		stats:   &Stats{},
	}
	transports := make(map[uint32]Transport)
	channels := make(map[string]Channel)
	o.transports.Store(&transports)
	o.channels.Store(&channels)
	// Stats accounting and deadline enforcement are intrinsic to the
	// dispatch loops (see invoke and handleRequest), not chain members:
	// an empty chain lets the hot path skip building the RequestInfo
	// nothing would observe.
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// ID returns the ORB's process-unique identity.
func (o *ORB) ID() string { return o.id }

// Adapter returns the ORB's object adapter.
func (o *ORB) Adapter() *Adapter { return o.adapter }

// Stats returns the ORB's built-in stats/latency interceptor.
func (o *ORB) Stats() *Stats { return o.stats }

// RequestsServed reports how many inbound requests this ORB dispatched.
func (o *ORB) RequestsServed() uint64 { return o.stats.RequestsServed() }

// RequestsSent reports how many outbound requests this ORB issued.
func (o *ORB) RequestsSent() uint64 { return o.stats.RequestsSent() }

// RegisterTransport makes a transport available for outbound calls.
func (o *ORB) RegisterTransport(t Transport) {
	o.mu.Lock()
	defer o.mu.Unlock()
	cur := *o.transports.Load()
	next := make(map[uint32]Transport, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[t.Tag()] = t
	o.transports.Store(&next)
}

// transportFor returns the transport registered for an IOR profile tag.
func (o *ORB) transportFor(tag uint32) (Transport, bool) {
	t, ok := (*o.transports.Load())[tag]
	return t, ok
}

// AddIORDecorator registers a decorator applied to every IOR this ORB
// mints from now on.
func (o *ORB) AddIORDecorator(d IORDecorator) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var cur []IORDecorator
	if p := o.decorators.Load(); p != nil {
		cur = *p
	}
	next := make([]IORDecorator, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, d)
	o.decorators.Store(&next)
}

// SetEndpoint records the advertised IIOP endpoint used when minting
// IORs; the IIOP server calls it once it is listening.
func (o *ORB) SetEndpoint(host string, port uint16) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.host, o.port = host, port
}

// Endpoint returns the advertised host and port ("" and 0 if unset).
func (o *ORB) Endpoint() (string, uint16) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.host, o.port
}

// Activate binds a servant under key and returns an IOR designating it.
// The IOR carries the IIOP profile (if an endpoint is set) plus an
// in-process profile enabling collocated-call shortcutting.
func (o *ORB) Activate(key string, s Servant) *ior.IOR {
	o.adapter.Activate(key, s)
	return o.NewIOR(s.RepositoryID(), key)
}

// NewIOR mints an IOR for an object key served by this ORB.
func (o *ORB) NewIOR(typeID, key string) *ior.IOR {
	host, port := o.Endpoint()
	var ref *ior.IOR
	if host != "" {
		ref = ior.New(typeID, host, port, []byte(key))
	} else {
		ref = &ior.IOR{TypeID: typeID}
	}
	ref.AddProfile(ior.TagCorbalcInProcess, []byte(o.id+"\x00"+key))
	if p := o.decorators.Load(); p != nil {
		for _, d := range *p {
			d(ref, key)
		}
	}
	return ref
}

// nextRequestID returns a fresh outbound request id.
func (o *ORB) nextRequestID() uint32 { return o.reqID.Add(1) }

// HandleMessage dispatches an inbound GIOP message and returns the reply
// message, or nil when no reply is due (oneway requests, CancelRequest).
// Transports call this from their receive loops; ctx bounds the dispatch
// and is the parent of the context servants observe (transports cancel it
// when the peer sends CancelRequest or the connection dies).
func (o *ORB) HandleMessage(ctx context.Context, m *giop.Message) (*giop.Message, error) {
	switch m.Header.Type {
	case giop.MsgRequest:
		return o.handleRequest(ctx, m)
	case giop.MsgLocateRequest:
		return o.handleLocateRequest(m)
	case giop.MsgCancelRequest, giop.MsgCloseConnection:
		// CancelRequest is honoured at the transport layer (the IIOP
		// server cancels the in-flight request's context); an ORB fed one
		// directly has nothing to do.
		return nil, nil
	case giop.MsgMessageError:
		return nil, errors.New("orb: peer reported message error")
	default:
		return giop.NewMessage(giop.Header{
			Version: m.Header.Version, Order: m.Header.Order, Type: giop.MsgMessageError,
		}, nil), nil
	}
}

// serverScratch is the pooled per-dispatch decode state: the body
// decoder, the request header (whose service-context slice keeps its
// capacity across dispatches), and the operation-name intern cache
// (dispatched operations draw from a small fixed vocabulary, so after
// warm-up the per-request name string stops allocating). The RequestInfo
// handed to interceptors is NOT pooled — interceptors may legitimately
// retain it.
type serverScratch struct {
	dec cdr.Decoder
	req giop.RequestHeader
	ops map[string]string
	// cctx is the reusable call-ID context for the interceptor-free,
	// deadline-free dispatch path; it is rebound per request, so (like
	// every pooled request context) servants must not retain it.
	cctx svcctx.CallCtx
}

var scratchPool = sync.Pool{New: func() any {
	return &serverScratch{ops: make(map[string]string)}
}}

func (o *ORB) handleRequest(ctx context.Context, m *giop.Message) (*giop.Message, error) {
	v := m.Header.Version
	sc := scratchPool.Get().(*serverScratch)
	defer scratchPool.Put(sc)
	d := &sc.dec
	m.ResetBodyDecoder(d)
	req := &sc.req
	if err := giop.DecodeRequestIntoInterned(d, v, req, sc.ops); err != nil {
		return nil, fmt.Errorf("orb: bad request header: %w", err)
	}
	if err := giop.AlignBodyDecode(d, v); err != nil {
		return nil, fmt.Errorf("orb: bad request body padding: %w", err)
	}

	// Derive the request context from the propagated service contexts:
	// deadline applied, call ID attached. The common case — no deadline
	// shipped, no interceptor registered — binds the scratch's reusable
	// call-ID context instead of deriving real context nodes, so the
	// dispatch itself allocates nothing; a deadline or a chain (whose
	// RequestInfo needs a durable string) takes the full derivation.
	scInfo := svcctx.ExtractBytes(req.ServiceContexts)
	chain := o.serverChain()
	var info *RequestInfo
	if scInfo.HasDeadline || len(chain) > 0 {
		full := scInfo.Materialise()
		var cancel context.CancelFunc
		ctx, cancel = svcctx.NewContextInfo(ctx, full)
		defer cancel()
		if len(chain) > 0 {
			// Only interceptors observe the RequestInfo (and the clock
			// reads feeding its Elapsed); with none registered, skip both.
			info = &RequestInfo{
				Operation: req.Operation,
				ObjectKey: req.ObjectKey,
				RequestID: req.RequestID,
				CallID:    full.CallID,
				Oneway:    !req.ResponseExpected,
			}
			if scInfo.HasDeadline {
				info.Deadline = scInfo.Deadline
			}
		}
	} else if len(scInfo.CallID) > 0 {
		sc.cctx.Bind(ctx, scInfo.CallID)
		ctx = &sc.cctx
	}

	// The reply is built optimistically in its final wire form: header
	// first (status NO_EXCEPTION), then the servant's results encoded
	// DIRECTLY into the same pooled encoder — no staging buffer, no
	// splice copy. Alignment holds because our reply headers carry no
	// service contexts, so the body always begins at stream offset 24 —
	// a multiple of 8 — in both GIOP 1.0 and 1.2 (for 1.2, AlignBody
	// re-checks this). TestReplyBodySpliceAlignment pins the invariant.
	// If the servant raises, the result bytes are truncated away and the
	// status word patched in place.
	out := giop.GetBodyEncoder(m.Header.Order)
	statusOff, err := giop.EncodeReplyPrelude(out, v, req.RequestID, giop.ReplyNoException)
	if err != nil {
		out.Release()
		return nil, err
	}
	giop.AlignBody(out, v)
	bodyStart := out.Len()

	// The chain path needs real timing for RequestInfo.Elapsed; the
	// intrinsic path samples the latency clock 1-in-8. A oneway dispatch
	// feeds no latency estimate at all (there is no reply whose clock it
	// would close), so it skips the sampling clock read too.
	var start time.Time
	if info != nil {
		start = time.Now()
	} else if req.ResponseExpected {
		start = o.stats.servedStart()
	}
	var invokeErr error
	// The shipped deadline gate, applied before any registered
	// interceptor: work the client already gave up on is not dispatched.
	if scInfo.HasDeadline && !time.Now().Before(scInfo.Deadline) {
		invokeErr = Timeout()
	}
	for _, si := range chain {
		if invokeErr != nil {
			break
		}
		invokeErr = si.ReceiveRequest(ctx, info)
	}
	if invokeErr == nil {
		servant, ok := o.adapter.Resolve(req.ObjectKey)
		if !ok {
			invokeErr = ObjectNotExist()
		} else {
			invokeErr = safeInvoke(ctx, servant, req.Operation, d, out)
		}
	}
	if info != nil {
		elapsed := time.Since(start)
		if req.ResponseExpected {
			o.stats.recordServedTimed(elapsed, invokeErr)
		} else {
			o.stats.recordOnewayServed(invokeErr)
		}
		info.Elapsed = elapsed
		info.Err = invokeErr
	} else if req.ResponseExpected {
		o.stats.recordServed(start, invokeErr)
	} else {
		o.stats.recordOnewayServed(invokeErr)
	}
	for _, si := range chain {
		si.SendReply(ctx, info)
	}

	if !req.ResponseExpected {
		out.Release()
		return nil, nil
	}

	status := giop.ReplyNoException
	var se *SystemException
	var ue *UserException
	if invokeErr != nil {
		status, se, ue = classifyInvokeErr(invokeErr)
	}

	if status != giop.ReplyNoException {
		// Back out whatever the servant wrote before raising and patch
		// the optimistic status word.
		out.Truncate(bodyStart)
		out.PatchULong(statusOff, uint32(status))
		if status == giop.ReplyUserException {
			out.WriteString(ue.ID)
			if ue.Payload != nil {
				ue.Payload(out)
			}
		} else {
			marshalSystemException(out, se)
		}
	}
	return giop.MessageFromEncoder(giop.Header{
		Version: v, Order: m.Header.Order, Type: giop.MsgReply,
	}, out), nil
}

// classifyInvokeErr maps a servant error to its reply status. Split out
// of handleRequest so the errors.As targets (whose addresses escape to
// the heap) cost their cells only on the error path, not per request.
func classifyInvokeErr(err error) (giop.ReplyStatus, *SystemException, *UserException) {
	var se *SystemException
	var ue *UserException
	switch {
	case errors.As(err, &ue):
		return giop.ReplyUserException, nil, ue
	case errors.As(err, &se):
		return giop.ReplySystemException, se, nil
	}
	return giop.ReplySystemException, Unknown(), nil
}

// safeInvoke shields the dispatch loop from servant panics, converting
// them to CORBA::UNKNOWN as a real ORB would. Context-aware servants
// receive the request context; plain servants are invoked as before.
func safeInvoke(ctx context.Context, s Servant, op string, args *cdr.Decoder, reply *cdr.Encoder) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("servant panic: %v: %w", r, Unknown())
		}
	}()
	if cs, ok := s.(ContextServant); ok {
		return cs.InvokeContext(ctx, op, args, reply)
	}
	return s.Invoke(op, args, reply)
}

func (o *ORB) handleLocateRequest(m *giop.Message) (*giop.Message, error) {
	v := m.Header.Version
	d := m.BodyDecoder()
	req, err := giop.DecodeLocateRequest(d, v)
	if err != nil {
		return nil, fmt.Errorf("orb: bad locate request: %w", err)
	}
	status := giop.LocateUnknownObject
	if _, ok := o.adapter.Resolve(req.ObjectKey); ok {
		status = giop.LocateObjectHere
	}
	out := giop.GetBodyEncoder(m.Header.Order)
	giop.EncodeLocateReply(out, &giop.LocateReplyHeader{RequestID: req.RequestID, Status: status})
	return giop.MessageFromEncoder(giop.Header{
		Version: v, Order: m.Header.Order, Type: giop.MsgLocateReply,
	}, out), nil
}

// channelFor returns the endpoint's channel pool via the transport
// registered for tag, creating it on first use. Pools dial lazily, so
// this never blocks on the network; dial failures surface from
// Call/Send, where the pool evicts just the failed stripe instead of
// the whole endpoint.
func (o *ORB) channelFor(ctx context.Context, tag uint32, profile []byte) (Channel, error) {
	t, ok := o.transportFor(tag)
	if !ok {
		return nil, fmt.Errorf("orb: no transport for profile tag %#x", tag)
	}
	ep, err := t.Endpoint(profile)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%#x/%s", tag, ep)

	if ch, ok := (*o.channels.Load())[key]; ok {
		return ch, nil
	}

	pool := newChannelPool(t, profile)
	winner, adopted := o.adoptChannel(key, pool)
	if !adopted {
		_ = pool.Close()
	}
	return winner, nil
}

// adoptChannel caches ch under key unless a concurrent dial won the
// race; the cached winner is returned along with whether ch was the one
// adopted. The endpoint table is copy-on-write: adoption copies it once
// per endpoint lifetime, keeping the per-call lookup in channelFor
// lock-free.
func (o *ORB) adoptChannel(key string, ch Channel) (Channel, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	cur := *o.channels.Load()
	if existing, ok := cur[key]; ok {
		return existing, false
	}
	next := make(map[string]Channel, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = ch
	o.channels.Store(&next)
	return ch, true
}

// Shutdown closes all cached client channels. Bumping chanGen first
// invalidates every ObjectRef's resolved-channel cache, so refs used
// after (or across a racing) Shutdown re-resolve instead of holding
// closed pools.
func (o *ORB) Shutdown() {
	o.chanGen.Add(1)
	o.mu.Lock()
	chans := *o.channels.Load()
	empty := make(map[string]Channel)
	o.channels.Store(&empty)
	o.mu.Unlock()
	for _, ch := range chans {
		_ = ch.Close()
	}
}

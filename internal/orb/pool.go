// Striped per-endpoint connection pools. The ORB's channel cache used
// to hold exactly one Channel per endpoint, so every concurrent caller
// funneled through one connection's write path and one reply-demux map.
// It now holds a channelPool: N independently-dialed stripes, giving
// the transport N write paths and N sharded pending maps, while failure
// handling narrows from "drop the endpoint" to "evict one stripe" — the
// surviving stripes keep serving during the lazy redial.
//
// Stripe selection is processor-affine rather than round-robin: each
// caller draws a reusable hint from a sync.Pool (which is per-P under
// the hood), so goroutines scheduled on the same core keep hitting the
// same stripe. That keeps one stripe's pending-map mutex and write
// coalescer core-local — round-robin made every caller touch every
// stripe, bouncing all N locks across all cores — while different cores
// naturally land on different stripes. Dial failures still fall through
// to the remaining stripes, so availability is unchanged.
package orb

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"corbalc/internal/giop"
)

// PoolSizer is optionally implemented by a Transport to set how many
// channels the ORB pools per endpoint. Transports that do not implement
// it (or return a value below 1) get a single channel, which keeps the
// pool transparent for stateless transports like simnet.
type PoolSizer interface {
	ChannelPoolSize() int
}

// unusable is optionally implemented by channels that can report a dead
// connection before a call is wasted on it (e.g. iiop's clientConn after
// its read loop failed). The pool evicts such stripes eagerly.
type unusable interface {
	Unusable() bool
}

// errPoolClosed reports a call raced with ORB shutdown.
var errPoolClosed = errors.New("orb: channel pool closed")

// channelPool is the Channel the ORB caches per endpoint: a fixed set
// of lazily-dialed stripes. It implements Channel itself, so the rest
// of the invocation path is unchanged.
type channelPool struct {
	transport Transport
	profile   []byte
	size      int
	// rr seeds newly-minted affinity hints; it advances only when a
	// hint is created (or a stripe fails over), not per call.
	rr atomic.Uint32
	// hints holds per-P stripe affinity tokens: a caller's pick reuses
	// whatever stripe its core used last.
	hints sync.Pool

	mu      sync.RWMutex
	stripes []Channel
	closed  bool
}

// stripeHint is a per-P affinity token: the stripe index this core's
// callers should keep using. It lives in a sync.Pool purely for the
// pool's per-P caching — the value is advisory, never a lock.
type stripeHint struct {
	idx uint32
}

func newChannelPool(t Transport, profile []byte) *channelPool {
	size := 1
	if ps, ok := t.(PoolSizer); ok {
		if n := ps.ChannelPoolSize(); n > 0 {
			size = n
		}
	}
	return &channelPool{
		transport: t,
		profile:   append([]byte(nil), profile...),
		size:      size,
		stripes:   make([]Channel, size),
	}
}

// stripe returns the live channel at index i, dialing lazily and
// evicting a channel that reports itself unusable (its replacement is
// dialed immediately). Dials happen outside the pool lock; a lost dial
// race closes the loser.
func (p *channelPool) stripe(ctx context.Context, i int) (Channel, error) {
	ch, closed := p.peek(i)
	if closed {
		return nil, errPoolClosed
	}
	if ch != nil {
		if u, ok := ch.(unusable); !ok || !u.Unusable() {
			return ch, nil
		}
		p.evict(i, ch)
	}
	nc, err := p.transport.Dial(ctx, p.profile)
	if err != nil {
		return nil, err
	}
	winner, adopted := p.adopt(i, nc)
	if !adopted {
		_ = nc.Close()
		if winner == nil {
			return nil, errPoolClosed
		}
	}
	return winner, nil
}

// peek reads slot i and the closed flag.
func (p *channelPool) peek(i int) (ch Channel, closed bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.stripes[i], p.closed
}

// adopt installs nc in slot i unless a concurrent dial won the race (the
// racing winner is returned) or the pool closed (nil winner); adopted
// reports whether nc was installed.
func (p *channelPool) adopt(i int, nc Channel) (winner Channel, adopted bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, false
	}
	if cur := p.stripes[i]; cur != nil {
		return cur, false
	}
	p.stripes[i] = nc
	return nc, true
}

// evict forgets ch if it still occupies slot i and closes it. Identity
// comparison makes eviction idempotent and keeps a racing redial's
// fresh channel safe.
func (p *channelPool) evict(i int, ch Channel) {
	p.mu.Lock()
	if p.stripes[i] == ch {
		p.stripes[i] = nil
	}
	p.mu.Unlock()
	_ = ch.Close()
}

// pick selects this core's affine stripe, falling through the remaining
// stripes when its dial fails. The first dial error is reported only
// when every stripe is down; a context failure aborts immediately (the
// caller gave up, not the stripes).
func (p *channelPool) pick(ctx context.Context) (Channel, int, error) {
	h, _ := p.hints.Get().(*stripeHint)
	if h == nil {
		// First pick on this P (or the GC emptied the pool): seed the
		// hint round-robin so cores spread across stripes.
		h = &stripeHint{idx: p.rr.Add(1)}
	}
	start := h.idx
	var firstErr error
	for a := 0; a < p.size; a++ {
		i := int((start + uint32(a)) % uint32(p.size))
		ch, err := p.stripe(ctx, i)
		if err != nil {
			if ctxDone(ctx, err) || errors.Is(err, errPoolClosed) {
				p.hints.Put(h)
				return nil, 0, err
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if a != 0 {
			// Failed over: rebind this core's affinity to the stripe
			// that actually worked.
			h.idx = start + uint32(a)
		}
		p.hints.Put(h)
		return ch, i, nil
	}
	p.hints.Put(h)
	return nil, 0, firstErr
}

// Call implements Channel. A failed call evicts its stripe (the other
// stripes keep serving) and returns the error to the caller: in-flight
// work on a dead connection is not transparently retried — at-most-once
// semantics stay with the caller — but the next call redistributes over
// the surviving stripes while the evicted one redials lazily.
func (p *channelPool) Call(ctx context.Context, req *giop.Message, requestID uint32) (*giop.Message, error) {
	ch, i, err := p.pick(ctx)
	if err != nil {
		return nil, err
	}
	reply, err := ch.Call(ctx, req, requestID)
	if err != nil && !ctxDone(ctx, err) {
		p.evict(i, ch)
	}
	return reply, err
}

// CallAsync implements AsyncChannel by delegating to a stripe that
// supports it, with Call's eviction discipline. A stripe without async
// support reports errNoAsync, and the ObjectRef falls back to the
// synchronous adapter.
func (p *channelPool) CallAsync(ctx context.Context, req *giop.Message, requestID uint32) (PendingReply, error) {
	ch, i, err := p.pick(ctx)
	if err != nil {
		return nil, err
	}
	ac, ok := ch.(AsyncChannel)
	if !ok {
		return nil, errNoAsync
	}
	pr, err := ac.CallAsync(ctx, req, requestID)
	if err != nil && !ctxDone(ctx, err) && !errors.Is(err, errNoAsync) {
		p.evict(i, ch)
	}
	return pr, err
}

// SendOwned implements OnewayChannel (SyncNone oneways) by delegating to
// a stripe that supports it, with Call's eviction discipline. Ownership
// of req transfers only on success.
func (p *channelPool) SendOwned(ctx context.Context, req *giop.Message) error {
	ch, i, err := p.pick(ctx)
	if err != nil {
		return err
	}
	oc, ok := ch.(OnewayChannel)
	if !ok {
		return errNoAsync
	}
	if err := oc.SendOwned(ctx, req); err != nil {
		if !ctxDone(ctx, err) && !errors.Is(err, errNoAsync) {
			p.evict(i, ch)
		}
		return err
	}
	return nil
}

// Send implements Channel (oneway requests), with Call's eviction
// discipline.
func (p *channelPool) Send(ctx context.Context, req *giop.Message) error {
	ch, i, err := p.pick(ctx)
	if err != nil {
		return err
	}
	if err := ch.Send(ctx, req); err != nil {
		if !ctxDone(ctx, err) {
			p.evict(i, ch)
		}
		return err
	}
	return nil
}

// takeAll marks the pool closed and hands back the live stripes; nil
// when already closed.
func (p *channelPool) takeAll() []Channel {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	stripes := p.stripes
	p.stripes = make([]Channel, p.size)
	return stripes
}

// Close implements Channel, closing every dialed stripe.
func (p *channelPool) Close() error {
	for _, ch := range p.takeAll() {
		if ch != nil {
			_ = ch.Close()
		}
	}
	return nil
}

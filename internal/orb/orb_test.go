package orb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"corbalc/internal/cdr"
	"corbalc/internal/giop"
	"corbalc/internal/ior"
)

// echoServant implements a small test interface with several operations.
type echoServant struct{}

func (echoServant) RepositoryID() string { return "IDL:corbalc/test/Echo:1.0" }

func (echoServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "echo_string":
		s, err := args.ReadString()
		if err != nil {
			return err
		}
		reply.WriteString(s)
		return nil
	case "add":
		a, err := args.ReadLong()
		if err != nil {
			return err
		}
		b, err := args.ReadLong()
		if err != nil {
			return err
		}
		reply.WriteLong(a + b)
		return nil
	case "mixed":
		// Exercises alignment of the spliced reply body: double first.
		reply.WriteDouble(3.5)
		reply.WriteOctet(7)
		reply.WriteULong(99)
		return nil
	case "fail_user":
		return &UserException{ID: "IDL:corbalc/test/Boom:1.0", Payload: func(e *cdr.Encoder) {
			e.WriteString("details")
			e.WriteLong(42)
		}}
	case "fail_system":
		return Transient()
	case "fail_plain":
		return errors.New("some internal error")
	case "panics":
		panic("servant bug")
	case "oneway_ping":
		return nil
	}
	return BadOperation()
}

func newLocalPair(t *testing.T, opts ...Option) (*ORB, *ObjectRef) {
	t.Helper()
	o := NewORB(opts...)
	ref := o.NewRef(o.Activate("test/echo", echoServant{}))
	return o, ref
}

func TestLocalInvoke(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"v12-le", []Option{WithGIOPVersion(giop.V12), WithByteOrder(cdr.LittleEndian)}},
		{"v12-be", []Option{WithGIOPVersion(giop.V12), WithByteOrder(cdr.BigEndian)}},
		{"v10-le", []Option{WithGIOPVersion(giop.V10), WithByteOrder(cdr.LittleEndian)}},
		{"v10-be", []Option{WithGIOPVersion(giop.V10), WithByteOrder(cdr.BigEndian)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, ref := newLocalPair(t, tc.opts...)
			var got string
			err := ref.Invoke("echo_string",
				func(e *cdr.Encoder) { e.WriteString("hola") },
				func(d *cdr.Decoder) error {
					var err error
					got, err = d.ReadString()
					return err
				})
			if err != nil {
				t.Fatal(err)
			}
			if got != "hola" {
				t.Fatalf("echo = %q", got)
			}
			var sum int32
			err = ref.Invoke("add",
				func(e *cdr.Encoder) { e.WriteLong(20); e.WriteLong(22) },
				func(d *cdr.Decoder) error {
					var err error
					sum, err = d.ReadLong()
					return err
				})
			if err != nil || sum != 42 {
				t.Fatalf("add = %d, %v", sum, err)
			}
		})
	}
}

func TestReplyBodySpliceAlignment(t *testing.T) {
	for _, v := range []giop.Version{giop.V10, giop.V12} {
		_, ref := newLocalPair(t, WithGIOPVersion(v))
		var d8 float64
		var oct byte
		var ul uint32
		err := ref.Invoke("mixed", nil, func(d *cdr.Decoder) error {
			var err error
			if d8, err = d.ReadDouble(); err != nil {
				return err
			}
			if oct, err = d.ReadOctet(); err != nil {
				return err
			}
			ul, err = d.ReadULong()
			return err
		})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if d8 != 3.5 || oct != 7 || ul != 99 {
			t.Fatalf("%v: got %v %d %d", v, d8, oct, ul)
		}
	}
}

func TestUserException(t *testing.T) {
	_, ref := newLocalPair(t)
	err := ref.Invoke("fail_user", nil, nil)
	if !IsUserException(err, "IDL:corbalc/test/Boom:1.0") {
		t.Fatalf("err = %v", err)
	}
	var ue *UserException
	if !errors.As(err, &ue) {
		t.Fatal("not a UserException")
	}
	s, err2 := ue.Body.ReadString()
	if err2 != nil || s != "details" {
		t.Fatalf("payload string = %q, %v", s, err2)
	}
	n, err2 := ue.Body.ReadLong()
	if err2 != nil || n != 42 {
		t.Fatalf("payload long = %d, %v", n, err2)
	}
}

func TestSystemExceptionPropagation(t *testing.T) {
	_, ref := newLocalPair(t)
	err := ref.Invoke("fail_system", nil, nil)
	var se *SystemException
	if !errors.As(err, &se) || se.Name != "TRANSIENT" {
		t.Fatalf("err = %v", err)
	}
	// A plain error maps to UNKNOWN.
	err = ref.Invoke("fail_plain", nil, nil)
	if !errors.As(err, &se) || se.Name != "UNKNOWN" {
		t.Fatalf("plain error -> %v", err)
	}
	// A panic maps to UNKNOWN, not a crash.
	err = ref.Invoke("panics", nil, nil)
	if !errors.As(err, &se) || se.Name != "UNKNOWN" {
		t.Fatalf("panic -> %v", err)
	}
	// An unknown operation maps to BAD_OPERATION.
	err = ref.Invoke("no_such_op", nil, nil)
	if !errors.As(err, &se) || se.Name != "BAD_OPERATION" {
		t.Fatalf("bad op -> %v", err)
	}
}

func TestObjectNotExist(t *testing.T) {
	o := NewORB()
	ref := o.NewRef(o.NewIOR("IDL:whatever:1.0", "absent/key"))
	err := ref.Invoke("anything", nil, nil)
	var se *SystemException
	if !errors.As(err, &se) || se.Name != "OBJECT_NOT_EXIST" {
		t.Fatalf("err = %v", err)
	}
	// Deactivation makes a live object unreachable.
	o2, ref2 := newLocalPair(t)
	o2.Adapter().Deactivate("test/echo")
	err = ref2.Invoke("echo_string", func(e *cdr.Encoder) { e.WriteString("x") }, nil)
	if !errors.As(err, &se) || se.Name != "OBJECT_NOT_EXIST" {
		t.Fatalf("after deactivate: %v", err)
	}
}

func TestNilReferenceInvoke(t *testing.T) {
	o := NewORB()
	ref := o.NewRef(&ior.IOR{})
	err := ref.Invoke("op", nil, nil)
	var se *SystemException
	if !errors.As(err, &se) || se.Name != "OBJECT_NOT_EXIST" {
		t.Fatalf("err = %v", err)
	}
}

func TestOneway(t *testing.T) {
	o, ref := newLocalPair(t)
	if err := ref.InvokeOneway("oneway_ping", nil); err != nil {
		t.Fatal(err)
	}
	if o.RequestsServed() != 1 {
		t.Fatalf("served = %d", o.RequestsServed())
	}
}

func TestLocateRequestHandling(t *testing.T) {
	o, _ := newLocalPair(t)
	for _, tc := range []struct {
		key  string
		want giop.LocateStatus
	}{
		{"test/echo", giop.LocateObjectHere},
		{"missing", giop.LocateUnknownObject},
	} {
		e := giop.NewBodyEncoder(cdr.BigEndian)
		if err := giop.EncodeLocateRequest(e, giop.V12, &giop.LocateRequestHeader{RequestID: 9, ObjectKey: []byte(tc.key)}); err != nil {
			t.Fatal(err)
		}
		reply, err := o.HandleMessage(context.Background(), &giop.Message{
			Header: giop.Header{Version: giop.V12, Order: cdr.BigEndian, Type: giop.MsgLocateRequest},
			Body:   e.Bytes(),
		})
		if err != nil {
			t.Fatal(err)
		}
		lr, err := giop.DecodeLocateReply(reply.BodyDecoder())
		if err != nil {
			t.Fatal(err)
		}
		if lr.Status != tc.want {
			t.Errorf("locate %q = %v, want %v", tc.key, lr.Status, tc.want)
		}
	}
}

func TestUnknownMessageTypeGetsMessageError(t *testing.T) {
	o := NewORB()
	reply, err := o.HandleMessage(context.Background(), &giop.Message{
		Header: giop.Header{Version: giop.V12, Order: cdr.BigEndian, Type: MsgTypeBogus},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Header.Type != giop.MsgMessageError {
		t.Fatalf("reply type = %v", reply.Header.Type)
	}
}

// MsgTypeBogus is an out-of-range GIOP message type for testing.
const MsgTypeBogus giop.MsgType = 42

// memTransport loops GIOP messages back into a target ORB, simulating a
// remote peer without sockets. It also counts dials to verify channel
// caching.
type memTransport struct {
	target *ORB
	mu     sync.Mutex
	dials  int
	broken bool // when set, calls fail once then heal
}

const memTag uint32 = 0x7E577E57

func (mt *memTransport) Tag() uint32 { return memTag }

func (mt *memTransport) Endpoint(profile []byte) (string, error) { return string(profile), nil }

func (mt *memTransport) Dial(_ context.Context, profile []byte) (Channel, error) {
	mt.mu.Lock()
	mt.dials++
	mt.mu.Unlock()
	return &memChannel{mt: mt}, nil
}

type memChannel struct{ mt *memTransport }

func (c *memChannel) Call(ctx context.Context, req *giop.Message, id uint32) (*giop.Message, error) {
	c.mt.mu.Lock()
	if c.mt.broken {
		c.mt.broken = false
		c.mt.mu.Unlock()
		return nil, errors.New("connection reset")
	}
	c.mt.mu.Unlock()
	return c.mt.target.HandleMessage(ctx, req)
}

func (c *memChannel) Send(ctx context.Context, req *giop.Message) error {
	_, err := c.mt.target.HandleMessage(ctx, req)
	return err
}

func (c *memChannel) Close() error { return nil }

func remoteRef(server *ORB, key string) *ior.IOR {
	r := &ior.IOR{TypeID: "IDL:corbalc/test/Echo:1.0"}
	r.AddProfile(memTag, []byte("server-endpoint"))
	// The mem transport addresses objects by the key carried in the
	// request, which requires an IIOP-style key; encode one.
	p := &ior.IIOPProfile{Major: 1, Minor: 2, Host: "mem", Port: 1, ObjectKey: []byte(key)}
	r.Profiles = append([]ior.TaggedProfile{p.Encode()}, r.Profiles...)
	return r
}

func TestRemoteInvokeViaTransport(t *testing.T) {
	server := NewORB()
	server.Activate("test/echo", echoServant{})
	client := NewORB()
	mt := &memTransport{target: server}
	client.RegisterTransport(mt)

	// No IIOP transport registered on the client, so the IIOP profile is
	// skipped and the mem profile carries the call.
	ref := client.NewRef(remoteRef(server, "test/echo"))
	var got string
	err := ref.Invoke("echo_string",
		func(e *cdr.Encoder) { e.WriteString("remote") },
		func(d *cdr.Decoder) error {
			var err error
			got, err = d.ReadString()
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if got != "remote" {
		t.Fatalf("echo = %q", got)
	}
	if server.RequestsServed() != 1 || client.RequestsSent() != 1 {
		t.Fatalf("served=%d sent=%d", server.RequestsServed(), client.RequestsSent())
	}

	// Channel caching: 10 more calls, still one dial.
	for i := 0; i < 10; i++ {
		if err := ref.Invoke("add",
			func(e *cdr.Encoder) { e.WriteLong(int32(i)); e.WriteLong(1) }, func(d *cdr.Decoder) error {
				_, err := d.ReadLong()
				return err
			}); err != nil {
			t.Fatal(err)
		}
	}
	if mt.dials != 1 {
		t.Fatalf("dials = %d, want 1", mt.dials)
	}

	// A failed call drops the cached channel; the next call re-dials.
	mt.broken = true
	err = ref.Invoke("add", func(e *cdr.Encoder) { e.WriteLong(1); e.WriteLong(1) }, nil)
	var se *SystemException
	if !errors.As(err, &se) || se.Name != "COMM_FAILURE" {
		t.Fatalf("broken call err = %v", err)
	}
	if err := ref.Invoke("add", func(e *cdr.Encoder) { e.WriteLong(1); e.WriteLong(1) }, func(d *cdr.Decoder) error {
		_, err := d.ReadLong()
		return err
	}); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
	if mt.dials != 2 {
		t.Fatalf("dials = %d, want 2", mt.dials)
	}
}

func TestNoTransportForProfile(t *testing.T) {
	client := NewORB()
	r := &ior.IOR{TypeID: "IDL:x:1.0"}
	r.AddProfile(0xAAAA, []byte("nowhere"))
	err := client.NewRef(r).Invoke("op", nil, nil)
	var se *SystemException
	if !errors.As(err, &se) || se.Name != "NO_IMPLEMENT" {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentLocalInvokes(t *testing.T) {
	_, ref := newLocalPair(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				want := fmt.Sprintf("g%d-i%d", g, i)
				var got string
				err := ref.Invoke("echo_string",
					func(e *cdr.Encoder) { e.WriteString(want) },
					func(d *cdr.Decoder) error {
						var err error
						got, err = d.ReadString()
						return err
					})
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					errs <- fmt.Errorf("got %q want %q", got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServantFunc(t *testing.T) {
	o := NewORB()
	ref := o.NewRef(o.Activate("fn", ServantFunc{
		RepoID: "IDL:corbalc/test/Fn:1.0",
		Fn: func(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
			reply.WriteString(op)
			return nil
		},
	}))
	if ref.TypeID() != "IDL:corbalc/test/Fn:1.0" {
		t.Fatalf("type id = %q", ref.TypeID())
	}
	var got string
	if err := ref.Invoke("whoami", nil, func(d *cdr.Decoder) error {
		var err error
		got, err = d.ReadString()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != "whoami" {
		t.Fatalf("got %q", got)
	}
}

func BenchmarkLocalNullInvoke(b *testing.B) {
	o := NewORB()
	ref := o.NewRef(o.Activate("test/echo", echoServant{}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ref.Invoke("oneway_ping", nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalEchoString(b *testing.B) {
	o := NewORB()
	ref := o.NewRef(o.Activate("test/echo", echoServant{}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := ref.Invoke("echo_string",
			func(e *cdr.Encoder) { e.WriteString("benchmark payload string") },
			func(d *cdr.Decoder) error { _, err := d.ReadString(); return err })
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestExistsLocalAndRemote(t *testing.T) {
	// Local (collocated) probe.
	o, ref := newLocalPair(t)
	ok, err := ref.Exists()
	if err != nil || !ok {
		t.Fatalf("local exists = %v, %v", ok, err)
	}
	o.Adapter().Deactivate("test/echo")
	ok, err = ref.Exists()
	if err != nil || ok {
		t.Fatalf("after deactivate = %v, %v", ok, err)
	}
	// Nil reference.
	nilRef := o.NewRef(&ior.IOR{})
	if ok, err := nilRef.Exists(); err != nil || ok {
		t.Fatalf("nil exists = %v, %v", ok, err)
	}

	// Remote probe through a transport.
	server := NewORB()
	server.Activate("test/echo", echoServant{})
	client := NewORB()
	client.RegisterTransport(&memTransport{target: server})
	remote := client.NewRef(remoteRef(server, "test/echo"))
	if ok, err := remote.Exists(); err != nil || !ok {
		t.Fatalf("remote exists = %v, %v", ok, err)
	}
	ghost := client.NewRef(remoteRef(server, "no/such/object"))
	if ok, err := ghost.Exists(); err != nil || ok {
		t.Fatalf("remote ghost = %v, %v", ok, err)
	}
}

func TestORBMiscAccessors(t *testing.T) {
	o := NewORB()
	if o.ID() == "" {
		t.Fatal("empty ORB id")
	}
	o2 := NewORB()
	if o.ID() == o2.ID() {
		t.Fatal("ORB ids collide within a process")
	}
	o.SetEndpoint("example", 2809)
	h, p := o.Endpoint()
	if h != "example" || p != 2809 {
		t.Fatalf("endpoint = %s:%d", h, p)
	}
	// Endpoint-bearing IORs now carry an IIOP profile.
	r := o.NewIOR("IDL:x:1.0", "k")
	prof, err := r.IIOP()
	if err != nil || prof.Host != "example" {
		t.Fatalf("iiop profile = %+v, %v", prof, err)
	}
	// Decorators fire on minting.
	o.AddIORDecorator(func(ref *ior.IOR, key string) {
		ref.AddProfile(0xBEEF, []byte(key))
	})
	r2 := o.NewIOR("IDL:x:1.0", "deckey")
	if string(r2.Profile(0xBEEF)) != "deckey" {
		t.Fatal("decorator did not run")
	}
	// Adapter introspection.
	o.Activate("a", echoServant{})
	o.Activate("b", echoServant{})
	if o.Adapter().Len() != 2 || len(o.Adapter().Keys()) != 2 {
		t.Fatalf("adapter len=%d keys=%v", o.Adapter().Len(), o.Adapter().Keys())
	}
	// ResolveStr round trip.
	ref, err := o.ResolveStr(r.String())
	if err != nil || ref.IOR().TypeID != "IDL:x:1.0" {
		t.Fatalf("resolve: %v, %v", ref, err)
	}
	if _, err := o.ResolveStr("garbage"); err == nil {
		t.Fatal("garbage resolved")
	}
	o.Shutdown() // no cached channels: must not panic
}

func TestExceptionStringsAndHelpers(t *testing.T) {
	for _, tc := range []struct {
		se   *SystemException
		want string
	}{
		{Timeout(), "CORBA::TIMEOUT (minor=0, COMPLETED_MAYBE)"},
		{ObjectNotExist(), "CORBA::OBJECT_NOT_EXIST (minor=0, COMPLETED_NO)"},
	} {
		if tc.se.Error() != tc.want {
			t.Errorf("error string = %q, want %q", tc.se.Error(), tc.want)
		}
	}
	if CompletedYes.String() != "COMPLETED_YES" || CompletionStatus(9).String() == "" {
		t.Error("completion strings")
	}
	ue := &UserException{ID: "IDL:x/Bad:1.0"}
	if ue.Error() != "user exception IDL:x/Bad:1.0" {
		t.Errorf("user exception string = %q", ue.Error())
	}
	if IsUserException(errors.New("other"), "IDL:x/Bad:1.0") {
		t.Error("IsUserException matched a plain error")
	}
}

func TestSystemExceptionWireRoundTrip(t *testing.T) {
	e := cdr.NewEncoder(cdr.BigEndian)
	marshalSystemException(e, &SystemException{Name: "TRANSIENT", Minor: 7, Completed: CompletedMaybe})
	se, err := unmarshalSystemException(cdr.NewDecoder(e.Bytes(), cdr.BigEndian))
	if err != nil || se.Name != "TRANSIENT" || se.Minor != 7 || se.Completed != CompletedMaybe {
		t.Fatalf("round trip = %+v, %v", se, err)
	}
	// A non-OMG repo id survives verbatim as the name.
	e = cdr.NewEncoder(cdr.BigEndian)
	e.WriteString("IDL:vendor/Odd:2.0")
	e.WriteULong(0)
	e.WriteULong(0)
	se, err = unmarshalSystemException(cdr.NewDecoder(e.Bytes(), cdr.BigEndian))
	if err != nil || se.Name != "IDL:vendor/Odd:2.0" {
		t.Fatalf("vendor id = %+v, %v", se, err)
	}
}

package orb

import (
	"context"
	"sync"
	"sync/atomic"

	"corbalc/internal/cdr"
)

// Servant is the object-adapter-side contract: a CORBA object
// implementation that dynamically dispatches operations. Arguments arrive
// as a CDR decoder positioned at the request body; results are written to
// the reply encoder. Returning a *UserException produces a
// USER_EXCEPTION reply, a *SystemException produces a SYSTEM_EXCEPTION
// reply, and any other error maps to CORBA::UNKNOWN.
type Servant interface {
	// RepositoryID is the IDL interface repository ID implemented by
	// this servant, used as the type ID of IORs that designate it.
	RepositoryID() string
	// Invoke executes one operation.
	Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error
}

// ContextServant is optionally implemented by servants that want the
// per-request context: it carries the client-propagated deadline (via the
// SvcDeadline service context), the end-to-end call ID, and is cancelled
// when the client sends a GIOP CancelRequest or the transport connection
// dies. The dispatch loop prefers InvokeContext over Invoke when a
// servant provides both.
type ContextServant interface {
	Servant
	// InvokeContext executes one operation under the request's context.
	InvokeContext(ctx context.Context, op string, args *cdr.Decoder, reply *cdr.Encoder) error
}

// Adapter is the object adapter: a map from object keys to active
// servants. It plays the role of a single root POA with explicit
// activation, which is all the lightweight model needs.
//
// The active-object map is read on every inbound dispatch by every
// server worker, while (de)activations are rare control-plane events —
// so it is copy-on-write: Resolve loads an immutable snapshot through an
// atomic pointer (no lock, no cross-core cacheline bouncing), and
// writers build a fresh map under mu before publishing it.
type Adapter struct {
	mu       sync.Mutex // serialises writers; readers never take it
	servants atomic.Pointer[map[string]Servant]
}

// NewAdapter returns an empty adapter.
func NewAdapter() *Adapter {
	a := &Adapter{}
	m := make(map[string]Servant)
	a.servants.Store(&m)
	return a
}

// mutate publishes a copy of the active-object map with f applied.
func (a *Adapter) mutate(f func(map[string]Servant)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := *a.servants.Load()
	next := make(map[string]Servant, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	f(next)
	a.servants.Store(&next)
}

// Activate binds key to servant, replacing any previous binding.
func (a *Adapter) Activate(key string, s Servant) {
	a.mutate(func(m map[string]Servant) { m[key] = s })
}

// Deactivate removes the binding for key, if any.
func (a *Adapter) Deactivate(key string) {
	a.mutate(func(m map[string]Servant) { delete(m, key) })
}

// Resolve looks up the servant bound to key. Lock-free: it reads the
// current snapshot, so a Resolve racing an Activate sees the map either
// before or after the update, never a torn state.
func (a *Adapter) Resolve(key []byte) (Servant, bool) {
	s, ok := (*a.servants.Load())[string(key)]
	return s, ok
}

// Len reports the number of active servants.
func (a *Adapter) Len() int {
	return len(*a.servants.Load())
}

// Keys returns a snapshot of the active object keys.
func (a *Adapter) Keys() []string {
	m := *a.servants.Load()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// ServantFunc adapts a function (plus repository ID) to the Servant
// interface, for small single-purpose objects.
type ServantFunc struct {
	RepoID string
	Fn     func(op string, args *cdr.Decoder, reply *cdr.Encoder) error
}

// RepositoryID implements Servant.
func (s ServantFunc) RepositoryID() string { return s.RepoID }

// Invoke implements Servant.
func (s ServantFunc) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	return s.Fn(op, args, reply)
}

// ContextServantFunc adapts a context-aware function (plus repository ID)
// to the ContextServant interface.
type ContextServantFunc struct {
	RepoID string
	Fn     func(ctx context.Context, op string, args *cdr.Decoder, reply *cdr.Encoder) error
}

// RepositoryID implements Servant.
func (s ContextServantFunc) RepositoryID() string { return s.RepoID }

// Invoke implements Servant, dispatching under a background context.
func (s ContextServantFunc) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	return s.Fn(context.Background(), op, args, reply)
}

// InvokeContext implements ContextServant.
func (s ContextServantFunc) InvokeContext(ctx context.Context, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	return s.Fn(ctx, op, args, reply)
}

// Package cdr implements the CORBA Common Data Representation (CDR)
// transfer syntax used by GIOP messages and encapsulations.
//
// CDR aligns every primitive on a boundary equal to its size, measured
// from the start of the enclosing message or encapsulation, and supports
// both big-endian and little-endian byte orders (the sender chooses and
// flags its choice; the receiver adapts). This package provides an
// Encoder and a Decoder over byte slices, plus helpers for the CDR
// "encapsulation" construct: a length-prefixed octet sequence whose first
// octet carries the byte-order flag of the embedded stream.
package cdr

import (
	"errors"
	"fmt"
	"math"
)

// ByteOrder identifies the byte order of a CDR stream. CDR encodes it as
// a single octet: 0 for big-endian, 1 for little-endian.
type ByteOrder byte

const (
	// BigEndian is network byte order (flag octet 0).
	BigEndian ByteOrder = 0
	// LittleEndian is the x86-native order (flag octet 1).
	LittleEndian ByteOrder = 1
)

func (o ByteOrder) String() string {
	if o == BigEndian {
		return "big-endian"
	}
	return "little-endian"
}

// Errors returned by the Decoder.
var (
	ErrUnderflow  = errors.New("cdr: buffer underflow")
	ErrBadString  = errors.New("cdr: malformed string")
	ErrBadBoolean = errors.New("cdr: boolean octet not 0 or 1")
	ErrTooLong    = errors.New("cdr: sequence length exceeds remaining buffer")
)

// Encoder serialises values into an internal buffer using CDR alignment
// rules. The zero value is not usable; call NewEncoder.
type Encoder struct {
	buf   []byte
	order ByteOrder
	// base is the stream position corresponding to buf[0]; alignment is
	// computed relative to it so that an encoder can continue a GIOP
	// message body whose header already consumed some bytes.
	base int
}

// NewEncoder returns an Encoder producing a stream in the given byte
// order, with alignment computed as if the first byte written were at
// stream offset 0.
func NewEncoder(order ByteOrder) *Encoder {
	return &Encoder{order: order}
}

// NewEncoderAt returns an Encoder whose first written byte is considered
// to be at stream offset base. GIOP uses this to encode a message body
// aligned after the 12-byte header.
func NewEncoderAt(order ByteOrder, base int) *Encoder {
	return &Encoder{order: order, base: base}
}

// NewEncoderSized returns an Encoder like NewEncoderAt whose buffer is
// pre-sized to hold capacity bytes without reallocating — the capacity
// hint for callers that know their message size distribution.
func NewEncoderSized(order ByteOrder, base, capacity int) *Encoder {
	return &Encoder{order: order, base: base, buf: make([]byte, 0, capacity)}
}

// Reset re-arms the encoder for a new stream in the given order and at
// the given base, keeping the grown buffer capacity so steady-state
// encoding stops allocating.
func (e *Encoder) Reset(order ByteOrder, base int) {
	e.buf = e.buf[:0]
	e.order = order
	e.base = base
}

// Truncate discards all but the first n encoded bytes. It is how the
// reply fast path backs out optimistically-encoded results when the
// servant raises instead of returning.
func (e *Encoder) Truncate(n int) { e.buf = e.buf[:n] }

// PatchULong overwrites the 32-bit value at byte offset off of the
// encoded stream (offset into Bytes, not the aligned stream position).
// The caller must have written the original value with WriteULong so the
// offset is properly aligned.
func (e *Encoder) PatchULong(off int, v uint32) { PutULongAt(e.buf, off, e.order, v) }

// Bytes returns the encoded stream. The returned slice aliases the
// encoder's buffer; it is valid until the next Write call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Cap returns the encoder's current buffer capacity.
func (e *Encoder) Cap() int { return cap(e.buf) }

// Order reports the encoder's byte order.
func (e *Encoder) Order() ByteOrder { return e.order }

// Align pads the stream with zero octets until the next write position is
// a multiple of n (n must be a power of two: 1, 2, 4 or 8).
func (e *Encoder) Align(n int) {
	pos := e.base + len(e.buf)
	pad := (n - pos%n) % n
	for i := 0; i < pad; i++ {
		e.buf = append(e.buf, 0)
	}
}

// WriteOctet appends a single octet (no alignment needed).
func (e *Encoder) WriteOctet(v byte) { e.buf = append(e.buf, v) }

// WriteBool appends a CDR boolean (one octet, 0 or 1).
func (e *Encoder) WriteBool(v bool) {
	if v {
		e.WriteOctet(1)
	} else {
		e.WriteOctet(0)
	}
}

// WriteChar appends a CDR char (single ISO 8859-1 octet).
func (e *Encoder) WriteChar(v byte) { e.WriteOctet(v) }

// WriteUShort appends an unsigned short aligned on 2.
func (e *Encoder) WriteUShort(v uint16) {
	e.Align(2)
	if e.order == BigEndian {
		e.buf = append(e.buf, byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf, byte(v), byte(v>>8))
	}
}

// WriteShort appends a signed short aligned on 2.
func (e *Encoder) WriteShort(v int16) { e.WriteUShort(uint16(v)) }

// WriteULong appends an unsigned long (32 bits) aligned on 4.
func (e *Encoder) WriteULong(v uint32) {
	e.Align(4)
	if e.order == BigEndian {
		e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

// WriteLong appends a signed long (32 bits) aligned on 4.
func (e *Encoder) WriteLong(v int32) { e.WriteULong(uint32(v)) }

// PutULongAt stores a 32-bit value at a fixed offset of an
// already-framed buffer in the given byte order. It exists for message
// headers (GIOP patches the size field at offset 8 after the body is
// encoded) so that no other package needs to assemble bytes by hand;
// alignment is the caller's contract since the offset is fixed by the
// protocol.
func PutULongAt(buf []byte, off int, order ByteOrder, v uint32) {
	if order == BigEndian {
		buf[off], buf[off+1], buf[off+2], buf[off+3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	} else {
		buf[off], buf[off+1], buf[off+2], buf[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
}

// ULongAt loads the 32-bit value PutULongAt stored at a fixed offset.
func ULongAt(buf []byte, off int, order ByteOrder) uint32 {
	if order == BigEndian {
		return uint32(buf[off])<<24 | uint32(buf[off+1])<<16 | uint32(buf[off+2])<<8 | uint32(buf[off+3])
	}
	return uint32(buf[off+3])<<24 | uint32(buf[off+2])<<16 | uint32(buf[off+1])<<8 | uint32(buf[off])
}

// WriteULongLong appends an unsigned long long (64 bits) aligned on 8.
func (e *Encoder) WriteULongLong(v uint64) {
	e.Align(8)
	if e.order == BigEndian {
		e.buf = append(e.buf,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
}

// WriteLongLong appends a signed long long aligned on 8.
func (e *Encoder) WriteLongLong(v int64) { e.WriteULongLong(uint64(v)) }

// WriteFloat appends an IEEE-754 single-precision float aligned on 4.
func (e *Encoder) WriteFloat(v float32) { e.WriteULong(math.Float32bits(v)) }

// WriteDouble appends an IEEE-754 double-precision float aligned on 8.
func (e *Encoder) WriteDouble(v float64) { e.WriteULongLong(math.Float64bits(v)) }

// WriteString appends a CDR string: ulong length (including the
// terminating NUL), the bytes, then a NUL octet.
func (e *Encoder) WriteString(s string) {
	e.WriteULong(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// WriteOctets appends raw bytes with no alignment or length prefix.
func (e *Encoder) WriteOctets(b []byte) { e.buf = append(e.buf, b...) }

// WriteOctetSeq appends a sequence<octet>: ulong length then the bytes.
func (e *Encoder) WriteOctetSeq(b []byte) {
	e.WriteULong(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// WriteStringSeq appends a sequence<string>.
func (e *Encoder) WriteStringSeq(ss []string) {
	e.WriteULong(uint32(len(ss)))
	for _, s := range ss {
		e.WriteString(s)
	}
}

// WriteEncapsulation appends a CDR encapsulation: a length-prefixed octet
// sequence whose payload starts with a byte-order octet followed by the
// body produced by fn on a fresh encoder. Alignment inside the
// encapsulation restarts at zero, per the CDR rules.
func (e *Encoder) WriteEncapsulation(order ByteOrder, fn func(*Encoder)) {
	inner := NewEncoderAt(order, 1) // the order octet occupies offset 0
	fn(inner)
	e.WriteULong(uint32(1 + inner.Len()))
	e.WriteOctet(byte(order))
	e.buf = append(e.buf, inner.Bytes()...)
}

// Decoder extracts values from a CDR stream.
type Decoder struct {
	buf   []byte
	order ByteOrder
	pos   int
	base  int
}

// NewDecoder returns a Decoder over buf in the given byte order, with
// buf[0] at stream offset 0.
func NewDecoder(buf []byte, order ByteOrder) *Decoder {
	return &Decoder{buf: buf, order: order}
}

// NewDecoderAt returns a Decoder whose buf[0] sits at stream offset base
// for alignment purposes.
func NewDecoderAt(buf []byte, order ByteOrder, base int) *Decoder {
	return &Decoder{buf: buf, order: order, base: base}
}

// Reset re-arms the decoder over a new buffer, so dispatch loops can
// reuse one Decoder value instead of allocating per message.
func (d *Decoder) Reset(buf []byte, order ByteOrder, base int) {
	d.buf = buf
	d.order = order
	d.base = base
	d.pos = 0
}

// Remaining reports the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Pos returns the current offset within the buffer.
func (d *Decoder) Pos() int { return d.pos }

// Order reports the decoder's byte order.
func (d *Decoder) Order() ByteOrder { return d.order }

func (d *Decoder) align(n int) error {
	pos := d.base + d.pos
	pad := (n - pos%n) % n
	if d.pos+pad > len(d.buf) {
		return ErrUnderflow
	}
	d.pos += pad
	return nil
}

func (d *Decoder) need(n int) error {
	if d.pos+n > len(d.buf) {
		return ErrUnderflow
	}
	return nil
}

// ReadOctet reads one octet.
func (d *Decoder) ReadOctet() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

// ReadBool reads a CDR boolean, rejecting values other than 0 and 1.
func (d *Decoder) ReadBool() (bool, error) {
	v, err := d.ReadOctet()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, ErrBadBoolean
	}
}

// ReadChar reads a CDR char octet.
func (d *Decoder) ReadChar() (byte, error) { return d.ReadOctet() }

// ReadUShort reads an unsigned short aligned on 2.
func (d *Decoder) ReadUShort() (uint16, error) {
	if err := d.align(2); err != nil {
		return 0, err
	}
	if err := d.need(2); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 2
	if d.order == BigEndian {
		return uint16(b[0])<<8 | uint16(b[1]), nil
	}
	return uint16(b[1])<<8 | uint16(b[0]), nil
}

// ReadShort reads a signed short aligned on 2.
func (d *Decoder) ReadShort() (int16, error) {
	v, err := d.ReadUShort()
	return int16(v), err
}

// ReadULong reads an unsigned long aligned on 4.
func (d *Decoder) ReadULong() (uint32, error) {
	if err := d.align(4); err != nil {
		return 0, err
	}
	if err := d.need(4); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 4
	if d.order == BigEndian {
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
	}
	return uint32(b[3])<<24 | uint32(b[2])<<16 | uint32(b[1])<<8 | uint32(b[0]), nil
}

// ReadLong reads a signed long aligned on 4.
func (d *Decoder) ReadLong() (int32, error) {
	v, err := d.ReadULong()
	return int32(v), err
}

// ReadULongLong reads an unsigned long long aligned on 8.
func (d *Decoder) ReadULongLong() (uint64, error) {
	if err := d.align(8); err != nil {
		return 0, err
	}
	if err := d.need(8); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 8
	if d.order == BigEndian {
		return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
			uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]), nil
	}
	return uint64(b[7])<<56 | uint64(b[6])<<48 | uint64(b[5])<<40 | uint64(b[4])<<32 |
		uint64(b[3])<<24 | uint64(b[2])<<16 | uint64(b[1])<<8 | uint64(b[0]), nil
}

// ReadLongLong reads a signed long long aligned on 8.
func (d *Decoder) ReadLongLong() (int64, error) {
	v, err := d.ReadULongLong()
	return int64(v), err
}

// ReadFloat reads a single-precision float aligned on 4.
func (d *Decoder) ReadFloat() (float32, error) {
	v, err := d.ReadULong()
	return math.Float32frombits(v), err
}

// ReadDouble reads a double-precision float aligned on 8.
func (d *Decoder) ReadDouble() (float64, error) {
	v, err := d.ReadULongLong()
	return math.Float64frombits(v), err
}

// ReadString reads a CDR string, checking the terminating NUL.
func (d *Decoder) ReadString() (string, error) {
	n, err := d.ReadULong()
	if err != nil {
		return "", err
	}
	if n == 0 {
		// Tolerated on the wire by some ORBs: a zero length means an
		// empty string with no NUL.
		return "", nil
	}
	if uint32(d.Remaining()) < n {
		return "", ErrTooLong
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	if b[n-1] != 0 {
		return "", ErrBadString
	}
	return string(b[:n-1]), nil
}

// maxInternedStrings bounds an intern cache so a peer cycling through
// distinct values cannot grow it without limit; past the bound the cache
// stops learning but reads stay correct.
const maxInternedStrings = 256

// ReadStringInterned is ReadString through a caller-owned intern cache:
// a value already cached is returned without allocating. Dispatch loops
// use it for operation names, which draw from a small fixed vocabulary,
// so the per-request string allocation disappears after warm-up.
func (d *Decoder) ReadStringInterned(cache map[string]string) (string, error) {
	n, err := d.ReadULong()
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", nil
	}
	if uint32(d.Remaining()) < n {
		return "", ErrTooLong
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	if b[n-1] != 0 {
		return "", ErrBadString
	}
	if s, ok := cache[string(b[:n-1])]; ok { // keyed lookup: no conversion alloc
		return s, nil
	}
	s := string(b[:n-1])
	if len(cache) < maxInternedStrings {
		cache[s] = s
	}
	return s, nil
}

// ReadOctets reads exactly n raw bytes. The returned slice aliases the
// decoder's buffer.
func (d *Decoder) ReadOctets(n int) ([]byte, error) {
	if err := d.need(n); err != nil {
		return nil, err
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// ReadOctetSeq reads a sequence<octet>, copying the payload.
func (d *Decoder) ReadOctetSeq() ([]byte, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining()) < n {
		return nil, ErrTooLong
	}
	out := make([]byte, n)
	copy(out, d.buf[d.pos:])
	d.pos += int(n)
	return out, nil
}

// ReadOctetSeqAlias reads a sequence<octet> without copying: the
// returned slice aliases the decoder's buffer and is only valid while
// that buffer is — for pooled message bodies, until the message is
// released. Hot-path header decoding uses it for fields consumed before
// the release point; anything retained longer must copy.
func (d *Decoder) ReadOctetSeqAlias() ([]byte, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining()) < n {
		return nil, ErrTooLong
	}
	out := d.buf[d.pos : d.pos+int(n) : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// Detach returns a decoder over a private copy of the undecoded
// remainder, positioned and aligned identically to the original stream.
// It is the escape hatch for values that must outlive a pooled buffer:
// detach first, release the buffer, decode at leisure.
func (d *Decoder) Detach() *Decoder {
	rest := append([]byte(nil), d.buf[d.pos:]...)
	return &Decoder{buf: rest, order: d.order, base: d.base + d.pos}
}

// ReadStringSeq reads a sequence<string>.
func (d *Decoder) ReadStringSeq() ([]string, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	// Each string costs at least 5 bytes (length + NUL); guard against a
	// hostile length that would make us allocate unboundedly.
	if uint32(d.Remaining())/5 < n {
		return nil, ErrTooLong
	}
	out := make([]string, n)
	for i := range out {
		out[i], err = d.ReadString()
		if err != nil {
			return nil, fmt.Errorf("string %d of %d: %w", i, n, err)
		}
	}
	return out, nil
}

// ReadEncapsulation reads a CDR encapsulation and returns a fresh Decoder
// positioned at its body, honouring the embedded byte-order flag.
func (d *Decoder) ReadEncapsulation() (*Decoder, error) {
	body, err := d.ReadOctetSeq()
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, ErrUnderflow
	}
	order := ByteOrder(body[0] & 1)
	return NewDecoderAt(body[1:], order, 1), nil
}

package cdr

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestAlignmentPadding(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteOctet(0xAA)  // offset 0
	e.WriteULong(1)     // needs 3 pad bytes to reach offset 4
	e.WriteOctet(0xBB)  // offset 8
	e.WriteUShort(2)    // 1 pad byte to offset 10
	e.WriteDouble(3.14) // 4 pad bytes to offset 16
	want := 24
	if e.Len() != want {
		t.Fatalf("encoded length = %d, want %d", e.Len(), want)
	}
	b := e.Bytes()
	for _, off := range []int{1, 2, 3, 9, 12, 13, 14, 15} {
		if b[off] != 0 {
			t.Errorf("pad byte at %d = %#x, want 0", off, b[off])
		}
	}
}

func TestAlignmentWithBase(t *testing.T) {
	// A ULong written at stream offset 12 (GIOP body start) needs no pad.
	e := NewEncoderAt(BigEndian, 12)
	e.WriteULong(0x01020304)
	if e.Len() != 4 {
		t.Fatalf("len = %d, want 4 (no padding at aligned base)", e.Len())
	}
	// At offset 13 it needs 3 pad bytes.
	e = NewEncoderAt(BigEndian, 13)
	e.WriteULong(0x01020304)
	if e.Len() != 7 {
		t.Fatalf("len = %d, want 7", e.Len())
	}
}

func TestPrimitiveRoundTripBothOrders(t *testing.T) {
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		e := NewEncoder(order)
		e.WriteOctet(0x7F)
		e.WriteBool(true)
		e.WriteBool(false)
		e.WriteChar('Z')
		e.WriteShort(-12345)
		e.WriteUShort(54321)
		e.WriteLong(-123456789)
		e.WriteULong(3123456789)
		e.WriteLongLong(-1234567890123456789)
		e.WriteULongLong(12345678901234567890)
		e.WriteFloat(1.5)
		e.WriteDouble(-2.25)
		e.WriteString("héllo, CORBA")
		e.WriteString("")

		d := NewDecoder(e.Bytes(), order)
		if v, _ := d.ReadOctet(); v != 0x7F {
			t.Errorf("%v octet = %#x", order, v)
		}
		if v, _ := d.ReadBool(); !v {
			t.Errorf("%v bool true", order)
		}
		if v, _ := d.ReadBool(); v {
			t.Errorf("%v bool false", order)
		}
		if v, _ := d.ReadChar(); v != 'Z' {
			t.Errorf("%v char = %c", order, v)
		}
		if v, _ := d.ReadShort(); v != -12345 {
			t.Errorf("%v short = %d", order, v)
		}
		if v, _ := d.ReadUShort(); v != 54321 {
			t.Errorf("%v ushort = %d", order, v)
		}
		if v, _ := d.ReadLong(); v != -123456789 {
			t.Errorf("%v long = %d", order, v)
		}
		if v, _ := d.ReadULong(); v != 3123456789 {
			t.Errorf("%v ulong = %d", order, v)
		}
		if v, _ := d.ReadLongLong(); v != -1234567890123456789 {
			t.Errorf("%v longlong = %d", order, v)
		}
		if v, _ := d.ReadULongLong(); v != 12345678901234567890 {
			t.Errorf("%v ulonglong = %d", order, v)
		}
		if v, _ := d.ReadFloat(); v != 1.5 {
			t.Errorf("%v float = %v", order, v)
		}
		if v, _ := d.ReadDouble(); v != -2.25 {
			t.Errorf("%v double = %v", order, v)
		}
		if v, _ := d.ReadString(); v != "héllo, CORBA" {
			t.Errorf("%v string = %q", order, v)
		}
		if v, _ := d.ReadString(); v != "" {
			t.Errorf("%v empty string = %q", order, v)
		}
		if d.Remaining() != 0 {
			t.Errorf("%v remaining = %d", order, d.Remaining())
		}
	}
}

func TestBigEndianWireLayout(t *testing.T) {
	// Verify the exact big-endian wire bytes of a ULong so that the
	// implementation is CDR-compatible, not merely self-consistent.
	e := NewEncoder(BigEndian)
	e.WriteULong(0x01020304)
	if !bytes.Equal(e.Bytes(), []byte{1, 2, 3, 4}) {
		t.Fatalf("big-endian ulong = % x", e.Bytes())
	}
	e = NewEncoder(LittleEndian)
	e.WriteULong(0x01020304)
	if !bytes.Equal(e.Bytes(), []byte{4, 3, 2, 1}) {
		t.Fatalf("little-endian ulong = % x", e.Bytes())
	}
}

func TestStringWireFormat(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteString("ab")
	want := []byte{0, 0, 0, 3, 'a', 'b', 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("string wire = % x, want % x", e.Bytes(), want)
	}
}

func TestStringErrors(t *testing.T) {
	// Missing NUL terminator.
	d := NewDecoder([]byte{0, 0, 0, 2, 'a', 'b'}, BigEndian)
	if _, err := d.ReadString(); err != ErrBadString {
		t.Errorf("missing NUL: err = %v, want ErrBadString", err)
	}
	// Length beyond buffer.
	d = NewDecoder([]byte{0, 0, 0, 200, 'a'}, BigEndian)
	if _, err := d.ReadString(); err != ErrTooLong {
		t.Errorf("overlong: err = %v, want ErrTooLong", err)
	}
	// Zero length tolerated as empty.
	d = NewDecoder([]byte{0, 0, 0, 0}, BigEndian)
	if s, err := d.ReadString(); err != nil || s != "" {
		t.Errorf("zero length: %q, %v", s, err)
	}
}

func TestBoolErrors(t *testing.T) {
	d := NewDecoder([]byte{2}, BigEndian)
	if _, err := d.ReadBool(); err != ErrBadBoolean {
		t.Errorf("bad boolean err = %v", err)
	}
}

func TestUnderflow(t *testing.T) {
	d := NewDecoder([]byte{1, 2}, BigEndian)
	if _, err := d.ReadULong(); err != ErrUnderflow {
		t.Errorf("ulong underflow err = %v", err)
	}
	d = NewDecoder(nil, BigEndian)
	if _, err := d.ReadOctet(); err != ErrUnderflow {
		t.Errorf("octet underflow err = %v", err)
	}
}

func TestOctetSeqRoundTrip(t *testing.T) {
	payload := []byte{9, 8, 7, 6, 5}
	e := NewEncoder(LittleEndian)
	e.WriteOctetSeq(payload)
	d := NewDecoder(e.Bytes(), LittleEndian)
	got, err := d.ReadOctetSeq()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("octet seq = % x, err %v", got, err)
	}
	// Hostile length.
	d = NewDecoder([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1}, LittleEndian)
	if _, err := d.ReadOctetSeq(); err != ErrTooLong {
		t.Errorf("hostile seq err = %v", err)
	}
}

func TestStringSeqRoundTrip(t *testing.T) {
	in := []string{"one", "", "three"}
	e := NewEncoder(BigEndian)
	e.WriteStringSeq(in)
	d := NewDecoder(e.Bytes(), BigEndian)
	out, err := d.ReadStringSeq()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("seq[%d] = %q, want %q", i, out[i], in[i])
		}
	}
	// A hostile count must not allocate unboundedly.
	d = NewDecoder([]byte{0x7F, 0xFF, 0xFF, 0xFF}, BigEndian)
	if _, err := d.ReadStringSeq(); err != ErrTooLong {
		t.Errorf("hostile string seq err = %v", err)
	}
}

func TestEncapsulationRoundTrip(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteOctet(0xFF) // shift alignment so the encapsulation is unaligned outside
	e.WriteEncapsulation(LittleEndian, func(inner *Encoder) {
		inner.WriteULong(42)
		inner.WriteString("inside")
	})
	d := NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadOctet(); err != nil {
		t.Fatal(err)
	}
	inner, err := d.ReadEncapsulation()
	if err != nil {
		t.Fatal(err)
	}
	if inner.Order() != LittleEndian {
		t.Errorf("inner order = %v", inner.Order())
	}
	if v, _ := inner.ReadULong(); v != 42 {
		t.Errorf("inner ulong = %d", v)
	}
	if s, _ := inner.ReadString(); s != "inside" {
		t.Errorf("inner string = %q", s)
	}
}

func TestEmptyEncapsulationRejected(t *testing.T) {
	d := NewDecoder([]byte{0, 0, 0, 0}, BigEndian)
	if _, err := d.ReadEncapsulation(); err == nil {
		t.Fatal("empty encapsulation accepted")
	}
}

// Property: every primitive round-trips in both byte orders, regardless of
// the (mis)alignment induced by a random octet prefix.
func TestQuickRoundTrip(t *testing.T) {
	f := func(prefix []byte, a int16, b uint32, c int64, d float64, s string, order bool) bool {
		bo := BigEndian
		if order {
			bo = LittleEndian
		}
		e := NewEncoder(bo)
		e.WriteOctets(prefix)
		e.WriteShort(a)
		e.WriteULong(b)
		e.WriteLongLong(c)
		e.WriteDouble(d)
		e.WriteString(s)
		dec := NewDecoder(e.Bytes(), bo)
		if _, err := dec.ReadOctets(len(prefix)); err != nil {
			return false
		}
		ga, err := dec.ReadShort()
		if err != nil || ga != a {
			return false
		}
		gb, err := dec.ReadULong()
		if err != nil || gb != b {
			return false
		}
		gc, err := dec.ReadLongLong()
		if err != nil || gc != c {
			return false
		}
		gd, err := dec.ReadDouble()
		if err != nil {
			return false
		}
		if gd != d && !(math.IsNaN(gd) && math.IsNaN(d)) {
			return false
		}
		gs, err := dec.ReadString()
		return err == nil && gs == s
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: a decoder never panics on arbitrary input; it either returns a
// value or an error for any read sequence.
func TestQuickNoPanicOnGarbage(t *testing.T) {
	f := func(raw []byte, order bool) bool {
		bo := BigEndian
		if order {
			bo = LittleEndian
		}
		d := NewDecoder(raw, bo)
		for d.Remaining() > 0 {
			if _, err := d.ReadString(); err != nil {
				break
			}
		}
		d = NewDecoder(raw, bo)
		for d.Remaining() > 0 {
			if _, err := d.ReadEncapsulation(); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeULong(b *testing.B) {
	e := NewEncoder(LittleEndian)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.Len() > 1<<16 {
			e.buf = e.buf[:0]
		}
		e.WriteULong(uint32(i))
	}
}

func BenchmarkDecodeString(b *testing.B) {
	e := NewEncoder(BigEndian)
	e.WriteString("a moderately sized string payload")
	raw := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(raw, BigEndian)
		if _, err := d.ReadString(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPutULongAtRoundTrip(t *testing.T) {
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		buf := make([]byte, 12)
		PutULongAt(buf, 8, order, 0xCAFEBABE)
		if got := ULongAt(buf, 8, order); got != 0xCAFEBABE {
			t.Fatalf("order %v: round trip got %#x", order, got)
		}
		for i, b := range buf[:8] {
			if b != 0 {
				t.Fatalf("order %v: byte %d outside the target word written: %#x", order, i, b)
			}
		}
	}
	buf := make([]byte, 4)
	PutULongAt(buf, 0, BigEndian, 0x01020304)
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 || buf[3] != 4 {
		t.Fatalf("big-endian layout: % x", buf)
	}
	PutULongAt(buf, 0, LittleEndian, 0x01020304)
	if buf[0] != 4 || buf[1] != 3 || buf[2] != 2 || buf[3] != 1 {
		t.Fatalf("little-endian layout: % x", buf)
	}
}

// Encoder pooling: the invocation hot path builds one request body and
// one reply body per call, and without reuse every build pays an Encoder
// allocation plus a buffer growth sequence. GetEncoder/Release recycle
// both — the Encoder struct cycles through a sync.Pool and its buffer
// through the size-classed free lists in internal/bufpool, so a
// steady-state encode allocates nothing.
//
// Ownership: GetEncoder transfers a fresh encoder to the caller. Release
// transfers it (and its buffer) back; after Release neither the encoder
// nor any slice previously returned by Bytes may be touched. Ownership
// of the buffer can instead travel onward inside a giop.Message (see
// giop.MessageFromEncoder), in which case the message's Release is the
// single release point.
package cdr

import (
	"sync"

	"corbalc/internal/bufpool"
)

// encoderSeedCap is the buffer capacity a pooled encoder starts with:
// large enough for every header-only message and the common small-args
// call, one size class in bufpool.
const encoderSeedCap = 256

// maxPooledEncoderCap bounds the buffer capacity an encoder may carry
// back into the pool; encoders grown beyond it (one huge package
// transfer) drop their buffer so the pool stays lightweight.
const maxPooledEncoderCap = 1 << 20

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a pooled encoder producing a stream in the given
// byte order with its first byte at stream offset base. The caller owns
// it until Release (or until ownership moves into a message).
func GetEncoder(order ByteOrder, base int) *Encoder {
	e := encoderPool.Get().(*Encoder)
	if e.buf == nil {
		e.buf = bufpool.Get(encoderSeedCap)[:0]
	}
	e.Reset(order, base)
	return e
}

// Release returns the encoder and its buffer to their pools. Releasing
// nil is a no-op.
func (e *Encoder) Release() {
	if e == nil {
		return
	}
	if cap(e.buf) > maxPooledEncoderCap {
		// Return the oversized buffer to bufpool's accounting (which
		// drops it) and let the encoder reseed lazily on next Get.
		bufpool.Put(e.buf)
		e.buf = nil
	}
	e.buf = e.buf[:0]
	encoderPool.Put(e)
}

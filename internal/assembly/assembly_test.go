package assembly_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"corbalc"
	"corbalc/internal/assembly"
	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/events"
	"corbalc/internal/orb"
	"corbalc/internal/simnet"
)

const assemblyXML = `<?xml version="1.0"?>
<assembly name="whiteboard-app">
  <instance name="prod" component="producer" version="1.*"/>
  <instance name="cons" component="consumer"/>
  <connect from="prod" fromport="sink" to="cons" toport="query"/>
  <eventlink from="prod" fromport="out" to="cons" toport="in"/>
</assembly>`

func TestParseValidateEncode(t *testing.T) {
	a, err := assembly.Parse(strings.NewReader(assemblyXML))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "whiteboard-app" || len(a.Instances) != 2 ||
		len(a.Connections) != 1 || len(a.EventLinks) != 1 {
		t.Fatalf("assembly = %+v", a)
	}
	if d, ok := a.Instance("prod"); !ok || d.Component != "producer" || d.Version != "1.*" {
		t.Fatalf("prod decl = %+v, %v", d, ok)
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	a2, err := assembly.Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if a2.Connections[0] != a.Connections[0] || a2.EventLinks[0] != a.EventLinks[0] {
		t.Fatal("round trip mismatch")
	}
}

func TestValidationErrors(t *testing.T) {
	base := func() *assembly.Assembly {
		a, err := assembly.Parse(strings.NewReader(assemblyXML))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	cases := map[string]func(*assembly.Assembly){
		"no name":           func(a *assembly.Assembly) { a.Name = "" },
		"name with slash":   func(a *assembly.Assembly) { a.Name = "a/b" },
		"no instances":      func(a *assembly.Assembly) { a.Instances = nil },
		"dup instance":      func(a *assembly.Assembly) { a.Instances[1].Name = a.Instances[0].Name },
		"inst no comp":      func(a *assembly.Assembly) { a.Instances[0].Component = "" },
		"bad version":       func(a *assembly.Assembly) { a.Instances[0].Version = "nope" },
		"conn unknown from": func(a *assembly.Assembly) { a.Connections[0].From = "ghost" },
		"conn unknown to":   func(a *assembly.Assembly) { a.Connections[0].To = "ghost" },
		"conn no port":      func(a *assembly.Assembly) { a.Connections[0].FromPort = "" },
		"event unknown":     func(a *assembly.Assembly) { a.EventLinks[0].To = "ghost" },
	}
	for name, mutate := range cases {
		a := base()
		mutate(a)
		if err := a.Validate(); !errors.Is(err, assembly.ErrInvalid) {
			t.Errorf("%s: err = %v", name, err)
		}
	}
	if _, err := assembly.Parse(strings.NewReader("<junk")); err == nil {
		t.Error("garbage accepted")
	}
}

// producerInstance emits an event per "send" call and relays "count"
// calls through its sink uses port.
type producerInstance struct {
	component.Base
}

func (pi *producerInstance) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	if port != "ctl" {
		return component.ErrNoSuchPort
	}
	switch op {
	case "send":
		return pi.Ctx().Emit("out", []byte("stroke"))
	case "relay_count":
		ref, err := pi.Ctx().UsePort("sink")
		if err != nil {
			return err
		}
		var n int32
		if err := ref.Invoke("count", nil, func(d *cdr.Decoder) error {
			var e error
			n, e = d.ReadLong()
			return e
		}); err != nil {
			return err
		}
		reply.WriteLong(n)
		return nil
	}
	return orb.BadOperation()
}

// consumerInstance counts events on its "in" consumes port and answers
// "count" on its "query" provides port.
type consumerInstance struct {
	component.Base
	n atomic.Int64
}

func (ci *consumerInstance) ConsumeEvent(port string, ev events.Event) {
	if port == "in" {
		ci.n.Add(1)
	}
}

func (ci *consumerInstance) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	if port != "query" || op != "count" {
		return orb.BadOperation()
	}
	reply.WriteLong(int32(ci.n.Load()))
	return nil
}

func appCluster(t *testing.T) *corbalc.Cluster {
	t.Helper()
	reg := component.NewRegistry()
	reg.Register("app/producer.New", func() component.Instance { return &producerInstance{} })
	reg.Register("app/consumer.New", func() component.Instance { return &consumerInstance{} })
	c, err := corbalc.NewCluster(3, "host%d", simnet.Link{}, corbalc.Options{
		Impls:          reg,
		UpdateInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	prodSpec := &component.Spec{Name: "producer", Version: "1.2.0", Entrypoint: "app/producer.New"}
	prodSpec.Provide("ctl", "IDL:app/Control:1.0")
	prodSpec.Use("sink", "IDL:app/Query:1.0", true)
	prodSpec.Emit("out", "IDL:app/Stroke:1.0")

	consSpec := &component.Spec{Name: "consumer", Version: "1.0.0", Entrypoint: "app/consumer.New"}
	consSpec.Provide("query", "IDL:app/Query:1.0")
	consSpec.Consume("in", "IDL:app/Stroke:1.0", true)

	// producer only on host1, consumer only on host2: deployment must
	// spread the app across nodes.
	prod, err := prodSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cons, err := consSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Peers[1].Node.InstallComponent(prod); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Peers[2].Node.InstallComponent(cons); err != nil {
		t.Fatal(err)
	}

	// Wait until host0 can see both components.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		p, _ := c.Peers[0].Agent.Query(context.Background(), "component:producer", "*")
		q, _ := c.Peers[0].Agent.Query(context.Background(), "component:consumer", "*")
		if len(p) > 0 && len(q) > 0 {
			return c
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("components never became visible")
	return nil
}

func TestDeployAcrossNodes(t *testing.T) {
	c := appCluster(t)
	a, err := assembly.Parse(strings.NewReader(assemblyXML))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := assembly.Deploy(context.Background(), c.Peers[0].Engine, c.Peers[0].Node.ORB(), a)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Teardown()

	if dep.Placements["prod"].Node != "host1" || dep.Placements["cons"].Node != "host2" {
		t.Fatalf("placements: prod=%s cons=%s",
			dep.Placements["prod"].Node, dep.Placements["cons"].Node)
	}
	if id, ok := dep.ComponentIDOf("prod"); !ok || id.Name != "producer" {
		t.Fatalf("component of prod = %v, %v", id, ok)
	}

	// Drive the app from host0: send strokes through the producer's ctl
	// port; they must reach the consumer on the other node through the
	// bridged event channel.
	ctl, err := c.Peers[0].Engine.ProvidePort(context.Background(), dep.Placements["prod"], "ctl")
	if err != nil {
		t.Fatal(err)
	}
	ctlRef := c.Peers[0].Node.ORB().NewRef(ctl)
	for i := 0; i < 5; i++ {
		if err := ctlRef.Invoke("send", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	// The explicit connection lets the producer relay count queries.
	deadline := time.Now().Add(5 * time.Second)
	var n int32
	for time.Now().Before(deadline) {
		err = ctlRef.Invoke("relay_count", nil, func(d *cdr.Decoder) error {
			var e error
			n, e = d.ReadLong()
			return e
		})
		if err == nil && n == 5 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil || n != 5 {
		t.Fatalf("relay_count = %d, %v", n, err)
	}
}

func TestTeardownDestroysInstances(t *testing.T) {
	c := appCluster(t)
	a, err := assembly.Parse(strings.NewReader(assemblyXML))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := assembly.Deploy(context.Background(), c.Peers[0].Engine, c.Peers[0].Node.ORB(), a)
	if err != nil {
		t.Fatal(err)
	}
	prodID, _ := dep.ComponentIDOf("prod")
	ct, err := c.Peers[1].Node.ContainerFor(prodID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Instances()) != 1 {
		t.Fatalf("instances before teardown = %d", len(ct.Instances()))
	}
	dep.Teardown()
	if len(ct.Instances()) != 0 {
		t.Fatalf("instances after teardown = %d", len(ct.Instances()))
	}
}

func TestDeployFailsForMissingComponent(t *testing.T) {
	c := appCluster(t)
	a := &assembly.Assembly{
		Name: "broken",
		Instances: []assembly.InstanceDecl{
			{Name: "x", Component: "nonexistent"},
		},
	}
	if _, err := assembly.Deploy(context.Background(), c.Peers[0].Engine, c.Peers[0].Node.ORB(), a); err == nil {
		t.Fatal("deploy of missing component succeeded")
	}
}

func TestDeployVersionRequirement(t *testing.T) {
	c := appCluster(t)
	a := &assembly.Assembly{
		Name: "verapp",
		Instances: []assembly.InstanceDecl{
			{Name: "p", Component: "producer", Version: ">=2.0"},
		},
	}
	if _, err := assembly.Deploy(context.Background(), c.Peers[0].Engine, c.Peers[0].Node.ORB(), a); err == nil {
		t.Fatal("version >=2.0 matched a 1.2.0 component")
	}
	a.Instances[0].Version = "1.*"
	dep, err := assembly.Deploy(context.Background(), c.Peers[0].Engine, c.Peers[0].Node.ORB(), a)
	if err != nil {
		t.Fatal(err)
	}
	dep.Teardown()
}

package assembly

import (
	"context"
	"fmt"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/deploy"
	"corbalc/internal/ior"
	"corbalc/internal/orb"
)

// Deployed is a running application: where each instance landed and the
// event bridges holding its cross-node channels together.
type Deployed struct {
	Assembly   *Assembly
	Placements map[string]*deploy.Placement

	o       *orb.ORB
	bridges []bridgeRec
}

type bridgeRec struct {
	events *ior.IOR // event service holding the bridge
	id     string
}

// Deploy matches the assembly's declarations against the network at run
// time: each instance is placed on the currently best node, connections
// are wired through the instances' reflective interfaces, and event
// links become channel bridges between the hosting nodes.
func Deploy(ctx context.Context, e *deploy.Engine, o *orb.ORB, a *Assembly) (*Deployed, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	dep := &Deployed{
		Assembly:   a,
		Placements: make(map[string]*deploy.Placement, len(a.Instances)),
		o:          o,
	}
	// Phase 1: placement.
	for _, decl := range a.Instances {
		pl, err := e.Place(ctx, decl.Component, decl.Version, a.Name+"."+decl.Name)
		if err != nil {
			dep.Teardown()
			return nil, fmt.Errorf("assembly %s: placing %s: %w", a.Name, decl.Name, err)
		}
		dep.Placements[decl.Name] = pl
	}
	// Phase 2: port connections (uses -> provides).
	for _, c := range a.Connections {
		from, to := dep.Placements[c.From], dep.Placements[c.To]
		target, err := e.ProvidePort(ctx, to, c.ToPort)
		if err != nil {
			dep.Teardown()
			return nil, fmt.Errorf("assembly %s: port %s.%s: %w", a.Name, c.To, c.ToPort, err)
		}
		if err := e.Connect(ctx, from, c.FromPort, target); err != nil {
			dep.Teardown()
			return nil, fmt.Errorf("assembly %s: connecting %s.%s: %w", a.Name, c.From, c.FromPort, err)
		}
	}
	// Phase 3: event links (emits -> consumes) become channel bridges
	// from the emitter's node to the consumer's node, unless both ends
	// share a node (the hub connects them already).
	for _, l := range a.EventLinks {
		from, to := dep.Placements[l.From], dep.Placements[l.To]
		if from.Node == to.Node {
			continue
		}
		typeID, err := dep.portRepoID(ctx, from, l.FromPort)
		if err != nil {
			dep.Teardown()
			return nil, fmt.Errorf("assembly %s: event link %s.%s: %w", a.Name, l.From, l.FromPort, err)
		}
		if err := dep.bridge(ctx, from, to, typeID); err != nil {
			dep.Teardown()
			return nil, fmt.Errorf("assembly %s: bridging %s -> %s: %w", a.Name, from.Node, to.Node, err)
		}
	}
	return dep, nil
}

// portRepoID asks an instance's reflective interface for a port's type.
func (dep *Deployed) portRepoID(ctx context.Context, pl *deploy.Placement, port string) (string, error) {
	equiv := dep.o.NewRef(pl.Equivalent)
	var repoID string
	err := equiv.InvokeContext(ctx, "ports", nil, func(d *cdr.Decoder) error {
		n, err := d.ReadULong()
		if err != nil {
			return err
		}
		for i := uint32(0); i < n; i++ {
			name, err := d.ReadString()
			if err != nil {
				return err
			}
			if _, err := d.ReadString(); err != nil { // kind
				return err
			}
			rid, err := d.ReadString()
			if err != nil {
				return err
			}
			if _, err := d.ReadBool(); err != nil { // connected
				return err
			}
			if _, err := d.ReadBool(); err != nil { // declared
				return err
			}
			if name == port {
				repoID = rid
			}
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if repoID == "" {
		return "", fmt.Errorf("assembly: instance has no port %q", port)
	}
	return repoID, nil
}

// eventServiceOf fetches a node's event service ref through its acceptor.
func (dep *Deployed) eventServiceOf(ctx context.Context, pl *deploy.Placement) (*ior.IOR, error) {
	acc := dep.o.NewRef(pl.Acceptor)
	var ref *ior.IOR
	err := acc.InvokeContext(ctx, "event_service", nil, func(d *cdr.Decoder) error {
		var err error
		ref, err = ior.Unmarshal(d)
		return err
	})
	return ref, err
}

// bridge links the emitter node's channel for typeID to the consumer's
// node.
func (dep *Deployed) bridge(ctx context.Context, from, to *deploy.Placement, typeID string) error {
	src, err := dep.eventServiceOf(ctx, from)
	if err != nil {
		return err
	}
	dst, err := dep.eventServiceOf(ctx, to)
	if err != nil {
		return err
	}
	srcRef := dep.o.NewRef(src)
	var id string
	err = srcRef.InvokeContext(ctx, "bridge",
		func(e *cdr.Encoder) {
			e.WriteString(typeID)
			dst.Marshal(e)
		},
		func(d *cdr.Decoder) error {
			var err error
			id, err = d.ReadString()
			return err
		})
	if err != nil {
		return err
	}
	dep.bridges = append(dep.bridges, bridgeRec{events: src, id: id})
	return nil
}

// Teardown removes bridges and destroys the application's instances
// (best effort: unreachable nodes are skipped). It accepts no context so
// deferred cleanup still runs after the deploy context is cancelled; use
// TeardownContext to bound it.
func (dep *Deployed) Teardown() { dep.TeardownContext(context.Background()) }

// TeardownContext is Teardown bounded by ctx.
func (dep *Deployed) TeardownContext(ctx context.Context) {
	for _, b := range dep.bridges {
		ref := dep.o.NewRef(b.events)
		_ = ref.InvokeContext(ctx, "unbridge", func(e *cdr.Encoder) { e.WriteString(b.id) }, nil)
	}
	dep.bridges = nil
	for declName, pl := range dep.Placements {
		reg := dep.o.NewRef(pl.Registry)
		var factory *ior.IOR
		err := reg.InvokeContext(ctx, "factory",
			func(e *cdr.Encoder) { e.WriteString(pl.ComponentID) },
			func(d *cdr.Decoder) error {
				var err error
				factory, err = ior.Unmarshal(d)
				return err
			})
		if err != nil {
			continue
		}
		fref := dep.o.NewRef(factory)
		_ = fref.InvokeContext(ctx, "destroy",
			func(e *cdr.Encoder) { e.WriteString(dep.Assembly.Name + "." + declName) }, nil)
	}
}

// ComponentIDOf returns the concrete component chosen for a declared
// instance.
func (dep *Deployed) ComponentIDOf(decl string) (component.ID, bool) {
	pl, ok := dep.Placements[decl]
	if !ok {
		return component.ID{}, false
	}
	id, err := component.ParseID(pl.ComponentID)
	return id, err == nil
}

// Package assembly implements CORBA-LC applications (paper §2.4.4):
// "applications are just special components ... they encapsulate the
// explicit rules to connect together certain components and their
// instances". An Assembly declares named instances of components and the
// port connections among them; deployment matches the declarations
// against network-running resources *at run time*, so the node hosting
// each instance is chosen when the application starts, not at
// design time.
package assembly

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"corbalc/internal/version"
)

// InstanceDecl declares one named instance of a component.
type InstanceDecl struct {
	Name      string `xml:"name,attr"`
	Component string `xml:"component,attr"`
	// Version is a requirement ("1.*", ">=2.0", ...; empty = any).
	Version string `xml:"version,attr,omitempty"`
}

// Connection wires a uses port to a provides port.
type Connection struct {
	From     string `xml:"from,attr"` // instance name
	FromPort string `xml:"fromport,attr"`
	To       string `xml:"to,attr"` // instance name
	ToPort   string `xml:"toport,attr"`
}

// EventLink routes an emits port's events to a consumes port's node.
type EventLink struct {
	From     string `xml:"from,attr"`
	FromPort string `xml:"fromport,attr"`
	To       string `xml:"to,attr"`
	ToPort   string `xml:"toport,attr"`
}

// Assembly is the application descriptor — the "bootstrap component"
// whose explicit dependencies the network satisfies at run time.
type Assembly struct {
	XMLName     xml.Name       `xml:"assembly"`
	Name        string         `xml:"name,attr"`
	Instances   []InstanceDecl `xml:"instance"`
	Connections []Connection   `xml:"connect"`
	EventLinks  []EventLink    `xml:"eventlink"`
}

// ErrInvalid reports a malformed assembly.
var ErrInvalid = errors.New("assembly: invalid")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Parse decodes and validates an assembly document.
func Parse(r io.Reader) (*Assembly, error) {
	var a Assembly
	if err := xml.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("assembly: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// Encode serialises the assembly as indented XML.
func (a *Assembly) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(a); err != nil {
		return err
	}
	return enc.Close()
}

// Validate checks structural consistency.
func (a *Assembly) Validate() error {
	if a.Name == "" {
		return invalidf("assembly name missing")
	}
	if strings.ContainsAny(a.Name, "/ ") {
		return invalidf("assembly name %q contains '/' or space", a.Name)
	}
	if len(a.Instances) == 0 {
		return invalidf("assembly %s declares no instances", a.Name)
	}
	seen := make(map[string]bool)
	for _, inst := range a.Instances {
		if inst.Name == "" || inst.Component == "" {
			return invalidf("assembly %s: instance needs name and component", a.Name)
		}
		if seen[inst.Name] {
			return invalidf("assembly %s: duplicate instance %q", a.Name, inst.Name)
		}
		seen[inst.Name] = true
		if inst.Version != "" {
			if _, err := version.ParseRequirement(inst.Version); err != nil {
				return invalidf("assembly %s: instance %s: bad version %q", a.Name, inst.Name, inst.Version)
			}
		}
	}
	check := func(kind, from, fromPort, to, toPort string) error {
		if !seen[from] {
			return invalidf("assembly %s: %s references unknown instance %q", a.Name, kind, from)
		}
		if !seen[to] {
			return invalidf("assembly %s: %s references unknown instance %q", a.Name, kind, to)
		}
		if fromPort == "" || toPort == "" {
			return invalidf("assembly %s: %s %s->%s needs port names", a.Name, kind, from, to)
		}
		return nil
	}
	for _, c := range a.Connections {
		if err := check("connection", c.From, c.FromPort, c.To, c.ToPort); err != nil {
			return err
		}
	}
	for _, l := range a.EventLinks {
		if err := check("event link", l.From, l.FromPort, l.To, l.ToPort); err != nil {
			return err
		}
	}
	return nil
}

// Instance returns the declaration with the given name.
func (a *Assembly) Instance(name string) (InstanceDecl, bool) {
	for _, inst := range a.Instances {
		if inst.Name == name {
			return inst, true
		}
	}
	return InstanceDecl{}, false
}

// Package xmldesc implements the XML component descriptors of CORBA-LC.
//
// The paper (§2.1.1) describes component meta-data as XML files whose
// DTDs derive from the W3C Open Software Description (OSD) format, split
// across two dimensions:
//
//   - the *static* (binary package) dimension — SoftPkg: identity,
//     version, dependencies, per-platform implementations, mobility,
//     replication, aggregation, licensing and security properties; and
//   - the *dynamic* (component type) dimension — ComponentType: the
//     minimal set of ports (provided/used interfaces, emitted/consumed
//     events), factory life-cycle policy, required framework services
//     and QoS envelope.
//
// Both documents ship inside the component package (see internal/cpkg)
// next to the IDL files and binaries.
package xmldesc

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"corbalc/internal/version"
)

// SoftPkg is the static-dimension descriptor (softpkg.xml).
type SoftPkg struct {
	XMLName  xml.Name `xml:"softpkg"`
	Name     string   `xml:"name,attr"`
	Version  string   `xml:"version,attr"`
	Title    string   `xml:"title,omitempty"`
	Abstract string   `xml:"abstract,omitempty"`
	Author   Author   `xml:"author"`
	License  License  `xml:"license"`

	// Dependencies other than components: hardware, OS, ORB.
	Dependencies []Dependency `xml:"dependency"`

	// Implementations are the per-platform binaries inside the package.
	Implementations []Implementation `xml:"implementation"`

	// Descriptor points at the dynamic-dimension file in the archive.
	Descriptor FileRef `xml:"descriptor"`

	// IDLFiles lists the IDL files in the archive defining the
	// component's types and interfaces.
	IDLFiles []FileRef `xml:"idl"`

	// Static offerings/needs flags (paper §2.1.1).
	Mobility    string      `xml:"mobility,omitempty"`    // "movable" | "fixed"
	Replication string      `xml:"replication,omitempty"` // "none" | "stateless" | "coordinated"
	Aggregation Aggregation `xml:"aggregation"`
}

// Author identifies the component's producer.
type Author struct {
	Company string `xml:"company,omitempty"`
	Name    string `xml:"name,omitempty"`
	Webpage string `xml:"webpage,omitempty"`
}

// License carries the licensing / pay-per-use information.
type License struct {
	Href      string `xml:"href,attr,omitempty"`
	PayPerUse bool   `xml:"payperuse,attr,omitempty"`
	Text      string `xml:",chardata"`
}

// Dependency is a non-component prerequisite of the package.
type Dependency struct {
	Type    string `xml:"type,attr"` // "Component" | "ORB" | "OS" | "Processor"
	Name    string `xml:"name"`
	Version string `xml:"version,omitempty"` // requirement syntax, see internal/version
}

// Implementation is one per-platform binary variant.
type Implementation struct {
	ID        string  `xml:"id,attr"`
	OS        string  `xml:"os,omitempty"`        // e.g. "linux", "windows", "any"
	Processor string  `xml:"processor,omitempty"` // e.g. "amd64", "arm", "any"
	ORB       string  `xml:"orb,omitempty"`       // e.g. "corbalc"
	Code      CodeRef `xml:"code"`
}

// Matches reports whether the implementation suits a platform tuple;
// empty or "any" fields match everything.
func (im *Implementation) Matches(os, processor, orb string) bool {
	match := func(have, want string) bool {
		return have == "" || have == "any" || want == "" || have == want
	}
	return match(im.OS, os) && match(im.Processor, processor) && match(im.ORB, orb)
}

// CodeRef locates an implementation's binary inside the archive.
type CodeRef struct {
	Type       string  `xml:"type,attr"` // "DLL" | "SharedLibrary" | "Script" | "GoRegistered"
	File       FileRef `xml:"fileinarchive"`
	EntryPoint string  `xml:"entrypoint,omitempty"`
}

// FileRef names a file inside the package archive.
type FileRef struct {
	Name string `xml:"name,attr"`
}

// Aggregation declares data-parallel splitting support (paper §2.1.1,
// OMG aggregated computing).
type Aggregation struct {
	Splittable bool   `xml:"splittable,attr,omitempty"`
	Gather     string `xml:"gather,attr,omitempty"` // e.g. "concat", "sum", "custom"
}

// ComponentType is the dynamic-dimension descriptor (componenttype.xml).
type ComponentType struct {
	XMLName xml.Name `xml:"componenttype"`
	Name    string   `xml:"name,attr"`
	RepoID  string   `xml:"repoid,attr"`

	Ports     []Port       `xml:"ports>port"`
	Factory   Factory      `xml:"factory"`
	QoS       QoS          `xml:"qos"`
	Framework []ServiceReq `xml:"framework>service"`
}

// PortKind enumerates the port categories of §2.1.2.
type PortKind string

// Port kinds. Interfaces come in provided/used pairs; events in
// emitted/consumed pairs (publish/subscribe push channels).
const (
	PortProvides PortKind = "provides"
	PortUses     PortKind = "uses"
	PortEmits    PortKind = "emits"
	PortConsumes PortKind = "consumes"
)

// Port is one external communication point of the component type.
type Port struct {
	Kind PortKind `xml:"kind,attr"`
	Name string   `xml:"name,attr"`
	// RepoID is the interface repository ID (interface ports) or the
	// event type ID (event ports).
	RepoID string `xml:"repoid,attr"`
	// Optional marks a uses/consumes port the instance can run without.
	Optional bool `xml:"optional,attr,omitempty"`
	// Version constrains acceptable providers (requirement syntax).
	Version string `xml:"version,attr,omitempty"`
}

// Factory describes instance life-cycle management (§2.1.2: "a
// description of the life cycle of the instances ... which allows to
// automatically generate the factory code").
type Factory struct {
	// Lifecycle: "service" (one shared instance per node), "session"
	// (one instance per client connection), "process" (new instance per
	// create call).
	Lifecycle string `xml:"lifecycle,attr,omitempty"`
	// MaxInstances bounds concurrent instances per node (0 = unbounded).
	MaxInstances int `xml:"maxinstances,attr,omitempty"`
}

// QoS is the resource envelope of §2.1.2: minimum/maximum CPU and memory
// utilisation and minimum communication bandwidth.
type QoS struct {
	CPUMin       float64 `xml:"cpu>min,omitempty"`       // fraction of one CPU
	CPUMax       float64 `xml:"cpu>max,omitempty"`       // fraction of one CPU
	MemoryMinMB  int     `xml:"memory>min,omitempty"`    // MiB
	MemoryMaxMB  int     `xml:"memory>max,omitempty"`    // MiB
	BandwidthMin float64 `xml:"bandwidth>min,omitempty"` // Mbit/s to used ports
}

// ServiceReq names a framework service the instances require from their
// container (events, migration, replication, persistence-of-state, ...).
type ServiceReq struct {
	Name string `xml:"name,attr"`
}

// Errors returned by descriptor validation.
var (
	ErrInvalid = errors.New("xmldesc: invalid descriptor")
)

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// ParseSoftPkg decodes and validates a softpkg document.
func ParseSoftPkg(r io.Reader) (*SoftPkg, error) {
	var sp SoftPkg
	if err := xml.NewDecoder(r).Decode(&sp); err != nil {
		return nil, fmt.Errorf("xmldesc: softpkg: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Validate checks the structural rules of a softpkg descriptor.
func (sp *SoftPkg) Validate() error {
	if sp.Name == "" {
		return invalidf("softpkg name missing")
	}
	if strings.ContainsAny(sp.Name, "/\\ ") {
		return invalidf("softpkg name %q contains path or space characters", sp.Name)
	}
	if _, err := version.Parse(sp.Version); err != nil {
		return invalidf("softpkg %s: bad version %q", sp.Name, sp.Version)
	}
	if len(sp.Implementations) == 0 {
		return invalidf("softpkg %s: no implementations", sp.Name)
	}
	ids := make(map[string]bool)
	for i := range sp.Implementations {
		im := &sp.Implementations[i]
		if im.ID == "" {
			return invalidf("softpkg %s: implementation %d missing id", sp.Name, i)
		}
		if ids[im.ID] {
			return invalidf("softpkg %s: duplicate implementation id %q", sp.Name, im.ID)
		}
		ids[im.ID] = true
		if im.Code.File.Name == "" {
			return invalidf("softpkg %s: implementation %s has no code file", sp.Name, im.ID)
		}
	}
	for _, d := range sp.Dependencies {
		if d.Name == "" {
			return invalidf("softpkg %s: dependency with empty name", sp.Name)
		}
		if d.Version != "" {
			if _, err := version.ParseRequirement(d.Version); err != nil {
				return invalidf("softpkg %s: dependency %s: bad version requirement %q", sp.Name, d.Name, d.Version)
			}
		}
	}
	switch sp.Mobility {
	case "", "movable", "fixed":
	default:
		return invalidf("softpkg %s: mobility %q", sp.Name, sp.Mobility)
	}
	switch sp.Replication {
	case "", "none", "stateless", "coordinated":
	default:
		return invalidf("softpkg %s: replication %q", sp.Name, sp.Replication)
	}
	return nil
}

// ParsedVersion returns the package version (Validate guarantees it
// parses).
func (sp *SoftPkg) ParsedVersion() version.V {
	v, _ := version.Parse(sp.Version)
	return v
}

// ComponentDeps returns the component-type dependencies only.
func (sp *SoftPkg) ComponentDeps() []Dependency {
	var out []Dependency
	for _, d := range sp.Dependencies {
		if d.Type == "Component" {
			out = append(out, d)
		}
	}
	return out
}

// FindImplementation returns the first implementation matching the
// platform tuple.
func (sp *SoftPkg) FindImplementation(os, processor, orb string) (*Implementation, bool) {
	for i := range sp.Implementations {
		if sp.Implementations[i].Matches(os, processor, orb) {
			return &sp.Implementations[i], true
		}
	}
	return nil, false
}

// Movable reports whether the component may be extracted from its host
// and fetched elsewhere (default true, per the network-as-repository
// model; "fixed" opts out).
func (sp *SoftPkg) Movable() bool { return sp.Mobility != "fixed" }

// Encode serialises the descriptor as indented XML.
func (sp *SoftPkg) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(sp); err != nil {
		return err
	}
	return enc.Close()
}

// ParseComponentType decodes and validates a componenttype document.
func ParseComponentType(r io.Reader) (*ComponentType, error) {
	var ct ComponentType
	if err := xml.NewDecoder(r).Decode(&ct); err != nil {
		return nil, fmt.Errorf("xmldesc: componenttype: %w", err)
	}
	if err := ct.Validate(); err != nil {
		return nil, err
	}
	return &ct, nil
}

// Validate checks the structural rules of a component type descriptor.
func (ct *ComponentType) Validate() error {
	if ct.Name == "" {
		return invalidf("componenttype name missing")
	}
	if !strings.HasPrefix(ct.RepoID, "IDL:") {
		return invalidf("componenttype %s: repoid %q not an IDL repository ID", ct.Name, ct.RepoID)
	}
	names := make(map[string]bool)
	for _, p := range ct.Ports {
		switch p.Kind {
		case PortProvides, PortUses, PortEmits, PortConsumes:
		default:
			return invalidf("componenttype %s: port %q has kind %q", ct.Name, p.Name, p.Kind)
		}
		if p.Name == "" {
			return invalidf("componenttype %s: unnamed port", ct.Name)
		}
		if names[p.Name] {
			return invalidf("componenttype %s: duplicate port %q", ct.Name, p.Name)
		}
		names[p.Name] = true
		if !strings.HasPrefix(p.RepoID, "IDL:") {
			return invalidf("componenttype %s: port %s: repoid %q", ct.Name, p.Name, p.RepoID)
		}
		if p.Optional && (p.Kind == PortProvides || p.Kind == PortEmits) {
			return invalidf("componenttype %s: port %s: only uses/consumes ports may be optional", ct.Name, p.Name)
		}
		if p.Version != "" {
			if _, err := version.ParseRequirement(p.Version); err != nil {
				return invalidf("componenttype %s: port %s: bad version %q", ct.Name, p.Name, p.Version)
			}
		}
	}
	switch ct.Factory.Lifecycle {
	case "", "service", "session", "process":
	default:
		return invalidf("componenttype %s: factory lifecycle %q", ct.Name, ct.Factory.Lifecycle)
	}
	if ct.Factory.MaxInstances < 0 {
		return invalidf("componenttype %s: negative maxinstances", ct.Name)
	}
	if ct.QoS.CPUMin < 0 || ct.QoS.CPUMax < 0 || ct.QoS.MemoryMinMB < 0 ||
		ct.QoS.MemoryMaxMB < 0 || ct.QoS.BandwidthMin < 0 {
		return invalidf("componenttype %s: negative QoS value", ct.Name)
	}
	if ct.QoS.CPUMax > 0 && ct.QoS.CPUMin > ct.QoS.CPUMax {
		return invalidf("componenttype %s: cpu min > max", ct.Name)
	}
	if ct.QoS.MemoryMaxMB > 0 && ct.QoS.MemoryMinMB > ct.QoS.MemoryMaxMB {
		return invalidf("componenttype %s: memory min > max", ct.Name)
	}
	return nil
}

// PortsOf returns the ports of the given kind, in declaration order.
func (ct *ComponentType) PortsOf(kind PortKind) []Port {
	var out []Port
	for _, p := range ct.Ports {
		if p.Kind == kind {
			out = append(out, p)
		}
	}
	return out
}

// Port returns the named port.
func (ct *ComponentType) Port(name string) (Port, bool) {
	for _, p := range ct.Ports {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// RequiresService reports whether the type asks its container for the
// named framework service.
func (ct *ComponentType) RequiresService(name string) bool {
	for _, s := range ct.Framework {
		if s.Name == name {
			return true
		}
	}
	return false
}

// Encode serialises the descriptor as indented XML.
func (ct *ComponentType) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(ct); err != nil {
		return err
	}
	return enc.Close()
}

package xmldesc

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

const softpkgXML = `<?xml version="1.0"?>
<softpkg name="streamdecoder" version="1.2.0">
  <title>Stream Decoder</title>
  <abstract>Decodes MPEG-like media streams.</abstract>
  <author><company>UM DiTEC</company><webpage>http://example.org</webpage></author>
  <license href="http://example.org/license" payperuse="true">per-seat</license>
  <dependency type="ORB"><name>corbalc</name><version>&gt;=1.0</version></dependency>
  <dependency type="Component"><name>codec-core</name><version>2.*</version></dependency>
  <descriptor name="componenttype.xml"/>
  <idl name="idl/decoder.idl"/>
  <implementation id="linux-amd64">
    <os>linux</os><processor>amd64</processor><orb>corbalc</orb>
    <code type="GoRegistered">
      <fileinarchive name="bin/streamdecoder-linux-amd64.bin"/>
      <entrypoint>corbalc/examples/streamdecoder.New</entrypoint>
    </code>
  </implementation>
  <implementation id="anyplatform">
    <os>any</os><processor>any</processor>
    <code type="Script"><fileinarchive name="bin/streamdecoder.tcl"/></code>
  </implementation>
  <mobility>movable</mobility>
  <replication>stateless</replication>
  <aggregation splittable="true" gather="concat"/>
</softpkg>`

const componentTypeXML = `<?xml version="1.0"?>
<componenttype name="StreamDecoder" repoid="IDL:media/StreamDecoder:1.0">
  <ports>
    <port kind="provides" name="decode" repoid="IDL:media/Decoder:1.0"/>
    <port kind="uses" name="display" repoid="IDL:corbalc/Display:1.0" version="&gt;=1.0"/>
    <port kind="uses" name="stats" repoid="IDL:corbalc/Stats:1.0" optional="true"/>
    <port kind="emits" name="frame_ready" repoid="IDL:media/FrameReady:1.0"/>
    <port kind="consumes" name="quality_hint" repoid="IDL:media/QualityHint:1.0"/>
  </ports>
  <factory lifecycle="session" maxinstances="8"/>
  <qos>
    <cpu><min>0.05</min><max>0.9</max></cpu>
    <memory><min>16</min><max>256</max></memory>
    <bandwidth><min>2.5</min></bandwidth>
  </qos>
  <framework>
    <service name="events"/>
    <service name="migration"/>
  </framework>
</componenttype>`

func TestParseSoftPkg(t *testing.T) {
	sp, err := ParseSoftPkg(strings.NewReader(softpkgXML))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "streamdecoder" || sp.Version != "1.2.0" {
		t.Fatalf("identity = %s/%s", sp.Name, sp.Version)
	}
	if v := sp.ParsedVersion(); v.Major != 1 || v.Minor != 2 {
		t.Fatalf("parsed version = %v", v)
	}
	if !sp.License.PayPerUse {
		t.Error("pay-per-use flag lost")
	}
	deps := sp.ComponentDeps()
	if len(deps) != 1 || deps[0].Name != "codec-core" || deps[0].Version != "2.*" {
		t.Fatalf("component deps = %+v", deps)
	}
	if !sp.Movable() {
		t.Error("movable")
	}
	if !sp.Aggregation.Splittable || sp.Aggregation.Gather != "concat" {
		t.Errorf("aggregation = %+v", sp.Aggregation)
	}
	if sp.Descriptor.Name != "componenttype.xml" {
		t.Errorf("descriptor ref = %q", sp.Descriptor.Name)
	}
	if len(sp.IDLFiles) != 1 || sp.IDLFiles[0].Name != "idl/decoder.idl" {
		t.Errorf("idl files = %+v", sp.IDLFiles)
	}
}

func TestFindImplementation(t *testing.T) {
	sp, err := ParseSoftPkg(strings.NewReader(softpkgXML))
	if err != nil {
		t.Fatal(err)
	}
	im, ok := sp.FindImplementation("linux", "amd64", "corbalc")
	if !ok || im.ID != "linux-amd64" {
		t.Fatalf("find = %+v, %v", im, ok)
	}
	// A windows host falls through to the any-platform script.
	im, ok = sp.FindImplementation("windows", "x86", "corbalc")
	if !ok || im.ID != "anyplatform" {
		t.Fatalf("fallback = %+v, %v", im, ok)
	}
	if im.Code.Type != "Script" {
		t.Errorf("code type = %q", im.Code.Type)
	}
}

func TestSoftPkgRoundTrip(t *testing.T) {
	sp, err := ParseSoftPkg(strings.NewReader(softpkgXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	sp2, err := ParseSoftPkg(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if sp2.Name != sp.Name || len(sp2.Implementations) != len(sp.Implementations) ||
		sp2.Mobility != sp.Mobility || len(sp2.Dependencies) != len(sp.Dependencies) {
		t.Fatalf("round trip mismatch: %+v", sp2)
	}
}

func TestSoftPkgValidation(t *testing.T) {
	base := func() *SoftPkg {
		sp, err := ParseSoftPkg(strings.NewReader(softpkgXML))
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	cases := map[string]func(*SoftPkg){
		"empty name":      func(sp *SoftPkg) { sp.Name = "" },
		"name with slash": func(sp *SoftPkg) { sp.Name = "a/b" },
		"bad version":     func(sp *SoftPkg) { sp.Version = "one" },
		"no impls":        func(sp *SoftPkg) { sp.Implementations = nil },
		"dup impl id":     func(sp *SoftPkg) { sp.Implementations[1].ID = sp.Implementations[0].ID },
		"impl no id":      func(sp *SoftPkg) { sp.Implementations[0].ID = "" },
		"impl no code":    func(sp *SoftPkg) { sp.Implementations[0].Code.File.Name = "" },
		"dep empty name":  func(sp *SoftPkg) { sp.Dependencies[0].Name = "" },
		"dep bad version": func(sp *SoftPkg) { sp.Dependencies[0].Version = ">>=1" },
		"bad mobility":    func(sp *SoftPkg) { sp.Mobility = "teleporting" },
		"bad replication": func(sp *SoftPkg) { sp.Replication = "psychic" },
	}
	for name, mutate := range cases {
		sp := base()
		mutate(sp)
		if err := sp.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v", name, err)
		}
	}
}

func TestParseComponentType(t *testing.T) {
	ct, err := ParseComponentType(strings.NewReader(componentTypeXML))
	if err != nil {
		t.Fatal(err)
	}
	if ct.Name != "StreamDecoder" || ct.RepoID != "IDL:media/StreamDecoder:1.0" {
		t.Fatalf("identity = %s %s", ct.Name, ct.RepoID)
	}
	if got := len(ct.PortsOf(PortUses)); got != 2 {
		t.Fatalf("uses ports = %d", got)
	}
	p, ok := ct.Port("stats")
	if !ok || !p.Optional {
		t.Fatalf("stats port = %+v, %v", p, ok)
	}
	if ct.Factory.Lifecycle != "session" || ct.Factory.MaxInstances != 8 {
		t.Fatalf("factory = %+v", ct.Factory)
	}
	if ct.QoS.CPUMax != 0.9 || ct.QoS.MemoryMinMB != 16 || ct.QoS.BandwidthMin != 2.5 {
		t.Fatalf("qos = %+v", ct.QoS)
	}
	if !ct.RequiresService("migration") || ct.RequiresService("transactions") {
		t.Error("framework services wrong")
	}
}

func TestComponentTypeRoundTrip(t *testing.T) {
	ct, err := ParseComponentType(strings.NewReader(componentTypeXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ct.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	ct2, err := ParseComponentType(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if len(ct2.Ports) != len(ct.Ports) || ct2.QoS != ct.QoS || ct2.Factory != ct.Factory {
		t.Fatalf("round trip mismatch: %+v", ct2)
	}
}

func TestComponentTypeValidation(t *testing.T) {
	base := func() *ComponentType {
		ct, err := ParseComponentType(strings.NewReader(componentTypeXML))
		if err != nil {
			t.Fatal(err)
		}
		return ct
	}
	cases := map[string]func(*ComponentType){
		"empty name":         func(ct *ComponentType) { ct.Name = "" },
		"bad repoid":         func(ct *ComponentType) { ct.RepoID = "not-an-id" },
		"bad port kind":      func(ct *ComponentType) { ct.Ports[0].Kind = "gives" },
		"unnamed port":       func(ct *ComponentType) { ct.Ports[0].Name = "" },
		"duplicate port":     func(ct *ComponentType) { ct.Ports[1].Name = ct.Ports[0].Name },
		"port bad repoid":    func(ct *ComponentType) { ct.Ports[0].RepoID = "x" },
		"optional provides":  func(ct *ComponentType) { ct.Ports[0].Optional = true },
		"port bad version":   func(ct *ComponentType) { ct.Ports[1].Version = "vvv" },
		"bad lifecycle":      func(ct *ComponentType) { ct.Factory.Lifecycle = "eternal" },
		"negative instances": func(ct *ComponentType) { ct.Factory.MaxInstances = -1 },
		"negative qos":       func(ct *ComponentType) { ct.QoS.CPUMin = -0.1 },
		"cpu min above max":  func(ct *ComponentType) { ct.QoS.CPUMin = 0.95 },
		"mem min above max":  func(ct *ComponentType) { ct.QoS.MemoryMinMB = 512 },
	}
	for name, mutate := range cases {
		ct := base()
		mutate(ct)
		if err := ct.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v", name, err)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := ParseSoftPkg(strings.NewReader("<not-xml")); err == nil {
		t.Error("softpkg garbage accepted")
	}
	if _, err := ParseComponentType(strings.NewReader("{json}")); err == nil {
		t.Error("componenttype garbage accepted")
	}
	// Wrong root element.
	if _, err := ParseSoftPkg(strings.NewReader("<othertag/>")); err == nil {
		t.Error("wrong root accepted")
	}
}

// Package aggregate implements the data-parallel component support of
// paper §2.1.1: a component can declare (static property "aggregation")
// that it "knows how to split itself in different instances to process a
// set of data ... and how to gather partial results into a complete
// solution". The component contributes the domain knowledge — split,
// process, gather — through a conventional provided port; the framework
// contributes the distribution: discovering every provider in the
// network, farming chunks across them, surviving volunteer churn by
// resubmission, and invoking the gather step.
//
// The port contract (interface IDL:corbalc/Aggregable:1.0):
//
//	sequence<Blob> split(in Blob job, in long parts)
//	Blob           process(in Blob chunk)
//	Blob           gather(in sequence<Blob> partials)
//
// All payloads are opaque to the framework.
package aggregate

import (
	"context"
	"errors"
	"fmt"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/ior"
	"corbalc/internal/node"
	"corbalc/internal/orb"
)

// AggregableRepoID is the port interface data-parallel components
// provide.
const AggregableRepoID = "IDL:corbalc/Aggregable:1.0"

// Errors returned by Run.
var (
	ErrNoWorkers     = errors.New("aggregate: no providers in the network")
	ErrNotSplittable = errors.New("aggregate: component does not declare aggregation support")
	ErrAllFailed     = errors.New("aggregate: every provider failed")
)

// Querier is the distributed-registry face the runner needs;
// cohesion.Agent's QueryAll satisfies it.
type Querier interface {
	QueryAll(ctx context.Context, portRepoID, versionReq string) ([]*node.Offer, error)
}

// Runner farms one aggregation job over the network.
type Runner struct {
	// ORB performs the calls.
	ORB *orb.ORB
	// Query discovers providers.
	Query Querier
	// PartsPerWorker chooses how many chunks to request per discovered
	// worker (default 2: mild over-partitioning smooths stragglers).
	PartsPerWorker int
	// MaxRetries bounds resubmissions of one chunk (default 3).
	MaxRetries int
}

// Result carries the gathered output and execution statistics.
type Result struct {
	Output  []byte
	Workers int
	Chunks  int
	Retries int
}

// Run splits job across every provider of the component (by name,
// honouring verReq), processes the chunks in parallel, and gathers. The
// context bounds the whole job: discovery, split, farming and gather.
func (r *Runner) Run(ctx context.Context, componentName, verReq string, job []byte) (*Result, error) {
	offers, err := r.Query.QueryAll(ctx, AggregableRepoID, verReq)
	if err != nil {
		return nil, err
	}
	// Keep only offers of the requested component that declare
	// splittability.
	var workers []*node.Offer
	for _, of := range offers {
		id, err := component.ParseID(of.ComponentID)
		if err != nil || id.Name != componentName {
			continue
		}
		workers = append(workers, of)
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("%w: component %s port %s", ErrNoWorkers, componentName, AggregableRepoID)
	}

	refs := make([]*orb.ObjectRef, 0, len(workers))
	for _, of := range workers {
		ref, err := r.obtain(ctx, of)
		if err == nil {
			refs = append(refs, ref)
		}
	}
	if len(refs) == 0 {
		return nil, ErrAllFailed
	}

	perWorker := r.PartsPerWorker
	if perWorker <= 0 {
		perWorker = 2
	}
	parts := len(refs) * perWorker

	// 1. Split on the first reachable instance: the component owns the
	// decomposition logic.
	chunks, err := r.split(ctx, refs[0], job, parts)
	if err != nil {
		return nil, fmt.Errorf("aggregate: split: %w", err)
	}
	if len(chunks) == 0 {
		return nil, fmt.Errorf("aggregate: component split produced no chunks")
	}

	// 2. Farm the chunks with retry-on-failure.
	partials, retries, err := r.farm(ctx, refs, chunks)
	if err != nil {
		return nil, err
	}

	// 3. Gather on any instance.
	out, err := r.gather(ctx, refs, partials)
	if err != nil {
		return nil, fmt.Errorf("aggregate: gather: %w", err)
	}
	return &Result{Output: out, Workers: len(refs), Chunks: len(chunks), Retries: retries}, nil
}

// obtain binds to a provider's aggregable port.
func (r *Runner) obtain(ctx context.Context, of *node.Offer) (*orb.ObjectRef, error) {
	acc := r.ORB.NewRef(of.Acceptor)
	var port *ior.IOR
	err := acc.InvokeContext(ctx, "obtain",
		func(e *cdr.Encoder) {
			e.WriteString(of.ComponentID)
			e.WriteString(AggregableRepoID)
		},
		func(d *cdr.Decoder) error {
			var e error
			port, e = ior.Unmarshal(d)
			return e
		})
	if err != nil {
		return nil, err
	}
	return r.ORB.NewRef(port), nil
}

func (r *Runner) split(ctx context.Context, ref *orb.ObjectRef, job []byte, parts int) ([][]byte, error) {
	var chunks [][]byte
	err := ref.InvokeContext(ctx, "split",
		func(e *cdr.Encoder) {
			e.WriteOctetSeq(job)
			e.WriteLong(int32(parts))
		},
		func(d *cdr.Decoder) error {
			n, err := d.ReadULong()
			if err != nil {
				return err
			}
			for i := uint32(0); i < n; i++ {
				c, err := d.ReadOctetSeq()
				if err != nil {
					return err
				}
				chunks = append(chunks, c)
			}
			return nil
		})
	return chunks, err
}

// farm runs the chunks across the worker refs; a failed call resubmits
// the chunk to another worker (volunteer churn, §3.2).
func (r *Runner) farm(ctx context.Context, refs []*orb.ObjectRef, chunks [][]byte) ([][]byte, int, error) {
	maxRetries := r.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 3
	}
	type task struct {
		idx   int
		tries int
	}
	type result struct {
		idx     int
		partial []byte
		err     error
		tries   int
	}
	work := make(chan task, len(chunks)*(maxRetries+1))
	results := make(chan result, len(chunks)*(maxRetries+1))
	for i := range chunks {
		work <- task{idx: i}
	}
	for _, ref := range refs {
		go func(ref *orb.ObjectRef) {
			for tk := range work {
				var partial []byte
				err := ref.InvokeContext(ctx, "process",
					func(e *cdr.Encoder) { e.WriteOctetSeq(chunks[tk.idx]) },
					func(d *cdr.Decoder) error {
						var e error
						partial, e = d.ReadOctetSeq()
						return e
					})
				results <- result{idx: tk.idx, partial: partial, err: err, tries: tk.tries}
				if err != nil {
					return // this worker is gone
				}
			}
		}(ref)
	}

	partials := make([][]byte, len(chunks))
	done := 0
	retries := 0
	for done < len(chunks) {
		var res result
		select {
		case res = <-results:
		case <-ctx.Done():
			close(work)
			return nil, retries, ctx.Err()
		}
		if res.err != nil {
			if res.tries+1 > maxRetries {
				close(work)
				return nil, retries, fmt.Errorf("%w: chunk %d failed %d times, last: %v",
					ErrAllFailed, res.idx, res.tries+1, res.err)
			}
			retries++
			work <- task{idx: res.idx, tries: res.tries + 1}
			continue
		}
		partials[res.idx] = res.partial
		done++
	}
	close(work)
	return partials, retries, nil
}

// gather tries each worker in turn until one performs the reduction.
func (r *Runner) gather(ctx context.Context, refs []*orb.ObjectRef, partials [][]byte) ([]byte, error) {
	var lastErr error
	for _, ref := range refs {
		var out []byte
		err := ref.InvokeContext(ctx, "gather",
			func(e *cdr.Encoder) {
				e.WriteULong(uint32(len(partials)))
				for _, p := range partials {
					e.WriteOctetSeq(p)
				}
			},
			func(d *cdr.Decoder) error {
				var e error
				out, e = d.ReadOctetSeq()
				return e
			})
		if err == nil {
			return out, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

package aggregate_test

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"corbalc"
	"corbalc/internal/aggregate"
	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/orb"
	"corbalc/internal/simnet"
	"corbalc/internal/xmldesc"
)

// sumSquares is a data-parallel component: the job is a range [lo, hi)
// encoded as two uint64s; split partitions it, process sums n*n over its
// chunk, gather adds the partials. delay simulates per-chunk remote CPU
// time so churn tests can interrupt a run in flight.
type sumSquares struct {
	component.Base
	delay time.Duration
}

func u64(b []byte, i int) uint64 { return binary.LittleEndian.Uint64(b[i*8:]) }
func putRange(lo, hi uint64) []byte {
	out := make([]byte, 16)
	binary.LittleEndian.PutUint64(out, lo)
	binary.LittleEndian.PutUint64(out[8:], hi)
	return out
}

func (s *sumSquares) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	if port != "agg" {
		return component.ErrNoSuchPort
	}
	switch op {
	case "split":
		job, err := args.ReadOctetSeq()
		if err != nil {
			return err
		}
		parts, err := args.ReadLong()
		if err != nil {
			return err
		}
		lo, hi := u64(job, 0), u64(job, 1)
		span := (hi - lo) / uint64(parts)
		if span == 0 {
			span = 1
		}
		var chunks [][]byte
		for start := lo; start < hi; start += span {
			end := start + span
			if end > hi {
				end = hi
			}
			chunks = append(chunks, putRange(start, end))
		}
		reply.WriteULong(uint32(len(chunks)))
		for _, c := range chunks {
			reply.WriteOctetSeq(c)
		}
		return nil
	case "process":
		chunk, err := args.ReadOctetSeq()
		if err != nil {
			return err
		}
		lo, hi := u64(chunk, 0), u64(chunk, 1)
		var sum uint64
		for n := lo; n < hi; n++ {
			sum += n * n
		}
		if s.delay > 0 {
			time.Sleep(s.delay)
		}
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, sum)
		reply.WriteOctetSeq(out)
		return nil
	case "gather":
		n, err := args.ReadULong()
		if err != nil {
			return err
		}
		var total uint64
		for i := uint32(0); i < n; i++ {
			p, err := args.ReadOctetSeq()
			if err != nil {
				return err
			}
			total += binary.LittleEndian.Uint64(p)
		}
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, total)
		reply.WriteOctetSeq(out)
		return nil
	}
	return orb.BadOperation()
}

func aggCluster(t *testing.T, n int, delay time.Duration) *corbalc.Cluster {
	t.Helper()
	reg := component.NewRegistry()
	reg.Register("agg/sumsquares.New", func() component.Instance { return &sumSquares{delay: delay} })
	c, err := corbalc.NewCluster(n, "w%d", simnet.Link{}, corbalc.Options{
		Impls: reg, UpdateInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	spec := &component.Spec{
		Name: "sumsquares", Version: "1.0.0", Entrypoint: "agg/sumsquares.New",
		Splittable: true, Gather: "sum",
	}
	spec.Provide("agg", aggregate.AggregableRepoID)
	spec.QoS = xmldesc.QoS{CPUMin: 0.05}
	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Peers[1:] {
		if _, err := p.Node.InstallComponent(comp); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for all offers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		offers, err := c.Peers[0].Agent.QueryAll(context.Background(), aggregate.AggregableRepoID, "*")
		if err == nil && len(offers) == n-1 {
			return c
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d offers", len(offers))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// expected sum of squares below n.
func sumSq(n uint64) uint64 {
	var s uint64
	for i := uint64(0); i < n; i++ {
		s += i * i
	}
	return s
}

func TestAggregateRun(t *testing.T) {
	c := aggCluster(t, 5, 0) // 4 workers
	r := &aggregate.Runner{ORB: c.Peers[0].Node.ORB(), Query: c.Peers[0].Agent}
	res, err := r.Run(context.Background(), "sumsquares", "*", putRange(0, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(res.Output); got != sumSq(10_000) {
		t.Fatalf("sum = %d, want %d", got, sumSq(10_000))
	}
	if res.Workers != 4 {
		t.Fatalf("workers = %d", res.Workers)
	}
	if res.Chunks < res.Workers {
		t.Fatalf("chunks = %d < workers", res.Chunks)
	}
	if res.Retries != 0 {
		t.Fatalf("unexpected retries: %d", res.Retries)
	}
}

func TestAggregateSurvivesMidRunChurn(t *testing.T) {
	// Each chunk takes ~20ms, so killing a worker shortly after the run
	// starts interrupts its in-flight chunks, which must be resubmitted
	// to the survivors.
	c := aggCluster(t, 5, 20*time.Millisecond)
	r := &aggregate.Runner{ORB: c.Peers[0].Node.ORB(), Query: c.Peers[0].Agent, PartsPerWorker: 4}
	go func() {
		time.Sleep(30 * time.Millisecond)
		c.Net.SetDown("w4", true)
	}()
	res, err := r.Run(context.Background(), "sumsquares", "*", putRange(0, 5_000))
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(res.Output); got != sumSq(5_000) {
		t.Fatalf("sum = %d, want %d", got, sumSq(5_000))
	}
	if res.Retries == 0 {
		t.Log("note: no retries observed (worker died between chunks); result still correct")
	}
}

func TestAggregateWorkerDownBeforeRun(t *testing.T) {
	// A worker that is already unreachable is simply excluded at obtain
	// time: graceful degradation rather than failure.
	c := aggCluster(t, 4, 0)
	c.Net.SetDown("w3", true)
	r := &aggregate.Runner{ORB: c.Peers[0].Node.ORB(), Query: c.Peers[0].Agent}
	res, err := r.Run(context.Background(), "sumsquares", "*", putRange(0, 3_000))
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(res.Output); got != sumSq(3_000) {
		t.Fatalf("sum = %d, want %d", got, sumSq(3_000))
	}
	if res.Workers != 2 {
		t.Fatalf("workers = %d, want 2 survivors", res.Workers)
	}
}

func TestAggregateErrors(t *testing.T) {
	c := aggCluster(t, 2, 0)
	r := &aggregate.Runner{ORB: c.Peers[0].Node.ORB(), Query: c.Peers[0].Agent}
	if _, err := r.Run(context.Background(), "nonexistent", "*", putRange(0, 10)); !errors.Is(err, aggregate.ErrNoWorkers) {
		t.Fatalf("err = %v", err)
	}
	// Version filter that matches nothing.
	if _, err := r.Run(context.Background(), "sumsquares", ">=9.0", putRange(0, 10)); !errors.Is(err, aggregate.ErrNoWorkers) {
		t.Fatalf("version err = %v", err)
	}
}

package deploy

import (
	"fmt"
	"sort"

	"corbalc/internal/component"
	"corbalc/internal/container"
	"corbalc/internal/node"
)

// Balancer implements the run-time load balancing the paper assigns to
// the Distributed Registry ("network resource monitoring and component
// instance migration and replication to achieve load balancing",
// §2.4.3): it watches a set of nodes' resource reports and migrates
// movable instances from overloaded nodes to underloaded ones through
// the capsule mechanism.
//
// The balancer is a management-plane object: it runs wherever the
// acting MRM runs and manipulates nodes through their public node API
// (the same operations the CORBA acceptor exposes).
type Balancer struct {
	// Threshold is the load-fraction gap above the mean that makes a
	// node a migration source (default 0.25).
	Threshold float64
	// MaxPerStep bounds migrations per Step call (default 1).
	MaxPerStep int
}

// loadedNode pairs a node with its report snapshot.
type loadedNode struct {
	n      *node.Node
	report node.Report
}

// Migration describes one completed move.
type Migration struct {
	Instance    string
	ComponentID string
	From, To    string
}

// Step inspects the nodes and performs up to MaxPerStep migrations,
// returning what moved.
func (b *Balancer) Step(nodes []*node.Node) ([]Migration, error) {
	threshold := b.Threshold
	if threshold <= 0 {
		threshold = 0.25
	}
	maxMoves := b.MaxPerStep
	if maxMoves <= 0 {
		maxMoves = 1
	}

	snapshot := make([]loadedNode, 0, len(nodes))
	mean := 0.0
	for _, n := range nodes {
		r := n.Report()
		snapshot = append(snapshot, loadedNode{n: n, report: r})
		mean += r.LoadFraction()
	}
	if len(snapshot) < 2 {
		return nil, nil
	}
	mean /= float64(len(snapshot))

	// Sources: most loaded first. Targets: least loaded first.
	sources := append([]loadedNode(nil), snapshot...)
	sort.Slice(sources, func(i, j int) bool {
		return sources[i].report.LoadFraction() > sources[j].report.LoadFraction()
	})
	targets := append([]loadedNode(nil), snapshot...)
	sort.Slice(targets, func(i, j int) bool {
		return targets[i].report.LoadFraction() < targets[j].report.LoadFraction()
	})

	var moves []Migration
	for _, src := range sources {
		if len(moves) >= maxMoves {
			break
		}
		if src.report.LoadFraction() <= mean+threshold {
			break // sorted: nobody further is overloaded either
		}
		mig, ok := b.migrateOne(src.n, targets, mean)
		if ok {
			moves = append(moves, mig)
		}
	}
	return moves, nil
}

// migrateOne moves one movable instance off src to the best target.
func (b *Balancer) migrateOne(src *node.Node, targets []loadedNode, mean float64) (Migration, bool) {
	for id, insts := range src.Instances() {
		comp, ok := src.Repo().Get(id)
		if !ok || !comp.Movable() || len(insts) == 0 {
			continue
		}
		qos := comp.Type().QoS
		for _, tgt := range targets {
			if tgt.n.Name() == src.Name() {
				continue
			}
			if tgt.report.LoadFraction() >= mean {
				break // sorted ascending: no better target exists
			}
			if !tgt.n.Resources().CanHost(qos) {
				continue
			}
			mi := insts[0]
			if err := b.moveInstance(src, tgt.n, comp, mi); err != nil {
				continue
			}
			return Migration{
				Instance:    mi.Name(),
				ComponentID: id.String(),
				From:        src.Name(),
				To:          tgt.n.Name(),
			}, true
		}
	}
	return Migration{}, false
}

// moveInstance performs capture -> (install if needed) -> restore.
func (b *Balancer) moveInstance(src, dst *node.Node, comp *component.Component, mi *container.ManagedInstance) error {
	if _, ok := dst.Repo().Get(comp.ID()); !ok {
		if _, err := dst.Install(comp.Package().Bytes()); err != nil {
			return fmt.Errorf("deploy: installing %s on %s: %w", comp.ID(), dst.Name(), err)
		}
	}
	srcCt, err := src.ContainerFor(comp.ID())
	if err != nil {
		return err
	}
	capsule, err := srcCt.Migrate(mi.Name())
	if err != nil {
		return err
	}
	dstCt, err := dst.ContainerFor(comp.ID())
	if err != nil {
		// The instance is already gone from src; try to put it back.
		if _, rerr := srcCt.Restore(capsule); rerr != nil {
			return fmt.Errorf("deploy: migration lost instance %s: %v (restore: %w)", mi.Name(), err, rerr)
		}
		return err
	}
	if _, err := dstCt.Restore(capsule); err != nil {
		if _, rerr := srcCt.Restore(capsule); rerr != nil {
			return fmt.Errorf("deploy: migration lost instance %s: %v (restore: %w)", mi.Name(), err, rerr)
		}
		return err
	}
	return nil
}

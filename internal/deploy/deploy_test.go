package deploy_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"corbalc"
	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/deploy"
	"corbalc/internal/node"
	"corbalc/internal/orb"
	"corbalc/internal/simnet"
	"corbalc/internal/version"
	"corbalc/internal/xmldesc"
)

// pingInstance provides one port answering "ping" with the hosting node
// name, letting tests observe where calls execute.
type pingInstance struct {
	component.Base
	calls atomic.Int64
}

func (pi *pingInstance) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "ping":
		pi.calls.Add(1)
		reply.WriteString(pi.Ctx().NodeName())
		return nil
	}
	return orb.BadOperation()
}

func (pi *pingInstance) CaptureState() ([]byte, error) {
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.WriteLongLong(pi.calls.Load())
	return e.Bytes(), nil
}

func (pi *pingInstance) RestoreState(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	v, err := cdr.NewDecoder(b, cdr.LittleEndian).ReadLongLong()
	if err != nil {
		return err
	}
	pi.calls.Store(v)
	return nil
}

func registerPing(reg *component.Registry) {
	reg.Register("test/ping.New", func() component.Instance { return &pingInstance{} })
}

// pingSpec builds a component providing the Ping interface; bandwidth
// configures the fetch decision.
func pingSpec(name string, bandwidth float64) *component.Spec {
	s := &component.Spec{Name: name, Version: "1.0.0", Entrypoint: "test/ping.New"}
	s.Provide("svc", "IDL:test/Ping:1.0")
	s.QoS = xmldesc.QoS{CPUMin: 0.1, BandwidthMin: bandwidth}
	return s
}

func testOpts(extra func(*corbalc.Options)) corbalc.Options {
	reg := component.NewRegistry()
	registerPing(reg)
	opts := corbalc.Options{
		Impls:          reg,
		UpdateInterval: 20 * time.Millisecond,
		// A generous failure timeout: these tests assert placement
		// logic, not failure detection, and the suite runs with many
		// test binaries contending for CPU.
		FailMultiple: 15,
		GroupSize:    8,
	}
	if extra != nil {
		extra(&opts)
	}
	return opts
}

func newCluster(t *testing.T, n int, extra func(*corbalc.Options)) *corbalc.Cluster {
	t.Helper()
	c, err := corbalc.NewCluster(n, "peer%d", simnet.Link{}, testOpts(extra))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func install(t *testing.T, p *corbalc.Peer, spec *component.Spec) component.ID {
	t.Helper()
	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	id, err := p.Node.InstallComponent(comp)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// waitOffers waits until the network can answer a query from peer p.
func waitOffers(t *testing.T, p *corbalc.Peer, key string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if offers, err := p.Agent.Query(context.Background(), key, "*"); err == nil && len(offers) > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no offers for %s", key)
}

func callPing(t *testing.T, p *corbalc.Peer, ref *orb.ObjectRef) string {
	t.Helper()
	var where string
	err := ref.Invoke("ping", nil, func(d *cdr.Decoder) error {
		var e error
		where, e = d.ReadString()
		return e
	})
	if err != nil {
		t.Fatal(err)
	}
	return where
}

func TestResolveRemoteUse(t *testing.T) {
	c := newCluster(t, 3, nil)
	install(t, c.Peers[2], pingSpec("logger", 0)) // low bandwidth: stay remote
	waitOffers(t, c.Peers[0], "IDL:test/Ping:1.0")

	ref, err := c.Peers[0].Engine.Resolve(context.Background(), xmldesc.Port{
		Kind: xmldesc.PortUses, Name: "log", RepoID: "IDL:test/Ping:1.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	where := callPing(t, c.Peers[0], c.Peers[0].Node.ORB().NewRef(ref))
	if where != "peer2" {
		t.Fatalf("executed on %s, want peer2 (remote use)", where)
	}
	// The component must NOT have been fetched locally.
	if c.Peers[0].Node.Repo().Len() != 0 {
		t.Fatal("low-bandwidth component was fetched")
	}
}

func TestResolveFetchesBandwidthHungryComponent(t *testing.T) {
	c := newCluster(t, 3, nil)
	install(t, c.Peers[2], pingSpec("decoder", 20)) // above the 5 Mbps default threshold
	waitOffers(t, c.Peers[0], "IDL:test/Ping:1.0")

	ref, err := c.Peers[0].Engine.Resolve(context.Background(), xmldesc.Port{
		Kind: xmldesc.PortUses, Name: "video", RepoID: "IDL:test/Ping:1.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The MPEG-decoder decision: the component was fetched and now runs
	// locally.
	where := callPing(t, c.Peers[0], c.Peers[0].Node.ORB().NewRef(ref))
	if where != "peer0" {
		t.Fatalf("executed on %s, want peer0 (fetched locally)", where)
	}
	if _, ok := c.Peers[0].Node.Repo().Get(component.ID{Name: "decoder", Version: mustV("1.0.0")}); !ok {
		t.Fatal("decoder not installed locally after fetch")
	}
}

func TestFetchDisabledByPolicy(t *testing.T) {
	c := newCluster(t, 2, func(o *corbalc.Options) {
		o.Deploy = &deploy.Policy{FetchEnabled: false, LoadWeight: 1}
	})
	install(t, c.Peers[1], pingSpec("decoder", 20))
	waitOffers(t, c.Peers[0], "IDL:test/Ping:1.0")
	ref, err := c.Peers[0].Engine.Resolve(context.Background(), xmldesc.Port{
		Kind: xmldesc.PortUses, Name: "video", RepoID: "IDL:test/Ping:1.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if where := callPing(t, c.Peers[0], c.Peers[0].Node.ORB().NewRef(ref)); where != "peer1" {
		t.Fatalf("executed on %s, want peer1", where)
	}
	if c.Peers[0].Node.Repo().Len() != 0 {
		t.Fatal("fetched despite disabled policy")
	}
}

func TestPDAUsesComponentsRemotely(t *testing.T) {
	reg := component.NewRegistry()
	registerPing(reg)
	net := simnet.New(simnet.Link{})
	server := corbalc.NewPeer("server", corbalc.Options{Impls: reg, UpdateInterval: 20 * time.Millisecond})
	pda := corbalc.NewPeer("pda", corbalc.Options{
		Impls: reg, UpdateInterval: 20 * time.Millisecond, Profile: node.PDAProfile(),
	})
	if err := net.Attach("server", server.Node.ORB()); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach("pda", pda.Node.ORB()); err != nil {
		t.Fatal(err)
	}
	server.Bootstrap()
	if err := pda.Join(server.Contact()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close(); pda.Close() })

	install(t, server, pingSpec("decoder", 50)) // very bandwidth hungry
	waitOffers(t, pda, "IDL:test/Ping:1.0")

	ref, err := pda.Engine.Resolve(context.Background(), xmldesc.Port{
		Kind: xmldesc.PortUses, Name: "video", RepoID: "IDL:test/Ping:1.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	// A PDA never fetches, however hungry the component: it uses it
	// remotely (paper §3.1).
	if where := callPing(t, pda, pda.Node.ORB().NewRef(ref)); where != "server" {
		t.Fatalf("executed on %s, want server", where)
	}
	if pda.Node.Repo().Len() != 0 {
		t.Fatal("PDA fetched a component")
	}
}

func TestPlacePrefersLeastLoadedNode(t *testing.T) {
	c := newCluster(t, 3, nil)
	spec := pingSpec("worker", 0)
	install(t, c.Peers[1], spec)
	install(t, c.Peers[2], spec)
	// Skew peer1 heavily.
	c.Peers[1].Node.Resources().SetBackgroundLoad(3.5)
	waitOffers(t, c.Peers[0], node.ComponentKey("worker"))
	// Give the MRM a moment to see the skewed load.
	time.Sleep(100 * time.Millisecond)

	pl, err := c.Peers[0].Engine.Place(context.Background(), "worker", "*", "w1")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Node != "peer2" {
		t.Fatalf("placed on %s, want peer2 (least loaded)", pl.Node)
	}
	// The instance is reachable through its reflective reference.
	ref, err := c.Peers[0].Engine.ProvidePort(context.Background(), pl, "svc")
	if err != nil {
		t.Fatal(err)
	}
	if where := callPing(t, c.Peers[0], c.Peers[0].Node.ORB().NewRef(ref)); where != "peer2" {
		t.Fatalf("instance runs on %s", where)
	}
}

func TestPlaceNoOffer(t *testing.T) {
	c := newCluster(t, 2, nil)
	_, err := c.Peers[0].Engine.Place(context.Background(), "ghost", "*", "g")
	if !errors.Is(err, deploy.ErrNoOffer) {
		t.Fatalf("err = %v", err)
	}
	_, err = c.Peers[0].Engine.Resolve(context.Background(), xmldesc.Port{
		Kind: xmldesc.PortUses, Name: "x", RepoID: "IDL:test/Missing:1.0",
	})
	if !errors.Is(err, deploy.ErrNoOffer) {
		t.Fatalf("resolve err = %v", err)
	}
}

func TestBalancerMigratesFromOverloadedNode(t *testing.T) {
	reg := component.NewRegistry()
	registerPing(reg)
	mk := func(name string) *node.Node {
		return node.New(node.Config{Name: name, Impls: reg, Profile: node.WorkstationProfile()})
	}
	a, b := mk("heavy"), mk("light")
	t.Cleanup(func() { a.Close(); b.Close() })
	spec := pingSpec("worker", 0)
	spec.QoS = xmldesc.QoS{CPUMin: 0.6}
	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := a.Instantiate(context.Background(), comp.ID(), fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// a: 2.4/4 = 0.6 load; b: 0. Mean 0.3, threshold 0.25 -> migrate.
	bal := &deploy.Balancer{Threshold: 0.25, MaxPerStep: 2}
	moves, err := bal.Step([]*node.Node{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("no migrations")
	}
	for _, m := range moves {
		if m.From != "heavy" || m.To != "light" {
			t.Fatalf("unexpected move %+v", m)
		}
	}
	// The moved instances actually run on b.
	if got := len(b.Instances()[comp.ID()]); got != len(moves) {
		t.Fatalf("instances on light = %d, want %d", got, len(moves))
	}
	// Balanced enough now: another step with high threshold does nothing.
	bal2 := &deploy.Balancer{Threshold: 0.5}
	moves2, err := bal2.Step([]*node.Node{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves2) != 0 {
		t.Fatalf("unexpected moves %+v", moves2)
	}
}

func mustV(s string) version.V { return version.MustParse(s) }

func TestAlwaysFetchPolicy(t *testing.T) {
	c := newCluster(t, 2, func(o *corbalc.Options) {
		// Threshold zero: fetch any movable component regardless of its
		// bandwidth demand.
		o.Deploy = &deploy.Policy{FetchEnabled: true, FetchBandwidthMbps: 0, LoadWeight: 1}
	})
	install(t, c.Peers[1], pingSpec("logger", 0)) // zero bandwidth demand
	waitOffers(t, c.Peers[0], "IDL:test/Ping:1.0")
	ref, err := c.Peers[0].Engine.Resolve(context.Background(), xmldesc.Port{
		Kind: xmldesc.PortUses, Name: "log", RepoID: "IDL:test/Ping:1.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if where := callPing(t, c.Peers[0], c.Peers[0].Node.ORB().NewRef(ref)); where != "peer0" {
		t.Fatalf("executed on %s, want peer0 (always-fetch)", where)
	}
	if c.Peers[0].Node.Repo().Len() != 1 {
		t.Fatal("component not fetched under always-fetch policy")
	}
}

func TestFetchFallsBackToRemoteWhenImmovable(t *testing.T) {
	c := newCluster(t, 2, func(o *corbalc.Options) {
		o.Deploy = &deploy.Policy{FetchEnabled: true, FetchBandwidthMbps: 0, LoadWeight: 1}
	})
	spec := pingSpec("anchored", 50)
	spec.Mobility = "fixed"
	install(t, c.Peers[1], spec)
	waitOffers(t, c.Peers[0], "IDL:test/Ping:1.0")
	ref, err := c.Peers[0].Engine.Resolve(context.Background(), xmldesc.Port{
		Kind: xmldesc.PortUses, Name: "a", RepoID: "IDL:test/Ping:1.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fixed components cannot be fetched: remote use is the only option.
	if where := callPing(t, c.Peers[0], c.Peers[0].Node.ORB().NewRef(ref)); where != "peer1" {
		t.Fatalf("executed on %s, want peer1", where)
	}
	if c.Peers[0].Node.Repo().Len() != 0 {
		t.Fatal("immovable component was fetched")
	}
}

// Package deploy implements CORBA-LC's run-time deployment engine
// (paper §2.4.3–§2.4.4): resolving component dependencies against the
// whole network, scoring the candidate offers by locality, load and
// mobility, deciding between using a component remotely and fetching it
// for local installation, placing assembly instances on nodes at run
// time (the paper's alternative to CCM's fixed deployment), and load
// balancing through instance migration.
package deploy

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/ior"
	"corbalc/internal/node"
	"corbalc/internal/xmldesc"
)

// Querier finds offers for a port interface ID (or "component:<name>"
// key) network-wide; cohesion.Agent implements it.
type Querier interface {
	Query(ctx context.Context, portRepoID, versionReq string) ([]*node.Offer, error)
}

// Errors returned by the engine.
var (
	ErrNoOffer = errors.New("deploy: no offer satisfies the request")
)

// Policy tunes placement decisions.
type Policy struct {
	// FetchEnabled allows fetching movable components for local
	// installation when profitable.
	FetchEnabled bool
	// FetchBandwidthMbps is the bandwidth-demand threshold above which
	// a movable component is worth fetching locally (the paper's MPEG
	// decoder case: "a component decoding a MPEG video stream would
	// work much faster if it is installed locally"). Zero fetches any
	// movable component when the local node has room.
	FetchBandwidthMbps float64
	// LoadWeight scales how strongly node load penalises an offer.
	LoadWeight float64
	// LocalBonus is the score bonus for offers already on this node.
	LocalBonus float64
}

// DefaultPolicy returns the standard placement policy.
func DefaultPolicy() Policy {
	return Policy{
		FetchEnabled:       true,
		FetchBandwidthMbps: 5,
		LoadWeight:         1,
		LocalBonus:         0.5,
	}
}

// Engine resolves and places components for one node.
type Engine struct {
	n      *node.Node
	q      Querier
	policy Policy
}

// NewEngine builds an engine; it can be installed as the node's
// dependency resolver via node.SetResolver.
func NewEngine(n *node.Node, q Querier, policy Policy) *Engine {
	return &Engine{n: n, q: q, policy: policy}
}

// score ranks an offer: lower load and local placement win.
func (e *Engine) score(of *node.Offer) float64 {
	s := -e.policy.LoadWeight * of.NodeLoad
	if of.Node == e.n.Name() {
		s += e.policy.LocalBonus
	}
	return s
}

// rank sorts offers best-first.
func (e *Engine) rank(offers []*node.Offer) []*node.Offer {
	sorted := append([]*node.Offer(nil), offers...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return e.score(sorted[i]) > e.score(sorted[j])
	})
	return sorted
}

// Resolve implements node.DependencyResolver: it finds the best provider
// for a required uses port anywhere in the network, optionally fetching
// the component for local use first.
func (e *Engine) Resolve(ctx context.Context, p xmldesc.Port) (*ior.IOR, error) {
	// Local fast path: the node's own repository.
	if offers, err := e.n.LocalQuery(p.RepoID, p.Version); err == nil && len(offers) > 0 {
		id, err := component.ParseID(offers[0].ComponentID)
		if err == nil {
			if ref, err := e.n.ObtainPort(ctx, id, p.RepoID); err == nil {
				return ref, nil
			}
		}
	}
	offers, err := e.q.Query(ctx, p.RepoID, p.Version)
	if err != nil {
		return nil, err
	}
	if len(offers) == 0 {
		return nil, fmt.Errorf("%w: %s (%s)", ErrNoOffer, p.RepoID, p.Version)
	}
	var lastErr error
	for _, of := range e.rank(offers) {
		ref, err := e.useOffer(ctx, of, p.RepoID)
		if err == nil {
			return ref, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("deploy: all %d offers failed, last: %w", len(offers), lastErr)
}

// useOffer turns one offer into a provided-port reference, deciding
// between local fetch and remote use.
func (e *Engine) useOffer(ctx context.Context, of *node.Offer, portRepoID string) (*ior.IOR, error) {
	id, err := component.ParseID(of.ComponentID)
	if err != nil {
		return nil, err
	}
	if of.Node == e.n.Name() {
		return e.n.ObtainPort(ctx, id, portRepoID)
	}
	if e.shouldFetch(of) {
		if ref, err := e.fetchAndObtain(ctx, of, id, portRepoID); err == nil {
			return ref, nil
		}
		// Fetching failed (capability, space, ...): fall back to
		// remote use.
	}
	return e.remoteObtain(ctx, of, portRepoID)
}

// shouldFetch applies the fetch-vs-remote decision.
func (e *Engine) shouldFetch(of *node.Offer) bool {
	if !e.policy.FetchEnabled || !of.Movable || e.n.Resources().Profile().Fixed {
		return false
	}
	if !e.n.Resources().CanHost(xmldesc.QoS{CPUMin: of.CPUMin, MemoryMinMB: int(of.MemoryMinMB)}) {
		return false
	}
	// Fetch only bandwidth-hungry components unless the threshold is
	// zero (always-fetch): the paper's MPEG case, where moving the
	// binary once beats streaming data over the link forever.
	if e.policy.FetchBandwidthMbps > 0 && of.BandwidthMin < e.policy.FetchBandwidthMbps {
		return false
	}
	return true
}

// fetchAndObtain pulls the component package from the offering node,
// installs it locally and obtains the port from the local copy.
func (e *Engine) fetchAndObtain(ctx context.Context, of *node.Offer, id component.ID, portRepoID string) (*ior.IOR, error) {
	if _, ok := e.n.Repo().Get(id); !ok {
		reg := e.n.ORB().NewRef(of.Registry)
		var pkg []byte
		err := reg.InvokeContext(ctx, "get_package",
			func(enc *cdr.Encoder) { enc.WriteString(of.ComponentID) },
			func(d *cdr.Decoder) error {
				var err error
				pkg, err = d.ReadOctetSeq()
				return err
			})
		if err != nil {
			return nil, fmt.Errorf("deploy: fetching %s from %s: %w", of.ComponentID, of.Node, err)
		}
		if _, err := e.n.Install(pkg); err != nil {
			return nil, err
		}
	}
	return e.n.ObtainPort(ctx, id, portRepoID)
}

// remoteObtain asks the offering node for a port on a (possibly shared)
// instance.
func (e *Engine) remoteObtain(ctx context.Context, of *node.Offer, portRepoID string) (*ior.IOR, error) {
	acc := e.n.ORB().NewRef(of.Acceptor)
	var ref *ior.IOR
	err := acc.InvokeContext(ctx, "obtain",
		func(enc *cdr.Encoder) {
			enc.WriteString(of.ComponentID)
			enc.WriteString(portRepoID)
		},
		func(d *cdr.Decoder) error {
			var err error
			ref, err = ior.Unmarshal(d)
			return err
		})
	if err != nil {
		return nil, fmt.Errorf("deploy: obtaining %s from %s: %w", portRepoID, of.Node, err)
	}
	return ref, nil
}

// Place chooses the best node for a fresh instance of a component (by
// name) and instantiates it there, returning where it landed and the
// instance's reflective reference. This is the run-time half of the
// paper's §2.4.4: "the exact node in which every instance is going to be
// run is decided when the application requests it".
type Placement struct {
	InstanceName string
	ComponentID  string
	Node         string
	Equivalent   *ior.IOR
	Acceptor     *ior.IOR
	Registry     *ior.IOR
	Events       *ior.IOR
}

// Place instantiates component `name` (satisfying verReq) on the
// least-loaded offering node under the given instance name.
func (e *Engine) Place(ctx context.Context, name, verReq, instanceName string) (*Placement, error) {
	offers, err := e.q.Query(ctx, node.ComponentKey(name), verReq)
	if err != nil {
		return nil, err
	}
	if len(offers) == 0 {
		return nil, fmt.Errorf("%w: component %s (%s)", ErrNoOffer, name, verReq)
	}
	var lastErr error
	for _, of := range e.rank(offers) {
		pl, err := e.instantiateAt(ctx, of, instanceName)
		if err == nil {
			return pl, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("deploy: placing %s failed on every node, last: %w", name, lastErr)
}

func (e *Engine) instantiateAt(ctx context.Context, of *node.Offer, instanceName string) (*Placement, error) {
	acc := e.n.ORB().NewRef(of.Acceptor)
	var equiv *ior.IOR
	err := acc.InvokeContext(ctx, "instantiate",
		func(enc *cdr.Encoder) {
			enc.WriteString(of.ComponentID)
			enc.WriteString(instanceName)
		},
		func(d *cdr.Decoder) error {
			var err error
			equiv, err = ior.Unmarshal(d)
			return err
		})
	if err != nil {
		return nil, err
	}
	return &Placement{
		InstanceName: instanceName,
		ComponentID:  of.ComponentID,
		Node:         of.Node,
		Equivalent:   equiv,
		Acceptor:     of.Acceptor,
		Registry:     of.Registry,
	}, nil
}

// ProvidePort asks a placement's node for one of the instance's provided
// ports.
func (e *Engine) ProvidePort(ctx context.Context, pl *Placement, port string) (*ior.IOR, error) {
	equiv := e.n.ORB().NewRef(pl.Equivalent)
	var ref *ior.IOR
	err := equiv.InvokeContext(ctx, "provide_port",
		func(enc *cdr.Encoder) { enc.WriteString(port) },
		func(d *cdr.Decoder) error {
			var err error
			ref, err = ior.Unmarshal(d)
			return err
		})
	if err != nil {
		return nil, err
	}
	return ref, nil
}

// Connect wires a placement's uses port to a provider reference through
// the instance's reflective interface.
func (e *Engine) Connect(ctx context.Context, pl *Placement, port string, target *ior.IOR) error {
	equiv := e.n.ORB().NewRef(pl.Equivalent)
	return equiv.InvokeContext(ctx, "connect",
		func(enc *cdr.Encoder) {
			enc.WriteString(port)
			target.Marshal(enc)
		}, nil)
}

package deploy

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"corbalc/internal/cdr"
	"corbalc/internal/cohesion"
	"corbalc/internal/orb"
)

// NetBalancer is the fully distributed load balancer: it runs wherever
// the acting MRM runs and manipulates member nodes purely through their
// CORBA services (registry, acceptor), the way the paper assigns the
// role to the Distributed Registry ("network resource monitoring and
// component instance migration ... to achieve load balancing", §2.4.3;
// "this determination can be taken by the container in collaboration
// with the network", §2.2). Contrast with Balancer, the in-process
// management-plane variant used by the experiment harness.
type NetBalancer struct {
	// ORB performs the calls (typically the MRM node's ORB).
	ORB *orb.ORB
	// Threshold is the load gap over the mean that marks a source
	// (default 0.25).
	Threshold float64
}

// ErrNothingToMove reports that no migration was possible (balanced, or
// no movable instances fit anywhere).
var ErrNothingToMove = errors.New("deploy: no migration possible")

// Step examines the MRM's member view and performs at most one
// migration over CORBA, returning what moved.
func (nb *NetBalancer) Step(ctx context.Context, view []cohesion.MemberView) (*Migration, error) {
	threshold := nb.Threshold
	if threshold <= 0 {
		threshold = 0.25
	}
	if len(view) < 2 {
		return nil, ErrNothingToMove
	}
	mean := 0.0
	for _, m := range view {
		mean += m.Report.LoadFraction()
	}
	mean /= float64(len(view))

	sources := append([]cohesion.MemberView(nil), view...)
	sort.Slice(sources, func(i, j int) bool {
		return sources[i].Report.LoadFraction() > sources[j].Report.LoadFraction()
	})
	targets := append([]cohesion.MemberView(nil), view...)
	sort.Slice(targets, func(i, j int) bool {
		return targets[i].Report.LoadFraction() < targets[j].Report.LoadFraction()
	})

	for _, src := range sources {
		if src.Report.LoadFraction() <= mean+threshold {
			break
		}
		mig, err := nb.migrateFrom(ctx, src, targets, mean)
		if err == nil {
			return mig, nil
		}
	}
	return nil, ErrNothingToMove
}

// movableComponents indexes the source's offers by component ID,
// keeping only movable ones.
func movableComponents(src cohesion.MemberView) map[string]bool {
	out := make(map[string]bool)
	for _, of := range src.Offers {
		if of.Movable {
			out[of.ComponentID] = true
		}
	}
	return out
}

func (nb *NetBalancer) migrateFrom(ctx context.Context, src cohesion.MemberView, targets []cohesion.MemberView, mean float64) (*Migration, error) {
	movable := movableComponents(src)
	if len(movable) == 0 {
		return nil, ErrNothingToMove
	}
	// Enumerate the source's running instances through its registry.
	type pair struct{ comp, inst string }
	var pairs []pair
	reg := nb.ORB.NewRef(src.Desc.Registry)
	err := reg.InvokeContext(ctx, "list_instances", nil, func(d *cdr.Decoder) error {
		n, err := d.ReadULong()
		if err != nil {
			return err
		}
		for i := uint32(0); i < n; i++ {
			comp, err := d.ReadString()
			if err != nil {
				return err
			}
			inst, err := d.ReadString()
			if err != nil {
				return err
			}
			pairs = append(pairs, pair{comp, inst})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, p := range pairs {
		if !movable[p.comp] {
			continue
		}
		for _, tgt := range targets {
			if tgt.Desc.Name == src.Desc.Name || tgt.Report.LoadFraction() >= mean {
				continue
			}
			if err := nb.moveOver(ctx, src, tgt, p.comp, p.inst); err != nil {
				continue
			}
			return &Migration{
				Instance:    p.inst,
				ComponentID: p.comp,
				From:        src.Desc.Name,
				To:          tgt.Desc.Name,
			}, nil
		}
	}
	return nil, ErrNothingToMove
}

// moveOver performs one migration entirely over CORBA:
// ensure-installed(target) -> yield(source) -> receive(target), with a
// best-effort local restore if the hand-off fails.
func (nb *NetBalancer) moveOver(ctx context.Context, src, tgt cohesion.MemberView, compID, instance string) error {
	// 1. Make sure the target has the component installed.
	if !nb.hasComponent(tgt, compID) {
		var pkg []byte
		err := nb.ORB.NewRef(src.Desc.Registry).InvokeContext(ctx, "get_package",
			func(e *cdr.Encoder) { e.WriteString(compID) },
			func(d *cdr.Decoder) error { var e error; pkg, e = d.ReadOctetSeq(); return e })
		if err != nil {
			return err
		}
		err = nb.ORB.NewRef(tgt.Desc.Acceptor).InvokeContext(ctx, "install",
			func(e *cdr.Encoder) { e.WriteOctetSeq(pkg) },
			func(d *cdr.Decoder) error { _, e := d.ReadString(); return e })
		if err != nil {
			return err
		}
	}

	// 2. Yield the instance from the source.
	var capsule []byte
	err := nb.ORB.NewRef(src.Desc.Acceptor).InvokeContext(ctx, "yield_instance",
		func(e *cdr.Encoder) { e.WriteString(compID); e.WriteString(instance) },
		func(d *cdr.Decoder) error { var e error; capsule, e = d.ReadOctetSeq(); return e })
	if err != nil {
		return err
	}

	// 3. Hand it to the target; on failure put it back where it was.
	receive := func(desc cohesion.MemberView) error {
		return nb.ORB.NewRef(desc.Desc.Acceptor).InvokeContext(ctx, "receive_capsule",
			func(e *cdr.Encoder) {
				e.WriteString(compID)
				e.WriteOctetSeq(capsule)
			},
			func(d *cdr.Decoder) error { _, e := d.ReadOctets(d.Remaining()); return e })
	}
	if err := receive(tgt); err != nil {
		if rerr := receive(src); rerr != nil {
			return fmt.Errorf("deploy: instance %s lost in migration: %v (restore: %v)", instance, err, rerr)
		}
		return err
	}
	return nil
}

func (nb *NetBalancer) hasComponent(m cohesion.MemberView, compID string) bool {
	for _, of := range m.Offers {
		if of.ComponentID == compID {
			return true
		}
	}
	return false
}

package deploy_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/deploy"
	"corbalc/internal/xmldesc"
)

// statefulSpec builds a replicable component whose instance counts calls
// (reusing pingInstance, whose CaptureState serialises the counter).
func statefulSpec(replication string) *component.Spec {
	s := &component.Spec{Name: "statefulsvc", Version: "1.0.0", Entrypoint: "test/ping.New"}
	s.Provide("svc", "IDL:test/Ping:1.0")
	s.QoS = xmldesc.QoS{CPUMin: 0.05}
	s.Replication = replication
	return s
}

func TestReplicateCoordinatedCarriesState(t *testing.T) {
	c := newCluster(t, 3, nil)
	comp, err := statefulSpec("coordinated").Build()
	if err != nil {
		t.Fatal(err)
	}
	primaryNode := c.Peers[1].Node
	if _, err := primaryNode.InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	mi, err := primaryNode.Instantiate(context.Background(), comp.ID(), "p1")
	if err != nil {
		t.Fatal(err)
	}
	// Put observable state into the primary: 5 calls.
	ref, err := mi.PortIOR("svc")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := primaryNode.ORB().NewRef(ref).Invoke("ping", nil, func(d *cdr.Decoder) error {
			_, e := d.ReadString()
			return e
		}); err != nil {
			t.Fatal(err)
		}
	}

	replica, err := deploy.Replicate(primaryNode, comp.ID(), "p1", c.Peers[2].Node)
	if err != nil {
		t.Fatal(err)
	}
	// The replica starts from the snapshot: its call counter is 5.
	if got := replica.Impl().(*pingInstance).calls.Load(); got != 5 {
		t.Fatalf("replica state = %d, want 5", got)
	}
	// The primary kept serving through the snapshot quiesce.
	if err := primaryNode.ORB().NewRef(ref).Invoke("ping", nil, func(d *cdr.Decoder) error {
		_, e := d.ReadString()
		return e
	}); err != nil {
		t.Fatalf("primary after snapshot: %v", err)
	}
}

func TestReplicaMasksPrimaryFailure(t *testing.T) {
	c := newCluster(t, 3, nil)
	comp, err := statefulSpec("coordinated").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Peers[1].Node.InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Peers[1].Node.Instantiate(context.Background(), comp.ID(), "p1"); err != nil {
		t.Fatal(err)
	}
	if _, err := deploy.Replicate(c.Peers[1].Node, comp.ID(), "p1", c.Peers[2].Node); err != nil {
		t.Fatal(err)
	}

	// Both nodes now offer the service.
	deadline := time.Now().Add(5 * time.Second)
	for {
		offers, err := c.Peers[0].Agent.QueryAll(context.Background(), "IDL:test/Ping:1.0", "*")
		if err == nil && len(offers) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never advertised (offers=%v, err=%v)", offers, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Crash the primary; a client resolving afresh lands on the replica.
	c.Peers[1].Agent.Stop()
	c.Net.SetDown("peer1", true)
	deadline = time.Now().Add(10 * time.Second)
	for {
		ref, err := c.Peers[0].Engine.Resolve(context.Background(), xmldesc.Port{
			Kind: xmldesc.PortUses, Name: "s", RepoID: "IDL:test/Ping:1.0",
		})
		if err == nil {
			where := callPing(t, c.Peers[0], c.Peers[0].Node.ORB().NewRef(ref))
			if where == "peer2" {
				return // failover complete
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover to replica never happened: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestReplicateStatelessAndErrors(t *testing.T) {
	c := newCluster(t, 2, nil)
	// Stateless replication: fresh instance, no state copied.
	comp, err := statefulSpec("stateless").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Peers[0].Node.InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	mi, err := c.Peers[0].Node.Instantiate(context.Background(), comp.ID(), "s1")
	if err != nil {
		t.Fatal(err)
	}
	mi.Impl().(*pingInstance).calls.Store(9)
	replica, err := deploy.Replicate(c.Peers[0].Node, comp.ID(), "s1", c.Peers[1].Node)
	if err != nil {
		t.Fatal(err)
	}
	if got := replica.Impl().(*pingInstance).calls.Load(); got != 0 {
		t.Fatalf("stateless replica inherited state: %d", got)
	}

	// A non-replicable component is refused.
	plain, err := statefulSpec("").Build()
	if err != nil {
		t.Fatal(err)
	}
	// Same name would collide in the repo; rebuild under another name.
	spec := statefulSpec("none")
	spec.Name = "fixedsvc"
	plain, err = spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Peers[0].Node.InstallComponent(plain); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Peers[0].Node.Instantiate(context.Background(), plain.ID(), "f1"); err != nil {
		t.Fatal(err)
	}
	if _, err := deploy.Replicate(c.Peers[0].Node, plain.ID(), "f1", c.Peers[1].Node); !errors.Is(err, deploy.ErrNotReplicable) {
		t.Fatalf("err = %v", err)
	}
	// Unknown instance.
	if _, err := deploy.Replicate(c.Peers[0].Node, comp.ID(), "ghost", c.Peers[1].Node); err == nil {
		t.Fatal("replicating a ghost instance succeeded")
	}
}

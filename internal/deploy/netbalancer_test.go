package deploy_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/deploy"
	"corbalc/internal/xmldesc"
)

func TestNetBalancerMigratesOverCORBA(t *testing.T) {
	c := newCluster(t, 3, nil) // one group: peer0 is the MRM leader
	spec := pingSpec("worker", 0)
	spec.QoS = xmldesc.QoS{CPUMin: 0.8}
	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	// peer1 hosts all the load; peer2 is idle and does NOT have the
	// component installed (the balancer must fetch it over the wire).
	if _, err := c.Peers[1].Node.InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"w1", "w2", "w3"} {
		if _, err := c.Peers[1].Node.Instantiate(context.Background(), comp.ID(), name); err != nil {
			t.Fatal(err)
		}
	}
	// Give the instance state so we can verify it survives the move.
	ct1, err := c.Peers[1].Node.ContainerFor(comp.ID())
	if err != nil {
		t.Fatal(err)
	}
	mi, _ := ct1.Instance("w1")
	mi.Impl().(*pingInstance).calls.Store(7)

	// Wait for the MRM (peer0) to see the skewed loads.
	deadline := time.Now().Add(5 * time.Second)
	for {
		view := c.Peers[0].Agent.GroupView()
		loaded := 0
		for _, m := range view {
			if m.Report.Node == "peer1" && m.Report.LoadFraction() > 0.5 {
				loaded++
			}
		}
		if len(view) == 3 && loaded == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("MRM view never reflected the skew: %d members", len(view))
		}
		time.Sleep(20 * time.Millisecond)
	}

	nb := &deploy.NetBalancer{ORB: c.Peers[0].Node.ORB(), Threshold: 0.2}
	mig, err := nb.Step(context.Background(), c.Peers[0].Agent.GroupView())
	if err != nil {
		t.Fatal(err)
	}
	if mig.From != "peer1" || mig.To == "peer1" {
		t.Fatalf("migration = %+v", mig)
	}
	// The component was auto-installed on the target and the instance
	// really runs there with its state intact.
	target := c.Peers[2].Node
	if mig.To == "peer0" {
		target = c.Peers[0].Node
	}
	if _, ok := target.Repo().Get(comp.ID()); !ok {
		t.Fatal("component not installed on the migration target")
	}
	tct, err := target.ContainerFor(comp.ID())
	if err != nil {
		t.Fatal(err)
	}
	moved, ok := tct.Instance(mig.Instance)
	if !ok {
		t.Fatalf("instance %s not on %s", mig.Instance, mig.To)
	}
	if mig.Instance == "w1" {
		if got := moved.Impl().(*pingInstance).calls.Load(); got != 7 {
			t.Fatalf("state after CORBA migration = %d", got)
		}
	}
	// And it serves requests on the new node.
	ref, err := moved.PortIOR("svc")
	if err != nil {
		t.Fatal(err)
	}
	where := callPing(t, c.Peers[0], c.Peers[0].Node.ORB().NewRef(ref))
	if where != mig.To {
		t.Fatalf("migrated instance answers from %s, want %s", where, mig.To)
	}
	// The source shed one instance.
	if got := len(ct1.Instances()); got != 2 {
		t.Fatalf("source still has %d instances", got)
	}
}

func TestNetBalancerBalancedViewDoesNothing(t *testing.T) {
	c := newCluster(t, 2, nil)
	waitView := func() {
		deadline := time.Now().Add(5 * time.Second)
		for len(c.Peers[0].Agent.GroupView()) < 2 {
			if time.Now().After(deadline) {
				t.Fatal("view never populated")
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitView()
	nb := &deploy.NetBalancer{ORB: c.Peers[0].Node.ORB()}
	if _, err := nb.Step(context.Background(), c.Peers[0].Agent.GroupView()); !errors.Is(err, deploy.ErrNothingToMove) {
		t.Fatalf("err = %v", err)
	}
	if _, err := nb.Step(context.Background(), nil); !errors.Is(err, deploy.ErrNothingToMove) {
		t.Fatalf("empty view err = %v", err)
	}
}

func TestYieldInstanceOp(t *testing.T) {
	c := newCluster(t, 2, nil)
	comp, err := pingSpec("worker", 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Peers[0].Node.InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Peers[0].Node.Instantiate(context.Background(), comp.ID(), "y1"); err != nil {
		t.Fatal(err)
	}
	acc := c.Peers[1].Node.ORB().NewRef(c.Peers[0].Node.AcceptorIOR())
	var capsule []byte
	err = acc.Invoke("yield_instance",
		func(e *cdr.Encoder) { e.WriteString(comp.ID().String()); e.WriteString("y1") },
		func(d *cdr.Decoder) error { var e error; capsule, e = d.ReadOctetSeq(); return e })
	if err != nil {
		t.Fatal(err)
	}
	if len(capsule) == 0 {
		t.Fatal("empty capsule")
	}
	// The instance is gone from the source.
	ct, err := c.Peers[0].Node.ContainerFor(component.ID{Name: "worker", Version: mustV("1.0.0")})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ct.Instance("y1"); ok {
		t.Fatal("instance still on source after yield")
	}
	// Yielding a ghost is a user exception, not a crash.
	err = acc.Invoke("yield_instance",
		func(e *cdr.Encoder) { e.WriteString(comp.ID().String()); e.WriteString("ghost") }, nil)
	if err == nil {
		t.Fatal("ghost yield succeeded")
	}
}

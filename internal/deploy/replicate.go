package deploy

import (
	"errors"
	"fmt"

	"corbalc/internal/component"
	"corbalc/internal/container"
	"corbalc/internal/node"
)

// Replication (paper §2.1.1: components declare whether their "instances
// can be replicated, either because they are stateless or they know how
// to interact with the framework to maintain replica consistency";
// §2.4.3 assigns "replication to achieve load balancing and fault
// tolerance" to the Distributed Registry).
//
// Replicate seeds a replica of a running instance on another node:
//
//   - "stateless" components get a fresh instance (nothing to copy);
//   - "coordinated" components get a state snapshot of the primary
//     (captured with a brief quiesce) — from then on, keeping replicas
//     convergent is the component's declared responsibility, which is
//     exactly the contract the paper states.
//
// After replication, both nodes export offers for the component's
// ports, so clients that lose the primary re-resolve onto the replica —
// E5-style fault tolerance at the component level.

// ErrNotReplicable reports a component whose descriptor forbids
// replication.
var ErrNotReplicable = errors.New("deploy: component is not replicable")

// Replicate copies one running instance from src to dst, returning the
// replica's managed instance. The replica keeps the primary's instance
// name (names are per-node).
func Replicate(src *node.Node, id component.ID, instance string, dst *node.Node) (*container.ManagedInstance, error) {
	comp, ok := src.Repo().Get(id)
	if !ok {
		return nil, fmt.Errorf("deploy: %s not installed on %s", id, src.Name())
	}
	mode := comp.SoftPkg().Replication
	if mode == "" || mode == "none" {
		return nil, fmt.Errorf("%w: %s declares replication %q", ErrNotReplicable, id, mode)
	}
	srcCt, err := src.ContainerFor(id)
	if err != nil {
		return nil, err
	}
	mi, ok := srcCt.Instance(instance)
	if !ok {
		return nil, fmt.Errorf("%w: %s", container.ErrNoInstance, instance)
	}

	if _, ok := dst.Repo().Get(id); !ok {
		if _, err := dst.Install(comp.Package().Bytes()); err != nil {
			return nil, fmt.Errorf("deploy: installing %s on %s: %w", id, dst.Name(), err)
		}
	}
	dstCt, err := dst.ContainerFor(id)
	if err != nil {
		return nil, err
	}

	var capsule *container.Capsule
	if mode == "stateless" {
		capsule = &container.Capsule{ComponentID: id.String(), InstanceName: instance}
	} else {
		capsule, err = mi.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("deploy: snapshotting %s: %w", instance, err)
		}
	}
	replica, err := dstCt.Restore(capsule)
	if err != nil {
		return nil, err
	}
	return replica, nil
}

// Package svcctx maps between Go context.Context values and the GIOP
// service contexts CORBA-LC piggybacks on request headers: SvcDeadline
// (the absolute call deadline, microseconds since the Unix epoch) and
// SvcCallID (an end-to-end correlation ID minted once per logical call
// and propagated to the server, where interceptors on both sides can
// observe it).
//
// Only request headers carry these contexts. Replies stay service-
// context-free on purpose: the ORB's reply-splice fast path relies on
// reply bodies always starting at stream offset 24 (see
// orb.handleRequest), and nothing in the deadline/cancellation protocol
// needs reply-side metadata.
package svcctx

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/giop"
)

// callIDKey is the context key under which the call's correlation ID
// travels.
type callIDKey struct{}

// WithCallID returns a context carrying the given correlation ID.
func WithCallID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, callIDKey{}, id)
}

// CallID returns the correlation ID carried by ctx, or "" when none is.
func CallID(ctx context.Context) string {
	id, _ := ctx.Value(callIDKey{}).(string)
	return id
}

// callIDBase is a once-per-process random prefix; per-call IDs append a
// counter to it. The split keeps IDs globally unique (the prefix) while
// taking the crypto/rand syscall off the invocation hot path (the
// counter) — minting an ID is one atomic add and one small allocation.
var callIDBase = func() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Crypto randomness is not load-bearing here — the ID only
		// correlates log lines — so degrade to a constant marker.
		return "norand"
	}
	return hex.EncodeToString(b[:])
}()

var callIDSeq atomic.Uint64

// NewCallID mints a fresh correlation ID: a per-process random prefix
// plus a process-local sequence number. Built in a stack buffer so the
// mint costs exactly one allocation (the returned string).
func NewCallID() string {
	var buf [32]byte
	b := append(buf[:0], callIDBase...)
	b = append(b, '-')
	b = strconv.AppendUint(b, callIDSeq.Add(1), 16)
	return string(b)
}

// AppendNewCallID appends a freshly-minted correlation ID to b and
// returns the extended buffer: NewCallID for a caller that keeps the ID
// in a reusable byte buffer (the invocation fast path, where even the
// one-string mint would be the only allocation left on the client side).
func AppendNewCallID(b []byte) []byte {
	b = append(b, callIDBase...)
	b = append(b, '-')
	return strconv.AppendUint(b, callIDSeq.Add(1), 16)
}

// EnsureCallID returns ctx guaranteed to carry a correlation ID, minting
// one if absent, along with the ID.
func EnsureCallID(ctx context.Context) (context.Context, string) {
	if id := CallID(ctx); id != "" {
		return ctx, id
	}
	id := NewCallID()
	return WithCallID(ctx, id), id
}

// maxCallIDLen bounds accepted correlation IDs so a hostile peer cannot
// make us retain arbitrarily large strings per request.
const maxCallIDLen = 128

// encodeDeadline renders an absolute deadline as a CDR encapsulation
// (byte-order octet + long long microseconds since the Unix epoch).
func encodeDeadline(t time.Time) []byte {
	e := cdr.NewEncoderAt(cdr.LittleEndian, 1)
	e.WriteLongLong(t.UnixMicro())
	return append([]byte{byte(cdr.LittleEndian)}, e.Bytes()...)
}

// decodeDeadline parses a deadline encapsulation.
func decodeDeadline(data []byte) (time.Time, error) {
	if len(data) < 1 {
		return time.Time{}, fmt.Errorf("svcctx: empty deadline context")
	}
	d := cdr.NewDecoderAt(data[1:], cdr.ByteOrder(data[0]&1), 1)
	us, err := d.ReadLongLong()
	if err != nil {
		return time.Time{}, fmt.Errorf("svcctx: bad deadline context: %w", err)
	}
	return time.UnixMicro(us), nil
}

// Inject appends the service contexts describing ctx (deadline, call ID)
// to scs and returns the extended list. A context with neither yields scs
// unchanged.
func Inject(ctx context.Context, scs []giop.ServiceContext) []giop.ServiceContext {
	return InjectID(ctx, CallID(ctx), scs)
}

// InjectID is Inject with the call ID supplied by the caller instead of
// read from ctx. The invocation fast path uses it when no interceptor is
// registered: the minted ID then travels only on the wire, and the
// context.WithValue wrapping (two allocations nothing would observe) is
// skipped.
func InjectID(ctx context.Context, id string, scs []giop.ServiceContext) []giop.ServiceContext {
	var b []byte
	if id != "" {
		b = []byte(id)
	}
	return InjectIDBytes(ctx, b, scs)
}

// InjectIDBytes is InjectID for a caller holding the ID in a reusable
// byte buffer. The buffer is ALIASED by the returned list, not copied:
// it must stay valid until the header carrying the contexts has been
// encoded.
func InjectIDBytes(ctx context.Context, id []byte, scs []giop.ServiceContext) []giop.ServiceContext {
	if dl, ok := ctx.Deadline(); ok {
		scs = append(scs, giop.ServiceContext{ID: giop.SvcDeadline, Data: encodeDeadline(dl)})
	}
	if len(id) > 0 {
		scs = append(scs, giop.ServiceContext{ID: giop.SvcCallID, Data: id})
	}
	return scs
}

// Info is the call metadata extracted from a request's service contexts.
type Info struct {
	Deadline    time.Time // zero when the request carries none
	HasDeadline bool
	CallID      string // "" when the request carries none
}

// Extract pulls the deadline and call ID out of a service context list.
// Malformed entries are ignored — a bad vendor context must not fail the
// request.
func Extract(scs []giop.ServiceContext) Info {
	return ExtractBytes(scs).Materialise()
}

// InfoBytes is Info with the call ID still in wire form: CallID ALIASES
// the service-context buffer, so it is valid only while the request
// message is. The dispatch fast path reads it without the string copy
// Extract pays; anything that outlives the request goes through
// Materialise.
type InfoBytes struct {
	Deadline    time.Time
	HasDeadline bool
	CallID      []byte
}

// Materialise converts to an Info, detaching the call ID from the
// request buffer.
func (ib InfoBytes) Materialise() Info {
	info := Info{Deadline: ib.Deadline, HasDeadline: ib.HasDeadline}
	if len(ib.CallID) > 0 {
		info.CallID = string(ib.CallID)
	}
	return info
}

// ExtractBytes is Extract without the call-ID copy; see InfoBytes for
// the aliasing contract.
func ExtractBytes(scs []giop.ServiceContext) InfoBytes {
	var info InfoBytes
	for _, sc := range scs {
		switch sc.ID {
		case giop.SvcDeadline:
			if dl, err := decodeDeadline(sc.Data); err == nil {
				info.Deadline, info.HasDeadline = dl, true
			}
		case giop.SvcCallID:
			if n := len(sc.Data); n > 0 && n <= maxCallIDLen {
				info.CallID = sc.Data
			}
		}
	}
	return info
}

// NewContext derives the per-request server-side context from parent and
// the request's service contexts: the call ID is attached and the
// deadline (if any) applied. The returned cancel func must be called when
// request handling completes (it may be a no-op: without a deadline
// there is nothing to arm — request cancellation is the transport's job,
// via the parent context — so the deadline-free fast path skips the
// context.WithCancel allocations entirely).
func NewContext(parent context.Context, scs []giop.ServiceContext) (context.Context, context.CancelFunc) {
	return NewContextInfo(parent, Extract(scs))
}

// NewContextInfo is NewContext for a caller that has already run Extract
// (the ORB dispatch loop needs the Info itself and must not pay for a
// second pass over the service contexts). The deadline is applied
// directly to parent, with the call ID layered outside: transports hand
// in custom cancellable contexts (e.g. iiop's pooled request context,
// which exposes AfterFunc for exactly this), and context.WithDeadline
// only links to such a parent without spawning a propagation goroutine
// when no value wrapper sits in between.
func NewContextInfo(parent context.Context, info Info) (context.Context, context.CancelFunc) {
	cancel := context.CancelFunc(noopCancel)
	ctx := parent
	if info.HasDeadline {
		ctx, cancel = context.WithDeadline(ctx, info.Deadline)
	}
	if info.CallID != "" {
		ctx = WithCallID(ctx, info.CallID)
	}
	return ctx, cancel
}

func noopCancel() {}

// CallCtx is a reusable context deriving a parent with a call ID held in
// wire (byte) form: the dispatch loop's alternative to WithCallID when no
// deadline and no interceptor forces a full context derivation. Bind
// copies the ID into an internal buffer whose capacity survives reuse, so
// a pooled CallCtx adds zero steady-state allocations per request; the
// string a CallID lookup returns is copied out on each read instead.
//
// A CallCtx is request-scoped in the strictest sense: the dispatch loop
// rebinds it for the next request as soon as the current one returns, so
// servants must not retain it (the same rule every pooled request context
// has).
type CallCtx struct {
	context.Context
	id []byte
}

// Bind points c at parent carrying the given call ID.
func (c *CallCtx) Bind(parent context.Context, id []byte) {
	c.Context = parent
	c.id = append(c.id[:0], id...)
}

// Value implements context.Context, answering call-ID lookups from the
// bound bytes and delegating everything else.
func (c *CallCtx) Value(key any) any {
	if _, ok := key.(callIDKey); ok {
		if len(c.id) == 0 {
			return c.Context.Value(key)
		}
		return string(c.id)
	}
	return c.Context.Value(key)
}

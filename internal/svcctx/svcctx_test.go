package svcctx

import (
	"context"
	"testing"
	"time"

	"corbalc/internal/giop"
)

func TestInjectExtractRoundTrip(t *testing.T) {
	dl := time.Now().Add(1500 * time.Millisecond).Truncate(time.Microsecond)
	ctx, cancel := context.WithDeadline(context.Background(), dl)
	defer cancel()
	ctx = WithCallID(ctx, "abc123")

	scs := Inject(ctx, []giop.ServiceContext{{ID: giop.SvcNodeIdentity, Data: []byte("n1")}})
	if len(scs) != 3 {
		t.Fatalf("got %d service contexts, want 3", len(scs))
	}

	info := Extract(scs)
	if !info.HasDeadline {
		t.Fatal("deadline not extracted")
	}
	if !info.Deadline.Equal(dl) {
		t.Errorf("deadline %v, want %v", info.Deadline, dl)
	}
	if info.CallID != "abc123" {
		t.Errorf("call id %q, want %q", info.CallID, "abc123")
	}
}

func TestInjectEmptyContext(t *testing.T) {
	if scs := Inject(context.Background(), nil); len(scs) != 0 {
		t.Fatalf("background context injected %d contexts, want 0", len(scs))
	}
}

func TestExtractIgnoresMalformed(t *testing.T) {
	info := Extract([]giop.ServiceContext{
		{ID: giop.SvcDeadline, Data: []byte{0}}, // truncated
		{ID: giop.SvcCallID, Data: nil},         // empty
	})
	if info.HasDeadline || info.CallID != "" {
		t.Fatalf("malformed contexts extracted: %+v", info)
	}
}

func TestNewContextAppliesDeadlineAndCallID(t *testing.T) {
	dl := time.Now().Add(time.Hour).Truncate(time.Microsecond)
	src, cancel := context.WithDeadline(context.Background(), dl)
	defer cancel()
	src = WithCallID(src, "xyz")

	ctx, cancel2 := NewContext(context.Background(), Inject(src, nil))
	defer cancel2()
	got, ok := ctx.Deadline()
	if !ok || !got.Equal(dl) {
		t.Errorf("derived deadline %v (ok=%v), want %v", got, ok, dl)
	}
	if CallID(ctx) != "xyz" {
		t.Errorf("derived call id %q, want %q", CallID(ctx), "xyz")
	}
}

func TestEnsureCallID(t *testing.T) {
	ctx, id := EnsureCallID(context.Background())
	if id == "" || CallID(ctx) != id {
		t.Fatalf("EnsureCallID minted %q, ctx carries %q", id, CallID(ctx))
	}
	ctx2, id2 := EnsureCallID(ctx)
	if id2 != id || ctx2 != ctx {
		t.Fatal("EnsureCallID re-minted on a context that already had an ID")
	}
}

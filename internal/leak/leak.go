// Package leak provides a goroutine-leak settle check for tests.
//
// Concurrency machinery added for throughput — connection pools,
// dispatch workers, write coalescers, reapers — earns its keep only if
// every goroutine it spawns is reclaimed on Close. Check pins that
// property per test: it records the goroutine count up front and, at
// cleanup time, polls until the count settles back, failing with a full
// stack dump when it does not.
//
// Call Check first in the test body so its cleanup runs last, after the
// cleanups that tear down servers and ORBs registered afterwards.
package leak

import (
	"runtime"
	"testing"
	"time"
)

// settleTimeout bounds how long Check waits for goroutines started by
// the test to wind down. Teardown is asynchronous in places (read loops
// observe a closed socket, reapers observe their stop channel), so the
// count settles shortly after, not at, the Close call.
const settleTimeout = 5 * time.Second

// Check records the current goroutine count and registers a cleanup
// failing the test if the count has not settled back to the baseline by
// the end of the test (after waiting up to settleTimeout). The test
// must not run in parallel with tests that spawn goroutines, and Check
// should be the first call in the test body.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(settleTimeout)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d at test end, %d at test start; stacks:\n%s", n, base, buf)
	})
}

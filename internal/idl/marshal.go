package idl

import (
	"fmt"
	"math"

	"corbalc/internal/cdr"
	"corbalc/internal/ior"
)

// Dynamic marshalling: encode and decode Go values according to an IDL
// type, the way the CORBA Dynamic Invocation Interface does. This lets
// CORBA-LC tools and containers call any component port knowing only its
// parsed IDL, with no generated stubs.
//
// The Go value mapping is:
//
//	boolean            bool
//	octet, char        byte
//	short              int16        unsigned short      uint16
//	long               int32        unsigned long       uint32
//	long long          int64        unsigned long long  uint64
//	float              float32      double              float64
//	string             string
//	enum               uint32 (ordinal), validated against the labels
//	sequence<octet>    []byte
//	sequence<T>        []any
//	struct/exception   map[string]any keyed by field name
//	Object             *ior.IOR
//
// For integer kinds, untyped Go int is also accepted and range-checked.

// Encode writes v to e according to t.
func Encode(e *cdr.Encoder, t *Type, v any) error {
	t = t.Resolve()
	switch t.Kind {
	case KindVoid:
		return nil
	case KindBoolean:
		b, ok := v.(bool)
		if !ok {
			return typeErr(t, v)
		}
		e.WriteBool(b)
	case KindOctet, KindChar:
		b, ok := v.(byte)
		if !ok {
			if i, iok := asInt(v); iok && i >= 0 && i <= 255 {
				b, ok = byte(i), true
			}
		}
		if !ok {
			return typeErr(t, v)
		}
		e.WriteOctet(b)
	case KindShort:
		i, ok := intIn(v, math.MinInt16, math.MaxInt16)
		if !ok {
			return typeErr(t, v)
		}
		e.WriteShort(int16(i))
	case KindUShort:
		i, ok := intIn(v, 0, math.MaxUint16)
		if !ok {
			return typeErr(t, v)
		}
		e.WriteUShort(uint16(i))
	case KindLong:
		i, ok := intIn(v, math.MinInt32, math.MaxInt32)
		if !ok {
			return typeErr(t, v)
		}
		e.WriteLong(int32(i))
	case KindULong:
		i, ok := intIn(v, 0, math.MaxUint32)
		if !ok {
			return typeErr(t, v)
		}
		e.WriteULong(uint32(i))
	case KindLongLong:
		i, ok := asInt(v)
		if !ok {
			return typeErr(t, v)
		}
		e.WriteLongLong(i)
	case KindULongLong:
		switch x := v.(type) {
		case uint64:
			e.WriteULongLong(x)
		default:
			i, ok := asInt(v)
			if !ok || i < 0 {
				return typeErr(t, v)
			}
			e.WriteULongLong(uint64(i))
		}
	case KindFloat:
		f, ok := v.(float32)
		if !ok {
			return typeErr(t, v)
		}
		e.WriteFloat(f)
	case KindDouble:
		f, ok := v.(float64)
		if !ok {
			return typeErr(t, v)
		}
		e.WriteDouble(f)
	case KindString:
		s, ok := v.(string)
		if !ok {
			return typeErr(t, v)
		}
		e.WriteString(s)
	case KindEnum:
		i, ok := intIn(v, 0, math.MaxUint32)
		if !ok {
			return typeErr(t, v)
		}
		if int(i) >= len(t.Labels) {
			return fmt.Errorf("idl: enum %s ordinal %d out of range (%d labels)", t.ScopedName(), i, len(t.Labels))
		}
		e.WriteULong(uint32(i))
	case KindSequence:
		if t.Elem.Resolve().Kind == KindOctet {
			b, ok := v.([]byte)
			if !ok {
				return typeErr(t, v)
			}
			if t.Bound > 0 && uint32(len(b)) > t.Bound {
				return boundErr(t, len(b))
			}
			e.WriteOctetSeq(b)
			return nil
		}
		xs, ok := v.([]any)
		if !ok {
			return typeErr(t, v)
		}
		if t.Bound > 0 && uint32(len(xs)) > t.Bound {
			return boundErr(t, len(xs))
		}
		e.WriteULong(uint32(len(xs)))
		for i, x := range xs {
			if err := Encode(e, t.Elem, x); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
	case KindStruct, KindException:
		m, ok := v.(map[string]any)
		if !ok {
			return typeErr(t, v)
		}
		for _, f := range t.Fields {
			fv, present := m[f.Name]
			if !present {
				return fmt.Errorf("idl: struct %s missing field %q", t.ScopedName(), f.Name)
			}
			if err := Encode(e, f.Type, fv); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
	case KindObject, KindInterface:
		ref, ok := v.(*ior.IOR)
		if !ok {
			if v == nil {
				ref = &ior.IOR{}
			} else {
				return typeErr(t, v)
			}
		}
		if ref == nil {
			ref = &ior.IOR{}
		}
		ref.Marshal(e)
	case KindAny:
		return fmt.Errorf("idl: any is not supported by the dynamic marshaller")
	default:
		return fmt.Errorf("idl: cannot encode kind %v", t.Kind)
	}
	return nil
}

// Decode reads a value of type t from d.
func Decode(d *cdr.Decoder, t *Type) (any, error) {
	t = t.Resolve()
	switch t.Kind {
	case KindVoid:
		return nil, nil
	case KindBoolean:
		return d.ReadBool()
	case KindOctet, KindChar:
		return d.ReadOctet()
	case KindShort:
		return d.ReadShort()
	case KindUShort:
		return d.ReadUShort()
	case KindLong:
		return d.ReadLong()
	case KindULong:
		return d.ReadULong()
	case KindLongLong:
		return d.ReadLongLong()
	case KindULongLong:
		return d.ReadULongLong()
	case KindFloat:
		return d.ReadFloat()
	case KindDouble:
		return d.ReadDouble()
	case KindString:
		return d.ReadString()
	case KindEnum:
		v, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		if int(v) >= len(t.Labels) {
			return nil, fmt.Errorf("idl: enum %s ordinal %d out of range", t.ScopedName(), v)
		}
		return v, nil
	case KindSequence:
		if t.Elem.Resolve().Kind == KindOctet {
			return d.ReadOctetSeq()
		}
		n, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		if t.Bound > 0 && n > t.Bound {
			return nil, boundErr(t, int(n))
		}
		if uint32(d.Remaining()) < n {
			return nil, cdr.ErrTooLong
		}
		xs := make([]any, n)
		for i := range xs {
			if xs[i], err = Decode(d, t.Elem); err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
		}
		return xs, nil
	case KindStruct, KindException:
		m := make(map[string]any, len(t.Fields))
		for _, f := range t.Fields {
			v, err := Decode(d, f.Type)
			if err != nil {
				return nil, fmt.Errorf("field %s: %w", f.Name, err)
			}
			m[f.Name] = v
		}
		return m, nil
	case KindObject, KindInterface:
		return ior.Unmarshal(d)
	case KindAny:
		return nil, fmt.Errorf("idl: any is not supported by the dynamic marshaller")
	default:
		return nil, fmt.Errorf("idl: cannot decode kind %v", t.Kind)
	}
}

func typeErr(t *Type, v any) error {
	return fmt.Errorf("idl: cannot encode %T as %s", v, t)
}

func boundErr(t *Type, n int) error {
	return fmt.Errorf("idl: sequence length %d exceeds bound %d of %s", n, t.Bound, t)
}

// asInt widens any Go signed/unsigned integer to int64.
func asInt(v any) (int64, bool) {
	switch x := v.(type) {
	case int:
		return int64(x), true
	case int8:
		return int64(x), true
	case int16:
		return int64(x), true
	case int32:
		return int64(x), true
	case int64:
		return x, true
	case uint8:
		return int64(x), true
	case uint16:
		return int64(x), true
	case uint32:
		return int64(x), true
	case uint64:
		if x > math.MaxInt64 {
			return 0, false
		}
		return int64(x), true
	}
	return 0, false
}

func intIn(v any, lo, hi int64) (int64, bool) {
	i, ok := asInt(v)
	if !ok || i < lo || i > hi {
		return 0, false
	}
	return i, true
}

// EnumOrdinal returns the ordinal of an enum label, for callers building
// dynamic values from symbolic names.
func (t *Type) EnumOrdinal(label string) (uint32, bool) {
	for i, l := range t.Labels {
		if l == label {
			return uint32(i), true
		}
	}
	return 0, false
}

// Package idl parses the subset of OMG IDL that CORBA-LC components use
// to describe their types, interfaces and ports: modules, typedefs,
// enums, structs, exceptions, constants, and interfaces with attributes
// and operations. The parsed declarations populate a Repository — a
// runtime interface repository usable for dynamic (DII-style) request
// marshalling, which is how CORBA-LC gets component genericity without a
// stub compiler.
package idl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokString
	tokPunct // ( ) { } < > [ ] ; , : :: =
)

// token is one lexical element with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
	// idem marks a token immediately preceded by a `// idempotent`
	// pragma comment; the parser reads it off the first token of an
	// operation declaration.
	idem bool
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords of the supported IDL subset. "unsigned" and "long" are
// combined by the parser.
var keywords = map[string]bool{
	"module": true, "interface": true, "struct": true, "enum": true,
	"typedef": true, "exception": true, "const": true, "attribute": true,
	"readonly": true, "oneway": true, "raises": true, "in": true,
	"out": true, "inout": true, "void": true, "boolean": true,
	"octet": true, "char": true, "short": true, "long": true,
	"unsigned": true, "float": true, "double": true, "string": true,
	"sequence": true, "any": true, "Object": true,
}

// lexError is a scanning failure with position information.
type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("idl: %d:%d: %s", e.line, e.col, e.msg)
}

// lexer turns IDL source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
	// pendingIdem records that a `// idempotent` pragma comment was
	// consumed since the last token; the next token carries it.
	pendingIdem bool
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(format string, args ...any) error {
	return &lexError{line: l.line, col: l.col, msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpaceAndComments consumes whitespace, // and /* */ comments, and
// preprocessor lines (#pragma, #include) which are tolerated and ignored.
func (l *lexer) skipSpaceAndComments() error {
	for {
		c, ok := l.peekByte()
		if !ok {
			return nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		case c == '/':
			if l.pos+1 >= len(l.src) {
				return nil
			}
			switch l.src[l.pos+1] {
			case '/':
				start := l.pos
				for {
					c, ok := l.peekByte()
					if !ok || c == '\n' {
						break
					}
					l.advance()
				}
				// `// idempotent` is a pragma, not prose: it flags the
				// next token (the start of an operation declaration).
				body := strings.TrimSpace(strings.TrimPrefix(l.src[start:l.pos], "//"))
				if body == "idempotent" {
					l.pendingIdem = true
				}
			case '*':
				l.advance()
				l.advance()
				closed := false
				for l.pos < len(l.src) {
					if l.src[l.pos] == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
						l.advance()
						l.advance()
						closed = true
						break
					}
					l.advance()
				}
				if !closed {
					return l.errorf("unterminated block comment")
				}
			default:
				return nil
			}
		default:
			return nil
		}
	}
}

// next scans the following token, attaching (and clearing) the pending
// pragma flag set by skipSpaceAndComments.
func (l *lexer) next() (token, error) {
	t, err := l.scan()
	if err == nil {
		t.idem = l.pendingIdem
		l.pendingIdem = false
	}
	return t, err
}

// scan scans the following token.
func (l *lexer) scan() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	startLine, startCol := l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, line: startLine, col: startCol}, nil
	}
	switch {
	case isIdentStart(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: startLine, col: startCol}, nil
	case c >= '0' && c <= '9' || c == '-':
		start := l.pos
		l.advance()
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' ||
			l.src[l.pos] == 'x' || l.src[l.pos] == 'X' ||
			l.src[l.pos] >= 'a' && l.src[l.pos] <= 'f' ||
			l.src[l.pos] >= 'A' && l.src[l.pos] <= 'F') {
			l.advance()
		}
		text := l.src[start:l.pos]
		if text == "-" {
			return token{}, l.errorf("stray '-'")
		}
		return token{kind: tokInt, text: text, line: startLine, col: startCol}, nil
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			c, ok := l.peekByte()
			if !ok {
				return token{}, l.errorf("unterminated string literal")
			}
			l.advance()
			if c == '"' {
				break
			}
			if c == '\\' {
				e, ok := l.peekByte()
				if !ok {
					return token{}, l.errorf("unterminated escape")
				}
				l.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"':
					sb.WriteByte(e)
				default:
					return token{}, l.errorf("unknown escape \\%c", e)
				}
				continue
			}
			sb.WriteByte(c)
		}
		return token{kind: tokString, text: sb.String(), line: startLine, col: startCol}, nil
	case c == ':':
		l.advance()
		if nc, ok := l.peekByte(); ok && nc == ':' {
			l.advance()
			return token{kind: tokPunct, text: "::", line: startLine, col: startCol}, nil
		}
		return token{kind: tokPunct, text: ":", line: startLine, col: startCol}, nil
	case strings.IndexByte("(){}<>[];,=", c) >= 0:
		l.advance()
		return token{kind: tokPunct, text: string(c), line: startLine, col: startCol}, nil
	default:
		return token{}, l.errorf("unexpected character %q", c)
	}
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

// lexAll scans the whole source (used by the parser, handy in tests).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

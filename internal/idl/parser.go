package idl

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Repository is a runtime interface repository: every constructed type
// and constant parsed from IDL, indexed by scoped name and repository ID.
type Repository struct {
	types  map[string]*Type  // scoped name -> type
	byID   map[string]*Type  // repository ID -> type
	consts map[string]*Const // scoped name -> const
	order  []string          // declaration order of scoped names
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{
		types:  make(map[string]*Type),
		byID:   make(map[string]*Type),
		consts: make(map[string]*Const),
	}
}

// LookupType finds a constructed type by its fully-qualified name.
func (r *Repository) LookupType(scoped string) (*Type, bool) {
	t, ok := r.types[scoped]
	return t, ok
}

// LookupByRepoID finds a constructed type by its "IDL:...:1.0" ID.
func (r *Repository) LookupByRepoID(id string) (*Type, bool) {
	t, ok := r.byID[id]
	return t, ok
}

// LookupConst finds a constant by its fully-qualified name.
func (r *Repository) LookupConst(scoped string) (*Const, bool) {
	c, ok := r.consts[scoped]
	return c, ok
}

// Types returns all constructed types in declaration order.
func (r *Repository) Types() []*Type {
	out := make([]*Type, 0, len(r.order))
	for _, n := range r.order {
		if t, ok := r.types[n]; ok {
			out = append(out, t)
		}
	}
	return out
}

// Interfaces returns all interface types in declaration order.
func (r *Repository) Interfaces() []*Type {
	var out []*Type
	for _, t := range r.Types() {
		if t.Kind == KindInterface {
			out = append(out, t)
		}
	}
	return out
}

// ParseString parses IDL source into the repository. Multiple calls
// accumulate (like compiling several files against one repository).
func (r *Repository) ParseString(name, src string) error {
	p := &parser{repo: r, lex: newLexer(src), file: name}
	if err := p.advance(); err != nil {
		return err
	}
	for p.tok.kind != tokEOF {
		if err := p.definition(); err != nil {
			return err
		}
	}
	return p.checkForwardsDefined()
}

// ParseFile reads and parses one IDL file.
func (r *Repository) ParseFile(path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return r.ParseString(path, string(src))
}

func (r *Repository) register(t *Type) error {
	name := t.ScopedName()
	if old, ok := r.types[name]; ok {
		// Filling in a forward-declared interface is allowed.
		if old.Kind == KindInterface && old.Iface == nil && t.Kind == KindInterface {
			*old = *t
			return nil
		}
		return fmt.Errorf("idl: %s redeclared", name)
	}
	r.types[name] = t
	r.byID[t.RepoID()] = t
	r.order = append(r.order, name)
	return nil
}

// parser is a recursive-descent parser over the lexer.
type parser struct {
	repo  *Repository
	lex   *lexer
	file  string
	tok   token
	scope []string // module nesting
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("idl: %s:%d:%d: %s", p.file, p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.tok.kind != kind || (text != "" && p.tok.text != text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, p.errorf("expected %s, found %s", want, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.tok.kind == kind && p.tok.text == text {
		if err := p.advance(); err != nil {
			return false
		}
		return true
	}
	return false
}

func (p *parser) scopeName() string { return strings.Join(p.scope, "::") }

// definition parses one top-level or module-level declaration.
func (p *parser) definition() error {
	if p.tok.kind != tokKeyword {
		return p.errorf("expected declaration, found %s", p.tok)
	}
	switch p.tok.text {
	case "module":
		return p.module()
	case "interface":
		return p.interfaceDecl()
	case "struct":
		_, err := p.structDecl(KindStruct)
		return err
	case "exception":
		_, err := p.structDecl(KindException)
		return err
	case "enum":
		return p.enumDecl()
	case "typedef":
		return p.typedefDecl()
	case "const":
		return p.constDecl()
	default:
		return p.errorf("unexpected keyword %q", p.tok.text)
	}
}

func (p *parser) module() error {
	if err := p.advance(); err != nil { // consume "module"
		return err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return err
	}
	p.scope = append(p.scope, name.text)
	for !(p.tok.kind == tokPunct && p.tok.text == "}") {
		if p.tok.kind == tokEOF {
			return p.errorf("unterminated module %s", name.text)
		}
		if err := p.definition(); err != nil {
			return err
		}
	}
	p.scope = p.scope[:len(p.scope)-1]
	if _, err := p.expect(tokPunct, "}"); err != nil {
		return err
	}
	_, err = p.expect(tokPunct, ";")
	return err
}

func (p *parser) interfaceDecl() error {
	if err := p.advance(); err != nil { // consume "interface"
		return err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	// Forward declaration.
	if p.accept(tokPunct, ";") {
		scoped := name.text
		if s := p.scopeName(); s != "" {
			scoped = s + "::" + name.text
		}
		if _, exists := p.repo.types[scoped]; !exists {
			t := &Type{Kind: KindInterface, Name: name.text, Scope: p.scopeName()}
			if err := p.repo.register(t); err != nil {
				return err
			}
		}
		return nil
	}
	t := &Type{Kind: KindInterface, Name: name.text, Scope: p.scopeName(), Iface: &Interface{}}
	if p.accept(tokPunct, ":") {
		for {
			base, err := p.scopedTypeRef()
			if err != nil {
				return err
			}
			if base.Resolve().Kind != KindInterface {
				return p.errorf("interface %s inherits non-interface %s", name.text, base.ScopedName())
			}
			t.Iface.Bases = append(t.Iface.Bases, base)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return err
	}
	// Declarations nested in an interface are scoped to it (IDL scoping
	// rules), so an exception declared here gets the repository ID
	// "IDL:Module/Interface/Name:1.0".
	p.scope = append(p.scope, name.text)
	for !(p.tok.kind == tokPunct && p.tok.text == "}") {
		if p.tok.kind == tokEOF {
			p.scope = p.scope[:len(p.scope)-1]
			return p.errorf("unterminated interface %s", name.text)
		}
		if err := p.export(t); err != nil {
			p.scope = p.scope[:len(p.scope)-1]
			return err
		}
	}
	p.scope = p.scope[:len(p.scope)-1]
	if _, err := p.expect(tokPunct, "}"); err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	return p.repo.register(t)
}

// export parses one interface member.
func (p *parser) export(iface *Type) error {
	switch {
	case p.tok.kind == tokKeyword && (p.tok.text == "readonly" || p.tok.text == "attribute"):
		return p.attribute(iface)
	case p.tok.kind == tokKeyword && p.tok.text == "struct":
		_, err := p.structDecl(KindStruct)
		return err
	case p.tok.kind == tokKeyword && p.tok.text == "exception":
		_, err := p.structDecl(KindException)
		return err
	case p.tok.kind == tokKeyword && p.tok.text == "enum":
		return p.enumDecl()
	case p.tok.kind == tokKeyword && p.tok.text == "typedef":
		return p.typedefDecl()
	case p.tok.kind == tokKeyword && p.tok.text == "const":
		return p.constDecl()
	default:
		return p.operation(iface)
	}
}

func (p *parser) attribute(iface *Type) error {
	readonly := p.accept(tokKeyword, "readonly")
	if _, err := p.expect(tokKeyword, "attribute"); err != nil {
		return err
	}
	typ, err := p.typeSpec()
	if err != nil {
		return err
	}
	for {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return err
		}
		iface.Iface.Attributes = append(iface.Iface.Attributes, Attribute{
			Name: name.text, Type: typ, ReadOnly: readonly,
		})
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	_, err = p.expect(tokPunct, ";")
	return err
}

func (p *parser) operation(iface *Type) error {
	// The `// idempotent` pragma rides on the declaration's first token
	// (the lexer pins it to the token following the comment).
	idempotent := p.tok.idem
	oneway := p.accept(tokKeyword, "oneway")
	var result *Type
	var err error
	if p.accept(tokKeyword, "void") {
		result = TVoid
	} else {
		result, err = p.typeSpec()
		if err != nil {
			return err
		}
	}
	if oneway && result != TVoid {
		return p.errorf("oneway operation must return void")
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if oneway && idempotent {
		return p.errorf("oneway operation cannot be idempotent (it has no reply to cache)")
	}
	op := Operation{Name: name.text, Oneway: oneway, Idempotent: idempotent, Result: result}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return err
	}
	for !(p.tok.kind == tokPunct && p.tok.text == ")") {
		var dir ParamDir
		switch {
		case p.accept(tokKeyword, "in"):
			dir = DirIn
		case p.accept(tokKeyword, "out"):
			dir = DirOut
		case p.accept(tokKeyword, "inout"):
			dir = DirInOut
		default:
			return p.errorf("expected parameter direction, found %s", p.tok)
		}
		if oneway && dir != DirIn {
			return p.errorf("oneway operation %s has non-in parameter", name.text)
		}
		ptype, err := p.typeSpec()
		if err != nil {
			return err
		}
		pname, err := p.expect(tokIdent, "")
		if err != nil {
			return err
		}
		op.Params = append(op.Params, Param{Dir: dir, Name: pname.text, Type: ptype})
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return err
	}
	if p.accept(tokKeyword, "raises") {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return err
		}
		for {
			ex, err := p.scopedTypeRef()
			if err != nil {
				return err
			}
			if ex.Resolve().Kind != KindException {
				return p.errorf("raises clause names non-exception %s", ex.ScopedName())
			}
			op.Raises = append(op.Raises, ex)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	iface.Iface.Operations = append(iface.Iface.Operations, op)
	return nil
}

func (p *parser) structDecl(kind Kind) (*Type, error) {
	if err := p.advance(); err != nil { // consume "struct"/"exception"
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	t := &Type{Kind: kind, Name: name.text, Scope: p.scopeName()}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	for !(p.tok.kind == tokPunct && p.tok.text == "}") {
		if p.tok.kind == tokEOF {
			return nil, p.errorf("unterminated %v %s", kind, name.text)
		}
		ftype, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		for {
			fname, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			t.Fields = append(t.Fields, Field{Name: fname.text, Type: ftype})
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, "}"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return t, p.repo.register(t)
}

func (p *parser) enumDecl() error {
	if err := p.advance(); err != nil { // consume "enum"
		return err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	t := &Type{Kind: KindEnum, Name: name.text, Scope: p.scopeName()}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return err
	}
	for {
		lab, err := p.expect(tokIdent, "")
		if err != nil {
			return err
		}
		t.Labels = append(t.Labels, lab.text)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, "}"); err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	return p.repo.register(t)
}

func (p *parser) typedefDecl() error {
	if err := p.advance(); err != nil { // consume "typedef"
		return err
	}
	base, err := p.typeSpec()
	if err != nil {
		return err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	t := &Type{Kind: KindAlias, Name: name.text, Scope: p.scopeName(), Elem: base}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	return p.repo.register(t)
}

func (p *parser) constDecl() error {
	if err := p.advance(); err != nil { // consume "const"
		return err
	}
	typ, err := p.typeSpec()
	if err != nil {
		return err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return err
	}
	c := &Const{Name: name.text, Scope: p.scopeName(), Type: typ}
	switch typ.Resolve().Kind {
	case KindShort, KindUShort, KindLong, KindULong, KindLongLong, KindULongLong, KindOctet:
		tk, err := p.expect(tokInt, "")
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(tk.text, 0, 64)
		if err != nil {
			return p.errorf("bad integer literal %q", tk.text)
		}
		c.Value = v
	case KindString:
		tk, err := p.expect(tokString, "")
		if err != nil {
			return err
		}
		c.Value = tk.text
	default:
		return p.errorf("unsupported const type %s", typ)
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	scoped := c.ScopedName()
	if _, dup := p.repo.consts[scoped]; dup {
		return p.errorf("const %s redeclared", scoped)
	}
	p.repo.consts[scoped] = c
	return nil
}

// typeSpec parses a type reference: a base type, a sequence, or a scoped
// name of a previously declared constructed type.
func (p *parser) typeSpec() (*Type, error) {
	if p.tok.kind == tokKeyword {
		switch p.tok.text {
		case "boolean":
			return TBoolean, p.advance()
		case "octet":
			return TOctet, p.advance()
		case "char":
			return TChar, p.advance()
		case "float":
			return TFloat, p.advance()
		case "double":
			return TDouble, p.advance()
		case "string":
			return TString, p.advance()
		case "any":
			return TAny, p.advance()
		case "Object":
			return TObject, p.advance()
		case "short":
			return TShort, p.advance()
		case "long":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.accept(tokKeyword, "long") {
				return TLongLong, nil
			}
			return TLong, nil
		case "unsigned":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.accept(tokKeyword, "short") {
				return TUShort, nil
			}
			if p.accept(tokKeyword, "long") {
				if p.accept(tokKeyword, "long") {
					return TULongLong, nil
				}
				return TULong, nil
			}
			return nil, p.errorf("expected short/long after unsigned")
		case "sequence":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "<"); err != nil {
				return nil, err
			}
			elem, err := p.typeSpec()
			if err != nil {
				return nil, err
			}
			seq := Sequence(elem)
			if p.accept(tokPunct, ",") {
				tk, err := p.expect(tokInt, "")
				if err != nil {
					return nil, err
				}
				b, err := strconv.ParseUint(tk.text, 0, 32)
				if err != nil {
					return nil, p.errorf("bad sequence bound %q", tk.text)
				}
				seq.Bound = uint32(b)
			}
			if _, err := p.expect(tokPunct, ">"); err != nil {
				return nil, err
			}
			return seq, nil
		}
		return nil, p.errorf("unexpected keyword %q in type", p.tok.text)
	}
	return p.scopedTypeRef()
}

// scopedTypeRef parses "A::B" / "::A::B" / "B" and resolves it against
// the current scope, searching enclosing scopes outward as IDL requires.
func (p *parser) scopedTypeRef() (*Type, error) {
	absolute := p.accept(tokPunct, "::")
	var parts []string
	for {
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		parts = append(parts, id.text)
		if !p.accept(tokPunct, "::") {
			break
		}
	}
	rel := strings.Join(parts, "::")
	if absolute {
		if t, ok := p.repo.types[rel]; ok {
			return t, nil
		}
		return nil, p.errorf("undefined type ::%s", rel)
	}
	// Search current scope outward.
	for i := len(p.scope); i >= 0; i-- {
		prefix := strings.Join(p.scope[:i], "::")
		full := rel
		if prefix != "" {
			full = prefix + "::" + rel
		}
		if t, ok := p.repo.types[full]; ok {
			return t, nil
		}
	}
	return nil, p.errorf("undefined type %s", rel)
}

// checkForwardsDefined verifies every forward-declared interface was
// eventually defined.
func (p *parser) checkForwardsDefined() error {
	for name, t := range p.repo.types {
		if t.Kind == KindInterface && t.Iface == nil {
			return fmt.Errorf("idl: %s: interface %s forward-declared but never defined", p.file, name)
		}
	}
	return nil
}

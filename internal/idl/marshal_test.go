package idl

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"corbalc/internal/cdr"
	"corbalc/internal/ior"
)

func roundTrip(t *testing.T, typ *Type, v any) any {
	t.Helper()
	e := cdr.NewEncoder(cdr.LittleEndian)
	if err := Encode(e, typ, v); err != nil {
		t.Fatalf("encode %v as %s: %v", v, typ, err)
	}
	got, err := Decode(cdr.NewDecoder(e.Bytes(), cdr.LittleEndian), typ)
	if err != nil {
		t.Fatalf("decode %s: %v", typ, err)
	}
	return got
}

func TestPrimitiveDynamicRoundTrip(t *testing.T) {
	cases := []struct {
		typ *Type
		v   any
	}{
		{TBoolean, true},
		{TOctet, byte(200)},
		{TChar, byte('x')},
		{TShort, int16(-5)},
		{TUShort, uint16(70)},
		{TLong, int32(-100000)},
		{TULong, uint32(4000000000)},
		{TLongLong, int64(-1 << 60)},
		{TULongLong, uint64(1) << 63},
		{TFloat, float32(1.25)},
		{TDouble, 2.5},
		{TString, "dynamic"},
	}
	for _, tc := range cases {
		got := roundTrip(t, tc.typ, tc.v)
		if !reflect.DeepEqual(got, tc.v) {
			t.Errorf("%s: got %v (%T), want %v (%T)", tc.typ, got, got, tc.v, tc.v)
		}
	}
}

func TestIntWideningAndRangeChecks(t *testing.T) {
	e := cdr.NewEncoder(cdr.BigEndian)
	if err := Encode(e, TLong, 42); err != nil { // untyped int accepted
		t.Fatal(err)
	}
	if err := Encode(e, TShort, 1<<20); err == nil {
		t.Error("out-of-range short accepted")
	}
	if err := Encode(e, TULong, -1); err == nil {
		t.Error("negative ulong accepted")
	}
	if err := Encode(e, TOctet, 256); err == nil {
		t.Error("overflowing octet accepted")
	}
	if err := Encode(e, TULongLong, -5); err == nil {
		t.Error("negative ulonglong accepted")
	}
}

func TestStructEnumSequenceRoundTrip(t *testing.T) {
	r := parseSample(t)
	pd, _ := r.LookupType("corbalc::PortDesc")
	val := map[string]any{
		"name":    "graphics",
		"kind":    uint32(1), // USES
		"repo_id": "IDL:corbalc/Display:1.0",
	}
	got := roundTrip(t, pd, val).(map[string]any)
	if got["name"] != "graphics" || got["kind"] != uint32(1) {
		t.Fatalf("struct = %v", got)
	}

	seq := Sequence(pd)
	vals := []any{val, map[string]any{"name": "p2", "kind": uint32(0), "repo_id": "x"}}
	gotSeq := roundTrip(t, seq, vals).([]any)
	if len(gotSeq) != 2 || gotSeq[1].(map[string]any)["name"] != "p2" {
		t.Fatalf("seq = %v", gotSeq)
	}

	blob, _ := r.LookupType("corbalc::Blob")
	b := roundTrip(t, blob, []byte{1, 2, 3}).([]byte)
	if len(b) != 3 || b[2] != 3 {
		t.Fatalf("blob = %v", b)
	}
}

func TestStructMissingFieldRejected(t *testing.T) {
	r := parseSample(t)
	pd, _ := r.LookupType("corbalc::PortDesc")
	e := cdr.NewEncoder(cdr.BigEndian)
	err := Encode(e, pd, map[string]any{"name": "x"})
	if err == nil || !strings.Contains(err.Error(), "missing field") {
		t.Fatalf("err = %v", err)
	}
}

func TestEnumRangeValidation(t *testing.T) {
	r := parseSample(t)
	pk, _ := r.LookupType("corbalc::PortKind")
	e := cdr.NewEncoder(cdr.BigEndian)
	if err := Encode(e, pk, uint32(9)); err == nil {
		t.Error("out-of-range enum encode accepted")
	}
	e = cdr.NewEncoder(cdr.BigEndian)
	e.WriteULong(77)
	if _, err := Decode(cdr.NewDecoder(e.Bytes(), cdr.BigEndian), pk); err == nil {
		t.Error("out-of-range enum decode accepted")
	}
}

func TestBoundedSequenceEnforced(t *testing.T) {
	seq := Sequence(TLong)
	seq.Bound = 2
	e := cdr.NewEncoder(cdr.BigEndian)
	if err := Encode(e, seq, []any{int32(1), int32(2), int32(3)}); err == nil {
		t.Error("over-bound sequence encode accepted")
	}
	// Decode side.
	e = cdr.NewEncoder(cdr.BigEndian)
	e.WriteULong(3)
	e.WriteLong(1)
	e.WriteLong(2)
	e.WriteLong(3)
	if _, err := Decode(cdr.NewDecoder(e.Bytes(), cdr.BigEndian), seq); err == nil {
		t.Error("over-bound sequence decode accepted")
	}
}

func TestObjectReferenceRoundTrip(t *testing.T) {
	ref := ior.New("IDL:corbalc/Display:1.0", "host", 99, []byte("disp"))
	got := roundTrip(t, TObject, ref).(*ior.IOR)
	if got.TypeID != ref.TypeID {
		t.Fatalf("ref = %+v", got)
	}
	// nil reference
	gotNil := roundTrip(t, TObject, nil).(*ior.IOR)
	if !gotNil.IsNil() {
		t.Fatalf("nil ref = %+v", gotNil)
	}
}

func TestHostileSequenceLength(t *testing.T) {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteULong(1 << 30)
	if _, err := Decode(cdr.NewDecoder(e.Bytes(), cdr.BigEndian), Sequence(TLong)); err == nil {
		t.Error("hostile sequence length accepted")
	}
}

// Property: a randomly generated struct value round-trips through the
// dynamic marshaller.
func TestQuickStructRoundTrip(t *testing.T) {
	st := &Type{Kind: KindStruct, Name: "Q", Fields: []Field{
		{Name: "b", Type: TBoolean},
		{Name: "n", Type: TLong},
		{Name: "u", Type: TULongLong},
		{Name: "d", Type: TDouble},
		{Name: "s", Type: TString},
		{Name: "xs", Type: Sequence(TShort)},
	}}
	f := func(b bool, n int32, u uint64, d float64, s string, xs []int16) bool {
		if strings.ContainsRune(s, 0) {
			return true
		}
		anyXs := make([]any, len(xs))
		for i, x := range xs {
			anyXs[i] = x
		}
		v := map[string]any{"b": b, "n": n, "u": u, "d": d, "s": s, "xs": anyXs}
		e := cdr.NewEncoder(cdr.LittleEndian)
		if err := Encode(e, st, v); err != nil {
			return false
		}
		got, err := Decode(cdr.NewDecoder(e.Bytes(), cdr.LittleEndian), st)
		if err != nil {
			return false
		}
		m := got.(map[string]any)
		if m["b"] != b || m["n"] != n || m["u"] != u || m["s"] != s {
			return false
		}
		gd := m["d"].(float64)
		if gd != d && !(math.IsNaN(gd) && math.IsNaN(d)) {
			return false
		}
		gxs := m["xs"].([]any)
		if len(gxs) != len(xs) {
			return false
		}
		for i := range xs {
			if gxs[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

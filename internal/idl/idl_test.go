package idl

import (
	"strings"
	"testing"
)

const sampleIDL = `
// CORBA-LC core service interfaces (subset for tests).
#pragma prefix "corbalc"

module corbalc {
  typedef sequence<string> StringSeq;
  typedef sequence<octet> Blob;
  typedef StringSeq Names; // alias of alias

  const long MAX_GROUP = 16;
  const string VERSION = "1.0";

  enum PortKind { PROVIDES, USES, EMITS, CONSUMES };

  struct PortDesc {
    string name;
    PortKind kind;
    string repo_id;
  };

  exception NotFound { string what; };

  interface Display;  // forward declaration

  interface GUIPart {
    readonly attribute string region;
    attribute long z_order;
    void draw(in Display target) raises (NotFound);
  };

  interface Display {
    void paint(in Blob pixels, in long x, in long y);
    long width();
    oneway void invalidate();
  };

  module gui {
    interface Whiteboard : ::corbalc::GUIPart {
      void add_stroke(in sequence<double> points);
    };
  };
};
`

func parseSample(t *testing.T) *Repository {
	t.Helper()
	r := NewRepository()
	if err := r.ParseString("sample.idl", sampleIDL); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll(`module a { const string s = "x\n\"y"; }; // c
/* block
comment */ interface B;`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	want := []string{"module", "a", "{", "const", "string", "s", "=", "x\n\"y", ";", "}", ";", "interface", "B", ";"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Fatalf("tokens = %v", texts)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		`"unterminated`,
		`/* unterminated`,
		`"bad \q escape"`,
		`@`,
	} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) accepted", src)
		}
	}
}

func TestParseSample(t *testing.T) {
	r := parseSample(t)

	seq, ok := r.LookupType("corbalc::StringSeq")
	if !ok || seq.Kind != KindAlias || seq.Resolve().Kind != KindSequence {
		t.Fatalf("StringSeq = %+v", seq)
	}
	names, _ := r.LookupType("corbalc::Names")
	if names.Resolve().Kind != KindSequence || names.Resolve().Elem != TString {
		t.Fatalf("alias-of-alias Names resolves to %v", names.Resolve())
	}

	pk, ok := r.LookupType("corbalc::PortKind")
	if !ok || pk.Kind != KindEnum || len(pk.Labels) != 4 || pk.Labels[2] != "EMITS" {
		t.Fatalf("PortKind = %+v", pk)
	}
	if ord, ok := pk.EnumOrdinal("CONSUMES"); !ok || ord != 3 {
		t.Fatalf("CONSUMES ordinal = %d, %v", ord, ok)
	}

	pd, ok := r.LookupType("corbalc::PortDesc")
	if !ok || pd.Kind != KindStruct || len(pd.Fields) != 3 {
		t.Fatalf("PortDesc = %+v", pd)
	}
	if pd.Fields[1].Type != pk {
		t.Fatalf("PortDesc.kind type = %v", pd.Fields[1].Type)
	}
	if pd.RepoID() != "IDL:corbalc/PortDesc:1.0" {
		t.Fatalf("repo id = %q", pd.RepoID())
	}
	if byID, ok := r.LookupByRepoID("IDL:corbalc/PortDesc:1.0"); !ok || byID != pd {
		t.Fatal("lookup by repo id failed")
	}

	c, ok := r.LookupConst("corbalc::MAX_GROUP")
	if !ok || c.Value.(int64) != 16 {
		t.Fatalf("MAX_GROUP = %+v", c)
	}
	v, ok := r.LookupConst("corbalc::VERSION")
	if !ok || v.Value.(string) != "1.0" {
		t.Fatalf("VERSION = %+v", v)
	}
}

func TestForwardDeclarationResolved(t *testing.T) {
	r := parseSample(t)
	gp, ok := r.LookupType("corbalc::GUIPart")
	if !ok {
		t.Fatal("GUIPart missing")
	}
	op, ok := gp.LookupOperation("draw")
	if !ok {
		t.Fatal("draw missing")
	}
	// The parameter references the forward-declared Display, which must
	// now be the *defined* interface.
	dp := op.Params[0].Type
	if dp.Kind != KindInterface || dp.Iface == nil {
		t.Fatalf("Display param = %+v", dp)
	}
	if _, ok := dp.LookupOperation("paint"); !ok {
		t.Fatal("Display.paint missing through forward-declared reference")
	}
}

func TestInterfaceInheritance(t *testing.T) {
	r := parseSample(t)
	wb, ok := r.LookupType("corbalc::gui::Whiteboard")
	if !ok {
		t.Fatal("Whiteboard missing")
	}
	ops := wb.AllOperations()
	var names []string
	for _, op := range ops {
		names = append(names, op.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"_get_region", "_get_z_order", "_set_z_order", "draw", "add_stroke"} {
		if !strings.Contains(joined, want) {
			t.Errorf("operations %v missing %s", names, want)
		}
	}
	// readonly attribute must not have a setter.
	if strings.Contains(joined, "_set_region") {
		t.Error("readonly attribute grew a setter")
	}
	if !wb.IsA("IDL:corbalc/GUIPart:1.0") {
		t.Error("Whiteboard is-a GUIPart failed")
	}
	if wb.IsA("IDL:corbalc/Display:1.0") {
		t.Error("Whiteboard is-a Display should be false")
	}
}

func TestOnewayValidation(t *testing.T) {
	r := parseSample(t)
	disp, _ := r.LookupType("corbalc::Display")
	op, ok := disp.LookupOperation("invalidate")
	if !ok || !op.Oneway {
		t.Fatalf("invalidate = %+v", op)
	}
}

func TestParserErrors(t *testing.T) {
	cases := map[string]string{
		"undefined type":    `interface I { void f(in Missing m); };`,
		"oneway non-void":   `interface I { oneway long f(); };`,
		"oneway out param":  `interface I { oneway void f(out string s); };`,
		"raises non-except": `struct S { long x; }; interface I { void f() raises (S); };`,
		"inherit non-iface": `struct S { long x; }; interface I : S { };`,
		"redeclared":        `struct S { long x; }; struct S { long y; };`,
		"redeclared const":  `const long C = 1; const long C = 2;`,
		"forward undefined": `interface Never;`,
		"unterminated mod":  `module m { struct S { long x; };`,
		"bad const type":    `struct S { long x; }; const S c = 1;`,
		"unsigned nonsense": `interface I { void f(in unsigned string s); };`,
		"missing semicolon": `struct S { long x; }`,
		"garbage":           `%%%`,
	}
	for name, src := range cases {
		r := NewRepository()
		if err := r.ParseString(name, src); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestScopeResolutionSearchesOutward(t *testing.T) {
	src := `
module outer {
  struct T { long v; };
  module inner {
    struct T { string v; };
    struct UsesInner { T t; };          // resolves to inner::T
    struct UsesOuter { ::outer::T t; }; // absolute reference
  };
};`
	r := NewRepository()
	if err := r.ParseString("scope.idl", src); err != nil {
		t.Fatal(err)
	}
	ui, _ := r.LookupType("outer::inner::UsesInner")
	if ui.Fields[0].Type.ScopedName() != "outer::inner::T" {
		t.Fatalf("inner resolution = %s", ui.Fields[0].Type.ScopedName())
	}
	uo, _ := r.LookupType("outer::inner::UsesOuter")
	if uo.Fields[0].Type.ScopedName() != "outer::T" {
		t.Fatalf("absolute resolution = %s", uo.Fields[0].Type.ScopedName())
	}
}

func TestInterfaceScopedDeclarations(t *testing.T) {
	src := `
module m {
  interface Svc {
    exception Boom { string why; };
    enum Mode { FAST, SAFE };
    void go(in Mode m) raises (Boom);
  };
  interface Other {
    void poke() raises (Svc::Boom);  // cross-interface scoped reference
  };
};`
	r := NewRepository()
	if err := r.ParseString("scoped.idl", src); err != nil {
		t.Fatal(err)
	}
	boom, ok := r.LookupType("m::Svc::Boom")
	if !ok {
		t.Fatal("interface-scoped exception not registered under the interface")
	}
	if boom.RepoID() != "IDL:m/Svc/Boom:1.0" {
		t.Fatalf("repo id = %q", boom.RepoID())
	}
	other, _ := r.LookupType("m::Other")
	op, ok := other.LookupOperation("poke")
	if !ok || len(op.Raises) != 1 || op.Raises[0] != boom {
		t.Fatalf("cross-interface raises resolution: %+v", op)
	}
}

func TestBoundedSequence(t *testing.T) {
	r := NewRepository()
	if err := r.ParseString("b.idl", `typedef sequence<long, 4> FourLongs;`); err != nil {
		t.Fatal(err)
	}
	tt, _ := r.LookupType("FourLongs")
	if tt.Resolve().Bound != 4 {
		t.Fatalf("bound = %d", tt.Resolve().Bound)
	}
}

func TestMultiFileAccumulation(t *testing.T) {
	r := NewRepository()
	if err := r.ParseString("a.idl", `module m { struct A { long x; }; };`); err != nil {
		t.Fatal(err)
	}
	if err := r.ParseString("b.idl", `module m { struct B { ::m::A a; }; };`); err != nil {
		t.Fatal(err)
	}
	b, ok := r.LookupType("m::B")
	if !ok || b.Fields[0].Type.ScopedName() != "m::A" {
		t.Fatalf("cross-file reference failed: %+v", b)
	}
}

func TestTypesDeclarationOrder(t *testing.T) {
	r := parseSample(t)
	types := r.Types()
	if len(types) < 8 {
		t.Fatalf("types = %d", len(types))
	}
	if types[0].ScopedName() != "corbalc::StringSeq" {
		t.Fatalf("first type = %s", types[0].ScopedName())
	}
	ifaces := r.Interfaces()
	if len(ifaces) != 3 {
		t.Fatalf("interfaces = %d", len(ifaces))
	}
}

func TestIdempotentPragma(t *testing.T) {
	r := NewRepository()
	src := `
module cache {
  interface Store {
    readonly attribute long size;
    attribute string label;

    // idempotent
    string lookup(in string key);

    // a prose comment does not mark anything
    void put(in string key, in string value);

    // idempotent
    long count_matching(in string prefix);
  };
};
`
	if err := r.ParseString("cache.idl", src); err != nil {
		t.Fatal(err)
	}
	iface, ok := r.LookupType("cache::Store")
	if !ok {
		t.Fatal("cache::Store not found")
	}
	want := map[string]bool{
		"_get_size":      true,  // readonly attribute getter
		"_get_label":     false, // writable attribute getter may race _set_
		"_set_label":     false,
		"lookup":         true,
		"put":            false,
		"count_matching": true,
	}
	for _, op := range iface.AllOperations() {
		exp, known := want[op.Name]
		if !known {
			t.Fatalf("unexpected operation %s", op.Name)
		}
		if op.Idempotent != exp {
			t.Errorf("%s: Idempotent = %v, want %v", op.Name, op.Idempotent, exp)
		}
		delete(want, op.Name)
	}
	if len(want) != 0 {
		t.Fatalf("operations not seen: %v", want)
	}
}

func TestIdempotentPragmaDoesNotLeak(t *testing.T) {
	// The flag rides on exactly the next token: an intervening
	// declaration must not inherit it.
	r := NewRepository()
	src := `
interface I {
  // idempotent
  long a();
  long b();
};
`
	if err := r.ParseString("leak.idl", src); err != nil {
		t.Fatal(err)
	}
	iface, _ := r.LookupType("I")
	for _, op := range iface.AllOperations() {
		if op.Name == "a" && !op.Idempotent {
			t.Error("a should be idempotent")
		}
		if op.Name == "b" && op.Idempotent {
			t.Error("b must not inherit the pragma")
		}
	}
}

func TestIdempotentOnewayRejected(t *testing.T) {
	r := NewRepository()
	err := r.ParseString("bad.idl", `
interface I {
  // idempotent
  oneway void fire();
};
`)
	if err == nil || !strings.Contains(err.Error(), "idempotent") {
		t.Fatalf("err = %v, want idempotent-oneway rejection", err)
	}
}

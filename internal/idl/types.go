package idl

import (
	"fmt"
	"strings"
)

// Kind discriminates the type model.
type Kind int

// Type kinds.
const (
	KindVoid Kind = iota
	KindBoolean
	KindOctet
	KindChar
	KindShort
	KindUShort
	KindLong
	KindULong
	KindLongLong
	KindULongLong
	KindFloat
	KindDouble
	KindString
	KindAny
	KindObject // object reference
	KindSequence
	KindStruct
	KindEnum
	KindAlias // typedef
	KindInterface
	KindException
)

var kindNames = map[Kind]string{
	KindVoid: "void", KindBoolean: "boolean", KindOctet: "octet",
	KindChar: "char", KindShort: "short", KindUShort: "unsigned short",
	KindLong: "long", KindULong: "unsigned long", KindLongLong: "long long",
	KindULongLong: "unsigned long long", KindFloat: "float",
	KindDouble: "double", KindString: "string", KindAny: "any",
	KindObject: "Object", KindSequence: "sequence", KindStruct: "struct",
	KindEnum: "enum", KindAlias: "typedef", KindInterface: "interface",
	KindException: "exception",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Type describes one IDL type. Primitive types are shared singletons;
// constructed types carry their members.
type Type struct {
	Kind Kind
	// Name is the unqualified declared name of a constructed type.
	Name string
	// Scope is the enclosing module path, e.g. "corbalc::gui".
	Scope string
	// Elem is the element type of a sequence or the target of an alias.
	Elem *Type
	// Bound is the optional sequence bound (0 = unbounded).
	Bound uint32
	// Fields are struct or exception members, in declaration order.
	Fields []Field
	// Labels are the enumerator names of an enum, in value order.
	Labels []string
	// Iface carries interface-specific data.
	Iface *Interface
}

// Field is a struct/exception member or an operation parameter.
type Field struct {
	Name string
	Type *Type
}

// ScopedName returns the fully-qualified "A::B::C" name of a constructed
// type, or the kind name for primitives.
func (t *Type) ScopedName() string {
	if t.Name == "" {
		return t.Kind.String()
	}
	if t.Scope == "" {
		return t.Name
	}
	return t.Scope + "::" + t.Name
}

// RepoID returns the OMG repository ID ("IDL:A/B/C:1.0") of a constructed
// type.
func (t *Type) RepoID() string {
	return "IDL:" + strings.ReplaceAll(t.ScopedName(), "::", "/") + ":1.0"
}

// Resolve follows typedef chains to the underlying type.
func (t *Type) Resolve() *Type {
	for t.Kind == KindAlias {
		t = t.Elem
	}
	return t
}

func (t *Type) String() string {
	switch t.Kind {
	case KindSequence:
		if t.Bound > 0 {
			return fmt.Sprintf("sequence<%s, %d>", t.Elem, t.Bound)
		}
		return fmt.Sprintf("sequence<%s>", t.Elem)
	case KindStruct, KindEnum, KindInterface, KindException, KindAlias:
		return t.ScopedName()
	default:
		return t.Kind.String()
	}
}

// Shared primitive singletons.
var (
	TVoid      = &Type{Kind: KindVoid}
	TBoolean   = &Type{Kind: KindBoolean}
	TOctet     = &Type{Kind: KindOctet}
	TChar      = &Type{Kind: KindChar}
	TShort     = &Type{Kind: KindShort}
	TUShort    = &Type{Kind: KindUShort}
	TLong      = &Type{Kind: KindLong}
	TULong     = &Type{Kind: KindULong}
	TLongLong  = &Type{Kind: KindLongLong}
	TULongLong = &Type{Kind: KindULongLong}
	TFloat     = &Type{Kind: KindFloat}
	TDouble    = &Type{Kind: KindDouble}
	TString    = &Type{Kind: KindString}
	TAny       = &Type{Kind: KindAny}
	TObject    = &Type{Kind: KindObject}
)

// Sequence returns a new unbounded sequence type.
func Sequence(elem *Type) *Type { return &Type{Kind: KindSequence, Elem: elem} }

// ParamDir is a parameter passing direction.
type ParamDir int

// Parameter directions.
const (
	DirIn ParamDir = iota
	DirOut
	DirInOut
)

func (d ParamDir) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirInOut:
		return "inout"
	}
	return fmt.Sprintf("ParamDir(%d)", int(d))
}

// Param is one operation parameter.
type Param struct {
	Dir  ParamDir
	Name string
	Type *Type
}

// Operation is one interface operation.
type Operation struct {
	Name   string
	Oneway bool
	// Idempotent marks an operation whose result depends only on its
	// arguments and whose invocation does not change component state,
	// so callers (the web gateway's response cache, in particular) may
	// reuse a prior reply. Declared with a `// idempotent` pragma
	// comment immediately before the operation; the implied _get_
	// accessor of a readonly attribute is idempotent automatically.
	Idempotent bool
	Result     *Type
	Params     []Param
	Raises     []*Type // exception types
}

// Attribute is one interface attribute; the repository models it as the
// implied _get_/_set_ operation pair.
type Attribute struct {
	Name     string
	Type     *Type
	ReadOnly bool
}

// Interface carries the interface-specific members of a Type.
type Interface struct {
	Bases      []*Type // inherited interfaces
	Operations []Operation
	Attributes []Attribute
}

// AllOperations returns the interface's operations including inherited
// ones and the implied attribute accessors, base-first.
func (t *Type) AllOperations() []Operation {
	if t.Kind != KindInterface || t.Iface == nil {
		return nil
	}
	var out []Operation
	seen := make(map[string]bool)
	var walk func(it *Type)
	walk = func(it *Type) {
		for _, b := range it.Iface.Bases {
			walk(b.Resolve())
		}
		for _, a := range it.Iface.Attributes {
			if !seen["_get_"+a.Name] {
				seen["_get_"+a.Name] = true
				// A readonly attribute cannot change, so its getter is
				// idempotent by construction; a writable attribute's
				// getter is not (a _set_ may race the cached value).
				out = append(out, Operation{Name: "_get_" + a.Name, Result: a.Type, Idempotent: a.ReadOnly})
			}
			if !a.ReadOnly && !seen["_set_"+a.Name] {
				seen["_set_"+a.Name] = true
				out = append(out, Operation{
					Name:   "_set_" + a.Name,
					Result: TVoid,
					Params: []Param{{Dir: DirIn, Name: "value", Type: a.Type}},
				})
			}
		}
		for _, op := range it.Iface.Operations {
			if !seen[op.Name] {
				seen[op.Name] = true
				out = append(out, op)
			}
		}
	}
	walk(t)
	return out
}

// LookupOperation finds an operation (or implied attribute accessor) by
// name, searching inherited interfaces.
func (t *Type) LookupOperation(name string) (*Operation, bool) {
	for _, op := range t.AllOperations() {
		if op.Name == name {
			opCopy := op
			return &opCopy, true
		}
	}
	return nil, false
}

// IsA reports whether the interface equals or inherits (transitively)
// from the interface with the given repository ID.
func (t *Type) IsA(repoID string) bool {
	t = t.Resolve()
	if t.Kind != KindInterface {
		return false
	}
	if t.RepoID() == repoID {
		return true
	}
	for _, b := range t.Iface.Bases {
		if b.Resolve().IsA(repoID) {
			return true
		}
	}
	return false
}

// Const is a named constant declaration.
type Const struct {
	Name  string
	Scope string
	Type  *Type
	// Value holds int64 for integral consts or string for string consts.
	Value any
}

// ScopedName returns the constant's fully-qualified name.
func (c *Const) ScopedName() string {
	if c.Scope == "" {
		return c.Name
	}
	return c.Scope + "::" + c.Name
}

package giop

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"corbalc/internal/cdr"
	"corbalc/internal/race"
)

// skipUnderRace skips alloc-count assertions when the race detector is
// on: sync.Pool then drops a random quarter of Put items by design, so
// pooled paths cannot measure zero.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("sync.Pool randomly drops items under the race detector; alloc counts are not stable")
	}
}

// buildBenchRequest returns a framed request message (header + body) as
// it would leave buildRequest: a small null-call-sized body.
func buildBenchRequest(t testing.TB) (Header, []byte) {
	t.Helper()
	e := NewBodyEncoder(cdr.LittleEndian)
	err := EncodeRequest(e, V12, &RequestHeader{
		RequestID: 7, ResponseExpected: true,
		ObjectKey: []byte("calc"), Operation: "square",
	})
	if err != nil {
		t.Fatal(err)
	}
	h := Header{Version: V12, Order: cdr.LittleEndian, Type: MsgRequest}
	return h, e.Bytes()
}

// BenchmarkGIOPWriteMessage drives the vectored send path with a warm
// Writer: the allocation budget here is zero — header and body go to the
// stream as one writev with no staging copy (gate: allocs/op == 0,
// enforced by TestWriteMessageZeroAlloc and the bench-json budget).
func BenchmarkGIOPWriteMessage(b *testing.B) {
	h, body := buildBenchRequest(b)
	mw := NewWriter(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mw.WriteMessage(h, body); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWriteMessageZeroAlloc pins the vectored write path's allocation
// budget at exactly zero: any regression (staging copies, escaping
// iovecs) fails here before it shows up in profiles.
func TestWriteMessageZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	h, body := buildBenchRequest(t)
	mw := NewWriter(io.Discard)
	if err := mw.WriteMessage(h, body); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := mw.WriteMessage(h, body); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WriteMessage allocates %.1f times per call, want 0", allocs)
	}
}

// replayReader serves the same framed message over and over, simulating
// a connection delivering a stream of identical requests.
type replayReader struct {
	frame []byte
	pos   int
}

func (r *replayReader) Read(p []byte) (int, error) {
	if r.pos == len(r.frame) {
		r.pos = 0
	}
	n := copy(p, r.frame[r.pos:])
	r.pos += n
	return n, nil
}

// BenchmarkGIOPReadMessagePooled measures the pooled receive path:
// steady state should recycle both the Message struct and its body
// buffer, leaving only the unavoidable per-message bookkeeping.
func BenchmarkGIOPReadMessagePooled(b *testing.B) {
	h, body := buildBenchRequest(b)
	var frame bytes.Buffer
	if err := WriteMessage(&frame, h, body); err != nil {
		b.Fatal(err)
	}
	r := &replayReader{frame: frame.Bytes()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := ReadMessagePooled(r)
		if err != nil {
			b.Fatal(err)
		}
		m.Release()
	}
}

// TestReadMessagePooledSteadyStateAllocs pins the pooled receive path's
// budget: after warm-up a read+release cycle must not allocate (struct
// and buffer both come from pools).
func TestReadMessagePooledSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	h, body := buildBenchRequest(t)
	var frame bytes.Buffer
	if err := WriteMessage(&frame, h, body); err != nil {
		t.Fatal(err)
	}
	r := &replayReader{frame: frame.Bytes()}
	for i := 0; i < 16; i++ { // warm the pools
		m, err := ReadMessagePooled(r)
		if err != nil {
			t.Fatal(err)
		}
		m.Release()
	}
	allocs := testing.AllocsPerRun(100, func() {
		m, err := ReadMessagePooled(r)
		if err != nil {
			t.Fatal(err)
		}
		m.Release()
	})
	if allocs > 0 {
		t.Fatalf("ReadMessagePooled allocates %.1f times per message, want 0", allocs)
	}
}

// TestMaxMessageSizeConfigurable exercises the configurable inbound
// frame cap: frames whose header claims more than the cap are rejected
// with ErrMessageSize before any body allocation happens.
func TestMaxMessageSizeConfigurable(t *testing.T) {
	defer SetMaxMessageSize(0) // restore the default
	SetMaxMessageSize(1024)
	if got := MaxMessageSize(); got != 1024 {
		t.Fatalf("MaxMessageSize() = %d after SetMaxMessageSize(1024)", got)
	}

	under := EncodeHeader(Header{Version: V12, Order: cdr.LittleEndian, Type: MsgRequest}, 1024)
	if _, err := DecodeHeader(under[:]); err != nil {
		t.Fatalf("1024-byte frame rejected under a 1024 cap: %v", err)
	}
	over := EncodeHeader(Header{Version: V12, Order: cdr.LittleEndian, Type: MsgRequest}, 1025)
	if _, err := DecodeHeader(over[:]); !errors.Is(err, ErrMessageSize) {
		t.Fatalf("oversized frame: err = %v, want ErrMessageSize", err)
	}

	// Restoring the default re-admits large frames.
	SetMaxMessageSize(0)
	if got := MaxMessageSize(); got != DefaultMaxMessageSize {
		t.Fatalf("MaxMessageSize() = %d after reset, want %d", got, uint32(DefaultMaxMessageSize))
	}
	if _, err := DecodeHeader(over[:]); err != nil {
		t.Fatalf("1025-byte frame rejected under the default cap: %v", err)
	}
}

// TestLocateReplyFragmentation covers the writeMaybeFragmented audit
// outcome: LocateReply (and LocateRequest) are fragmentable in GIOP 1.2
// — their bodies begin with the request ID — so a huge locate body must
// round-trip through the fragmenter instead of wedging the writer.
func TestLocateReplyFragmentation(t *testing.T) {
	for _, mt := range []MsgType{MsgLocateRequest, MsgLocateReply} {
		e := cdr.NewEncoderAt(cdr.LittleEndian, HeaderLen)
		e.WriteULong(99) // request ID leads the body
		for i := 0; i < 5000; i++ {
			e.WriteULong(uint32(i))
		}
		h := Header{Version: V12, Order: cdr.LittleEndian, Type: mt}

		var wire bytes.Buffer
		if err := WriteMessageFragmented(&wire, h, e.Bytes(), 1024); err != nil {
			t.Fatalf("%v: %v", mt, err)
		}

		ra := NewReassembler()
		var assembled *Message
		for wire.Len() > 0 {
			raw, err := ReadMessagePooled(&wire)
			if err != nil {
				t.Fatalf("%v: read: %v", mt, err)
			}
			m, err := ra.Add(raw)
			if m != raw {
				raw.Release()
			}
			if err != nil {
				t.Fatalf("%v: add: %v", mt, err)
			}
			if m != nil {
				assembled = m
			}
		}
		if assembled == nil {
			t.Fatalf("%v: never reassembled", mt)
		}
		if !bytes.Equal(assembled.Body, e.Bytes()) {
			t.Fatalf("%v: reassembled body differs from original", mt)
		}
		if assembled.Header.Type != mt || assembled.Header.Fragment {
			t.Fatalf("%v: bad reassembled header %+v", mt, assembled.Header)
		}
		assembled.Release()
	}
}

// TestReassemblyNeverAliasesRecycledBuffers poisons every wire buffer
// after its release point and checks the reassembled message is
// unaffected — the reassembler must copy fragment content into its own
// staging buffer, never borrow the (about to be recycled) wire bytes.
func TestReassemblyNeverAliasesRecycledBuffers(t *testing.T) {
	e := cdr.NewEncoderAt(cdr.LittleEndian, HeaderLen)
	e.WriteULong(7)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	e.WriteOctetSeq(payload)
	want := append([]byte(nil), e.Bytes()...)
	h := Header{Version: V12, Order: cdr.LittleEndian, Type: MsgReply}

	var wire bytes.Buffer
	if err := WriteMessageFragmented(&wire, h, e.Bytes(), 512); err != nil {
		t.Fatal(err)
	}

	ra := NewReassembler()
	var assembled *Message
	var consumed []*Message // raw wire messages whose bodies we poison
	for wire.Len() > 0 {
		raw, err := ReadMessagePooled(&wire)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ra.Add(raw)
		if err != nil {
			t.Fatal(err)
		}
		if m != raw {
			// The reassembler is done with raw: poison its body BEFORE
			// releasing, as a recycled buffer's next owner would.
			for i := range raw.Body {
				raw.Body[i] = 0xAA
			}
			consumed = append(consumed, raw)
			raw.Release()
		}
		if m != nil {
			assembled = m
		}
	}
	if assembled == nil {
		t.Fatal("never reassembled")
	}
	if len(consumed) == 0 {
		t.Fatal("test expected the message to be fragmented")
	}
	if !bytes.Equal(assembled.Body, want) {
		t.Fatal("reassembled body corrupted by poisoning recycled wire buffers: aliasing")
	}
	assembled.Release()
}

package giop

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"corbalc/internal/cdr"
)

func TestHeaderRoundTrip(t *testing.T) {
	for _, tc := range []Header{
		{Version: V10, Order: cdr.BigEndian, Type: MsgRequest},
		{Version: V12, Order: cdr.LittleEndian, Type: MsgReply},
		{Version: V12, Order: cdr.BigEndian, Type: MsgLocateRequest, Fragment: true},
		{Version: V10, Order: cdr.LittleEndian, Type: MsgCloseConnection},
	} {
		raw := EncodeHeader(tc, 1234)
		h, err := DecodeHeader(raw[:])
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if h.Version != tc.Version || h.Order != tc.Order || h.Type != tc.Type {
			t.Errorf("round trip %+v -> %+v", tc, h)
		}
		if h.Size != 1234 {
			t.Errorf("size = %d", h.Size)
		}
		// GIOP 1.0 has no fragment flag.
		wantFrag := tc.Fragment && tc.Version != V10
		if h.Fragment != wantFrag {
			t.Errorf("fragment = %v, want %v", h.Fragment, wantFrag)
		}
	}
}

func TestHeaderErrors(t *testing.T) {
	bad := EncodeHeader(Header{Version: V12, Type: MsgRequest}, 0)
	bad[0] = 'X'
	if _, err := DecodeHeader(bad[:]); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic err = %v", err)
	}
	bad = EncodeHeader(Header{Version: Version{2, 0}, Type: MsgRequest}, 0)
	if _, err := DecodeHeader(bad[:]); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version err = %v", err)
	}
	huge := EncodeHeader(Header{Version: V12, Order: cdr.BigEndian, Type: MsgRequest}, int(MaxMessageSize())+1)
	if _, err := DecodeHeader(huge[:]); !errors.Is(err, ErrMessageSize) {
		t.Errorf("size err = %v", err)
	}
	if _, err := DecodeHeader([]byte{'G', 'I'}); !errors.Is(err, ErrShortMessage) {
		t.Errorf("short err = %v", err)
	}
}

func TestMessageIO(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("hello body")
	h := Header{Version: V12, Order: cdr.LittleEndian, Type: MsgReply}
	if err := WriteMessage(&buf, h, body); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Type != MsgReply || !bytes.Equal(m.Body, body) {
		t.Fatalf("got %+v body %q", m.Header, m.Body)
	}
}

func TestReadMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Header{Version: V10, Order: cdr.BigEndian, Type: MsgRequest}, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadMessage(bytes.NewReader(trunc)); !errors.Is(err, ErrShortMessage) {
		t.Errorf("truncated err = %v", err)
	}
	if _, err := ReadMessage(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty err = %v", err)
	}
}

func requestRoundTrip(t *testing.T, v Version) {
	t.Helper()
	in := &RequestHeader{
		RequestID:        77,
		ResponseExpected: true,
		ObjectKey:        []byte("node/registry"),
		Operation:        "query_components",
		ServiceContexts: []ServiceContext{
			{ID: SvcNodeIdentity, Data: []byte("node-3")},
			{ID: SvcTracing, Data: []byte{1, 2, 3}},
		},
	}
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		e := NewBodyEncoder(order)
		if err := EncodeRequest(e, v, in); err != nil {
			t.Fatal(err)
		}
		AlignBody(e, v)
		e.WriteULong(0xDEADBEEF) // one argument

		m := &Message{Header: Header{Version: v, Order: order, Type: MsgRequest, Size: uint32(e.Len())}, Body: e.Bytes()}
		d := m.BodyDecoder()
		out, err := DecodeRequest(d, v)
		if err != nil {
			t.Fatalf("%v/%v: %v", v, order, err)
		}
		if out.RequestID != in.RequestID || !out.ResponseExpected ||
			string(out.ObjectKey) != string(in.ObjectKey) || out.Operation != in.Operation {
			t.Fatalf("%v/%v: header mismatch %+v", v, order, out)
		}
		if len(out.ServiceContexts) != 2 || out.ServiceContexts[0].ID != SvcNodeIdentity ||
			string(out.ServiceContexts[0].Data) != "node-3" {
			t.Fatalf("%v/%v: service contexts %+v", v, order, out.ServiceContexts)
		}
		if err := AlignBodyDecode(d, v); err != nil {
			t.Fatal(err)
		}
		if arg, _ := d.ReadULong(); arg != 0xDEADBEEF {
			t.Fatalf("%v/%v: body arg = %#x", v, order, arg)
		}
	}
}

func TestRequestRoundTrip10(t *testing.T) { requestRoundTrip(t, V10) }
func TestRequestRoundTrip12(t *testing.T) { requestRoundTrip(t, V12) }

func replyRoundTrip(t *testing.T, v Version) {
	t.Helper()
	in := &ReplyHeader{RequestID: 99, Status: ReplyUserException}
	e := NewBodyEncoder(cdr.LittleEndian)
	if err := EncodeReply(e, v, in); err != nil {
		t.Fatal(err)
	}
	AlignBody(e, v)
	e.WriteString("IDL:corbalc/NotFound:1.0")

	m := &Message{Header: Header{Version: v, Order: cdr.LittleEndian, Type: MsgReply}, Body: e.Bytes()}
	d := m.BodyDecoder()
	out, err := DecodeReply(d, v)
	if err != nil {
		t.Fatal(err)
	}
	if out.RequestID != 99 || out.Status != ReplyUserException {
		t.Fatalf("reply header %+v", out)
	}
	if err := AlignBodyDecode(d, v); err != nil {
		t.Fatal(err)
	}
	if s, _ := d.ReadString(); s != "IDL:corbalc/NotFound:1.0" {
		t.Fatalf("reply body = %q", s)
	}
}

func TestReplyRoundTrip10(t *testing.T) { replyRoundTrip(t, V10) }
func TestReplyRoundTrip12(t *testing.T) { replyRoundTrip(t, V12) }

func TestLocateRoundTrip(t *testing.T) {
	for _, v := range []Version{V10, V12} {
		e := NewBodyEncoder(cdr.BigEndian)
		if err := EncodeLocateRequest(e, v, &LocateRequestHeader{RequestID: 5, ObjectKey: []byte("k")}); err != nil {
			t.Fatal(err)
		}
		d := cdr.NewDecoderAt(e.Bytes(), cdr.BigEndian, HeaderLen)
		h, err := DecodeLocateRequest(d, v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if h.RequestID != 5 || string(h.ObjectKey) != "k" {
			t.Fatalf("%v: %+v", v, h)
		}
	}
	e := NewBodyEncoder(cdr.BigEndian)
	EncodeLocateReply(e, &LocateReplyHeader{RequestID: 5, Status: LocateObjectHere})
	d := cdr.NewDecoderAt(e.Bytes(), cdr.BigEndian, HeaderLen)
	lr, err := DecodeLocateReply(d)
	if err != nil || lr.Status != LocateObjectHere {
		t.Fatalf("locate reply %+v, %v", lr, err)
	}
}

func TestResponseExpectedFlagV12(t *testing.T) {
	e := NewBodyEncoder(cdr.BigEndian)
	if err := EncodeRequest(e, V12, &RequestHeader{RequestID: 1, ResponseExpected: false, Operation: "oneway_op"}); err != nil {
		t.Fatal(err)
	}
	d := cdr.NewDecoderAt(e.Bytes(), cdr.BigEndian, HeaderLen)
	h, err := DecodeRequest(d, V12)
	if err != nil {
		t.Fatal(err)
	}
	if h.ResponseExpected {
		t.Fatal("oneway decoded as response-expected")
	}
}

func TestHostileServiceContextCount(t *testing.T) {
	// A request claiming 2^31 service contexts must be rejected, not
	// cause a huge allocation.
	e := NewBodyEncoder(cdr.BigEndian)
	e.WriteULong(1 << 31)
	d := cdr.NewDecoderAt(e.Bytes(), cdr.BigEndian, HeaderLen)
	if _, err := decodeServiceContexts(d); !errors.Is(err, cdr.ErrTooLong) {
		t.Errorf("hostile count err = %v", err)
	}
}

// Property: decoding arbitrary bytes as each header type never panics.
func TestQuickDecodeGarbage(t *testing.T) {
	f := func(raw []byte) bool {
		for _, v := range []Version{V10, V12} {
			d := cdr.NewDecoderAt(raw, cdr.BigEndian, HeaderLen)
			_, _ = DecodeRequest(d, v)
			d = cdr.NewDecoderAt(raw, cdr.LittleEndian, HeaderLen)
			_, _ = DecodeReply(d, v)
			d = cdr.NewDecoderAt(raw, cdr.BigEndian, HeaderLen)
			_, _ = DecodeLocateRequest(d, v)
		}
		_, _ = DecodeHeader(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeRequestV12(b *testing.B) {
	h := &RequestHeader{RequestID: 1, ResponseExpected: true, ObjectKey: []byte("some/object/key"), Operation: "invoke"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewBodyEncoder(cdr.LittleEndian)
		if err := EncodeRequest(e, V12, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRequestV12(b *testing.B) {
	e := NewBodyEncoder(cdr.LittleEndian)
	h := &RequestHeader{RequestID: 1, ResponseExpected: true, ObjectKey: []byte("some/object/key"), Operation: "invoke"}
	if err := EncodeRequest(e, V12, h); err != nil {
		b.Fatal(err)
	}
	raw := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := cdr.NewDecoderAt(raw, cdr.LittleEndian, HeaderLen)
		if _, err := DecodeRequest(d, V12); err != nil {
			b.Fatal(err)
		}
	}
}

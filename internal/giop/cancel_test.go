package giop

import (
	"testing"

	"corbalc/internal/cdr"
)

func TestCancelRequestRoundTrip(t *testing.T) {
	for _, v := range []Version{V10, V12} {
		for _, order := range []cdr.ByteOrder{cdr.LittleEndian, cdr.BigEndian} {
			e := NewBodyEncoder(order)
			EncodeCancelRequest(e, &CancelRequestHeader{RequestID: 0xCAFEBABE})
			m := &Message{
				Header: Header{Version: v, Order: order, Type: MsgCancelRequest},
				Body:   e.Bytes(),
			}
			h, err := DecodeCancelRequest(m.BodyDecoder())
			if err != nil {
				t.Fatalf("v%v order %v: decode: %v", v, order, err)
			}
			if h.RequestID != 0xCAFEBABE {
				t.Errorf("v%v order %v: request id %#x, want 0xCAFEBABE", v, order, h.RequestID)
			}
			if id, ok := PeekRequestID(m); !ok || id != 0xCAFEBABE {
				t.Errorf("v%v order %v: peek = %#x, %v", v, order, id, ok)
			}
		}
	}
}

func TestDecodeCancelRequestTruncated(t *testing.T) {
	m := &Message{Header: Header{Version: V12, Type: MsgCancelRequest}, Body: []byte{1, 2}}
	if _, err := DecodeCancelRequest(m.BodyDecoder()); err == nil {
		t.Fatal("truncated CancelRequest decoded without error")
	}
	if _, ok := PeekRequestID(m); ok {
		t.Fatal("peek succeeded on truncated body")
	}
}

func TestPeekRequestID(t *testing.T) {
	scs := []ServiceContext{{ID: SvcTracing, Data: []byte{1, 2, 3}}}
	for _, v := range []Version{V10, V12} {
		e := NewBodyEncoder(cdr.LittleEndian)
		if err := EncodeRequest(e, v, &RequestHeader{
			RequestID: 77, ResponseExpected: true,
			ObjectKey: []byte("k"), Operation: "op", ServiceContexts: scs,
		}); err != nil {
			t.Fatal(err)
		}
		m := &Message{Header: Header{Version: v, Order: cdr.LittleEndian, Type: MsgRequest}, Body: e.Bytes()}
		if id, ok := PeekRequestID(m); !ok || id != 77 {
			t.Errorf("request v%v: peek = %d, %v; want 77", v, id, ok)
		}

		e = NewBodyEncoder(cdr.LittleEndian)
		if err := EncodeReply(e, v, &ReplyHeader{RequestID: 88, Status: ReplyNoException}); err != nil {
			t.Fatal(err)
		}
		m = &Message{Header: Header{Version: v, Order: cdr.LittleEndian, Type: MsgReply}, Body: e.Bytes()}
		if id, ok := PeekRequestID(m); !ok || id != 88 {
			t.Errorf("reply v%v: peek = %d, %v; want 88", v, id, ok)
		}
	}
}

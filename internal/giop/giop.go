// Package giop implements the General Inter-ORB Protocol message layer:
// the 12-byte GIOP header, the Request/Reply/Locate message headers for
// protocol versions 1.0 and 1.2, and blocking framed message I/O over any
// io.Reader/io.Writer.
//
// GIOP bodies are CDR streams whose alignment is measured from the start
// of the message (i.e. the header occupies offsets 0–11), which is why
// the encode helpers here hand out cdr encoders pre-based at offset 12.
package giop

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"corbalc/internal/bufpool"
	"corbalc/internal/cdr"
)

// MsgType enumerates the GIOP message kinds.
type MsgType byte

// GIOP message type codes.
const (
	MsgRequest         MsgType = 0
	MsgReply           MsgType = 1
	MsgCancelRequest   MsgType = 2
	MsgLocateRequest   MsgType = 3
	MsgLocateReply     MsgType = 4
	MsgCloseConnection MsgType = 5
	MsgMessageError    MsgType = 6
	MsgFragment        MsgType = 7
)

var msgTypeNames = [...]string{
	"Request", "Reply", "CancelRequest", "LocateRequest",
	"LocateReply", "CloseConnection", "MessageError", "Fragment",
}

func (t MsgType) String() string {
	if int(t) < len(msgTypeNames) {
		return msgTypeNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", byte(t))
}

// ReplyStatus enumerates the outcome codes carried in a Reply header.
type ReplyStatus uint32

// Reply status codes.
const (
	ReplyNoException     ReplyStatus = 0
	ReplyUserException   ReplyStatus = 1
	ReplySystemException ReplyStatus = 2
	ReplyLocationForward ReplyStatus = 3
)

func (s ReplyStatus) String() string {
	switch s {
	case ReplyNoException:
		return "NO_EXCEPTION"
	case ReplyUserException:
		return "USER_EXCEPTION"
	case ReplySystemException:
		return "SYSTEM_EXCEPTION"
	case ReplyLocationForward:
		return "LOCATION_FORWARD"
	}
	return fmt.Sprintf("ReplyStatus(%d)", uint32(s))
}

// LocateStatus enumerates LocateReply outcomes.
type LocateStatus uint32

// Locate status codes.
const (
	LocateUnknownObject LocateStatus = 0
	LocateObjectHere    LocateStatus = 1
	LocateObjectForward LocateStatus = 2
)

// Version is a GIOP protocol version.
type Version struct{ Major, Minor byte }

// Supported protocol versions.
var (
	V10 = Version{1, 0}
	V12 = Version{1, 2}
)

func (v Version) String() string { return fmt.Sprintf("%d.%d", v.Major, v.Minor) }

// HeaderLen is the fixed size of the GIOP message header.
const HeaderLen = 12

var magic = [4]byte{'G', 'I', 'O', 'P'}

// Errors produced by the message layer.
var (
	ErrBadMagic     = errors.New("giop: bad magic")
	ErrBadVersion   = errors.New("giop: unsupported GIOP version")
	ErrMessageSize  = errors.New("giop: message exceeds size limit")
	ErrShortMessage = errors.New("giop: truncated message")
)

// DefaultMaxMessageSize is the default cap on accepted message bodies
// (64 MiB). Component package transfers chunk below this.
const DefaultMaxMessageSize = 64 << 20

// maxMessageSize is the live cap; see SetMaxMessageSize.
var maxMessageSize atomic.Uint32

func init() { maxMessageSize.Store(DefaultMaxMessageSize) }

// SetMaxMessageSize changes the process-wide cap on accepted message
// body sizes. The size field of an inbound header is attacker-chosen, so
// the cap is enforced before any body allocation: an oversized frame
// fails with ErrMessageSize instead of OOMing the node. n = 0 restores
// the default. Constrained deployments (the paper's E8 tiny devices)
// should lower it to their real memory budget.
func SetMaxMessageSize(n uint32) {
	if n == 0 {
		n = DefaultMaxMessageSize
	}
	maxMessageSize.Store(n)
}

// MaxMessageSize reports the current cap on accepted message bodies.
func MaxMessageSize() uint32 { return maxMessageSize.Load() }

// Header is the decoded fixed GIOP header.
type Header struct {
	Version  Version
	Order    cdr.ByteOrder
	Fragment bool // more fragments follow (GIOP >= 1.1)
	Type     MsgType
	Size     uint32 // body size in bytes, excluding the header
}

// Message is a full GIOP message: header plus raw body bytes.
//
// Messages on the hot path are pooled: bodies read from the wire come
// from internal/bufpool and bodies built by the ORB alias a pooled
// cdr.Encoder. Release returns those resources; the layer that finishes
// with a message (the transport after writing a reply, the client after
// decoding one) is its single release point. A Message built with a
// plain composite literal has nothing pooled and Release on it only
// recycles the struct, so calling Release is always safe exactly once.
type Message struct {
	Header Header
	Body   []byte

	// pooled marks Body as owned by internal/bufpool.
	pooled bool
	// enc, when non-nil, owns the encoder whose buffer Body aliases.
	enc *cdr.Encoder
}

var messagePool = sync.Pool{New: func() any { return new(Message) }}

// NewMessage returns a pooled Message with the given header and body.
// The body is NOT owned (not returned to any pool on Release); use
// MessageFromEncoder or ReadMessagePooled for owned bodies.
func NewMessage(h Header, body []byte) *Message {
	m := messagePool.Get().(*Message)
	m.Header = h
	m.Body = body
	m.pooled = false
	m.enc = nil
	return m
}

// MessageFromEncoder returns a pooled Message whose body is the
// encoder's current stream. Ownership of the encoder transfers into the
// message: the caller must not touch e (or its Bytes) again, and the
// message's Release releases the encoder.
func MessageFromEncoder(h Header, e *cdr.Encoder) *Message {
	m := NewMessage(h, e.Bytes())
	m.enc = e
	return m
}

// Release returns the message's pooled resources (body buffer or owning
// encoder, and the struct itself). It must be called at most once, after
// which the message and any slice aliasing its body are invalid.
// Releasing nil is a no-op.
func (m *Message) Release() {
	if m == nil {
		return
	}
	if m.enc != nil {
		m.enc.Release()
		m.enc = nil
	} else if m.pooled {
		bufpool.Put(m.Body)
	}
	m.Body = nil
	m.pooled = false
	messagePool.Put(m)
}

// BodyDecoder returns a CDR decoder over the message body with alignment
// based at the end of the header, as GIOP requires.
func (m *Message) BodyDecoder() *cdr.Decoder {
	return cdr.NewDecoderAt(m.Body, m.Header.Order, HeaderLen)
}

// ResetBodyDecoder re-arms d over the message body, the allocation-free
// form of BodyDecoder for dispatch loops holding a reusable decoder.
func (m *Message) ResetBodyDecoder(d *cdr.Decoder) {
	d.Reset(m.Body, m.Header.Order, HeaderLen)
}

// NewBodyEncoder returns a CDR encoder for a message body, pre-based at
// stream offset 12 so alignment matches what BodyDecoder expects.
func NewBodyEncoder(order cdr.ByteOrder) *cdr.Encoder {
	return cdr.NewEncoderAt(order, HeaderLen)
}

// GetBodyEncoder returns a pooled CDR encoder for a message body,
// pre-based at stream offset 12. Release it, or transfer it into a
// message with MessageFromEncoder.
func GetBodyEncoder(order cdr.ByteOrder) *cdr.Encoder {
	return cdr.GetEncoder(order, HeaderLen)
}

// EncodeHeader renders the 12-byte header for a body of length size.
func EncodeHeader(h Header, size int) [HeaderLen]byte {
	var out [HeaderLen]byte
	copy(out[:4], magic[:])
	out[4] = h.Version.Major
	out[5] = h.Version.Minor
	flags := byte(h.Order)
	if h.Fragment && !(h.Version.Major == 1 && h.Version.Minor == 0) {
		flags |= 2
	}
	out[6] = flags
	out[7] = byte(h.Type)
	cdr.PutULongAt(out[:], 8, h.Order, uint32(size))
	return out
}

// DecodeHeader parses a 12-byte GIOP header.
func DecodeHeader(raw []byte) (Header, error) {
	var h Header
	if len(raw) < HeaderLen {
		return h, ErrShortMessage
	}
	if raw[0] != 'G' || raw[1] != 'I' || raw[2] != 'O' || raw[3] != 'P' {
		return h, ErrBadMagic
	}
	h.Version = Version{raw[4], raw[5]}
	if h.Version.Major != 1 || h.Version.Minor > 2 {
		return h, fmt.Errorf("%w: %v", ErrBadVersion, h.Version)
	}
	h.Order = cdr.ByteOrder(raw[6] & 1)
	h.Fragment = raw[6]&2 != 0
	h.Type = MsgType(raw[7])
	h.Size = cdr.ULongAt(raw, 8, h.Order)
	if h.Size > maxMessageSize.Load() {
		return h, fmt.Errorf("%w: %d bytes (cap %d)", ErrMessageSize, h.Size, maxMessageSize.Load())
	}
	return h, nil
}

// WriteMessage frames and writes one message. It is the convenience
// form for cold paths; connection loops hold a *Writer, whose vectored
// writes reuse their scratch state across messages.
func WriteMessage(w io.Writer, h Header, body []byte) error {
	mw := NewWriter(w)
	return mw.WriteMessage(h, body)
}

// ReadMessage reads one framed message, blocking until complete. The
// message body is freshly allocated and unpooled; receive loops should
// prefer ReadMessagePooled.
func ReadMessage(r io.Reader) (*Message, error) {
	var hraw [HeaderLen]byte
	if _, err := io.ReadFull(r, hraw[:]); err != nil {
		return nil, err
	}
	h, err := DecodeHeader(hraw[:])
	if err != nil {
		return nil, err
	}
	body := make([]byte, h.Size)
	if err := readBody(r, body); err != nil {
		return nil, err
	}
	return &Message{Header: h, Body: body}, nil
}

// ReadMessagePooled reads one framed message into a pooled body buffer
// and a pooled Message struct. Ownership of both transfers to the
// caller; Release the message when the last reader of its body is done.
// The size cap is enforced on the untrusted header before the body
// allocation.
func ReadMessagePooled(r io.Reader) (*Message, error) {
	// The header scratch comes from the pool too: a stack array would
	// escape through the io.Reader interface call and cost an allocation
	// per message.
	hraw := bufpool.Get(HeaderLen)
	if _, err := io.ReadFull(r, hraw); err != nil {
		bufpool.Put(hraw)
		return nil, err
	}
	h, err := DecodeHeader(hraw)
	bufpool.Put(hraw)
	if err != nil {
		return nil, err
	}
	body := bufpool.Get(int(h.Size))
	if err := readBody(r, body); err != nil {
		bufpool.Put(body)
		return nil, err
	}
	m := NewMessage(h, body)
	m.pooled = true
	return m, nil
}

// readBody fills body from r, mapping EOF to ErrShortMessage.
func readBody(r io.Reader, body []byte) error {
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrShortMessage
		}
		return err
	}
	return nil
}

// ServiceContext is one entry of a GIOP service context list; CORBA-LC
// uses it to piggyback node identity and tracing data on requests.
type ServiceContext struct {
	ID   uint32
	Data []byte
}

// Service context IDs used by CORBA-LC (vendor range).
const (
	SvcNodeIdentity uint32 = 0x434C4300 // "CLC\0": sender node name
	SvcTracing      uint32 = 0x434C4301 // request hop trace
	SvcDeadline     uint32 = 0x434C4302 // absolute call deadline, µs since epoch
	SvcCallID       uint32 = 0x434C4303 // end-to-end call correlation ID
)

func encodeServiceContexts(e *cdr.Encoder, scs []ServiceContext) {
	e.WriteULong(uint32(len(scs)))
	for _, sc := range scs {
		e.WriteULong(sc.ID)
		e.WriteOctetSeq(sc.Data)
	}
}

func decodeServiceContexts(d *cdr.Decoder) ([]ServiceContext, error) {
	var out []ServiceContext
	if err := decodeServiceContextsInto(d, &out); err != nil {
		return nil, err
	}
	for i := range out {
		out[i].Data = append([]byte(nil), out[i].Data...)
	}
	return out, nil
}

// decodeServiceContextsInto decodes a service context list into *scs,
// reusing its capacity; every Data slice aliases the decoder's buffer.
func decodeServiceContextsInto(d *cdr.Decoder, scs *[]ServiceContext) error {
	n, err := d.ReadULong()
	if err != nil {
		return err
	}
	if uint32(d.Remaining())/8 < n {
		return cdr.ErrTooLong
	}
	*scs = (*scs)[:0]
	for i := uint32(0); i < n; i++ {
		var sc ServiceContext
		if sc.ID, err = d.ReadULong(); err != nil {
			return err
		}
		if sc.Data, err = d.ReadOctetSeqAlias(); err != nil {
			return err
		}
		*scs = append(*scs, sc)
	}
	return nil
}

// RequestHeader is the version-independent view of a GIOP Request header.
type RequestHeader struct {
	RequestID        uint32
	ResponseExpected bool
	ObjectKey        []byte
	Operation        string
	ServiceContexts  []ServiceContext
}

// EncodeRequest encodes a Request header (for the given GIOP version) into
// e, which must be a body encoder from NewBodyEncoder. The request body
// arguments must be appended to e afterwards (for 1.2 callers must first
// call AlignBody).
func EncodeRequest(e *cdr.Encoder, v Version, h *RequestHeader) error {
	switch v {
	case V10:
		encodeServiceContexts(e, h.ServiceContexts)
		e.WriteULong(h.RequestID)
		e.WriteBool(h.ResponseExpected)
		e.WriteOctetSeq(h.ObjectKey)
		e.WriteString(h.Operation)
		e.WriteOctetSeq(nil) // requesting principal (deprecated)
		return nil
	case V12:
		e.WriteULong(h.RequestID)
		if h.ResponseExpected {
			e.WriteOctet(3) // SYNC_WITH_TARGET
		} else {
			e.WriteOctet(0) // SYNC_NONE
		}
		e.WriteOctet(0) // reserved[3]
		e.WriteOctet(0)
		e.WriteOctet(0)
		e.WriteShort(0) // target address disposition: KeyAddr
		e.WriteOctetSeq(h.ObjectKey)
		e.WriteString(h.Operation)
		encodeServiceContexts(e, h.ServiceContexts)
		return nil
	}
	return fmt.Errorf("%w: %v", ErrBadVersion, v)
}

// DecodeRequest parses a Request header for the given version. All
// decoded fields are copies, independent of the decoder's buffer.
func DecodeRequest(d *cdr.Decoder, v Version) (*RequestHeader, error) {
	h := &RequestHeader{}
	if err := DecodeRequestInto(d, v, h); err != nil {
		return nil, err
	}
	// Detach the buffer aliases the Into form hands out.
	h.ObjectKey = append([]byte(nil), h.ObjectKey...)
	for i := range h.ServiceContexts {
		h.ServiceContexts[i].Data = append([]byte(nil), h.ServiceContexts[i].Data...)
	}
	return h, nil
}

// DecodeRequestInto parses a Request header into h, reusing h's service
// context capacity. ObjectKey and every ServiceContext.Data ALIAS the
// decoder's buffer: they are valid only while the message body is, i.e.
// until the dispatching transport releases the message. This is the
// allocation-free form the ORB dispatch loop uses; anything retained
// past the dispatch must copy.
func DecodeRequestInto(d *cdr.Decoder, v Version, h *RequestHeader) error {
	return DecodeRequestIntoInterned(d, v, h, nil)
}

// DecodeRequestIntoInterned is DecodeRequestInto with an intern cache
// for the operation name (see cdr.ReadStringInterned); ops may be nil.
func DecodeRequestIntoInterned(d *cdr.Decoder, v Version, h *RequestHeader, ops map[string]string) error {
	readOp := func() (string, error) {
		if ops != nil {
			return d.ReadStringInterned(ops)
		}
		return d.ReadString()
	}
	var err error
	h.ObjectKey = nil
	h.Operation = ""
	switch v {
	case V10:
		if err = decodeServiceContextsInto(d, &h.ServiceContexts); err != nil {
			return err
		}
		if h.RequestID, err = d.ReadULong(); err != nil {
			return err
		}
		if h.ResponseExpected, err = d.ReadBool(); err != nil {
			return err
		}
		if h.ObjectKey, err = d.ReadOctetSeqAlias(); err != nil {
			return err
		}
		if h.Operation, err = readOp(); err != nil {
			return err
		}
		if _, err = d.ReadOctetSeqAlias(); err != nil { // principal
			return err
		}
		return nil
	case V12:
		if h.RequestID, err = d.ReadULong(); err != nil {
			return err
		}
		flags, err := d.ReadOctet()
		if err != nil {
			return err
		}
		h.ResponseExpected = flags == 3
		if _, err = d.ReadOctets(3); err != nil { // reserved
			return err
		}
		disp, err := d.ReadShort()
		if err != nil {
			return err
		}
		if disp != 0 {
			return fmt.Errorf("giop: unsupported target address disposition %d", disp)
		}
		if h.ObjectKey, err = d.ReadOctetSeqAlias(); err != nil {
			return err
		}
		if h.Operation, err = readOp(); err != nil {
			return err
		}
		return decodeServiceContextsInto(d, &h.ServiceContexts)
	}
	return fmt.Errorf("%w: %v", ErrBadVersion, v)
}

// ReplyHeader is the version-independent view of a GIOP Reply header.
type ReplyHeader struct {
	RequestID       uint32
	Status          ReplyStatus
	ServiceContexts []ServiceContext
}

// EncodeReply encodes a Reply header for the given version.
func EncodeReply(e *cdr.Encoder, v Version, h *ReplyHeader) error {
	switch v {
	case V10:
		encodeServiceContexts(e, h.ServiceContexts)
		e.WriteULong(h.RequestID)
		e.WriteULong(uint32(h.Status))
		return nil
	case V12:
		e.WriteULong(h.RequestID)
		e.WriteULong(uint32(h.Status))
		encodeServiceContexts(e, h.ServiceContexts)
		return nil
	}
	return fmt.Errorf("%w: %v", ErrBadVersion, v)
}

// EncodeReplyPrelude encodes a Reply header carrying no service
// contexts and the given (typically optimistic) status, returning the
// offset of the status word within the encoder's Bytes. The reply fast
// path encodes NO_EXCEPTION up front, lets the servant stream results
// directly into the same encoder, and on failure truncates the results
// and patches the status via cdr.Encoder.PatchULong — every Reply
// status occupies the same four bytes, so the patch is always valid.
func EncodeReplyPrelude(e *cdr.Encoder, v Version, reqID uint32, status ReplyStatus) (statusOff int, err error) {
	switch v {
	case V10:
		e.WriteULong(0) // empty service context list
		e.WriteULong(reqID)
		e.Align(4)
		statusOff = e.Len()
		e.WriteULong(uint32(status))
		return statusOff, nil
	case V12:
		e.WriteULong(reqID)
		e.Align(4)
		statusOff = e.Len()
		e.WriteULong(uint32(status))
		e.WriteULong(0) // empty service context list
		return statusOff, nil
	}
	return 0, fmt.Errorf("%w: %v", ErrBadVersion, v)
}

// DecodeReply parses a Reply header for the given version.
func DecodeReply(d *cdr.Decoder, v Version) (*ReplyHeader, error) {
	h := &ReplyHeader{}
	if err := DecodeReplyInto(d, v, h); err != nil {
		return nil, err
	}
	for i := range h.ServiceContexts {
		h.ServiceContexts[i].Data = append([]byte(nil), h.ServiceContexts[i].Data...)
	}
	return h, nil
}

// DecodeReplyInto parses a Reply header into h, reusing h's service
// context capacity. Every ServiceContext.Data ALIASES the decoder's
// buffer (valid until the reply message is released); this is the
// allocation-free form the client reply path uses.
func DecodeReplyInto(d *cdr.Decoder, v Version, h *ReplyHeader) error {
	var err error
	h.ServiceContexts = h.ServiceContexts[:0]
	switch v {
	case V10:
		if err = decodeServiceContextsInto(d, &h.ServiceContexts); err != nil {
			return err
		}
		if h.RequestID, err = d.ReadULong(); err != nil {
			return err
		}
		s, err := d.ReadULong()
		if err != nil {
			return err
		}
		h.Status = ReplyStatus(s)
		return nil
	case V12:
		if h.RequestID, err = d.ReadULong(); err != nil {
			return err
		}
		s, err := d.ReadULong()
		if err != nil {
			return err
		}
		h.Status = ReplyStatus(s)
		return decodeServiceContextsInto(d, &h.ServiceContexts)
	}
	return fmt.Errorf("%w: %v", ErrBadVersion, v)
}

// AlignBody pads to the 8-byte boundary that GIOP 1.2 requires between a
// Request/Reply header and its body. It is a no-op for GIOP 1.0 and for
// empty bodies (callers with no body must not call it).
func AlignBody(e *cdr.Encoder, v Version) {
	if v == V12 {
		e.Align(8)
	}
}

// AlignBodyDecode mirrors AlignBody on the decode side: it skips padding
// before a non-empty 1.2 body.
func AlignBodyDecode(d *cdr.Decoder, v Version) error {
	if v != V12 || d.Remaining() == 0 {
		return nil
	}
	pos := HeaderLen + d.Pos() // decoder base is HeaderLen
	pad := (8 - pos%8) % 8
	if pad > 0 {
		if _, err := d.ReadOctets(pad); err != nil {
			return err
		}
	}
	return nil
}

// CancelRequestHeader is a CancelRequest header: the client's notice that
// it no longer awaits the reply to RequestID. The layout is a single
// unsigned long in every GIOP version.
type CancelRequestHeader struct {
	RequestID uint32
}

// EncodeCancelRequest encodes a CancelRequest header.
func EncodeCancelRequest(e *cdr.Encoder, h *CancelRequestHeader) {
	e.WriteULong(h.RequestID)
}

// DecodeCancelRequest parses a CancelRequest header.
func DecodeCancelRequest(d *cdr.Decoder) (*CancelRequestHeader, error) {
	id, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	return &CancelRequestHeader{RequestID: id}, nil
}

// PeekRequestID extracts the request ID from a Request, Reply,
// LocateRequest, LocateReply or CancelRequest without decoding the rest
// of the header. In GIOP 1.2 every such header begins with the ID; 1.0
// Request and Reply headers prefix a service context list that must be
// skipped first.
func PeekRequestID(m *Message) (uint32, bool) {
	d := m.BodyDecoder()
	if m.Header.Version == V10 && (m.Header.Type == MsgRequest || m.Header.Type == MsgReply) {
		if _, err := decodeServiceContexts(d); err != nil {
			return 0, false
		}
	}
	id, err := d.ReadULong()
	if err != nil {
		return 0, false
	}
	return id, true
}

// LocateRequestHeader is a LocateRequest header (both versions carry a
// request id and an object key; 1.2 wraps the key in a target address).
type LocateRequestHeader struct {
	RequestID uint32
	ObjectKey []byte
}

// EncodeLocateRequest encodes a LocateRequest header.
func EncodeLocateRequest(e *cdr.Encoder, v Version, h *LocateRequestHeader) error {
	switch v {
	case V10:
		e.WriteULong(h.RequestID)
		e.WriteOctetSeq(h.ObjectKey)
		return nil
	case V12:
		e.WriteULong(h.RequestID)
		e.WriteShort(0) // KeyAddr
		e.WriteOctetSeq(h.ObjectKey)
		return nil
	}
	return fmt.Errorf("%w: %v", ErrBadVersion, v)
}

// DecodeLocateRequest parses a LocateRequest header.
func DecodeLocateRequest(d *cdr.Decoder, v Version) (*LocateRequestHeader, error) {
	h := &LocateRequestHeader{}
	var err error
	if h.RequestID, err = d.ReadULong(); err != nil {
		return nil, err
	}
	if v == V12 {
		disp, err := d.ReadShort()
		if err != nil {
			return nil, err
		}
		if disp != 0 {
			return nil, fmt.Errorf("giop: unsupported target address disposition %d", disp)
		}
	}
	if h.ObjectKey, err = d.ReadOctetSeq(); err != nil {
		return nil, err
	}
	return h, nil
}

// LocateReplyHeader is a LocateReply header.
type LocateReplyHeader struct {
	RequestID uint32
	Status    LocateStatus
}

// EncodeLocateReply encodes a LocateReply header (same layout in 1.0/1.2).
func EncodeLocateReply(e *cdr.Encoder, h *LocateReplyHeader) {
	e.WriteULong(h.RequestID)
	e.WriteULong(uint32(h.Status))
}

// DecodeLocateReply parses a LocateReply header.
func DecodeLocateReply(d *cdr.Decoder) (*LocateReplyHeader, error) {
	h := &LocateReplyHeader{}
	var err error
	if h.RequestID, err = d.ReadULong(); err != nil {
		return nil, err
	}
	s, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	h.Status = LocateStatus(s)
	return h, nil
}

// Package giop implements the General Inter-ORB Protocol message layer:
// the 12-byte GIOP header, the Request/Reply/Locate message headers for
// protocol versions 1.0 and 1.2, and blocking framed message I/O over any
// io.Reader/io.Writer.
//
// GIOP bodies are CDR streams whose alignment is measured from the start
// of the message (i.e. the header occupies offsets 0–11), which is why
// the encode helpers here hand out cdr encoders pre-based at offset 12.
package giop

import (
	"errors"
	"fmt"
	"io"

	"corbalc/internal/cdr"
)

// MsgType enumerates the GIOP message kinds.
type MsgType byte

// GIOP message type codes.
const (
	MsgRequest         MsgType = 0
	MsgReply           MsgType = 1
	MsgCancelRequest   MsgType = 2
	MsgLocateRequest   MsgType = 3
	MsgLocateReply     MsgType = 4
	MsgCloseConnection MsgType = 5
	MsgMessageError    MsgType = 6
	MsgFragment        MsgType = 7
)

var msgTypeNames = [...]string{
	"Request", "Reply", "CancelRequest", "LocateRequest",
	"LocateReply", "CloseConnection", "MessageError", "Fragment",
}

func (t MsgType) String() string {
	if int(t) < len(msgTypeNames) {
		return msgTypeNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", byte(t))
}

// ReplyStatus enumerates the outcome codes carried in a Reply header.
type ReplyStatus uint32

// Reply status codes.
const (
	ReplyNoException     ReplyStatus = 0
	ReplyUserException   ReplyStatus = 1
	ReplySystemException ReplyStatus = 2
	ReplyLocationForward ReplyStatus = 3
)

func (s ReplyStatus) String() string {
	switch s {
	case ReplyNoException:
		return "NO_EXCEPTION"
	case ReplyUserException:
		return "USER_EXCEPTION"
	case ReplySystemException:
		return "SYSTEM_EXCEPTION"
	case ReplyLocationForward:
		return "LOCATION_FORWARD"
	}
	return fmt.Sprintf("ReplyStatus(%d)", uint32(s))
}

// LocateStatus enumerates LocateReply outcomes.
type LocateStatus uint32

// Locate status codes.
const (
	LocateUnknownObject LocateStatus = 0
	LocateObjectHere    LocateStatus = 1
	LocateObjectForward LocateStatus = 2
)

// Version is a GIOP protocol version.
type Version struct{ Major, Minor byte }

// Supported protocol versions.
var (
	V10 = Version{1, 0}
	V12 = Version{1, 2}
)

func (v Version) String() string { return fmt.Sprintf("%d.%d", v.Major, v.Minor) }

// HeaderLen is the fixed size of the GIOP message header.
const HeaderLen = 12

var magic = [4]byte{'G', 'I', 'O', 'P'}

// Errors produced by the message layer.
var (
	ErrBadMagic     = errors.New("giop: bad magic")
	ErrBadVersion   = errors.New("giop: unsupported GIOP version")
	ErrMessageSize  = errors.New("giop: message exceeds size limit")
	ErrShortMessage = errors.New("giop: truncated message")
)

// MaxMessageSize bounds accepted message bodies (16 MiB). Component
// package transfers chunk below this.
const MaxMessageSize = 16 << 20

// Header is the decoded fixed GIOP header.
type Header struct {
	Version  Version
	Order    cdr.ByteOrder
	Fragment bool // more fragments follow (GIOP >= 1.1)
	Type     MsgType
	Size     uint32 // body size in bytes, excluding the header
}

// Message is a full GIOP message: header plus raw body bytes.
type Message struct {
	Header Header
	Body   []byte
}

// BodyDecoder returns a CDR decoder over the message body with alignment
// based at the end of the header, as GIOP requires.
func (m *Message) BodyDecoder() *cdr.Decoder {
	return cdr.NewDecoderAt(m.Body, m.Header.Order, HeaderLen)
}

// NewBodyEncoder returns a CDR encoder for a message body, pre-based at
// stream offset 12 so alignment matches what BodyDecoder expects.
func NewBodyEncoder(order cdr.ByteOrder) *cdr.Encoder {
	return cdr.NewEncoderAt(order, HeaderLen)
}

// EncodeHeader renders the 12-byte header for a body of length size.
func EncodeHeader(h Header, size int) [HeaderLen]byte {
	var out [HeaderLen]byte
	copy(out[:4], magic[:])
	out[4] = h.Version.Major
	out[5] = h.Version.Minor
	flags := byte(h.Order)
	if h.Fragment && !(h.Version.Major == 1 && h.Version.Minor == 0) {
		flags |= 2
	}
	out[6] = flags
	out[7] = byte(h.Type)
	cdr.PutULongAt(out[:], 8, h.Order, uint32(size))
	return out
}

// DecodeHeader parses a 12-byte GIOP header.
func DecodeHeader(raw []byte) (Header, error) {
	var h Header
	if len(raw) < HeaderLen {
		return h, ErrShortMessage
	}
	if raw[0] != 'G' || raw[1] != 'I' || raw[2] != 'O' || raw[3] != 'P' {
		return h, ErrBadMagic
	}
	h.Version = Version{raw[4], raw[5]}
	if h.Version.Major != 1 || h.Version.Minor > 2 {
		return h, fmt.Errorf("%w: %v", ErrBadVersion, h.Version)
	}
	h.Order = cdr.ByteOrder(raw[6] & 1)
	h.Fragment = raw[6]&2 != 0
	h.Type = MsgType(raw[7])
	h.Size = cdr.ULongAt(raw, 8, h.Order)
	if h.Size > MaxMessageSize {
		return h, ErrMessageSize
	}
	return h, nil
}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, h Header, body []byte) error {
	hdr := EncodeHeader(h, len(body))
	// Single write where possible keeps the TCP segmentation friendly.
	buf := make([]byte, 0, HeaderLen+len(body))
	buf = append(buf, hdr[:]...)
	buf = append(buf, body...)
	_, err := w.Write(buf)
	return err
}

// ReadMessage reads one framed message, blocking until complete.
func ReadMessage(r io.Reader) (*Message, error) {
	var hraw [HeaderLen]byte
	if _, err := io.ReadFull(r, hraw[:]); err != nil {
		return nil, err
	}
	h, err := DecodeHeader(hraw[:])
	if err != nil {
		return nil, err
	}
	body := make([]byte, h.Size)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrShortMessage
		}
		return nil, err
	}
	return &Message{Header: h, Body: body}, nil
}

// ServiceContext is one entry of a GIOP service context list; CORBA-LC
// uses it to piggyback node identity and tracing data on requests.
type ServiceContext struct {
	ID   uint32
	Data []byte
}

// Service context IDs used by CORBA-LC (vendor range).
const (
	SvcNodeIdentity uint32 = 0x434C4300 // "CLC\0": sender node name
	SvcTracing      uint32 = 0x434C4301 // request hop trace
	SvcDeadline     uint32 = 0x434C4302 // absolute call deadline, µs since epoch
	SvcCallID       uint32 = 0x434C4303 // end-to-end call correlation ID
)

func encodeServiceContexts(e *cdr.Encoder, scs []ServiceContext) {
	e.WriteULong(uint32(len(scs)))
	for _, sc := range scs {
		e.WriteULong(sc.ID)
		e.WriteOctetSeq(sc.Data)
	}
}

func decodeServiceContexts(d *cdr.Decoder) ([]ServiceContext, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining())/8 < n {
		return nil, cdr.ErrTooLong
	}
	out := make([]ServiceContext, n)
	for i := range out {
		if out[i].ID, err = d.ReadULong(); err != nil {
			return nil, err
		}
		if out[i].Data, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RequestHeader is the version-independent view of a GIOP Request header.
type RequestHeader struct {
	RequestID        uint32
	ResponseExpected bool
	ObjectKey        []byte
	Operation        string
	ServiceContexts  []ServiceContext
}

// EncodeRequest encodes a Request header (for the given GIOP version) into
// e, which must be a body encoder from NewBodyEncoder. The request body
// arguments must be appended to e afterwards (for 1.2 callers must first
// call AlignBody).
func EncodeRequest(e *cdr.Encoder, v Version, h *RequestHeader) error {
	switch v {
	case V10:
		encodeServiceContexts(e, h.ServiceContexts)
		e.WriteULong(h.RequestID)
		e.WriteBool(h.ResponseExpected)
		e.WriteOctetSeq(h.ObjectKey)
		e.WriteString(h.Operation)
		e.WriteOctetSeq(nil) // requesting principal (deprecated)
		return nil
	case V12:
		e.WriteULong(h.RequestID)
		if h.ResponseExpected {
			e.WriteOctet(3) // SYNC_WITH_TARGET
		} else {
			e.WriteOctet(0) // SYNC_NONE
		}
		e.WriteOctet(0) // reserved[3]
		e.WriteOctet(0)
		e.WriteOctet(0)
		e.WriteShort(0) // target address disposition: KeyAddr
		e.WriteOctetSeq(h.ObjectKey)
		e.WriteString(h.Operation)
		encodeServiceContexts(e, h.ServiceContexts)
		return nil
	}
	return fmt.Errorf("%w: %v", ErrBadVersion, v)
}

// DecodeRequest parses a Request header for the given version.
func DecodeRequest(d *cdr.Decoder, v Version) (*RequestHeader, error) {
	h := &RequestHeader{}
	var err error
	switch v {
	case V10:
		if h.ServiceContexts, err = decodeServiceContexts(d); err != nil {
			return nil, err
		}
		if h.RequestID, err = d.ReadULong(); err != nil {
			return nil, err
		}
		if h.ResponseExpected, err = d.ReadBool(); err != nil {
			return nil, err
		}
		if h.ObjectKey, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		if h.Operation, err = d.ReadString(); err != nil {
			return nil, err
		}
		if _, err = d.ReadOctetSeq(); err != nil { // principal
			return nil, err
		}
		return h, nil
	case V12:
		if h.RequestID, err = d.ReadULong(); err != nil {
			return nil, err
		}
		flags, err := d.ReadOctet()
		if err != nil {
			return nil, err
		}
		h.ResponseExpected = flags == 3
		if _, err = d.ReadOctets(3); err != nil { // reserved
			return nil, err
		}
		disp, err := d.ReadShort()
		if err != nil {
			return nil, err
		}
		if disp != 0 {
			return nil, fmt.Errorf("giop: unsupported target address disposition %d", disp)
		}
		if h.ObjectKey, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		if h.Operation, err = d.ReadString(); err != nil {
			return nil, err
		}
		if h.ServiceContexts, err = decodeServiceContexts(d); err != nil {
			return nil, err
		}
		return h, nil
	}
	return nil, fmt.Errorf("%w: %v", ErrBadVersion, v)
}

// ReplyHeader is the version-independent view of a GIOP Reply header.
type ReplyHeader struct {
	RequestID       uint32
	Status          ReplyStatus
	ServiceContexts []ServiceContext
}

// EncodeReply encodes a Reply header for the given version.
func EncodeReply(e *cdr.Encoder, v Version, h *ReplyHeader) error {
	switch v {
	case V10:
		encodeServiceContexts(e, h.ServiceContexts)
		e.WriteULong(h.RequestID)
		e.WriteULong(uint32(h.Status))
		return nil
	case V12:
		e.WriteULong(h.RequestID)
		e.WriteULong(uint32(h.Status))
		encodeServiceContexts(e, h.ServiceContexts)
		return nil
	}
	return fmt.Errorf("%w: %v", ErrBadVersion, v)
}

// DecodeReply parses a Reply header for the given version.
func DecodeReply(d *cdr.Decoder, v Version) (*ReplyHeader, error) {
	h := &ReplyHeader{}
	var err error
	switch v {
	case V10:
		if h.ServiceContexts, err = decodeServiceContexts(d); err != nil {
			return nil, err
		}
		if h.RequestID, err = d.ReadULong(); err != nil {
			return nil, err
		}
		s, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		h.Status = ReplyStatus(s)
		return h, nil
	case V12:
		if h.RequestID, err = d.ReadULong(); err != nil {
			return nil, err
		}
		s, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		h.Status = ReplyStatus(s)
		if h.ServiceContexts, err = decodeServiceContexts(d); err != nil {
			return nil, err
		}
		return h, nil
	}
	return nil, fmt.Errorf("%w: %v", ErrBadVersion, v)
}

// AlignBody pads to the 8-byte boundary that GIOP 1.2 requires between a
// Request/Reply header and its body. It is a no-op for GIOP 1.0 and for
// empty bodies (callers with no body must not call it).
func AlignBody(e *cdr.Encoder, v Version) {
	if v == V12 {
		e.Align(8)
	}
}

// AlignBodyDecode mirrors AlignBody on the decode side: it skips padding
// before a non-empty 1.2 body.
func AlignBodyDecode(d *cdr.Decoder, v Version) error {
	if v != V12 || d.Remaining() == 0 {
		return nil
	}
	pos := HeaderLen + d.Pos() // decoder base is HeaderLen
	pad := (8 - pos%8) % 8
	if pad > 0 {
		if _, err := d.ReadOctets(pad); err != nil {
			return err
		}
	}
	return nil
}

// CancelRequestHeader is a CancelRequest header: the client's notice that
// it no longer awaits the reply to RequestID. The layout is a single
// unsigned long in every GIOP version.
type CancelRequestHeader struct {
	RequestID uint32
}

// EncodeCancelRequest encodes a CancelRequest header.
func EncodeCancelRequest(e *cdr.Encoder, h *CancelRequestHeader) {
	e.WriteULong(h.RequestID)
}

// DecodeCancelRequest parses a CancelRequest header.
func DecodeCancelRequest(d *cdr.Decoder) (*CancelRequestHeader, error) {
	id, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	return &CancelRequestHeader{RequestID: id}, nil
}

// PeekRequestID extracts the request ID from a Request, Reply,
// LocateRequest, LocateReply or CancelRequest without decoding the rest
// of the header. In GIOP 1.2 every such header begins with the ID; 1.0
// Request and Reply headers prefix a service context list that must be
// skipped first.
func PeekRequestID(m *Message) (uint32, bool) {
	d := m.BodyDecoder()
	if m.Header.Version == V10 && (m.Header.Type == MsgRequest || m.Header.Type == MsgReply) {
		if _, err := decodeServiceContexts(d); err != nil {
			return 0, false
		}
	}
	id, err := d.ReadULong()
	if err != nil {
		return 0, false
	}
	return id, true
}

// LocateRequestHeader is a LocateRequest header (both versions carry a
// request id and an object key; 1.2 wraps the key in a target address).
type LocateRequestHeader struct {
	RequestID uint32
	ObjectKey []byte
}

// EncodeLocateRequest encodes a LocateRequest header.
func EncodeLocateRequest(e *cdr.Encoder, v Version, h *LocateRequestHeader) error {
	switch v {
	case V10:
		e.WriteULong(h.RequestID)
		e.WriteOctetSeq(h.ObjectKey)
		return nil
	case V12:
		e.WriteULong(h.RequestID)
		e.WriteShort(0) // KeyAddr
		e.WriteOctetSeq(h.ObjectKey)
		return nil
	}
	return fmt.Errorf("%w: %v", ErrBadVersion, v)
}

// DecodeLocateRequest parses a LocateRequest header.
func DecodeLocateRequest(d *cdr.Decoder, v Version) (*LocateRequestHeader, error) {
	h := &LocateRequestHeader{}
	var err error
	if h.RequestID, err = d.ReadULong(); err != nil {
		return nil, err
	}
	if v == V12 {
		disp, err := d.ReadShort()
		if err != nil {
			return nil, err
		}
		if disp != 0 {
			return nil, fmt.Errorf("giop: unsupported target address disposition %d", disp)
		}
	}
	if h.ObjectKey, err = d.ReadOctetSeq(); err != nil {
		return nil, err
	}
	return h, nil
}

// LocateReplyHeader is a LocateReply header.
type LocateReplyHeader struct {
	RequestID uint32
	Status    LocateStatus
}

// EncodeLocateReply encodes a LocateReply header (same layout in 1.0/1.2).
func EncodeLocateReply(e *cdr.Encoder, h *LocateReplyHeader) {
	e.WriteULong(h.RequestID)
	e.WriteULong(uint32(h.Status))
}

// DecodeLocateReply parses a LocateReply header.
func DecodeLocateReply(d *cdr.Decoder) (*LocateReplyHeader, error) {
	h := &LocateReplyHeader{}
	var err error
	if h.RequestID, err = d.ReadULong(); err != nil {
		return nil, err
	}
	s, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	h.Status = LocateStatus(s)
	return h, nil
}

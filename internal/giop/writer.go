package giop

import (
	"fmt"
	"io"
	"net"

	"corbalc/internal/cdr"
)

// Writer frames GIOP messages onto an underlying stream with vectored
// writes: header and body go out as one writev (net.Buffers) so the
// old header+body staging copy disappears from the send path. All
// scratch state (header bytes, fragment-ID bytes, the iovec slice)
// lives in the Writer, so a warm Writer writes a message with zero
// allocations.
//
// A Writer is NOT safe for concurrent use; connection loops serialise
// access with their write mutex, exactly as they must serialise the
// underlying stream anyway.
type Writer struct {
	w io.Writer
	// hdr holds the current message header; fragHdr/fragID hold the
	// per-fragment header and request-ID prefix during fragmentation.
	hdr     [HeaderLen]byte
	fragHdr [HeaderLen]byte
	fragID  [4]byte
	// arr backs vecs; vecs lives in the struct (not the stack) because
	// net.Buffers.WriteTo escapes its receiver into the conn's
	// writeBuffers call, and a heap-resident Writer absorbs that escape
	// once instead of once per message.
	arr  [3][]byte
	vecs net.Buffers
}

// NewWriter returns a message writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Reset re-points the writer at a new stream, for Writer pooling.
func (mw *Writer) Reset(w io.Writer) { mw.w = w }

// writeVecs performs one vectored write of the currently filled arr
// prefix, then drops the references so pooled buffers are not pinned.
func (mw *Writer) writeVecs(n int) error {
	mw.vecs = mw.arr[:n]
	_, err := mw.vecs.WriteTo(mw.w)
	mw.vecs = nil
	mw.arr = [3][]byte{}
	return err
}

// WriteMessage frames and writes one message as a single vectored
// write; body bytes are handed to the kernel in place, never copied.
func (mw *Writer) WriteMessage(h Header, body []byte) error {
	mw.hdr = EncodeHeader(h, len(body))
	mw.arr[0] = mw.hdr[:]
	if len(body) == 0 {
		return mw.writeVecs(1)
	}
	mw.arr[1] = body
	return mw.writeVecs(2)
}

// WriteMessageFragmented writes a message, splitting bodies larger than
// maxBody across Fragment messages; maxBody <= 0 disables splitting.
// Every fragment is one vectored write of [header, request-ID, chunk] —
// the chunk bytes are slices of the original body, never copied. Only
// GIOP 1.2 messages whose body begins with the request ID (Request,
// Reply, LocateRequest, LocateReply) may be fragmented.
func (mw *Writer) WriteMessageFragmented(h Header, body []byte, maxBody int) error {
	if maxBody <= 0 || len(body) <= maxBody {
		return mw.WriteMessage(h, body)
	}
	if h.Version != V12 || !Fragmentable(h.Type) {
		return ErrNotFragmentable
	}
	if maxBody < 8 {
		maxBody = 8 // room for at least the request id and some payload
	}
	// The request ID leads the 1.2 header in every fragmentable type.
	reqID, err := cdr.NewDecoderAt(body, h.Order, HeaderLen).ReadULong()
	if err != nil {
		return fmt.Errorf("giop: fragmenting: %w", err)
	}

	first := h
	first.Fragment = true
	if err := mw.WriteMessage(first, body[:maxBody]); err != nil {
		return err
	}
	cdr.PutULongAt(mw.fragID[:], 0, h.Order, reqID)
	rest := body[maxBody:]
	for len(rest) > 0 {
		chunk := rest
		more := false
		if len(chunk) > maxBody-fragmentIDLen {
			chunk = chunk[:maxBody-fragmentIDLen]
			more = true
		}
		rest = rest[len(chunk):]
		fh := Header{Version: V12, Order: h.Order, Type: MsgFragment, Fragment: more}
		mw.fragHdr = EncodeHeader(fh, fragmentIDLen+len(chunk))
		mw.arr[0] = mw.fragHdr[:]
		mw.arr[1] = mw.fragID[:]
		mw.arr[2] = chunk
		if err := mw.writeVecs(3); err != nil {
			return err
		}
	}
	return nil
}

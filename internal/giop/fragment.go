package giop

import (
	"errors"
	"fmt"
	"io"

	"corbalc/internal/bufpool"
	"corbalc/internal/cdr"
)

// GIOP 1.2 fragmentation: a message too large for one frame is sent
// with the "more fragments" flag set, followed by Fragment messages
// whose bodies begin with the request ID and whose payloads,
// concatenated in order, restore the original body. CORBA-LC uses this
// for large component-package transfers so one transfer cannot hog a
// multiplexed connection.
//
// Both ends of this implementation splice continuation payloads verbatim
// after the preceding content, so any split point of the original body
// is valid (the reassembled stream is byte-identical to the unfragmented
// encoding).

// fragmentIDLen is the fragment header: the request ID.
const fragmentIDLen = 4

// Fragmentation errors.
var (
	ErrNotFragmentable = errors.New("giop: only GIOP 1.2 messages with a leading request ID can be fragmented")
	ErrOrphanFragment  = errors.New("giop: fragment for an unknown request")
	ErrFragmentState   = errors.New("giop: inconsistent fragment state")
)

// Fragmentable reports whether t is a message type whose GIOP 1.2 body
// begins with the request ID and may therefore be fragmented: Request,
// Reply, LocateRequest and LocateReply. (LocateRequest/LocateReply
// bodies are a handful of bytes plus the object key in practice, but
// the spec permits fragmenting them and a huge object key would
// otherwise wedge the writer — see the writeMaybeFragmented audit in
// internal/iiop.)
func Fragmentable(t MsgType) bool {
	switch t {
	case MsgRequest, MsgReply, MsgLocateRequest, MsgLocateReply:
		return true
	}
	return false
}

// WriteMessageFragmented writes a message, splitting bodies larger than
// maxBody across Fragment messages. maxBody <= 0 disables splitting.
// Cold-path convenience form; connection loops use (*Writer).
func WriteMessageFragmented(w io.Writer, h Header, body []byte, maxBody int) error {
	mw := NewWriter(w)
	return mw.WriteMessageFragmented(h, body, maxBody)
}

// Reassembler accumulates fragmented messages. Feed every inbound
// message through Add: it returns a complete message (possibly the same
// one, when unfragmented) or nil while a reassembly is pending.
type Reassembler struct {
	pending map[uint32]*Message
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{pending: make(map[uint32]*Message)}
}

// Add consumes one wire message. The returned message, when non-nil, is
// complete and has the Fragment flag cleared.
//
// Ownership: Add never retains m or any slice of m.Body — fragment
// content is copied into a pooled reassembly buffer — so the caller may
// release m as soon as Add returns, UNLESS Add returned m itself (the
// unfragmented fast path, where the message passes straight through).
// A reassembled message returned by Add is pooled and owned by the
// caller; Release it like any other inbound message.
func (ra *Reassembler) Add(m *Message) (*Message, error) {
	switch {
	case Fragmentable(m.Header.Type):
		if !m.Header.Fragment {
			return m, nil
		}
		reqID, err := cdr.NewDecoderAt(m.Body, m.Header.Order, HeaderLen).ReadULong()
		if err != nil {
			return nil, fmt.Errorf("%w: undecodable first fragment", ErrFragmentState)
		}
		if _, dup := ra.pending[reqID]; dup {
			return nil, fmt.Errorf("%w: duplicate request id %d", ErrFragmentState, reqID)
		}
		// Copy into a pooled staging buffer: the source body is the
		// caller's (typically about to be recycled), and the reassembled
		// message must never alias it.
		cp := NewMessage(m.Header, bufpool.Copy(m.Body))
		cp.pooled = true
		ra.pending[reqID] = cp
		return nil, nil
	case m.Header.Type == MsgFragment:
		d := m.BodyDecoder()
		reqID, err := d.ReadULong()
		if err != nil {
			return nil, fmt.Errorf("%w: undecodable fragment header", ErrFragmentState)
		}
		base, ok := ra.pending[reqID]
		if !ok {
			return nil, fmt.Errorf("%w: id %d", ErrOrphanFragment, reqID)
		}
		base.Body = appendPooled(base.Body, m.Body[fragmentIDLen:])
		if m.Header.Fragment {
			return nil, nil // more to come
		}
		delete(ra.pending, reqID)
		base.Header.Fragment = false
		base.Header.Size = uint32(len(base.Body))
		return base, nil
	default:
		return m, nil
	}
}

// appendPooled grows a pooled buffer like append, but routes the old
// buffer back to the pool when growth reallocates.
func appendPooled(dst, src []byte) []byte {
	if len(dst)+len(src) <= cap(dst) {
		return append(dst, src...)
	}
	grown := bufpool.Get(len(dst) + len(src))[:0]
	grown = append(grown, dst...)
	grown = append(grown, src...)
	bufpool.Put(dst)
	return grown
}

// Pending reports how many reassemblies are in flight (diagnostics).
func (ra *Reassembler) Pending() int { return len(ra.pending) }

// Drop discards every in-flight reassembly, releasing their staging
// buffers; connection teardown calls it so half-received transfers do
// not leak pooled memory.
func (ra *Reassembler) Drop() {
	for id, m := range ra.pending {
		delete(ra.pending, id)
		m.Release()
	}
}

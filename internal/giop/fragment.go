package giop

import (
	"errors"
	"fmt"
	"io"

	"corbalc/internal/cdr"
)

// GIOP 1.2 fragmentation: a Request or Reply too large for one message
// is sent with the "more fragments" flag set, followed by Fragment
// messages whose bodies begin with the request ID and whose payloads,
// concatenated in order, restore the original body. CORBA-LC uses this
// for large component-package transfers so one transfer cannot hog a
// multiplexed connection.
//
// Both ends of this implementation splice continuation payloads verbatim
// after the preceding content, so any split point of the original body
// is valid (the reassembled stream is byte-identical to the unfragmented
// encoding).

// fragmentIDLen is the fragment header: the request ID.
const fragmentIDLen = 4

// Fragmentation errors.
var (
	ErrNotFragmentable = errors.New("giop: only GIOP 1.2 Request/Reply messages can be fragmented")
	ErrOrphanFragment  = errors.New("giop: fragment for an unknown request")
	ErrFragmentState   = errors.New("giop: inconsistent fragment state")
)

// WriteMessageFragmented writes a message, splitting bodies larger than
// maxBody across Fragment messages. maxBody <= 0 disables splitting.
// Only GIOP 1.2 Request/Reply messages may be fragmented (their bodies
// begin with the request ID, which the reassembler needs).
func WriteMessageFragmented(w io.Writer, h Header, body []byte, maxBody int) error {
	if maxBody <= 0 || len(body) <= maxBody {
		return WriteMessage(w, h, body)
	}
	if h.Version != V12 || (h.Type != MsgRequest && h.Type != MsgReply) {
		return ErrNotFragmentable
	}
	if maxBody < 8 {
		maxBody = 8 // room for at least the request id and some payload
	}
	// The request ID leads the 1.2 header in both Request and Reply.
	reqID, err := cdr.NewDecoderAt(body, h.Order, HeaderLen).ReadULong()
	if err != nil {
		return fmt.Errorf("giop: fragmenting: %w", err)
	}

	first := h
	first.Fragment = true
	if err := WriteMessage(w, first, body[:maxBody]); err != nil {
		return err
	}
	rest := body[maxBody:]
	for len(rest) > 0 {
		chunk := rest
		more := false
		if len(chunk) > maxBody-fragmentIDLen {
			chunk = chunk[:maxBody-fragmentIDLen]
			more = true
		}
		rest = rest[len(chunk):]
		fh := Header{Version: V12, Order: h.Order, Type: MsgFragment, Fragment: more}
		fbody := make([]byte, 0, fragmentIDLen+len(chunk))
		e := NewBodyEncoder(h.Order)
		e.WriteULong(reqID)
		fbody = append(fbody, e.Bytes()...)
		fbody = append(fbody, chunk...)
		if err := WriteMessage(w, fh, fbody); err != nil {
			return err
		}
	}
	return nil
}

// Reassembler accumulates fragmented messages. Feed every inbound
// message through Add: it returns a complete message (possibly the same
// one, when unfragmented) or nil while a reassembly is pending.
type Reassembler struct {
	pending map[uint32]*Message
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{pending: make(map[uint32]*Message)}
}

// Add consumes one wire message. The returned message, when non-nil, is
// complete and has the Fragment flag cleared.
func (ra *Reassembler) Add(m *Message) (*Message, error) {
	switch m.Header.Type {
	case MsgRequest, MsgReply:
		if !m.Header.Fragment {
			return m, nil
		}
		reqID, err := cdr.NewDecoderAt(m.Body, m.Header.Order, HeaderLen).ReadULong()
		if err != nil {
			return nil, fmt.Errorf("%w: undecodable first fragment", ErrFragmentState)
		}
		if _, dup := ra.pending[reqID]; dup {
			return nil, fmt.Errorf("%w: duplicate request id %d", ErrFragmentState, reqID)
		}
		// Copy: the caller may reuse the buffer.
		cp := &Message{Header: m.Header, Body: append([]byte(nil), m.Body...)}
		ra.pending[reqID] = cp
		return nil, nil
	case MsgFragment:
		d := m.BodyDecoder()
		reqID, err := d.ReadULong()
		if err != nil {
			return nil, fmt.Errorf("%w: undecodable fragment header", ErrFragmentState)
		}
		base, ok := ra.pending[reqID]
		if !ok {
			return nil, fmt.Errorf("%w: id %d", ErrOrphanFragment, reqID)
		}
		base.Body = append(base.Body, m.Body[fragmentIDLen:]...)
		if m.Header.Fragment {
			return nil, nil // more to come
		}
		delete(ra.pending, reqID)
		base.Header.Fragment = false
		base.Header.Size = uint32(len(base.Body))
		return base, nil
	default:
		return m, nil
	}
}

// Pending reports how many reassemblies are in flight (diagnostics).
func (ra *Reassembler) Pending() int { return len(ra.pending) }

package giop

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"corbalc/internal/cdr"
)

// buildRequest makes a GIOP 1.2 request whose body carries payload.
func buildRequest(t testing.TB, reqID uint32, payload []byte) ([]byte, Header) {
	t.Helper()
	e := NewBodyEncoder(cdr.LittleEndian)
	err := EncodeRequest(e, V12, &RequestHeader{
		RequestID: reqID, ResponseExpected: true,
		ObjectKey: []byte("some/key"), Operation: "transfer",
	})
	if err != nil {
		t.Fatal(err)
	}
	AlignBody(e, V12)
	e.WriteOctetSeq(payload)
	return e.Bytes(), Header{Version: V12, Order: cdr.LittleEndian, Type: MsgRequest}
}

// reassembleStream reads messages from buf and runs them through a
// reassembler, returning the completed messages.
func reassembleStream(t testing.TB, buf *bytes.Buffer) []*Message {
	t.Helper()
	ra := NewReassembler()
	var out []*Message
	for buf.Len() > 0 {
		m, err := ReadMessage(buf)
		if err != nil {
			t.Fatal(err)
		}
		done, err := ra.Add(m)
		if err != nil {
			t.Fatal(err)
		}
		if done != nil {
			out = append(out, done)
		}
	}
	return out
}

func TestFragmentRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte("0123456789abcdef"), 400) // 6400 bytes
	body, h := buildRequest(t, 77, payload)

	var wire bytes.Buffer
	if err := WriteMessageFragmented(&wire, h, body, 512); err != nil {
		t.Fatal(err)
	}
	// The wire must carry one Request plus several Fragment messages.
	snapshot := append([]byte(nil), wire.Bytes()...)
	var kinds []MsgType
	probe := bytes.NewBuffer(snapshot)
	for probe.Len() > 0 {
		m, err := ReadMessage(probe)
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, m.Header.Type)
	}
	if len(kinds) < 3 || kinds[0] != MsgRequest || kinds[1] != MsgFragment {
		t.Fatalf("wire kinds = %v", kinds)
	}

	done := reassembleStream(t, &wire)
	if len(done) != 1 {
		t.Fatalf("reassembled %d messages", len(done))
	}
	m := done[0]
	if m.Header.Fragment {
		t.Fatal("fragment flag survived reassembly")
	}
	if !bytes.Equal(m.Body, body) {
		t.Fatalf("body mismatch: %d vs %d bytes", len(m.Body), len(body))
	}
	// The reassembled message decodes like the original.
	d := m.BodyDecoder()
	req, err := DecodeRequest(d, V12)
	if err != nil || req.RequestID != 77 || req.Operation != "transfer" {
		t.Fatalf("decode: %+v, %v", req, err)
	}
	if err := AlignBodyDecode(d, V12); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadOctetSeq()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("payload: %d bytes, %v", len(got), err)
	}
}

func TestFragmentInterleavedRequests(t *testing.T) {
	bodyA, hA := buildRequest(t, 1, bytes.Repeat([]byte("A"), 3000))
	bodyB, hB := buildRequest(t, 2, bytes.Repeat([]byte("B"), 3000))
	var wireA, wireB bytes.Buffer
	if err := WriteMessageFragmented(&wireA, hA, bodyA, 512); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessageFragmented(&wireB, hB, bodyB, 512); err != nil {
		t.Fatal(err)
	}
	// Interleave the two message streams fragment by fragment.
	var msgs []*Message
	for wireA.Len() > 0 || wireB.Len() > 0 {
		for _, w := range []*bytes.Buffer{&wireA, &wireB} {
			if w.Len() == 0 {
				continue
			}
			m, err := ReadMessage(w)
			if err != nil {
				t.Fatal(err)
			}
			msgs = append(msgs, m)
		}
	}
	ra := NewReassembler()
	var done []*Message
	for _, m := range msgs {
		out, err := ra.Add(m)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			done = append(done, out)
		}
	}
	if len(done) != 2 || ra.Pending() != 0 {
		t.Fatalf("done=%d pending=%d", len(done), ra.Pending())
	}
	for _, m := range done {
		d := m.BodyDecoder()
		req, err := DecodeRequest(d, V12)
		if err != nil {
			t.Fatal(err)
		}
		want := bodyA
		if req.RequestID == 2 {
			want = bodyB
		}
		if !bytes.Equal(m.Body, want) {
			t.Fatalf("request %d body corrupted in interleaved reassembly", req.RequestID)
		}
	}
}

func TestFragmentErrors(t *testing.T) {
	// Fragmenting a 1.0 message is refused.
	body, h := buildRequest(t, 9, bytes.Repeat([]byte("x"), 2000))
	h10 := h
	h10.Version = V10
	var buf bytes.Buffer
	if err := WriteMessageFragmented(&buf, h10, body, 100); !errors.Is(err, ErrNotFragmentable) {
		t.Fatalf("1.0 fragment err = %v", err)
	}
	// Small bodies pass through unfragmented.
	buf.Reset()
	if err := WriteMessageFragmented(&buf, h, body, 1<<20); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMessage(&buf)
	if err != nil || m.Header.Fragment {
		t.Fatalf("small body fragmented: %v %v", m.Header, err)
	}
	// Orphan fragment.
	ra := NewReassembler()
	e := NewBodyEncoder(cdr.BigEndian)
	e.WriteULong(12345)
	_, err = ra.Add(&Message{
		Header: Header{Version: V12, Order: cdr.BigEndian, Type: MsgFragment},
		Body:   e.Bytes(),
	})
	if !errors.Is(err, ErrOrphanFragment) {
		t.Fatalf("orphan err = %v", err)
	}
	// Unfragmented messages pass through untouched.
	plain := &Message{Header: Header{Version: V12, Order: cdr.BigEndian, Type: MsgReply}}
	out, err := ra.Add(plain)
	if err != nil || out != plain {
		t.Fatalf("passthrough: %v %v", out, err)
	}
}

// Property: any payload and any fragment size reassemble byte-identical.
func TestQuickFragmentAnySplit(t *testing.T) {
	f := func(payload []byte, maxRaw uint16) bool {
		max := int(maxRaw)%2048 + 16
		body, h := buildRequest(t, 5, payload)
		var wire bytes.Buffer
		if err := WriteMessageFragmented(&wire, h, body, max); err != nil {
			return false
		}
		ra := NewReassembler()
		var done *Message
		for wire.Len() > 0 {
			m, err := ReadMessage(&wire)
			if err != nil {
				return false
			}
			out, err := ra.Add(m)
			if err != nil {
				return false
			}
			if out != nil {
				done = out
			}
		}
		return done != nil && bytes.Equal(done.Body, body) && ra.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

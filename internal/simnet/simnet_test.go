package simnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/orb"
)

type echoServant struct{}

func (echoServant) RepositoryID() string { return "IDL:test/Echo:1.0" }
func (echoServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "echo":
		s, err := args.ReadString()
		if err != nil {
			return err
		}
		reply.WriteString(s)
		return nil
	case "big":
		n, err := args.ReadLong()
		if err != nil {
			return err
		}
		reply.WriteOctetSeq(make([]byte, n))
		return nil
	}
	return orb.BadOperation()
}

// pair attaches two fresh ORBs to a network and returns (clientORB, a
// ref to the echo servant on the server).
func pair(t testing.TB, net *Network) (*orb.ORB, *orb.ObjectRef) {
	t.Helper()
	server := orb.NewORB()
	client := orb.NewORB()
	if err := net.Attach("server", server); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach("client", client); err != nil {
		t.Fatal(err)
	}
	ref := client.NewRef(server.Activate("echo", echoServant{}))
	return client, ref
}

func echo(t testing.TB, ref *orb.ObjectRef, s string) (string, error) {
	t.Helper()
	var got string
	err := ref.Invoke("echo",
		func(e *cdr.Encoder) { e.WriteString(s) },
		func(d *cdr.Decoder) error { var e error; got, e = d.ReadString(); return e })
	return got, err
}

func TestBasicCallOverVirtualNetwork(t *testing.T) {
	net := New(Link{})
	_, ref := pair(t, net)
	got, err := echo(t, ref, "through the wire")
	if err != nil || got != "through the wire" {
		t.Fatalf("echo = %q, %v", got, err)
	}
	msgs, bytes := net.Totals()
	if msgs != 2 || bytes == 0 { // request + reply
		t.Fatalf("totals = %d msgs, %d bytes", msgs, bytes)
	}
	st := net.StatsOf("client")
	if st.MsgsSent != 1 || st.MsgsRecv != 1 {
		t.Fatalf("client stats = %+v", st)
	}
}

func TestLatencyApplied(t *testing.T) {
	net := New(Link{Latency: 20 * time.Millisecond})
	_, ref := pair(t, net)
	start := time.Now()
	if _, err := echo(t, ref, "x"); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 40*time.Millisecond {
		t.Fatalf("rtt = %v, want >= 40ms (two one-way 20ms hops)", rtt)
	}
}

func TestBandwidthDelaysLargePayloads(t *testing.T) {
	// 1 MB/s: a 100 KB reply should take ~100 ms; a tiny one almost 0.
	net := New(Link{BandwidthBps: 1 << 20})
	_, ref := pair(t, net)
	small := time.Now()
	if _, err := echo(t, ref, "s"); err != nil {
		t.Fatal(err)
	}
	smallT := time.Since(small)

	big := time.Now()
	err := ref.Invoke("big",
		func(e *cdr.Encoder) { e.WriteLong(100 << 10) },
		func(d *cdr.Decoder) error { _, e := d.ReadOctetSeq(); return e })
	if err != nil {
		t.Fatal(err)
	}
	bigT := time.Since(big)
	if bigT < 80*time.Millisecond {
		t.Fatalf("big reply took %v, want >= 80ms at 1MB/s", bigT)
	}
	if smallT > bigT/2 {
		t.Fatalf("small %v vs big %v: bandwidth had no effect", smallT, bigT)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	net := New(Link{})
	_, ref := pair(t, net)
	if _, err := echo(t, ref, "x"); err != nil {
		t.Fatal(err)
	}
	net.Partition("client", "server", true)
	_, err := echo(t, ref, "x")
	var se *orb.SystemException
	if !errors.As(err, &se) {
		t.Fatalf("partitioned call err = %v", err)
	}
	net.Partition("client", "server", false)
	if _, err := echo(t, ref, "after heal"); err != nil {
		t.Fatalf("healed call: %v", err)
	}
}

func TestEndpointDownAndRecover(t *testing.T) {
	net := New(Link{})
	_, ref := pair(t, net)
	net.SetDown("server", true)
	if _, err := echo(t, ref, "x"); err == nil {
		t.Fatal("call to down endpoint succeeded")
	}
	net.SetDown("server", false)
	if _, err := echo(t, ref, "x"); err != nil {
		t.Fatalf("recovered call: %v", err)
	}
}

func TestLossIsDeterministicWithSeed(t *testing.T) {
	run := func() []bool {
		net := New(Link{Loss: 0.5})
		net.Seed(7)
		_, ref := pair(t, net)
		var outcomes []bool
		for i := 0; i < 20; i++ {
			_, err := echo(t, ref, "x")
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	var failures int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d", i)
		}
		if !a[i] {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Fatalf("loss 0.5 produced %d/%d failures", failures, len(a))
	}
}

func TestPerLinkOverride(t *testing.T) {
	net := New(Link{})
	_, ref := pair(t, net)
	net.SetLink("client", "server", Link{Latency: 30 * time.Millisecond})
	start := time.Now()
	if _, err := echo(t, ref, "x"); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	// Only the request direction is slow; reply uses the default link.
	if rtt < 30*time.Millisecond || rtt > 200*time.Millisecond {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestUnknownEndpointAndDetach(t *testing.T) {
	net := New(Link{})
	client := orb.NewORB()
	server := orb.NewORB()
	if err := net.Attach("c", client); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach("s", server); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach("c", client); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	ref := client.NewRef(server.Activate("echo", echoServant{}))
	if _, err := echo(t, ref, "x"); err != nil {
		t.Fatal(err)
	}
	net.Detach("s")
	client.Shutdown() // drop cached channel so the next call re-plans
	if _, err := echo(t, ref, "x"); err == nil {
		t.Fatal("call to detached endpoint succeeded")
	}
}

func TestConcurrentTraffic(t *testing.T) {
	net := New(Link{Latency: time.Millisecond})
	client, ref := pair(t, net)
	_ = client
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := echo(t, ref, "concurrent"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	msgs, _ := net.Totals()
	if msgs != 128 {
		t.Fatalf("msgs = %d", msgs)
	}
	net.ResetStats()
	if m, b := net.Totals(); m != 0 || b != 0 {
		t.Fatal("reset failed")
	}
}

func TestOnewayOverSimnet(t *testing.T) {
	net := New(Link{})
	server := orb.NewORB()
	client := orb.NewORB()
	_ = net.Attach("s", server)
	_ = net.Attach("c", client)
	ref := client.NewRef(server.Activate("echo", echoServant{}))
	if err := ref.InvokeOneway("echo", func(e *cdr.Encoder) { e.WriteString("fire and forget") }); err != nil {
		t.Fatal(err)
	}
	if server.RequestsServed() != 1 {
		t.Fatalf("served = %d", server.RequestsServed())
	}
}

// BenchmarkConcurrentSimnetThroughput is the virtual-network analogue
// of iiop's BenchmarkConcurrentTCPThroughput: the same caller fan-in,
// but with no socket underneath — what remains is the ORB invocation
// path itself (request build, dispatch, reply decode, link accounting),
// so the delta between the two benchmarks isolates the transport.
func BenchmarkConcurrentSimnetThroughput(b *testing.B) {
	for _, callers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("C=%d", callers), func(b *testing.B) {
			net := New(Link{})
			_, ref := pair(b, net)
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			errs := make(chan error, callers)
			for g := 0; g < callers; g++ {
				n := b.N / callers
				if g < b.N%callers {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := echo(b, ref, "bench"); err != nil {
							errs <- err
							return
						}
					}
				}(n)
			}
			wg.Wait()
			el := time.Since(start)
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
			if sec := el.Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "calls/s")
			}
		})
	}
}

func BenchmarkVirtualCallNoDelay(b *testing.B) {
	net := New(Link{})
	_, ref := pair(b, net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := echo(b, ref, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// Package simnet is the virtual network substrate CORBA-LC experiments
// run on: an in-process GIOP transport connecting many ORBs with
// configurable per-link latency, jitter, bandwidth, loss and partitions,
// plus per-endpoint traffic accounting.
//
// It substitutes for the campus network of heterogeneous hosts the paper
// assumes (see DESIGN.md): protocol experiments need hundreds of nodes
// and reproducible failures, which no physical testbed delivers
// deterministically. Nodes can equally run over the real IIOP transport
// (internal/iiop); the two coexist because each is just an orb.Transport.
package simnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"corbalc/internal/giop"
	"corbalc/internal/ior"
	"corbalc/internal/orb"
)

// Handler consumes a GIOP message and produces the reply; *orb.ORB
// satisfies it. Because delivery is an in-process call, the caller's
// context (deadline, cancellation, call ID) reaches the target directly.
type Handler interface {
	HandleMessage(ctx context.Context, m *giop.Message) (*giop.Message, error)
}

// Link models one directional link's quality.
type Link struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// BandwidthBps limits throughput in bytes/second (0 = infinite).
	BandwidthBps float64
	// Loss is the probability in [0,1) that a message vanishes.
	Loss float64
}

// Errors surfaced to callers.
var (
	ErrUnknownEndpoint = errors.New("simnet: unknown endpoint")
	ErrEndpointDown    = errors.New("simnet: endpoint down")
	ErrPartitioned     = errors.New("simnet: endpoints partitioned")
	ErrMessageLost     = errors.New("simnet: message lost")
)

// Stats are cumulative per-endpoint traffic counters.
type Stats struct {
	MsgsSent, MsgsRecv   uint64
	BytesSent, BytesRecv uint64
}

type endpoint struct {
	name    string
	handler Handler
	down    bool
	// class is the endpoint's partition class: endpoints in different
	// non-zero classes cannot reach each other (swarm-scale partitions
	// without O(N²) pairwise cuts). Class 0 reaches everyone.
	class int
	stats Stats
	// busyUntil models FIFO transmission queueing on the node's uplink.
	busyUntil time.Time
}

// Network is one virtual network.
type Network struct {
	mu          sync.Mutex
	endpoints   map[string]*endpoint
	defaultLink Link
	links       map[[2]string]Link
	partitions  map[[2]string]bool
	rng         *rand.Rand
	totalMsgs   uint64
	totalBytes  uint64
}

// New creates a network whose links default to the given quality.
func New(defaultLink Link) *Network {
	return &Network{
		endpoints:   make(map[string]*endpoint),
		defaultLink: defaultLink,
		links:       make(map[[2]string]Link),
		partitions:  make(map[[2]string]bool),
		rng:         rand.New(rand.NewSource(42)),
	}
}

// Seed re-seeds the loss/jitter randomness for reproducibility.
func (n *Network) Seed(s int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rng = rand.New(rand.NewSource(s))
}

// Attach registers an ORB under an endpoint name, registers the simnet
// transport on it, and decorates its future IORs with the virtual
// profile so other endpoints can call it.
func (n *Network) Attach(name string, o *orb.ORB) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.endpoints[name]; dup {
		return fmt.Errorf("simnet: endpoint %q already attached", name)
	}
	n.endpoints[name] = &endpoint{name: name, handler: o}
	o.RegisterTransport(&Transport{net: n, local: name})
	o.AddIORDecorator(func(ref *ior.IOR, key string) {
		ref.AddProfile(ior.TagCorbalcVirtual, ProfileData(name, key))
	})
	return nil
}

// Detach removes an endpoint entirely.
func (n *Network) Detach(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, name)
}

// SetDown marks an endpoint crashed (true) or recovered (false); calls
// to a down endpoint fail after the propagation delay, like a TCP
// timeout would.
func (n *Network) SetDown(name string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[name]; ok {
		ep.down = down
	}
}

// SetPartitionClass assigns an endpoint to a partition class: endpoints
// in different non-zero classes are mutually unreachable, while class 0
// (the default) reaches everyone. One call per node expresses a
// swarm-scale network split; assigning every node back to 0 heals it.
func (n *Network) SetPartitionClass(name string, class int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[name]; ok {
		ep.class = class
	}
}

// SetLink overrides the quality of the directed link a -> b.
func (n *Network) SetLink(a, b string, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]string{a, b}] = l
}

// Partition cuts (or heals) both directions between a and b.
func (n *Network) Partition(a, b string, cut bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cut {
		n.partitions[[2]string{a, b}] = true
		n.partitions[[2]string{b, a}] = true
	} else {
		delete(n.partitions, [2]string{a, b})
		delete(n.partitions, [2]string{b, a})
	}
}

// StatsOf returns an endpoint's traffic counters.
func (n *Network) StatsOf(name string) Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[name]; ok {
		return ep.stats
	}
	return Stats{}
}

// Totals returns network-wide message and byte counts.
func (n *Network) Totals() (msgs, bytes uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.totalMsgs, n.totalBytes
}

// ResetStats zeroes all counters (between experiment phases).
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.totalMsgs, n.totalBytes = 0, 0
	for _, ep := range n.endpoints {
		ep.stats = Stats{}
	}
}

// Endpoints lists attached endpoint names.
func (n *Network) Endpoints() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.endpoints))
	for name := range n.endpoints {
		out = append(out, name)
	}
	return out
}

// linkFor returns the effective link a -> b.
func (n *Network) linkFor(a, b string) Link {
	if l, ok := n.links[[2]string{a, b}]; ok {
		return l
	}
	return n.defaultLink
}

// plan decides one message's fate under the lock: accounting, loss,
// partition, and the delay before delivery (latency + jitter + queued
// transmission time). It never sleeps.
func (n *Network) plan(from, to string, size int) (delay time.Duration, target Handler, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	src, ok := n.endpoints[from]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrUnknownEndpoint, from)
	}
	dst, ok := n.endpoints[to]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrUnknownEndpoint, to)
	}
	l := n.linkFor(from, to)

	src.stats.MsgsSent++
	src.stats.BytesSent += uint64(size)
	n.totalMsgs++
	n.totalBytes += uint64(size)

	delay = l.Latency
	if l.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(l.Jitter)))
	}
	if l.BandwidthBps > 0 {
		// FIFO transmission queueing on the sender's uplink: the message
		// starts transmitting when the link frees up and occupies it for
		// size/bandwidth seconds.
		tx := time.Duration(float64(size) / l.BandwidthBps * float64(time.Second))
		now := time.Now()
		start := now
		if src.busyUntil.After(now) {
			start = src.busyUntil
		}
		src.busyUntil = start.Add(tx)
		delay += src.busyUntil.Sub(now)
	}

	if n.partitions[[2]string{from, to}] {
		return delay, nil, ErrPartitioned
	}
	if src.class != 0 && dst.class != 0 && src.class != dst.class {
		return delay, nil, ErrPartitioned
	}
	if src.down {
		return delay, nil, fmt.Errorf("%w: %s", ErrEndpointDown, from)
	}
	if dst.down {
		return delay, nil, fmt.Errorf("%w: %s", ErrEndpointDown, to)
	}
	if l.Loss > 0 && n.rng.Float64() < l.Loss {
		return delay, nil, ErrMessageLost
	}

	dst.stats.MsgsRecv++
	dst.stats.BytesRecv += uint64(size)
	return delay, dst.handler, nil
}

// wait models a propagation delay: it sleeps for d unless ctx ends
// first, in which case the context error is returned (the simulated
// message is abandoned mid-flight, like a cancelled real call).
func wait(ctx context.Context, d time.Duration) error {
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return ctx.Err()
}

// send models one directional message: plan, wait, deliver.
func (n *Network) send(ctx context.Context, from, to string, m *giop.Message) (*giop.Message, error) {
	size := giop.HeaderLen + len(m.Body)
	delay, target, err := n.plan(from, to, size)
	if werr := wait(ctx, delay); werr != nil {
		return nil, werr
	}
	if err != nil {
		return nil, err
	}
	return target.HandleMessage(ctx, m)
}

// ProfileData encodes a virtual-endpoint IOR profile: endpoint name and
// object key separated by NUL.
func ProfileData(endpoint, key string) []byte {
	return []byte(endpoint + "\x00" + key)
}

// parseProfile splits a virtual profile into endpoint and object key.
func parseProfile(data []byte) (endpointName string, key []byte, err error) {
	i := bytes.IndexByte(data, 0)
	if i < 0 {
		return "", nil, fmt.Errorf("simnet: malformed virtual profile")
	}
	return string(data[:i]), data[i+1:], nil
}

// Transport implements orb.Transport (and orb.KeyExtractor) over a
// Network, from the perspective of one local endpoint.
type Transport struct {
	net   *Network
	local string
}

// Tag implements orb.Transport.
func (t *Transport) Tag() uint32 { return ior.TagCorbalcVirtual }

// Endpoint implements orb.Transport.
func (t *Transport) Endpoint(profile []byte) (string, error) {
	name, _, err := parseProfile(profile)
	return name, err
}

// ObjectKey implements orb.KeyExtractor.
func (t *Transport) ObjectKey(profile []byte) ([]byte, error) {
	_, key, err := parseProfile(profile)
	return key, err
}

// ChannelPoolSize implements orb.PoolSizer: one channel per endpoint.
// Simnet channels are stateless — no socket, no write path, no reply
// demux — so striping them buys nothing; a size of 1 keeps the ORB's
// channel pool transparent and the virtual network's per-link
// accounting (conditions are keyed by endpoint pair, not channel)
// unchanged under concurrency.
func (t *Transport) ChannelPoolSize() int { return 1 }

// Dial implements orb.Transport (establishment is instantaneous on the
// virtual network, so ctx only gates the subsequent calls).
func (t *Transport) Dial(_ context.Context, profile []byte) (orb.Channel, error) {
	remote, _, err := parseProfile(profile)
	if err != nil {
		return nil, err
	}
	t.net.mu.Lock()
	_, ok := t.net.endpoints[remote]
	t.net.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEndpoint, remote)
	}
	return &channel{net: t.net, from: t.local, to: remote}, nil
}

type channel struct {
	net  *Network
	from string
	to   string
}

// Call implements orb.Channel: request travels from->to, reply to->from,
// both subject to link conditions and to ctx. Cancellation needs no
// CancelRequest here — the target's handler runs under the caller's very
// context, so it observes cancellation directly.
func (c *channel) Call(ctx context.Context, req *giop.Message, _ uint32) (*giop.Message, error) {
	reply, err := c.net.send(ctx, c.from, c.to, req)
	if err != nil {
		return nil, err
	}
	if reply == nil {
		return nil, nil
	}
	size := giop.HeaderLen + len(reply.Body)
	delay, _, err := c.net.plan(c.to, c.from, size)
	if werr := wait(ctx, delay); werr != nil {
		reply.Release() // reply "lost in flight": recycle, nobody will see it
		return nil, werr
	}
	if err != nil {
		reply.Release()
		return nil, err
	}
	return reply, nil
}

// Send implements orb.Channel (oneway).
func (c *channel) Send(ctx context.Context, req *giop.Message) error {
	_, err := c.net.send(ctx, c.from, c.to, req)
	return err
}

// Close implements orb.Channel.
func (c *channel) Close() error { return nil }

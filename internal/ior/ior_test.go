package ior

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"corbalc/internal/cdr"
)

func TestIIOPProfileRoundTrip(t *testing.T) {
	r := New("IDL:corbalc/Node:1.0", "10.0.0.7", 2809, []byte("node/main"))
	p, err := r.IIOP()
	if err != nil {
		t.Fatal(err)
	}
	if p.Host != "10.0.0.7" || p.Port != 2809 || string(p.ObjectKey) != "node/main" {
		t.Fatalf("profile = %+v", p)
	}
	if p.Addr() != "10.0.0.7:2809" {
		t.Fatalf("addr = %q", p.Addr())
	}
}

func TestStringifyParse(t *testing.T) {
	r := New("IDL:corbalc/ComponentRegistry:1.0", "host.example", 12345, []byte{0, 1, 2, 0xFF})
	s := r.String()
	if !strings.HasPrefix(s, "IOR:") {
		t.Fatalf("stringified = %q", s)
	}
	got, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.TypeID != r.TypeID {
		t.Errorf("type id = %q", got.TypeID)
	}
	p, err := got.IIOP()
	if err != nil {
		t.Fatal(err)
	}
	if p.Host != "host.example" || p.Port != 12345 || !bytes.Equal(p.ObjectKey, []byte{0, 1, 2, 0xFF}) {
		t.Fatalf("profile = %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("nonsense"); !errors.Is(err, ErrNotIOR) {
		t.Errorf("err = %v", err)
	}
	if _, err := Parse("IOR:zz"); !errors.Is(err, ErrBadHex) {
		t.Errorf("err = %v", err)
	}
	if _, err := Parse("IOR:"); err == nil {
		t.Error("empty IOR accepted")
	}
	for _, bad := range []string{
		"corbaloc:rir:/NameService", // unsupported scheme
		"corbaloc::hostonly/key",    // missing port
		"corbaloc::h:1",             // missing key
		"corbaloc::h:1/",            // empty key
		"corbaloc::h:99999/k",       // port overflow
		"corbaloc::h:1/k%2",         // truncated escape
		"corbaloc::h:1/k%zz",        // bad escape
	} {
		if _, err := Parse(bad); !errors.Is(err, ErrBadCorbaloc) {
			t.Errorf("Parse(%q) err = %v, want ErrBadCorbaloc", bad, err)
		}
	}
}

func TestCorbalocRoundTrip(t *testing.T) {
	r := New("", "192.168.1.5", 2809, []byte("Node/ResourceManager"))
	u, err := r.Corbaloc()
	if err != nil {
		t.Fatal(err)
	}
	if u != "corbaloc::192.168.1.5:2809/Node%2fResourceManager" &&
		u != "corbaloc::192.168.1.5:2809/Node%2FResourceManager" {
		// '/' must be escaped inside the key
		t.Logf("corbaloc = %q", u)
	}
	got, err := Parse(u)
	if err != nil {
		t.Fatal(err)
	}
	p, err := got.IIOP()
	if err != nil {
		t.Fatal(err)
	}
	if string(p.ObjectKey) != "Node/ResourceManager" {
		t.Fatalf("key = %q", p.ObjectKey)
	}
	if p.Port != 2809 || p.Host != "192.168.1.5" {
		t.Fatalf("profile = %+v", p)
	}
}

func TestCorbalocVersionPrefix(t *testing.T) {
	r, err := Parse("corbaloc::1.2@somehost:900/TheKey")
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.IIOP()
	if err != nil {
		t.Fatal(err)
	}
	if p.Host != "somehost" || p.Port != 900 || string(p.ObjectKey) != "TheKey" {
		t.Fatalf("profile = %+v", p)
	}
}

func TestNilReference(t *testing.T) {
	var r *IOR
	if !r.IsNil() {
		t.Error("nil pointer not nil reference")
	}
	if !(&IOR{}).IsNil() {
		t.Error("empty IOR not nil reference")
	}
	if (New("IDL:x:1.0", "h", 1, nil)).IsNil() {
		t.Error("real IOR reported nil")
	}
}

func TestExtraProfilesPreserved(t *testing.T) {
	r := New("IDL:corbalc/Node:1.0", "h", 1, []byte("k"))
	r.AddProfile(TagCorbalcVirtual, []byte("vnode-7"))
	got, err := Parse(r.String())
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Profile(TagCorbalcVirtual)) != "vnode-7" {
		t.Fatalf("virtual profile = %q", got.Profile(TagCorbalcVirtual))
	}
	if got.Profile(0xEEEE) != nil {
		t.Error("absent profile returned data")
	}
}

func TestMarshalUnmarshalViaCDR(t *testing.T) {
	r := New("IDL:x:1.0", "a-host", 7, []byte("key"))
	e := cdr.NewEncoder(cdr.LittleEndian)
	r.Marshal(e)
	got, err := Unmarshal(cdr.NewDecoder(e.Bytes(), cdr.LittleEndian))
	if err != nil {
		t.Fatal(err)
	}
	if got.TypeID != r.TypeID || len(got.Profiles) != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestHostileProfileCount(t *testing.T) {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteString("IDL:x:1.0")
	e.WriteULong(1 << 30)
	if _, err := Unmarshal(cdr.NewDecoder(e.Bytes(), cdr.BigEndian)); !errors.Is(err, cdr.ErrTooLong) {
		t.Errorf("hostile count err = %v", err)
	}
}

// Property: IOR round-trips through its stringified form for arbitrary
// type IDs, keys, hosts and ports.
func TestQuickStringifyRoundTrip(t *testing.T) {
	f := func(typeID string, key []byte, port uint16) bool {
		if strings.ContainsRune(typeID, 0) {
			return true // NUL cannot appear in a CDR string
		}
		r := New(typeID, "host", port, key)
		got, err := Parse(r.String())
		if err != nil {
			return false
		}
		p, err := got.IIOP()
		if err != nil {
			return false
		}
		return got.TypeID == typeID && p.Port == port && bytes.Equal(p.ObjectKey, key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse never panics on arbitrary strings.
func TestQuickParseGarbage(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		_, _ = Parse("IOR:" + s)
		_, _ = Parse("corbaloc::" + s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Package ior implements CORBA Interoperable Object References: the
// in-memory IOR structure, the IIOP profile body, the stringified
// "IOR:<hex>" form, and the human-writable "corbaloc::host:port/key"
// form. IORs are how CORBA-LC nodes hand out references to their
// services (Resource Manager, Component Registry, ...) and to component
// instance ports.
package ior

import (
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"corbalc/internal/cdr"
)

// Profile tags from the OMG registry.
const (
	TagInternetIOP      uint32 = 0 // IIOP
	TagMultipleComp     uint32 = 1
	TagCorbalcVirtual   uint32 = 0x434C4302 // CORBA-LC simnet endpoint (vendor tag)
	TagCorbalcInProcess uint32 = 0x434C4303 // same-process shortcut (vendor tag)
)

// TaggedProfile is one opaque profile of an IOR.
type TaggedProfile struct {
	Tag  uint32
	Data []byte
}

// IOR is an interoperable object reference: a repository type ID plus one
// or more transport profiles.
type IOR struct {
	TypeID   string
	Profiles []TaggedProfile
}

// IsNil reports whether the reference is the CORBA nil object reference
// (empty type ID and no profiles).
func (r *IOR) IsNil() bool { return r == nil || (r.TypeID == "" && len(r.Profiles) == 0) }

// IIOPProfile is the decoded body of a TAG_INTERNET_IOP profile.
type IIOPProfile struct {
	Major, Minor byte
	Host         string
	Port         uint16
	ObjectKey    []byte
}

// Addr returns the profile's host:port endpoint.
func (p *IIOPProfile) Addr() string { return net.JoinHostPort(p.Host, strconv.Itoa(int(p.Port))) }

// Errors returned by this package.
var (
	ErrNotIOR      = errors.New("ior: string does not begin with IOR:")
	ErrBadHex      = errors.New("ior: invalid hex in stringified IOR")
	ErrNoIIOP      = errors.New("ior: reference carries no IIOP profile")
	ErrBadCorbaloc = errors.New("ior: malformed corbaloc URL")
)

// New builds an IOR with a single IIOP profile.
func New(typeID, host string, port uint16, objectKey []byte) *IOR {
	p := &IIOPProfile{Major: 1, Minor: 2, Host: host, Port: port, ObjectKey: objectKey}
	return &IOR{TypeID: typeID, Profiles: []TaggedProfile{p.Encode()}}
}

// Encode renders the IIOP profile as a tagged profile whose data is a CDR
// encapsulation, per CORBA 2.4 §15.7.2.
func (p *IIOPProfile) Encode() TaggedProfile {
	outer := cdr.NewEncoder(cdr.BigEndian)
	outer.WriteEncapsulation(cdr.BigEndian, func(e *cdr.Encoder) {
		e.WriteOctet(p.Major)
		e.WriteOctet(p.Minor)
		e.WriteString(p.Host)
		e.WriteUShort(p.Port)
		e.WriteOctetSeq(p.ObjectKey)
		if p.Minor >= 1 {
			e.WriteULong(0) // empty tagged components sequence
		}
	})
	// The encapsulation helper wrote a ULong length + payload; strip the
	// length so Data is exactly the encapsulated octets.
	raw := outer.Bytes()
	return TaggedProfile{Tag: TagInternetIOP, Data: raw[4:]}
}

// DecodeIIOPProfile parses a TAG_INTERNET_IOP profile body.
func DecodeIIOPProfile(data []byte) (*IIOPProfile, error) {
	if len(data) == 0 {
		return nil, cdr.ErrUnderflow
	}
	d := cdr.NewDecoderAt(data[1:], cdr.ByteOrder(data[0]&1), 1)
	p := &IIOPProfile{}
	var err error
	if p.Major, err = d.ReadOctet(); err != nil {
		return nil, err
	}
	if p.Minor, err = d.ReadOctet(); err != nil {
		return nil, err
	}
	if p.Major != 1 {
		return nil, fmt.Errorf("ior: unsupported IIOP version %d.%d", p.Major, p.Minor)
	}
	if p.Host, err = d.ReadString(); err != nil {
		return nil, err
	}
	if p.Port, err = d.ReadUShort(); err != nil {
		return nil, err
	}
	if p.ObjectKey, err = d.ReadOctetSeq(); err != nil {
		return nil, err
	}
	// Tagged components (1.1+) are ignored if present.
	return p, nil
}

// IIOP returns the first IIOP profile of the reference.
func (r *IOR) IIOP() (*IIOPProfile, error) {
	for _, tp := range r.Profiles {
		if tp.Tag == TagInternetIOP {
			return DecodeIIOPProfile(tp.Data)
		}
	}
	return nil, ErrNoIIOP
}

// Profile returns the raw data of the first profile with the given tag,
// or nil if absent.
func (r *IOR) Profile(tag uint32) []byte {
	for _, tp := range r.Profiles {
		if tp.Tag == tag {
			return tp.Data
		}
	}
	return nil
}

// AddProfile appends a tagged profile.
func (r *IOR) AddProfile(tag uint32, data []byte) {
	r.Profiles = append(r.Profiles, TaggedProfile{Tag: tag, Data: data})
}

// Marshal encodes the IOR body (type ID + profiles) into e.
func (r *IOR) Marshal(e *cdr.Encoder) {
	e.WriteString(r.TypeID)
	e.WriteULong(uint32(len(r.Profiles)))
	for _, p := range r.Profiles {
		e.WriteULong(p.Tag)
		e.WriteOctetSeq(p.Data)
	}
}

// Unmarshal decodes an IOR body from d.
func Unmarshal(d *cdr.Decoder) (*IOR, error) {
	r := &IOR{}
	var err error
	if r.TypeID, err = d.ReadString(); err != nil {
		return nil, err
	}
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining())/8 < n {
		return nil, cdr.ErrTooLong
	}
	r.Profiles = make([]TaggedProfile, n)
	for i := range r.Profiles {
		if r.Profiles[i].Tag, err = d.ReadULong(); err != nil {
			return nil, err
		}
		if r.Profiles[i].Data, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// String renders the reference in the interoperable "IOR:<hex>" form: the
// hex dump of a CDR encapsulation of the IOR body.
func (r *IOR) String() string {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteEncapsulation(cdr.BigEndian, r.Marshal)
	// Strip the ULong length: stringified IORs hex-encode the
	// encapsulation octets directly.
	raw := e.Bytes()[4:]
	return "IOR:" + hex.EncodeToString(raw)
}

// Parse decodes a stringified reference. Accepted forms are "IOR:<hex>"
// and "corbaloc::host:port/key".
func Parse(s string) (*IOR, error) {
	switch {
	case strings.HasPrefix(s, "IOR:"):
		return parseHex(s[len("IOR:"):])
	case strings.HasPrefix(s, "corbaloc:"):
		return parseCorbaloc(s[len("corbaloc:"):])
	default:
		return nil, ErrNotIOR
	}
}

func parseHex(h string) (*IOR, error) {
	raw, err := hex.DecodeString(h)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHex, err)
	}
	if len(raw) == 0 {
		return nil, cdr.ErrUnderflow
	}
	d := cdr.NewDecoderAt(raw[1:], cdr.ByteOrder(raw[0]&1), 1)
	return Unmarshal(d)
}

// parseCorbaloc handles the subset ":host:port/key" (the common
// "corbaloc::" IIOP form, defaulting GIOP 1.2). The object key is kept
// verbatim apart from %XX unescaping.
func parseCorbaloc(rest string) (*IOR, error) {
	if !strings.HasPrefix(rest, ":") {
		return nil, fmt.Errorf("%w: only iiop (corbaloc::) addresses supported", ErrBadCorbaloc)
	}
	rest = rest[1:]
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return nil, fmt.Errorf("%w: missing /key", ErrBadCorbaloc)
	}
	addr, key := rest[:slash], rest[slash+1:]
	if key == "" {
		return nil, fmt.Errorf("%w: empty key", ErrBadCorbaloc)
	}
	// Optional "1.2@" version prefix.
	if at := strings.IndexByte(addr, '@'); at >= 0 {
		addr = addr[at+1:]
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCorbaloc, err)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return nil, fmt.Errorf("%w: bad port %q", ErrBadCorbaloc, portStr)
	}
	unescaped, err := unescapeKey(key)
	if err != nil {
		return nil, err
	}
	return New("", host, uint16(port), unescaped), nil
}

func unescapeKey(k string) ([]byte, error) {
	out := make([]byte, 0, len(k))
	for i := 0; i < len(k); i++ {
		if k[i] != '%' {
			out = append(out, k[i])
			continue
		}
		if i+2 >= len(k) {
			return nil, fmt.Errorf("%w: truncated %% escape", ErrBadCorbaloc)
		}
		b, err := hex.DecodeString(k[i+1 : i+3])
		if err != nil {
			return nil, fmt.Errorf("%w: bad %% escape", ErrBadCorbaloc)
		}
		out = append(out, b[0])
		i += 2
	}
	return out, nil
}

// Corbaloc renders the reference as a corbaloc URL if it has an IIOP
// profile and a printable key.
func (r *IOR) Corbaloc() (string, error) {
	p, err := r.IIOP()
	if err != nil {
		return "", err
	}
	var key strings.Builder
	for _, b := range p.ObjectKey {
		if b >= 0x21 && b <= 0x7E && b != '%' && b != '/' {
			key.WriteByte(b)
		} else {
			fmt.Fprintf(&key, "%%%02x", b)
		}
	}
	return fmt.Sprintf("corbaloc::%s/%s", p.Addr(), key.String()), nil
}

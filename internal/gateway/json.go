package gateway

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"

	"corbalc/internal/idl"
	"corbalc/internal/ior"
)

// JSON↔IDL value translation. Inbound, the gateway converts the generic
// tree encoding/json produces (map[string]any / []any / float64 /
// string / bool / nil) into the Go value mapping internal/idl's dynamic
// marshaller expects; outbound it converts decoded reply values into a
// tree encoding/json renders naturally. Every inbound mismatch is a
// *translateError, which the handler answers with 400 — a malformed
// request must never reach the wire as a half-marshalled CDR body.

// translateError is a client-side translation failure (HTTP 400).
type translateError struct{ msg string }

func (e *translateError) Error() string { return e.msg }

func badValue(format string, args ...any) error {
	return &translateError{msg: fmt.Sprintf(format, args...)}
}

// jsonToIDL converts one decoded JSON value to the Go value the dynamic
// marshaller expects for IDL type t.
func jsonToIDL(t *idl.Type, v any) (any, error) {
	rt := t.Resolve()
	switch rt.Kind {
	case idl.KindBoolean:
		b, ok := v.(bool)
		if !ok {
			return nil, badValue("expected boolean, got %s", jsonKind(v))
		}
		return b, nil
	case idl.KindOctet, idl.KindChar:
		i, err := jsonInt(v, 0, 255)
		if err != nil {
			return nil, err
		}
		return byte(i), nil
	case idl.KindShort:
		i, err := jsonInt(v, math.MinInt16, math.MaxInt16)
		if err != nil {
			return nil, err
		}
		return int16(i), nil
	case idl.KindUShort:
		i, err := jsonInt(v, 0, math.MaxUint16)
		if err != nil {
			return nil, err
		}
		return uint16(i), nil
	case idl.KindLong:
		i, err := jsonInt(v, math.MinInt32, math.MaxInt32)
		if err != nil {
			return nil, err
		}
		return int32(i), nil
	case idl.KindULong:
		i, err := jsonInt(v, 0, math.MaxUint32)
		if err != nil {
			return nil, err
		}
		return uint32(i), nil
	case idl.KindLongLong:
		i, err := jsonInt(v, math.MinInt64, math.MaxInt64)
		if err != nil {
			return nil, err
		}
		return i, nil
	case idl.KindULongLong:
		i, err := jsonInt(v, 0, math.MaxInt64)
		if err != nil {
			return nil, err
		}
		return uint64(i), nil
	case idl.KindFloat:
		f, ok := v.(float64)
		if !ok {
			return nil, badValue("expected number, got %s", jsonKind(v))
		}
		return float32(f), nil
	case idl.KindDouble:
		f, ok := v.(float64)
		if !ok {
			return nil, badValue("expected number, got %s", jsonKind(v))
		}
		return f, nil
	case idl.KindString:
		s, ok := v.(string)
		if !ok {
			return nil, badValue("expected string, got %s", jsonKind(v))
		}
		return s, nil
	case idl.KindEnum:
		// Either the symbolic label or the numeric ordinal.
		if s, ok := v.(string); ok {
			if ord, ok := rt.EnumOrdinal(s); ok {
				return ord, nil
			}
			return nil, badValue("enum %s has no label %q", rt.ScopedName(), s)
		}
		i, err := jsonInt(v, 0, int64(len(rt.Labels))-1)
		if err != nil {
			return nil, badValue("enum %s: %v", rt.ScopedName(), err)
		}
		return uint32(i), nil
	case idl.KindSequence:
		if rt.Elem.Resolve().Kind == idl.KindOctet {
			// encoding/json's []byte convention: base64 in a string.
			s, ok := v.(string)
			if !ok {
				return nil, badValue("expected base64 string for octet sequence, got %s", jsonKind(v))
			}
			b, err := base64.StdEncoding.DecodeString(s)
			if err != nil {
				return nil, badValue("bad base64 octet sequence: %v", err)
			}
			if rt.Bound > 0 && uint32(len(b)) > rt.Bound {
				return nil, badValue("sequence length %d exceeds bound %d", len(b), rt.Bound)
			}
			return b, nil
		}
		xs, ok := v.([]any)
		if !ok {
			return nil, badValue("expected array, got %s", jsonKind(v))
		}
		if rt.Bound > 0 && uint32(len(xs)) > rt.Bound {
			return nil, badValue("sequence length %d exceeds bound %d", len(xs), rt.Bound)
		}
		out := make([]any, len(xs))
		for i, x := range xs {
			c, err := jsonToIDL(rt.Elem, x)
			if err != nil {
				return nil, badValue("element %d: %v", i, err)
			}
			out[i] = c
		}
		return out, nil
	case idl.KindStruct, idl.KindException:
		m, ok := v.(map[string]any)
		if !ok {
			return nil, badValue("expected object for %s, got %s", rt.ScopedName(), jsonKind(v))
		}
		out := make(map[string]any, len(rt.Fields))
		for _, f := range rt.Fields {
			fv, present := m[f.Name]
			if !present {
				return nil, badValue("struct %s missing field %q", rt.ScopedName(), f.Name)
			}
			c, err := jsonToIDL(f.Type, fv)
			if err != nil {
				return nil, badValue("field %s: %v", f.Name, err)
			}
			out[f.Name] = c
		}
		if len(m) != len(rt.Fields) {
			for k := range m {
				known := false
				for _, f := range rt.Fields {
					if f.Name == k {
						known = true
						break
					}
				}
				if !known {
					return nil, badValue("struct %s has no field %q", rt.ScopedName(), k)
				}
			}
		}
		return out, nil
	case idl.KindObject, idl.KindInterface:
		s, ok := v.(string)
		if !ok {
			return nil, badValue("expected stringified IOR, got %s", jsonKind(v))
		}
		ref, err := ior.Parse(s)
		if err != nil {
			return nil, badValue("bad object reference: %v", err)
		}
		return ref, nil
	default:
		return nil, badValue("type %s is not representable in JSON", rt)
	}
}

// jsonInt extracts an integral number within [lo, hi]. JSON numbers
// arrive as float64, so magnitudes beyond 2^53 are not exactly
// representable; the gateway rejects the fractional and out-of-range
// rather than silently truncating.
func jsonInt(v any, lo, hi int64) (int64, error) {
	f, ok := v.(float64)
	if !ok {
		return 0, badValue("expected integer, got %s", jsonKind(v))
	}
	if f != math.Trunc(f) {
		return 0, badValue("expected integer, got fractional %v", f)
	}
	if f < float64(lo) || f > float64(hi) {
		return 0, badValue("integer %v out of range [%d, %d]", f, lo, hi)
	}
	return int64(f), nil
}

// idlToJSON converts a decoded reply value to a JSON-renderable tree:
// object references become stringified IORs, nested containers are
// walked, everything else marshals natively ([]byte as base64).
func idlToJSON(v any) any {
	switch x := v.(type) {
	case *ior.IOR:
		if x == nil || x.IsNil() {
			return nil
		}
		return x.String()
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = idlToJSON(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = idlToJSON(e)
		}
		return out
	default:
		return v
	}
}

// jsonKind names a decoded JSON value's type for diagnostics.
func jsonKind(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case []any:
		return "array"
	case map[string]any:
		return "object"
	case json.Number:
		return "number"
	default:
		return fmt.Sprintf("%T", v)
	}
}

package gateway

// BenchmarkGatewayRPS drives the full HTTP→JSON→CDR→IIOP→backend path
// at increasing client concurrency, uncached (every request crosses to
// the backend) and cached (idempotent op, one key — steady state serves
// from the sharded response cache). The bench-json gate (BENCH_9.json)
// holds an absolute RPS floor on the uncached C=64 point and a ≥3×
// cached/uncached ratio at the same concurrency, plus allocs/op
// ceilings, so HTTP-edge regressions fail CI the same way IIOP
// throughput regressions do.

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func benchGatewayRPS(b *testing.B, callers int, cached bool) {
	ttl := time.Duration(-1)
	if cached {
		ttl = time.Hour
	}
	tg := startGateway(b, Options{CacheTTL: ttl, MaxInFlight: 4 * callers})

	tr := &http.Transport{MaxIdleConns: callers + 8, MaxIdleConnsPerHost: callers + 8}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}
	// slow_echo models a backend with real service time (15ms): the
	// uncached path pays it on every request, the cached path only on
	// the fill, which is precisely the trade the response cache exists
	// for. Sleep-bound rather than CPU-bound, so the uncached floor is
	// stable across core counts.
	url := tg.ts.URL + "/obj/calc/slow_echo"

	call := func() error {
		resp, err := client.Post(url, "application/json", strings.NewReader(`["bench", 15]`))
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != 200 || !strings.Contains(string(raw), `"result":"bench"`) {
			return fmt.Errorf("status %d body %q", resp.StatusCode, raw)
		}
		return nil
	}
	// Warm the path: dial stripes, prime the cache, fill pools.
	for i := 0; i < 16; i++ {
		if err := call(); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	errs := make(chan error, callers)
	done := make(chan struct{})
	work := make(chan struct{}, callers)
	for g := 0; g < callers; g++ {
		go func() {
			for range work {
				if err := call(); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < b.N; i++ {
		work <- struct{}{}
	}
	close(work)
	for g := 0; g < callers; g++ {
		<-done
	}
	elapsed := time.Since(start)
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "rps")
}

func BenchmarkGatewayRPS(b *testing.B) {
	for _, mode := range []struct {
		name   string
		cached bool
	}{{"uncached", false}, {"cached", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for _, c := range []int{1, 8, 64, 256} {
				b.Run(fmt.Sprintf("C=%d", c), func(b *testing.B) {
					benchGatewayRPS(b, c, mode.cached)
				})
			}
		})
	}
}

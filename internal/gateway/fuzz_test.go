package gateway

// Fuzz the JSON→CDR translation edge: whatever body a client sends —
// malformed JSON, wrong arity, out-of-range integrals, misshapen nested
// structs — the gateway must answer a clean HTTP status with a JSON
// error body, never panic, never leak a pooled translation buffer, and
// never let a half-translated argument list reach the wire.

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"corbalc/internal/leak"
)

func FuzzGatewayTranslate(f *testing.F) {
	// The goroutine-leak check holds in seed-corpus mode (what CI runs);
	// the fuzz engine itself spawns a signal-handling goroutine that
	// would trip it under -fuzz.
	if fz := flag.Lookup("test.fuzz"); fz == nil || fz.Value.String() == "" {
		leak.Check(f)
	}
	tg := startGateway(f, Options{CacheTTL: -1})

	seeds := []struct {
		op   string
		body string
	}{
		{"add", `[1, 2]`},
		{"add", `{"a": 1, "b": 2}`},
		{"add", `{"a": 1`},           // truncated JSON
		{"add", `[1]`},               // wrong arity
		{"add", `[1, 2, 3]`},         // wrong arity
		{"add", `["x", 2]`},          // wrong type
		{"add", `[2.5, 2]`},          // fractional integral
		{"add", `[1e99, 2]`},         // out of range
		{"add", `[-2147483649, 0]`},  // just below long range
		{"add", `[null, null]`},      // nulls
		{"add", `{"a": 1, "zz": 2}`}, // unknown name
		{"mul", `[[1], 2]`},          // nested array where scalar due
		{"divmod", `[7, 0]`},         // user exception path
		{"dot", `{"p": {"x": 1, "y": 2}, "q": {"x": 3, "y": 4}}`},
		{"dot", `{"p": {"x": 1}, "q": {"x": 3, "y": 4}}`},                 // missing field
		{"dot", `{"p": {"x": 1, "y": 2, "z": 9}, "q": {"x": 0, "y": 0}}`}, // extra field
		{"dot", `[{"x": 1, "y": 2}, 7]`},                                  // struct position holds scalar
		{"_set_label", `[null]`},                                          // null where string due
		{"_get_calls", ``},                                                // empty body, zero args
		{"fire", `[]`},                                                    // oneway
		{"nosuch_op", `[]`},                                               // unknown operation
		{"add", `"just a string"`},                                        // not an argument list
		{"add", `{}`},                                                     // empty object
		{"add", "[1, 2]" + strings.Repeat(" ", 100)},                      // trailing space
	}
	for _, s := range seeds {
		f.Add(s.op, []byte(s.body))
	}

	// 405 covers op names like "." whose cleaned path lands on a route
	// registered for another method (DELETE /obj/{object}).
	allowed := map[int]bool{200: true, 202: true, 400: true, 404: true,
		405: true, 413: true, 500: true, 502: true, 503: true, 504: true}

	f.Fuzz(func(t *testing.T, op string, body []byte) {
		req, err := http.NewRequest(http.MethodPost,
			tg.ts.URL+"/obj/calc/"+url.PathEscape(op), strings.NewReader(string(body)))
		if err != nil {
			t.Skip() // op not expressible as a URL path segment
		}
		resp, err := tg.ts.Client().Do(req)
		if err != nil {
			t.Fatalf("op %q body %q: transport error %v (gateway must answer, not die)", op, body, err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("op %q body %q: reading response: %v", op, body, err)
		}
		if !allowed[resp.StatusCode] {
			t.Fatalf("op %q body %q: status %d outside the gateway's contract", op, body, resp.StatusCode)
		}
		// Every gateway-authored response declares and delivers JSON;
		// plain-text 404/405s for unroutable paths come from net/http's
		// mux itself.
		if ct := resp.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
			var v any
			if err := json.Unmarshal(raw, &v); err != nil {
				t.Fatalf("op %q body %q: non-JSON response %q", op, body, raw)
			}
		} else if resp.StatusCode != 404 && resp.StatusCode != 405 {
			t.Fatalf("op %q body %q: status %d without a JSON body (%q)", op, body, resp.StatusCode, raw)
		}
		if n := TransBufsInFlight(); n != 0 {
			t.Fatalf("op %q body %q: %d translation buffers leaked", op, body, n)
		}
	})
}

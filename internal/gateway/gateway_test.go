package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/idl"
	"corbalc/internal/iiop"
	"corbalc/internal/leak"
	"corbalc/internal/orb"
)

// demoIDL is the interface the gateway tests publish. mul, dot and
// slow_echo carry the `// idempotent` pragma (cacheable); add does not;
// the readonly attribute's implied _get_calls is idempotent by
// definition.
const demoIDL = `
module demo {
  exception Oops { string detail; long code; };
  struct Point { long x; long y; };

  interface Calc {
    readonly attribute long long calls;
    attribute string label;

    long add(in long a, in long b);
    // idempotent
    long mul(in long a, in long b);
    long divmod(in long a, in long b, out long remainder) raises (Oops);
    // idempotent
    long dot(in Point p, in Point q);
    // idempotent
    string slow_echo(in string s, in long delay_ms);
    oneway void fire();
  };
};
`

// demoServant implements demo::Calc by hand and counts per-operation
// dispatches, so cache tests can assert which calls reached the backend.
type demoServant struct {
	total     atomic.Int64
	addCalls  atomic.Int64
	mulCalls  atomic.Int64
	slowCalls atomic.Int64
	label     atomic.Value
}

func (s *demoServant) RepositoryID() string { return "IDL:demo/Calc:1.0" }

func (s *demoServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	s.total.Add(1)
	switch op {
	case "_get_calls":
		reply.WriteLongLong(s.total.Load())
		return nil
	case "_get_label":
		v, _ := s.label.Load().(string)
		reply.WriteString(v)
		return nil
	case "_set_label":
		v, err := args.ReadString()
		if err != nil {
			return err
		}
		s.label.Store(v)
		return nil
	case "add":
		s.addCalls.Add(1)
		a, err := args.ReadLong()
		if err != nil {
			return err
		}
		b, err := args.ReadLong()
		if err != nil {
			return err
		}
		reply.WriteLong(a + b)
		return nil
	case "mul":
		s.mulCalls.Add(1)
		a, err := args.ReadLong()
		if err != nil {
			return err
		}
		b, err := args.ReadLong()
		if err != nil {
			return err
		}
		reply.WriteLong(a * b)
		return nil
	case "divmod":
		a, err := args.ReadLong()
		if err != nil {
			return err
		}
		b, err := args.ReadLong()
		if err != nil {
			return err
		}
		if b == 0 {
			return &orb.UserException{
				ID: "IDL:demo/Oops:1.0",
				Payload: func(e *cdr.Encoder) {
					e.WriteString("division by zero")
					e.WriteLong(a)
				},
			}
		}
		reply.WriteLong(a / b)
		reply.WriteLong(a % b)
		return nil
	case "dot":
		var v [4]int32
		for i := range v {
			x, err := args.ReadLong()
			if err != nil {
				return err
			}
			v[i] = x
		}
		reply.WriteLong(v[0]*v[2] + v[1]*v[3])
		return nil
	case "slow_echo":
		s.slowCalls.Add(1)
		str, err := args.ReadString()
		if err != nil {
			return err
		}
		ms, err := args.ReadLong()
		if err != nil {
			return err
		}
		time.Sleep(time.Duration(ms) * time.Millisecond)
		reply.WriteString(str)
		return nil
	case "fire":
		return nil
	}
	return orb.BadOperation()
}

// testGateway wires servant → IIOP backend → gateway → httptest server.
type testGateway struct {
	ts      *httptest.Server
	gw      *Gateway
	servant *demoServant
	backend *orb.ORB
}

func startGateway(t testing.TB, opts Options) *testGateway {
	t.Helper()
	repo := idl.NewRepository()
	if err := repo.ParseString("demo.idl", demoIDL); err != nil {
		t.Fatal(err)
	}
	backend := orb.NewORB()
	srv, err := iiop.ListenAndActivate(backend, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	sv := &demoServant{}
	backend.Activate("calc", sv)

	client := orb.NewORB()
	client.RegisterTransport(&iiop.Transport{})
	t.Cleanup(client.Shutdown)

	opts.ORB = client
	opts.Repo = repo
	gw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ref := client.NewRef(backend.NewIOR("IDL:demo/Calc:1.0", "calc"))
	if err := gw.Register("calc", ref, "demo::Calc"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return &testGateway{ts: ts, gw: gw, servant: sv, backend: backend}
}

// call POSTs body to /obj/{object}/{op} and returns status, headers and
// the decoded JSON response.
func (tg *testGateway) call(t testing.TB, object, op, body string, hdr map[string]string) (int, http.Header, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, tg.ts.URL+"/obj/"+object+"/"+op, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := tg.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var payload map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &payload); err != nil {
			t.Fatalf("%s/%s: bad response JSON %q: %v", object, op, raw, err)
		}
	}
	return resp.StatusCode, resp.Header, payload
}

func wantResult(t testing.TB, status int, payload map[string]any, want float64) {
	t.Helper()
	if status != 200 {
		t.Fatalf("status = %d, payload %v", status, payload)
	}
	got, ok := payload["result"].(float64)
	if !ok || got != want {
		t.Fatalf("result = %v, want %v", payload["result"], want)
	}
}

func TestGatewayInvoke(t *testing.T) {
	leak.Check(t)
	tg := startGateway(t, Options{})

	// Positional and named arguments are both accepted.
	status, _, payload := tg.call(t, "calc", "add", `[2, 3]`, nil)
	wantResult(t, status, payload, 5)
	status, _, payload = tg.call(t, "calc", "add", `{"a": 20, "b": 22}`, nil)
	wantResult(t, status, payload, 42)

	// Nested struct parameters marshal through the dynamic layer.
	status, _, payload = tg.call(t, "calc", "dot",
		`{"p": {"x": 1, "y": 2}, "q": {"x": 3, "y": 4}}`, nil)
	wantResult(t, status, payload, 11)

	// Attribute accessors use their implied _get_/_set_ names.
	status, _, payload = tg.call(t, "calc", "_set_label", `["hello"]`, nil)
	if status != 200 {
		t.Fatalf("_set_label: status %d %v", status, payload)
	}
	status, _, payload = tg.call(t, "calc", "_get_label", ``, nil)
	if status != 200 || payload["result"] != "hello" {
		t.Fatalf("_get_label = %v (status %d), want hello", payload, status)
	}

	// Out parameters appear under "out" by name.
	status, _, payload = tg.call(t, "calc", "divmod", `[7, 2]`, nil)
	wantResult(t, status, payload, 3)
	outs, _ := payload["out"].(map[string]any)
	if outs["remainder"] != float64(1) {
		t.Fatalf("divmod out = %v, want remainder 1", payload["out"])
	}

	// A raised user exception arrives typed, as HTTP 500.
	status, _, payload = tg.call(t, "calc", "divmod", `[7, 0]`, nil)
	if status != 500 || payload["exception"] != "demo::Oops" {
		t.Fatalf("divmod by zero: status %d payload %v, want 500 demo::Oops", status, payload)
	}
	members, _ := payload["members"].(map[string]any)
	if members["detail"] != "division by zero" {
		t.Fatalf("exception members = %v", payload["members"])
	}

	// Oneway: accepted, no reply to wait for.
	status, _, _ = tg.call(t, "calc", "fire", ``, nil)
	if status != 202 {
		t.Fatalf("oneway fire: status %d, want 202", status)
	}

	// Routing errors.
	if status, _, _ = tg.call(t, "nosuch", "add", `[1,2]`, nil); status != 404 {
		t.Fatalf("unknown object: status %d, want 404", status)
	}
	if status, _, _ = tg.call(t, "calc", "nosuch", `[]`, nil); status != 404 {
		t.Fatalf("unknown operation: status %d, want 404", status)
	}
	resp, err := tg.ts.Client().Get(tg.ts.URL + "/obj/calc/add")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET on operation route: status %d, want 405", resp.StatusCode)
	}

	// Translation errors are clean 400s.
	for _, body := range []string{
		`{"a": 1`,           // malformed JSON
		`[1]`,               // wrong arity
		`[1, 2, 3]`,         // wrong arity
		`["x", 2]`,          // wrong type
		`[2.5, 2]`,          // fractional integral
		`[2147483648, 0]`,   // out of range for long
		`{"a": 1, "zz": 2}`, // unknown parameter name
		`{"a": 1}`,          // missing parameter
		`"just a string"`,   // not an argument list
	} {
		if status, _, _ = tg.call(t, "calc", "add", body, nil); status != 400 {
			t.Fatalf("body %q: status %d, want 400", body, status)
		}
	}

	if n := TransBufsInFlight(); n != 0 {
		t.Fatalf("TransBufsInFlight = %d after requests completed, want 0", n)
	}
}

// callIDRecorder observes server-side dispatches: the correlation ID and
// deadline the gateway propagated over IIOP.
type callIDRecorder struct {
	mu       sync.Mutex
	callIDs  []string
	deadline time.Time
}

func (r *callIDRecorder) ReceiveRequest(_ context.Context, info *orb.RequestInfo) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.callIDs = append(r.callIDs, info.CallID)
	r.deadline = info.Deadline
	return nil
}

func (r *callIDRecorder) SendReply(context.Context, *orb.RequestInfo) {}

func TestGatewayPropagatesCallIDAndDeadline(t *testing.T) {
	leak.Check(t)
	tg := startGateway(t, Options{})
	rec := &callIDRecorder{}
	tg.backend.AddServerInterceptor(rec)

	status, hdr, _ := tg.call(t, "calc", "add", `[1, 2]`, map[string]string{
		"X-Call-Id": "web-req-7",
	})
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	if got := hdr.Get("X-Call-Id"); got != "web-req-7" {
		t.Fatalf("X-Call-Id echoed = %q, want web-req-7", got)
	}
	rec.mu.Lock()
	ids, deadline := append([]string(nil), rec.callIDs...), rec.deadline
	rec.mu.Unlock()
	if len(ids) != 1 || ids[0] != "web-req-7" {
		t.Fatalf("backend saw call IDs %v, want [web-req-7]", ids)
	}
	if deadline.IsZero() {
		t.Fatal("backend saw no deadline; gateway must propagate its call budget as SvcDeadline")
	}

	// Without a client-supplied ID the gateway mints one and echoes it.
	_, hdr, _ = tg.call(t, "calc", "add", `[1, 2]`, nil)
	if hdr.Get("X-Call-Id") == "" {
		t.Fatal("gateway did not mint an X-Call-Id")
	}

	// A tiny client budget must surface as 504, not a hang.
	status, _, _ = tg.call(t, "calc", "slow_echo", `["hi", 2000]`, map[string]string{
		"X-Timeout-Ms": "60",
	})
	if status != 504 {
		t.Fatalf("deadline overrun: status %d, want 504", status)
	}
}

func TestGatewayCache(t *testing.T) {
	leak.Check(t)
	tg := startGateway(t, Options{CacheTTL: time.Minute})

	// First idempotent call misses, second hits; the backend sees one.
	status, hdr, payload := tg.call(t, "calc", "mul", `[6, 7]`, nil)
	wantResult(t, status, payload, 42)
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first mul: X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}
	status, hdr, payload = tg.call(t, "calc", "mul", `[6, 7]`, nil)
	wantResult(t, status, payload, 42)
	if hdr.Get("X-Cache") != "hit" {
		t.Fatalf("second mul: X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}
	if n := tg.servant.mulCalls.Load(); n != 1 {
		t.Fatalf("backend mul calls = %d, want 1 (cache must absorb the repeat)", n)
	}

	// JSON spelling does not split the cache: named args and positional
	// args canonicalise to the same CDR key.
	_, hdr, _ = tg.call(t, "calc", "mul", `{"a": 6, "b": 7}`, nil)
	if hdr.Get("X-Cache") != "hit" {
		t.Fatalf("named-args mul: X-Cache = %q, want hit (canonical key)", hdr.Get("X-Cache"))
	}
	// Different arguments are a different entry.
	_, hdr, payload = tg.call(t, "calc", "mul", `[2, 2]`, nil)
	if hdr.Get("X-Cache") != "miss" || payload["result"] != float64(4) {
		t.Fatalf("mul(2,2): X-Cache %q result %v", hdr.Get("X-Cache"), payload["result"])
	}

	// Non-idempotent operations bypass the cache and invalidate reads.
	_, hdr, _ = tg.call(t, "calc", "add", `[1, 1]`, nil)
	if hdr.Get("X-Cache") != "" {
		t.Fatalf("add: X-Cache = %q, want unset (not cacheable)", hdr.Get("X-Cache"))
	}
	_, hdr, _ = tg.call(t, "calc", "mul", `[6, 7]`, nil)
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("mul after mutation: X-Cache = %q, want miss (generation bumped)", hdr.Get("X-Cache"))
	}

	// Explicit invalidation: DELETE /obj/{object}.
	_, _, _ = tg.call(t, "calc", "mul", `[6, 7]`, nil) // re-prime
	req, _ := http.NewRequest(http.MethodDelete, tg.ts.URL+"/obj/calc", nil)
	resp, err := tg.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("DELETE /obj/calc: status %d, want 204", resp.StatusCode)
	}
	_, hdr, _ = tg.call(t, "calc", "mul", `[6, 7]`, nil)
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("mul after DELETE: X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}

	// Errors are not cached: divide-by-zero twice reaches the backend
	// twice. (divmod is not idempotent anyway; use _get_calls, which is,
	// to show error paths on idempotent ops also skip storage — here the
	// easiest check is simply that a cached op still works after.)
	if n := TransBufsInFlight(); n != 0 {
		t.Fatalf("TransBufsInFlight = %d, want 0", n)
	}
}

func TestGatewayCacheDisabled(t *testing.T) {
	leak.Check(t)
	tg := startGateway(t, Options{CacheTTL: -1})
	for i := 0; i < 2; i++ {
		_, hdr, _ := tg.call(t, "calc", "mul", `[3, 3]`, nil)
		if hdr.Get("X-Cache") != "" {
			t.Fatalf("X-Cache = %q with caching disabled", hdr.Get("X-Cache"))
		}
	}
	if n := tg.servant.mulCalls.Load(); n != 2 {
		t.Fatalf("backend mul calls = %d, want 2 (no cache)", n)
	}
}

func TestGatewayCacheTTLExpiry(t *testing.T) {
	leak.Check(t)
	tg := startGateway(t, Options{CacheTTL: 30 * time.Millisecond})
	_, hdr, _ := tg.call(t, "calc", "mul", `[5, 5]`, nil)
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("prime: X-Cache %q", hdr.Get("X-Cache"))
	}
	_, hdr, _ = tg.call(t, "calc", "mul", `[5, 5]`, nil)
	if hdr.Get("X-Cache") != "hit" {
		t.Fatalf("within TTL: X-Cache %q", hdr.Get("X-Cache"))
	}
	time.Sleep(60 * time.Millisecond)
	_, hdr, _ = tg.call(t, "calc", "mul", `[5, 5]`, nil)
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("after TTL: X-Cache %q, want miss", hdr.Get("X-Cache"))
	}
}

func TestGatewayCacheSingleflight(t *testing.T) {
	leak.Check(t)
	tg := startGateway(t, Options{CacheTTL: time.Minute})

	// A miss storm on one key must reach the backend once: the leader
	// fills, the followers ride its flight.
	const N = 8
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost,
				tg.ts.URL+"/obj/calc/slow_echo", strings.NewReader(`["storm", 100]`))
			if err != nil {
				errs <- err
				return
			}
			resp, err := tg.ts.Client().Do(req)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != 200 || !strings.Contains(string(body), "storm") {
				errs <- fmt.Errorf("status %d body %q", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := tg.servant.slowCalls.Load(); n != 1 {
		t.Fatalf("backend slow_echo calls = %d, want 1 (singleflight)", n)
	}
}

func TestGatewayAdmissionBound(t *testing.T) {
	leak.Check(t)
	tg := startGateway(t, Options{MaxInFlight: 2, CacheTTL: -1})

	const N = 10
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct bodies so no two requests could share anything.
			body := fmt.Sprintf(`["r%d", 150]`, i)
			req, err := http.NewRequest(http.MethodPost,
				tg.ts.URL+"/obj/calc/slow_echo", strings.NewReader(body))
			if err != nil {
				return
			}
			resp, err := tg.ts.Client().Do(req)
			if err != nil {
				return
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case 200:
				ok.Add(1)
			case 503:
				rejected.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if rejected.Load() == 0 {
		t.Fatalf("no 503s from a %d-deep storm over MaxInFlight=2", N)
	}
	if ok.Load() == 0 {
		t.Fatal("every request rejected; admitted ones must still complete")
	}
	if got := ok.Load() + rejected.Load(); got != N {
		t.Fatalf("accounted %d of %d requests (others hit transport errors?)", got, N)
	}
	m := tg.gw.Metrics()
	if m.Rejected == 0 {
		t.Fatalf("Metrics.Rejected = 0, want > 0")
	}
	if n := TransBufsInFlight(); n != 0 {
		t.Fatalf("TransBufsInFlight = %d, want 0", n)
	}
}

func TestGatewayMetrics(t *testing.T) {
	leak.Check(t)
	tg := startGateway(t, Options{CacheTTL: time.Minute})
	tg.call(t, "calc", "mul", `[2, 3]`, nil)
	tg.call(t, "calc", "mul", `[2, 3]`, nil)
	tg.call(t, "calc", "add", `[1, 1]`, nil)
	tg.call(t, "calc", "divmod", `[1, 0]`, nil)

	resp, err := tg.ts.Client().Get(tg.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	rt, ok := m.Routes["calc"]
	if !ok {
		t.Fatalf("metrics missing route calc: %+v", m)
	}
	if rt.Interface != "demo::Calc" {
		t.Fatalf("route interface = %q", rt.Interface)
	}
	mul := rt.Ops["mul"]
	if mul.Requests != 2 || mul.CacheHits != 1 || mul.CacheMisses != 1 {
		t.Fatalf("mul metrics = %+v, want 2 requests, 1 hit, 1 miss", mul)
	}
	if rt.Ops["add"].Requests != 1 {
		t.Fatalf("add metrics = %+v", rt.Ops["add"])
	}
	if rt.Ops["divmod"].Errors != 1 {
		t.Fatalf("divmod metrics = %+v, want 1 error", rt.Ops["divmod"])
	}
}

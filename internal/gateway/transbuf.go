package gateway

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"corbalc/internal/bufpool"
)

// TransBuf is the pooled per-request JSON↔CDR translation state: the
// request-body read buffer (size-classed, from internal/bufpool) and the
// decoded-argument scratch slice. One TransBuf serves one HTTP request;
// steady state allocates nothing for buffer management. TransBufs follow
// the repo's single-owner release discipline — the acquirer must call
// Release exactly once (enforced by the poolreturn analyzer).
type TransBuf struct {
	body []byte // pooled request-body bytes; nil until readBody
	args []any  // converted in-parameters, reused across requests
	key  []byte // cache-key scratch, reused across requests
}

var transBufPool = sync.Pool{New: func() any { return new(TransBuf) }}

// transBufsInFlight counts acquired-but-unreleased TransBufs so tests
// can assert the fuzz and failover storms leak no pooled buffers.
var transBufsInFlight atomic.Int64

// GetTransBuf returns a translation buffer from the pool. The caller
// owns it and must Release it when the request is done.
func GetTransBuf() *TransBuf {
	transBufsInFlight.Add(1)
	return transBufPool.Get().(*TransBuf)
}

// Release returns the buffer (and its pooled body bytes) to the pool.
func (t *TransBuf) Release() {
	if t.body != nil {
		bufpool.Put(t.body)
		t.body = nil
	}
	clear(t.args) // drop value references so the pool pins nothing
	t.args = t.args[:0]
	t.key = t.key[:0]
	transBufsInFlight.Add(-1)
	transBufPool.Put(t)
}

// TransBufsInFlight reports the number of acquired-but-unreleased
// translation buffers (zero when the gateway is idle).
func TransBufsInFlight() int64 { return transBufsInFlight.Load() }

// errBodyTooLarge aborts reads past the configured request-body bound.
var errBodyTooLarge = errors.New("gateway: request body exceeds limit")

// readBody reads r (at most max bytes) into the pooled body buffer and
// returns the filled slice. The bytes stay owned by the TransBuf.
func (t *TransBuf) readBody(r io.Reader, contentLength int64, max int) ([]byte, error) {
	if contentLength > int64(max) {
		return nil, errBodyTooLarge
	}
	hint := 512
	if contentLength > 0 {
		hint = int(contentLength)
	}
	if t.body == nil {
		t.body = bufpool.Get(hint)
	}
	buf := t.body[:0]
	for {
		if len(buf) == cap(buf) {
			if len(buf) >= max {
				t.body = buf
				return nil, errBodyTooLarge
			}
			grown := bufpool.Get(2 * cap(buf))
			buf = append(grown[:0], buf...)
			bufpool.Put(t.body)
			t.body = grown
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		t.body = buf
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

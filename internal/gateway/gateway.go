// Package gateway maps IDL interfaces to an HTTP/1.1+JSON front end at
// runtime: POST /obj/{object}/{operation} resolves the target object in
// the gateway's route table, looks the operation up in the parsed
// interface repository (internal/idl), converts the JSON request body to
// CDR through DII and invokes the backend over the ORB's striped IIOP
// channel pool — no generated stubs, no per-interface handler code. The
// client-facing deadline (X-Timeout-Ms) becomes the server-side IIOP
// deadline and one correlation ID (X-Call-Id) travels end to end, so the
// interceptor chain observes web calls exactly like native ones.
//
// The hot path is engineered like the rest of the stack: pooled
// translation buffers (TransBuf over internal/bufpool), a sharded
// singleflight response cache for idempotent operations, and bounded
// in-flight admission that refuses overload with 503 the way the IIOP
// dispatch queue refuses with TRANSIENT.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/dii"
	"corbalc/internal/idl"
	"corbalc/internal/orb"
	"corbalc/internal/svcctx"
)

// Defaults for the Options knobs (README "Web gateway" tuning table).
const (
	DefaultMaxInFlight = 256
	DefaultCacheTTL    = 2 * time.Second
	DefaultCacheShards = 16
	DefaultMaxBody     = 1 << 20
	DefaultCallTimeout = 10 * time.Second
)

// Options configures a Gateway. Zero values select the documented
// defaults; negative values disable where noted.
type Options struct {
	// ORB performs the backend invocations. It must have the client
	// transports registered (iiop.Transport for TCP backends).
	ORB *orb.ORB
	// Repo is the parsed interface repository routes resolve
	// operations against.
	Repo *idl.Repository
	// MaxInFlight bounds concurrently-handled requests; overflow is
	// refused with 503, mirroring the IIOP dispatch queue's TRANSIENT
	// (default 256; negative means unbounded).
	MaxInFlight int
	// CacheTTL is how long idempotent responses stay servable from the
	// cache (default 2s; negative disables caching).
	CacheTTL time.Duration
	// CacheShards is the response-cache shard count (default 16).
	CacheShards int
	// MaxBody bounds one request body in bytes (default 1 MiB).
	MaxBody int
	// CallTimeout is the backend deadline applied when the client sends
	// no X-Timeout-Ms header (default 10s; negative means none).
	CallTimeout time.Duration
}

// Gateway is the HTTP front end. Routes are a copy-on-write map (reads
// on the request path are lock-free); registration is rare and goes
// through routeMu.
type Gateway struct {
	orb  *orb.ORB
	repo *idl.Repository

	routes  atomic.Pointer[map[string]*route]
	routeMu sync.Mutex

	cache       *cache
	sem         chan struct{} // admission slots; nil = unbounded
	maxInFlight int
	maxBody     int
	callTimeout time.Duration

	inFlight atomic.Int64
	rejected atomic.Uint64
}

// route is one published object: its typed DII handle plus the cache
// generation (bumped on writes and explicit invalidation, so stale
// cached reads stop matching) and per-operation counters.
type route struct {
	name  string
	obj   *dii.Object
	gen   atomic.Uint64
	ops   atomic.Pointer[map[string]*opStats]
	opsMu sync.Mutex
}

// New builds a gateway from opts.
func New(opts Options) (*Gateway, error) {
	if opts.ORB == nil {
		return nil, errors.New("gateway: Options.ORB is required")
	}
	if opts.Repo == nil {
		return nil, errors.New("gateway: Options.Repo is required")
	}
	g := &Gateway{orb: opts.ORB, repo: opts.Repo}
	g.maxInFlight = opts.MaxInFlight
	if g.maxInFlight == 0 {
		g.maxInFlight = DefaultMaxInFlight
	}
	if g.maxInFlight > 0 {
		g.sem = make(chan struct{}, g.maxInFlight)
	}
	ttl := opts.CacheTTL
	if ttl == 0 {
		ttl = DefaultCacheTTL
	}
	if ttl > 0 {
		shards := opts.CacheShards
		if shards == 0 {
			shards = DefaultCacheShards
		}
		g.cache = newCache(shards, ttl)
	}
	g.maxBody = opts.MaxBody
	if g.maxBody <= 0 {
		g.maxBody = DefaultMaxBody
	}
	g.callTimeout = opts.CallTimeout
	if g.callTimeout == 0 {
		g.callTimeout = DefaultCallTimeout
	}
	empty := make(map[string]*route)
	g.routes.Store(&empty)
	return g, nil
}

// Register publishes ref under /obj/{name}, typed by the named interface
// (a scoped name like "demo::Calc" or a repository ID "IDL:demo/Calc:1.0").
func (g *Gateway) Register(name string, ref *orb.ObjectRef, iface string) error {
	if name == "" {
		return errors.New("gateway: route name must be non-empty")
	}
	t, ok := g.repo.LookupByRepoID(iface)
	if !ok {
		t, ok = g.repo.LookupType(iface)
	}
	if !ok {
		return fmt.Errorf("gateway: repository has no interface %q", iface)
	}
	obj, err := dii.Bind(ref, t)
	if err != nil {
		return err
	}
	rt := &route{name: name, obj: obj}
	emptyOps := make(map[string]*opStats)
	rt.ops.Store(&emptyOps)

	g.routeMu.Lock()
	defer g.routeMu.Unlock()
	cur := *g.routes.Load()
	next := make(map[string]*route, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[name] = rt
	g.routes.Store(&next)
	return nil
}

// RegisterIOR is Register for a stringified object reference
// (IOR:… hex or corbaloc:…).
func (g *Gateway) RegisterIOR(name, iorStr, iface string) error {
	ref, err := g.orb.ResolveStr(iorStr)
	if err != nil {
		return fmt.Errorf("gateway: route %q: %w", name, err)
	}
	return g.Register(name, ref, iface)
}

func (g *Gateway) route(name string) (*route, bool) {
	rt, ok := (*g.routes.Load())[name]
	return rt, ok
}

// Handler returns the gateway's HTTP handler:
//
//	POST   /obj/{object}/{operation}  invoke
//	DELETE /obj/{object}              invalidate the object's cached reads
//	GET    /metrics                   per-route counters (JSON)
//	GET    /healthz                   liveness
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /obj/{object}/{operation}", g.handleInvoke)
	mux.HandleFunc("DELETE /obj/{object}", g.handleInvalidate)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// handleInvoke is the request hot path.
func (g *Gateway) handleInvoke(w http.ResponseWriter, r *http.Request) {
	// Admission first: under overload the cheapest possible refusal,
	// before any per-request resources are touched.
	if g.sem != nil {
		select {
		case g.sem <- struct{}{}:
			defer func() { <-g.sem }()
		default:
			g.rejected.Add(1)
			writeError(w, http.StatusServiceUnavailable, "gateway saturated: too many in-flight requests", "TRANSIENT")
			return
		}
	}
	g.inFlight.Add(1)
	defer g.inFlight.Add(-1)

	rt, ok := g.route(r.PathValue("object"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such object: "+r.PathValue("object"), "")
		return
	}
	opName := r.PathValue("operation")
	sig, ok := rt.obj.Signature(opName)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("interface %s has no operation %q", rt.obj.Iface.ScopedName(), opName), "")
		return
	}
	st := rt.op(opName)
	st.requests.Add(1)
	start := time.Now()

	tb := GetTransBuf()
	defer tb.Release()

	body, err := tb.readBody(r.Body, r.ContentLength, g.maxBody)
	if err != nil {
		st.errors.Add(1)
		if errors.Is(err, errBodyTooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", g.maxBody), "")
		} else {
			writeError(w, http.StatusBadRequest, "reading request body: "+err.Error(), "")
		}
		return
	}
	if err := decodeArgs(tb, body, sig); err != nil {
		st.errors.Add(1)
		writeError(w, http.StatusBadRequest, err.Error(), "")
		return
	}

	// Deadline and correlation: the HTTP client's budget becomes the
	// IIOP deadline (svcctx injects ctx's deadline as SvcDeadline), and
	// one call ID spans browser → gateway → backend interceptors.
	ctx := r.Context()
	timeout := g.callTimeout
	if h := r.Header.Get("X-Timeout-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			st.errors.Add(1)
			writeError(w, http.StatusBadRequest, "bad X-Timeout-Ms: "+h, "")
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	callID := r.Header.Get("X-Call-Id")
	if callID == "" {
		callID = svcctx.NewCallID()
	}
	ctx = svcctx.WithCallID(ctx, callID)
	w.Header().Set("X-Call-Id", callID)

	if g.cache != nil && sig.Op.Idempotent {
		g.invokeCached(ctx, w, rt, st, sig, opName, tb, start)
		return
	}

	status, respBody := g.invoke(ctx, rt, st, sig, opName, tb.args)
	// A completed mutation invalidates the object's cached reads:
	// bumping the generation makes every stored key stale at once.
	if status < 400 && g.cache != nil {
		rt.gen.Add(1)
	}
	st.micros.Add(uint64(time.Since(start).Microseconds()))
	writeBody(w, status, respBody)
}

// invokeCached serves an idempotent operation through the sharded
// singleflight cache, keyed on (object, generation, operation,
// CDR-canonical arguments).
func (g *Gateway) invokeCached(ctx context.Context, w http.ResponseWriter, rt *route, st *opStats, sig *dii.Signature, opName string, tb *TransBuf, start time.Time) {
	key, err := cacheKey(rt, opName, sig, tb)
	if err != nil {
		st.errors.Add(1)
		writeError(w, http.StatusBadRequest, err.Error(), "")
		return
	}
	res, err := g.cache.do(ctx, key, func() (int, []byte) {
		return g.invoke(ctx, rt, st, sig, opName, tb.args)
	})
	if err != nil {
		// Follower abandoned by its own deadline while the leader was
		// still filling.
		st.errors.Add(1)
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded: "+err.Error(), "TIMEOUT")
		return
	}
	if res.hit {
		st.cacheHits.Add(1)
		w.Header().Set("X-Cache", "hit")
	} else {
		st.cacheMisses.Add(1)
		w.Header().Set("X-Cache", "miss")
	}
	st.micros.Add(uint64(time.Since(start).Microseconds()))
	writeBody(w, res.status, res.body)
}

// cacheKey canonicalises the converted arguments through the same CDR
// encoding the wire uses, so JSON spellings of one logical argument list
// ({"a":1} vs [1], 1 vs 1.0) share a cache entry.
func cacheKey(rt *route, opName string, sig *dii.Signature, tb *TransBuf) (string, error) {
	e := getKeyEncoder()
	defer putKeyEncoder(e)
	for i, p := range sig.In {
		if err := idl.Encode(e, p.Type, tb.args[i]); err != nil {
			return "", badValue("parameter %s: %v", p.Name, err)
		}
	}
	k := tb.key[:0]
	k = append(k, rt.name...)
	k = append(k, 0)
	k = append(k, opName...)
	k = append(k, 0)
	k = strconv.AppendUint(k, rt.gen.Load(), 16)
	k = append(k, 0)
	k = append(k, e.Bytes()...)
	tb.key = k
	return string(k), nil
}

var keyEncoderPool = sync.Pool{New: func() any { return cdr.NewEncoder(cdr.LittleEndian) }}

func getKeyEncoder() *cdr.Encoder {
	e := keyEncoderPool.Get().(*cdr.Encoder)
	e.Reset(cdr.LittleEndian, 0)
	return e
}

func putKeyEncoder(e *cdr.Encoder) { keyEncoderPool.Put(e) }

// invoke performs the backend call and renders the response, returning
// (status, body). The body is freshly allocated (cache entries retain it).
func (g *Gateway) invoke(ctx context.Context, rt *route, st *opStats, sig *dii.Signature, opName string, args []any) (int, []byte) {
	res, err := rt.obj.CallContext(ctx, opName, args...)
	if err != nil {
		st.errors.Add(1)
		return renderError(err)
	}
	if sig.Op.Oneway {
		return http.StatusAccepted, []byte("{}\n")
	}
	return renderResult(res)
}

// handleInvalidate drops the object's cached responses by bumping its
// generation (DELETE /obj/{object}).
func (g *Gateway) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.route(r.PathValue("object"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such object: "+r.PathValue("object"), "")
		return
	}
	rt.gen.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// decodeArgs parses the JSON body into the operation's in-parameters:
// either a positional array or an object keyed by parameter name. An
// empty body means no arguments.
func decodeArgs(tb *TransBuf, body []byte, sig *dii.Signature) error {
	tb.args = tb.args[:0]
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) == 0 {
		if len(sig.In) != 0 {
			return badValue("operation %s takes %d argument(s), got an empty body", sig.Op.Name, len(sig.In))
		}
		return nil
	}
	var raw any
	if err := json.Unmarshal(trimmed, &raw); err != nil {
		return badValue("bad JSON: %v", err)
	}
	switch x := raw.(type) {
	case []any:
		if len(x) != len(sig.In) {
			return badValue("operation %s takes %d argument(s), got %d", sig.Op.Name, len(sig.In), len(x))
		}
		for i, p := range sig.In {
			v, err := jsonToIDL(p.Type, x[i])
			if err != nil {
				return badValue("argument %d (%s): %v", i, p.Name, err)
			}
			tb.args = append(tb.args, v)
		}
	case map[string]any:
		if len(x) != len(sig.In) {
			for k := range x {
				known := false
				for _, p := range sig.In {
					if p.Name == k {
						known = true
						break
					}
				}
				if !known {
					return badValue("operation %s has no in-parameter %q", sig.Op.Name, k)
				}
			}
		}
		for _, p := range sig.In {
			pv, present := x[p.Name]
			if !present {
				return badValue("operation %s missing argument %q", sig.Op.Name, p.Name)
			}
			v, err := jsonToIDL(p.Type, pv)
			if err != nil {
				return badValue("argument %s: %v", p.Name, err)
			}
			tb.args = append(tb.args, v)
		}
	default:
		return badValue("expected a JSON array or object of arguments, got %s", jsonKind(raw))
	}
	return nil
}

// renderResult encodes a successful invocation: {"result": ..., "out": {...}}.
func renderResult(res *dii.Result) (int, []byte) {
	payload := make(map[string]any, 2)
	if res.Return != nil {
		payload["result"] = idlToJSON(res.Return)
	}
	if len(res.Out) > 0 {
		outs := make(map[string]any, len(res.Out))
		for k, v := range res.Out {
			outs[k] = idlToJSON(v)
		}
		payload["out"] = outs
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return http.StatusInternalServerError, []byte(`{"error":"encoding response"}`)
	}
	return http.StatusOK, append(b, '\n')
}

// renderError maps an invocation failure onto HTTP, preserving the CORBA
// exception taxonomy: timeouts are 504, overload 503, other system
// exceptions 502 (the backend, not this gateway, failed), user
// exceptions 500 with their decoded members.
func renderError(err error) (int, []byte) {
	var te *translateError
	if errors.As(err, &te) {
		return errorBody(http.StatusBadRequest, te.msg, "")
	}
	if errors.Is(err, dii.ErrNoOperation) {
		return errorBody(http.StatusNotFound, err.Error(), "")
	}
	if errors.Is(err, dii.ErrArity) {
		return errorBody(http.StatusBadRequest, err.Error(), "")
	}
	var ue *dii.Exception
	if errors.As(err, &ue) {
		payload := map[string]any{
			"error":     "user exception",
			"exception": ue.Type.ScopedName(),
			"members":   idlToJSON(any(ue.Members)),
		}
		b, merr := json.Marshal(payload)
		if merr != nil {
			return errorBody(http.StatusInternalServerError, ue.Error(), "")
		}
		return http.StatusInternalServerError, append(b, '\n')
	}
	var se *orb.SystemException
	if errors.As(err, &se) {
		switch se.Name {
		case "TIMEOUT":
			return errorBody(http.StatusGatewayTimeout, err.Error(), se.Name)
		case "TRANSIENT":
			return errorBody(http.StatusServiceUnavailable, err.Error(), se.Name)
		default:
			return errorBody(http.StatusBadGateway, err.Error(), se.Name)
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return errorBody(http.StatusGatewayTimeout, err.Error(), "TIMEOUT")
	}
	return errorBody(http.StatusBadGateway, err.Error(), "")
}

func errorBody(status int, msg, corba string) (int, []byte) {
	payload := make(map[string]any, 2)
	payload["error"] = msg
	if corba != "" {
		payload["corba"] = corba
	}
	b, err := json.Marshal(payload)
	if err != nil {
		b = []byte(`{"error":"internal"}`)
	}
	return status, append(b, '\n')
}

func writeError(w http.ResponseWriter, status int, msg, corba string) {
	_, body := errorBody(status, msg, corba)
	writeBody(w, status, body)
}

func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

package gateway

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// opStats is one route+operation's counter block. All fields are
// atomics: the hot path bumps them lock-free.
type opStats struct {
	requests    atomic.Uint64
	errors      atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	micros      atomic.Uint64 // summed wall time of completed requests
}

// op returns the stats block for an operation, creating it through the
// route's copy-on-write ops map (lock-free reads on the hot path,
// clone-and-publish on first sight of an operation).
func (rt *route) op(name string) *opStats {
	if m := rt.ops.Load(); m != nil {
		if st, ok := (*m)[name]; ok {
			return st
		}
	}
	rt.opsMu.Lock()
	defer rt.opsMu.Unlock()
	cur := *rt.ops.Load()
	if st, ok := cur[name]; ok {
		return st
	}
	st := new(opStats)
	next := make(map[string]*opStats, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[name] = st
	rt.ops.Store(&next)
	return st
}

// Metrics is the gateway-wide counter snapshot GET /metrics serves and
// corbalc-admin's `gateway` subcommand renders.
type Metrics struct {
	InFlight    int64                   `json:"in_flight"`
	MaxInFlight int                     `json:"max_in_flight"`
	Rejected    uint64                  `json:"rejected"`
	TransBufs   int64                   `json:"trans_bufs_in_flight"`
	Routes      map[string]RouteMetrics `json:"routes"`
}

// RouteMetrics is one published object's snapshot.
type RouteMetrics struct {
	Interface  string               `json:"interface"`
	Generation uint64               `json:"generation"`
	Ops        map[string]OpMetrics `json:"ops,omitempty"`
}

// OpMetrics is one operation's counters.
type OpMetrics struct {
	Requests    uint64 `json:"requests"`
	Errors      uint64 `json:"errors"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	AvgMicros   uint64 `json:"avg_micros"`
}

// Metrics snapshots the gateway's counters.
func (g *Gateway) Metrics() Metrics {
	m := Metrics{
		InFlight:    g.inFlight.Load(),
		MaxInFlight: g.maxInFlight,
		Rejected:    g.rejected.Load(),
		TransBufs:   TransBufsInFlight(),
		Routes:      make(map[string]RouteMetrics),
	}
	for name, rt := range *g.routes.Load() {
		rm := RouteMetrics{
			Interface:  rt.obj.Iface.ScopedName(),
			Generation: rt.gen.Load(),
			Ops:        make(map[string]OpMetrics),
		}
		for opName, st := range *rt.ops.Load() {
			om := OpMetrics{
				Requests:    st.requests.Load(),
				Errors:      st.errors.Load(),
				CacheHits:   st.cacheHits.Load(),
				CacheMisses: st.cacheMisses.Load(),
			}
			if om.Requests > 0 {
				om.AvgMicros = st.micros.Load() / om.Requests
			}
			rm.Ops[opName] = om
		}
		m.Routes[name] = rm
	}
	return m
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	b, err := json.MarshalIndent(g.Metrics(), "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding metrics", "")
		return
	}
	writeBody(w, http.StatusOK, append(b, '\n'))
}

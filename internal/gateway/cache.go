package gateway

import (
	"context"
	"hash/maphash"
	"sync"
	"time"
)

// cache is the sharded idempotent-response cache. Keys carry the route's
// generation counter, so invalidation is an O(1) generation bump — stale
// entries simply stop matching and age out by TTL. Each shard collapses
// concurrent misses on the same key into one backend call (singleflight):
// under a miss storm the backend sees one invocation per (key, TTL
// window), not one per client.
type cache struct {
	ttl    time.Duration
	shards []cacheShard
	seed   maphash.Seed
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	flights map[string]*flight
}

type cacheEntry struct {
	status int
	body   []byte
	exp    time.Time
}

// flight is one in-progress fill: followers wait on done and read the
// result fields afterwards (written once, before close).
type flight struct {
	done   chan struct{}
	status int
	body   []byte
}

// shardSweepLimit bounds a shard's entry map: inserts past the limit
// sweep expired entries first, so an adversarial key stream cannot grow
// the map without bound.
const shardSweepLimit = 4096

func newCache(shards int, ttl time.Duration) *cache {
	if shards <= 0 {
		shards = 16
	}
	c := &cache{ttl: ttl, shards: make([]cacheShard, shards), seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]cacheEntry)
		c.shards[i].flights = make(map[string]*flight)
	}
	return c
}

func (c *cache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// cacheResult is what a lookup resolves to: the response and whether it
// was served without invoking the backend (a stored entry or a followed
// flight).
type cacheResult struct {
	status int
	body   []byte
	hit    bool
}

// do returns the cached response for key, or runs fill (as singleflight
// leader) to produce it. Followers block until the leader resolves or
// their own ctx gives up. Only 200 responses are stored; whatever the
// leader produces is still delivered to its followers (they asked the
// same question and would have failed the same way).
func (c *cache) do(ctx context.Context, key string, fill func() (int, []byte)) (cacheResult, error) {
	sh := c.shard(key)
	res, fl, leader := sh.acquire(key)
	if fl == nil {
		return res, nil
	}
	if !leader {
		select {
		case <-fl.done:
			return cacheResult{status: fl.status, body: fl.body, hit: true}, nil
		case <-ctx.Done():
			return cacheResult{}, ctx.Err()
		}
	}
	fl.status, fl.body = fill()
	close(fl.done)
	sh.settle(key, fl, c.ttl)
	return cacheResult{status: fl.status, body: fl.body, hit: false}, nil
}

// acquire resolves key under the shard lock: a live entry (fl == nil),
// an in-progress flight to follow (leader == false), or a freshly
// registered flight this caller must fill (leader == true).
func (sh *cacheShard) acquire(key string) (cacheResult, *flight, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok {
		if time.Now().Before(e.exp) {
			return cacheResult{status: e.status, body: e.body, hit: true}, nil, false
		}
		delete(sh.entries, key)
	}
	if fl, ok := sh.flights[key]; ok {
		return cacheResult{}, fl, false
	}
	fl := &flight{done: make(chan struct{})}
	sh.flights[key] = fl
	return cacheResult{}, fl, true
}

// settle retires a completed flight and stores its response when it is
// cacheable (status 200 and a positive TTL).
func (sh *cacheShard) settle(key string, fl *flight, ttl time.Duration) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.flights, key)
	if fl.status != 200 || ttl <= 0 {
		return
	}
	if len(sh.entries) >= shardSweepLimit {
		now := time.Now()
		for k, e := range sh.entries {
			if !now.Before(e.exp) {
				delete(sh.entries, k)
			}
		}
		if len(sh.entries) >= shardSweepLimit {
			return // still full of live entries: let this one go
		}
	}
	sh.entries[key] = cacheEntry{status: fl.status, body: fl.body, exp: time.Now().Add(ttl)}
}

package gateway

// Gateway failover: when the IIOP backend dies mid-storm, in-flight
// HTTP requests must resolve to clean 502/503/504 responses — never a
// hang, never a misrouted or corrupted 200 — and once the backend
// returns on the same address, the client-side channel pool redials and
// the gateway serves 200s again without being restarted.

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corbalc/internal/idl"
	"corbalc/internal/iiop"
	"corbalc/internal/leak"
	"corbalc/internal/orb"
)

func TestGatewayBackendFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("storm test")
	}
	leak.Check(t)

	repo := idl.NewRepository()
	if err := repo.ParseString("demo.idl", demoIDL); err != nil {
		t.Fatal(err)
	}
	backend := orb.NewORB()
	srv, err := iiop.ListenAndActivate(backend, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sv := &demoServant{}
	backend.Activate("calc", sv)
	host, port := backend.Endpoint()
	addr := fmt.Sprintf("%s:%d", host, port)

	client := orb.NewORB()
	client.RegisterTransport(&iiop.Transport{CallTimeout: 2 * time.Second})
	t.Cleanup(client.Shutdown)

	gw, err := New(Options{ORB: client, Repo: repo, CacheTTL: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.Register("calc", client.NewRef(backend.NewIOR("IDL:demo/Calc:1.0", "calc")), "demo::Calc"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)

	// Storm: concurrent adds with per-caller payloads so a misrouted
	// reply would produce a visibly wrong sum.
	const callers = 8
	var stop atomic.Bool
	var good, gatewayErr atomic.Int64
	var wg sync.WaitGroup
	fail := make(chan string, callers*4)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			a, b := int64(c*1000), int64(c+1)
			body := fmt.Sprintf(`[%d, %d]`, a, b)
			want := fmt.Sprintf(`"result":%d`, a+b)
			for !stop.Load() {
				resp, err := ts.Client().Post(ts.URL+"/obj/calc/add", "application/json", strings.NewReader(body))
				if err != nil {
					fail <- "transport error: " + err.Error()
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case 200:
					if !strings.Contains(string(raw), want) {
						fail <- fmt.Sprintf("misrouted 200: body %q, want %s", raw, want)
						return
					}
					good.Add(1)
				case 502, 503, 504:
					gatewayErr.Add(1)
				default:
					fail <- fmt.Sprintf("unexpected status %d body %q", resp.StatusCode, raw)
					return
				}
			}
		}(c)
	}

	waitFor := func(ctr *atomic.Int64, min int64, what string) {
		deadline := time.Now().Add(10 * time.Second)
		for ctr.Load() < min {
			select {
			case msg := <-fail:
				stop.Store(true)
				wg.Wait()
				t.Fatal(msg)
			default:
			}
			if time.Now().After(deadline) {
				stop.Store(true)
				wg.Wait()
				t.Fatalf("timed out waiting for %s (good=%d gatewayErr=%d)", what, good.Load(), gatewayErr.Load())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	waitFor(&good, 50, "steady-state successes")

	// Kill the backend under load.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(&gatewayErr, 5, "clean gateway errors after backend death")

	// Resurrect it on the same address; the pool must redial.
	goodBefore := good.Load()
	srv2 := iiop.NewServer(backend)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = srv2.ListenActivate(backend, addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("could not rebind backend on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Cleanup(func() { srv2.Close() })
	waitFor(&good, goodBefore+50, "recovery after backend restart")

	stop.Store(true)
	wg.Wait()

	if n := TransBufsInFlight(); n != 0 {
		t.Fatalf("TransBufsInFlight = %d after storm, want 0", n)
	}
}

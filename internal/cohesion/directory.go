// Package cohesion implements the logical network cohesion protocol of
// CORBA-LC (paper §2.4.1 and §2.4.3): membership (join/leave/ping),
// hierarchical grouping with Meta-Resource Managers (MRMs), soft
// network consistency through periodic keep-alive resource updates with
// failure timeouts, peer-replicated MRMs with deterministic failover,
// and the distributed component query path that climbs the hierarchy
// only when the local group cannot satisfy a request.
//
// Three consistency modes are provided because the paper argues their
// trade-off: Soft (periodic deltas to the group's MRM replicas — the
// design the paper advocates), Strong (every change immediately flooded
// to every node — the "perfect knowledge" baseline it argues against),
// and the Predictive refinement of Soft (updates suppressed while a
// dead-band/linear predictor tracks the real value, §2.4.3 "predictive
// and adaptive techniques can be used ... reducing even more the
// bandwidth requirements").
package cohesion

import (
	"fmt"
	"sort"

	"corbalc/internal/cdr"
	"corbalc/internal/ior"
)

// NodeDesc is one node's entry in the directory: identity plus the
// references of its externally visible services.
type NodeDesc struct {
	Name       string
	Capability string
	Cohesion   *ior.IOR
	Registry   *ior.IOR
	Acceptor   *ior.IOR
	Resources  *ior.IOR
}

// Marshal encodes the descriptor.
func (nd *NodeDesc) Marshal(e *cdr.Encoder) {
	e.WriteString(nd.Name)
	e.WriteString(nd.Capability)
	nd.Cohesion.Marshal(e)
	nd.Registry.Marshal(e)
	nd.Acceptor.Marshal(e)
	nd.Resources.Marshal(e)
}

// UnmarshalNodeDesc decodes a descriptor.
func UnmarshalNodeDesc(d *cdr.Decoder) (*NodeDesc, error) {
	nd := &NodeDesc{}
	var err error
	if nd.Name, err = d.ReadString(); err != nil {
		return nil, err
	}
	if nd.Capability, err = d.ReadString(); err != nil {
		return nil, err
	}
	if nd.Cohesion, err = ior.Unmarshal(d); err != nil {
		return nil, err
	}
	if nd.Registry, err = ior.Unmarshal(d); err != nil {
		return nil, err
	}
	if nd.Acceptor, err = ior.Unmarshal(d); err != nil {
		return nil, err
	}
	if nd.Resources, err = ior.Unmarshal(d); err != nil {
		return nil, err
	}
	return nd, nil
}

// Directory is the replicated membership state: the set of nodes, their
// grouping, and a monotonically increasing epoch. The root MRM mutates
// it (joins, leaves, confirmed deaths) and pushes new epochs to every
// node; everyone else treats it as read-only.
type Directory struct {
	Epoch  uint64
	Groups [][]string // group index -> member names, join order preserved
	Nodes  map[string]*NodeDesc
}

// NewDirectory returns an empty directory at epoch 0.
func NewDirectory() *Directory {
	return &Directory{Nodes: make(map[string]*NodeDesc)}
}

// Clone deep-copies the directory (descriptors are shared, they are
// immutable once published).
func (dir *Directory) Clone() *Directory {
	out := &Directory{Epoch: dir.Epoch, Nodes: make(map[string]*NodeDesc, len(dir.Nodes))}
	out.Groups = make([][]string, len(dir.Groups))
	for i, g := range dir.Groups {
		out.Groups[i] = append([]string(nil), g...)
	}
	for k, v := range dir.Nodes {
		out.Nodes[k] = v
	}
	return out
}

// GroupOf returns the group index containing the node, or -1.
func (dir *Directory) GroupOf(name string) int {
	for i, g := range dir.Groups {
		for _, m := range g {
			if m == name {
				return i
			}
		}
	}
	return -1
}

// Members returns the member list of a group (nil when out of range).
func (dir *Directory) Members(group int) []string {
	if group < 0 || group >= len(dir.Groups) {
		return nil
	}
	return dir.Groups[group]
}

// Assign places a node into the first group with room (group size
// limit g), creating a new group when all are full. It mutates the
// directory and bumps the epoch. Assigning an existing member is
// idempotent (refreshes its descriptor, keeps its group) so duplicate
// or racing joins cannot corrupt the grouping.
func (dir *Directory) Assign(desc *NodeDesc, g int) int {
	if existing := dir.GroupOf(desc.Name); existing >= 0 {
		dir.Nodes[desc.Name] = desc
		dir.Epoch++
		return existing
	}
	dir.Nodes[desc.Name] = desc
	for i := range dir.Groups {
		if len(dir.Groups[i]) < g {
			dir.Groups[i] = append(dir.Groups[i], desc.Name)
			dir.Epoch++
			return i
		}
	}
	dir.Groups = append(dir.Groups, []string{desc.Name})
	dir.Epoch++
	return len(dir.Groups) - 1
}

// Remove deletes a node (leave or confirmed death); empty groups are
// kept in place so group indices remain stable.
func (dir *Directory) Remove(name string) bool {
	if _, ok := dir.Nodes[name]; !ok {
		return false
	}
	delete(dir.Nodes, name)
	for i, g := range dir.Groups {
		for j, m := range g {
			if m == name {
				dir.Groups[i] = append(g[:j], g[j+1:]...)
				dir.Epoch++
				return true
			}
		}
	}
	dir.Epoch++
	return true
}

// Names lists all member names, sorted.
func (dir *Directory) Names() []string {
	out := make([]string, 0, len(dir.Nodes))
	for n := range dir.Nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the node count.
func (dir *Directory) Len() int { return len(dir.Nodes) }

// RootGroup is the group whose leading members act as the root MRM
// replicas. It is the first non-empty group.
func (dir *Directory) RootGroup() int {
	for i, g := range dir.Groups {
		if len(g) > 0 {
			return i
		}
	}
	return -1
}

// Candidates returns the first r members of a group — the group's MRM
// replica candidates in priority order ("the protocol must allow
// replicated peer MRMs per group").
func (dir *Directory) Candidates(group, r int) []string {
	g := dir.Members(group)
	if len(g) < r {
		r = len(g)
	}
	return g[:r]
}

// RootCandidates returns the root MRM replica candidates.
func (dir *Directory) RootCandidates(r int) []string {
	rg := dir.RootGroup()
	if rg < 0 {
		return nil
	}
	return dir.Candidates(rg, r)
}

// Marshal encodes the directory.
func (dir *Directory) Marshal(e *cdr.Encoder) {
	e.WriteULongLong(dir.Epoch)
	e.WriteULong(uint32(len(dir.Groups)))
	for _, g := range dir.Groups {
		e.WriteStringSeq(g)
	}
	e.WriteULong(uint32(len(dir.Nodes)))
	for _, name := range dir.Names() {
		dir.Nodes[name].Marshal(e)
	}
}

// UnmarshalDirectory decodes a directory.
func UnmarshalDirectory(d *cdr.Decoder) (*Directory, error) {
	dir := NewDirectory()
	var err error
	if dir.Epoch, err = d.ReadULongLong(); err != nil {
		return nil, err
	}
	ng, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining())/4 < ng {
		return nil, cdr.ErrTooLong
	}
	dir.Groups = make([][]string, ng)
	for i := range dir.Groups {
		if dir.Groups[i], err = d.ReadStringSeq(); err != nil {
			return nil, err
		}
	}
	nn, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining())/8 < nn {
		return nil, cdr.ErrTooLong
	}
	for i := uint32(0); i < nn; i++ {
		nd, err := UnmarshalNodeDesc(d)
		if err != nil {
			return nil, fmt.Errorf("cohesion: node %d: %w", i, err)
		}
		dir.Nodes[nd.Name] = nd
	}
	return dir, nil
}

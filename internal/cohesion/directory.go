// Package cohesion implements the logical network cohesion protocol of
// CORBA-LC (paper §2.4.1 and §2.4.3): membership (join/leave/ping),
// hierarchical grouping with Meta-Resource Managers (MRMs), soft
// network consistency through periodic keep-alive resource updates with
// failure timeouts, peer-replicated MRMs with deterministic failover,
// and the distributed component query path that climbs the hierarchy
// only when the local group cannot satisfy a request.
//
// Three consistency modes are provided because the paper argues their
// trade-off: Soft (periodic deltas to the group's MRM replicas — the
// design the paper advocates), Strong (every change immediately flooded
// to every node — the "perfect knowledge" baseline it argues against),
// and the Predictive refinement of Soft (updates suppressed while a
// dead-band/linear predictor tracks the real value, §2.4.3 "predictive
// and adaptive techniques can be used ... reducing even more the
// bandwidth requirements").
package cohesion

import (
	"fmt"
	"hash/fnv"
	"sort"

	"corbalc/internal/cdr"
	"corbalc/internal/ior"
)

// NodeDesc is one node's entry in the directory: identity plus the
// references of its externally visible services.
type NodeDesc struct {
	Name       string
	Capability string
	Cohesion   *ior.IOR
	Registry   *ior.IOR
	Acceptor   *ior.IOR
	Resources  *ior.IOR
}

// Marshal encodes the descriptor.
func (nd *NodeDesc) Marshal(e *cdr.Encoder) {
	e.WriteString(nd.Name)
	e.WriteString(nd.Capability)
	nd.Cohesion.Marshal(e)
	nd.Registry.Marshal(e)
	nd.Acceptor.Marshal(e)
	nd.Resources.Marshal(e)
}

// UnmarshalNodeDesc decodes a descriptor.
func UnmarshalNodeDesc(d *cdr.Decoder) (*NodeDesc, error) {
	nd := &NodeDesc{}
	var err error
	if nd.Name, err = d.ReadString(); err != nil {
		return nil, err
	}
	if nd.Capability, err = d.ReadString(); err != nil {
		return nil, err
	}
	if nd.Cohesion, err = ior.Unmarshal(d); err != nil {
		return nil, err
	}
	if nd.Registry, err = ior.Unmarshal(d); err != nil {
		return nil, err
	}
	if nd.Acceptor, err = ior.Unmarshal(d); err != nil {
		return nil, err
	}
	if nd.Resources, err = ior.Unmarshal(d); err != nil {
		return nil, err
	}
	return nd, nil
}

// Directory is the replicated membership state: the set of nodes, their
// grouping, and a monotonically increasing epoch. The root MRM mutates
// it (joins, leaves, confirmed deaths) and disseminates versioned
// deltas (or, in the legacy full-state mode, whole snapshots) to every
// node; everyone else treats it as read-only.
type Directory struct {
	Epoch  uint64
	Groups [][]string // group index -> member names, join order preserved
	Nodes  map[string]*NodeDesc
	// Versions is the per-entry version vector: for each member, the
	// epoch at which its entry last changed. Anti-entropy pulls ship it
	// so the root can answer with only the entries the puller lacks.
	Versions map[string]uint64

	// memberXor folds every member name into one order-independent hash,
	// maintained incrementally — (Epoch, Len, memberXor) is an O(1)
	// convergence probe for swarm-scale tests.
	memberXor uint64
}

// NewDirectory returns an empty directory at epoch 0.
func NewDirectory() *Directory {
	return &Directory{Nodes: make(map[string]*NodeDesc), Versions: make(map[string]uint64)}
}

func nameHash(name string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name)) // fnv never errors
	return h.Sum64()
}

// Stamp returns the O(1) convergence probe: two directories with equal
// stamps hold the same epoch and member set.
func (dir *Directory) Stamp() (epoch uint64, n int, xor uint64) {
	return dir.Epoch, len(dir.Nodes), dir.memberXor
}

// Clone deep-copies the directory (descriptors are shared, they are
// immutable once published).
func (dir *Directory) Clone() *Directory {
	out := &Directory{
		Epoch:     dir.Epoch,
		Nodes:     make(map[string]*NodeDesc, len(dir.Nodes)),
		Versions:  make(map[string]uint64, len(dir.Versions)),
		memberXor: dir.memberXor,
	}
	out.Groups = make([][]string, len(dir.Groups))
	for i, g := range dir.Groups {
		out.Groups[i] = append([]string(nil), g...)
	}
	for k, v := range dir.Nodes {
		out.Nodes[k] = v
	}
	for k, v := range dir.Versions {
		out.Versions[k] = v
	}
	return out
}

// GroupOf returns the group index containing the node, or -1.
func (dir *Directory) GroupOf(name string) int {
	for i, g := range dir.Groups {
		for _, m := range g {
			if m == name {
				return i
			}
		}
	}
	return -1
}

// Members returns the member list of a group (nil when out of range).
func (dir *Directory) Members(group int) []string {
	if group < 0 || group >= len(dir.Groups) {
		return nil
	}
	return dir.Groups[group]
}

// Assign places a node into the first group with room (group size
// limit g), creating a new group when all are full. It mutates the
// directory and bumps the epoch. Assigning an existing member is
// idempotent (refreshes its descriptor, keeps its group) so duplicate
// or racing joins cannot corrupt the grouping.
func (dir *Directory) Assign(desc *NodeDesc, g int) int {
	if existing := dir.GroupOf(desc.Name); existing >= 0 {
		dir.Nodes[desc.Name] = desc
		dir.Epoch++
		dir.setVersion(desc.Name)
		return existing
	}
	dir.Nodes[desc.Name] = desc
	dir.memberXor ^= nameHash(desc.Name)
	for i := range dir.Groups {
		if len(dir.Groups[i]) < g {
			dir.Groups[i] = append(dir.Groups[i], desc.Name)
			dir.Epoch++
			dir.setVersion(desc.Name)
			return i
		}
	}
	dir.Groups = append(dir.Groups, []string{desc.Name})
	dir.Epoch++
	dir.setVersion(desc.Name)
	return len(dir.Groups) - 1
}

func (dir *Directory) setVersion(name string) {
	if dir.Versions == nil {
		dir.Versions = make(map[string]uint64)
	}
	dir.Versions[name] = dir.Epoch
}

// Remove deletes a node (leave or confirmed death); empty groups are
// kept in place so group indices remain stable.
func (dir *Directory) Remove(name string) bool {
	if !dir.drop(name) {
		return false
	}
	dir.Epoch++
	return true
}

// drop deletes a node without advancing the epoch — the shared core of
// Remove (root mutation, bumps) and delta application (the delta's To
// epoch is adopted instead).
func (dir *Directory) drop(name string) bool {
	if _, ok := dir.Nodes[name]; !ok {
		return false
	}
	delete(dir.Nodes, name)
	delete(dir.Versions, name)
	dir.memberXor ^= nameHash(name)
	for i, g := range dir.Groups {
		for j, m := range g {
			if m == name {
				dir.Groups[i] = append(g[:j], g[j+1:]...)
				return true
			}
		}
	}
	return true
}

// Names lists all member names, sorted.
func (dir *Directory) Names() []string {
	out := make([]string, 0, len(dir.Nodes))
	for n := range dir.Nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the node count.
func (dir *Directory) Len() int { return len(dir.Nodes) }

// RootGroup is the group whose leading members act as the root MRM
// replicas. It is the first non-empty group.
func (dir *Directory) RootGroup() int {
	for i, g := range dir.Groups {
		if len(g) > 0 {
			return i
		}
	}
	return -1
}

// Candidates returns the first r members of a group — the group's MRM
// replica candidates in priority order ("the protocol must allow
// replicated peer MRMs per group").
func (dir *Directory) Candidates(group, r int) []string {
	g := dir.Members(group)
	if len(g) < r {
		r = len(g)
	}
	return g[:r]
}

// RootCandidates returns the root MRM replica candidates.
func (dir *Directory) RootCandidates(r int) []string {
	rg := dir.RootGroup()
	if rg < 0 {
		return nil
	}
	return dir.Candidates(rg, r)
}

// Marshal encodes the directory: epoch, groups, per-entry descriptors
// with their version-vector entries, and a trailing extension blob that
// decoders skip — future fields land there without breaking older
// readers.
func (dir *Directory) Marshal(e *cdr.Encoder) { dir.marshalExt(e, nil) }

func (dir *Directory) marshalExt(e *cdr.Encoder, ext []byte) {
	e.WriteULongLong(dir.Epoch)
	e.WriteULong(uint32(len(dir.Groups)))
	for _, g := range dir.Groups {
		e.WriteStringSeq(g)
	}
	e.WriteULong(uint32(len(dir.Nodes)))
	for _, name := range dir.Names() {
		dir.Nodes[name].Marshal(e)
		e.WriteULongLong(dir.Versions[name])
	}
	e.WriteOctetSeq(ext)
}

// UnmarshalDirectory decodes a directory, rebuilding the incremental
// membership hash and tolerating (skipping) unknown trailing fields.
func UnmarshalDirectory(d *cdr.Decoder) (*Directory, error) {
	dir := NewDirectory()
	var err error
	if dir.Epoch, err = d.ReadULongLong(); err != nil {
		return nil, err
	}
	ng, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining())/4 < ng {
		return nil, cdr.ErrTooLong
	}
	dir.Groups = make([][]string, ng)
	for i := range dir.Groups {
		if dir.Groups[i], err = d.ReadStringSeq(); err != nil {
			return nil, err
		}
	}
	nn, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining())/8 < nn {
		return nil, cdr.ErrTooLong
	}
	for i := uint32(0); i < nn; i++ {
		nd, err := UnmarshalNodeDesc(d)
		if err != nil {
			return nil, fmt.Errorf("cohesion: node %d: %w", i, err)
		}
		ver, err := d.ReadULongLong()
		if err != nil {
			return nil, err
		}
		dir.Nodes[nd.Name] = nd
		dir.Versions[nd.Name] = ver
		dir.memberXor ^= nameHash(nd.Name)
	}
	if _, err := d.ReadOctetSeqAlias(); err != nil { // skip extensions
		return nil, err
	}
	return dir, nil
}

package cohesion

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/ior"
	"corbalc/internal/node"
	"corbalc/internal/orb"
)

// Mode selects the consistency protocol (paper §2.4.3).
type Mode int

// Consistency modes.
const (
	// Soft: periodic keep-alive updates to the group's MRM replicas;
	// MRMs hold an approximate view and time out silent nodes.
	Soft Mode = iota
	// Strong: every reflective change is immediately flooded to every
	// node, giving all of them "perfect knowledge" — the baseline the
	// paper argues is unscalable.
	Strong
)

// SendPolicy refines Soft updates.
type SendPolicy int

// Send policies.
const (
	// Periodic sends a full update every interval.
	Periodic SendPolicy = iota
	// DeadBand suppresses updates while the load stays within epsilon
	// of the last sent value (a keep-alive floor still applies).
	DeadBand
	// Predictive suppresses updates while a linear extrapolation of the
	// last two sent values tracks the real load within epsilon.
	Predictive
)

// KeyCohesion is the agent's object key in the node's adapter.
const KeyCohesion = "node/cohesion"

// CohesionRepoID is the CORBA interface ID of the cohesion agent.
const CohesionRepoID = "IDL:corbalc/NetworkCohesion:1.0"

// Errors returned by the agent.
var (
	ErrNotJoined = errors.New("cohesion: agent has not joined a network")
	ErrNoRoot    = errors.New("cohesion: no reachable root MRM")
)

// Config assembles an Agent.
type Config struct {
	Node *node.Node
	// GroupSize is the MRM fanout G (default 8).
	GroupSize int
	// Replicas is the number of peer MRM replicas per group (default 2).
	Replicas int
	// UpdateInterval is the soft-consistency period (default 500ms).
	UpdateInterval time.Duration
	// FailMultiple times UpdateInterval gives the failure timeout
	// (default 3).
	FailMultiple int
	// Mode selects Soft or Strong consistency.
	Mode Mode
	// Policy refines Soft sending.
	Policy SendPolicy
	// Epsilon is the dead-band width as a load fraction (default 0.05).
	Epsilon float64
}

func (c *Config) fill() {
	if c.GroupSize <= 0 {
		c.GroupSize = 8
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > c.GroupSize {
		c.Replicas = c.GroupSize
	}
	if c.UpdateInterval <= 0 {
		c.UpdateInterval = 500 * time.Millisecond
	}
	if c.FailMultiple <= 0 {
		c.FailMultiple = 3
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.05
	}
}

// memberState is an MRM's knowledge of one node.
type memberState struct {
	report   *node.Report
	offers   []*node.Offer
	lastSeen time.Time
}

// groupSummary is the root MRM's aggregated knowledge of one group
// ("a hierarchical treatment of network resources", §2.4.3).
type groupSummary struct {
	group    int
	alive    uint32
	freeCPU  float64
	exports  map[string]bool // provided port repo IDs in the group
	lastSeen time.Time
}

// Stats are protocol-level counters for the consistency experiments.
type Stats struct {
	UpdatesSent   uint64
	UpdateBytes   uint64
	UpdatesRecv   uint64
	QueriesSent   uint64
	QueriesServed uint64
	Floods        uint64
}

// Agent runs the cohesion protocol for one node.
type Agent struct {
	cfg  Config
	n    *node.Node
	o    *orb.ORB
	name string

	mu        sync.Mutex
	dir       *Directory
	view      map[string]*memberState
	summaries map[int]*groupSummary
	// expected tracks when this MRM first counted on hearing from a
	// group member that has not reported yet; members silent from birth
	// beyond a grace period are declared dead too.
	expected map[string]time.Time
	joined   bool

	// send-policy state
	lastSent   *node.Report
	prevSent   *node.Report
	lastSentAt time.Time
	prevSentAt time.Time
	forceSend  bool

	// ctx is the agent's lifetime context: every RPC the protocol makes
	// derives from it (with a per-call timeout), so Stop cancels all
	// in-flight calls.
	ctx    context.Context
	cancel context.CancelFunc

	stop  chan struct{}
	wg    sync.WaitGroup
	ticks uint64 // tick counter driving periodic anti-entropy
	// floodKick coalesces Strong-mode change floods: many rapid changes
	// collapse into one pending flood, and a single worker serialises
	// the sends so a change storm cannot pile up goroutines.
	floodKick chan struct{}
	// pushDir coalesces directory broadcasts the same way: under join
	// or removal storms only the newest directory needs to travel.
	pushDir chan *Directory

	updatesSent   atomic.Uint64
	updateBytes   atomic.Uint64
	updatesRecv   atomic.Uint64
	queriesSent   atomic.Uint64
	queriesServed atomic.Uint64
	floods        atomic.Uint64
}

// NewAgent creates the agent and activates its servant on the node's
// ORB; it does not start the protocol until Bootstrap or Join.
func NewAgent(cfg Config) *Agent {
	cfg.fill()
	a := &Agent{
		cfg:       cfg,
		n:         cfg.Node,
		o:         cfg.Node.ORB(),
		dir:       NewDirectory(),
		view:      make(map[string]*memberState),
		summaries: make(map[int]*groupSummary),
		expected:  make(map[string]time.Time),
		stop:      make(chan struct{}),
		pushDir:   make(chan *Directory, 1),
	}
	a.ctx, a.cancel = context.WithCancel(context.Background())
	a.name = cfg.Node.Name()
	a.o.Activate(KeyCohesion, &agentServant{a: a})
	if cfg.Mode == Strong {
		a.floodKick = make(chan struct{}, 1)
		a.n.SetChangeListener(func() {
			select {
			case a.floodKick <- struct{}{}:
			default: // a flood is already pending; it will carry this change
			}
		})
	}
	return a
}

// Desc mints this agent's directory entry. IORs are minted lazily so
// they carry the profiles of every transport attached by the time the
// agent joins a network.
func (a *Agent) Desc() *NodeDesc {
	return &NodeDesc{
		Name:       a.name,
		Capability: string(a.n.Resources().Profile().Capability),
		Cohesion:   a.o.NewIOR(CohesionRepoID, KeyCohesion),
		Registry:   a.n.RegistryIOR(),
		Acceptor:   a.n.AcceptorIOR(),
		Resources:  a.n.ResourcesIOR(),
	}
}

// CohesionIOR returns the agent's own servant reference, used as a join
// contact by other nodes.
func (a *Agent) CohesionIOR() *ior.IOR { return a.o.NewIOR(CohesionRepoID, KeyCohesion) }

// Stats snapshots the protocol counters.
func (a *Agent) Stats() Stats {
	return Stats{
		UpdatesSent:   a.updatesSent.Load(),
		UpdateBytes:   a.updateBytes.Load(),
		UpdatesRecv:   a.updatesRecv.Load(),
		QueriesSent:   a.queriesSent.Load(),
		QueriesServed: a.queriesServed.Load(),
		Floods:        a.floods.Load(),
	}
}

// MemberView is one member's state as known to an MRM: its directory
// entry plus the latest soft-consistency report and offers.
type MemberView struct {
	Desc   *NodeDesc
	Report *node.Report
	Offers []*node.Offer
}

// GroupView snapshots this MRM's live member states (fresh within the
// failure timeout). The network-level load balancer consumes it.
func (a *Agent) GroupView() []MemberView {
	cutoff := time.Now().Add(-a.failTimeout())
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]MemberView, 0, len(a.view))
	for name, st := range a.view {
		if st.lastSeen.Before(cutoff) {
			continue
		}
		desc, ok := a.dir.Nodes[name]
		if !ok {
			continue
		}
		out = append(out, MemberView{Desc: desc, Report: st.report, Offers: st.offers})
	}
	return out
}

// Directory snapshots the agent's current view of membership.
func (a *Agent) Directory() *Directory {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dir.Clone()
}

// Bootstrap makes this agent the first node of a new logical network and
// starts its protocol loop.
func (a *Agent) Bootstrap() {
	a.mu.Lock()
	dir := NewDirectory()
	dir.Assign(a.Desc(), a.cfg.GroupSize)
	a.dir = dir
	a.joined = true
	a.mu.Unlock()
	a.start()
}

// Join enters an existing network through any member's cohesion
// reference and starts the protocol loop.
func (a *Agent) Join(contact *ior.IOR) error {
	ref := a.o.NewRef(contact)
	var dir *Directory
	desc := a.Desc()
	ctx, cancel := a.rpcCtx()
	defer cancel()
	err := ref.InvokeContext(ctx, "join",
		func(e *cdr.Encoder) { desc.Marshal(e) },
		func(d *cdr.Decoder) error {
			var e error
			dir, e = UnmarshalDirectory(d)
			return e
		})
	if err != nil {
		return fmt.Errorf("cohesion: join: %w", err)
	}
	a.mu.Lock()
	a.dir = dir
	a.joined = true
	a.forceSend = true
	a.mu.Unlock()
	a.start()
	if a.cfg.Mode == Strong {
		a.floodReport()
	}
	return nil
}

// Leave departs gracefully: the root removes this node and broadcasts
// the new directory.
func (a *Agent) Leave() {
	a.mu.Lock()
	joined := a.joined
	a.joined = false
	a.mu.Unlock()
	if joined {
		ctx, cancel := a.rpcCtx()
		_ = a.callRoot(ctx, "leave", func(e *cdr.Encoder) { e.WriteString(a.name) }, nil)
		cancel()
	}
	a.Stop()
}

// Stop halts the protocol loop without notifying anyone (crash
// simulation pairs this with simnet.SetDown).
func (a *Agent) Stop() {
	a.mu.Lock()
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	a.mu.Unlock()
	a.cancel() // aborts in-flight protocol RPCs
	a.wg.Wait()
}

func (a *Agent) start() {
	a.wg.Add(1)
	go a.loop()
	a.wg.Add(1)
	go a.broadcastLoop()
	if a.cfg.Mode == Strong {
		a.wg.Add(1)
		go a.floodLoop()
	}
}

// broadcastLoop drains coalesced directory broadcasts (root duty).
func (a *Agent) broadcastLoop() {
	defer a.wg.Done()
	for {
		select {
		case <-a.stop:
			return
		case dir := <-a.pushDir:
			a.broadcastDirectory(dir)
		}
	}
}

// kickBroadcast schedules a directory broadcast, replacing any pending
// older one.
func (a *Agent) kickBroadcast(dir *Directory) {
	for {
		select {
		case a.pushDir <- dir:
			return
		default:
			select {
			case <-a.pushDir: // discard the stale pending directory
			default:
			}
		}
	}
}

// floodLoop drains coalesced change notifications in Strong mode.
func (a *Agent) floodLoop() {
	defer a.wg.Done()
	for {
		select {
		case <-a.stop:
			return
		case <-a.floodKick:
			a.floodReport()
		}
	}
}

func (a *Agent) loop() {
	defer a.wg.Done()
	t := time.NewTicker(a.cfg.UpdateInterval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.tick()
		}
	}
}

// tickSnapshot captures the directory state one tick needs; ok is false
// until the agent has joined.
func (a *Agent) tickSnapshot() (group int, cands, rootCands []string, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.joined {
		return 0, nil, nil, false
	}
	group = a.dir.GroupOf(a.name)
	cands = a.dir.Candidates(group, a.cfg.Replicas)
	rootCands = a.dir.RootCandidates(a.cfg.Replicas)
	return group, cands, rootCands, true
}

// tick performs this node's periodic duties.
func (a *Agent) tick() {
	group, cands, rootCands, ok := a.tickSnapshot()
	if !ok || group < 0 {
		return
	}

	switch a.cfg.Mode {
	case Soft:
		if report, offers, send := a.policyDecide(); send {
			a.sendUpdate(cands, report, offers)
		}
	case Strong:
		// Liveness keep-alive only; changes flood immediately.
		report := a.n.Report()
		a.sendUpdate(cands, &report, nil)
	}

	// MRM replica duties. Stale view entries are not deleted here: the
	// failure timeout filters them out of every read, and reportDeaths
	// needs to see them once to escalate to the root.
	if contains(cands, a.name) && a.actingLeader(group) {
		a.sendSummary(group, rootCands)
		a.reportDeaths(group)
	}

	// Anti-entropy: periodically compare directory epochs with the root
	// (one tiny ping) and pull the full directory only on divergence.
	// This repairs missed broadcasts and detects false expulsion (a
	// member the root timed out during a stall): an expelled node
	// rejoins.
	a.ticks++
	if a.ticks%uint64(4*(a.cfg.FailMultiple+1)) == 0 && !a.actingRootLeader() {
		a.syncDirectory()
	}
}

// syncDirectory compares epochs with the root and reconciles: adopt the
// newer directory, or rejoin if this node has been expelled.
func (a *Agent) syncDirectory() {
	ctx, cancel := a.rpcCtx()
	defer cancel()
	var rootEpoch uint64
	err := a.callRoot(ctx, "ping", nil, func(d *cdr.Decoder) error {
		var e error
		rootEpoch, e = d.ReadULongLong()
		return e
	})
	if err != nil {
		return
	}
	a.mu.Lock()
	same := rootEpoch == a.dir.Epoch
	a.mu.Unlock()
	if same {
		return
	}
	var dir *Directory
	err = a.callRoot(ctx, "get_directory", nil, func(d *cdr.Decoder) error {
		var e error
		dir, e = UnmarshalDirectory(d)
		return e
	})
	if err != nil || dir == nil {
		return
	}
	a.mu.Lock()
	newer := dir.Epoch > a.dir.Epoch
	_, member := dir.Nodes[a.name]
	a.mu.Unlock()
	if newer && !member {
		// Falsely expelled (or the root lost us): rejoin through the
		// root and adopt the resulting directory.
		desc := a.Desc()
		var fresh *Directory
		err := a.callRoot(ctx, "join",
			func(e *cdr.Encoder) { desc.Marshal(e) },
			func(d *cdr.Decoder) error {
				var e error
				fresh, e = UnmarshalDirectory(d)
				return e
			})
		if err == nil && fresh != nil {
			a.mu.Lock()
			if fresh.Epoch > a.dir.Epoch {
				a.dir = fresh
			}
			a.forceSend = true
			a.mu.Unlock()
		}
		return
	}
	if newer {
		a.installDirectory(dir)
	}
}

// policyDecide applies the send policy; it returns the report/offers to
// send and whether to send at all.
func (a *Agent) policyDecide() (*node.Report, []*node.Offer, bool) {
	report := a.n.Report()
	offers := a.n.AllOffers()
	now := time.Now()
	keepAliveFloor := a.cfg.UpdateInterval * time.Duration(a.cfg.FailMultiple) / 2

	a.mu.Lock()
	defer a.mu.Unlock()
	if a.forceSend || a.lastSent == nil || now.Sub(a.lastSentAt) >= keepAliveFloor ||
		a.lastSent.Digest != report.Digest {
		a.recordSentLocked(&report, now)
		return &report, offers, true
	}
	switch a.cfg.Policy {
	case Periodic:
		a.recordSentLocked(&report, now)
		return &report, offers, true
	case DeadBand:
		if math.Abs(report.LoadFraction()-a.lastSent.LoadFraction()) > a.cfg.Epsilon {
			a.recordSentLocked(&report, now)
			return &report, offers, true
		}
		return nil, nil, false
	case Predictive:
		predicted := a.predictLocked(now)
		if math.Abs(report.LoadFraction()-predicted) > a.cfg.Epsilon {
			a.recordSentLocked(&report, now)
			return &report, offers, true
		}
		return nil, nil, false
	}
	a.recordSentLocked(&report, now)
	return &report, offers, true
}

func (a *Agent) recordSentLocked(r *node.Report, now time.Time) {
	a.prevSent, a.prevSentAt = a.lastSent, a.lastSentAt
	a.lastSent, a.lastSentAt = r, now
	a.forceSend = false
}

// predictLocked linearly extrapolates load from the last two sent
// reports.
func (a *Agent) predictLocked(now time.Time) float64 {
	if a.lastSent == nil {
		return 0
	}
	if a.prevSent == nil || !a.lastSentAt.After(a.prevSentAt) {
		return a.lastSent.LoadFraction()
	}
	dt := a.lastSentAt.Sub(a.prevSentAt).Seconds()
	slope := (a.lastSent.LoadFraction() - a.prevSent.LoadFraction()) / dt
	return a.lastSent.LoadFraction() + slope*now.Sub(a.lastSentAt).Seconds()
}

// sendUpdate pushes one update to each MRM replica candidate.
func (a *Agent) sendUpdate(cands []string, report *node.Report, offers []*node.Offer) {
	payload := func(e *cdr.Encoder) {
		report.Marshal(e)
		node.MarshalOffers(e, offers)
	}
	// Measure the payload size once for accounting.
	sizer := cdr.NewEncoder(cdr.LittleEndian)
	payload(sizer)
	ctx, cancel := a.rpcCtx()
	defer cancel()
	for _, cand := range cands {
		ref, ok := a.refOf(cand)
		if !ok {
			continue
		}
		a.updatesSent.Add(1)
		a.updateBytes.Add(uint64(sizer.Len()))
		_ = ref.InvokeOnewayContext(ctx, "update", payload)
	}
}

// memberNames snapshots the directory membership; ok is false until the
// agent has joined.
func (a *Agent) memberNames() (names []string, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.joined {
		return nil, false
	}
	return a.dir.Names(), true
}

// floodReport sends this node's report to every node (Strong mode).
func (a *Agent) floodReport() {
	names, ok := a.memberNames()
	if !ok {
		return
	}
	report := a.n.Report()
	offers := a.n.AllOffers()
	payload := func(e *cdr.Encoder) {
		report.Marshal(e)
		node.MarshalOffers(e, offers)
	}
	sizer := cdr.NewEncoder(cdr.LittleEndian)
	payload(sizer)
	a.floods.Add(1)
	ctx, cancel := a.rpcCtx()
	defer cancel()
	for _, name := range names {
		if name == a.name {
			continue
		}
		ref, ok := a.refOf(name)
		if !ok {
			continue
		}
		a.updatesSent.Add(1)
		a.updateBytes.Add(uint64(sizer.Len()))
		_ = ref.InvokeOnewayContext(ctx, "update", payload)
	}
}

// refOf builds an invocable ref to another agent's cohesion servant.
func (a *Agent) refOf(name string) (*orb.ObjectRef, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	nd, ok := a.dir.Nodes[name]
	if !ok {
		return nil, false
	}
	return a.o.NewRef(nd.Cohesion), true
}

// failTimeout is the silence duration after which a node is suspected
// dead.
func (a *Agent) failTimeout() time.Duration {
	return a.cfg.UpdateInterval * time.Duration(a.cfg.FailMultiple)
}

// rpcTimeout bounds one protocol RPC: generous against the failure
// timeout so a slow-but-alive peer is not cut off, with a 2s floor
// protecting experiments that compress UpdateInterval.
func (a *Agent) rpcTimeout() time.Duration {
	if t := 4 * a.failTimeout(); t > 2*time.Second {
		return t
	}
	return 2 * time.Second
}

// rpcCtx derives a per-RPC context from the agent's lifetime context.
func (a *Agent) rpcCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(a.ctx, a.rpcTimeout())
}

// actingLeader reports whether this agent currently leads its group: it
// is the first candidate it believes alive (the replicated view doubles
// as the failure detector, so no election messages are needed).
func (a *Agent) actingLeader(group int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	cutoff := time.Now().Add(-a.failTimeout())
	for _, cand := range a.dir.Candidates(group, a.cfg.Replicas) {
		if cand == a.name {
			return true
		}
		if st, ok := a.view[cand]; ok && st.lastSeen.After(cutoff) {
			return false // an earlier candidate is alive
		}
	}
	return false
}

// sendSummary pushes this group's aggregate to the root MRM replicas.
func (a *Agent) sendSummary(group int, rootCands []string) {
	a.mu.Lock()
	alive := uint32(0)
	freeCPU := 0.0
	exports := make(map[string]bool)
	members := a.dir.Members(group)
	for _, m := range members {
		st, ok := a.view[m]
		if !ok && m == a.name {
			// The leader's own state may not round-trip through its
			// view; count it directly.
			alive++
			r := a.n.Report()
			freeCPU += r.CPUFree()
			for _, of := range a.n.AllOffers() {
				exports[of.PortRepoID] = true
			}
			continue
		}
		if !ok {
			continue
		}
		alive++
		freeCPU += st.report.CPUFree()
		for _, of := range st.offers {
			exports[of.PortRepoID] = true
		}
	}
	a.mu.Unlock()

	exportList := make([]string, 0, len(exports))
	for k := range exports {
		exportList = append(exportList, k)
	}
	payload := func(e *cdr.Encoder) {
		e.WriteULong(uint32(group))
		e.WriteULong(alive)
		e.WriteDouble(freeCPU)
		e.WriteStringSeq(exportList)
	}
	ctx, cancel := a.rpcCtx()
	defer cancel()
	for _, rc := range rootCands {
		if rc == a.name {
			// Local shortcut: ingest own summary directly.
			a.ingestSummary(group, alive, freeCPU, exportList)
			continue
		}
		ref, ok := a.refOf(rc)
		if !ok {
			continue
		}
		_ = ref.InvokeOnewayContext(ctx, "summary", payload)
	}
}

// reportDeaths escalates group members that fell silent beyond the
// failure timeout ("the MRM can suppose a node of the group has been
// down after some time-out"). Before accusing, the MRM performs the
// paper’s ping/reply handshake: a suspect that still answers a direct
// ping is merely slow (e.g. the whole system is CPU-starved during a
// join storm), not dead — its liveness is refreshed instead. Members
// never seen get a grace period before their first suspicion. Reported
// members are dropped from the view so the accusation happens once.
func (a *Agent) reportDeaths(group int) {
	cutoff := time.Now().Add(-a.failTimeout())
	graceCutoff := time.Now().Add(-4 * a.failTimeout())
	now := time.Now()
	a.mu.Lock()
	var suspects []string
	for _, m := range a.dir.Members(group) {
		if m == a.name {
			continue
		}
		if st, ok := a.view[m]; ok {
			if st.lastSeen.Before(cutoff) {
				suspects = append(suspects, m)
			}
			continue
		}
		// Never heard from this member: start (or check) its grace
		// clock.
		first, tracked := a.expected[m]
		switch {
		case !tracked:
			a.expected[m] = now
		case first.Before(graceCutoff):
			suspects = append(suspects, m)
		}
	}
	a.mu.Unlock()

	for _, name := range suspects {
		if ref, ok := a.refOf(name); ok {
			pingCtx, cancel := a.rpcCtx()
			err := ref.InvokeContext(pingCtx, "ping", nil, func(d *cdr.Decoder) error {
				_, e := d.ReadULongLong()
				return e
			})
			cancel()
			if err == nil {
				// Alive after all: refresh liveness, keep the view.
				a.mu.Lock()
				if st, ok := a.view[name]; ok {
					st.lastSeen = time.Now()
				} else {
					a.expected[name] = time.Now()
				}
				a.mu.Unlock()
				continue
			}
		}
		ctx, cancel := a.rpcCtx()
		err := a.callRoot(ctx, "report_dead", func(e *cdr.Encoder) { e.WriteString(name) }, nil)
		cancel()
		if err == nil {
			a.mu.Lock()
			delete(a.view, name)
			delete(a.expected, name)
			a.mu.Unlock()
		}
	}
}

// callRoot invokes an operation on the first reachable root MRM replica
// under ctx.
func (a *Agent) callRoot(ctx context.Context, op string, args orb.Marshaller, result orb.Unmarshaller) error {
	a.mu.Lock()
	rootCands := a.dir.RootCandidates(a.cfg.Replicas)
	a.mu.Unlock()
	var lastErr error = ErrNoRoot
	for _, rc := range rootCands {
		if err := ctx.Err(); err != nil {
			return err
		}
		if rc == a.name {
			// Self-call through the ORB's collocation path.
			ref := a.o.NewRef(a.CohesionIOR())
			if err := ref.InvokeContext(ctx, op, args, result); err == nil {
				return nil
			} else {
				lastErr = err
			}
			continue
		}
		ref, ok := a.refOf(rc)
		if !ok {
			continue
		}
		if err := ref.InvokeContext(ctx, op, args, result); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return lastErr
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

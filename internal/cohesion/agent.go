package cohesion

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/ior"
	"corbalc/internal/node"
	"corbalc/internal/orb"
)

// Mode selects the consistency protocol (paper §2.4.3).
type Mode int

// Consistency modes.
const (
	// Soft: periodic keep-alive updates to the group's MRM replicas;
	// MRMs hold an approximate view and time out silent nodes.
	Soft Mode = iota
	// Strong: every reflective change is immediately flooded to every
	// node, giving all of them "perfect knowledge" — the baseline the
	// paper argues is unscalable.
	Strong
)

// SendPolicy refines Soft updates.
type SendPolicy int

// Send policies.
const (
	// Periodic sends a full update every interval.
	Periodic SendPolicy = iota
	// DeadBand suppresses updates while the load stays within epsilon
	// of the last sent value (a keep-alive floor still applies).
	DeadBand
	// Predictive suppresses updates while a linear extrapolation of the
	// last two sent values tracks the real load within epsilon.
	Predictive
)

// KeyCohesion is the agent's object key in the node's adapter.
const KeyCohesion = "node/cohesion"

// CohesionRepoID is the CORBA interface ID of the cohesion agent.
const CohesionRepoID = "IDL:corbalc/NetworkCohesion:1.0"

// Errors returned by the agent.
var (
	ErrNotJoined = errors.New("cohesion: agent has not joined a network")
	ErrNoRoot    = errors.New("cohesion: no reachable root MRM")
)

// Config assembles an Agent.
type Config struct {
	Node *node.Node
	// GroupSize is the MRM fanout G (default 8).
	GroupSize int
	// Replicas is the number of peer MRM replicas per group (default 2).
	Replicas int
	// UpdateInterval is the soft-consistency period (default 500ms).
	UpdateInterval time.Duration
	// FailMultiple times UpdateInterval gives the failure timeout
	// (default 3).
	FailMultiple int
	// Mode selects Soft or Strong consistency.
	Mode Mode
	// Policy refines Soft sending.
	Policy SendPolicy
	// Epsilon is the dead-band width as a load fraction (default 0.05).
	Epsilon float64
	// GossipWindow is the per-destination coalescing window: protocol
	// messages queued for one peer within the window travel as a single
	// gossip_batch frame (default 2ms).
	GossipWindow time.Duration
	// GossipDepth bounds each destination's gossip queue; overflow
	// drops the oldest queued message (default 128).
	GossipDepth int
	// AntiEntropyTicks is the digest-ping period in update ticks
	// (default 4*(FailMultiple+1)).
	AntiEntropyTicks int
	// FullState reverts the discovery plane to the legacy exchange —
	// whole-directory broadcasts and point-to-point update oneways —
	// as the bandwidth baseline the delta-gossip plane is measured
	// against (E12). Strong mode implies it.
	FullState bool
}

func (c *Config) fill() {
	if c.GroupSize <= 0 {
		c.GroupSize = 8
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > c.GroupSize {
		c.Replicas = c.GroupSize
	}
	if c.UpdateInterval <= 0 {
		c.UpdateInterval = 500 * time.Millisecond
	}
	if c.FailMultiple <= 0 {
		c.FailMultiple = 3
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.05
	}
	if c.GossipWindow <= 0 {
		c.GossipWindow = 2 * time.Millisecond
	}
	if c.GossipDepth <= 0 {
		c.GossipDepth = 128
	}
	if c.AntiEntropyTicks <= 0 {
		c.AntiEntropyTicks = 4 * (c.FailMultiple + 1)
	}
}

// fullStateDir reports whether directory dissemination uses the legacy
// whole-snapshot broadcast: explicitly requested, or Strong mode (whose
// perfect-knowledge baseline already floods everything).
func (c *Config) fullStateDir() bool { return c.FullState || c.Mode == Strong }

// memberState is an MRM's knowledge of one node.
type memberState struct {
	report   *node.Report
	offers   []*node.Offer
	lastSeen time.Time
}

// peerSendState tracks what this node last shipped to one MRM replica,
// so periodic updates can omit the offer list while it is unchanged.
type peerSendState struct {
	offersEpoch uint64
}

// groupSummary is the root MRM's aggregated knowledge of one group
// ("a hierarchical treatment of network resources", §2.4.3).
type groupSummary struct {
	group    int
	alive    uint32
	freeCPU  float64
	exports  map[string]bool // provided port repo IDs in the group
	lastSeen time.Time
}

// Stats are protocol-level counters for the consistency experiments
// and the corbalc-admin cohesion view.
type Stats struct {
	UpdatesSent   uint64
	UpdateBytes   uint64
	UpdatesRecv   uint64
	QueriesSent   uint64
	QueriesServed uint64
	Floods        uint64

	// Delta-gossip counters (DESIGN.md §13).
	DeltasSent       uint64 // directory deltas enqueued (root + relays)
	DeltasRecv       uint64 // directory deltas received
	DeltasApplied    uint64 // deltas applied contiguously
	AntiEntropyPulls uint64 // sync_pull rounds issued on divergence
	PullsServed      uint64 // sync_pull rounds answered
	GossipBatches    uint64 // gossip_batch frames shipped
	GossipBytes      uint64 // bytes across shipped gossip frames
	VVSize           int    // current version-vector entry count
	RepairHintsSent  uint64 // push hints sent to peers seen behind
	RepairHintsRecv  uint64 // push hints received (each kicks a pull)

	// Directory snapshot (cohesion_stats remote view).
	Epoch  uint64
	Nodes  int
	Groups int
}

// Marshal encodes the stats for the cohesion_stats operation, ending in
// an extension blob so future counters never break older admin tools.
func (s *Stats) Marshal(e *cdr.Encoder) {
	e.WriteULongLong(s.Epoch)
	e.WriteULong(uint32(s.Nodes))
	e.WriteULong(uint32(s.Groups))
	e.WriteULong(uint32(s.VVSize))
	e.WriteULongLong(s.UpdatesSent)
	e.WriteULongLong(s.UpdateBytes)
	e.WriteULongLong(s.UpdatesRecv)
	e.WriteULongLong(s.QueriesSent)
	e.WriteULongLong(s.QueriesServed)
	e.WriteULongLong(s.Floods)
	e.WriteULongLong(s.DeltasSent)
	e.WriteULongLong(s.DeltasRecv)
	e.WriteULongLong(s.DeltasApplied)
	e.WriteULongLong(s.AntiEntropyPulls)
	e.WriteULongLong(s.PullsServed)
	e.WriteULongLong(s.GossipBatches)
	e.WriteULongLong(s.GossipBytes)
	// The repair-hint counters ride in the extension blob: admin tools
	// built before them still parse the frame, ones built after read
	// them out of the blob when present.
	ext := cdr.NewEncoder(cdr.LittleEndian)
	ext.WriteULongLong(s.RepairHintsSent)
	ext.WriteULongLong(s.RepairHintsRecv)
	e.WriteOctetSeq(ext.Bytes())
}

// UnmarshalStats decodes a cohesion_stats reply.
func UnmarshalStats(d *cdr.Decoder) (*Stats, error) {
	s := &Stats{}
	var err error
	if s.Epoch, err = d.ReadULongLong(); err != nil {
		return nil, err
	}
	readN := func(dst *int) {
		if err != nil {
			return
		}
		var v uint32
		if v, err = d.ReadULong(); err == nil {
			*dst = int(v)
		}
	}
	readN(&s.Nodes)
	readN(&s.Groups)
	readN(&s.VVSize)
	read64 := func(dst *uint64) {
		if err == nil {
			*dst, err = d.ReadULongLong()
		}
	}
	read64(&s.UpdatesSent)
	read64(&s.UpdateBytes)
	read64(&s.UpdatesRecv)
	read64(&s.QueriesSent)
	read64(&s.QueriesServed)
	read64(&s.Floods)
	read64(&s.DeltasSent)
	read64(&s.DeltasRecv)
	read64(&s.DeltasApplied)
	read64(&s.AntiEntropyPulls)
	read64(&s.PullsServed)
	read64(&s.GossipBatches)
	read64(&s.GossipBytes)
	if err != nil {
		return nil, err
	}
	ext, err := d.ReadOctetSeqAlias()
	if err != nil {
		return nil, err
	}
	if len(ext) >= 16 {
		ed := cdr.NewDecoder(ext, cdr.LittleEndian)
		s.RepairHintsSent, _ = ed.ReadULongLong()
		s.RepairHintsRecv, _ = ed.ReadULongLong()
	}
	return s, nil
}

// Agent runs the cohesion protocol for one node.
type Agent struct {
	cfg  Config
	n    *node.Node
	o    *orb.ORB
	name string

	mu        sync.Mutex
	dir       *Directory
	view      map[string]*memberState
	summaries map[int]*groupSummary
	// expected tracks when this MRM first counted on hearing from a
	// group member that has not reported yet; members silent from birth
	// beyond a grace period are declared dead too.
	expected map[string]time.Time
	// expectedGroups tracks when the root first counted on a group's
	// summaries (the same grace discipline, one tier up): a group whose
	// MRM candidates all died would otherwise go silent forever, since
	// non-candidate members never act as leader.
	expectedGroups map[int]time.Time
	// sent tracks per-destination send state for offer-delta updates.
	sent   map[string]*peerSendState
	joined bool
	// peerEpochs tracks, per gossiping peer, the epoch it last
	// advertised and for how many consecutive observations it has not
	// moved — the stuck detector behind repair hints. Stale alone is
	// not stuck: during churn a peer routinely advertises old epochs
	// while the deltas repairing it sit in the relay queue.
	peerEpochs map[string]*epochStreak
	// hintPulled is this node's own epoch the last time it honored a
	// repair hint with a pull: one hint-pull per stuck episode. The
	// leader keeps re-hinting a node that stays stuck (its pull may
	// have been lost), but honoring every re-hint while the first pull
	// is still queued behind a saturated root just multiplies load —
	// a genuinely lost pull is caught by periodic anti-entropy.
	hintPulled uint64

	// send-policy state
	lastSent   *node.Report
	prevSent   *node.Report
	lastSentAt time.Time
	prevSentAt time.Time
	forceSend  bool

	// ctx is the agent's lifetime context: every RPC the protocol makes
	// derives from it (with a per-call timeout), so Stop cancels all
	// in-flight calls.
	ctx    context.Context
	cancel context.CancelFunc

	stop  chan struct{}
	wg    sync.WaitGroup
	ticks uint64 // tick counter driving periodic anti-entropy
	// floodKick coalesces Strong-mode change floods: many rapid changes
	// collapse into one pending flood, and a single worker serialises
	// the sends so a change storm cannot pile up goroutines.
	floodKick chan struct{}
	// pushDir coalesces directory broadcasts the same way: under join
	// or removal storms only the newest directory needs to travel
	// (legacy full-state mode only).
	pushDir chan *Directory
	// pullKick coalesces divergence-triggered anti-entropy pulls: a gap
	// in the delta stream schedules one pull, however many deltas
	// arrived out of order.
	pullKick chan struct{}
	// gossip is the per-destination batching plane protocol messages
	// ride in delta mode.
	gossip *gossiper

	updatesSent   atomic.Uint64
	updateBytes   atomic.Uint64
	updatesRecv   atomic.Uint64
	queriesSent   atomic.Uint64
	queriesServed atomic.Uint64
	floods        atomic.Uint64
	deltasSent    atomic.Uint64
	deltasRecv    atomic.Uint64
	deltasApplied atomic.Uint64
	pulls         atomic.Uint64
	pullsServed   atomic.Uint64
	hintsSent     atomic.Uint64
	hintsRecv     atomic.Uint64
}

// NewAgent creates the agent and activates its servant on the node's
// ORB; it does not start the protocol until Bootstrap or Join.
func NewAgent(cfg Config) *Agent {
	cfg.fill()
	a := &Agent{
		cfg:            cfg,
		n:              cfg.Node,
		o:              cfg.Node.ORB(),
		dir:            NewDirectory(),
		view:           make(map[string]*memberState),
		summaries:      make(map[int]*groupSummary),
		expected:       make(map[string]time.Time),
		expectedGroups: make(map[int]time.Time),
		sent:           make(map[string]*peerSendState),
		peerEpochs:     make(map[string]*epochStreak),
		hintPulled:     ^uint64(0),
		stop:           make(chan struct{}),
		pushDir:        make(chan *Directory, 1),
		pullKick:       make(chan struct{}, 1),
	}
	a.ctx, a.cancel = context.WithCancel(context.Background())
	a.gossip = newGossiper(a)
	a.name = cfg.Node.Name()
	a.o.Activate(KeyCohesion, &agentServant{a: a})
	if cfg.Mode == Strong {
		a.floodKick = make(chan struct{}, 1)
		a.n.SetChangeListener(func() {
			select {
			case a.floodKick <- struct{}{}:
			default: // a flood is already pending; it will carry this change
			}
		})
	}
	return a
}

// Desc mints this agent's directory entry. IORs are minted lazily so
// they carry the profiles of every transport attached by the time the
// agent joins a network.
func (a *Agent) Desc() *NodeDesc {
	return &NodeDesc{
		Name:       a.name,
		Capability: string(a.n.Resources().Profile().Capability),
		Cohesion:   a.o.NewIOR(CohesionRepoID, KeyCohesion),
		Registry:   a.n.RegistryIOR(),
		Acceptor:   a.n.AcceptorIOR(),
		Resources:  a.n.ResourcesIOR(),
	}
}

// CohesionIOR returns the agent's own servant reference, used as a join
// contact by other nodes.
func (a *Agent) CohesionIOR() *ior.IOR { return a.o.NewIOR(CohesionRepoID, KeyCohesion) }

// Stats snapshots the protocol counters.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	vv := len(a.dir.Versions)
	epoch := a.dir.Epoch
	nodes := len(a.dir.Nodes)
	groups := len(a.dir.Groups)
	a.mu.Unlock()
	return Stats{
		Epoch:            epoch,
		Nodes:            nodes,
		Groups:           groups,
		UpdatesSent:      a.updatesSent.Load(),
		UpdateBytes:      a.updateBytes.Load(),
		UpdatesRecv:      a.updatesRecv.Load(),
		QueriesSent:      a.queriesSent.Load(),
		QueriesServed:    a.queriesServed.Load(),
		Floods:           a.floods.Load(),
		DeltasSent:       a.deltasSent.Load(),
		DeltasRecv:       a.deltasRecv.Load(),
		DeltasApplied:    a.deltasApplied.Load(),
		AntiEntropyPulls: a.pulls.Load(),
		PullsServed:      a.pullsServed.Load(),
		GossipBatches:    a.gossip.batches.Load(),
		GossipBytes:      a.gossip.bytes.Load(),
		VVSize:           vv,
		RepairHintsSent:  a.hintsSent.Load(),
		RepairHintsRecv:  a.hintsRecv.Load(),
	}
}

// Stamp returns the O(1) convergence probe of the agent's directory:
// swarm tests compare (epoch, size, membership hash) across thousands
// of agents without cloning anything.
func (a *Agent) Stamp() (epoch uint64, n int, xor uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dir.Stamp()
}

// MemberView is one member's state as known to an MRM: its directory
// entry plus the latest soft-consistency report and offers.
type MemberView struct {
	Desc   *NodeDesc
	Report *node.Report
	Offers []*node.Offer
}

// GroupView snapshots this MRM's live member states (fresh within the
// failure timeout). The network-level load balancer consumes it.
func (a *Agent) GroupView() []MemberView {
	cutoff := time.Now().Add(-a.failTimeout())
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]MemberView, 0, len(a.view))
	for name, st := range a.view {
		if st.lastSeen.Before(cutoff) {
			continue
		}
		desc, ok := a.dir.Nodes[name]
		if !ok {
			continue
		}
		out = append(out, MemberView{Desc: desc, Report: st.report, Offers: st.offers})
	}
	return out
}

// Directory snapshots the agent's current view of membership.
func (a *Agent) Directory() *Directory {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dir.Clone()
}

// Bootstrap makes this agent the first node of a new logical network and
// starts its protocol loop.
func (a *Agent) Bootstrap() {
	a.mu.Lock()
	dir := NewDirectory()
	dir.Assign(a.Desc(), a.cfg.GroupSize)
	a.dir = dir
	a.joined = true
	a.mu.Unlock()
	a.start()
}

// Join enters an existing network through any member's cohesion
// reference and starts the protocol loop.
func (a *Agent) Join(contact *ior.IOR) error {
	ref := a.o.NewRef(contact)
	var dir *Directory
	desc := a.Desc()
	ctx, cancel := a.rpcCtx()
	defer cancel()
	err := ref.InvokeContext(ctx, "join",
		func(e *cdr.Encoder) { desc.Marshal(e) },
		func(d *cdr.Decoder) error {
			var e error
			dir, e = UnmarshalDirectory(d)
			return e
		})
	if err != nil {
		return fmt.Errorf("cohesion: join: %w", err)
	}
	a.mu.Lock()
	a.dir = dir
	a.joined = true
	a.forceSend = true
	a.mu.Unlock()
	a.start()
	if a.cfg.Mode == Strong {
		a.floodReport()
	}
	return nil
}

// Leave departs gracefully: the root removes this node and broadcasts
// the new directory.
func (a *Agent) Leave() {
	a.mu.Lock()
	joined := a.joined
	a.joined = false
	a.mu.Unlock()
	if joined {
		ctx, cancel := a.rpcCtx()
		_ = a.callRoot(ctx, "leave", func(e *cdr.Encoder) { e.WriteString(a.name) }, nil)
		cancel()
	}
	a.Stop()
}

// Stop halts the protocol loop without notifying anyone (crash
// simulation pairs this with simnet.SetDown).
func (a *Agent) Stop() {
	a.mu.Lock()
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	a.mu.Unlock()
	a.cancel()       // aborts in-flight protocol RPCs
	a.gossip.close() // drains per-destination forwarders
	a.wg.Wait()
}

func (a *Agent) start() {
	a.wg.Add(1)
	go a.loop()
	a.wg.Add(1)
	go a.pullLoop()
	if a.cfg.fullStateDir() {
		a.wg.Add(1)
		go a.broadcastLoop()
	}
	if a.cfg.Mode == Strong {
		a.wg.Add(1)
		go a.floodLoop()
	}
}

// pullLoop serialises divergence-triggered anti-entropy pulls.
func (a *Agent) pullLoop() {
	defer a.wg.Done()
	for {
		select {
		case <-a.stop:
			return
		case <-a.pullKick:
			a.syncDirectory()
		}
	}
}

// kickPull schedules one anti-entropy pull, coalescing with any pending
// one.
func (a *Agent) kickPull() {
	select {
	case a.pullKick <- struct{}{}:
	default:
	}
}

// broadcastLoop drains coalesced directory broadcasts (root duty).
func (a *Agent) broadcastLoop() {
	defer a.wg.Done()
	for {
		select {
		case <-a.stop:
			return
		case dir := <-a.pushDir:
			a.broadcastDirectory(dir)
		}
	}
}

// kickBroadcast schedules a directory broadcast, replacing any pending
// older one.
func (a *Agent) kickBroadcast(dir *Directory) {
	for {
		select {
		case a.pushDir <- dir:
			return
		default:
			select {
			case <-a.pushDir: // discard the stale pending directory
			default:
			}
		}
	}
}

// floodLoop drains coalesced change notifications in Strong mode.
func (a *Agent) floodLoop() {
	defer a.wg.Done()
	for {
		select {
		case <-a.stop:
			return
		case <-a.floodKick:
			a.floodReport()
		}
	}
}

func (a *Agent) loop() {
	defer a.wg.Done()
	t := time.NewTicker(a.cfg.UpdateInterval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.tick()
		}
	}
}

// tickSnapshot captures the directory state one tick needs; ok is false
// until the agent has joined.
func (a *Agent) tickSnapshot() (group int, cands, rootCands []string, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.joined {
		return 0, nil, nil, false
	}
	group = a.dir.GroupOf(a.name)
	cands = a.dir.Candidates(group, a.cfg.Replicas)
	rootCands = a.dir.RootCandidates(a.cfg.Replicas)
	return group, cands, rootCands, true
}

// tick performs this node's periodic duties.
func (a *Agent) tick() {
	group, cands, rootCands, ok := a.tickSnapshot()
	if !ok {
		return
	}
	a.ticks++
	syncDue := a.ticks%uint64(a.cfg.AntiEntropyTicks) == 0
	if group < 0 {
		// This node no longer appears in its own directory: it applied a
		// delta (or adopted a snapshot) that expelled it. Every periodic
		// duty is suspended — but anti-entropy must keep running, because
		// it IS the rejoin path. Without this a node whose single
		// expulsion-triggered pull failed (routine under load) would wedge
		// forever: no deltas arrive for non-members, and nothing else ever
		// re-kicks the pull.
		if syncDue {
			a.syncDirectory()
		}
		return
	}

	switch a.cfg.Mode {
	case Soft:
		if report, offers, full, send := a.policyDecide(); send {
			a.sendUpdate(cands, report, offers, full)
		}
	case Strong:
		// Liveness keep-alive only; changes flood immediately.
		report := a.n.Report()
		a.sendUpdate(cands, &report, nil, false)
	}

	// MRM replica duties. Stale view entries are not deleted here: the
	// failure timeout filters them out of every read, and reportDeaths
	// needs to see them once to escalate to the root.
	if contains(cands, a.name) && a.actingLeader(group) {
		a.sendSummary(group, rootCands)
		a.reportDeaths(group)
	}

	// Root duty one tier up: groups whose summaries went silent have
	// lost every MRM candidate — reap the dead candidates so the next
	// members become candidates and the group rejoins the hierarchy.
	if a.actingRootLeader() {
		a.reapSilentGroups()
	}

	// Anti-entropy: periodically compare directory epochs with the root
	// (one tiny digest ping) and pull a version-vector patch only on
	// divergence. This repairs dropped deltas and detects false
	// expulsion (a member the root timed out during a stall): an
	// expelled node rejoins. The real root leader runs it too — its
	// digest ping self-resolves to "same epoch" for free, while a node
	// that merely *believes* it leads (a stale directory after a healed
	// partition) reaches the actual root through its own candidate list
	// and repairs itself.
	if syncDue {
		a.syncDirectory()
	}
}

// syncDirectory compares epochs with the root (a digest ping) and
// reconciles on divergence: pull a version-vector patch carrying only
// the entries this node lacks, or rejoin if this node has been
// expelled.
func (a *Agent) syncDirectory() {
	// Each phase gets a fresh context: under CPU saturation a slow ping
	// can consume most of one rpcTimeout, and the pull — and above all
	// the rejoin — must not start with an exhausted budget.
	var rootEpoch uint64
	err := func() error {
		ctx, cancel := a.rpcCtx()
		defer cancel()
		return a.callRoot(ctx, "ping", nil, func(d *cdr.Decoder) error {
			var e error
			rootEpoch, e = d.ReadULongLong()
			return e
		})
	}()
	if err != nil {
		return
	}
	a.mu.Lock()
	same := rootEpoch == a.dir.Epoch
	expelled := a.dir.GroupOf(a.name) < 0
	vv := make(map[string]uint64, len(a.dir.Versions))
	for k, v := range a.dir.Versions {
		vv[k] = v
	}
	a.mu.Unlock()
	// An expelled node (it applied the delta that removed it) can carry
	// the root's exact epoch — matching digests must not stop the pull
	// that leads to its rejoin.
	if same && !expelled {
		return
	}

	a.pulls.Add(1)
	var patch *DirectoryPatch
	err = func() error {
		ctx, cancel := a.rpcCtx()
		defer cancel()
		return a.callRoot(ctx, "sync_pull",
			func(e *cdr.Encoder) { MarshalVersionVector(e, vv) },
			func(d *cdr.Decoder) error {
				var e error
				patch, e = UnmarshalPatch(d)
				return e
			})
	}()
	if err != nil || patch == nil {
		return
	}

	member := false
	for _, g := range patch.Groups {
		if contains(g, a.name) {
			member = true
			break
		}
	}
	if !member {
		// Falsely expelled (or the root lost us): rejoin through the
		// root and adopt the resulting directory.
		desc := a.Desc()
		var fresh *Directory
		ctx, cancel := a.rpcCtx()
		defer cancel()
		err := a.callRoot(ctx, "join",
			func(e *cdr.Encoder) { desc.Marshal(e) },
			func(d *cdr.Decoder) error {
				var e error
				fresh, e = UnmarshalDirectory(d)
				return e
			})
		if err == nil && fresh != nil {
			a.mu.Lock()
			if fresh.Epoch > a.dir.Epoch {
				a.dir = fresh
			}
			a.forceSend = true
			a.mu.Unlock()
			a.pruneGossip()
		}
		return
	}

	a.mu.Lock()
	adopted := false
	if patch.Epoch > a.dir.Epoch {
		if dir, ok := patch.Rebuild(a.dir.Nodes); ok {
			a.dir = dir
			adopted = true
		}
	}
	a.mu.Unlock()
	if adopted {
		a.pruneGossip()
		return
	}
	if patch.Epoch <= a.dir.Epoch {
		return
	}

	// The patch did not cover a member this node never saw (e.g. its
	// state predates the root's log entirely): fall back to the full
	// snapshot.
	var dir *Directory
	ctx, cancel := a.rpcCtx()
	defer cancel()
	err = a.callRoot(ctx, "get_directory", nil, func(d *cdr.Decoder) error {
		var e error
		dir, e = UnmarshalDirectory(d)
		return e
	})
	if err == nil && dir != nil {
		a.installDirectory(dir)
	}
}

// pruneGossip reclaims gossip channels for destinations that left the
// directory.
func (a *Agent) pruneGossip() {
	a.mu.Lock()
	members := make(map[string]*NodeDesc, len(a.dir.Nodes))
	for k, v := range a.dir.Nodes {
		members[k] = v
	}
	for name := range a.sent {
		if _, ok := members[name]; !ok {
			delete(a.sent, name)
		}
	}
	for name := range a.peerEpochs {
		if _, ok := members[name]; !ok {
			delete(a.peerEpochs, name)
		}
	}
	a.mu.Unlock()
	a.gossip.prune(members)
}

// policyDecide applies the send policy; it returns the report/offers to
// send, whether this is a full (keep-alive or forced) update that must
// carry offers regardless of per-peer delta state, and whether to send
// at all.
func (a *Agent) policyDecide() (report *node.Report, offers []*node.Offer, full, send bool) {
	r := a.n.Report()
	offers = a.n.AllOffers()
	now := time.Now()
	keepAliveFloor := a.cfg.UpdateInterval * time.Duration(a.cfg.FailMultiple) / 2

	a.mu.Lock()
	defer a.mu.Unlock()
	if a.forceSend || a.lastSent == nil || now.Sub(a.lastSentAt) >= keepAliveFloor ||
		a.lastSent.Digest != r.Digest {
		a.recordSentLocked(&r, now)
		return &r, offers, true, true
	}
	switch a.cfg.Policy {
	case Periodic:
		a.recordSentLocked(&r, now)
		return &r, offers, false, true
	case DeadBand:
		if math.Abs(r.LoadFraction()-a.lastSent.LoadFraction()) > a.cfg.Epsilon {
			a.recordSentLocked(&r, now)
			return &r, offers, false, true
		}
		return nil, nil, false, false
	case Predictive:
		predicted := a.predictLocked(now)
		if math.Abs(r.LoadFraction()-predicted) > a.cfg.Epsilon {
			a.recordSentLocked(&r, now)
			return &r, offers, false, true
		}
		return nil, nil, false, false
	}
	a.recordSentLocked(&r, now)
	return &r, offers, false, true
}

func (a *Agent) recordSentLocked(r *node.Report, now time.Time) {
	a.prevSent, a.prevSentAt = a.lastSent, a.lastSentAt
	a.lastSent, a.lastSentAt = r, now
	a.forceSend = false
}

// predictLocked linearly extrapolates load from the last two sent
// reports.
func (a *Agent) predictLocked(now time.Time) float64 {
	if a.lastSent == nil {
		return 0
	}
	if a.prevSent == nil || !a.lastSentAt.After(a.prevSentAt) {
		return a.lastSent.LoadFraction()
	}
	dt := a.lastSentAt.Sub(a.prevSentAt).Seconds()
	slope := (a.lastSent.LoadFraction() - a.prevSent.LoadFraction()) / dt
	return a.lastSent.LoadFraction() + slope*now.Sub(a.lastSentAt).Seconds()
}

// sendUpdate pushes one update to each MRM replica candidate. In delta
// mode the update rides the gossip plane and carries the offer list
// only when it changed for that destination (or on keep-alive refresh);
// the legacy full-state/Strong path keeps point-to-point oneways with
// offers always attached.
func (a *Agent) sendUpdate(cands []string, report *node.Report, offers []*node.Offer, full bool) {
	if a.cfg.fullStateDir() {
		payload := func(e *cdr.Encoder) {
			report.Marshal(e)
			node.MarshalOffers(e, offers)
		}
		// Measure the payload size once for accounting.
		sizer := cdr.NewEncoder(cdr.LittleEndian)
		payload(sizer)
		ctx, cancel := a.rpcCtx()
		defer cancel()
		for _, cand := range cands {
			ref, ok := a.refOf(cand)
			if !ok {
				continue
			}
			a.updatesSent.Add(1)
			a.updateBytes.Add(uint64(sizer.Len()))
			_ = ref.InvokeOnewayContext(ctx, "update", payload)
		}
		return
	}

	// Encode the two possible bodies once; destinations share them
	// (the gossip queue treats bodies as immutable). Both advertise this
	// node's directory epoch so a fresher receiver can push a repair
	// hint back instead of leaving the gap to the next anti-entropy
	// tick.
	a.mu.Lock()
	epoch := a.dir.Epoch
	a.mu.Unlock()
	slim := encodeUpdate(report, nil, false, epoch)
	var fat []byte // built lazily: steady state never needs it
	for _, cand := range cands {
		withOffers := full
		a.mu.Lock()
		st := a.sent[cand]
		if st == nil {
			st = &peerSendState{offersEpoch: ^uint64(0)}
			a.sent[cand] = st
		}
		if st.offersEpoch != report.OffersEpoch {
			withOffers = true
		}
		if withOffers {
			st.offersEpoch = report.OffersEpoch
		}
		a.mu.Unlock()
		body := slim
		if withOffers {
			if fat == nil {
				fat = encodeUpdate(report, offers, true, epoch)
			}
			body = fat
		}
		a.updatesSent.Add(1)
		a.updateBytes.Add(uint64(len(body)))
		a.gossip.enqueue(cand, gossipUpdate, body)
	}
}

// encodeUpdate builds a gossip update body: the report, then a flag
// distinguishing "offers unchanged, keep what you have" from an actual
// (possibly empty) offer list, then the sender's directory epoch. The
// epoch is a trailing field: gossip entries are length-delimited, so
// decoders that predate it simply never read those bytes.
func encodeUpdate(report *node.Report, offers []*node.Offer, hasOffers bool, epoch uint64) []byte {
	e := cdr.NewEncoder(cdr.LittleEndian)
	report.Marshal(e)
	e.WriteBool(hasOffers)
	if hasOffers {
		node.MarshalOffers(e, offers)
	}
	e.WriteULongLong(epoch)
	return e.Bytes()
}

// epochStreak is one peer's entry in the stuck detector: the epoch it
// last advertised and how many consecutive observations it has sat
// there.
type epochStreak struct {
	epoch  uint64
	streak int
}

// hintStreak is how many consecutive no-progress advertisements mark a
// peer as stuck rather than merely lagging. Hints repeat every
// hintStreak further static observations (the cooldown), so a peer
// whose pull was lost gets another one.
const hintStreak = 3

// observePeerEpoch reacts to a peer advertising its directory epoch in
// gossip traffic — the push half of anti-entropy (DESIGN.md §13). A
// stuck peer gets a repair hint so it pulls now instead of coasting to
// its next periodic digest ping; matching epochs (the steady state)
// cost one map touch.
//
// Two dampers keep this from amplifying churn into a pull storm (the
// naive everyone-hints-on-stale version measured ~60k pulls served and
// 2.5× the control bandwidth at N=1000):
//
//   - mayHint scopes hinting to the node responsible for the peer —
//     the acting group leader for a member's update, the acting root
//     leader for a group leader's summary. Everyone still *tracks*
//     epochs (leadership can change), but only the responsible node
//     acts.
//   - stale ≠ stuck: under churn a peer advertises old epochs while
//     the deltas repairing it sit in the relay queue, so the hint
//     waits for hintStreak consecutive observations with no progress,
//     and repeats only every hintStreak thereafter.
func (a *Agent) observePeerEpoch(peer string, peerEpoch uint64, mayHint bool) {
	a.mu.Lock()
	own := a.dir.Epoch
	_, known := a.dir.Nodes[peer]
	st := a.peerEpochs[peer]
	if st == nil {
		st = &epochStreak{}
		a.peerEpochs[peer] = st
	}
	if st.epoch == peerEpoch {
		st.streak++
	} else {
		st.epoch, st.streak = peerEpoch, 1
	}
	hint := mayHint && known && peerEpoch < own &&
		st.streak >= hintStreak && st.streak%hintStreak == 0
	a.mu.Unlock()
	if hint {
		e := cdr.NewEncoder(cdr.LittleEndian)
		e.WriteULongLong(own)
		a.hintsSent.Add(1)
		a.gossip.enqueue(peer, gossipHint, e.Bytes())
	}
}

// actingLeaderFor reports whether this agent is the acting leader of
// peer's group — the node responsible for pushing repair hints at it.
func (a *Agent) actingLeaderFor(peer string) bool {
	a.mu.Lock()
	g := a.dir.GroupOf(peer)
	a.mu.Unlock()
	return g >= 0 && a.actingLeader(g)
}

// memberNames snapshots the directory membership; ok is false until the
// agent has joined.
func (a *Agent) memberNames() (names []string, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.joined {
		return nil, false
	}
	return a.dir.Names(), true
}

// floodReport sends this node's report to every node (Strong mode).
func (a *Agent) floodReport() {
	names, ok := a.memberNames()
	if !ok {
		return
	}
	report := a.n.Report()
	offers := a.n.AllOffers()
	payload := func(e *cdr.Encoder) {
		report.Marshal(e)
		node.MarshalOffers(e, offers)
	}
	sizer := cdr.NewEncoder(cdr.LittleEndian)
	payload(sizer)
	a.floods.Add(1)
	ctx, cancel := a.rpcCtx()
	defer cancel()
	for _, name := range names {
		if name == a.name {
			continue
		}
		ref, ok := a.refOf(name)
		if !ok {
			continue
		}
		a.updatesSent.Add(1)
		a.updateBytes.Add(uint64(sizer.Len()))
		_ = ref.InvokeOnewayContext(ctx, "update", payload)
	}
}

// refOf builds an invocable ref to another agent's cohesion servant.
func (a *Agent) refOf(name string) (*orb.ObjectRef, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	nd, ok := a.dir.Nodes[name]
	if !ok {
		return nil, false
	}
	return a.o.NewRef(nd.Cohesion), true
}

// failTimeout is the silence duration after which a node is suspected
// dead.
func (a *Agent) failTimeout() time.Duration {
	return a.cfg.UpdateInterval * time.Duration(a.cfg.FailMultiple)
}

// rpcTimeout bounds one protocol RPC: generous against the failure
// timeout so a slow-but-alive peer is not cut off, with a 2s floor
// protecting experiments that compress UpdateInterval.
func (a *Agent) rpcTimeout() time.Duration {
	if t := 4 * a.failTimeout(); t > 2*time.Second {
		return t
	}
	return 2 * time.Second
}

// rpcCtx derives a per-RPC context from the agent's lifetime context.
func (a *Agent) rpcCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(a.ctx, a.rpcTimeout())
}

// actingLeader reports whether this agent currently leads its group: it
// is the first candidate it believes alive (the replicated view doubles
// as the failure detector, so no election messages are needed).
func (a *Agent) actingLeader(group int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	cutoff := time.Now().Add(-a.failTimeout())
	for _, cand := range a.dir.Candidates(group, a.cfg.Replicas) {
		if cand == a.name {
			return true
		}
		if st, ok := a.view[cand]; ok && st.lastSeen.After(cutoff) {
			return false // an earlier candidate is alive
		}
	}
	return false
}

// sendSummary pushes this group's aggregate to the root MRM replicas.
// In delta mode the digest also advertises the leader's name and
// directory epoch, so a fresher root pushes a repair hint straight back
// (observePeerEpoch) — candidates are the relay tier, and a stale
// leader starves its whole group of deltas until repaired.
func (a *Agent) sendSummary(group int, rootCands []string) {
	a.mu.Lock()
	epoch := a.dir.Epoch
	alive := uint32(0)
	freeCPU := 0.0
	exports := make(map[string]bool)
	members := a.dir.Members(group)
	for _, m := range members {
		st, ok := a.view[m]
		if !ok && m == a.name {
			// The leader's own state may not round-trip through its
			// view; count it directly.
			alive++
			r := a.n.Report()
			freeCPU += r.CPUFree()
			for _, of := range a.n.AllOffers() {
				exports[of.PortRepoID] = true
			}
			continue
		}
		if !ok {
			continue
		}
		alive++
		freeCPU += st.report.CPUFree()
		for _, of := range st.offers {
			exports[of.PortRepoID] = true
		}
	}
	a.mu.Unlock()

	exportList := make([]string, 0, len(exports))
	for k := range exports {
		exportList = append(exportList, k)
	}
	payload := func(e *cdr.Encoder) {
		e.WriteULong(uint32(group))
		e.WriteULong(alive)
		e.WriteDouble(freeCPU)
		e.WriteStringSeq(exportList)
	}
	var body []byte
	if !a.cfg.fullStateDir() {
		e := cdr.NewEncoder(cdr.LittleEndian)
		payload(e)
		e.WriteULongLong(epoch) // trailing fields: older decoders stop short
		e.WriteString(a.name)
		body = e.Bytes()
	}
	ctx, cancel := a.rpcCtx()
	defer cancel()
	for _, rc := range rootCands {
		if rc == a.name {
			// Local shortcut: ingest own summary directly.
			a.ingestSummary(group, alive, freeCPU, exportList)
			continue
		}
		if body != nil {
			a.gossip.enqueue(rc, gossipSummary, body)
			continue
		}
		ref, ok := a.refOf(rc)
		if !ok {
			continue
		}
		_ = ref.InvokeOnewayContext(ctx, "summary", payload)
	}
}

// reportDeaths escalates group members that fell silent beyond the
// failure timeout ("the MRM can suppose a node of the group has been
// down after some time-out"). Before accusing, the MRM performs the
// paper’s ping/reply handshake: a suspect that still answers a direct
// ping is merely slow (e.g. the whole system is CPU-starved during a
// join storm), not dead — its liveness is refreshed instead. Members
// never seen get a grace period before their first suspicion. Reported
// members are dropped from the view so the accusation happens once.
func (a *Agent) reportDeaths(group int) {
	cutoff := time.Now().Add(-a.failTimeout())
	graceCutoff := time.Now().Add(-4 * a.failTimeout())
	now := time.Now()
	a.mu.Lock()
	var suspects []string
	for _, m := range a.dir.Members(group) {
		if m == a.name {
			continue
		}
		if st, ok := a.view[m]; ok {
			if st.lastSeen.Before(cutoff) {
				suspects = append(suspects, m)
			}
			continue
		}
		// Never heard from this member: start (or check) its grace
		// clock.
		first, tracked := a.expected[m]
		switch {
		case !tracked:
			a.expected[m] = now
		case first.Before(graceCutoff):
			suspects = append(suspects, m)
		}
	}
	a.mu.Unlock()

	for _, name := range suspects {
		if ref, ok := a.refOf(name); ok {
			pingCtx, cancel := a.rpcCtx()
			err := ref.InvokeContext(pingCtx, "ping", nil, func(d *cdr.Decoder) error {
				_, e := d.ReadULongLong()
				return e
			})
			cancel()
			if err == nil {
				// Alive after all: refresh liveness, keep the view.
				a.mu.Lock()
				if st, ok := a.view[name]; ok {
					st.lastSeen = time.Now()
				} else {
					a.expected[name] = time.Now()
				}
				a.mu.Unlock()
				continue
			}
		}
		ctx, cancel := a.rpcCtx()
		err := a.callRoot(ctx, "report_dead", func(e *cdr.Encoder) { e.WriteString(name) }, nil)
		cancel()
		if err == nil {
			a.mu.Lock()
			delete(a.view, name)
			delete(a.expected, name)
			a.mu.Unlock()
		}
	}
}

// reapSilentGroups is the root leader's guard against a group losing
// every MRM candidate at once: members beyond the candidate set never
// act as leader, so such a group would stop sending summaries (and stop
// reporting its own deaths) forever. A group whose summaries went
// silent beyond the grace window gets its candidates pinged directly;
// the unresponsive ones are removed, promoting the next members to
// candidates.
func (a *Agent) reapSilentGroups() {
	now := time.Now()
	staleCutoff := now.Add(-4 * a.failTimeout())
	a.mu.Lock()
	own := a.dir.GroupOf(a.name)
	var suspects []string
	for g := range a.dir.Groups {
		if g == own || len(a.dir.Groups[g]) == 0 {
			// The root's own group is covered by its reportDeaths duty.
			continue
		}
		if sum, ok := a.summaries[g]; ok && sum.lastSeen.After(staleCutoff) {
			delete(a.expectedGroups, g)
			continue
		}
		first, tracked := a.expectedGroups[g]
		switch {
		case !tracked:
			a.expectedGroups[g] = now
		case first.Before(staleCutoff):
			suspects = append(suspects, a.dir.Candidates(g, a.cfg.Replicas)...)
			a.expectedGroups[g] = now // re-arm: one reap round per window
		}
	}
	a.mu.Unlock()

	for _, name := range suspects {
		if ref, ok := a.refOf(name); ok {
			pingCtx, cancel := a.rpcCtx()
			err := ref.InvokeContext(pingCtx, "ping", nil, func(d *cdr.Decoder) error {
				_, e := d.ReadULongLong()
				return e
			})
			cancel()
			if err == nil {
				continue // alive: let it resume its summary duty
			}
		}
		ctx, cancel := a.rpcCtx()
		_ = a.handleRemoval(ctx, name)
		cancel()
	}
}

// callRoot invokes an operation on the first reachable root MRM replica
// under ctx.
func (a *Agent) callRoot(ctx context.Context, op string, args orb.Marshaller, result orb.Unmarshaller) error {
	a.mu.Lock()
	rootCands := a.dir.RootCandidates(a.cfg.Replicas)
	a.mu.Unlock()
	var lastErr error = ErrNoRoot
	for _, rc := range rootCands {
		if err := ctx.Err(); err != nil {
			return err
		}
		if rc == a.name {
			// Self-call through the ORB's collocation path.
			ref := a.o.NewRef(a.CohesionIOR())
			if err := ref.InvokeContext(ctx, op, args, result); err == nil {
				return nil
			} else {
				lastErr = err
			}
			continue
		}
		ref, ok := a.refOf(rc)
		if !ok {
			continue
		}
		if err := ref.InvokeContext(ctx, op, args, result); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return lastErr
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

package cohesion

import (
	"fmt"
	"sort"

	"corbalc/internal/cdr"
)

// This file carries the incremental wire forms of the discovery plane
// (DESIGN.md §13). The root MRM is the directory's single writer, so
// every mutation advances the epoch by exactly one and can be shipped
// as a DirectoryDelta: members apply contiguous deltas in place,
// ignore duplicates, and fall back to an anti-entropy pull — a
// DirectoryPatch keyed on the puller's version vector — when they see
// a gap. Both forms end in a length-prefixed extension blob so future
// fields never break older decoders.

// DirUpsert records one entry added or refreshed by a delta or patch.
type DirUpsert struct {
	// Group is the index the root placed the node into.
	Group int32
	// Version is the entry's version-vector value (the epoch at which
	// it last changed).
	Version uint64
	// Desc is the node's directory entry.
	Desc *NodeDesc
}

// DirectoryDelta is one root mutation: the epoch transition plus the
// entries it upserted or removed.
type DirectoryDelta struct {
	From, To uint64
	Upserts  []DirUpsert
	Removes  []string
}

// Marshal encodes the delta.
func (dd *DirectoryDelta) Marshal(e *cdr.Encoder) { dd.marshalExt(e, nil) }

func (dd *DirectoryDelta) marshalExt(e *cdr.Encoder, ext []byte) {
	e.WriteULongLong(dd.From)
	e.WriteULongLong(dd.To)
	e.WriteULong(uint32(len(dd.Upserts)))
	for _, up := range dd.Upserts {
		e.WriteLong(up.Group)
		e.WriteULongLong(up.Version)
		up.Desc.Marshal(e)
	}
	e.WriteStringSeq(dd.Removes)
	e.WriteOctetSeq(ext)
}

// UnmarshalDelta decodes a delta, skipping unknown trailing fields.
func UnmarshalDelta(d *cdr.Decoder) (*DirectoryDelta, error) {
	dd := &DirectoryDelta{}
	var err error
	if dd.From, err = d.ReadULongLong(); err != nil {
		return nil, err
	}
	if dd.To, err = d.ReadULongLong(); err != nil {
		return nil, err
	}
	nu, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining())/12 < nu {
		return nil, cdr.ErrTooLong
	}
	dd.Upserts = make([]DirUpsert, 0, nu)
	for i := uint32(0); i < nu; i++ {
		var up DirUpsert
		if up.Group, err = d.ReadLong(); err != nil {
			return nil, err
		}
		if up.Version, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if up.Desc, err = UnmarshalNodeDesc(d); err != nil {
			return nil, fmt.Errorf("cohesion: delta upsert %d: %w", i, err)
		}
		dd.Upserts = append(dd.Upserts, up)
	}
	if dd.Removes, err = d.ReadStringSeq(); err != nil {
		return nil, err
	}
	if _, err := d.ReadOctetSeqAlias(); err != nil { // skip extensions
		return nil, err
	}
	return dd, nil
}

// Apply replays a contiguous delta (From == dir.Epoch) in place,
// reproducing the root's mutation exactly: removals shrink groups
// without renumbering them, upserts land in the group the root chose,
// and the epoch jumps to To. The caller has already checked contiguity.
func (dir *Directory) Apply(dd *DirectoryDelta) {
	for _, name := range dd.Removes {
		dir.drop(name)
	}
	for _, up := range dd.Upserts {
		dir.place(up)
	}
	dir.Epoch = dd.To
}

// place installs one upsert: a refresh keeps the node's group, a new
// member is appended to the group the root picked (growing the group
// table when the root opened a fresh group).
func (dir *Directory) place(up DirUpsert) {
	name := up.Desc.Name
	if dir.GroupOf(name) < 0 {
		for int(up.Group) >= len(dir.Groups) {
			dir.Groups = append(dir.Groups, nil)
		}
		dir.Groups[up.Group] = append(dir.Groups[up.Group], name)
		dir.memberXor ^= nameHash(name)
	}
	dir.Nodes[name] = up.Desc
	if dir.Versions == nil {
		dir.Versions = make(map[string]uint64)
	}
	dir.Versions[name] = up.Version
}

// DirectoryPatch is an anti-entropy pull's answer: the full (cheap)
// group table and version vector at the root's epoch, plus descriptors
// only for the entries the puller's version vector lacked. Removals are
// implicit — the puller drops every node absent from Groups.
type DirectoryPatch struct {
	Epoch    uint64
	Groups   [][]string
	Versions map[string]uint64
	Upserts  []DirUpsert
}

// BuildPatch diffs the directory against a puller's version vector.
func (dir *Directory) BuildPatch(vv map[string]uint64) *DirectoryPatch {
	p := &DirectoryPatch{
		Epoch:    dir.Epoch,
		Groups:   make([][]string, len(dir.Groups)),
		Versions: make(map[string]uint64, len(dir.Versions)),
	}
	for i, g := range dir.Groups {
		p.Groups[i] = append([]string(nil), g...)
	}
	for name, ver := range dir.Versions {
		p.Versions[name] = ver
		if vv[name] != ver {
			p.Upserts = append(p.Upserts, DirUpsert{
				Group:   int32(dir.GroupOf(name)),
				Version: ver,
				Desc:    dir.Nodes[name],
			})
		}
	}
	return p
}

// Rebuild reconstructs a full directory from the patch, reusing the
// puller's previous descriptors for entries the patch did not need to
// ship. ok is false when a group member has neither an upsert nor a
// prior descriptor — the puller must fall back to a full pull.
func (p *DirectoryPatch) Rebuild(prev map[string]*NodeDesc) (*Directory, bool) {
	dir := &Directory{
		Epoch:    p.Epoch,
		Groups:   p.Groups,
		Nodes:    make(map[string]*NodeDesc, len(p.Versions)),
		Versions: p.Versions,
	}
	fresh := make(map[string]*NodeDesc, len(p.Upserts))
	for _, up := range p.Upserts {
		fresh[up.Desc.Name] = up.Desc
	}
	for _, g := range p.Groups {
		for _, name := range g {
			nd := fresh[name]
			if nd == nil {
				nd = prev[name]
			}
			if nd == nil {
				return nil, false
			}
			dir.Nodes[name] = nd
			dir.memberXor ^= nameHash(name)
		}
	}
	return dir, true
}

// Marshal encodes the patch.
func (p *DirectoryPatch) Marshal(e *cdr.Encoder) { p.marshalExt(e, nil) }

func (p *DirectoryPatch) marshalExt(e *cdr.Encoder, ext []byte) {
	e.WriteULongLong(p.Epoch)
	e.WriteULong(uint32(len(p.Groups)))
	for _, g := range p.Groups {
		e.WriteStringSeq(g)
	}
	MarshalVersionVector(e, p.Versions)
	e.WriteULong(uint32(len(p.Upserts)))
	for _, up := range p.Upserts {
		e.WriteLong(up.Group)
		e.WriteULongLong(up.Version)
		up.Desc.Marshal(e)
	}
	e.WriteOctetSeq(ext)
}

// UnmarshalPatch decodes a patch, skipping unknown trailing fields.
func UnmarshalPatch(d *cdr.Decoder) (*DirectoryPatch, error) {
	p := &DirectoryPatch{}
	var err error
	if p.Epoch, err = d.ReadULongLong(); err != nil {
		return nil, err
	}
	ng, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining())/4 < ng {
		return nil, cdr.ErrTooLong
	}
	p.Groups = make([][]string, ng)
	for i := range p.Groups {
		if p.Groups[i], err = d.ReadStringSeq(); err != nil {
			return nil, err
		}
	}
	if p.Versions, err = UnmarshalVersionVector(d); err != nil {
		return nil, err
	}
	nu, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining())/12 < nu {
		return nil, cdr.ErrTooLong
	}
	p.Upserts = make([]DirUpsert, 0, nu)
	for i := uint32(0); i < nu; i++ {
		var up DirUpsert
		if up.Group, err = d.ReadLong(); err != nil {
			return nil, err
		}
		if up.Version, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if up.Desc, err = UnmarshalNodeDesc(d); err != nil {
			return nil, fmt.Errorf("cohesion: patch upsert %d: %w", i, err)
		}
		p.Upserts = append(p.Upserts, up)
	}
	if _, err := d.ReadOctetSeqAlias(); err != nil { // skip extensions
		return nil, err
	}
	return p, nil
}

// MarshalVersionVector encodes a version vector in sorted name order.
func MarshalVersionVector(e *cdr.Encoder, vv map[string]uint64) {
	names := make([]string, 0, len(vv))
	for n := range vv {
		names = append(names, n)
	}
	sort.Strings(names)
	e.WriteULong(uint32(len(names)))
	for _, n := range names {
		e.WriteString(n)
		e.WriteULongLong(vv[n])
	}
}

// UnmarshalVersionVector decodes a version vector.
func UnmarshalVersionVector(d *cdr.Decoder) (map[string]uint64, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining())/12 < n {
		return nil, cdr.ErrTooLong
	}
	vv := make(map[string]uint64, n)
	for i := uint32(0); i < n; i++ {
		name, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		ver, err := d.ReadULongLong()
		if err != nil {
			return nil, err
		}
		vv[name] = ver
	}
	return vv, nil
}

package cohesion

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/ior"
	"corbalc/internal/leak"
	"corbalc/internal/node"
	"corbalc/internal/simnet"
	"corbalc/internal/xmldesc"
)

// testCluster is a set of nodes + agents wired over a virtual network.
type testCluster struct {
	net    *simnet.Network
	nodes  []*node.Node
	agents []*Agent
}

func adderSpec(name, ver string) *component.Spec {
	s := &component.Spec{Name: name, Version: ver, Entrypoint: "test/adder.New"}
	s.Provide("sum", "IDL:test/Adder:1.0")
	s.QoS = xmldesc.QoS{CPUMin: 0.05}
	return s
}

func testImpls() *component.Registry {
	reg := component.NewRegistry()
	reg.Register("test/adder.New", func() component.Instance { return &component.Base{} })
	return reg
}

// newCluster builds n nodes, bootstraps the first and joins the rest.
func newCluster(t testing.TB, n int, tweak func(*Config)) *testCluster {
	t.Helper()
	tc := &testCluster{net: simnet.New(simnet.Link{})}
	impls := testImpls()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%02d", i)
		nd := node.New(node.Config{Name: name, Impls: impls, Profile: node.WorkstationProfile()})
		if err := tc.net.Attach(name, nd.ORB()); err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Node:           nd,
			GroupSize:      3,
			Replicas:       2,
			UpdateInterval: 25 * time.Millisecond,
			FailMultiple:   3,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		ag := NewAgent(cfg)
		tc.nodes = append(tc.nodes, nd)
		tc.agents = append(tc.agents, ag)
	}
	tc.agents[0].Bootstrap()
	for i := 1; i < n; i++ {
		// A join is idempotent at the root (Assign re-places a known
		// name), so a timeout under load — swarm-sized clusters on a
		// starved CI core — is safe to retry.
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if err = tc.agents[i].Join(tc.agents[0].CohesionIOR()); err == nil {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ag := range tc.agents {
			ag.Stop()
		}
		for _, nd := range tc.nodes {
			nd.Close()
		}
	})
	return tc
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestDirectoryAssignRemove(t *testing.T) {
	leak.Check(t)
	dir := NewDirectory()
	mk := func(name string) *NodeDesc {
		ref := ior.New("IDL:x:1.0", "h", 1, []byte(name))
		return &NodeDesc{Name: name, Cohesion: ref, Registry: ref, Acceptor: ref, Resources: ref}
	}
	for i := 0; i < 7; i++ {
		g := dir.Assign(mk(fmt.Sprintf("m%d", i)), 3)
		if want := i / 3; g != want {
			t.Fatalf("member %d assigned to group %d, want %d", i, g, want)
		}
	}
	if dir.Len() != 7 || len(dir.Groups) != 3 {
		t.Fatalf("dir = %d nodes, %d groups", dir.Len(), len(dir.Groups))
	}
	if dir.GroupOf("m4") != 1 {
		t.Fatalf("GroupOf(m4) = %d", dir.GroupOf("m4"))
	}
	cands := dir.Candidates(0, 2)
	if len(cands) != 2 || cands[0] != "m0" || cands[1] != "m1" {
		t.Fatalf("candidates = %v", cands)
	}
	if rc := dir.RootCandidates(2); rc[0] != "m0" {
		t.Fatalf("root candidates = %v", rc)
	}
	e0 := dir.Epoch
	if !dir.Remove("m0") {
		t.Fatal("remove failed")
	}
	if dir.Epoch <= e0 {
		t.Fatal("epoch not bumped")
	}
	if dir.Remove("m0") {
		t.Fatal("double remove succeeded")
	}
	// After removing the whole first group, the root group moves on.
	dir.Remove("m1")
	dir.Remove("m2")
	if rg := dir.RootGroup(); rg != 1 {
		t.Fatalf("root group after removals = %d", rg)
	}
}

func TestDirectoryMarshalRoundTrip(t *testing.T) {
	leak.Check(t)
	dir := NewDirectory()
	ref := ior.New("IDL:x:1.0", "h", 1, []byte("k"))
	for i := 0; i < 5; i++ {
		dir.Assign(&NodeDesc{
			Name: fmt.Sprintf("m%d", i), Capability: "workstation",
			Cohesion: ref, Registry: ref, Acceptor: ref, Resources: ref,
		}, 2)
	}
	e := cdr.NewEncoder(cdr.BigEndian)
	dir.Marshal(e)
	got, err := UnmarshalDirectory(cdr.NewDecoder(e.Bytes(), cdr.BigEndian))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != dir.Epoch || got.Len() != 5 || len(got.Groups) != 3 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Nodes["m3"].Capability != "workstation" {
		t.Fatal("node desc lost")
	}
	if _, err := UnmarshalDirectory(cdr.NewDecoder([]byte{0, 1}, cdr.BigEndian)); err == nil {
		t.Fatal("garbage directory accepted")
	}
}

func TestJoinBuildsConvergentDirectory(t *testing.T) {
	leak.Check(t)
	tc := newCluster(t, 7, nil)
	waitFor(t, 3*time.Second, "directory convergence", func() bool {
		want := tc.agents[0].Directory().Epoch
		for _, ag := range tc.agents {
			d := ag.Directory()
			if d.Epoch != want || d.Len() != 7 {
				return false
			}
		}
		return true
	})
	dir := tc.agents[3].Directory()
	if len(dir.Groups) != 3 {
		t.Fatalf("groups = %d", len(dir.Groups))
	}
	for _, g := range dir.Groups {
		if len(g) > 3 {
			t.Fatalf("oversized group %v", g)
		}
	}
}

func TestSoftUpdatesPopulateMRMView(t *testing.T) {
	leak.Check(t)
	tc := newCluster(t, 3, nil)
	// Install a component on n02; its offers must reach the group MRM
	// (n00) through periodic updates.
	c, err := adderSpec("adder", "1.0.0").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.nodes[2].InstallComponent(c); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "MRM view to include n02's offer", func() bool {
		offers := tc.agents[0].viewQuery("IDL:test/Adder:1.0", "*")
		return len(offers) == 1 && offers[0].Node == "n02"
	})
	// Query from another member of the same group resolves locally (one
	// MRM hop, no root involvement).
	offers, err := tc.agents[1].Query(context.Background(), "IDL:test/Adder:1.0", "*")
	if err != nil || len(offers) != 1 || offers[0].Node != "n02" {
		t.Fatalf("query = %+v, %v", offers, err)
	}
}

func TestHierarchicalQueryAcrossGroups(t *testing.T) {
	leak.Check(t)
	tc := newCluster(t, 7, nil) // groups: {0,1,2} {3,4,5} {6}
	c, err := adderSpec("adder", "2.0.0").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.nodes[5].InstallComponent(c); err != nil { // group 1
		t.Fatal(err)
	}
	// n06 (group 2) asks; its group has nothing, so the query climbs to
	// the root, whose summaries route it to group 1.
	waitFor(t, 5*time.Second, "cross-group query to find the offer", func() bool {
		offers, err := tc.agents[6].Query(context.Background(), "IDL:test/Adder:1.0", ">=2.0")
		return err == nil && len(offers) == 1 && offers[0].Node == "n05"
	})
	// Version filtering works across the hierarchy.
	offers, err := tc.agents[6].Query(context.Background(), "IDL:test/Adder:1.0", "<2.0")
	if err != nil || len(offers) != 0 {
		t.Fatalf("filtered query = %+v, %v", offers, err)
	}
}

func TestFlatQueryBaseline(t *testing.T) {
	leak.Check(t)
	tc := newCluster(t, 6, nil)
	waitFor(t, 3*time.Second, "directory convergence", func() bool {
		return tc.agents[1].Directory().Len() == 6
	})
	c, err := adderSpec("adder", "1.0.0").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.nodes[4].InstallComponent(c); err != nil {
		t.Fatal(err)
	}
	offers, err := tc.agents[1].QueryFlat(context.Background(), "IDL:test/Adder:1.0", "*")
	if err != nil || len(offers) != 1 || offers[0].Node != "n04" {
		t.Fatalf("flat query = %+v, %v", offers, err)
	}
	// Flat querying must have contacted every other node's registry.
	if st := tc.agents[1].Stats(); st.QueriesSent < 5 {
		t.Fatalf("flat queries sent = %d, want >= 5", st.QueriesSent)
	}
}

func TestFailureDetectionRemovesNode(t *testing.T) {
	leak.Check(t)
	tc := newCluster(t, 4, nil)
	waitFor(t, 3*time.Second, "initial convergence", func() bool {
		return tc.agents[3].Directory().Len() == 4
	})
	// Crash n02 (same group as the MRM n00): stop its loop and cut it
	// from the network.
	tc.agents[2].Stop()
	tc.net.SetDown("n02", true)
	waitFor(t, 5*time.Second, "root to expel the dead node", func() bool {
		return tc.agents[0].Directory().Len() == 3
	})
	// Survivors learn the new directory.
	waitFor(t, 3*time.Second, "survivors to converge", func() bool {
		return tc.agents[1].Directory().Len() == 3 && tc.agents[3].Directory().Len() == 3
	})
}

func TestMRMFailoverToReplica(t *testing.T) {
	leak.Check(t)
	tc := newCluster(t, 3, nil) // one group {n00,n01,n02}, candidates n00,n01
	c, err := adderSpec("adder", "1.0.0").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.nodes[2].InstallComponent(c); err != nil {
		t.Fatal(err)
	}
	// Both replicas acquire the view (peer-replicated MRMs).
	waitFor(t, 3*time.Second, "replica n01 to hold the view", func() bool {
		return len(tc.agents[1].viewQuery("IDL:test/Adder:1.0", "*")) == 1
	})
	if !tc.agents[0].actingLeader(0) {
		t.Fatal("n00 should lead initially")
	}
	// Kill the leader.
	tc.agents[0].Stop()
	tc.net.SetDown("n00", true)
	// n01 takes over leadership once n00's updates stop.
	waitFor(t, 5*time.Second, "n01 to assume leadership", func() bool {
		return tc.agents[1].actingLeader(0)
	})
	// Queries from the surviving member still resolve via the replica.
	waitFor(t, 3*time.Second, "query after failover", func() bool {
		offers, err := tc.agents[2].Query(context.Background(), "IDL:test/Adder:1.0", "*")
		return err == nil && len(offers) == 1
	})
}

func TestStrongModePerfectKnowledge(t *testing.T) {
	leak.Check(t)
	tc := newCluster(t, 4, func(c *Config) { c.Mode = Strong })
	c, err := adderSpec("adder", "1.0.0").Build()
	if err != nil {
		t.Fatal(err)
	}
	// Install on n03; the change listener floods immediately.
	if _, err := tc.nodes[3].InstallComponent(c); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "flooded knowledge on n01", func() bool {
		offers, err := tc.agents[1].Query(context.Background(), "IDL:test/Adder:1.0", "*")
		return err == nil && len(offers) == 1 && offers[0].Node == "n03"
	})
	// In strong mode the query itself was answered locally: zero query
	// messages, non-zero floods.
	st1 := tc.agents[1].Stats()
	st3 := tc.agents[3].Stats()
	if st1.QueriesSent != 0 {
		t.Fatalf("strong-mode query sent %d messages", st1.QueriesSent)
	}
	if st3.Floods == 0 {
		t.Fatal("no floods recorded")
	}
}

func TestDeadBandSendsFewerUpdatesThanPeriodic(t *testing.T) {
	leak.Check(t)
	countUpdates := func(policy SendPolicy) uint64 {
		tc := newCluster(t, 2, func(c *Config) {
			c.Policy = policy
			c.GroupSize = 2
			c.FailMultiple = 20 // push the keep-alive floor out of the way
		})
		time.Sleep(400 * time.Millisecond) // stable load, ~16 intervals
		return tc.agents[1].Stats().UpdatesSent
	}
	periodic := countUpdates(Periodic)
	deadband := countUpdates(DeadBand)
	predictive := countUpdates(Predictive)
	if periodic < 8 {
		t.Fatalf("periodic sent only %d updates", periodic)
	}
	if deadband*2 >= periodic {
		t.Fatalf("deadband (%d) not substantially below periodic (%d)", deadband, periodic)
	}
	if predictive*2 >= periodic {
		t.Fatalf("predictive (%d) not substantially below periodic (%d)", predictive, periodic)
	}
}

func TestGracefulLeave(t *testing.T) {
	leak.Check(t)
	tc := newCluster(t, 4, nil)
	waitFor(t, 3*time.Second, "initial convergence", func() bool {
		return tc.agents[0].Directory().Len() == 4
	})
	tc.agents[3].Leave()
	waitFor(t, 3*time.Second, "directory to drop the leaver", func() bool {
		return tc.agents[0].Directory().Len() == 3
	})
}

func TestQueryBeforeJoinFails(t *testing.T) {
	leak.Check(t)
	nd := node.New(node.Config{Name: "loner", Impls: testImpls()})
	defer nd.Close()
	ag := NewAgent(Config{Node: nd})
	if _, err := ag.Query(context.Background(), "IDL:x:1.0", "*"); err != ErrNotJoined {
		t.Fatalf("err = %v", err)
	}
	if _, err := ag.QueryFlat(context.Background(), "IDL:x:1.0", "*"); err != ErrNotJoined {
		t.Fatalf("flat err = %v", err)
	}
}

// Property: any interleaving of joins and removals keeps the directory
// invariants — each member in exactly one group, no group over G, epoch
// strictly monotone, candidates always a prefix of their group.
func TestQuickDirectoryInvariants(t *testing.T) {
	leak.Check(t)
	mk := func(name string) *NodeDesc {
		ref := ior.New("IDL:x:1.0", "h", 1, []byte(name))
		return &NodeDesc{Name: name, Cohesion: ref, Registry: ref, Acceptor: ref, Resources: ref}
	}
	f := func(ops []uint8, gRaw uint8) bool {
		g := int(gRaw)%6 + 1
		dir := NewDirectory()
		lastEpoch := dir.Epoch
		for i, op := range ops {
			name := fmt.Sprintf("m%d", int(op)%12)
			if i%3 == 2 {
				dir.Remove(name)
			} else {
				dir.Assign(mk(name), g)
			}
			if dir.Epoch < lastEpoch {
				return false
			}
			lastEpoch = dir.Epoch
		}
		// Invariants.
		seen := map[string]int{}
		for gi, members := range dir.Groups {
			if len(members) > g {
				return false
			}
			for _, m := range members {
				seen[m]++
				if dir.GroupOf(m) != gi && seen[m] == 1 {
					// GroupOf returns the first occurrence; with the
					// idempotent Assign there must be exactly one.
					return false
				}
			}
		}
		for name, count := range seen {
			if count != 1 {
				return false
			}
			if _, ok := dir.Nodes[name]; !ok {
				return false
			}
		}
		if len(seen) != dir.Len() {
			return false
		}
		for gi := range dir.Groups {
			cands := dir.Candidates(gi, 2)
			members := dir.Members(gi)
			if len(cands) > 2 || len(cands) > len(members) {
				return false
			}
			for i, c := range cands {
				if members[i] != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: directories of any shape survive the wire round trip.
func TestQuickDirectoryMarshalRoundTrip(t *testing.T) {
	leak.Check(t)
	mk := func(name string) *NodeDesc {
		ref := ior.New("IDL:x:1.0", "h", 1, []byte(name))
		return &NodeDesc{Name: name, Capability: "w", Cohesion: ref, Registry: ref, Acceptor: ref, Resources: ref}
	}
	f := func(names []uint8, gRaw uint8) bool {
		g := int(gRaw)%5 + 1
		dir := NewDirectory()
		for _, n := range names {
			dir.Assign(mk(fmt.Sprintf("n%d", n)), g)
		}
		e := cdr.NewEncoder(cdr.LittleEndian)
		dir.Marshal(e)
		got, err := UnmarshalDirectory(cdr.NewDecoder(e.Bytes(), cdr.LittleEndian))
		if err != nil {
			return false
		}
		if got.Epoch != dir.Epoch || got.Len() != dir.Len() || len(got.Groups) != len(dir.Groups) {
			return false
		}
		for i := range dir.Groups {
			if len(got.Groups[i]) != len(dir.Groups[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupViewSnapshot(t *testing.T) {
	leak.Check(t)
	tc := newCluster(t, 3, nil)
	comp, err := adderSpec("adder", "1.0.0").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.nodes[1].InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "MRM view to fill", func() bool {
		view := tc.agents[0].GroupView()
		if len(view) != 3 {
			return false
		}
		for _, m := range view {
			if m.Report.Node == "n01" && len(m.Offers) >= 1 {
				return true
			}
		}
		return false
	})
	for _, m := range tc.agents[0].GroupView() {
		if m.Desc == nil || m.Report == nil {
			t.Fatalf("incomplete member view: %+v", m)
		}
	}
	// A non-MRM member has an empty view.
	if got := tc.agents[2].GroupView(); len(got) != 0 {
		t.Fatalf("non-candidate view = %d members", len(got))
	}
}

func TestQueryAllSpansGroups(t *testing.T) {
	leak.Check(t)
	tc := newCluster(t, 6, nil) // groups {0,1,2} {3,4,5}
	comp, err := adderSpec("adder", "1.0.0").Build()
	if err != nil {
		t.Fatal(err)
	}
	// One provider in each group.
	if _, err := tc.nodes[1].InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.nodes[4].InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	// Plain Query from n02 stops at its group (locality): one offer.
	waitFor(t, 5*time.Second, "local query", func() bool {
		offers, err := tc.agents[2].Query(context.Background(), "IDL:test/Adder:1.0", "*")
		return err == nil && len(offers) == 1 && offers[0].Node == "n01"
	})
	// QueryAll merges both groups.
	waitFor(t, 5*time.Second, "exhaustive query", func() bool {
		offers, err := tc.agents[2].QueryAll(context.Background(), "IDL:test/Adder:1.0", "*")
		if err != nil || len(offers) != 2 {
			return false
		}
		nodes := map[string]bool{}
		for _, of := range offers {
			nodes[of.Node] = true
		}
		return nodes["n01"] && nodes["n04"]
	})
}

func TestAntiEntropyRejoinAfterFalseExpulsion(t *testing.T) {
	leak.Check(t)
	tc := newCluster(t, 4, nil)
	waitFor(t, 3*time.Second, "convergence", func() bool {
		return tc.agents[0].Directory().Len() == 4
	})
	// Simulate a false expulsion: the root removes a live member behind
	// its back.
	victim := tc.agents[3]
	if err := victim.callRoot(context.Background(), "report_dead", func(e *cdr.Encoder) { e.WriteString("n03") }, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "expulsion to propagate", func() bool {
		return tc.agents[0].Directory().Len() == 3
	})
	// Anti-entropy on the victim notices the divergence and rejoins.
	waitFor(t, 10*time.Second, "victim to rejoin", func() bool {
		return tc.agents[0].Directory().Len() == 4
	})
}

func TestExpelledNodeUnwedgesViaTickAntiEntropy(t *testing.T) {
	leak.Check(t)
	// The wedge found by the 1000-node swarm bench: a node applies the
	// delta that expels it, its one expulsion-triggered pull is lost
	// under load, and then nothing ever repairs it — deltas stop flowing
	// to non-members, and a tick loop that bails out whenever the node
	// is absent from its own directory never runs anti-entropy again.
	// Reproduce the post-failure state directly (bypassing the protocol
	// so no immediate pull fires) and require the periodic tick to
	// rejoin: the node was expelled at the root's current epoch, so the
	// digest ping alone cannot spot the divergence either.
	tc := newCluster(t, 4, nil)
	waitFor(t, 3*time.Second, "convergence", func() bool {
		return tc.agents[0].Directory().Len() == 4
	})
	root, victim := tc.agents[0], tc.agents[3]
	root.mu.Lock()
	dir := root.dir.Clone()
	dir.Remove("n03")
	root.dir = dir
	rootEpoch := dir.Epoch
	root.mu.Unlock()
	victim.mu.Lock()
	victim.dir = dir.Clone() // same epoch as the root, self absent
	victim.mu.Unlock()
	waitFor(t, 10*time.Second, "victim to rejoin", func() bool {
		d := root.Directory()
		return d.GroupOf("n03") >= 0 && d.Epoch > rootEpoch &&
			victim.Directory().GroupOf("n03") >= 0
	})
}

func TestJoinForwardedThroughNonRootContact(t *testing.T) {
	leak.Check(t)
	// Join via a contact that is NOT the root leader: the contact must
	// forward to the root and return a directory that includes the
	// newcomer.
	tc := newCluster(t, 3, nil)
	nd := node.New(node.Config{Name: "late", Impls: testImpls(), Profile: node.WorkstationProfile()})
	if err := tc.net.Attach("late", nd.ORB()); err != nil {
		t.Fatal(err)
	}
	ag := NewAgent(Config{Node: nd, GroupSize: 3, Replicas: 2, UpdateInterval: 25 * time.Millisecond})
	t.Cleanup(func() { ag.Stop(); nd.Close() })
	// agents[2] is a plain member, not even an MRM candidate.
	if err := ag.Join(tc.agents[2].CohesionIOR()); err != nil {
		t.Fatal(err)
	}
	if ag.Directory().Len() != 4 {
		t.Fatalf("directory after forwarded join = %d", ag.Directory().Len())
	}
	if ag.Directory().GroupOf("late") != 1 {
		t.Fatalf("late lands in group %d", ag.Directory().GroupOf("late"))
	}
}

package cohesion

import (
	"testing"
	"time"

	"corbalc/internal/leak"
	"corbalc/internal/race"
)

// Swarm-scale tests of the delta-gossip discovery plane: churn and
// partitions at node counts where a full-state exchange would be
// visibly quadratic. Convergence is probed with Directory.Stamp — an
// O(1) (epoch, size, membership-hash) comparison — so polling hundreds
// of agents stays cheap.

// swarmConverged reports whether every live agent agrees on a
// membership of exactly want nodes.
func swarmConverged(agents []*Agent, want int) bool {
	e0, n0, x0 := agents[0].Stamp()
	if n0 != want {
		return false
	}
	for _, ag := range agents[1:] {
		if e, n, x := ag.Stamp(); e != e0 || n != n0 || x != x0 {
			return false
		}
	}
	return true
}

// swarmTweak configures a swarm-sized protocol: paper-default fanout
// and a calm tick, so the serial join storm stays responsive while
// hundreds of already-joined agents gossip in the background. Under
// the race detector — which serialises the whole swarm through its
// shadow memory, brutally so on a single-core CI box — the tick
// stretches further, which also widens the derived per-RPC timeout.
func swarmTweak(c *Config) {
	c.GroupSize = 8
	c.UpdateInterval = 250 * time.Millisecond
	c.FailMultiple = 4
	if race.Enabled {
		c.UpdateInterval = time.Second
	}
}

// TestSwarmChurnConvergence kills 5% of a 500-node swarm and asserts
// every survivor converges on the surviving membership. This is the
// race-job smoke test for the delta plane at scale; -short skips it.
func TestSwarmChurnConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: 500-node swarm")
	}
	leak.Check(t)
	const n = 500
	tc := newCluster(t, n, swarmTweak)
	waitFor(t, 120*time.Second, "initial swarm convergence", func() bool {
		return swarmConverged(tc.agents, n)
	})

	// Kill 5%, spread across groups, sparing the root group so the
	// directory writer survives (root failover is TestMRMFailover's
	// subject; here we measure dissemination).
	dir := tc.agents[0].Directory()
	rootGroup := dir.RootGroup()
	var victims []int
	for i := 1; i < len(tc.agents) && len(victims) < n/20; i += 17 {
		if dir.GroupOf(tc.agents[i].name) == rootGroup {
			continue
		}
		victims = append(victims, i)
	}
	alive := make([]*Agent, 0, n-len(victims))
	dead := make(map[int]bool, len(victims))
	for _, i := range victims {
		dead[i] = true
		tc.net.SetDown(tc.agents[i].name, true)
		tc.agents[i].Stop()
	}
	for i, ag := range tc.agents {
		if !dead[i] {
			alive = append(alive, ag)
		}
	}

	waitFor(t, 120*time.Second, "post-churn convergence", func() bool {
		return swarmConverged(alive, n-len(victims))
	})

	// The plane that healed the swarm must actually be the delta plane.
	root := tc.agents[0].Stats()
	if root.DeltasSent == 0 {
		t.Error("root disseminated no deltas")
	}
	applied := uint64(0)
	for _, ag := range alive {
		applied += ag.Stats().DeltasApplied
	}
	if applied == 0 {
		t.Error("no agent applied a delta")
	}
}

// TestSwarmPartitionHeal splits a 60-node swarm into a majority and a
// minority partition (whole groups, via partition classes), waits for
// the root to expel the unreachable minority, heals the split, and
// asserts the expelled nodes rejoin until the swarm reconverges on full
// membership — the graceful-heal path of the anti-entropy protocol.
func TestSwarmPartitionHeal(t *testing.T) {
	leak.Check(t)
	const n = 60
	tc := newCluster(t, n, func(c *Config) {
		c.GroupSize = 4
		c.AntiEntropyTicks = 4
	})
	waitFor(t, 60*time.Second, "initial swarm convergence", func() bool {
		return swarmConverged(tc.agents, n)
	})

	// Minority: the members of the last three groups.
	dir := tc.agents[0].Directory()
	minority := make(map[string]bool)
	for g := len(dir.Groups) - 3; g < len(dir.Groups); g++ {
		for _, m := range dir.Members(g) {
			minority[m] = true
		}
	}
	if len(minority) == 0 || minority[tc.agents[0].name] {
		t.Fatalf("bad minority selection: %v", minority)
	}
	for _, ag := range tc.agents {
		class := 1
		if minority[ag.name] {
			class = 2
		}
		tc.net.SetPartitionClass(ag.name, class)
	}

	var majority []*Agent
	for _, ag := range tc.agents {
		if !minority[ag.name] {
			majority = append(majority, ag)
		}
	}
	waitFor(t, 60*time.Second, "majority expels the minority", func() bool {
		return swarmConverged(majority, n-len(minority))
	})

	// Heal. The expelled nodes' digest pings now reach the root again:
	// each discovers it is no longer a member and rejoins.
	for _, ag := range tc.agents {
		tc.net.SetPartitionClass(ag.name, 0)
	}
	waitFor(t, 60*time.Second, "swarm reconverges after heal", func() bool {
		return swarmConverged(tc.agents, n)
	})

	pulls := uint64(0)
	for _, ag := range tc.agents {
		pulls += ag.Stats().AntiEntropyPulls
	}
	if pulls == 0 {
		t.Error("heal happened without any anti-entropy pull")
	}
}

// TestSwarmGossipStats checks the observability surface of the gossip
// plane on a small swarm: the counters corbalc-admin renders must move.
func TestSwarmGossipStats(t *testing.T) {
	leak.Check(t)
	const n = 12
	tc := newCluster(t, n, nil)
	waitFor(t, 30*time.Second, "convergence", func() bool {
		return swarmConverged(tc.agents, n)
	})
	waitFor(t, 30*time.Second, "gossip traffic", func() bool {
		root := tc.agents[0].Stats()
		mrm := tc.agents[1].Stats() // second root candidate: receives updates
		return root.DeltasSent > 0 && mrm.DeltasApplied > 0 &&
			mrm.GossipBatches > 0 && mrm.GossipBytes > 0 && mrm.UpdatesRecv > 0
	})
	st := tc.agents[2].Stats()
	if st.VVSize != n {
		t.Errorf("version vector size = %d, want %d", st.VVSize, n)
	}
	if st.Epoch == 0 || st.Nodes != n {
		t.Errorf("stats snapshot: epoch %d nodes %d", st.Epoch, st.Nodes)
	}
}

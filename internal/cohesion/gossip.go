package cohesion

import (
	"context"
	"sync"
	"sync/atomic"

	"corbalc/internal/cdr"
	"corbalc/internal/events"
	"corbalc/internal/orb"
)

// Gossip message kinds multiplexed through one gossip_batch frame.
const (
	gossipUpdate  = byte(1) // report (+ optional offers) to an MRM replica
	gossipSummary = byte(2) // group aggregate to a root MRM replica
	gossipDelta   = byte(3) // directory delta from the root / a relay
	gossipHint    = byte(4) // repair hint: sender's epoch, pull if behind
)

// kindSources are the pre-interned Event.Source values carrying the
// message kind through the hub without an allocation per enqueue.
var kindSources = [5]string{0: "?", gossipUpdate: "u", gossipSummary: "s", gossipDelta: "d", gossipHint: "h"}

func kindOf(source string) byte {
	switch source {
	case "u":
		return gossipUpdate
	case "s":
		return gossipSummary
	case "d":
		return gossipDelta
	case "h":
		return gossipHint
	}
	return 0
}

// gossiper routes the cohesion protocol's periodic traffic over the
// event fabric (DESIGN.md §12): one bounded channel per destination
// node, a batch forwarder per channel that drains whole runs and ships
// them as single gossip_batch oneways under SyncNone — so updates,
// summaries and directory deltas coalesce per destination and ride the
// transport's write coalescer instead of going out as point-to-point
// calls. The queues drop-oldest on overflow: a slow peer loses stale
// gossip, never stalls the protocol, and anti-entropy repairs the gap.
type gossiper struct {
	a   *Agent
	hub *events.Hub

	mu      sync.Mutex
	cancels map[string]func()
	closed  bool

	batches atomic.Uint64
	bytes   atomic.Uint64
}

func newGossiper(a *Agent) *gossiper {
	return &gossiper{
		a: a,
		hub: events.NewHubConfig(events.Config{
			Depth:       a.cfg.GossipDepth,
			Policy:      events.DropOldest,
			BatchWindow: a.cfg.GossipWindow,
		}),
		cancels: make(map[string]func()),
	}
}

// enqueue queues one protocol message for a destination, wiring the
// destination's forwarder on first use. The body must not be mutated or
// recycled after the call — it sits in the queue until drained.
func (g *gossiper) enqueue(dest string, kind byte, body []byte) {
	ch := g.channel(dest)
	if ch == nil {
		return
	}
	_ = ch.Push(events.Event{Source: kindSources[kind], Data: body})
}

// channel returns dest's coalescing channel, attaching its batch
// forwarder on first use; nil after close.
func (g *gossiper) channel(dest string) *events.Channel {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil
	}
	ch := g.hub.Channel(dest)
	if _, ok := g.cancels[dest]; !ok {
		g.cancels[dest] = ch.SubscribeBatch("gossip/"+dest, g.forwarder(dest))
	}
	return ch
}

// forwarder builds the batch consumer shipping one drained run as a
// single gossip_batch frame.
func (g *gossiper) forwarder(dest string) events.BatchConsumer {
	return func(batch []events.Event) {
		a := g.a
		ref, ok := a.refOf(dest)
		if !ok {
			return
		}
		ctx, done := context.WithTimeout(a.ctx, a.rpcTimeout())
		defer done()
		size := 0
		err := ref.InvokeOnewayScoped(ctx, "gossip_batch", func(e *cdr.Encoder) {
			e.WriteULong(uint32(len(batch)))
			for _, ev := range batch {
				e.WriteOctet(kindOf(ev.Source))
				e.WriteOctetSeq(ev.Data)
			}
			size = e.Len()
		}, orb.SyncNone)
		if err == nil {
			g.batches.Add(1)
			g.bytes.Add(uint64(size))
		}
	}
}

// drop tears down one destination's channel and forwarder.
func (g *gossiper) drop(dest string) {
	g.mu.Lock()
	cancel := g.cancels[dest]
	delete(g.cancels, dest)
	g.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	g.hub.Remove(dest)
}

// prune drops every destination not in the member set, reclaiming
// queues and delivery goroutines as churn removes nodes.
func (g *gossiper) prune(members map[string]*NodeDesc) {
	g.mu.Lock()
	var dead []string
	for dest := range g.cancels {
		if _, ok := members[dest]; !ok {
			dead = append(dead, dest)
		}
	}
	g.mu.Unlock()
	for _, dest := range dead {
		g.drop(dest)
	}
}

// close cancels every forwarder and drains the hub; in-flight sends
// abort on the agent's cancelled lifetime context.
func (g *gossiper) close() {
	g.mu.Lock()
	g.closed = true
	cancels := g.cancels
	g.cancels = make(map[string]func())
	g.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	g.hub.Close()
}

package cohesion

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/ior"
	"corbalc/internal/leak"
)

// deltaDesc mints a descriptor whose IORs are distinguishable per name.
func deltaDesc(name string) *NodeDesc {
	ref := ior.New("IDL:corbalc/NetworkCohesion:1.0", "h-"+name, 7, []byte(name))
	return &NodeDesc{Name: name, Capability: "workstation",
		Cohesion: ref, Registry: ref, Acceptor: ref, Resources: ref}
}

func encode(m func(e *cdr.Encoder)) []byte {
	e := cdr.NewEncoder(cdr.LittleEndian)
	m(e)
	return e.Bytes()
}

func TestDeltaMarshalRoundTrip(t *testing.T) {
	leak.Check(t)
	dd := &DirectoryDelta{
		From: 41, To: 42,
		Upserts: []DirUpsert{
			{Group: 0, Version: 42, Desc: deltaDesc("a")},
			{Group: 3, Version: 42, Desc: deltaDesc("b")},
		},
		Removes: []string{"gone", "also-gone"},
	}
	buf := encode(dd.Marshal)
	got, err := UnmarshalDelta(cdr.NewDecoder(buf, cdr.LittleEndian))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != dd.From || got.To != dd.To {
		t.Fatalf("epochs: got %d->%d, want %d->%d", got.From, got.To, dd.From, dd.To)
	}
	if len(got.Upserts) != 2 || got.Upserts[1].Group != 3 || got.Upserts[1].Desc.Name != "b" {
		t.Fatalf("upserts: %+v", got.Upserts)
	}
	if len(got.Removes) != 2 || got.Removes[0] != "gone" {
		t.Fatalf("removes: %v", got.Removes)
	}
}

func TestPatchMarshalRoundTrip(t *testing.T) {
	leak.Check(t)
	p := &DirectoryPatch{
		Epoch:    9,
		Groups:   [][]string{{"a", "b"}, nil, {"c"}},
		Versions: map[string]uint64{"a": 1, "b": 5, "c": 9},
		Upserts:  []DirUpsert{{Group: 2, Version: 9, Desc: deltaDesc("c")}},
	}
	buf := encode(p.Marshal)
	got, err := UnmarshalPatch(cdr.NewDecoder(buf, cdr.LittleEndian))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 9 || len(got.Groups) != 3 || got.Groups[0][1] != "b" {
		t.Fatalf("groups: %+v", got)
	}
	if got.Versions["b"] != 5 || len(got.Upserts) != 1 || got.Upserts[0].Desc.Name != "c" {
		t.Fatalf("patch: %+v", got)
	}
}

// TestDeltaTruncation decodes every strict prefix of valid encodings:
// none may panic, and all must fail (the trailing extension blob means
// a complete message always consumes its final length field).
func TestDeltaTruncation(t *testing.T) {
	leak.Check(t)
	dd := &DirectoryDelta{From: 1, To: 2,
		Upserts: []DirUpsert{{Group: 1, Version: 2, Desc: deltaDesc("x")}},
		Removes: []string{"y"}}
	p := &DirectoryPatch{Epoch: 3, Groups: [][]string{{"x"}},
		Versions: map[string]uint64{"x": 3},
		Upserts:  []DirUpsert{{Group: 0, Version: 3, Desc: deltaDesc("x")}}}
	dir := NewDirectory()
	dir.Assign(deltaDesc("x"), 3)
	dir.Assign(deltaDesc("y"), 3)

	cases := []struct {
		name   string
		buf    []byte
		decode func([]byte) error
	}{
		{"delta", encode(dd.Marshal), func(b []byte) error {
			_, err := UnmarshalDelta(cdr.NewDecoder(b, cdr.LittleEndian))
			return err
		}},
		{"patch", encode(p.Marshal), func(b []byte) error {
			_, err := UnmarshalPatch(cdr.NewDecoder(b, cdr.LittleEndian))
			return err
		}},
		{"directory", encode(dir.Marshal), func(b []byte) error {
			_, err := UnmarshalDirectory(cdr.NewDecoder(b, cdr.LittleEndian))
			return err
		}},
		{"vv", encode(func(e *cdr.Encoder) {
			MarshalVersionVector(e, map[string]uint64{"a": 1, "b": 2})
		}), func(b []byte) error {
			_, err := UnmarshalVersionVector(cdr.NewDecoder(b, cdr.LittleEndian))
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.decode(tc.buf); err != nil {
			t.Fatalf("%s: full decode failed: %v", tc.name, err)
		}
		for cut := 0; cut < len(tc.buf); cut++ {
			if err := tc.decode(tc.buf[:cut]); err == nil {
				t.Fatalf("%s: decode of %d/%d-byte prefix succeeded", tc.name, cut, len(tc.buf))
			}
		}
	}
}

// TestDeltaFuzzNoPanic throws random garbage at every decoder; they must
// reject (or accept) without panicking or over-allocating.
func TestDeltaFuzzNoPanic(t *testing.T) {
	leak.Check(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		_, _ = UnmarshalDelta(cdr.NewDecoder(buf, cdr.LittleEndian))
		_, _ = UnmarshalPatch(cdr.NewDecoder(buf, cdr.LittleEndian))
		_, _ = UnmarshalDirectory(cdr.NewDecoder(buf, cdr.LittleEndian))
		_, _ = UnmarshalVersionVector(cdr.NewDecoder(buf, cdr.LittleEndian))
	}
}

// TestDeltaExtensionTolerance appends unknown trailing fields through
// the extension blob; decoders must skip them and still round-trip.
func TestDeltaExtensionTolerance(t *testing.T) {
	leak.Check(t)
	junk := []byte("future-field-from-a-newer-version")
	dd := &DirectoryDelta{From: 5, To: 6, Removes: []string{"z"}}
	buf := encode(func(e *cdr.Encoder) { dd.marshalExt(e, junk) })
	got, err := UnmarshalDelta(cdr.NewDecoder(buf, cdr.LittleEndian))
	if err != nil || got.To != 6 || len(got.Removes) != 1 {
		t.Fatalf("delta with extension: %+v, %v", got, err)
	}

	p := &DirectoryPatch{Epoch: 7, Groups: [][]string{{"z"}},
		Versions: map[string]uint64{"z": 7},
		Upserts:  []DirUpsert{{Group: 0, Version: 7, Desc: deltaDesc("z")}}}
	buf = encode(func(e *cdr.Encoder) { p.marshalExt(e, junk) })
	gp, err := UnmarshalPatch(cdr.NewDecoder(buf, cdr.LittleEndian))
	if err != nil || gp.Epoch != 7 || gp.Upserts[0].Desc.Name != "z" {
		t.Fatalf("patch with extension: %+v, %v", gp, err)
	}

	dir := NewDirectory()
	dir.Assign(deltaDesc("z"), 2)
	buf = encode(func(e *cdr.Encoder) { dir.marshalExt(e, junk) })
	gd, err := UnmarshalDirectory(cdr.NewDecoder(buf, cdr.LittleEndian))
	if err != nil || gd.Epoch != dir.Epoch || gd.Len() != 1 {
		t.Fatalf("directory with extension: %+v, %v", gd, err)
	}
	if !sameDir(dir, gd) {
		t.Fatal("directory mismatch after extension round-trip")
	}
}

// TestQuickDeltaReplay drives a root directory through random mutation
// sequences, replaying each mutation's delta on a follower: the
// follower must track the root exactly, and a BuildPatch/Rebuild from
// any stale version vector must reconstruct the root state too.
func TestQuickDeltaReplay(t *testing.T) {
	leak.Check(t)
	cfg := &quick.Config{MaxCount: 60}
	check := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		root := NewDirectory()
		follower := NewDirectory()
		stale := NewDirectory() // stops applying deltas halfway: patch target
		var present []string
		next := 0
		for i, op := range ops {
			from := root.Epoch
			var delta *DirectoryDelta
			if op%3 != 0 || len(present) == 0 {
				name := fmt.Sprintf("m%03d", next)
				next++
				desc := deltaDesc(name)
				g := root.Assign(desc, 4)
				present = append(present, name)
				delta = &DirectoryDelta{From: from, To: root.Epoch,
					Upserts: []DirUpsert{{Group: int32(g), Version: root.Versions[name], Desc: desc}}}
			} else {
				j := rng.Intn(len(present))
				name := present[j]
				present = append(present[:j], present[j+1:]...)
				root.Remove(name)
				delta = &DirectoryDelta{From: from, To: root.Epoch, Removes: []string{name}}
			}
			// Wire round-trip the delta, as dissemination would.
			buf := encode(delta.Marshal)
			got, err := UnmarshalDelta(cdr.NewDecoder(buf, cdr.LittleEndian))
			if err != nil {
				return false
			}
			follower.Apply(got)
			if i < len(ops)/2 {
				stale.Apply(got)
			}
		}
		if !sameDir(root, follower) {
			return false
		}
		// Anti-entropy: a patch against the stale replica's version
		// vector must rebuild the root state from upserts + survivors.
		patch := root.BuildPatch(stale.Versions)
		buf := encode(patch.Marshal)
		gp, err := UnmarshalPatch(cdr.NewDecoder(buf, cdr.LittleEndian))
		if err != nil {
			return false
		}
		rebuilt, ok := gp.Rebuild(stale.Nodes)
		return ok && sameDir(root, rebuilt)
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func sameDir(a, b *Directory) bool {
	ea, na, xa := a.Stamp()
	eb, nb, xb := b.Stamp()
	if ea != eb || na != nb || xa != xb {
		return false
	}
	if len(a.Groups) != len(b.Groups) {
		return false
	}
	for i := range a.Groups {
		if len(a.Groups[i]) != len(b.Groups[i]) {
			return false
		}
		for j := range a.Groups[i] {
			if a.Groups[i][j] != b.Groups[i][j] {
				return false
			}
		}
	}
	for name, v := range a.Versions {
		if b.Versions[name] != v {
			return false
		}
	}
	for name, nd := range a.Nodes {
		other := b.Nodes[name]
		if other == nil || !bytes.Equal(encode(nd.Marshal), encode(other.Marshal)) {
			return false
		}
	}
	return true
}

// TestVersionSkewTriggersPull rolls one member's directory back to an
// old epoch (as if it had missed a run of deltas): the periodic digest
// ping must detect the divergence and the version-vector pull must
// restore convergence without a full snapshot transfer.
func TestVersionSkewTriggersPull(t *testing.T) {
	leak.Check(t)
	tc := newCluster(t, 7, func(c *Config) { c.AntiEntropyTicks = 2 })
	root := tc.agents[0]
	waitFor(t, 10*time.Second, "initial convergence", func() bool {
		e0, n0, x0 := root.Stamp()
		for _, ag := range tc.agents {
			if e, n, x := ag.Stamp(); e != e0 || n != n0 || x != x0 {
				return false
			}
		}
		return true
	})

	// Roll a plain member back to {root, self} — a worst-case skew where
	// nearly every version-vector entry is missing (it must still know
	// the root, or it could not even ping).
	victim := tc.agents[5]
	old := NewDirectory()
	old.Assign(root.Desc(), 3)
	old.Assign(victim.Desc(), 3)
	victim.mu.Lock()
	victim.dir = old
	victim.mu.Unlock()

	before := victim.Stats().AntiEntropyPulls
	waitFor(t, 10*time.Second, "anti-entropy reconvergence", func() bool {
		e0, n0, x0 := root.Stamp()
		e, n, x := victim.Stamp()
		return e == e0 && n == n0 && x == x0
	})
	if got := victim.Stats().AntiEntropyPulls; got <= before {
		t.Fatalf("pulls did not advance: %d -> %d", before, got)
	}
}

// TestRepairHintHealsStaleNode exercises the push half of anti-entropy:
// with the periodic digest ping effectively disabled, a member whose
// directory fell behind must still heal, because its gossip updates
// advertise the stale epoch and a fresher MRM candidate pushes back a
// repair hint that kicks an immediate pull.
func TestRepairHintHealsStaleNode(t *testing.T) {
	leak.Check(t)
	tc := newCluster(t, 3, func(c *Config) { c.AntiEntropyTicks = 1 << 30 })
	root := tc.agents[0]
	waitFor(t, 10*time.Second, "initial convergence", func() bool {
		e0, n0, x0 := root.Stamp()
		for _, ag := range tc.agents {
			if e, n, x := ag.Stamp(); e != e0 || n != n0 || x != x0 {
				return false
			}
		}
		return true
	})

	// Pretend the last delta never arrived: only the epoch regresses, so
	// the periodic digest ping (disabled above) is the sole legacy path
	// that would ever notice.
	lag := tc.agents[2]
	lag.mu.Lock()
	lag.dir.Epoch--
	lag.mu.Unlock()

	waitFor(t, 10*time.Second, "repair hint to restore the epoch", func() bool {
		e0, _, _ := root.Stamp()
		e, _, _ := lag.Stamp()
		return e == e0
	})
	if got := lag.Stats().RepairHintsRecv; got == 0 {
		t.Error("stale node healed without receiving a repair hint")
	}
	if got := lag.Stats().AntiEntropyPulls; got == 0 {
		t.Error("repair hint did not trigger an anti-entropy pull")
	}
	sent := tc.agents[0].Stats().RepairHintsSent + tc.agents[1].Stats().RepairHintsSent
	if sent == 0 {
		t.Error("no MRM candidate pushed a repair hint")
	}
}

package cohesion

import (
	"context"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/node"
	"corbalc/internal/orb"
	"corbalc/internal/version"
)

// agentServant is the CORBA face of the cohesion agent: the Network
// Cohesion interface of Fig. 1.
type agentServant struct{ a *Agent }

func (s *agentServant) RepositoryID() string { return CohesionRepoID }

// Invoke implements orb.Servant for callers without a context.
func (s *agentServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	return s.InvokeContext(context.Background(), op, args, reply)
}

// InvokeContext implements orb.ContextServant: forwarded root calls run
// under the inbound request's context, so a caller's deadline bounds the
// whole forwarding chain.
func (s *agentServant) InvokeContext(ctx context.Context, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	a := s.a
	switch op {
	case "ping":
		a.mu.Lock()
		epoch := a.dir.Epoch
		a.mu.Unlock()
		reply.WriteULongLong(epoch)
		return nil

	case "join":
		desc, err := UnmarshalNodeDesc(args)
		if err != nil {
			return orb.Marshal()
		}
		dir, err := a.handleJoin(ctx, desc)
		if err != nil {
			return joinExc(err)
		}
		dir.Marshal(reply)
		return nil

	case "leave", "report_dead":
		name, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		if err := a.handleRemoval(ctx, name); err != nil {
			return joinExc(err)
		}
		return nil

	case "get_directory":
		a.mu.Lock()
		dir := a.dir.Clone()
		a.mu.Unlock()
		dir.Marshal(reply)
		return nil

	case "directory_push":
		dir, err := UnmarshalDirectory(args)
		if err != nil {
			return orb.Marshal()
		}
		a.installDirectory(dir)
		return nil

	case "update":
		report, err := node.UnmarshalReport(args)
		if err != nil {
			return orb.Marshal()
		}
		offers, err := node.UnmarshalOffers(args)
		if err != nil {
			return orb.Marshal()
		}
		a.ingestUpdate(report, offers)
		return nil

	case "summary":
		group, err := args.ReadULong()
		if err != nil {
			return orb.Marshal()
		}
		alive, err := args.ReadULong()
		if err != nil {
			return orb.Marshal()
		}
		freeCPU, err := args.ReadDouble()
		if err != nil {
			return orb.Marshal()
		}
		exports, err := args.ReadStringSeq()
		if err != nil {
			return orb.Marshal()
		}
		a.ingestSummary(int(group), alive, freeCPU, exports)
		return nil

	case "mrm_query":
		portID, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		verReq, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		a.queriesServed.Add(1)
		offers := a.viewQuery(portID, verReq)
		node.MarshalOffers(reply, offers)
		return nil

	case "gossip_batch":
		n, err := args.ReadULong()
		if err != nil {
			return orb.Marshal()
		}
		for i := uint32(0); i < n; i++ {
			kind, err := args.ReadOctet()
			if err != nil {
				return orb.Marshal()
			}
			body, err := args.ReadOctetSeqAlias()
			if err != nil {
				return orb.Marshal()
			}
			s.dispatchGossip(kind, body)
		}
		return nil

	case "sync_pull":
		vv, err := UnmarshalVersionVector(args)
		if err != nil {
			return orb.Marshal()
		}
		a.pullsServed.Add(1)
		a.mu.Lock()
		patch := a.dir.BuildPatch(vv)
		a.mu.Unlock()
		patch.Marshal(reply)
		return nil

	case "cohesion_stats":
		st := a.Stats()
		st.Marshal(reply)
		return nil

	case "root_query":
		portID, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		verReq, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		skipGroup, err := args.ReadLong()
		if err != nil {
			return orb.Marshal()
		}
		a.queriesServed.Add(1)
		offers := a.rootQuery(ctx, portID, verReq, int(skipGroup))
		node.MarshalOffers(reply, offers)
		return nil
	}
	return orb.BadOperation()
}

// dispatchGossip decodes and routes one entry of a gossip_batch frame.
// body aliases the inbound request buffer: handlers that retain bytes
// past this call (delta relay) copy first. Unknown kinds are skipped so
// newer senders interoperate with older receivers; malformed entries are
// dropped — anti-entropy repairs whatever they carried.
func (s *agentServant) dispatchGossip(kind byte, body []byte) {
	a := s.a
	d := cdr.NewDecoder(body, cdr.LittleEndian)
	switch kind {
	case gossipUpdate:
		report, err := node.UnmarshalReport(d)
		if err != nil {
			return
		}
		hasOffers, err := d.ReadBool()
		if err != nil {
			return
		}
		var offers []*node.Offer
		if hasOffers {
			if offers, err = node.UnmarshalOffers(d); err != nil {
				return
			}
		}
		a.ingestGossipUpdate(report, offers, hasOffers)
		// Trailing epoch advertisement (absent in older senders); only
		// the reporter's acting group leader may answer with a hint.
		if epoch, err := d.ReadULongLong(); err == nil {
			a.observePeerEpoch(report.Node, epoch, a.actingLeaderFor(report.Node))
		}
	case gossipSummary:
		group, err := d.ReadULong()
		if err != nil {
			return
		}
		alive, err := d.ReadULong()
		if err != nil {
			return
		}
		freeCPU, err := d.ReadDouble()
		if err != nil {
			return
		}
		exports, err := d.ReadStringSeq()
		if err != nil {
			return
		}
		a.ingestSummary(int(group), alive, freeCPU, exports)
		// Trailing leader advertisement (absent in older senders): a
		// stuck group leader gets its repair hint from the acting root
		// leader here.
		if epoch, err := d.ReadULongLong(); err == nil {
			if leader, err := d.ReadString(); err == nil {
				a.observePeerEpoch(leader, epoch, a.actingRootLeader())
			}
		}
	case gossipDelta:
		delta, err := UnmarshalDelta(d)
		if err != nil {
			return
		}
		a.handleDelta(delta, body)
	case gossipHint:
		epoch, err := d.ReadULongLong()
		if err != nil {
			return
		}
		a.hintsRecv.Add(1)
		a.mu.Lock()
		behind := epoch > a.dir.Epoch && a.dir.Epoch != a.hintPulled
		if behind {
			a.hintPulled = a.dir.Epoch
		}
		a.mu.Unlock()
		if behind {
			a.kickPull()
		}
	}
}

func joinExc(err error) error {
	return &orb.UserException{
		ID:      "IDL:corbalc/NetworkCohesion/Refused:1.0",
		Payload: func(e *cdr.Encoder) { e.WriteString(err.Error()) },
	}
}

// actingRootLeader reports whether this agent currently acts as the root
// MRM leader.
func (a *Agent) actingRootLeader() bool {
	a.mu.Lock()
	rg := a.dir.RootGroup()
	inRoot := rg >= 0 && contains(a.dir.Candidates(rg, a.cfg.Replicas), a.name)
	a.mu.Unlock()
	return inRoot && a.actingLeader(rg)
}

// handleJoin admits a node: executed at the root leader, forwarded
// otherwise.
func (a *Agent) handleJoin(ctx context.Context, desc *NodeDesc) (*Directory, error) {
	if a.actingRootLeader() {
		a.mu.Lock()
		from := a.dir.Epoch
		group := a.dir.Assign(desc, a.cfg.GroupSize)
		delta := &DirectoryDelta{
			From: from,
			To:   a.dir.Epoch,
			Upserts: []DirUpsert{{
				Group:   int32(group),
				Version: a.dir.Versions[desc.Name],
				Desc:    desc,
			}},
		}
		dir := a.dir.Clone()
		a.mu.Unlock()
		if a.cfg.fullStateDir() {
			a.kickBroadcast(dir)
		} else {
			a.disseminateDelta(dir, delta)
		}
		return dir, nil
	}
	// Forward to the root.
	var dir *Directory
	err := a.callRoot(ctx, "join",
		func(e *cdr.Encoder) { desc.Marshal(e) },
		func(d *cdr.Decoder) error {
			var err error
			dir, err = UnmarshalDirectory(d)
			return err
		})
	if err != nil {
		return nil, err
	}
	return dir, nil
}

// handleRemoval removes a departed or dead node: executed at the root
// leader, forwarded otherwise.
func (a *Agent) handleRemoval(ctx context.Context, name string) error {
	if a.actingRootLeader() {
		a.mu.Lock()
		from := a.dir.Epoch
		removed := a.dir.Remove(name)
		delta := &DirectoryDelta{From: from, To: a.dir.Epoch, Removes: []string{name}}
		dir := a.dir.Clone()
		delete(a.view, name)
		delete(a.expected, name)
		delete(a.sent, name)
		delete(a.peerEpochs, name)
		a.mu.Unlock()
		if removed {
			if a.cfg.fullStateDir() {
				a.kickBroadcast(dir)
			} else {
				a.disseminateDelta(dir, delta)
				a.gossip.drop(name)
			}
		}
		return nil
	}
	return a.callRoot(ctx, "report_dead", func(e *cdr.Encoder) { e.WriteString(name) }, nil)
}

// disseminateDelta ships one root mutation down the MRM hierarchy: the
// root gossips it to every group's MRM candidates, and each group's
// acting leader relays it to the members beyond the candidate set
// (relayDelta). The root covers its own group directly. Fan-out at the
// root is therefore O(replicas × groups), not O(N).
func (a *Agent) disseminateDelta(dir *Directory, delta *DirectoryDelta) {
	e := cdr.NewEncoder(cdr.LittleEndian)
	delta.Marshal(e)
	body := e.Bytes()
	own := dir.GroupOf(a.name)
	for g := range dir.Groups {
		for _, cand := range dir.Candidates(g, a.cfg.Replicas) {
			if cand == a.name {
				continue
			}
			a.deltasSent.Add(1)
			a.gossip.enqueue(cand, gossipDelta, body)
		}
	}
	// Leader duty for the root's own group: relay past the candidates.
	if own >= 0 {
		members := dir.Members(own)
		if len(members) > a.cfg.Replicas {
			for _, m := range members[a.cfg.Replicas:] {
				if m == a.name {
					continue
				}
				a.deltasSent.Add(1)
				a.gossip.enqueue(m, gossipDelta, body)
			}
		}
	}
}

// relayDelta is the second dissemination tier: an acting group leader
// that received a delta from the root forwards it to its group's
// non-candidate members, who are outside the root's fan-out.
func (a *Agent) relayDelta(dir *Directory, body []byte) {
	group := dir.GroupOf(a.name)
	if group < 0 || !contains(dir.Candidates(group, a.cfg.Replicas), a.name) || !a.actingLeader(group) {
		return
	}
	members := dir.Members(group)
	if len(members) <= a.cfg.Replicas {
		return
	}
	for _, m := range members[a.cfg.Replicas:] {
		if m == a.name {
			continue
		}
		a.deltasSent.Add(1)
		a.gossip.enqueue(m, gossipDelta, body)
	}
}

// deltaOutcome classifies one gossip delta against the local directory.
type deltaOutcome int

const (
	deltaStale    deltaOutcome = iota // already incorporated
	deltaApplied                      // contiguous, applied locally
	deltaSelfGone                     // applied, and it expelled this node
	deltaGap                          // non-contiguous: deltas were lost
)

// applyDelta ingests one delta under the lock and reports what to do
// next; on deltaApplied, dir is the post-apply clone to relay from.
func (a *Agent) applyDelta(delta *DirectoryDelta) (deltaOutcome, *Directory) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch {
	case delta.To <= a.dir.Epoch:
		// Stale or duplicate (e.g. both the root and a relay reached us).
		return deltaStale, nil
	case delta.From == a.dir.Epoch:
		a.dir.Apply(delta)
		a.deltasApplied.Add(1)
		for _, name := range delta.Removes {
			delete(a.view, name)
			delete(a.expected, name)
			delete(a.sent, name)
			delete(a.peerEpochs, name)
		}
		if a.dir.GroupOf(a.name) < 0 {
			return deltaSelfGone, nil
		}
		return deltaApplied, a.dir.Clone()
	default:
		// Gap: deltas were dropped (queue overflow, a missed relay).
		return deltaGap, nil
	}
}

// handleDelta ingests one directory delta from the gossip stream. raw
// is this frame entry's encoded form, copied if the delta must be
// relayed (the inbound buffer is transport-owned).
func (a *Agent) handleDelta(delta *DirectoryDelta, raw []byte) {
	a.deltasRecv.Add(1)
	switch outcome, dir := a.applyDelta(delta); outcome {
	case deltaSelfGone, deltaGap:
		// Behind the stream, or expelled by it: reconcile with the root
		// — anti-entropy pulls exactly the missing entries, and rejoins
		// if the root confirms the expulsion.
		a.kickPull()
	case deltaApplied:
		body := append([]byte(nil), raw...)
		a.relayDelta(dir, body)
		for _, name := range delta.Removes {
			a.gossip.drop(name)
		}
	}
}

// broadcastDirectory pushes a new directory epoch to every member.
func (a *Agent) broadcastDirectory(dir *Directory) {
	ctx, cancel := a.rpcCtx()
	defer cancel()
	for name, nd := range dir.Nodes {
		if name == a.name {
			continue
		}
		ref := a.o.NewRef(nd.Cohesion)
		_ = ref.InvokeOnewayContext(ctx, "directory_push", dir.Marshal)
	}
}

// installDirectory adopts a directory if it is newer than the current
// one.
func (a *Agent) installDirectory(dir *Directory) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if dir.Epoch > a.dir.Epoch {
		a.dir = dir
	}
}

// ingestUpdate stores a member's report+offers in this MRM's view.
func (a *Agent) ingestUpdate(report *node.Report, offers []*node.Offer) {
	a.updatesRecv.Add(1)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.view[report.Node] = &memberState{report: report, offers: offers, lastSeen: time.Now()}
	delete(a.expected, report.Node)
}

// ingestGossipUpdate stores a member's report in this MRM's view; an
// update without offers ("unchanged") keeps the offers last shipped.
func (a *Agent) ingestGossipUpdate(report *node.Report, offers []*node.Offer, hasOffers bool) {
	a.updatesRecv.Add(1)
	a.mu.Lock()
	defer a.mu.Unlock()
	if !hasOffers {
		if prev, ok := a.view[report.Node]; ok {
			offers = prev.offers
		}
	}
	a.view[report.Node] = &memberState{report: report, offers: offers, lastSeen: time.Now()}
	delete(a.expected, report.Node)
}

// ingestSummary stores a group leader's aggregate in the root view.
func (a *Agent) ingestSummary(group int, alive uint32, freeCPU float64, exports []string) {
	exp := make(map[string]bool, len(exports))
	for _, x := range exports {
		exp[x] = true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.summaries[group] = &groupSummary{
		group: group, alive: alive, freeCPU: freeCPU, exports: exp, lastSeen: time.Now(),
	}
}

// viewQuery answers a component query from this MRM's (or, in Strong
// mode, this node's) view.
func (a *Agent) viewQuery(portID, verReq string) []*node.Offer {
	req, err := version.ParseRequirement(verReq)
	if err != nil {
		return nil
	}
	cutoff := time.Now().Add(-a.failTimeout())
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []*node.Offer
	for _, st := range a.view {
		if st.lastSeen.Before(cutoff) {
			continue
		}
		for _, of := range st.offers {
			if of.PortRepoID != portID {
				continue
			}
			if id, err := component.ParseID(of.ComponentID); err == nil && !req.Matches(id.Version) {
				continue
			}
			// Refresh the load figure from the latest report.
			ofCopy := *of
			ofCopy.NodeLoad = st.report.LoadFraction()
			out = append(out, &ofCopy)
		}
	}
	return out
}

// rootQuery resolves a query at the root: the summaries prune the fan-out
// to groups that actually export the port, exploiting the hierarchy.
func (a *Agent) rootQuery(ctx context.Context, portID, verReq string, skipGroup int) []*node.Offer {
	a.mu.Lock()
	var groups []int
	for g, sum := range a.summaries {
		if g != skipGroup && sum.exports[portID] {
			groups = append(groups, g)
		}
	}
	dir := a.dir
	replicas := a.cfg.Replicas
	a.mu.Unlock()

	var out []*node.Offer
	for _, g := range groups {
		for _, cand := range dir.Candidates(g, replicas) {
			if cand == a.name {
				out = append(out, a.viewQuery(portID, verReq)...)
				break
			}
			ref, ok := a.refOf(cand)
			if !ok {
				continue
			}
			var offers []*node.Offer
			a.queriesSent.Add(1)
			err := ref.InvokeContext(ctx, "mrm_query",
				func(e *cdr.Encoder) { e.WriteString(portID); e.WriteString(verReq) },
				func(d *cdr.Decoder) error {
					var err error
					offers, err = node.UnmarshalOffers(d)
					return err
				})
			if err == nil {
				out = append(out, offers...)
				break
			}
		}
	}
	return out
}

// groupSnapshot captures this node's group index and its MRM replica
// candidates, or ErrNotJoined.
func (a *Agent) groupSnapshot() (group int, cands []string, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.joined {
		return 0, nil, ErrNotJoined
	}
	group = a.dir.GroupOf(a.name)
	return group, a.dir.Candidates(group, a.cfg.Replicas), nil
}

// dirClone snapshots the whole directory, or ErrNotJoined.
func (a *Agent) dirClone() (*Directory, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.joined {
		return nil, ErrNotJoined
	}
	return a.dir.Clone(), nil
}

// Query resolves a component query through the hierarchy: own group's
// MRM first ("this reduces network load and exploits locality"), then
// the root, which fans out only to groups whose summaries export the
// port. In Strong mode every node has perfect knowledge, so the answer
// is local.
func (a *Agent) Query(ctx context.Context, portID, verReq string) ([]*node.Offer, error) {
	group, cands, err := a.groupSnapshot()
	if err != nil {
		return nil, err
	}

	if a.cfg.Mode == Strong {
		offers := a.viewQuery(portID, verReq)
		offers = append(offers, a.localOffers(portID, verReq)...)
		return dedupOffers(offers), nil
	}

	// Level 0: own group MRM replicas in priority order.
	var lastErr error
	for _, cand := range cands {
		var offers []*node.Offer
		var err error
		if cand == a.name {
			offers = a.viewQuery(portID, verReq)
		} else {
			ref, ok := a.refOf(cand)
			if !ok {
				continue
			}
			a.queriesSent.Add(1)
			err = ref.InvokeContext(ctx, "mrm_query",
				func(e *cdr.Encoder) { e.WriteString(portID); e.WriteString(verReq) },
				func(d *cdr.Decoder) error {
					var e error
					offers, e = node.UnmarshalOffers(d)
					return e
				})
		}
		if err != nil {
			lastErr = err
			continue
		}
		if len(offers) > 0 {
			return offers, nil
		}
		break // MRM reachable but no local match: climb.
	}

	// Level 1: the root fans out to exporting groups.
	var offers []*node.Offer
	a.queriesSent.Add(1)
	err = a.callRoot(ctx, "root_query",
		func(e *cdr.Encoder) {
			e.WriteString(portID)
			e.WriteString(verReq)
			e.WriteLong(int32(group))
		},
		func(d *cdr.Decoder) error {
			var e error
			offers, e = node.UnmarshalOffers(d)
			return e
		})
	if err != nil {
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, err
	}
	return offers, nil
}

// QueryAll resolves a query exhaustively: local group offers plus every
// other exporting group via the root — for aggregated/data-parallel
// computations that want *all* providers, not the locally best one.
func (a *Agent) QueryAll(ctx context.Context, portID, verReq string) ([]*node.Offer, error) {
	group, cands, err := a.groupSnapshot()
	if err != nil {
		return nil, err
	}

	if a.cfg.Mode == Strong {
		offers := a.viewQuery(portID, verReq)
		offers = append(offers, a.localOffers(portID, verReq)...)
		return dedupOffers(offers), nil
	}

	var out []*node.Offer
	for _, cand := range cands {
		var offers []*node.Offer
		var err error
		if cand == a.name {
			offers = a.viewQuery(portID, verReq)
		} else {
			ref, ok := a.refOf(cand)
			if !ok {
				continue
			}
			a.queriesSent.Add(1)
			err = ref.InvokeContext(ctx, "mrm_query",
				func(e *cdr.Encoder) { e.WriteString(portID); e.WriteString(verReq) },
				func(d *cdr.Decoder) error {
					var e error
					offers, e = node.UnmarshalOffers(d)
					return e
				})
		}
		if err == nil {
			out = append(out, offers...)
			break
		}
	}
	var rootOffers []*node.Offer
	a.queriesSent.Add(1)
	err = a.callRoot(ctx, "root_query",
		func(e *cdr.Encoder) {
			e.WriteString(portID)
			e.WriteString(verReq)
			e.WriteLong(int32(group))
		},
		func(d *cdr.Decoder) error {
			var e error
			rootOffers, e = node.UnmarshalOffers(d)
			return e
		})
	if err == nil {
		out = append(out, rootOffers...)
	} else if len(out) == 0 {
		return nil, err
	}
	return dedupOffers(out), nil
}

// localOffers lists this node's own matching offers (Strong-mode views
// exclude self since agents do not flood to themselves).
func (a *Agent) localOffers(portID, verReq string) []*node.Offer {
	req, err := version.ParseRequirement(verReq)
	if err != nil {
		return nil
	}
	var out []*node.Offer
	for _, of := range a.n.AllOffers() {
		if of.PortRepoID != portID {
			continue
		}
		if id, err := component.ParseID(of.ComponentID); err == nil && !req.Matches(id.Version) {
			continue
		}
		out = append(out, of)
	}
	return out
}

// QueryFlat is the non-hierarchical baseline: ask every node's Component
// Registry directly (E4 compares its message count against Query's).
func (a *Agent) QueryFlat(ctx context.Context, portID, verReq string) ([]*node.Offer, error) {
	dir, err := a.dirClone()
	if err != nil {
		return nil, err
	}
	var out []*node.Offer
	for name, nd := range dir.Nodes {
		if name == a.name {
			out = append(out, a.localOffers(portID, verReq)...)
			continue
		}
		ref := a.o.NewRef(nd.Registry)
		var offers []*node.Offer
		a.queriesSent.Add(1)
		err := ref.InvokeContext(ctx, "query",
			func(e *cdr.Encoder) { e.WriteString(portID); e.WriteString(verReq) },
			func(d *cdr.Decoder) error {
				var e error
				offers, e = node.UnmarshalOffers(d)
				return e
			})
		if err == nil {
			out = append(out, offers...)
		}
	}
	return out, nil
}

// dedupOffers removes duplicate (node, component, port) offers.
func dedupOffers(offers []*node.Offer) []*node.Offer {
	seen := make(map[string]bool, len(offers))
	out := offers[:0]
	for _, of := range offers {
		key := of.Node + "|" + of.ComponentID + "|" + of.Port
		if !seen[key] {
			seen[key] = true
			out = append(out, of)
		}
	}
	return out
}

// Package cpkg implements CORBA-LC component packaging (paper §2.3):
// self-contained ".zip" archives holding the component binaries for any
// number of platforms together with their meta-data — the softpkg and
// componenttype XML descriptors and the IDL files.
//
// The packaging requirements the paper states are all covered here:
// compression for slow links (deflate, with store as an option for
// already-compressed payloads), modular multi-platform binaries,
// subsetting (extracting only the binaries a tiny device needs, along
// with the full meta-data), and authenticity via a manifest of SHA-256
// digests signed with Ed25519.
package cpkg

import (
	"archive/zip"
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"corbalc/internal/xmldesc"
)

// Well-known archive member names.
const (
	SoftPkgFile       = "META-INF/softpkg.xml"
	ComponentTypeFile = "META-INF/componenttype.xml"
	ManifestFile      = "META-INF/MANIFEST"
	SignatureFile     = "META-INF/SIGNATURE"
)

// Errors returned by this package.
var (
	ErrNotPackage   = errors.New("cpkg: not a component package")
	ErrNoFile       = errors.New("cpkg: file not in archive")
	ErrBadManifest  = errors.New("cpkg: manifest does not match contents")
	ErrBadSignature = errors.New("cpkg: signature verification failed")
	ErrUnsigned     = errors.New("cpkg: package is unsigned")
	ErrNoImpl       = errors.New("cpkg: no implementation for requested platform")
)

// Builder assembles a component package.
type Builder struct {
	SoftPkg       *xmldesc.SoftPkg
	ComponentType *xmldesc.ComponentType
	// IDL maps archive paths (e.g. "idl/decoder.idl") to IDL source.
	IDL map[string]string
	// Binaries maps archive paths (the code fileinarchive names of the
	// softpkg implementations) to their payload bytes.
	Binaries map[string][]byte
	// Store disables deflate compression for binary members.
	Store bool
	// signer, when set, adds a signed manifest.
	signer ed25519.PrivateKey
}

// Sign arranges for the package to carry an Ed25519-signed manifest.
func (b *Builder) Sign(priv ed25519.PrivateKey) { b.signer = priv }

// Build validates the descriptors and produces the archive bytes.
func (b *Builder) Build() ([]byte, error) {
	if b.SoftPkg == nil || b.ComponentType == nil {
		return nil, fmt.Errorf("%w: missing descriptors", ErrNotPackage)
	}
	if err := b.SoftPkg.Validate(); err != nil {
		return nil, err
	}
	if err := b.ComponentType.Validate(); err != nil {
		return nil, err
	}
	for i := range b.SoftPkg.Implementations {
		name := b.SoftPkg.Implementations[i].Code.File.Name
		if _, ok := b.Binaries[name]; !ok {
			return nil, fmt.Errorf("cpkg: implementation %s: binary %q not supplied",
				b.SoftPkg.Implementations[i].ID, name)
		}
	}

	var spBuf, ctBuf bytes.Buffer
	if err := b.SoftPkg.Encode(&spBuf); err != nil {
		return nil, err
	}
	if err := b.ComponentType.Encode(&ctBuf); err != nil {
		return nil, err
	}

	files := map[string][]byte{
		SoftPkgFile:       spBuf.Bytes(),
		ComponentTypeFile: ctBuf.Bytes(),
	}
	for name, src := range b.IDL {
		files[name] = []byte(src)
	}
	for name, data := range b.Binaries {
		files[name] = data
	}
	return writeArchive(files, b.Store, b.signer)
}

// writeArchive renders files (plus manifest/signature) as a zip.
func writeArchive(files map[string][]byte, store bool, signer ed25519.PrivateKey) ([]byte, error) {
	manifest := buildManifest(files)
	files[ManifestFile] = manifest
	if signer != nil {
		files[SignatureFile] = []byte(hex.EncodeToString(ed25519.Sign(signer, manifest)))
	}

	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic archives

	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for _, name := range names {
		method := zip.Deflate
		if store && !strings.HasPrefix(name, "META-INF/") && !strings.HasSuffix(name, ".idl") {
			method = zip.Store
		}
		w, err := zw.CreateHeader(&zip.FileHeader{Name: name, Method: method})
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(files[name]); err != nil {
			return nil, err
		}
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// buildManifest lists every member (except manifest/signature) with its
// SHA-256, one "hexdigest  name" line each, sorted by name.
func buildManifest(files map[string][]byte) []byte {
	names := make([]string, 0, len(files))
	for n := range files {
		if n == ManifestFile || n == SignatureFile {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		sum := sha256.Sum256(files[n])
		fmt.Fprintf(&sb, "%s  %s\n", hex.EncodeToString(sum[:]), n)
	}
	return []byte(sb.String())
}

// Package is an opened component package.
type Package struct {
	data []byte
	zr   *zip.Reader
	sp   *xmldesc.SoftPkg
	ct   *xmldesc.ComponentType
}

// Open parses a package from its archive bytes.
func Open(data []byte) (*Package, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotPackage, err)
	}
	p := &Package{data: data, zr: zr}
	spRaw, err := p.File(SoftPkgFile)
	if err != nil {
		return nil, fmt.Errorf("%w: missing %s", ErrNotPackage, SoftPkgFile)
	}
	if p.sp, err = xmldesc.ParseSoftPkg(bytes.NewReader(spRaw)); err != nil {
		return nil, err
	}
	ctRaw, err := p.File(ComponentTypeFile)
	if err != nil {
		return nil, fmt.Errorf("%w: missing %s", ErrNotPackage, ComponentTypeFile)
	}
	if p.ct, err = xmldesc.ParseComponentType(bytes.NewReader(ctRaw)); err != nil {
		return nil, err
	}
	return p, nil
}

// Bytes returns the raw archive (what travels between nodes).
func (p *Package) Bytes() []byte { return p.data }

// Size returns the archive size in bytes.
func (p *Package) Size() int { return len(p.data) }

// SoftPkg returns the static-dimension descriptor.
func (p *Package) SoftPkg() *xmldesc.SoftPkg { return p.sp }

// ComponentType returns the dynamic-dimension descriptor.
func (p *Package) ComponentType() *xmldesc.ComponentType { return p.ct }

// Names lists the archive members in order.
func (p *Package) Names() []string {
	out := make([]string, 0, len(p.zr.File))
	for _, f := range p.zr.File {
		out = append(out, f.Name)
	}
	return out
}

// File extracts one member's contents.
func (p *Package) File(name string) ([]byte, error) {
	for _, f := range p.zr.File {
		if f.Name == name {
			rc, err := f.Open()
			if err != nil {
				return nil, err
			}
			defer rc.Close()
			return io.ReadAll(rc)
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNoFile, name)
}

// IDLSources returns the IDL members (path -> source).
func (p *Package) IDLSources() (map[string]string, error) {
	out := make(map[string]string)
	for _, f := range p.zr.File {
		if strings.HasSuffix(f.Name, ".idl") {
			data, err := p.File(f.Name)
			if err != nil {
				return nil, err
			}
			out[f.Name] = string(data)
		}
	}
	return out, nil
}

// Binary returns the payload of the implementation matching the platform
// tuple, with the implementation record.
func (p *Package) Binary(os, processor, orb string) (*xmldesc.Implementation, []byte, error) {
	im, ok := p.sp.FindImplementation(os, processor, orb)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s/%s/%s", ErrNoImpl, os, processor, orb)
	}
	data, err := p.File(im.Code.File.Name)
	if err != nil {
		return nil, nil, err
	}
	return im, data, nil
}

// CheckManifest recomputes every member digest against the manifest.
func (p *Package) CheckManifest() error {
	manifest, err := p.File(ManifestFile)
	if err != nil {
		return fmt.Errorf("%w: no manifest", ErrBadManifest)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(manifest)), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "  ", 2)
		if len(parts) != 2 {
			return fmt.Errorf("%w: malformed line %q", ErrBadManifest, line)
		}
		want[parts[1]] = parts[0]
	}
	for _, f := range p.zr.File {
		if f.Name == ManifestFile || f.Name == SignatureFile {
			continue
		}
		digest, ok := want[f.Name]
		if !ok {
			return fmt.Errorf("%w: %s not in manifest", ErrBadManifest, f.Name)
		}
		data, err := p.File(f.Name)
		if err != nil {
			return err
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != digest {
			return fmt.Errorf("%w: digest mismatch for %s", ErrBadManifest, f.Name)
		}
		delete(want, f.Name)
	}
	if len(want) > 0 {
		return fmt.Errorf("%w: manifest names absent members", ErrBadManifest)
	}
	return nil
}

// Verify checks the manifest digests and its Ed25519 signature against
// the component writer's public key (paper §2.1.1: "the installer must
// be sure of who really made this component by verifying the component's
// cryptographic signature").
func (p *Package) Verify(pub ed25519.PublicKey) error {
	if err := p.CheckManifest(); err != nil {
		return err
	}
	sigHex, err := p.File(SignatureFile)
	if err != nil {
		return ErrUnsigned
	}
	sig, err := hex.DecodeString(strings.TrimSpace(string(sigHex)))
	if err != nil {
		return fmt.Errorf("%w: undecodable signature", ErrBadSignature)
	}
	manifest, err := p.File(ManifestFile)
	if err != nil {
		return fmt.Errorf("%w: no manifest", ErrBadManifest)
	}
	if !ed25519.Verify(pub, manifest, sig) {
		return ErrBadSignature
	}
	return nil
}

// Subset produces a new package containing the full meta-data (and IDL)
// but only the binaries of the named implementations. Tiny devices use
// it to fetch a component without the fat platform variants (§2.3). The
// softpkg descriptor in the subset lists only the kept implementations;
// the subset is re-signed if signer is non-nil, since its manifest
// differs from the original.
func (p *Package) Subset(signer ed25519.PrivateKey, implIDs ...string) ([]byte, error) {
	keep := make(map[string]bool, len(implIDs))
	for _, id := range implIDs {
		keep[id] = true
	}
	sub := *p.sp
	sub.Implementations = nil
	binaries := make(map[string]bool)
	for _, im := range p.sp.Implementations {
		if keep[im.ID] {
			sub.Implementations = append(sub.Implementations, im)
			binaries[im.Code.File.Name] = true
			delete(keep, im.ID)
		}
	}
	if len(keep) > 0 {
		return nil, fmt.Errorf("%w: unknown implementation ids %v", ErrNoImpl, keysOf(keep))
	}
	if len(sub.Implementations) == 0 {
		return nil, fmt.Errorf("%w: subset would keep no implementation", ErrNoImpl)
	}

	var spBuf bytes.Buffer
	if err := sub.Encode(&spBuf); err != nil {
		return nil, err
	}
	files := map[string][]byte{SoftPkgFile: spBuf.Bytes()}
	for _, f := range p.zr.File {
		switch {
		case f.Name == SoftPkgFile, f.Name == ManifestFile, f.Name == SignatureFile:
			continue
		case f.Name == ComponentTypeFile, strings.HasSuffix(f.Name, ".idl"), binaries[f.Name]:
			data, err := p.File(f.Name)
			if err != nil {
				return nil, err
			}
			files[f.Name] = data
		}
	}
	return writeArchive(files, false, signer)
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package cpkg

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"strings"
	"testing"

	"corbalc/internal/xmldesc"
)

// testBuilder assembles a two-implementation package with a large
// compressible binary (to observe deflate) and a small one.
func testBuilder() *Builder {
	sp := &xmldesc.SoftPkg{
		Name:    "whiteboard",
		Version: "2.1.0",
		Title:   "Shared Whiteboard",
		Dependencies: []xmldesc.Dependency{
			{Type: "Component", Name: "display", Version: ">=1.0"},
		},
		Implementations: []xmldesc.Implementation{
			{
				ID: "linux-amd64", OS: "linux", Processor: "amd64", ORB: "corbalc",
				Code: xmldesc.CodeRef{Type: "GoRegistered", File: xmldesc.FileRef{Name: "bin/wb-linux-amd64.bin"}, EntryPoint: "whiteboard.New"},
			},
			{
				ID: "pda-arm", OS: "palmos", Processor: "arm",
				Code: xmldesc.CodeRef{Type: "Script", File: xmldesc.FileRef{Name: "bin/wb-pda.scr"}},
			},
		},
		Descriptor: xmldesc.FileRef{Name: ComponentTypeFile},
		IDLFiles:   []xmldesc.FileRef{{Name: "idl/wb.idl"}},
		Mobility:   "movable",
	}
	ct := &xmldesc.ComponentType{
		Name:   "Whiteboard",
		RepoID: "IDL:cscw/Whiteboard:1.0",
		Ports: []xmldesc.Port{
			{Kind: xmldesc.PortProvides, Name: "board", RepoID: "IDL:cscw/Board:1.0"},
			{Kind: xmldesc.PortUses, Name: "display", RepoID: "IDL:corbalc/Display:1.0"},
		},
	}
	return &Builder{
		SoftPkg:       sp,
		ComponentType: ct,
		IDL:           map[string]string{"idl/wb.idl": "interface Board { void stroke(in double x); };"},
		Binaries: map[string][]byte{
			"bin/wb-linux-amd64.bin": bytes.Repeat([]byte("NATIVE CODE "), 4096),
			"bin/wb-pda.scr":         []byte("tiny script"),
		},
	}
}

func TestBuildOpenRoundTrip(t *testing.T) {
	data, err := testBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.SoftPkg().Name != "whiteboard" || p.ComponentType().Name != "Whiteboard" {
		t.Fatalf("descriptors: %s / %s", p.SoftPkg().Name, p.ComponentType().Name)
	}
	if p.Size() != len(data) {
		t.Fatal("size mismatch")
	}
	idl, err := p.IDLSources()
	if err != nil || len(idl) != 1 || !strings.Contains(idl["idl/wb.idl"], "interface Board") {
		t.Fatalf("idl = %v, %v", idl, err)
	}
	if err := p.CheckManifest(); err != nil {
		t.Fatalf("manifest: %v", err)
	}
}

func TestCompressionShrinksPackage(t *testing.T) {
	b := testBuilder()
	deflated, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	b2 := testBuilder()
	b2.Store = true
	stored, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(deflated) >= len(stored) {
		t.Fatalf("deflate (%d) not smaller than store (%d) for repetitive payload", len(deflated), len(stored))
	}
}

func TestBinarySelection(t *testing.T) {
	data, err := testBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Open(data)
	im, bin, err := p.Binary("linux", "amd64", "corbalc")
	if err != nil || im.ID != "linux-amd64" || len(bin) == 0 {
		t.Fatalf("binary = %+v, %d bytes, %v", im, len(bin), err)
	}
	im, bin, err = p.Binary("palmos", "arm", "")
	if err != nil || im.ID != "pda-arm" || string(bin) != "tiny script" {
		t.Fatalf("pda binary = %+v %q %v", im, bin, err)
	}
	if _, _, err := p.Binary("plan9", "mips", ""); !errors.Is(err, ErrNoImpl) {
		t.Fatalf("missing platform err = %v", err)
	}
}

func TestSignAndVerify(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b := testBuilder()
	b.Sign(priv)
	data, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(pub); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Wrong key.
	otherPub, _, _ := ed25519.GenerateKey(rand.Reader)
	if err := p.Verify(otherPub); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong key err = %v", err)
	}
}

func TestVerifyUnsigned(t *testing.T) {
	data, err := testBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Open(data)
	pub, _, _ := ed25519.GenerateKey(rand.Reader)
	if err := p.Verify(pub); !errors.Is(err, ErrUnsigned) {
		t.Fatalf("unsigned err = %v", err)
	}
}

func TestTamperDetection(t *testing.T) {
	pub, priv, _ := ed25519.GenerateKey(rand.Reader)
	b := testBuilder()
	b.Sign(priv)
	data, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the stored archive payload region. zip files
	// keep member data inline, so this corrupts some member; either the
	// zip layer or the manifest check must catch it.
	tampered := append([]byte(nil), data...)
	tampered[len(tampered)/2] ^= 0xFF
	p, err := Open(tampered)
	if err != nil {
		return // corrupted at the container level: detected
	}
	if err := p.Verify(pub); err == nil {
		t.Fatal("tampered package verified")
	}
}

func TestSubsetForTinyDevice(t *testing.T) {
	pub, priv, _ := ed25519.GenerateKey(rand.Reader)
	b := testBuilder()
	b.Sign(priv)
	full, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Open(full)

	sub, err := p.Subset(priv, "pda-arm")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) >= len(full) {
		t.Fatalf("subset (%d) not smaller than full (%d)", len(sub), len(full))
	}
	sp, err := Open(sub)
	if err != nil {
		t.Fatal(err)
	}
	// Meta-data intact, fat binary gone, descriptor lists only the kept
	// implementation.
	if sp.ComponentType().Name != "Whiteboard" {
		t.Error("componenttype lost in subset")
	}
	if got := len(sp.SoftPkg().Implementations); got != 1 {
		t.Fatalf("subset implementations = %d", got)
	}
	if _, err := sp.File("bin/wb-linux-amd64.bin"); !errors.Is(err, ErrNoFile) {
		t.Error("fat binary still present in subset")
	}
	if _, _, err := sp.Binary("palmos", "arm", ""); err != nil {
		t.Errorf("pda binary missing from subset: %v", err)
	}
	if err := sp.Verify(pub); err != nil {
		t.Errorf("subset verify: %v", err)
	}
	// Unknown implementation id.
	if _, err := p.Subset(nil, "nope"); !errors.Is(err, ErrNoImpl) {
		t.Errorf("unknown impl err = %v", err)
	}
}

func TestBuildErrors(t *testing.T) {
	b := testBuilder()
	delete(b.Binaries, "bin/wb-pda.scr")
	if _, err := b.Build(); err == nil {
		t.Error("missing binary accepted")
	}
	b = testBuilder()
	b.SoftPkg.Version = "bogus"
	if _, err := b.Build(); err == nil {
		t.Error("invalid softpkg accepted")
	}
	b = testBuilder()
	b.ComponentType.RepoID = "nope"
	if _, err := b.Build(); err == nil {
		t.Error("invalid componenttype accepted")
	}
	if _, err := (&Builder{}).Build(); !errors.Is(err, ErrNotPackage) {
		t.Error("empty builder accepted")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open([]byte("not a zip")); !errors.Is(err, ErrNotPackage) {
		t.Errorf("garbage err = %v", err)
	}
	// A zip without descriptors is not a package.
	var buf bytes.Buffer
	data, _ := writeArchive(map[string][]byte{"random.txt": []byte("x")}, false, nil)
	buf.Write(data)
	if _, err := Open(buf.Bytes()); !errors.Is(err, ErrNotPackage) {
		t.Errorf("descriptor-less zip err = %v", err)
	}
}

func BenchmarkBuildPackage(b *testing.B) {
	bl := testBuilder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bl.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenPackage(b *testing.B) {
	data, err := testBuilder().Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(data); err != nil {
			b.Fatal(err)
		}
	}
}

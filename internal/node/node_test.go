package node

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/container"
	"corbalc/internal/ior"
	"corbalc/internal/leak"
	"corbalc/internal/orb"
	"corbalc/internal/simnet"
	"corbalc/internal/version"
	"corbalc/internal/xmldesc"
)

// adderInstance provides port "sum" with add/total ops.
type adderInstance struct {
	component.Base
	total atomic.Int64
}

func (ai *adderInstance) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	if port != "sum" {
		return component.ErrNoSuchPort
	}
	switch op {
	case "add":
		n, err := args.ReadLong()
		if err != nil {
			return err
		}
		reply.WriteLong(int32(ai.total.Add(int64(n))))
		return nil
	case "total":
		reply.WriteLong(int32(ai.total.Load()))
		return nil
	}
	return orb.BadOperation()
}

func (ai *adderInstance) CaptureState() ([]byte, error) {
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.WriteLongLong(ai.total.Load())
	return e.Bytes(), nil
}

func (ai *adderInstance) RestoreState(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	v, err := cdr.NewDecoder(b, cdr.LittleEndian).ReadLongLong()
	if err != nil {
		return err
	}
	ai.total.Store(v)
	return nil
}

func adderSpec(name, ver string) *component.Spec {
	s := &component.Spec{Name: name, Version: ver, Entrypoint: "test/adder.New"}
	s.Provide("sum", "IDL:test/Adder:1.0")
	s.QoS = xmldesc.QoS{CPUMin: 0.1, MemoryMinMB: 8}
	return s
}

func testImpls() *component.Registry {
	reg := component.NewRegistry()
	reg.Register("test/adder.New", func() component.Instance { return &adderInstance{} })
	return reg
}

func newTestNode(t *testing.T, name string, prof Profile) *Node {
	t.Helper()
	n := New(Config{Name: name, Impls: testImpls(), Profile: prof})
	t.Cleanup(n.Close)
	return n
}

func buildAdder(t *testing.T, name, ver string) *component.Component {
	t.Helper()
	c, err := adderSpec(name, ver).Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInstallInstantiateInvoke(t *testing.T) {
	leak.Check(t)
	n := newTestNode(t, "alpha", WorkstationProfile())
	id, err := n.Install(buildAdder(t, "adder", "1.0.0").Package().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if id.String() != "adder-1.0.0" {
		t.Fatalf("id = %s", id)
	}
	if n.Repo().Len() != 1 {
		t.Fatal("repo empty after install")
	}
	d0 := n.Digest()

	mi, err := n.Instantiate(context.Background(), id, "a1")
	if err != nil {
		t.Fatal(err)
	}
	if n.Digest() <= d0 {
		t.Fatal("digest did not advance on instantiate")
	}
	ref, err := mi.PortIOR("sum")
	if err != nil {
		t.Fatal(err)
	}
	var got int32
	err = n.ORB().NewRef(ref).Invoke("add",
		func(e *cdr.Encoder) { e.WriteLong(40) },
		func(d *cdr.Decoder) error { var e error; got, e = d.ReadLong(); return e })
	if err != nil || got != 40 {
		t.Fatalf("add = %d, %v", got, err)
	}
}

func TestInstallRejectsWrongPlatform(t *testing.T) {
	leak.Check(t)
	n := newTestNode(t, "alpha", WorkstationProfile())
	spec := adderSpec("nicheware", "1.0.0")
	spec.Platforms = [][2]string{{"plan9", "mips"}}
	c, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Install(c.Package().Bytes()); !errors.Is(err, ErrNoPlatformFit) {
		t.Fatalf("err = %v", err)
	}
}

func TestPDARefusesInstallButKeepsRemoteUse(t *testing.T) {
	leak.Check(t)
	pda := newTestNode(t, "pda-1", PDAProfile())
	// A PDA is a fixed node: installation refused outright.
	if _, err := pda.Install(buildAdder(t, "adder", "1.0.0").Package().Bytes()); !errors.Is(err, ErrFixedNode) {
		t.Fatalf("install on PDA: %v", err)
	}
	// And even a non-fixed tiny node rejects components whose memory
	// floor exceeds the device.
	tiny := PDAProfile()
	tiny.Fixed = false
	n := newTestNode(t, "tiny", tiny)
	spec := adderSpec("hog", "1.0.0")
	spec.QoS = xmldesc.QoS{MemoryMinMB: 512}
	c, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Install(c.Package().Bytes()); !errors.Is(err, ErrResources) {
		t.Fatalf("oversized install: %v", err)
	}
}

func TestLocalQueryAndVersions(t *testing.T) {
	leak.Check(t)
	n := newTestNode(t, "alpha", WorkstationProfile())
	for _, ver := range []string{"1.0.0", "1.5.0", "2.0.0"} {
		if _, err := n.InstallComponent(buildAdder(t, "adder", ver)); err != nil {
			t.Fatal(err)
		}
	}
	offers, err := n.LocalQuery("IDL:test/Adder:1.0", "1.*")
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 2 {
		t.Fatalf("offers = %d", len(offers))
	}
	for _, of := range offers {
		if !strings.HasPrefix(of.ComponentID, "adder-1.") || of.Node != "alpha" || of.Port != "sum" {
			t.Fatalf("offer = %+v", of)
		}
	}
	if _, err := n.LocalQuery("IDL:test/Adder:1.0", ">>bad"); err == nil {
		t.Fatal("bad version requirement accepted")
	}
	// Repository Best picks the newest matching.
	req, _ := version.ParseRequirement("1.*")
	best, ok := n.Repo().Best("adder", req)
	if !ok || best.Version() != version.MustParse("1.5.0") {
		t.Fatalf("best = %v, %v", best.ID(), ok)
	}
}

func TestLocalResolverReusesInstance(t *testing.T) {
	leak.Check(t)
	n := newTestNode(t, "alpha", WorkstationProfile())
	if _, err := n.InstallComponent(buildAdder(t, "adder", "1.0.0")); err != nil {
		t.Fatal(err)
	}
	p := xmldesc.Port{Kind: xmldesc.PortUses, Name: "dep", RepoID: "IDL:test/Adder:1.0"}
	ref1, err := n.ResolveDependency(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := n.ResolveDependency(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if ref1.String() != ref2.String() {
		t.Fatal("resolver created a second instance instead of reusing")
	}
	if _, err := n.ResolveDependency(context.Background(), xmldesc.Port{RepoID: "IDL:test/Nothing:1.0", Kind: xmldesc.PortUses, Name: "x"}); !errors.Is(err, ErrUnresolved) {
		t.Fatalf("missing dep err = %v", err)
	}
}

func TestReportMarshalRoundTrip(t *testing.T) {
	leak.Check(t)
	n := newTestNode(t, "alpha", ServerProfile())
	r := n.Report()
	e := cdr.NewEncoder(cdr.BigEndian)
	r.Marshal(e)
	got, err := UnmarshalReport(cdr.NewDecoder(e.Bytes(), cdr.BigEndian))
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != "alpha" || got.Capability != CapServer || got.CPUCores != 16 ||
		got.MemoryMB != 32768 || got.UnixMillis != r.UnixMillis {
		t.Fatalf("report = %+v", got)
	}
	if got.CPUFree() != 16 || got.LoadFraction() != 0 {
		t.Fatalf("derived values wrong: %+v", got)
	}
	if _, err := UnmarshalReport(cdr.NewDecoder([]byte{1}, cdr.BigEndian)); err == nil {
		t.Fatal("garbage report accepted")
	}
}

func TestOfferMarshalRoundTrip(t *testing.T) {
	leak.Check(t)
	in := &Offer{
		ComponentID: "adder-1.0.0",
		Node:        "alpha",
		Port:        "sum",
		PortRepoID:  "IDL:test/Adder:1.0",
		Movable:     true,
		CPUMin:      0.1,
		MemoryMinMB: 8,
		NodeLoad:    0.25,
		Acceptor:    ior.New("IDL:corbalc/ComponentAcceptor:1.0", "h", 1, []byte("a")),
		Registry:    ior.New("IDL:corbalc/ComponentRegistry:1.0", "h", 1, []byte("r")),
	}
	e := cdr.NewEncoder(cdr.LittleEndian)
	MarshalOffers(e, []*Offer{in, in})
	out, err := UnmarshalOffers(cdr.NewDecoder(e.Bytes(), cdr.LittleEndian))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].ComponentID != in.ComponentID || out[1].NodeLoad != 0.25 ||
		!out[0].Movable || out[0].Acceptor.TypeID != in.Acceptor.TypeID {
		t.Fatalf("offers = %+v", out[0])
	}
	// Hostile count.
	e = cdr.NewEncoder(cdr.LittleEndian)
	e.WriteULong(1 << 30)
	if _, err := UnmarshalOffers(cdr.NewDecoder(e.Bytes(), cdr.LittleEndian)); err == nil {
		t.Fatal("hostile offer count accepted")
	}
}

// twoNodesOverSimnet wires two nodes through a virtual network and
// returns them; callers interact across it purely via CORBA refs.
func twoNodesOverSimnet(t *testing.T) (*Node, *Node, *simnet.Network) {
	t.Helper()
	net := simnet.New(simnet.Link{})
	a := newTestNode(t, "alpha", WorkstationProfile())
	b := newTestNode(t, "beta", WorkstationProfile())
	if err := net.Attach("alpha", a.ORB()); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach("beta", b.ORB()); err != nil {
		t.Fatal(err)
	}
	return a, b, net
}

func TestRemoteInstallQueryInstantiateOverCORBA(t *testing.T) {
	leak.Check(t)
	a, b, _ := twoNodesOverSimnet(t)

	// beta installs the component on alpha through alpha's acceptor —
	// pure CORBA, no shared memory.
	acceptor := b.ORB().NewRef(a.AcceptorIOR())
	pkgBytes := buildAdder(t, "adder", "1.0.0").Package().Bytes()
	var idStr string
	err := acceptor.Invoke("install",
		func(e *cdr.Encoder) { e.WriteOctetSeq(pkgBytes) },
		func(d *cdr.Decoder) error { var e error; idStr, e = d.ReadString(); return e })
	if err != nil {
		t.Fatal(err)
	}
	if idStr != "adder-1.0.0" {
		t.Fatalf("installed id = %q", idStr)
	}

	// Query alpha's registry from beta.
	reg := b.ORB().NewRef(a.RegistryIOR())
	var offers []*Offer
	err = reg.Invoke("query",
		func(e *cdr.Encoder) { e.WriteString("IDL:test/Adder:1.0"); e.WriteString("*") },
		func(d *cdr.Decoder) error { var e error; offers, e = UnmarshalOffers(d); return e })
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].Node != "alpha" {
		t.Fatalf("offers = %+v", offers)
	}

	// Instantiate remotely and invoke the provided port from beta.
	var instRef *ior.IOR
	err = acceptor.Invoke("instantiate",
		func(e *cdr.Encoder) { e.WriteString(idStr); e.WriteString("remote-made") },
		func(d *cdr.Decoder) error { var e error; instRef, e = ior.Unmarshal(d); return e })
	if err != nil {
		t.Fatal(err)
	}
	var portRef *ior.IOR
	err = acceptor.Invoke("provide",
		func(e *cdr.Encoder) {
			e.WriteString(idStr)
			e.WriteString("remote-made")
			e.WriteString("sum")
		},
		func(d *cdr.Decoder) error { var e error; portRef, e = ior.Unmarshal(d); return e })
	if err != nil {
		t.Fatal(err)
	}
	var total int32
	err = b.ORB().NewRef(portRef).Invoke("add",
		func(e *cdr.Encoder) { e.WriteLong(7) },
		func(d *cdr.Decoder) error { var e error; total, e = d.ReadLong(); return e })
	if err != nil || total != 7 {
		t.Fatalf("remote add = %d, %v", total, err)
	}
	_ = instRef

	// list_components across the wire.
	var names []string
	err = reg.Invoke("list_components", nil, func(d *cdr.Decoder) error {
		var e error
		names, e = d.ReadStringSeq()
		return e
	})
	if err != nil || len(names) != 1 || names[0] != "adder-1.0.0" {
		t.Fatalf("list = %v, %v", names, err)
	}
}

func TestPackageFetchBetweenNodes(t *testing.T) {
	leak.Check(t)
	a, b, _ := twoNodesOverSimnet(t)
	if _, err := a.InstallComponent(buildAdder(t, "adder", "1.0.0")); err != nil {
		t.Fatal(err)
	}
	// beta fetches the binary package from alpha's registry and installs
	// it locally: "fetching them from the host they are installed".
	reg := b.ORB().NewRef(a.RegistryIOR())
	var pkg []byte
	err := reg.Invoke("get_package",
		func(e *cdr.Encoder) { e.WriteString("adder-1.0.0") },
		func(d *cdr.Decoder) error { var e error; pkg, e = d.ReadOctetSeq(); return e })
	if err != nil {
		t.Fatal(err)
	}
	id, err := b.Install(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if id.String() != "adder-1.0.0" {
		t.Fatalf("fetched id = %s", id)
	}
	// Unknown package is a user exception.
	err = reg.Invoke("get_package",
		func(e *cdr.Encoder) { e.WriteString("ghost-1.0.0") }, nil)
	if !orb.IsUserException(err, "IDL:corbalc/ComponentRegistry/NoSuchComponent:1.0") {
		t.Fatalf("err = %v", err)
	}
}

func TestMigrationViaAcceptorCapsule(t *testing.T) {
	leak.Check(t)
	a, b, _ := twoNodesOverSimnet(t)
	comp := buildAdder(t, "adder", "1.0.0")
	if _, err := a.InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	if _, err := b.InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	id := comp.ID()
	mi, err := a.Instantiate(context.Background(), id, "mover")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mi.PortIOR("sum")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ORB().NewRef(ref).Invoke("add",
		func(e *cdr.Encoder) { e.WriteLong(99) },
		func(d *cdr.Decoder) error { _, e := d.ReadLong(); return e }); err != nil {
		t.Fatal(err)
	}

	ct, err := a.ContainerFor(id)
	if err != nil {
		t.Fatal(err)
	}
	capsule, err := ct.Migrate("mover")
	if err != nil {
		t.Fatal(err)
	}
	// Ship the capsule to beta through its acceptor.
	acceptor := a.ORB().NewRef(b.AcceptorIOR())
	var instRef *ior.IOR
	err = acceptor.Invoke("receive_capsule",
		func(e *cdr.Encoder) {
			e.WriteString(id.String())
			e.WriteOctetSeq(capsule.Bytes())
		},
		func(d *cdr.Decoder) error { var e error; instRef, e = ior.Unmarshal(d); return e })
	if err != nil {
		t.Fatal(err)
	}
	if instRef.TypeID != container.EquivalentRepoID {
		t.Fatalf("instance ref type = %q", instRef.TypeID)
	}
	// Total survived the move.
	bct, err := b.ContainerFor(id)
	if err != nil {
		t.Fatal(err)
	}
	bmi, ok := bct.Instance("mover")
	if !ok {
		t.Fatal("instance not on beta")
	}
	bref, err := bmi.PortIOR("sum")
	if err != nil {
		t.Fatal(err)
	}
	var total int32
	err = a.ORB().NewRef(bref).Invoke("total", nil, func(d *cdr.Decoder) error {
		var e error
		total, e = d.ReadLong()
		return e
	})
	if err != nil || total != 99 {
		t.Fatalf("migrated total = %d, %v", total, err)
	}
}

func TestUninstallClosesContainer(t *testing.T) {
	leak.Check(t)
	n := newTestNode(t, "alpha", WorkstationProfile())
	comp := buildAdder(t, "adder", "1.0.0")
	id, err := n.InstallComponent(comp)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := n.Instantiate(context.Background(), id, "x")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mi.PortIOR("sum")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Uninstall(id); err != nil {
		t.Fatal(err)
	}
	err = n.ORB().NewRef(ref).Invoke("total", nil, nil)
	var se *orb.SystemException
	if !errors.As(err, &se) || se.Name != "OBJECT_NOT_EXIST" {
		t.Fatalf("after uninstall: %v", err)
	}
	if err := n.Uninstall(id); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("double uninstall: %v", err)
	}
}

func TestAdmitReleasesOnDestroy(t *testing.T) {
	leak.Check(t)
	prof := WorkstationProfile()
	prof.CPUCores = 0.25 // room for exactly two 0.1-CPU instances
	n := newTestNode(t, "small", prof)
	id, err := n.InstallComponent(buildAdder(t, "adder", "1.0.0"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Instantiate(context.Background(), id, "one"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Instantiate(context.Background(), id, "two"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Instantiate(context.Background(), id, "three"); err == nil {
		t.Fatal("over-admission")
	}
	ct, err := n.ContainerFor(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Destroy("one"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Instantiate(context.Background(), id, "three"); err != nil {
		t.Fatalf("create after release: %v", err)
	}
}

package node

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"sync"

	"corbalc/internal/component"
	"corbalc/internal/version"
)

// Errors returned by the repository.
var (
	ErrNotInstalled  = errors.New("node: component not installed")
	ErrUntrusted     = errors.New("node: package failed signature verification")
	ErrFixedNode     = errors.New("node: this node does not accept component installation")
	ErrNoPlatformFit = errors.New("node: package has no implementation for this platform")
)

// Repository is the node's Component Repository (Fig. 1): the set of
// locally installed components, kept in binary form so they can be
// re-exported to other nodes ("to be extracted from, and brought to, a
// given host", §2.1.1). An export index keyed by provided-port interface
// ID (and by-name component key) keeps registry queries O(matches)
// instead of O(repository).
type Repository struct {
	mu      sync.RWMutex
	comps   map[component.ID]*component.Component
	exports map[string][]component.ID // port repo ID / component key -> providers
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{
		comps:   make(map[component.ID]*component.Component),
		exports: make(map[string][]component.ID),
	}
}

// exportKeys lists the index keys one component contributes.
func exportKeys(c *component.Component) []string {
	keys := []string{ComponentKey(c.Name())}
	for _, p := range c.Type().Ports {
		if p.Kind == "provides" {
			keys = append(keys, p.RepoID)
		}
	}
	return keys
}

// Put stores a loaded component and indexes its exports.
func (r *Repository) Put(c *component.Component) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := c.ID()
	if _, exists := r.comps[id]; !exists {
		for _, key := range exportKeys(c) {
			r.exports[key] = append(r.exports[key], id)
		}
	}
	r.comps[id] = c
}

// Get retrieves an installed component.
func (r *Repository) Get(id component.ID) (*component.Component, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.comps[id]
	return c, ok
}

// Remove uninstalls a component and drops its index entries.
func (r *Repository) Remove(id component.ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.comps[id]
	if !ok {
		return false
	}
	delete(r.comps, id)
	for _, key := range exportKeys(c) {
		ids := r.exports[key]
		for i, x := range ids {
			if x == id {
				r.exports[key] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(r.exports[key]) == 0 {
			delete(r.exports, key)
		}
	}
	return true
}

// List returns installed component IDs, sorted for determinism.
func (r *Repository) List() []component.ID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]component.ID, 0, len(r.comps))
	for id := range r.comps {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version.Less(out[j].Version)
	})
	return out
}

// Len reports the number of installed components.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.comps)
}

// Best returns the newest installed version of a component satisfying
// the requirement.
func (r *Repository) Best(name string, req version.Requirement) (*component.Component, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var best *component.Component
	for id, c := range r.comps {
		if id.Name != name || !req.Matches(id.Version) {
			continue
		}
		if best == nil || best.Version().Less(id.Version) {
			best = c
		}
	}
	return best, best != nil
}

// Providers returns the installed components matching an export key — a
// provided-port interface repository ID or a "component:<name>" key —
// honouring a version requirement on the component. The export index
// makes this O(matches).
func (r *Repository) Providers(exportKey string, req version.Requirement) []*component.Component {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := r.exports[exportKey]
	out := make([]*component.Component, 0, len(ids))
	for _, id := range ids {
		if !req.Matches(id.Version) {
			continue
		}
		if c, ok := r.comps[id]; ok {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID().String() < out[j].ID().String() })
	return out
}

// verifyPackage checks a package against a trusted key set; an empty key
// set accepts unsigned packages (open network).
func verifyPackage(c *component.Component, keys []ed25519.PublicKey) error {
	if len(keys) == 0 {
		return nil
	}
	var lastErr error
	for _, k := range keys {
		if err := c.Package().Verify(k); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return fmt.Errorf("%w: %v", ErrUntrusted, lastErr)
}

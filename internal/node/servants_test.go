package node

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/cpkg"
	"corbalc/internal/events"
	"corbalc/internal/ior"
	"corbalc/internal/leak"
	"corbalc/internal/orb"
	"corbalc/internal/xmldesc"
)

func TestResourceServantOverCORBA(t *testing.T) {
	leak.Check(t)
	n := newTestNode(t, "rs", ServerProfile())
	rm := n.ORB().NewRef(n.ResourcesIOR())

	var r *Report
	if err := rm.Invoke("report", nil, func(d *cdr.Decoder) error {
		var e error
		r, e = UnmarshalReport(d)
		return e
	}); err != nil {
		t.Fatal(err)
	}
	if r.Node != "rs" || r.Capability != CapServer {
		t.Fatalf("report = %+v", r)
	}
	if r.MemoryFreeMB() != r.MemoryMB {
		t.Fatalf("free memory = %d", r.MemoryFreeMB())
	}

	canHost := func(cpu float64, mem uint32, bw float64) bool {
		var ok bool
		if err := rm.Invoke("can_host",
			func(e *cdr.Encoder) {
				e.WriteDouble(cpu)
				e.WriteULong(mem)
				e.WriteDouble(bw)
			},
			func(d *cdr.Decoder) error {
				var e error
				ok, e = d.ReadBool()
				return e
			}); err != nil {
			t.Fatal(err)
		}
		return ok
	}
	if !canHost(1, 128, 10) {
		t.Error("idle server refused a small envelope")
	}
	if canHost(100, 0, 0) {
		t.Error("server accepted 100 CPUs")
	}
	if canHost(0, 1<<20, 0) {
		t.Error("server accepted a terabyte")
	}
	if canHost(0, 0, 1e6) {
		t.Error("server accepted a terabit link demand")
	}
	// Background load shrinks admission capacity.
	n.Resources().SetBackgroundLoad(15.5)
	if canHost(1, 0, 0) {
		t.Error("loaded server accepted another CPU")
	}
}

func TestRegistryServantDigestFactoryAndInstances(t *testing.T) {
	leak.Check(t)
	n := newTestNode(t, "rg", WorkstationProfile())
	reg := n.ORB().NewRef(n.RegistryIOR())

	readDigest := func() uint64 {
		var d64 uint64
		if err := reg.Invoke("digest", nil, func(d *cdr.Decoder) error {
			var e error
			d64, e = d.ReadULongLong()
			return e
		}); err != nil {
			t.Fatal(err)
		}
		return d64
	}
	before := readDigest()
	id, err := n.InstallComponent(buildAdder(t, "adder", "1.0.0"))
	if err != nil {
		t.Fatal(err)
	}
	if readDigest() <= before {
		t.Fatal("digest did not advance on install")
	}

	// factory via CORBA, then create an instance through it.
	var factory *ior.IOR
	if err := reg.Invoke("factory",
		func(e *cdr.Encoder) { e.WriteString(id.String()) },
		func(d *cdr.Decoder) error { var e error; factory, e = ior.Unmarshal(d); return e }); err != nil {
		t.Fatal(err)
	}
	if err := n.ORB().NewRef(factory).Invoke("create",
		func(e *cdr.Encoder) { e.WriteString("f1") },
		func(d *cdr.Decoder) error { _, e := ior.Unmarshal(d); return e }); err != nil {
		t.Fatal(err)
	}

	// list_instances + instance_ports reflect it.
	var pairs [][2]string
	if err := reg.Invoke("list_instances", nil, func(d *cdr.Decoder) error {
		cnt, err := d.ReadULong()
		if err != nil {
			return err
		}
		for i := uint32(0); i < cnt; i++ {
			comp, err := d.ReadString()
			if err != nil {
				return err
			}
			inst, err := d.ReadString()
			if err != nil {
				return err
			}
			pairs = append(pairs, [2]string{comp, inst})
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0][0] != id.String() || pairs[0][1] != "f1" {
		t.Fatalf("instances = %v", pairs)
	}
	found := 0
	if err := reg.Invoke("instance_ports",
		func(e *cdr.Encoder) { e.WriteString(id.String()); e.WriteString("f1") },
		func(d *cdr.Decoder) error {
			cnt, err := d.ReadULong()
			if err != nil {
				return err
			}
			for i := uint32(0); i < cnt; i++ {
				if _, err := d.ReadString(); err != nil { // name
					return err
				}
				if _, err := d.ReadString(); err != nil { // kind
					return err
				}
				if _, err := d.ReadString(); err != nil { // repoid
					return err
				}
				if _, err := d.ReadBool(); err != nil { // connected
					return err
				}
				found++
			}
			return nil
		}); err != nil {
		t.Fatal(err)
	}
	if found != 1 {
		t.Fatalf("ports = %d", found)
	}
	// Unknown instance is a user exception.
	err = reg.Invoke("instance_ports",
		func(e *cdr.Encoder) { e.WriteString(id.String()); e.WriteString("ghost") }, nil)
	if !orb.IsUserException(err, "IDL:corbalc/ComponentRegistry/NoSuchComponent:1.0") {
		t.Fatalf("err = %v", err)
	}
}

func TestAcceptorUninstallAndEventServiceOps(t *testing.T) {
	leak.Check(t)
	n := newTestNode(t, "au", WorkstationProfile())
	acc := n.ORB().NewRef(n.AcceptorIOR())
	id, err := n.InstallComponent(buildAdder(t, "adder", "1.0.0"))
	if err != nil {
		t.Fatal(err)
	}
	var evRef *ior.IOR
	if err := acc.Invoke("event_service", nil, func(d *cdr.Decoder) error {
		var e error
		evRef, e = ior.Unmarshal(d)
		return e
	}); err != nil {
		t.Fatal(err)
	}
	if evRef.TypeID != EventServiceRepoID {
		t.Fatalf("event service type = %q", evRef.TypeID)
	}
	if err := acc.Invoke("uninstall", func(e *cdr.Encoder) { e.WriteString(id.String()) }, nil); err != nil {
		t.Fatal(err)
	}
	if n.Repo().Len() != 0 {
		t.Fatal("uninstall did not empty the repo")
	}
	err = acc.Invoke("uninstall", func(e *cdr.Encoder) { e.WriteString(id.String()) }, nil)
	if !orb.IsUserException(err, "IDL:corbalc/ComponentRegistry/NoSuchComponent:1.0") {
		t.Fatalf("double uninstall err = %v", err)
	}
}

func TestEventServicePushAndBridge(t *testing.T) {
	leak.Check(t)
	a, b, _ := twoNodesOverSimnet(t)

	// Local subscriber on b counts arrivals.
	var got atomic.Int64
	cancel := b.Hub().Channel("IDL:test/E:1.0").Subscribe("t", func(ev events.Event) {
		if ev.Source == "tester" {
			got.Add(1)
		}
	})
	defer cancel()

	// Push directly into b's hub over CORBA.
	evB := a.ORB().NewRef(b.EventsIOR())
	if err := evB.Invoke("push", func(e *cdr.Encoder) {
		e.WriteString("IDL:test/E:1.0")
		e.WriteString("tester")
		e.WriteOctetSeq([]byte("x"))
	}, nil); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &got, 1)

	// Bridge a's channel to b: events published on a flow to b.
	evA := a.ORB().NewRef(a.EventsIOR())
	var bridgeID string
	if err := evA.Invoke("bridge", func(e *cdr.Encoder) {
		e.WriteString("IDL:test/E:1.0")
		b.EventsIOR().Marshal(e)
	}, func(d *cdr.Decoder) error {
		var e error
		bridgeID, e = d.ReadString()
		return e
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Hub().Channel("IDL:test/E:1.0").Push(events.Event{Source: "tester"}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &got, 2)

	// Unbridge stops the flow; unknown bridge id is a user exception.
	if err := evA.Invoke("unbridge", func(e *cdr.Encoder) { e.WriteString(bridgeID) }, nil); err != nil {
		t.Fatal(err)
	}
	_ = a.Hub().Channel("IDL:test/E:1.0").Push(events.Event{Source: "tester"})
	time.Sleep(30 * time.Millisecond)
	if got.Load() != 2 {
		t.Fatalf("events after unbridge = %d", got.Load())
	}
	err := evA.Invoke("unbridge", func(e *cdr.Encoder) { e.WriteString("bridge-999") }, nil)
	if !orb.IsUserException(err, "IDL:corbalc/EventService/NoSuchBridge:1.0") {
		t.Fatalf("err = %v", err)
	}
}

func waitCount(t *testing.T, n *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("count = %d, want %d", n.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTrustedKeysGateInstalls(t *testing.T) {
	leak.Check(t)
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	n := New(Config{Name: "secure", Impls: testImpls(), Profile: WorkstationProfile(),
		TrustedKeys: []ed25519.PublicKey{pub}})
	t.Cleanup(n.Close)

	// Unsigned package refused.
	unsigned := buildAdder(t, "adder", "1.0.0")
	if _, err := n.Install(unsigned.Package().Bytes()); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("unsigned install err = %v", err)
	}

	// Properly signed package accepted: rebuild the same spec signed.
	spec := adderSpec("adder", "1.0.0")
	pkg, err := spec.BuildPackage()
	if err != nil {
		t.Fatal(err)
	}
	// Re-sign by rebuilding through the cpkg builder.
	b := &cpkg.Builder{
		SoftPkg:       pkg.SoftPkg(),
		ComponentType: pkg.ComponentType(),
		IDL:           map[string]string{},
		Binaries:      map[string][]byte{},
	}
	for _, im := range pkg.SoftPkg().Implementations {
		data, err := pkg.File(im.Code.File.Name)
		if err != nil {
			t.Fatal(err)
		}
		b.Binaries[im.Code.File.Name] = data
	}
	b.Sign(priv)
	signedBytes, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Install(signedBytes); err != nil {
		t.Fatalf("signed install: %v", err)
	}

	// Signed by the wrong key: refused.
	_, otherPriv, _ := ed25519.GenerateKey(rand.Reader)
	b.Sign(otherPriv)
	wrongBytes, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := component.LoadBytes(wrongBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Different version so the repo does not dedupe.
	_ = wrong
	n2 := New(Config{Name: "secure2", Impls: testImpls(), Profile: WorkstationProfile(),
		TrustedKeys: []ed25519.PublicKey{pub}})
	t.Cleanup(n2.Close)
	if _, err := n2.Install(wrongBytes); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("wrong-key install err = %v", err)
	}
}

func TestNodeAccessors(t *testing.T) {
	leak.Check(t)
	n := newTestNode(t, "acc", PDAProfile())
	if n.Name() != "acc" || n.NodeName() != "acc" {
		t.Fatal("names")
	}
	if n.Hub() == nil || n.Resources() == nil {
		t.Fatal("nil services")
	}
	if n.Resources().Profile().Capability != CapPDA {
		t.Fatal("profile")
	}
	var fired atomic.Int64
	n.SetChangeListener(func() { fired.Add(1) })
	n.Touch()
	if fired.Load() != 1 {
		t.Fatalf("listener fired %d times", fired.Load())
	}
	n.SetChangeListener(nil)
	n.Touch()
	if fired.Load() != 1 {
		t.Fatal("listener fired after removal")
	}
	if len(n.Instances()) != 0 {
		t.Fatal("instances on fresh node")
	}
	// SetResolver is honoured.
	n.SetResolver(resolverFunc(func(p xmldesc.Port) (*ior.IOR, error) {
		return ior.New(p.RepoID, "h", 1, []byte("k")), nil
	}))
	ref, err := n.ResolveDependency(context.Background(), xmldesc.Port{RepoID: "IDL:x:1.0"})
	if err != nil || ref.TypeID != "IDL:x:1.0" {
		t.Fatalf("resolver: %v, %v", ref, err)
	}
}

type resolverFunc func(p xmldesc.Port) (*ior.IOR, error)

func (f resolverFunc) Resolve(_ context.Context, p xmldesc.Port) (*ior.IOR, error) { return f(p) }

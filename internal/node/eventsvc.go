package node

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/events"
	"corbalc/internal/ior"
	"corbalc/internal/orb"
)

// KeyEvents is the event service's object key.
const KeyEvents = "node/events"

// EventServiceRepoID is the CORBA interface ID of the event service.
const EventServiceRepoID = "IDL:corbalc/EventService:1.0"

// EventsIOR returns the node's event service reference.
func (n *Node) EventsIOR() *ior.IOR { return n.orb.NewIOR(EventServiceRepoID, KeyEvents) }

// eventService makes a node's event hub reachable over CORBA and
// supports cross-node event links: a bridge subscribes to a local
// channel and forwards each event to a remote node's event service with
// a oneway push, which is how assemblies connect an emits port on one
// node to a consumes port on another (the push event channels of
// §2.1.2, stretched across the network).
type eventService struct {
	n       *Node
	mu      sync.Mutex
	bridges map[string]func() // bridge id -> cancel
	seq     atomic.Uint64
}

func newEventService(n *Node) *eventService {
	return &eventService{n: n, bridges: make(map[string]func())}
}

func (s *eventService) RepositoryID() string { return EventServiceRepoID }

func (s *eventService) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "push":
		// (type id, source, data): inject an event into the local hub.
		typeID, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		source, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		data, err := args.ReadOctetSeq()
		if err != nil {
			return orb.Marshal()
		}
		_ = s.n.hub.Channel(typeID).Push(events.Event{Source: source, Data: data})
		return nil

	case "bridge":
		// (type id, target event service IOR) -> bridge id. Events of
		// this kind published here are forwarded to the target node.
		typeID, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		target, err := ior.Unmarshal(args)
		if err != nil {
			return orb.Marshal()
		}
		id := s.addBridge(typeID, target)
		reply.WriteString(id)
		return nil

	case "unbridge":
		id, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		if !s.removeBridge(id) {
			return &orb.UserException{
				ID:      "IDL:corbalc/EventService/NoSuchBridge:1.0",
				Payload: func(e *cdr.Encoder) { e.WriteString(id) },
			}
		}
		return nil
	}
	return orb.BadOperation()
}

func (s *eventService) addBridge(typeID string, target *ior.IOR) string {
	id := fmt.Sprintf("bridge-%d", s.seq.Add(1))
	targetRef := s.n.orb.NewRef(target)
	cancel := s.n.hub.Channel(typeID).Subscribe("bridge/"+id, func(ev events.Event) {
		// Bound each forward by the node's lifetime plus a short push
		// deadline: a wedged remote must not stall the hub forever.
		ctx, done := context.WithTimeout(s.n.ctx, 5*time.Second)
		defer done()
		_ = targetRef.InvokeOnewayContext(ctx, "push", func(e *cdr.Encoder) {
			e.WriteString(ev.TypeID)
			e.WriteString(ev.Source)
			e.WriteOctetSeq(ev.Data)
		})
	})
	s.mu.Lock()
	s.bridges[id] = cancel
	s.mu.Unlock()
	return id
}

func (s *eventService) removeBridge(id string) bool {
	s.mu.Lock()
	cancel, ok := s.bridges[id]
	delete(s.bridges, id)
	s.mu.Unlock()
	if ok {
		cancel()
	}
	return ok
}

func (s *eventService) close() {
	s.mu.Lock()
	bridges := s.bridges
	s.bridges = make(map[string]func())
	s.mu.Unlock()
	for _, cancel := range bridges {
		cancel()
	}
}

package node

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/events"
	"corbalc/internal/ior"
	"corbalc/internal/orb"
)

// KeyEvents is the event service's object key.
const KeyEvents = "node/events"

// EventServiceRepoID is the CORBA interface ID of the event service.
const EventServiceRepoID = "IDL:corbalc/EventService:1.0"

// EventsIOR returns the node's event service reference.
func (n *Node) EventsIOR() *ior.IOR { return n.orb.NewIOR(EventServiceRepoID, KeyEvents) }

// eventService makes a node's event hub reachable over CORBA and
// supports cross-node event links: a bridge subscribes to a local
// channel and forwards each event to a remote node's event service with
// a oneway push, which is how assemblies connect an emits port on one
// node to a consumes port on another (the push event channels of
// §2.1.2, stretched across the network). A subscription is the
// high-fan-out variant of a bridge: the forwarder drains whole queue
// batches and ships them in one SyncNone push_batch frame, so a remote
// subscriber costs one wire message per drained batch instead of one
// per event.
type eventService struct {
	n       *Node
	mu      sync.Mutex
	bridges map[string]func() // bridge id -> cancel
	subs    map[string]func() // subscription id -> cancel
	seq     atomic.Uint64
}

func newEventService(n *Node) *eventService {
	return &eventService{
		n:       n,
		bridges: make(map[string]func()),
		subs:    make(map[string]func()),
	}
}

func (s *eventService) RepositoryID() string { return EventServiceRepoID }

func (s *eventService) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "push":
		// (type id, source, data): inject an event into the local hub.
		typeID, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		source, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		data, err := args.ReadOctetSeq()
		if err != nil {
			return orb.Marshal()
		}
		_ = s.n.hub.Channel(typeID).Push(events.Event{Source: source, Data: data})
		return nil

	case "bridge":
		// (type id, target event service IOR) -> bridge id. Events of
		// this kind published here are forwarded to the target node.
		typeID, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		target, err := ior.Unmarshal(args)
		if err != nil {
			return orb.Marshal()
		}
		id := s.addBridge(typeID, target)
		reply.WriteString(id)
		return nil

	case "unbridge":
		id, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		if !s.removeBridge(id) {
			return &orb.UserException{
				ID:      "IDL:corbalc/EventService/NoSuchBridge:1.0",
				Payload: func(e *cdr.Encoder) { e.WriteString(id) },
			}
		}
		return nil

	case "push_batch":
		// (type id, count, count x (source, data)): inject a run of
		// events of one kind — the batched counterpart of push, sent by
		// remote subscriptions.
		typeID, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		n, err := args.ReadULong()
		if err != nil {
			return orb.Marshal()
		}
		ch := s.n.hub.Channel(typeID)
		for i := uint32(0); i < n; i++ {
			source, err := args.ReadString()
			if err != nil {
				return orb.Marshal()
			}
			data, err := args.ReadOctetSeq()
			if err != nil {
				return orb.Marshal()
			}
			_ = ch.Push(events.Event{Source: source, Data: data})
		}
		return nil

	case "subscribe":
		// (type id, target event service IOR) -> subscription id. Like
		// bridge, but the forwarder ships drained batches as single
		// SyncNone push_batch frames instead of one push per event.
		typeID, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		target, err := ior.Unmarshal(args)
		if err != nil {
			return orb.Marshal()
		}
		id := s.addSubscription(typeID, target)
		reply.WriteString(id)
		return nil

	case "unsubscribe":
		id, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		if !s.removeSubscription(id) {
			return &orb.UserException{
				ID:      "IDL:corbalc/EventService/NoSuchSubscription:1.0",
				Payload: func(e *cdr.Encoder) { e.WriteString(id) },
			}
		}
		return nil

	case "events_stats":
		// () -> Blob: per-channel counters of the local hub, for the
		// admin tool's events view.
		stats := s.n.hub.ChannelStats()
		reply.WriteULong(uint32(len(stats)))
		for _, st := range stats {
			reply.WriteString(st.TypeID)
			reply.WriteULongLong(st.Published)
			reply.WriteULongLong(st.Delivered)
			reply.WriteULongLong(st.Dropped)
			reply.WriteULong(uint32(st.Subscribers))
		}
		return nil
	}
	return orb.BadOperation()
}

func (s *eventService) addBridge(typeID string, target *ior.IOR) string {
	id := fmt.Sprintf("bridge-%d", s.seq.Add(1))
	targetRef := s.n.orb.NewRef(target)
	cancel := s.n.hub.Channel(typeID).Subscribe("bridge/"+id, func(ev events.Event) {
		// Bound each forward by the node's lifetime plus a short push
		// deadline: a wedged remote must not stall the hub forever.
		ctx, done := context.WithTimeout(s.n.ctx, 5*time.Second)
		defer done()
		_ = targetRef.InvokeOnewayContext(ctx, "push", func(e *cdr.Encoder) {
			e.WriteString(ev.TypeID)
			e.WriteString(ev.Source)
			e.WriteOctetSeq(ev.Data)
		})
	})
	s.mu.Lock()
	s.bridges[id] = cancel
	s.mu.Unlock()
	return id
}

// addSubscription wires a batch forwarder: every queue drain becomes
// one push_batch oneway under SyncNone, so fan-out to a remote
// subscriber rides the write coalescer without a reply slot per event.
func (s *eventService) addSubscription(typeID string, target *ior.IOR) string {
	id := fmt.Sprintf("sub-%d", s.seq.Add(1))
	targetRef := s.n.orb.NewRef(target)
	cancel := s.n.hub.Channel(typeID).SubscribeBatch("sub/"+id, func(batch []events.Event) {
		ctx, done := context.WithTimeout(s.n.ctx, 5*time.Second)
		defer done()
		_ = targetRef.InvokeOnewayScoped(ctx, "push_batch", func(e *cdr.Encoder) {
			e.WriteString(typeID)
			e.WriteULong(uint32(len(batch)))
			for _, ev := range batch {
				e.WriteString(ev.Source)
				e.WriteOctetSeq(ev.Data)
			}
		}, orb.SyncNone)
	})
	s.mu.Lock()
	s.subs[id] = cancel
	s.mu.Unlock()
	return id
}

func (s *eventService) removeSubscription(id string) bool {
	s.mu.Lock()
	cancel, ok := s.subs[id]
	delete(s.subs, id)
	s.mu.Unlock()
	if ok {
		cancel()
	}
	return ok
}

func (s *eventService) removeBridge(id string) bool {
	s.mu.Lock()
	cancel, ok := s.bridges[id]
	delete(s.bridges, id)
	s.mu.Unlock()
	if ok {
		cancel()
	}
	return ok
}

func (s *eventService) close() {
	s.mu.Lock()
	bridges := s.bridges
	subs := s.subs
	s.bridges = make(map[string]func())
	s.subs = make(map[string]func())
	s.mu.Unlock()
	for _, cancel := range bridges {
		cancel()
	}
	for _, cancel := range subs {
		cancel()
	}
}

package node

// Tests for the remote-subscriber half of the event service: batched
// push_batch forwarding, subscription lifecycle, and the events_stats
// counters the admin tool reads.

import (
	"sync/atomic"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/events"
	"corbalc/internal/leak"
	"corbalc/internal/orb"
)

func TestEventServiceSubscribeForwardsBatches(t *testing.T) {
	leak.Check(t)
	a, b, _ := twoNodesOverSimnet(t)

	var got atomic.Int64
	cancel := b.Hub().Channel("IDL:test/E:1.0").Subscribe("t", func(ev events.Event) {
		if ev.Source == "src" {
			got.Add(1)
		}
	})
	defer cancel()

	// Subscribe b's event service to a's channel: batches of events
	// published on a arrive on b as push_batch oneways.
	evA := a.ORB().NewRef(a.EventsIOR())
	var subID string
	if err := evA.Invoke("subscribe", func(e *cdr.Encoder) {
		e.WriteString("IDL:test/E:1.0")
		b.EventsIOR().Marshal(e)
	}, func(d *cdr.Decoder) error {
		var e error
		subID, e = d.ReadString()
		return e
	}); err != nil {
		t.Fatal(err)
	}

	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Hub().Channel("IDL:test/E:1.0").Push(events.Event{Source: "src", Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, &got, n)

	// Unsubscribe stops the flow.
	if err := evA.Invoke("unsubscribe", func(e *cdr.Encoder) { e.WriteString(subID) }, nil); err != nil {
		t.Fatal(err)
	}
	_ = a.Hub().Channel("IDL:test/E:1.0").Push(events.Event{Source: "src"})
	time.Sleep(30 * time.Millisecond)
	if got.Load() != n {
		t.Fatalf("events after unsubscribe = %d, want %d", got.Load(), n)
	}
	err := evA.Invoke("unsubscribe", func(e *cdr.Encoder) { e.WriteString("sub-999") }, nil)
	if !orb.IsUserException(err, "IDL:corbalc/EventService/NoSuchSubscription:1.0") {
		t.Fatalf("err = %v", err)
	}
}

func TestEventServicePushBatchOp(t *testing.T) {
	leak.Check(t)
	n := newTestNode(t, "pb", WorkstationProfile())

	var got atomic.Int64
	cancel := n.Hub().Channel("IDL:test/E:1.0").Subscribe("t", func(ev events.Event) { got.Add(1) })
	defer cancel()

	ev := n.ORB().NewRef(n.EventsIOR())
	if err := ev.Invoke("push_batch", func(e *cdr.Encoder) {
		e.WriteString("IDL:test/E:1.0")
		e.WriteULong(3)
		for i := 0; i < 3; i++ {
			e.WriteString("src")
			e.WriteOctetSeq([]byte{byte(i)})
		}
	}, nil); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &got, 3)
}

func TestEventServiceStatsOp(t *testing.T) {
	leak.Check(t)
	n := newTestNode(t, "st", WorkstationProfile())

	ch := n.Hub().Channel("IDL:test/E:1.0")
	var got atomic.Int64
	cancel := ch.Subscribe("t", func(events.Event) { got.Add(1) })
	defer cancel()
	for i := 0; i < 4; i++ {
		if err := ch.Push(events.Event{}); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, &got, 4)

	type row struct {
		typeID         string
		pub, del, drop uint64
		subs           uint32
	}
	var rows []row
	ev := n.ORB().NewRef(n.EventsIOR())
	if err := ev.Invoke("events_stats", nil, func(d *cdr.Decoder) error {
		cnt, err := d.ReadULong()
		if err != nil {
			return err
		}
		for i := uint32(0); i < cnt; i++ {
			var r row
			if r.typeID, err = d.ReadString(); err != nil {
				return err
			}
			if r.pub, err = d.ReadULongLong(); err != nil {
				return err
			}
			if r.del, err = d.ReadULongLong(); err != nil {
				return err
			}
			if r.drop, err = d.ReadULongLong(); err != nil {
				return err
			}
			if r.subs, err = d.ReadULong(); err != nil {
				return err
			}
			rows = append(rows, r)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r.typeID == "IDL:test/E:1.0" {
			found = true
			if r.pub != 4 || r.del != 4 || r.subs != 1 {
				t.Fatalf("stats row = %+v", r)
			}
		}
	}
	if !found {
		t.Fatalf("events_stats missing channel row: %+v", rows)
	}
}

package node

import (
	"context"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/container"
	"corbalc/internal/orb"
)

// registryServant exposes the Component Registry over CORBA (Fig. 1:
// "the Component Registry interface reflects the internal Component
// Repository and helps in performing distributed component queries").
type registryServant struct{ n *Node }

func (s *registryServant) RepositoryID() string { return ComponentRegistryRepoID }

// Invoke implements orb.Servant for callers without a context.
func (s *registryServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	return s.InvokeContext(context.Background(), op, args, reply)
}

// InvokeContext implements orb.ContextServant.
func (s *registryServant) InvokeContext(ctx context.Context, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	_ = ctx // registry operations are all node-local today
	n := s.n
	switch op {
	case "list_components":
		ids := n.repo.List()
		names := make([]string, len(ids))
		for i, id := range ids {
			names[i] = id.String()
		}
		reply.WriteStringSeq(names)
		return nil

	case "query":
		// (port_repoid string, version_req string) -> OfferSeq
		portID, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		verReq, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		offers, err := n.LocalQuery(portID, verReq)
		if err != nil {
			return &orb.UserException{
				ID:      "IDL:corbalc/ComponentRegistry/BadQuery:1.0",
				Payload: func(e *cdr.Encoder) { e.WriteString(err.Error()) },
			}
		}
		MarshalOffers(reply, offers)
		return nil

	case "get_package":
		// (component id string) -> octetseq: extraction of a component
		// in binary form, for fetch-and-install on another node.
		idStr, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		id, err := component.ParseID(idStr)
		if err != nil {
			return noComponentExc(idStr)
		}
		c, ok := n.repo.Get(id)
		if !ok {
			return noComponentExc(idStr)
		}
		if !c.Movable() {
			return &orb.UserException{
				ID:      "IDL:corbalc/ComponentRegistry/NotMovable:1.0",
				Payload: func(e *cdr.Encoder) { e.WriteString(idStr) },
			}
		}
		reply.WriteOctetSeq(c.Package().Bytes())
		return nil

	case "list_instances":
		// -> sequence of (component id, instance name)
		insts := n.Instances()
		total := 0
		for _, list := range insts {
			total += len(list)
		}
		reply.WriteULong(uint32(total))
		for id, list := range insts {
			for _, mi := range list {
				reply.WriteString(id.String())
				reply.WriteString(mi.Name())
			}
		}
		return nil

	case "instance_ports":
		// (component id, instance name) -> the assembly view: sequence
		// of (port, kind, repoid, connected) — §2.4.2 (c) "how those
		// instances are connected via ports (assemblies)".
		idStr, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		instName, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		id, err := component.ParseID(idStr)
		if err != nil {
			return noComponentExc(idStr)
		}
		n.mu.Lock()
		ct := n.containers[id]
		n.mu.Unlock()
		if ct == nil {
			return noComponentExc(idStr)
		}
		mi, ok := ct.Instance(instName)
		if !ok {
			return noComponentExc(idStr + "/" + instName)
		}
		states := mi.Ports().List()
		reply.WriteULong(uint32(len(states)))
		for _, st := range states {
			reply.WriteString(st.Desc.Name)
			reply.WriteString(string(st.Desc.Kind))
			reply.WriteString(st.Desc.RepoID)
			reply.WriteBool(st.Connected)
		}
		return nil

	case "digest":
		reply.WriteULongLong(n.Digest())
		return nil

	case "factory":
		// (component id) -> factory reference
		idStr, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		id, err := component.ParseID(idStr)
		if err != nil {
			return noComponentExc(idStr)
		}
		ct, err := n.ContainerFor(id)
		if err != nil {
			return noComponentExc(idStr)
		}
		ct.FactoryIOR().Marshal(reply)
		return nil
	}
	return orb.BadOperation()
}

func noComponentExc(id string) error {
	return &orb.UserException{
		ID:      "IDL:corbalc/ComponentRegistry/NoSuchComponent:1.0",
		Payload: func(e *cdr.Encoder) { e.WriteString(id) },
	}
}

// acceptorServant exposes the Component Acceptor over CORBA (Fig. 1:
// "hooks for accepting new components at run-time for local installation
// in the local Component Repository, instantiation and running").
type acceptorServant struct{ n *Node }

func (s *acceptorServant) RepositoryID() string { return ComponentAcceptorRepoID }

// Invoke implements orb.Servant for callers without a context.
func (s *acceptorServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	return s.InvokeContext(context.Background(), op, args, reply)
}

// InvokeContext implements orb.ContextServant: instantiation and port
// obtainment resolve dependencies network-wide under the caller's
// context, so a client deadline bounds the entire resolution fan-out.
func (s *acceptorServant) InvokeContext(ctx context.Context, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	n := s.n
	switch op {
	case "install":
		// (package octetseq) -> component id string
		data, err := args.ReadOctetSeq()
		if err != nil {
			return orb.Marshal()
		}
		id, err := n.Install(data)
		if err != nil {
			return installExc(err)
		}
		reply.WriteString(id.String())
		return nil

	case "uninstall":
		idStr, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		id, err := component.ParseID(idStr)
		if err != nil {
			return noComponentExc(idStr)
		}
		if err := n.Uninstall(id); err != nil {
			return noComponentExc(idStr)
		}
		return nil

	case "instantiate":
		// (component id, instance name) -> instance equivalent ref
		idStr, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		instName, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		id, err := component.ParseID(idStr)
		if err != nil {
			return noComponentExc(idStr)
		}
		mi, err := n.Instantiate(ctx, id, instName)
		if err != nil {
			return installExc(err)
		}
		mi.EquivalentIOR().Marshal(reply)
		return nil

	case "provide":
		// (component id, instance name, port) -> provided port ref;
		// one-call convenience for remote clients.
		idStr, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		instName, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		port, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		id, err := component.ParseID(idStr)
		if err != nil {
			return noComponentExc(idStr)
		}
		n.mu.Lock()
		ct := n.containers[id]
		n.mu.Unlock()
		if ct == nil {
			return noComponentExc(idStr)
		}
		mi, ok := ct.Instance(instName)
		if !ok {
			return noComponentExc(idStr + "/" + instName)
		}
		ref, err := mi.PortIOR(port)
		if err != nil {
			return installExc(err)
		}
		ref.Marshal(reply)
		return nil

	case "obtain":
		// (component id, port repoid) -> provided port ref, reusing a
		// running instance or creating one. The network resolver's
		// workhorse.
		idStr, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		portRepoID, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		id, err := component.ParseID(idStr)
		if err != nil {
			return noComponentExc(idStr)
		}
		ref, err := n.ObtainPort(ctx, id, portRepoID)
		if err != nil {
			return installExc(err)
		}
		ref.Marshal(reply)
		return nil

	case "event_service":
		// -> the node's event service reference (for cross-node event
		// channel bridging).
		n.EventsIOR().Marshal(reply)
		return nil

	case "yield_instance":
		// (component id, instance) -> capsule bytes; the sending half of
		// migration: the instance is passivated, captured and removed.
		idStr, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		instName, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		id, err := component.ParseID(idStr)
		if err != nil {
			return noComponentExc(idStr)
		}
		n.mu.Lock()
		ct := n.containers[id]
		n.mu.Unlock()
		if ct == nil {
			return noComponentExc(idStr)
		}
		capsule, err := ct.Migrate(instName)
		if err != nil {
			return installExc(err)
		}
		n.bumpDigest()
		reply.WriteOctetSeq(capsule.Bytes())
		return nil

	case "receive_capsule":
		// (component id, capsule bytes) -> instance equivalent ref; the
		// receiving half of migration.
		idStr, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		raw, err := args.ReadOctetSeq()
		if err != nil {
			return orb.Marshal()
		}
		id, err := component.ParseID(idStr)
		if err != nil {
			return noComponentExc(idStr)
		}
		ct, err := n.ContainerFor(id)
		if err != nil {
			return noComponentExc(idStr)
		}
		capsule, err := container.DecodeCapsuleBytes(raw)
		if err != nil {
			return installExc(err)
		}
		mi, err := ct.Restore(capsule)
		if err != nil {
			return installExc(err)
		}
		n.bumpDigest()
		mi.EquivalentIOR().Marshal(reply)
		return nil
	}
	return orb.BadOperation()
}

func installExc(err error) error {
	return &orb.UserException{
		ID:      "IDL:corbalc/ComponentAcceptor/Rejected:1.0",
		Payload: func(e *cdr.Encoder) { e.WriteString(err.Error()) },
	}
}

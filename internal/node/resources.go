package node

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/orb"
	"corbalc/internal/xmldesc"
)

// Capability classifies a node's hardware class (paper requirement 8:
// "the resource utilization logic must be intelligent enough to
// accommodate tiny devices such as PDAs as well as high-end servers").
type Capability string

// Capability classes.
const (
	CapServer      Capability = "server"
	CapWorkstation Capability = "workstation"
	CapPDA         Capability = "pda"
)

// Profile is a node's static hardware description.
type Profile struct {
	OS            string
	Arch          string
	ORB           string
	Capability    Capability
	CPUCores      float64 // schedulable CPU capacity
	MemoryMB      int
	BandwidthMbps float64
	// Fixed marks nodes that never accept component installation
	// (thin clients use every component remotely).
	Fixed bool
}

// Predefined profiles for the three capability classes.
func ServerProfile() Profile {
	return Profile{OS: "linux", Arch: "amd64", ORB: "corbalc", Capability: CapServer,
		CPUCores: 16, MemoryMB: 32768, BandwidthMbps: 1000}
}

func WorkstationProfile() Profile {
	return Profile{OS: "linux", Arch: "amd64", ORB: "corbalc", Capability: CapWorkstation,
		CPUCores: 4, MemoryMB: 4096, BandwidthMbps: 100}
}

func PDAProfile() Profile {
	return Profile{OS: "palmos", Arch: "arm", ORB: "corbalc", Capability: CapPDA,
		CPUCores: 0.25, MemoryMB: 16, BandwidthMbps: 1, Fixed: true}
}

// Report is the reflective snapshot of a node's resources: the static
// characteristics plus the dynamic utilisation the Resource Manager
// interface exposes (Fig. 1). It is the unit of soft-consistency
// updates flowing to Meta-Resource Managers.
type Report struct {
	Node          string
	OS            string
	Arch          string
	ORB           string
	Capability    Capability
	CPUCores      float64
	CPUUsed       float64
	MemoryMB      uint32
	MemoryUsedMB  uint32
	BandwidthMbps float64
	Instances     uint32
	// Digest is the node's reflection epoch: it advances whenever the
	// installed-component set or the instance population changes, so a
	// registry can cheaply detect staleness.
	Digest uint64
	// OffersEpoch advances when the installed-component set (and hence
	// the offer list) changes — but not on instance churn, unlike Digest.
	// Delta-gossip updates ship the offer list only when a destination's
	// last-seen OffersEpoch is stale.
	OffersEpoch uint64
	// UnixMillis is the local timestamp of the snapshot.
	UnixMillis int64
}

// CPUFree returns the unreserved CPU capacity.
func (r *Report) CPUFree() float64 { return r.CPUCores - r.CPUUsed }

// MemoryFreeMB returns the unreserved memory.
func (r *Report) MemoryFreeMB() uint32 {
	if r.MemoryUsedMB > r.MemoryMB {
		return 0
	}
	return r.MemoryMB - r.MemoryUsedMB
}

// LoadFraction is used CPU as a fraction of capacity, in [0,1].
func (r *Report) LoadFraction() float64 {
	if r.CPUCores <= 0 {
		return 1
	}
	f := r.CPUUsed / r.CPUCores
	if f > 1 {
		return 1
	}
	return f
}

// Marshal encodes the report.
func (r *Report) Marshal(e *cdr.Encoder) {
	e.WriteString(r.Node)
	e.WriteString(r.OS)
	e.WriteString(r.Arch)
	e.WriteString(r.ORB)
	e.WriteString(string(r.Capability))
	e.WriteDouble(r.CPUCores)
	e.WriteDouble(r.CPUUsed)
	e.WriteULong(r.MemoryMB)
	e.WriteULong(r.MemoryUsedMB)
	e.WriteDouble(r.BandwidthMbps)
	e.WriteULong(r.Instances)
	e.WriteULongLong(r.Digest)
	e.WriteULongLong(r.OffersEpoch)
	e.WriteLongLong(r.UnixMillis)
}

// UnmarshalReport decodes a report.
func UnmarshalReport(d *cdr.Decoder) (*Report, error) {
	r := &Report{}
	var err error
	read := func(f func() error) {
		if err == nil {
			err = f()
		}
	}
	read(func() error { var e error; r.Node, e = d.ReadString(); return e })
	read(func() error { var e error; r.OS, e = d.ReadString(); return e })
	read(func() error { var e error; r.Arch, e = d.ReadString(); return e })
	read(func() error { var e error; r.ORB, e = d.ReadString(); return e })
	read(func() error {
		s, e := d.ReadString()
		r.Capability = Capability(s)
		return e
	})
	read(func() error { var e error; r.CPUCores, e = d.ReadDouble(); return e })
	read(func() error { var e error; r.CPUUsed, e = d.ReadDouble(); return e })
	read(func() error { var e error; r.MemoryMB, e = d.ReadULong(); return e })
	read(func() error { var e error; r.MemoryUsedMB, e = d.ReadULong(); return e })
	read(func() error { var e error; r.BandwidthMbps, e = d.ReadDouble(); return e })
	read(func() error { var e error; r.Instances, e = d.ReadULong(); return e })
	read(func() error { var e error; r.Digest, e = d.ReadULongLong(); return e })
	read(func() error { var e error; r.OffersEpoch, e = d.ReadULongLong(); return e })
	read(func() error { var e error; r.UnixMillis, e = d.ReadLongLong(); return e })
	if err != nil {
		return nil, err
	}
	return r, nil
}

// ErrResources reports a QoS admission failure.
var ErrResources = errors.New("node: insufficient resources")

// Resources is the node's Resource Manager: it reflects the hardware's
// static characteristics, tracks dynamic usage through QoS reservations,
// and answers admission requests (Fig. 1; §2.4.2 "the Resource Manager
// collaborates with the Container in deciding initial placement ...").
type Resources struct {
	profile Profile

	mu        sync.Mutex
	cpuUsed   float64
	memUsedMB int
	instances int
	// extraLoad lets experiments inject background load skew.
	extraCPU float64
}

// NewResources builds a resource manager for a profile.
func NewResources(p Profile) *Resources {
	return &Resources{profile: p}
}

// Profile returns the static description.
func (rm *Resources) Profile() Profile { return rm.profile }

// Admit reserves a QoS envelope, returning a release function.
func (rm *Resources) Admit(q xmldesc.QoS) (func(), error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	cpu := q.CPUMin
	mem := q.MemoryMinMB
	if rm.cpuUsed+rm.extraCPU+cpu > rm.profile.CPUCores {
		return nil, fmt.Errorf("%w: cpu need %.2f, free %.2f", ErrResources,
			cpu, rm.profile.CPUCores-rm.cpuUsed-rm.extraCPU)
	}
	if rm.memUsedMB+mem > rm.profile.MemoryMB {
		return nil, fmt.Errorf("%w: memory need %d MB, free %d MB", ErrResources,
			mem, rm.profile.MemoryMB-rm.memUsedMB)
	}
	if q.BandwidthMin > rm.profile.BandwidthMbps {
		return nil, fmt.Errorf("%w: bandwidth need %.1f Mbps, link %.1f Mbps", ErrResources,
			q.BandwidthMin, rm.profile.BandwidthMbps)
	}
	rm.cpuUsed += cpu
	rm.memUsedMB += mem
	rm.instances++
	var once sync.Once
	return func() {
		once.Do(func() {
			rm.mu.Lock()
			rm.cpuUsed -= cpu
			rm.memUsedMB -= mem
			rm.instances--
			rm.mu.Unlock()
		})
	}, nil
}

// CanHost reports whether the envelope would currently be admitted,
// without reserving.
func (rm *Resources) CanHost(q xmldesc.QoS) bool {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.cpuUsed+rm.extraCPU+q.CPUMin <= rm.profile.CPUCores &&
		rm.memUsedMB+q.MemoryMinMB <= rm.profile.MemoryMB &&
		q.BandwidthMin <= rm.profile.BandwidthMbps
}

// SetBackgroundLoad injects synthetic CPU load (experiments use it to
// skew nodes).
func (rm *Resources) SetBackgroundLoad(cpu float64) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	rm.extraCPU = cpu
}

// Snapshot produces the dynamic report (node name and digest are filled
// by the Node).
func (rm *Resources) Snapshot() Report {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return Report{
		OS:            rm.profile.OS,
		Arch:          rm.profile.Arch,
		ORB:           rm.profile.ORB,
		Capability:    rm.profile.Capability,
		CPUCores:      rm.profile.CPUCores,
		CPUUsed:       rm.cpuUsed + rm.extraCPU,
		MemoryMB:      uint32(rm.profile.MemoryMB),
		MemoryUsedMB:  uint32(rm.memUsedMB),
		BandwidthMbps: rm.profile.BandwidthMbps,
		Instances:     uint32(rm.instances),
		UnixMillis:    time.Now().UnixMilli(),
	}
}

// ResourceManagerRepoID is the CORBA interface ID of the servant.
const ResourceManagerRepoID = "IDL:corbalc/ResourceManager:1.0"

// resourceServant exposes the Resource Manager over CORBA.
type resourceServant struct{ n *Node }

func (s *resourceServant) RepositoryID() string { return ResourceManagerRepoID }

func (s *resourceServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "report":
		r := s.n.Report()
		r.Marshal(reply)
		return nil
	case "can_host":
		// (cpu_min double, mem_min ulong, bw_min double) -> boolean
		cpu, err := args.ReadDouble()
		if err != nil {
			return orb.Marshal()
		}
		mem, err := args.ReadULong()
		if err != nil {
			return orb.Marshal()
		}
		bw, err := args.ReadDouble()
		if err != nil {
			return orb.Marshal()
		}
		reply.WriteBool(s.n.res.CanHost(xmldesc.QoS{CPUMin: cpu, MemoryMinMB: int(mem), BandwidthMin: bw}))
		return nil
	}
	return orb.BadOperation()
}

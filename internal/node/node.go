// Package node implements the CORBA-LC node (paper §2.4.1, Fig. 1):
// the per-host server that maintains the logical network behaviour. A
// Node owns a Component Repository and exposes four services — the
// Resource Manager (static and dynamic host information), the Component
// Registry (the reflective external view of the repository and the
// running instances), the Component Acceptor (hooks for run-time
// installation and instantiation), and, attached by the network layer,
// the Network Cohesion protocol endpoint.
package node

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/container"
	"corbalc/internal/events"
	"corbalc/internal/ior"
	"corbalc/internal/orb"
	"corbalc/internal/version"
	"corbalc/internal/xmldesc"
)

// Object keys of the node services in the node's object adapter.
const (
	KeyResources = "node/resources"
	KeyRegistry  = "node/registry"
	KeyAcceptor  = "node/acceptor"
)

// CORBA interface IDs of the node services.
const (
	ComponentRegistryRepoID = "IDL:corbalc/ComponentRegistry:1.0"
	ComponentAcceptorRepoID = "IDL:corbalc/ComponentAcceptor:1.0"
)

// DependencyResolver finds a provider reference for a required port.
// The node's default resolver only looks locally; the Distributed
// Registry plugs in a network-wide one.
type DependencyResolver interface {
	Resolve(ctx context.Context, p xmldesc.Port) (*ior.IOR, error)
}

// ErrUnresolved reports that no provider could be found for a port.
var ErrUnresolved = errors.New("node: dependency unresolved")

// Config assembles a Node.
type Config struct {
	Name string
	// ORB to serve on; a fresh one is created when nil.
	ORB *orb.ORB
	// Impls resolves implementation entry points (defaults to
	// component.DefaultRegistry).
	Impls *component.Registry
	// Profile describes the hardware (defaults to WorkstationProfile).
	Profile Profile
	// TrustedKeys, when non-empty, makes the acceptor reject packages
	// not signed by one of them.
	TrustedKeys []ed25519.PublicKey
	// EventQueueDepth sizes per-subscriber event queues (default 256).
	EventQueueDepth int
	// EventOverflow selects what Push does on a full subscriber queue
	// (default events.Block: backpressure).
	EventOverflow events.OverflowPolicy
	// EventBatchWindow makes batch subscribers coalesce a trickle of
	// events into window-sized batches (default 0: deliver immediately).
	EventBatchWindow time.Duration
}

// Node is one CORBA-LC node.
type Node struct {
	name string
	orb  *orb.ORB

	// ctx is the node's lifetime context: background work the node
	// starts on its own behalf (event-bridge pushes) derives from it and
	// stops at Close.
	ctx    context.Context
	cancel context.CancelFunc
	hub    *events.Hub
	impls  *component.Registry
	res    *Resources
	repo   *Repository
	keys   []ed25519.PublicKey

	mu         sync.Mutex
	containers map[component.ID]*container.Container
	resolver   DependencyResolver
	eventSvc   *eventService

	digest atomic.Uint64
	// offersEpoch advances only when the installed-component set (the
	// offer list) changes; see Report.OffersEpoch.
	offersEpoch atomic.Uint64
	onChange    atomic.Pointer[func()]
}

// New assembles a node and activates its service servants on the ORB.
func New(cfg Config) *Node {
	if cfg.Name == "" {
		cfg.Name = "node"
	}
	o := cfg.ORB
	if o == nil {
		o = orb.NewORB()
	}
	impls := cfg.Impls
	if impls == nil {
		impls = component.DefaultRegistry
	}
	prof := cfg.Profile
	if prof.CPUCores == 0 && prof.MemoryMB == 0 {
		prof = WorkstationProfile()
	}
	depth := cfg.EventQueueDepth
	if depth <= 0 {
		depth = 256
	}
	n := &Node{
		name: cfg.Name,
		orb:  o,
		hub: events.NewHubConfig(events.Config{
			Depth:       depth,
			Policy:      cfg.EventOverflow,
			BatchWindow: cfg.EventBatchWindow,
		}),
		impls:      impls,
		res:        NewResources(prof),
		repo:       NewRepository(),
		keys:       cfg.TrustedKeys,
		containers: make(map[component.ID]*container.Container),
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	n.resolver = &localResolver{n: n}
	n.eventSvc = newEventService(n)
	o.Activate(KeyResources, &resourceServant{n: n})
	o.Activate(KeyRegistry, &registryServant{n: n})
	o.Activate(KeyAcceptor, &acceptorServant{n: n})
	o.Activate(KeyEvents, n.eventSvc)
	return n
}

// Name implements container.Host.
func (n *Node) Name() string { return n.name }

// NodeName implements container.Host.
func (n *Node) NodeName() string { return n.name }

// ORB implements container.Host.
func (n *Node) ORB() *orb.ORB { return n.orb }

// Hub implements container.Host.
func (n *Node) Hub() *events.Hub { return n.hub }

// Admit implements container.Host.
func (n *Node) Admit(q xmldesc.QoS) (func(), error) {
	release, err := n.res.Admit(q)
	if err != nil {
		return nil, err
	}
	n.bumpDigest()
	return func() { release(); n.bumpDigest() }, nil
}

// ResolveDependency implements container.Host.
func (n *Node) ResolveDependency(ctx context.Context, p xmldesc.Port) (*ior.IOR, error) {
	n.mu.Lock()
	r := n.resolver
	n.mu.Unlock()
	return r.Resolve(ctx, p)
}

// SetResolver plugs in a network-wide dependency resolver (the
// Distributed Registry does this when the node joins a network).
func (n *Node) SetResolver(r DependencyResolver) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.resolver = r
}

// Resources returns the node's resource manager.
func (n *Node) Resources() *Resources { return n.res }

// Repo returns the node's component repository.
func (n *Node) Repo() *Repository { return n.repo }

// Digest returns the node's reflection epoch.
func (n *Node) Digest() uint64 { return n.digest.Load() }

func (n *Node) bumpDigest() {
	n.digest.Add(1)
	if fn := n.onChange.Load(); fn != nil {
		(*fn)()
	}
}

// Touch records a reflective change without altering state — the
// experiment harness uses it to drive configurable change rates through
// the same path real installs and instantiations take.
func (n *Node) Touch() { n.bumpDigest() }

// SetChangeListener registers fn to run after every reflection change
// (install/uninstall, instance creation/destruction, QoS reservations).
// The strong-consistency mode of the Distributed Registry uses it to
// propagate changes immediately.
func (n *Node) SetChangeListener(fn func()) {
	if fn == nil {
		n.onChange.Store(nil)
		return
	}
	n.onChange.Store(&fn)
}

// Report returns the resource snapshot stamped with the node identity.
func (n *Node) Report() Report {
	r := n.res.Snapshot()
	r.Node = n.name
	r.Digest = n.Digest()
	r.OffersEpoch = n.offersEpoch.Load()
	return r
}

// Service IORs.

// ResourcesIOR returns the Resource Manager reference.
func (n *Node) ResourcesIOR() *ior.IOR { return n.orb.NewIOR(ResourceManagerRepoID, KeyResources) }

// RegistryIOR returns the Component Registry reference.
func (n *Node) RegistryIOR() *ior.IOR { return n.orb.NewIOR(ComponentRegistryRepoID, KeyRegistry) }

// AcceptorIOR returns the Component Acceptor reference.
func (n *Node) AcceptorIOR() *ior.IOR { return n.orb.NewIOR(ComponentAcceptorRepoID, KeyAcceptor) }

// Install verifies and installs a component package from its archive
// bytes — the Component Acceptor path ("hooks for accepting new
// components at run-time", Fig. 1). The package must carry an
// implementation fitting this node's platform.
func (n *Node) Install(data []byte) (component.ID, error) {
	if n.res.Profile().Fixed {
		return component.ID{}, ErrFixedNode
	}
	c, err := component.LoadBytes(data)
	if err != nil {
		return component.ID{}, err
	}
	return n.installLoaded(c)
}

// InstallComponent installs an already-loaded component (local
// convenience used by deployment and tests; applies the same checks).
func (n *Node) InstallComponent(c *component.Component) (component.ID, error) {
	if n.res.Profile().Fixed {
		return component.ID{}, ErrFixedNode
	}
	return n.installLoaded(c)
}

func (n *Node) installLoaded(c *component.Component) (component.ID, error) {
	if err := verifyPackage(c, n.keys); err != nil {
		return component.ID{}, err
	}
	p := n.res.Profile()
	if _, ok := c.SoftPkg().FindImplementation(p.OS, p.Arch, p.ORB); !ok {
		return component.ID{}, fmt.Errorf("%w: %s on %s/%s", ErrNoPlatformFit, c.ID(), p.OS, p.Arch)
	}
	// Memory gate for tiny devices: a component whose minimum footprint
	// exceeds the device's total memory can never run here.
	if q := c.Type().QoS; q.MemoryMinMB > p.MemoryMB {
		return component.ID{}, fmt.Errorf("%w: needs %d MB, node has %d MB",
			ErrResources, q.MemoryMinMB, p.MemoryMB)
	}
	n.repo.Put(c)
	n.offersEpoch.Add(1)
	n.bumpDigest()
	return c.ID(), nil
}

// Uninstall removes a component, closing its container.
func (n *Node) Uninstall(id component.ID) error {
	n.mu.Lock()
	ct := n.containers[id]
	delete(n.containers, id)
	n.mu.Unlock()
	if ct != nil {
		ct.Close()
	}
	if !n.repo.Remove(id) {
		return fmt.Errorf("%w: %s", ErrNotInstalled, id)
	}
	n.offersEpoch.Add(1)
	n.bumpDigest()
	return nil
}

// cachedContainer returns the already-created container for id, if any.
func (n *Node) cachedContainer(id component.ID) (*container.Container, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ct, ok := n.containers[id]
	return ct, ok
}

// adoptContainer records ct for id unless a concurrent caller won the
// race; the winning container is returned along with whether ct was the
// one adopted.
func (n *Node) adoptContainer(id component.ID, ct *container.Container) (*container.Container, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if existing, ok := n.containers[id]; ok {
		return existing, false
	}
	n.containers[id] = ct
	return ct, true
}

// ContainerFor returns (creating on demand) the container hosting a
// component's instances on this node.
func (n *Node) ContainerFor(id component.ID) (*container.Container, error) {
	if ct, ok := n.cachedContainer(id); ok {
		return ct, nil
	}
	c, ok := n.repo.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotInstalled, id)
	}
	ct, err := container.New(n, c, n.impls)
	if err != nil {
		return nil, err
	}
	winner, adopted := n.adoptContainer(id, ct)
	if !adopted {
		ct.Close()
	}
	return winner, nil
}

// Instantiate creates (and dependency-resolves) an instance of an
// installed component.
func (n *Node) Instantiate(ctx context.Context, id component.ID, name string) (*container.ManagedInstance, error) {
	ct, err := n.ContainerFor(id)
	if err != nil {
		return nil, err
	}
	mi, err := ct.Create(name)
	if err != nil {
		return nil, err
	}
	if err := mi.ResolveDependencies(ctx); err != nil {
		_ = ct.Destroy(mi.Name())
		return nil, err
	}
	n.bumpDigest()
	return mi, nil
}

// Instances lists (component ID, instance) pairs currently running.
func (n *Node) Instances() map[component.ID][]*container.ManagedInstance {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[component.ID][]*container.ManagedInstance, len(n.containers))
	for id, ct := range n.containers {
		out[id] = ct.Instances()
	}
	return out
}

// Close tears down all containers and the event hub.
func (n *Node) Close() {
	n.cancel()
	n.mu.Lock()
	cts := n.containers
	n.containers = make(map[component.ID]*container.Container)
	n.mu.Unlock()
	for _, ct := range cts {
		ct.Close()
	}
	n.eventSvc.close()
	n.hub.Close()
	n.orb.Shutdown()
}

// Offer is one match for a component query: an installed component on
// some node providing the requested port, with the data placement needs
// (§2.4.3: location, QoS, mobility).
type Offer struct {
	ComponentID string
	Node        string
	Port        string
	PortRepoID  string
	Movable     bool
	CPUMin      float64
	MemoryMinMB uint32
	// BandwidthMin is the component's declared bandwidth demand in
	// Mbit/s; the fetch-vs-remote placement decision keys off it.
	BandwidthMin float64
	// NodeLoad is the offering node's load fraction at snapshot time.
	NodeLoad float64
	// Acceptor and Registry are the offering node's service refs, used
	// to instantiate remotely or fetch the package.
	Acceptor *ior.IOR
	Registry *ior.IOR
}

// Marshal encodes the offer.
func (of *Offer) Marshal(e *cdr.Encoder) {
	e.WriteString(of.ComponentID)
	e.WriteString(of.Node)
	e.WriteString(of.Port)
	e.WriteString(of.PortRepoID)
	e.WriteBool(of.Movable)
	e.WriteDouble(of.CPUMin)
	e.WriteULong(of.MemoryMinMB)
	e.WriteDouble(of.BandwidthMin)
	e.WriteDouble(of.NodeLoad)
	of.Acceptor.Marshal(e)
	of.Registry.Marshal(e)
}

// UnmarshalOffer decodes an offer.
func UnmarshalOffer(d *cdr.Decoder) (*Offer, error) {
	of := &Offer{}
	var err error
	if of.ComponentID, err = d.ReadString(); err != nil {
		return nil, err
	}
	if of.Node, err = d.ReadString(); err != nil {
		return nil, err
	}
	if of.Port, err = d.ReadString(); err != nil {
		return nil, err
	}
	if of.PortRepoID, err = d.ReadString(); err != nil {
		return nil, err
	}
	if of.Movable, err = d.ReadBool(); err != nil {
		return nil, err
	}
	if of.CPUMin, err = d.ReadDouble(); err != nil {
		return nil, err
	}
	if of.MemoryMinMB, err = d.ReadULong(); err != nil {
		return nil, err
	}
	if of.BandwidthMin, err = d.ReadDouble(); err != nil {
		return nil, err
	}
	if of.NodeLoad, err = d.ReadDouble(); err != nil {
		return nil, err
	}
	if of.Acceptor, err = ior.Unmarshal(d); err != nil {
		return nil, err
	}
	if of.Registry, err = ior.Unmarshal(d); err != nil {
		return nil, err
	}
	return of, nil
}

// MarshalOffers encodes a sequence of offers.
func MarshalOffers(e *cdr.Encoder, offers []*Offer) {
	e.WriteULong(uint32(len(offers)))
	for _, of := range offers {
		of.Marshal(e)
	}
}

// UnmarshalOffers decodes a sequence of offers.
func UnmarshalOffers(d *cdr.Decoder) ([]*Offer, error) {
	nOffers, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining())/8 < nOffers {
		return nil, cdr.ErrTooLong
	}
	out := make([]*Offer, nOffers)
	for i := range out {
		if out[i], err = UnmarshalOffer(d); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// LocalQuery lists this node's offers matching a port interface ID (or
// a "component:<name>" key) under a version requirement ("Component
// Registries collaborate to resolve distributed component queries",
// §2.4.3).
func (n *Node) LocalQuery(portRepoID, versionReq string) ([]*Offer, error) {
	req, err := version.ParseRequirement(versionReq)
	if err != nil {
		return nil, err
	}
	report := n.Report()
	load := report.LoadFraction()
	provs := n.repo.Providers(portRepoID, req)
	offers := make([]*Offer, 0, len(provs))
	for _, c := range provs {
		of := &Offer{
			ComponentID:  c.ID().String(),
			Node:         n.name,
			PortRepoID:   portRepoID,
			Movable:      c.Movable(),
			CPUMin:       c.Type().QoS.CPUMin,
			MemoryMinMB:  uint32(c.Type().QoS.MemoryMinMB),
			BandwidthMin: c.Type().QoS.BandwidthMin,
			NodeLoad:     load,
			Acceptor:     n.AcceptorIOR(),
			Registry:     n.RegistryIOR(),
		}
		// Name the concrete port when the key is an interface ID.
		for _, p := range c.Type().PortsOf(xmldesc.PortProvides) {
			if p.RepoID == portRepoID {
				of.Port = p.Name
				break
			}
		}
		offers = append(offers, of)
	}
	return offers, nil
}

// ObtainPort returns a provided-port reference for a component installed
// here, reusing a running instance or creating one — the server half of
// network dependency resolution.
func (n *Node) ObtainPort(ctx context.Context, id component.ID, portRepoID string) (*ior.IOR, error) {
	c, ok := n.repo.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotInstalled, id)
	}
	ct, err := n.ContainerFor(id)
	if err != nil {
		return nil, err
	}
	var mi *container.ManagedInstance
	if insts := ct.Instances(); len(insts) > 0 {
		mi = insts[0]
	} else {
		mi, err = ct.Create("")
		if err != nil {
			return nil, err
		}
		if err := mi.ResolveDependencies(ctx); err != nil {
			_ = ct.Destroy(mi.Name())
			return nil, err
		}
		n.bumpDigest()
	}
	for _, port := range c.Type().PortsOf(xmldesc.PortProvides) {
		if port.RepoID == portRepoID {
			return mi.PortIOR(port.Name)
		}
	}
	return nil, fmt.Errorf("%w: %s does not provide %s", ErrUnresolved, id, portRepoID)
}

// ComponentKey builds the pseudo-port query key under which a component
// is advertised by name: queries for "component:<name>" match the
// component itself rather than one of its provided interfaces
// (assemblies instantiate components by name, §2.4.4).
func ComponentKey(name string) string { return "component:" + name }

// AllOffers enumerates every provided port of every installed component,
// plus one by-name pseudo-offer per component — the reflective export
// set a node advertises to its Meta-Resource Manager.
func (n *Node) AllOffers() []*Offer {
	report := n.Report()
	load := report.LoadFraction()
	var offers []*Offer
	for _, id := range n.repo.List() {
		c, ok := n.repo.Get(id)
		if !ok {
			continue
		}
		mk := func(port, repoID string) *Offer {
			return &Offer{
				ComponentID:  id.String(),
				Node:         n.name,
				Port:         port,
				PortRepoID:   repoID,
				Movable:      c.Movable(),
				CPUMin:       c.Type().QoS.CPUMin,
				MemoryMinMB:  uint32(c.Type().QoS.MemoryMinMB),
				BandwidthMin: c.Type().QoS.BandwidthMin,
				NodeLoad:     load,
				Acceptor:     n.AcceptorIOR(),
				Registry:     n.RegistryIOR(),
			}
		}
		offers = append(offers, mk("", ComponentKey(id.Name)))
		for _, p := range c.Type().PortsOf(xmldesc.PortProvides) {
			offers = append(offers, mk(p.Name, p.RepoID))
		}
	}
	return offers
}

// localResolver satisfies dependencies from this node's repository only:
// it instantiates (or reuses) a local provider and returns its port.
type localResolver struct{ n *Node }

func (lr *localResolver) Resolve(ctx context.Context, p xmldesc.Port) (*ior.IOR, error) {
	req, _ := version.ParseRequirement(p.Version)
	provs := lr.n.repo.Providers(p.RepoID, req)
	if len(provs) == 0 {
		return nil, fmt.Errorf("%w: no local provider for %s", ErrUnresolved, p.RepoID)
	}
	return lr.n.ObtainPort(ctx, provs[0].ID(), p.RepoID)
}

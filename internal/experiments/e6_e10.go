package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"corbalc"
	"corbalc/internal/cdr"
	"corbalc/internal/cohesion"
	"corbalc/internal/component"
	"corbalc/internal/deploy"
	"corbalc/internal/ior"
	"corbalc/internal/node"
	"corbalc/internal/simnet"
	"corbalc/internal/version"
	"corbalc/internal/xmldesc"
)

// E6Deployment compares fixed design-time placement (the CCM/EJB model
// the paper criticises) with CORBA-LC's run-time, load-aware placement
// on a cluster with skewed background load.
func E6Deployment(sc Scale) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "instance placement: static round-robin vs run-time load-aware",
		Claim:   "§2.4.4: run-time deployment exploits dynamic load data that a fixed assembly cannot",
		Columns: []string{"strategy", "placed", "failed", "max node load", "stddev load"},
		Notes:   "8 nodes (4 cores each), half pre-loaded with 3.0 background CPU; 12 instances of a 0.5-CPU component",
	}
	const nodes = 8
	const instances = 12

	run := func(strategy string, place func(c *corbalc.Cluster, i int) bool) {
		c := cluster(nodes, simnet.Link{}, func(o *corbalc.Options) {
			o.UpdateInterval = 30 * time.Millisecond
		})
		defer c.Close()
		comp := benchSpec("worker", "1.0.0", "IDL:bench/Worker:1.0", func(s *component.Spec) {
			s.QoS = xmldesc.QoS{CPUMin: 0.5}
		})
		for _, p := range c.Peers {
			if _, err := p.Node.InstallComponent(comp); err != nil {
				panic(err)
			}
		}
		for i := 0; i < nodes/2; i++ {
			c.Peers[i].Node.Resources().SetBackgroundLoad(3.0)
		}
		waitQuery(c.Peers[0], node.ComponentKey("worker"), 1)
		time.Sleep(150 * time.Millisecond)

		placed, failed := 0, 0
		for i := 0; i < instances; i++ {
			if place(c, i) {
				placed++
			} else {
				failed++
			}
			// Let resource updates reflect the new reservation before
			// the next decision, as a real deployer pacing would.
			time.Sleep(45 * time.Millisecond)
		}
		var maxLoad, sum, sum2 float64
		for _, p := range c.Peers {
			r := p.Node.Report()
			l := r.LoadFraction()
			if l > maxLoad {
				maxLoad = l
			}
			sum += l
			sum2 += l * l
		}
		mean := sum / nodes
		std := math.Sqrt(sum2/nodes - mean*mean)
		t.Rows = append(t.Rows, []string{
			strategy, fmt.Sprint(placed), fmt.Sprint(failed),
			fmtF(maxLoad), fmtF(std),
		})
	}

	// Static: the assembly pinned instance i to node i%N at design time.
	run("static-fixed", func(c *corbalc.Cluster, i int) bool {
		p := c.Peers[i%nodes]
		id := component.ID{Name: "worker", Version: mustVersion("1.0.0")}
		_, err := p.Node.Instantiate(context.Background(), id, fmt.Sprintf("s%d", i))
		return err == nil
	})
	// Run-time: the deployment engine picks the node when the instance
	// is requested.
	run("runtime-adaptive", func(c *corbalc.Cluster, i int) bool {
		_, err := c.Peers[0].Engine.Place(context.Background(), "worker", "*", fmt.Sprintf("r%d", i))
		return err == nil
	})
	return t
}

// E7Migration reproduces the paper's MPEG argument: a bandwidth-bound
// decoder is faster fetched-and-run-locally than invoked across a slow
// link, once enough frames flow.
func E7Migration(sc Scale) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "bandwidth-bound component: remote use vs fetch-and-run-local",
		Claim:   "§3.1: a component decoding a video stream works much faster installed locally",
		Columns: []string{"frames", "remote", "fetch+local", "winner"},
		Notes:   "2 MB/s link, 4ms RTT; 64 KiB/frame; ~130 KiB package fetched once",
	}
	for _, frames := range []int{1, 4, 16, 64 * sc.nodes(1)} {
		times := make(map[string]time.Duration, 2)
		for _, mode := range []string{"remote", "fetch+local"} {
			link := simnet.Link{Latency: 2 * time.Millisecond, BandwidthBps: 2 << 20}
			c := cluster(2, link, func(o *corbalc.Options) {
				if mode == "remote" {
					o.Deploy = &deploy.Policy{FetchEnabled: false, LoadWeight: 1}
				} else {
					o.Deploy = &deploy.Policy{FetchEnabled: true, FetchBandwidthMbps: 5, LoadWeight: 1}
				}
			})
			decoder := decoderComponent()
			if _, err := c.Peers[1].Node.InstallComponent(decoder); err != nil {
				panic(err)
			}
			waitQuery(c.Peers[0], "IDL:bench/Decoder:1.0", 1)

			start := time.Now()
			ref, err := c.Peers[0].Engine.Resolve(context.Background(), xmldesc.Port{
				Kind: xmldesc.PortUses, Name: "video", RepoID: "IDL:bench/Decoder:1.0",
			})
			if err != nil {
				panic(err)
			}
			oref := c.Peers[0].Node.ORB().NewRef(ref)
			for f := 0; f < frames; f++ {
				err := oref.InvokeContext(context.Background(), "frame", nil, func(d *cdr.Decoder) error {
					_, err := d.ReadOctetSeq()
					return err
				})
				if err != nil {
					panic(err)
				}
			}
			times[mode] = time.Since(start)
			c.Close()
		}
		winner := "remote"
		if times["fetch+local"] < times["remote"] {
			winner = "fetch+local"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(frames), fmtDur(times["remote"]), fmtDur(times["fetch+local"]), winner,
		})
	}
	return t
}

// decoderComponent builds the synthetic MPEG decoder: a bandwidth-hungry
// movable component with a moderately fat binary.
func decoderComponent() *component.Component {
	s := &component.Spec{
		Name: "streamdecoder", Version: "1.0.0", Entrypoint: "bench/decoder.New",
		BinarySize: 128 << 10, Compressible: false,
	}
	s.Provide("decode", "IDL:bench/Decoder:1.0")
	s.QoS = xmldesc.QoS{CPUMin: 0.1, BandwidthMin: 20}
	c, err := s.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// E8TinyDevices verifies requirement 8 and the §2.3 subsetting story:
// placement never selects a PDA, a PDA never fetches, and a package
// subset for the PDA's platform is a fraction of the full archive.
func E8TinyDevices(sc Scale) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "tiny devices: placement constraints and package subsetting",
		Claim:   "Req.8/§2.3: PDAs participate as peers, use components remotely, fetch only their slice",
		Columns: []string{"check", "result"},
	}

	// Placement: a mixed cluster with one PDA; 12 placements must all
	// avoid it.
	reg := benchImpls()
	net := simnet.New(simnet.Link{})
	opts := corbalc.Options{Impls: reg, UpdateInterval: 25 * time.Millisecond}
	var peers []*corbalc.Peer
	mk := func(name string, prof node.Profile) *corbalc.Peer {
		o := opts
		o.Profile = prof
		p := corbalc.NewPeer(name, o)
		if err := net.Attach(name, p.Node.ORB()); err != nil {
			panic(err)
		}
		peers = append(peers, p)
		return p
	}
	server := mk("srv", node.ServerProfile())
	mk("ws1", node.WorkstationProfile())
	mk("ws2", node.WorkstationProfile())
	pda := mk("pda", node.PDAProfile())
	server.Bootstrap()
	for _, p := range peers[1:] {
		if err := p.Join(server.Contact()); err != nil {
			panic(err)
		}
	}
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()

	comp := benchSpec("app", "1.0.0", "IDL:bench/App:1.0", nil)
	for _, p := range peers[:3] {
		if _, err := p.Node.InstallComponent(comp); err != nil {
			panic(err)
		}
	}
	waitQuery(server, node.ComponentKey("app"), 3)

	pdaPlacements := 0
	for i := 0; i < 12; i++ {
		pl, err := server.Engine.Place(context.Background(), "app", "*", fmt.Sprintf("i%d", i))
		if err != nil {
			panic(err)
		}
		if pl.Node == "pda" {
			pdaPlacements++
		}
	}
	t.Rows = append(t.Rows, []string{"placements landing on the PDA (of 12)", fmt.Sprint(pdaPlacements)})

	// A PDA refuses installation outright.
	_, err := pda.Node.Install(comp.Package().Bytes())
	t.Rows = append(t.Rows, []string{"PDA install attempt", fmt.Sprint(err != nil)})

	// Remote use from the PDA still works.
	ref, err := pda.Engine.Resolve(context.Background(), xmldesc.Port{Kind: xmldesc.PortUses, Name: "a", RepoID: "IDL:bench/App:1.0"})
	ok := err == nil
	if ok {
		ok = pda.Node.ORB().NewRef(ref).InvokeContext(context.Background(), "poke", nil, func(d *cdr.Decoder) error {
			_, err := d.ReadString()
			return err
		}) == nil
	}
	t.Rows = append(t.Rows, []string{"PDA uses the component remotely", fmt.Sprint(ok)})

	// Subsetting: a three-platform package vs the PDA slice.
	fat := &component.Spec{
		Name: "fatapp", Version: "1.0.0", Entrypoint: "bench/instance.New",
		BinarySize: 512 << 10,
		Platforms:  [][2]string{{"linux", "amd64"}, {"windows", "x86"}, {"palmos", "arm"}},
	}
	fat.Provide("svc", "IDL:bench/Fat:1.0")
	fatComp, err := fat.Build()
	if err != nil {
		panic(err)
	}
	sub, err := fatComp.Package().Subset(nil, "palmos-arm")
	if err != nil {
		panic(err)
	}
	full := fatComp.Package().Size()
	t.Rows = append(t.Rows, []string{"full package (3 platforms)", fmt.Sprintf("%d KiB", full>>10)})
	t.Rows = append(t.Rows, []string{"PDA subset (palmos-arm)", fmt.Sprintf("%d KiB (%.0f%%)",
		len(sub)>>10, 100*float64(len(sub))/float64(full))})
	return t
}

// E9Grid measures data-parallel aggregation speedup over W volunteers
// with simulated per-chunk remote CPU cost, with and without mid-run
// churn (§3.2).
func E9Grid(sc Scale) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "grid aggregation speedup vs volunteers",
		Claim:   "§3.2/§2.1.1: splittable components harvest the whole network's capacity; churn costs time, not correctness",
		Columns: []string{"workers", "churn", "makespan", "speedup", "chunks ok"},
		Notes:   "32 chunks x 15ms simulated remote CPU each",
	}
	const chunks = 32
	const chunkMs = 15
	var baseline time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		for _, churn := range []bool{false, true} {
			if churn && w < 4 {
				continue
			}
			c := cluster(w+1, simnet.Link{}, nil)
			comp := benchSpec("cruncher", "1.0.0", "IDL:bench/Cruncher:1.0", nil)
			for _, p := range c.Peers[1:] {
				if _, err := p.Node.InstallComponent(comp); err != nil {
					panic(err)
				}
			}
			master := c.Peers[0]
			waitQuery(master, "IDL:bench/Cruncher:1.0", w)
			offers, err := master.Agent.QueryAll(context.Background(), "IDL:bench/Cruncher:1.0", "*")
			if err != nil || len(offers) < w {
				panic(fmt.Sprintf("E9: %d offers, %v", len(offers), err))
			}

			start := time.Now()
			okChunks := farm(master, offers[:w], chunks, chunkMs, func(done int) {
				if churn && done == chunks/4 {
					c.Net.SetDown(offers[w-1].Node, true)
				}
			})
			el := time.Since(start)
			if w == 1 && !churn {
				baseline = el
			}
			speedup := float64(baseline) / float64(el)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(w), fmt.Sprint(churn), fmtDur(el), fmtF(speedup),
				fmt.Sprintf("%d/%d", okChunks, chunks),
			})
			c.Close()
		}
	}
	return t
}

// farm distributes chunks over workers with retry-on-failure; returns
// the number of completed chunks (always all of them, possibly after
// resubmission).
func farm(master *corbalc.Peer, offers []*node.Offer, chunks, chunkMs int, onDone func(int)) int {
	type result struct {
		ok bool
	}
	work := make(chan int, chunks*2)
	results := make(chan result, chunks*2)
	for i := 0; i < chunks; i++ {
		work <- i
	}
	for _, of := range offers {
		go func(of *node.Offer) {
			acc := master.Node.ORB().NewRef(of.Acceptor)
			var port *ior.IOR
			err := acc.InvokeContext(context.Background(), "obtain",
				func(e *cdr.Encoder) {
					e.WriteString(of.ComponentID)
					e.WriteString(of.PortRepoID)
				},
				func(d *cdr.Decoder) error {
					var e error
					port, e = ior.Unmarshal(d)
					return e
				})
			if err != nil {
				return
			}
			ref := master.Node.ORB().NewRef(port)
			for range work {
				err := ref.InvokeContext(context.Background(), "chunk",
					func(e *cdr.Encoder) { e.WriteLong(int32(chunkMs)) },
					func(d *cdr.Decoder) error { _, e := d.ReadLong(); return e })
				results <- result{ok: err == nil}
				if err != nil {
					return
				}
			}
		}(of)
	}
	done := 0
	for done < chunks {
		r := <-results
		if !r.ok {
			work <- 0 // resubmit
			continue
		}
		done++
		if onDone != nil {
			onDone(done)
		}
	}
	close(work)
	return done
}

// E10Predictive measures update suppression under the three send
// policies for three load traces.
func E10Predictive(sc Scale) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "update suppression: periodic vs dead-band vs predictive",
		Claim:   "§2.4.3: predictive/adaptive techniques reduce update bandwidth even further",
		Columns: []string{"trace", "policy", "updates", "bytes"},
		Notes:   "2s window, 25ms interval, epsilon 0.05; updates counted at the sender",
	}
	window := sc.window(2 * time.Second)
	traces := []struct {
		name  string
		drive func(p *corbalc.Peer, stop <-chan struct{})
	}{
		{"stable", func(p *corbalc.Peer, stop <-chan struct{}) {
			p.Node.Resources().SetBackgroundLoad(1.0)
			<-stop
		}},
		{"noisy", func(p *corbalc.Peer, stop <-chan struct{}) {
			rng := rand.New(rand.NewSource(7))
			tick := time.NewTicker(40 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					p.Node.Resources().SetBackgroundLoad(1.0 + rng.Float64()*1.2 - 0.6)
				}
			}
		}},
		{"trending", func(p *corbalc.Peer, stop <-chan struct{}) {
			start := time.Now()
			tick := time.NewTicker(20 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					p.Node.Resources().SetBackgroundLoad(time.Since(start).Seconds() * 1.5)
				}
			}
		}},
	}
	for _, trace := range traces {
		for _, pol := range []struct {
			name   string
			policy cohesion.SendPolicy
		}{
			{"periodic", cohesion.Periodic},
			{"deadband", cohesion.DeadBand},
			{"predictive", cohesion.Predictive},
		} {
			c := cluster(2, simnet.Link{}, func(o *corbalc.Options) {
				o.UpdateInterval = 25 * time.Millisecond
				o.FailMultiple = 20 // keep the keep-alive floor out of the way
				o.Policy = pol.policy
				o.GroupSize = 2
			})
			member := c.Peers[1] // non-leader member: pure update sender
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				trace.drive(member, stop)
			}()
			time.Sleep(150 * time.Millisecond) // settle the trace
			before := member.Agent.Stats()
			time.Sleep(window)
			after := member.Agent.Stats()
			close(stop)
			wg.Wait() // the trace must stop touching member before c.Close()
			t.Rows = append(t.Rows, []string{
				trace.name, pol.name,
				fmt.Sprint(after.UpdatesSent - before.UpdatesSent),
				fmt.Sprint(after.UpdateBytes - before.UpdateBytes),
			})
			c.Close()
		}
	}
	return t
}

func mustVersion(s string) version.V { return version.MustParse(s) }

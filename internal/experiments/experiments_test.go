package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"corbalc/internal/race"
)

// quick is the smallest scale: every experiment must still exhibit the
// claimed *shape*, which is what these tests assert.
var quick = Scale{Nodes: 1, Seconds: 0.5}

func cell(t *Table, row, col int) string { return t.Rows[row][col] }

func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.Fields(s)[0], 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return v
}

func dur(t *testing.T, s string) time.Duration {
	t.Helper()
	d, err := time.ParseDuration(strings.ReplaceAll(s, "µ", "u"))
	if err != nil {
		t.Fatalf("not a duration: %q", s)
	}
	return d
}

func TestE1InvocationShape(t *testing.T) {
	tab := E1Invocation(Scale{Nodes: 1})
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Lightweightness: a collocated null invocation stays under 100µs
	// even on tiny machines; TCP stays under 5ms.
	if us := num(t, cell(tab, 0, 3)); us > 100 {
		t.Errorf("collocated null op = %v us", us)
	}
	for _, row := range tab.Rows {
		if row[0] == "iiop/tcp" {
			if us := num(t, row[3]); us > 5000 {
				t.Errorf("tcp %s = %v us", row[1], us)
			}
		}
	}
	t.Log("\n" + tab.Render())
}

func TestE1bConcurrencyShape(t *testing.T) {
	tab := E1bConcurrency(Scale{Nodes: 1})
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The claimed shape: fan-in multiplies throughput. On one core the
	// gain comes from batching syscalls (write coalescing) and keeping
	// the wire full, so it survives GOMAXPROCS=1; the race detector
	// serialises everything, so only direction is asserted there.
	factor := 2.0
	if race.Enabled {
		factor = 1.1
	}
	c1 := num(t, cell(tab, 0, 3))
	c64 := num(t, cell(tab, 2, 3))
	if c64 < factor*c1 {
		t.Errorf("tcp C=64 = %v calls/s, want >= %v x C=1 (%v)", c64, factor, c1)
	}
	if tab.Rows[2][0] != "iiop/tcp" || tab.Rows[2][1] != "64" {
		t.Fatalf("row 2 = %v, want iiop/tcp C=64", tab.Rows[2])
	}
	if tab.Rows[3][0] != "iiop/tcp-single" {
		t.Fatalf("row 3 = %v, want iiop/tcp-single", tab.Rows[3])
	}
	t.Log("\n" + tab.Render())
}

func TestE2RegistryShape(t *testing.T) {
	tab := E2Registry(Scale{Nodes: 1})
	for _, row := range tab.Rows {
		if num(t, row[1]) <= 0 || num(t, row[2]) <= 0 {
			t.Errorf("non-positive rate in %v", row)
		}
		parts := strings.Split(row[3], "/")
		if parts[0] != parts[1] {
			t.Errorf("not all queries found a match: %v", row)
		}
	}
	t.Log("\n" + tab.Render())
}

func TestE3SoftBeatsStrong(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := E3Consistency(quick)
	// Rows alternate soft/strong per N; at the largest N soft must use
	// (much) less bandwidth per node.
	last := len(tab.Rows)
	soft := num(t, cell(tab, last-2, 3))
	strong := num(t, cell(tab, last-1, 3))
	if soft*1.5 >= strong {
		t.Errorf("soft %.0f B/node/s not clearly below strong %.0f", soft, strong)
	}
	// Strong-mode bandwidth grows with N; soft stays roughly flat.
	softSmall := num(t, cell(tab, 0, 3))
	strongSmall := num(t, cell(tab, 1, 3))
	if strong <= strongSmall {
		t.Errorf("strong did not grow with N: %.0f -> %.0f", strongSmall, strong)
	}
	if soft > softSmall*3 {
		t.Errorf("soft grew too fast with N: %.0f -> %.0f", softSmall, soft)
	}
	t.Log("\n" + tab.Render())
}

func TestE4HierarchicalCheaperThanFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := E4QueryHierarchy(quick)
	for i := 0; i+2 < len(tab.Rows); i += 3 {
		local := num(t, cell(tab, i, 2))
		remote := num(t, cell(tab, i+1, 2))
		flat := num(t, cell(tab, i+2, 2))
		n := num(t, cell(tab, i, 0))
		if remote*2 >= flat {
			t.Errorf("N=%v: hierarchical %.1f msgs not well below flat %.1f", n, remote, flat)
		}
		// Locality: a same-group hit costs no more than the remote path.
		if local > remote {
			t.Errorf("N=%v: local query (%.1f msgs) dearer than remote (%.1f)", n, local, remote)
		}
		// Flat cost ~= 2 msgs (req+reply) per other node.
		if flat < n {
			t.Errorf("N=%v: flat cost %.1f below node count", n, flat)
		}
		for _, row := range []int{i, i + 1} {
			parts := strings.Split(cell(tab, row, 4), "/")
			if parts[0] != parts[1] {
				t.Errorf("hierarchical queries missed the target: %v", tab.Rows[row])
			}
		}
	}
	t.Log("\n" + tab.Render())
}

func TestE5FailoverShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := E5Failover(quick)
	for _, row := range tab.Rows {
		if row[2] != "true" {
			t.Errorf("query after MRM kill failed: %v", row)
		}
		expelled := dur(t, row[3])
		interval := dur(t, row[0])
		if expelled <= 0 {
			t.Errorf("dead node never expelled: %v", row)
		}
		if expelled > 40*interval {
			t.Errorf("expulsion took %v (> 40 intervals of %v)", expelled, interval)
		}
	}
	t.Log("\n" + tab.Render())
}

func TestE6RuntimeBeatsStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := E6Deployment(quick)
	staticFailed := num(t, cell(tab, 0, 2))
	runtimeFailed := num(t, cell(tab, 1, 2))
	if runtimeFailed > staticFailed {
		t.Errorf("runtime placement failed more often (%v) than static (%v)", runtimeFailed, staticFailed)
	}
	staticStd := num(t, cell(tab, 0, 4))
	runtimeStd := num(t, cell(tab, 1, 4))
	if runtimeStd >= staticStd {
		t.Errorf("runtime load stddev %.2f not below static %.2f", runtimeStd, staticStd)
	}
	t.Log("\n" + tab.Render())
}

func TestE7CrossoverToLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := E7Migration(quick)
	// With one frame, fetching cannot pay off... the last row (many
	// frames) must favour fetch+local, and by a wide margin.
	last := tab.Rows[len(tab.Rows)-1]
	if last[3] != "fetch+local" {
		t.Errorf("many-frames winner = %s", last[3])
	}
	remote := dur(t, last[1])
	local := dur(t, last[2])
	if local*2 >= remote {
		t.Errorf("fetch+local %v not well below remote %v at high frame counts", local, remote)
	}
	t.Log("\n" + tab.Render())
}

func TestE8TinyDeviceInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := E8TinyDevices(quick)
	checks := map[string]string{}
	for _, row := range tab.Rows {
		checks[row[0]] = row[1]
	}
	if checks["placements landing on the PDA (of 12)"] != "0" {
		t.Errorf("PDA received placements: %v", checks)
	}
	if checks["PDA install attempt"] != "true" { // true = rejected
		t.Errorf("PDA accepted an install")
	}
	if checks["PDA uses the component remotely"] != "true" {
		t.Errorf("PDA remote use failed")
	}
	t.Log("\n" + tab.Render())
}

func TestE9GridSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := E9Grid(quick)
	// Find the 8-worker no-churn row: speedup must be > 3x.
	for _, row := range tab.Rows {
		if row[0] == "8" && row[1] == "false" {
			if sp := num(t, row[3]); sp < 3 {
				t.Errorf("8-worker speedup = %.2f", sp)
			}
		}
		parts := strings.Split(row[4], "/")
		if parts[0] != parts[1] {
			t.Errorf("lost chunks: %v", row)
		}
	}
	t.Log("\n" + tab.Render())
}

func TestE10PredictiveSuppression(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := E10Predictive(quick)
	byKey := map[string]float64{}
	for _, row := range tab.Rows {
		byKey[row[0]+"/"+row[1]] = num(t, row[2])
	}
	// Stable load: both suppressing policies send far fewer updates.
	if byKey["stable/deadband"]*2 >= byKey["stable/periodic"] {
		t.Errorf("deadband %v not well below periodic %v on stable load",
			byKey["stable/deadband"], byKey["stable/periodic"])
	}
	if byKey["stable/predictive"]*2 >= byKey["stable/periodic"] {
		t.Errorf("predictive %v not well below periodic %v on stable load",
			byKey["stable/predictive"], byKey["stable/periodic"])
	}
	// Trending load: the linear predictor beats the plain dead band.
	if byKey["trending/predictive"] > byKey["trending/deadband"] {
		t.Errorf("predictive %v worse than deadband %v on trending load",
			byKey["trending/predictive"], byKey["trending/deadband"])
	}
	t.Log("\n" + tab.Render())
}

func TestE11FanOutShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := E11FanOut(quick)
	if len(tab.Rows) != 9 { // 3 subscriber counts × 3 policies
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		subs, pub := num(t, row[0]), num(t, row[2])
		del, drop := num(t, row[4]), num(t, row[5])
		// Every enqueued delivery is accounted: delivered or dropped.
		if del+drop != subs*pub {
			t.Errorf("%s/%s: delivered %v + dropped %v != %v×%v", row[0], row[1], del, drop, subs, pub)
		}
		// Block never drops; the fabric keeps a positive fan-out rate.
		if row[1] == "block" && drop != 0 {
			t.Errorf("block policy dropped %v deliveries", drop)
		}
		if num(t, row[3]) <= 0 {
			t.Errorf("%s/%s: events/s = %s", row[0], row[1], row[3])
		}
	}
	t.Log("\n" + tab.Render())
}

func TestE12SwarmShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if race.Enabled {
		// The race job exercises the swarm via TestSwarmChurnConvergence
		// (500 nodes); the bandwidth ratios here are timing-sensitive and
		// the full-state baseline is quadratic work the detector makes
		// painfully slow.
		t.Skip("race detector: swarm ratios measured without instrumentation")
	}
	tab := E12Swarm(quick)
	if len(tab.Rows) != 4 { // 2 swarm sizes × 2 planes
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	churn := map[string]float64{} // "nodes/plane" -> churn-B/node/s
	for _, row := range tab.Rows {
		churn[row[0]+"/"+row[1]] = num(t, row[4])
		if heal := dur(t, row[3]); heal <= 0 || heal > 30*time.Second {
			t.Errorf("%s/%s: heal time %v out of range", row[0], row[1], heal)
		}
		if row[1] == "delta" && num(t, row[5]) == 0 {
			t.Errorf("%s/delta: no deltas disseminated", row[0])
		}
	}
	small, big := cell(tab, 0, 0), cell(tab, 2, 0)
	// The tentpole ratio: during churn the delta plane must cost a small
	// fraction of full-state exchange, at every measured swarm size.
	for _, n := range []string{small, big} {
		if d, f := churn[n+"/delta"], churn[n+"/fullstate"]; d*4 >= f {
			t.Errorf("N=%s: delta churn %.0f B/node/s not well below full-state %.0f", n, d, f)
		}
	}
	// Flatness: per-node delta bandwidth must not grow with the swarm
	// (full-state visibly does; see E3 for the steady-state analogue).
	if churn[big+"/delta"] > 3*churn[small+"/delta"] {
		t.Errorf("delta churn bandwidth grew with swarm: %.0f (N=%s) -> %.0f (N=%s)",
			churn[small+"/delta"], small, churn[big+"/delta"], big)
	}
	t.Log("\n" + tab.Render())
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "demo", Claim: "c",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "n",
	}
	out := tab.Render()
	for _, want := range []string{"== EX: demo ==", "claim: c", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestA1FanoutShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := A1Fanout(quick)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// Query cost stays small regardless of fanout.
		if q := num(t, row[3]); q > 12 {
			t.Errorf("fanout %s: query msgs = %v", row[0], q)
		}
	}
	// Fanout 2 yields 16 groups, fanout 16 yields 2.
	if g2 := num(t, cell(tab, 0, 1)); g2 != 16 {
		t.Errorf("fanout 2 groups = %v", g2)
	}
	if g16 := num(t, cell(tab, 3, 1)); g16 != 2 {
		t.Errorf("fanout 16 groups = %v", g16)
	}
	t.Log("\n" + tab.Render())
}

func TestA2ReplicasShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := A2Replicas(quick)
	for _, row := range tab.Rows {
		if row[2] != "true" {
			t.Errorf("R=%s: queries failed after R-1 kills", row[0])
		}
	}
	// Update traffic grows with R.
	r1 := num(t, cell(tab, 0, 1))
	r3 := num(t, cell(tab, 2, 1))
	if r3 <= r1 {
		t.Errorf("traffic did not grow with replicas: R=1 %.1f vs R=3 %.1f", r1, r3)
	}
	t.Log("\n" + tab.Render())
}

func TestE13GatewayShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := E13Gateway(quick)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// A zero rate means a path errored mid-window (measureRate's
		// failure signal) — any positive rate is shape enough; absolute
		// throughput is the bench gate's job (BENCH_9).
		for col := 1; col <= 3; col++ {
			if v := num(t, row[col]); v <= 0 {
				t.Errorf("C=%s: %s = %v", row[0], tab.Columns[col], v)
			}
		}
	}
	// At high concurrency the cache-hit path must beat the uncached
	// gateway path: hits skip the IIOP round trip entirely.
	if hit := num(t, cell(tab, 2, 5)); hit < 1 {
		t.Errorf("C=64 hit-speedup-x = %v, want >= 1", hit)
	}
	t.Log("\n" + tab.Render())
}

package experiments

// E11: the event-fabric fan-out experiment. The paper's environment
// (§2.1.2) notifies components of resource and topology changes by
// *pushing* events; a node hosting many components therefore needs an
// event channel whose publisher cost does not grow with the number of
// subscribers and whose overflow behaviour is an explicit policy, not
// an accident. E11 drives the internal/events fabric directly — one
// publisher, N subscribers — across subscriber counts and overflow
// policies and reports the delivered fan-out rate plus the drop
// counters the policies expose.

import (
	"fmt"
	"time"

	"corbalc/internal/events"
)

// E11FanOut measures push fan-out throughput of the event fabric.
func E11FanOut(sc Scale) *Table {
	t := &Table{
		ID:    "E11",
		Title: "Event fan-out vs subscriber count and overflow policy",
		Claim: "push-style event channels (§2.1.2) scale to thousands of subscribers; overflow is a bounded-queue policy with accounted drops, not publisher back-pressure surprise",
		Columns: []string{
			"subscribers", "policy", "published", "events/s", "delivered", "dropped",
		},
		Notes: "one publisher bursting into per-subscriber bounded queues (depth 64); delivered+dropped always equals published×subscribers",
	}
	policies := []struct {
		name   string
		policy events.OverflowPolicy
	}{
		{"block", events.Block},
		{"drop-oldest", events.DropOldest},
		{"drop-newest", events.DropNewest},
	}
	for _, subs := range []int{100, 1000, sc.nodes(10000)} {
		// Budget roughly two million deliveries per row so the 10k-
		// subscriber case stays CI-sized; scale with the window knob.
		n := int(float64(2_000_000/subs) * sc.Seconds)
		if n < 100 {
			n = 100
		}
		for _, pol := range policies {
			pub, rate, del, drop := fanOutRun(subs, n, pol.policy)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(subs), pol.name, fmt.Sprint(pub),
				fmt.Sprintf("%.0f", rate), fmt.Sprint(del), fmt.Sprint(drop),
			})
		}
	}
	return t
}

// fanOutRun publishes n events to a channel with subs subscribers and
// waits until every delivery is either made or accounted as dropped.
func fanOutRun(subs, n int, policy events.OverflowPolicy) (published uint64, rate float64, delivered, dropped uint64) {
	ch := events.NewChannelConfig("IDL:experiments/E11:1.0", events.Config{
		Depth:  64,
		Policy: policy,
	})
	defer ch.Close()
	for i := 0; i < subs; i++ {
		defer ch.SubscribeBatch("e11", func([]events.Event) {})()
	}

	start := time.Now()
	ev := events.Event{Source: "e11", Data: []byte("x")}
	for i := 0; i < n; i++ {
		if err := ch.Push(ev); err != nil {
			panic(err)
		}
	}
	// Every enqueued delivery ends as delivered or dropped; wait for the
	// ledger to balance so the rate covers the full drain.
	want := uint64(n) * uint64(subs)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var pub uint64
		pub, delivered, dropped = ch.Stats()
		if delivered+dropped >= want {
			published = pub
			break
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("experiments: E11 drain stalled at %d/%d", delivered+dropped, want))
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)
	rate = float64(delivered) / elapsed.Seconds()
	return published, rate, delivered, dropped
}

package experiments

// E13: the web-gateway experiment. The paper positions CORBA-LC nodes
// as peers any client can reach through standard middleware (§2.1.2
// "CORBA 2 standard" interoperability); the HTTP/1.1+JSON gateway
// (internal/gateway, DESIGN.md §15) extends that reach to clients with
// no ORB at all, translating JSON to CDR through DII at runtime. E13
// quantifies what the translation edge costs and what the idempotent
// response cache gives back: direct IIOP invocation rate vs gateway
// rate vs cache-hit rate over client concurrency, against the same
// backend object.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/gateway"
	"corbalc/internal/idl"
	"corbalc/internal/iiop"
	"corbalc/internal/orb"
)

const e13IDL = `
module e13 {
  interface Echo {
    long ping(in long x);
    // idempotent
    long cached_ping(in long x);
  };
};
`

// e13Servant answers ping/cached_ping with the identity.
type e13Servant struct{}

func (e13Servant) RepositoryID() string { return "IDL:e13/Echo:1.0" }

func (e13Servant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "ping", "cached_ping":
		x, err := args.ReadLong()
		if err != nil {
			return err
		}
		reply.WriteLong(x)
		return nil
	}
	return orb.BadOperation()
}

// E13Gateway measures the HTTP gateway against direct IIOP invocation.
func E13Gateway(sc Scale) *Table {
	t := &Table{
		ID:    "E13",
		Title: "Web gateway RPS vs direct IIOP vs cache hits over concurrency",
		Claim: "a runtime JSON/CDR gateway extends component reach to ORB-less clients at a bounded multiple of the native invocation cost, and the idempotent response cache claws the HTTP edge back above uncached throughput",
		Columns: []string{
			"concurrency", "direct-iiop/s", "gateway/s", "cached/s", "gw-cost-x", "hit-speedup-x",
		},
		Notes: "same backend object for all three paths; gw-cost-x = direct/gateway (HTTP+JSON edge overhead), hit-speedup-x = cached/gateway (what the response cache recovers)",
	}

	repo := idl.NewRepository()
	if err := repo.ParseString("e13.idl", e13IDL); err != nil {
		panic(err)
	}
	backend := orb.NewORB()
	srv, err := iiop.ListenAndActivate(backend, "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	backend.Activate("echo", e13Servant{})

	client := orb.NewORB()
	client.RegisterTransport(&iiop.Transport{})
	defer client.Shutdown()
	ref := client.NewRef(backend.NewIOR("IDL:e13/Echo:1.0", "echo"))

	gw, err := gateway.New(gateway.Options{
		ORB: client, Repo: repo,
		MaxInFlight: 1024, CacheTTL: time.Hour,
	})
	if err != nil {
		panic(err)
	}
	if err := gw.Register("echo", ref, "e13::Echo"); err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hsrv := &http.Server{Handler: gw.Handler()}
	var srvWG sync.WaitGroup
	srvWG.Add(1)
	go func() { defer srvWG.Done(); _ = hsrv.Serve(ln) }()
	defer srvWG.Wait()
	defer hsrv.Close()
	base := "http://" + ln.Addr().String()

	direct := func() error {
		return ref.InvokeContext(context.Background(), "ping",
			func(e *cdr.Encoder) { e.WriteLong(7) },
			func(d *cdr.Decoder) error { _, err := d.ReadLong(); return err })
	}
	tr := &http.Transport{MaxIdleConns: 128, MaxIdleConnsPerHost: 128}
	defer tr.CloseIdleConnections()
	hc := &http.Client{Transport: tr}
	post := func(op string) error {
		resp, err := hc.Post(base+"/obj/echo/"+op, "application/json", strings.NewReader(`[7]`))
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("%s: HTTP %d", op, resp.StatusCode)
		}
		return nil
	}

	window := sc.window(150 * time.Millisecond)
	for _, c := range []int{1, 8, 64} {
		directRate := measureRate(c, window, direct)
		gwRate := measureRate(c, window, func() error { return post("ping") })
		cachedRate := measureRate(c, window, func() error { return post("cached_ping") })
		costX, hitX := 0.0, 0.0
		if gwRate > 0 {
			costX = directRate / gwRate
			hitX = cachedRate / gwRate
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c),
			fmt.Sprintf("%.0f", directRate),
			fmt.Sprintf("%.0f", gwRate),
			fmt.Sprintf("%.0f", cachedRate),
			fmt.Sprintf("%.1f", costX),
			fmt.Sprintf("%.1f", hitX),
		})
	}
	return t
}

// measureRate drives fn from c goroutines for the window and returns
// completed calls per second. A call error aborts the cell at zero (a
// rate of 0 in the table is the failure signal; experiments have no
// testing.T to fail).
func measureRate(c int, window time.Duration, fn func() error) float64 {
	// Warm pools, dials and cache fills outside the window.
	for i := 0; i < 4; i++ {
		if err := fn(); err != nil {
			return 0
		}
	}
	var done atomic.Int64
	var failed atomic.Bool
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < c; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) && !failed.Load() {
				if err := fn(); err != nil {
					failed.Store(true)
					return
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if failed.Load() {
		return 0
	}
	return float64(done.Load()) / elapsed.Seconds()
}

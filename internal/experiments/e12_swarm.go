package experiments

// E12: the delta-gossip swarm experiment. The paper claims the
// reflective directory scales to "hundreds or thousands" of nodes
// (§2.4.3); a full-state exchange cannot — every membership change
// ships the whole Directory to every replica, so control traffic per
// node grows with the swarm. E12 measures both planes on the same
// workload: converge a swarm, observe steady-state control bandwidth,
// then kill 5% of the nodes and measure how long the survivors take to
// agree on the surviving membership and how many bytes that heal cost.
// The delta plane should hold bytes/node/s roughly flat as the swarm
// grows and cost at most a fifth of the full-state baseline at scale.

import (
	"fmt"
	"time"

	"corbalc"
	"corbalc/internal/cohesion"
	"corbalc/internal/simnet"
)

// SwarmResult is one E12 run: a swarm of Nodes on one discovery plane,
// measured in steady state and through a 5%-churn heal.
type SwarmResult struct {
	Nodes       int
	FullState   bool
	SteadyBps   float64       // steady-state control bytes/node/s
	HealTime    time.Duration // churn until survivors reconverge
	ChurnBps    float64       // bytes/node/s across the heal window
	DeltasSent  uint64        // root's directory deltas (0 on full-state)
	PullsServed uint64        // anti-entropy pulls answered swarm-wide
}

// swarmName mirrors the name format RunSwarm hands NewCluster.
func swarmName(i int) string { return fmt.Sprintf("s%04d", i) }

// swarmStamped reports whether every listed agent carries an identical
// directory stamp over exactly want members. Stamp is O(1) per agent,
// so the poll stays cheap at thousands of nodes (Directory() would
// clone the whole map every probe).
func swarmStamped(agents []*cohesion.Agent, want int) bool {
	e0, n0, x0 := agents[0].Stamp()
	if n0 != want {
		return false
	}
	for _, ag := range agents[1:] {
		if e, n, x := ag.Stamp(); e != e0 || n != n0 || x != x0 {
			return false
		}
	}
	return true
}

func waitSwarm(agents []*cohesion.Agent, want int, timeout time.Duration, what string) {
	deadline := time.Now().Add(timeout)
	for !swarmStamped(agents, want) {
		if time.Now().After(deadline) {
			// Diagnose: size histogram plus the protocol stats of the
			// outliers (nodes whose directory size disagrees with the
			// majority) — wedged-node bugs show up as frozen counters.
			counts := map[int]int{}
			for _, ag := range agents {
				_, n, _ := ag.Stamp()
				counts[n]++
			}
			major, majorN := 0, 0
			for n, c := range counts {
				if c > majorN {
					major, majorN = n, c
				}
			}
			outliers := ""
			for i, ag := range agents {
				if _, n, _ := ag.Stamp(); n != major && len(outliers) < 2000 {
					outliers += fmt.Sprintf("\n  agent %d (size %d): %+v", i, n, ag.Stats())
				}
			}
			panic(fmt.Sprintf("experiments: E12 %s: %d nodes never agreed (sizes %v)%s", what, want, counts, outliers))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// swarmInterval picks the status tick for an N-node swarm: 50ms for
// CI-sized swarms, stretched for thousand-node runs so the aggregate
// tick rate (N/interval) stays near what one or two cores can absorb.
// Both planes of a row share the interval, so the delta-vs-full-state
// ratio is measured on identical workloads.
func swarmInterval(nodes int) time.Duration {
	if nodes > 250 {
		return 200 * time.Millisecond
	}
	return 50 * time.Millisecond
}

// RunSwarm measures one (nodes, plane) cell of E12: steady-state
// bandwidth over the steady window, then heal time and bandwidth after
// killing 5% of the swarm (sparing the root group, so the experiment
// measures dissemination rather than root failover).
func RunSwarm(nodes int, fullState bool, steady time.Duration) SwarmResult {
	c, err := corbalc.NewCluster(nodes, "s%04d", simnet.Link{}, corbalc.Options{
		UpdateInterval: swarmInterval(nodes),
		GroupSize:      8,
		FailMultiple:   4,
		Cohesion:       corbalc.CohesionOptions{FullState: fullState},
	})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	agents := make([]*cohesion.Agent, len(c.Peers))
	for i, p := range c.Peers {
		agents[i] = p.Agent
	}
	waitSwarm(agents, nodes, 180*time.Second, "initial convergence")

	time.Sleep(500 * time.Millisecond) // settle post-join traffic
	c.Net.ResetStats()
	time.Sleep(steady)
	_, steadyBytes := c.Net.Totals()

	// Kill 5%, spread across groups.
	dir := agents[0].Directory()
	rootGroup := dir.RootGroup()
	var victims []int
	for i := 1; i < nodes && len(victims) < nodes/20; i += 17 {
		if dir.GroupOf(swarmName(i)) == rootGroup {
			continue
		}
		victims = append(victims, i)
	}
	dead := make(map[int]bool, len(victims))
	c.Net.ResetStats()
	start := time.Now()
	for _, i := range victims {
		dead[i] = true
		c.Net.SetDown(swarmName(i), true)
		agents[i].Stop()
	}
	survivors := make([]*cohesion.Agent, 0, nodes-len(victims))
	for i, ag := range agents {
		if !dead[i] {
			survivors = append(survivors, ag)
		}
	}
	waitSwarm(survivors, nodes-len(victims), 180*time.Second, "post-churn heal")
	heal := time.Since(start)
	_, churnBytes := c.Net.Totals()

	res := SwarmResult{
		Nodes:     nodes,
		FullState: fullState,
		SteadyBps: float64(steadyBytes) / float64(nodes) / steady.Seconds(),
		HealTime:  heal,
		ChurnBps:  float64(churnBytes) / float64(len(survivors)) / heal.Seconds(),
	}
	res.DeltasSent = agents[0].Stats().DeltasSent
	for _, ag := range survivors {
		res.PullsServed += ag.Stats().PullsServed
	}
	return res
}

// E12Swarm runs the swarm matrix: both planes at a CI-sized swarm and
// at a scaled one (250×Scale.Nodes — pass -scale 4 to corbalc-bench for
// the 1000-node acceptance row).
func E12Swarm(sc Scale) *Table {
	t := &Table{
		ID:    "E12",
		Title: "delta-gossip vs full-state discovery at swarm scale",
		Claim: "§2.4.3: the replicated directory scales to thousands of nodes — incremental deltas keep control bandwidth per node flat where full-state exchange grows with the swarm",
		Columns: []string{
			"nodes", "plane", "steady-B/node/s", "5%-churn heal", "churn-B/node/s", "deltas", "pulls",
		},
		Notes: "workload: converge, measure steady window, kill 5% (root group spared), measure until survivors reconverge; G=8, R=2, interval 50ms (200ms above 250 nodes)",
	}
	steady := sc.window(2 * time.Second)
	for _, n := range []int{60, sc.nodes(250)} {
		for _, plane := range []struct {
			name string
			full bool
		}{
			{"delta", false},
			{"fullstate", true},
		} {
			r := RunSwarm(n, plane.full, steady)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), plane.name,
				fmt.Sprintf("%.0f", r.SteadyBps),
				fmtDur(r.HealTime),
				fmt.Sprintf("%.0f", r.ChurnBps),
				fmt.Sprint(r.DeltasSent), fmt.Sprint(r.PullsServed),
			})
		}
	}
	return t
}

// Package experiments implements the evaluation harness of this
// reproduction. The source paper (ICPP 2001) is a requirements/design
// paper with no measured tables; each experiment below operationalises
// one of its stated requirements or protocol claims (see DESIGN.md §4
// for the mapping and EXPERIMENTS.md for recorded results). Every
// experiment builds its own cluster, runs a workload, and returns a
// Table that cmd/corbalc-bench prints and bench_test.go wraps in
// testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"corbalc"
	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/orb"
	"corbalc/internal/simnet"
	"corbalc/internal/xmldesc"
)

// Table is one experiment's result in printable form.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper statement being tested
	Columns []string
	Rows    [][]string
	Notes   string
}

// Render formats the table for terminals.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}

// Scale tunes experiment sizes: 1 is the quick default (CI-friendly),
// larger values grow node counts and workloads.
type Scale struct {
	// Nodes multiplies cluster sizes.
	Nodes int
	// Seconds multiplies measurement windows.
	Seconds float64
}

// DefaultScale is the quick configuration.
func DefaultScale() Scale { return Scale{Nodes: 1, Seconds: 1} }

func (s Scale) nodes(base int) int {
	if s.Nodes <= 1 {
		return base
	}
	return base * s.Nodes
}

func (s Scale) window(base time.Duration) time.Duration {
	if s.Seconds <= 0 {
		return base
	}
	return time.Duration(float64(base) * s.Seconds)
}

// All runs every experiment at the given scale.
func All(sc Scale) []*Table {
	return []*Table{
		E1Invocation(sc),
		E1bConcurrency(sc),
		E2Registry(sc),
		E3Consistency(sc),
		E4QueryHierarchy(sc),
		E5Failover(sc),
		E6Deployment(sc),
		E7Migration(sc),
		E8TinyDevices(sc),
		E9Grid(sc),
		E10Predictive(sc),
		E11FanOut(sc),
		E12Swarm(sc),
		E13Gateway(sc),
	}
}

// ---- shared building blocks ----

// echoServant answers the E1 micro-benchmarks.
type echoServant struct{}

func (echoServant) RepositoryID() string { return "IDL:bench/Echo:1.0" }

func (echoServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "null_op":
		return nil
	case "echo_long":
		v, err := args.ReadLong()
		if err != nil {
			return err
		}
		reply.WriteLong(v)
		return nil
	case "echo_struct":
		// (string, double, sequence<octet>)
		s, err := args.ReadString()
		if err != nil {
			return err
		}
		d, err := args.ReadDouble()
		if err != nil {
			return err
		}
		b, err := args.ReadOctetSeq()
		if err != nil {
			return err
		}
		reply.WriteString(s)
		reply.WriteDouble(d)
		reply.WriteOctetSeq(b)
		return nil
	}
	return orb.BadOperation()
}

// benchInstance is a generic component implementation with a provided
// port whose ops cover the experiment needs.
type benchInstance struct {
	component.Base
	frameKB int
}

func (bi *benchInstance) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "poke":
		reply.WriteString(bi.Ctx().NodeName())
		return nil
	case "frame":
		// Returns one decoded frame's worth of bytes: the MPEG workload.
		kb := bi.frameKB
		if kb <= 0 {
			kb = 64
		}
		reply.WriteOctetSeq(make([]byte, kb<<10))
		return nil
	case "chunk":
		// Simulated remote CPU time (see examples/grid).
		ms, err := args.ReadLong()
		if err != nil {
			return err
		}
		time.Sleep(time.Duration(ms) * time.Millisecond)
		reply.WriteLong(ms)
		return nil
	}
	return orb.BadOperation()
}

// benchImpls returns a registry with the bench component entry points.
func benchImpls() *component.Registry {
	reg := component.NewRegistry()
	reg.Register("bench/instance.New", func() component.Instance { return &benchInstance{} })
	reg.Register("bench/decoder.New", func() component.Instance { return &benchInstance{frameKB: 64} })
	return reg
}

// benchSpec builds a component providing one port under the given
// interface ID.
func benchSpec(name, ver, portID string, mutate func(*component.Spec)) *component.Component {
	s := &component.Spec{Name: name, Version: ver, Entrypoint: "bench/instance.New"}
	s.Provide("svc", portID)
	s.QoS = xmldesc.QoS{CPUMin: 0.05}
	if mutate != nil {
		mutate(s)
	}
	c, err := s.Build()
	if err != nil {
		panic(err) // specs are static; failure is a programming error
	}
	return c
}

// cluster builds a joined cluster with bench implementations.
func cluster(n int, link simnet.Link, mutate func(*corbalc.Options)) *corbalc.Cluster {
	opts := corbalc.Options{
		Impls:          benchImpls(),
		UpdateInterval: 50 * time.Millisecond,
		GroupSize:      8,
		// A generous failure timeout by default: most experiments
		// measure placement/query/bandwidth behaviour, and the whole
		// suite may share one CPU with other test binaries — a stalled
		// scheduler must not read as a dead node. E5, which measures
		// failure detection itself, overrides this.
		FailMultiple: 10,
	}
	if mutate != nil {
		mutate(&opts)
	}
	c, err := corbalc.NewCluster(n, "b%03d", link, opts)
	if err != nil {
		panic(err)
	}
	if err := c.WaitConverged(30 * time.Second); err != nil {
		counts := map[int]int{}
		for _, p := range c.Peers {
			counts[p.Agent.Directory().Len()]++
		}
		root := c.Peers[0].Agent.Directory()
		c.Close()
		panic(fmt.Sprintf("%v (dir lens %v, root epoch %d len %d groups %v)",
			err, counts, root.Epoch, root.Len(), root.Groups))
	}
	return c
}

// waitQuery polls until a peer sees at least want offers for key.
func waitQuery(p *corbalc.Peer, key string, want int) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if offers, err := p.Agent.QueryAll(context.Background(), key, "*"); err == nil && len(offers) >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	panic("experiments: offers for " + key + " never appeared")
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

package experiments

import (
	"context"
	"fmt"
	"time"

	"corbalc"
	"corbalc/internal/simnet"
)

// Ablations probe design choices DESIGN.md calls out rather than paper
// claims: the MRM fanout (group size) and the replication degree.

// A1Fanout sweeps the MRM group size at fixed network size, measuring
// both steady-state update traffic and remote-query cost. Small groups
// mean many groups (root fan-out grows); large groups mean fat MRMs
// (per-leader ingest grows) — the sweep exposes the trade-off behind
// the default of 8.
func A1Fanout(sc Scale) *Table {
	t := &Table{
		ID:      "A1",
		Title:   "ablation: MRM fanout (group size) at N=32",
		Claim:   "design choice: fanout trades root load against MRM ingest; query cost stays O(1)",
		Columns: []string{"fanout", "groups", "msgs/node/s", "query msgs", "query us"},
	}
	const n = 32
	window := sc.window(1 * time.Second)
	for _, g := range []int{2, 4, 8, 16} {
		c := cluster(n, simnet.Link{}, func(o *corbalc.Options) {
			o.GroupSize = g
			o.UpdateInterval = 50 * time.Millisecond
		})
		target := benchSpec("needle", "1.0.0", "IDL:bench/NeedleA:1.0", nil)
		if _, err := c.Peers[n-1].Node.InstallComponent(target); err != nil {
			panic(err)
		}
		querier := c.Peers[0]
		waitQuery(querier, "IDL:bench/NeedleA:1.0", 1)
		time.Sleep(200 * time.Millisecond)

		// Steady-state control traffic.
		c.Net.ResetStats()
		time.Sleep(window)
		msgs, _ := c.Net.Totals()
		msgsPerNode := float64(msgs) / float64(n) / window.Seconds()

		// Remote-group query cost.
		const queries = 20
		c.Net.ResetStats()
		start := time.Now()
		for i := 0; i < queries; i++ {
			offers, err := querier.Agent.Query(context.Background(), "IDL:bench/NeedleA:1.0", "*")
			if err != nil || len(offers) == 0 {
				panic(fmt.Sprintf("A1 fanout=%d: query failed (%v, %d offers)", g, err, len(offers)))
			}
		}
		el := time.Since(start)
		qmsgs, _ := c.Net.Totals()

		groups := 0
		for _, members := range querier.Agent.Directory().Groups {
			if len(members) > 0 {
				groups++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(g), fmt.Sprint(groups),
			fmt.Sprintf("%.1f", msgsPerNode),
			fmtF(float64(qmsgs) / queries),
			fmt.Sprintf("%.0f", float64(el.Microseconds())/queries),
		})
		c.Close()
	}
	return t
}

// A2Replicas sweeps the MRM replication degree R: more replicas cost
// proportionally more update traffic and buy failover headroom (R-1
// leader deaths survivable without a directory rebuild).
func A2Replicas(sc Scale) *Table {
	t := &Table{
		ID:      "A2",
		Title:   "ablation: MRM replication degree at N=16, G=8",
		Claim:   "design choice: update traffic grows linearly with R; queries survive R-1 replica deaths",
		Columns: []string{"replicas", "msgs/node/s", "queries ok after R-1 kills"},
	}
	const n = 16
	window := sc.window(1 * time.Second)
	for _, r := range []int{1, 2, 3} {
		c := cluster(n, simnet.Link{}, func(o *corbalc.Options) {
			o.GroupSize = 8
			o.Replicas = r
			o.UpdateInterval = 50 * time.Millisecond
		})
		target := benchSpec("needle", "1.0.0", "IDL:bench/NeedleB:1.0", nil)
		// Install inside the querier's group (group 0 holds peers 0..7).
		if _, err := c.Peers[6].Node.InstallComponent(target); err != nil {
			panic(err)
		}
		querier := c.Peers[7]
		waitQuery(querier, "IDL:bench/NeedleB:1.0", 1)

		c.Net.ResetStats()
		time.Sleep(window)
		msgs, _ := c.Net.Totals()
		msgsPerNode := float64(msgs) / float64(n) / window.Seconds()

		// Kill the first R-1 group MRM candidates; with the last replica
		// standing, queries must still resolve.
		for i := 0; i < r-1; i++ {
			c.Peers[i].Agent.Stop()
			c.Net.SetDown(c.Peers[i].Node.Name(), true)
		}
		ok := false
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			offers, err := querier.Agent.Query(context.Background(), "IDL:bench/NeedleB:1.0", "*")
			if err == nil && len(offers) == 1 {
				ok = true
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r),
			fmt.Sprintf("%.1f", msgsPerNode),
			fmt.Sprint(ok),
		})
		c.Close()
	}
	return t
}

package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"corbalc"
	"corbalc/internal/cdr"
	"corbalc/internal/cohesion"
	"corbalc/internal/iiop"
	"corbalc/internal/node"
	"corbalc/internal/orb"
	"corbalc/internal/simnet"
)

// E1Invocation measures raw invocation cost over the three transports —
// requirement 1 ("simplicity and performance ... it must be
// lightweight").
func E1Invocation(sc Scale) *Table {
	iters := 2000 * sc.nodes(1)
	t := &Table{
		ID:      "E1",
		Title:   "invocation latency by transport",
		Claim:   "Req.1: the model is lightweight — invocations cost microseconds, not milliseconds",
		Columns: []string{"transport", "operation", "calls", "us/call", "calls/s"},
	}

	payload := make([]byte, 1024)
	ops := []struct {
		label string
		name  string
		args  orb.Marshaller
		res   orb.Unmarshaller
	}{
		{"null_op", "null_op", nil, nil},
		{"echo_long", "echo_long",
			func(e *cdr.Encoder) { e.WriteLong(42) },
			func(d *cdr.Decoder) error { _, err := d.ReadLong(); return err }},
		{"echo_struct(1KiB)", "echo_struct",
			func(e *cdr.Encoder) { e.WriteString("id"); e.WriteDouble(3.14); e.WriteOctetSeq(payload) },
			func(d *cdr.Decoder) error {
				if _, err := d.ReadString(); err != nil {
					return err
				}
				if _, err := d.ReadDouble(); err != nil {
					return err
				}
				_, err := d.ReadOctetSeq()
				return err
			}},
	}

	measure := func(transport string, ref *orb.ObjectRef) {
		for _, op := range ops {
			// Warm up the path (dial, caches).
			if err := ref.InvokeContext(context.Background(), op.name, op.args, op.res); err != nil {
				panic(fmt.Sprintf("E1 %s/%s: %v", transport, op.name, err))
			}
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := ref.InvokeContext(context.Background(), op.name, op.args, op.res); err != nil {
					panic(err)
				}
			}
			el := time.Since(start)
			t.Rows = append(t.Rows, []string{
				transport, op.label, fmt.Sprint(iters),
				fmtF(float64(el.Microseconds()) / float64(iters)),
				fmt.Sprintf("%.0f", float64(iters)/el.Seconds()),
			})
		}
	}

	// Collocated: client and servant share one ORB.
	local := orb.NewORB()
	measure("collocated", local.NewRef(local.Activate("echo", echoServant{})))

	// Virtual network, zero injected delay: pure stack cost.
	net := simnet.New(simnet.Link{})
	so := orb.NewORB()
	co := orb.NewORB()
	if err := net.Attach("s", so); err != nil {
		panic(err)
	}
	if err := net.Attach("c", co); err != nil {
		panic(err)
	}
	measure("simnet", co.NewRef(so.Activate("echo", echoServant{})))

	// Real IIOP over TCP loopback.
	serverORB := orb.NewORB()
	srv, err := iiop.ListenAndActivate(serverORB, "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	clientORB := orb.NewORB()
	clientORB.RegisterTransport(&iiop.Transport{})
	defer clientORB.Shutdown()
	measure("iiop/tcp", clientORB.NewRef(serverORB.Activate("echo", echoServant{})))

	return t
}

// E1bConcurrency measures invocation throughput under caller fan-in —
// the concurrency half of requirement 1. The pooled rows exercise the
// whole concurrent-throughput layer (striped connection pool, write
// coalescing, bounded dispatch — DESIGN.md §10); the "single" row pins
// one multiplexed connection with the timed coalescing window off,
// i.e. the pre-pool architecture, so the table shows what the layer
// buys at the same fan-in.
func E1bConcurrency(sc Scale) *Table {
	total := 4000 * sc.nodes(1)
	t := &Table{
		ID:      "E1b",
		Title:   "concurrent invocation throughput by caller fan-in",
		Claim:   "Req.1: fan-in multiplies calls/s instead of serialising on the wire",
		Columns: []string{"transport", "callers", "calls", "calls/s", "vs C=1"},
	}

	measure := func(transport string, ref *orb.ObjectRef, callers int, base float64) float64 {
		// Warm the path (dial, pools, caches) before timing.
		for i := 0; i < 8; i++ {
			if err := ref.InvokeContext(context.Background(), "null_op", nil, nil); err != nil {
				panic(fmt.Sprintf("E1b %s warm: %v", transport, err))
			}
		}
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < callers; g++ {
			n := total / callers
			if g < total%callers {
				n++
			}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if err := ref.InvokeContext(context.Background(), "null_op", nil, nil); err != nil {
						panic(err)
					}
				}
			}(n)
		}
		wg.Wait()
		rate := float64(total) / time.Since(start).Seconds()
		rel := "1.00x"
		if base > 0 {
			rel = fmt.Sprintf("%.2fx", rate/base)
		}
		t.Rows = append(t.Rows, []string{
			transport, fmt.Sprint(callers), fmt.Sprint(total),
			fmt.Sprintf("%.0f", rate), rel,
		})
		return rate
	}

	// Real IIOP over TCP loopback with the full layer on.
	serverORB := orb.NewORB()
	srv, err := iiop.ListenAndActivate(serverORB, "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	key := serverORB.Activate("echo", echoServant{})

	pooled := orb.NewORB()
	pooled.RegisterTransport(&iiop.Transport{})
	base := measure("iiop/tcp", pooled.NewRef(key), 1, 0)
	measure("iiop/tcp", pooled.NewRef(key), 8, base)
	measure("iiop/tcp", pooled.NewRef(key), 64, base)
	pooled.Shutdown()

	// Same server, one connection, timed coalescing off: the pre-pool
	// architecture at the same fan-in.
	single := orb.NewORB()
	single.RegisterTransport(&iiop.Transport{PoolSize: -1, CoalesceWindow: -1})
	measure("iiop/tcp-single", single.NewRef(key), 64, base)
	single.Shutdown()

	// Virtual network: the same fan-in with no socket underneath.
	vnet := simnet.New(simnet.Link{})
	so := orb.NewORB()
	co := orb.NewORB()
	if err := vnet.Attach("s", so); err != nil {
		panic(err)
	}
	if err := vnet.Attach("c", co); err != nil {
		panic(err)
	}
	nref := co.NewRef(so.Activate("echo", echoServant{}))
	nbase := measure("simnet", nref, 1, 0)
	measure("simnet", nref, 64, nbase)

	return t
}

// E2Registry measures the reflective node services: component install
// rate through the acceptor and query rate through the registry, as the
// repository grows (Fig. 1 behaviour under load).
func E2Registry(sc Scale) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "node reflection: install and query throughput vs repository size",
		Claim:   "Fig.1/Req.5: components installed at run time become instantly and cheaply queryable",
		Columns: []string{"installed", "install/s", "query/s", "found"},
	}
	for _, count := range []int{10, 100, 400 * sc.nodes(1)} {
		p := corbalc.NewPeer(fmt.Sprintf("e2-%d", count), corbalc.Options{Impls: benchImpls()})
		p.Bootstrap()
		o := p.Node.ORB()
		acc := o.NewRef(p.Node.AcceptorIOR())

		// Pre-build packages so the measurement covers install, not
		// packaging.
		pkgs := make([][]byte, count)
		for i := range pkgs {
			c := benchSpec(fmt.Sprintf("comp%04d", i), "1.0.0",
				fmt.Sprintf("IDL:bench/Svc%04d:1.0", i), nil)
			pkgs[i] = c.Package().Bytes()
		}
		start := time.Now()
		for _, pkg := range pkgs {
			err := acc.InvokeContext(context.Background(), "install",
				func(e *cdr.Encoder) { e.WriteOctetSeq(pkg) },
				func(d *cdr.Decoder) error { _, err := d.ReadString(); return err })
			if err != nil {
				panic(err)
			}
		}
		installRate := float64(count) / time.Since(start).Seconds()

		reg := o.NewRef(p.Node.RegistryIOR())
		queries := 500
		found := 0
		start = time.Now()
		for i := 0; i < queries; i++ {
			target := fmt.Sprintf("IDL:bench/Svc%04d:1.0", i%count)
			var offers []*node.Offer
			err := reg.InvokeContext(context.Background(), "query",
				func(e *cdr.Encoder) { e.WriteString(target); e.WriteString("*") },
				func(d *cdr.Decoder) error {
					var err error
					offers, err = node.UnmarshalOffers(d)
					return err
				})
			if err != nil {
				panic(err)
			}
			if len(offers) == 1 {
				found++
			}
		}
		queryRate := float64(queries) / time.Since(start).Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(count),
			fmt.Sprintf("%.0f", installRate),
			fmt.Sprintf("%.0f", queryRate),
			fmt.Sprintf("%d/%d", found, queries),
		})
		p.Close()
	}
	return t
}

// E3Consistency compares control-plane bandwidth per node under soft
// (periodic updates to MRM replicas) and strong (change-flood to all)
// consistency while every node changes state at a fixed rate.
func E3Consistency(sc Scale) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "control bandwidth per node: soft vs strong consistency",
		Claim:   "§2.4.3: soft consistency leads to lower bandwidth utilization and better scalability",
		Columns: []string{"nodes", "mode", "msgs/node/s", "bytes/node/s"},
		Notes:   "workload: every node makes one reflective change per 100ms; soft interval 50ms, R=2",
	}
	window := sc.window(1500 * time.Millisecond)
	for _, n := range []int{8, 24, 48 * sc.nodes(1)} {
		for _, mode := range []struct {
			name string
			mut  func(*corbalc.Options)
		}{
			{"soft", nil},
			{"strong", func(o *corbalc.Options) { o.Mode = cohesion.Strong }},
		} {
			c := cluster(n, simnet.Link{}, mode.mut)
			stopCh := make(chan struct{})
			for _, p := range c.Peers {
				go func(p *corbalc.Peer) {
					tick := time.NewTicker(100 * time.Millisecond)
					defer tick.Stop()
					for {
						select {
						case <-stopCh:
							return
						case <-tick.C:
							p.Node.Touch()
						}
					}
				}(p)
			}
			time.Sleep(300 * time.Millisecond) // settle
			c.Net.ResetStats()
			time.Sleep(window)
			msgs, bytes := c.Net.Totals()
			close(stopCh)
			secs := window.Seconds()
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), mode.name,
				fmt.Sprintf("%.1f", float64(msgs)/float64(n)/secs),
				fmt.Sprintf("%.0f", float64(bytes)/float64(n)/secs),
			})
			c.Close()
		}
	}
	return t
}

// E4QueryHierarchy compares the message cost of resolving a component
// via the MRM hierarchy against the flat broadcast baseline.
func E4QueryHierarchy(sc Scale) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "distributed query cost: hierarchical MRMs vs flat broadcast",
		Claim:   "§2.4.3: the hierarchical protocol reduces network load and exploits locality",
		Columns: []string{"nodes", "strategy", "msgs/query", "us/query", "found"},
		Notes:   "querier is a plain member; hier-local: target in its group; hier-remote: target in a far group; fanout G=8",
	}
	for _, n := range []int{16, 48, 64 * sc.nodes(1)} {
		c := cluster(n, simnet.Link{}, nil)
		// Remote target: on the last node (a different group from the
		// querying first node). Local target: on the querier's group
		// neighbour, to expose the locality shortcut.
		remote := benchSpec("needle", "1.0.0", "IDL:bench/Needle:1.0", nil)
		if _, err := c.Peers[n-1].Node.InstallComponent(remote); err != nil {
			panic(err)
		}
		local := benchSpec("nearby", "1.0.0", "IDL:bench/Nearby:1.0", nil)
		if _, err := c.Peers[1].Node.InstallComponent(local); err != nil {
			panic(err)
		}
		// Query from a plain member (not an MRM candidate, not the
		// root), so every hop of the protocol costs real messages.
		querier := c.Peers[3]
		waitQuery(querier, "IDL:bench/Needle:1.0", 1)
		waitQuery(querier, "IDL:bench/Nearby:1.0", 1)
		time.Sleep(200 * time.Millisecond) // let summaries settle

		const queries = 30
		run := func(strategy, portID string, q func(string) int) {
			c.Net.ResetStats()
			start := time.Now()
			found := 0
			for i := 0; i < queries; i++ {
				found += q(portID)
			}
			el := time.Since(start)
			msgs, _ := c.Net.Totals()
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), strategy,
				fmtF(float64(msgs) / queries),
				fmt.Sprintf("%.0f", float64(el.Microseconds())/queries),
				fmt.Sprintf("%d/%d", found, queries),
			})
		}
		hier := func(portID string) int {
			offers, err := querier.Agent.Query(context.Background(), portID, "*")
			if err != nil || len(offers) == 0 {
				return 0
			}
			return 1
		}
		run("hier-local", "IDL:bench/Nearby:1.0", hier)
		run("hier-remote", "IDL:bench/Needle:1.0", hier)
		run("flat", "IDL:bench/Needle:1.0", func(portID string) int {
			offers, err := querier.Agent.QueryFlat(context.Background(), portID, "*")
			if err != nil || len(offers) == 0 {
				return 0
			}
			return 1
		})
		c.Close()
	}
	return t
}

// E5Failover measures MRM failure handling: query availability through
// the peer replica immediately after the leader dies, and the time until
// the soft-consistency timeout expels the dead node from the directory.
func E5Failover(sc Scale) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "MRM failover and failure detection vs keep-alive interval",
		Claim:   "§2.4.3: peer-replicated MRMs adapt to failures; timeouts catch silent nodes",
		Columns: []string{"interval", "first query after kill", "query ok", "expelled after"},
		Notes:   "G=4, R=2, FailMultiple=3; victim is the querier's group MRM leader",
	}
	for _, interval := range []time.Duration{25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond} {
		c := cluster(8, simnet.Link{}, func(o *corbalc.Options) {
			o.GroupSize = 4
			o.UpdateInterval = interval
			o.FailMultiple = 3 // the quantity under test
		})
		// Group 1 = peers 4..7; its MRM leader is peer 4. Install the
		// target on peer 6, query from peer 5.
		target := benchSpec("needle", "1.0.0", "IDL:bench/Needle:1.0", nil)
		if _, err := c.Peers[6].Node.InstallComponent(target); err != nil {
			panic(err)
		}
		querier := c.Peers[5]
		waitQuery(querier, "IDL:bench/Needle:1.0", 1)

		victim := c.Peers[4]
		victim.Agent.Stop()
		c.Net.SetDown(victim.Node.Name(), true)
		killAt := time.Now()

		// Query availability: the very next query must succeed through
		// the replica (after timing out on the corpse).
		start := time.Now()
		offers, err := querier.Agent.Query(context.Background(), "IDL:bench/Needle:1.0", "*")
		firstQuery := time.Since(start)
		ok := err == nil && len(offers) == 1

		// Detection: the root expels the dead node once updates stop.
		expelled := time.Duration(0)
		deadline := time.Now().Add(30 * interval * 10)
		for time.Now().Before(deadline) {
			if c.Peers[0].Agent.Directory().Len() == 7 {
				expelled = time.Since(killAt)
				break
			}
			time.Sleep(interval / 4)
		}
		t.Rows = append(t.Rows, []string{
			fmtDur(interval), fmtDur(firstQuery), fmt.Sprint(ok), fmtDur(expelled),
		})
		c.Close()
	}
	return t
}

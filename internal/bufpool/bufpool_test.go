package bufpool

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {256, 0}, {257, 1}, {1024, 1}, {1025, 2},
		{1 << 20, len(classSizes) - 1}, {1<<20 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFloorClassFor(t *testing.T) {
	cases := []struct{ c, want int }{
		{0, -1}, {255, -1}, {256, 0}, {1023, 0}, {1024, 1},
		{1 << 20, len(classSizes) - 1}, {2 << 20, len(classSizes) - 1},
	}
	for _, c := range cases {
		if got := floorClassFor(c.c); got != c.want {
			t.Errorf("floorClassFor(%d) = %d, want %d", c.c, got, c.want)
		}
	}
}

// TestGetCapacityInvariant pins the invariant Put/Get rely on: any
// buffer served for n has cap ≥ n, even when the pool holds recycled
// buffers whose capacity is not an exact class size.
func TestGetCapacityInvariant(t *testing.T) {
	// File an odd-capacity buffer (cap 300 → class 256).
	Put(make([]byte, 300))
	for _, n := range []int{1, 100, 256, 300, 1024, 5000} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len = %d", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("Get(%d): cap = %d < n", n, cap(b))
		}
		Put(b)
	}
}

func TestOversizedBypassesPool(t *testing.T) {
	b := Get(2 << 20)
	if len(b) != 2<<20 {
		t.Fatalf("len = %d", len(b))
	}
	Put(b) // must not panic; dropped
}

func TestPutNil(t *testing.T) { Put(nil) }

func TestCopy(t *testing.T) {
	src := []byte("retained payload")
	cp := Copy(src)
	if string(cp) != string(src) {
		t.Fatalf("Copy = %q", cp)
	}
	src[0] = 'X'
	if cp[0] == 'X' {
		t.Fatal("Copy aliases its source")
	}
	Put(cp)
}

// TestConcurrentGetPut exercises the pool under the race detector.
func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sizes := []int{16, 700, 5000, 70000}
			for i := 0; i < 500; i++ {
				n := sizes[(seed+i)%len(sizes)]
				b := Get(n)
				for j := 0; j < len(b); j += 512 {
					b[j] = byte(seed)
				}
				Put(b)
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkGetPut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Get(1024)
		Put(buf)
	}
}

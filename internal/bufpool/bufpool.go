// Package bufpool provides size-classed free lists for the transient
// byte buffers of the invocation hot path: GIOP frame bodies, CDR
// encoder scratch, and fragment reassembly staging.
//
// Ownership discipline (see DESIGN.md §9): a buffer obtained from Get is
// owned by exactly one holder at a time. Put transfers ownership back to
// the pool — after Put the caller must not read, write, or retain any
// slice aliasing the buffer. Code that hands a pooled buffer across an
// API boundary must either transfer ownership explicitly (the callee
// releases) or copy. When ownership is in doubt, leak the buffer to the
// garbage collector instead of calling Put: a leaked buffer costs one
// allocation, a double-released buffer corrupts an unrelated message.
package bufpool

import "sync"

// classSizes are the pool size classes in ascending order. Get(n) serves
// n ≤ 1 MiB from the smallest class that fits; larger requests fall
// through to the allocator and are dropped again by Put, so a single
// giant package transfer cannot pin megabytes in the free lists.
var classSizes = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// pools[i] holds *[]byte entries with cap ≥ classSizes[i].
var pools [len(classSizes)]sync.Pool

// headerPool recycles the *[]byte boxes that carry slices in and out of
// pools, so a Get/Put cycle allocates nothing once warm.
var headerPool = sync.Pool{New: func() any { return new([]byte) }}

// classFor returns the index of the smallest class that can serve n, or
// -1 when n exceeds the largest class.
func classFor(n int) int {
	for i, s := range classSizes {
		if n <= s {
			return i
		}
	}
	return -1
}

// floorClassFor returns the index of the largest class with size ≤ c, or
// -1 when c is below the smallest class.
func floorClassFor(c int) int {
	idx := -1
	for i, s := range classSizes {
		if s <= c {
			idx = i
		} else {
			break
		}
	}
	return idx
}

// Get returns a buffer of length n. Its capacity is at least the size of
// n's class, so the caller may re-slice up to cap(b). The contents are
// unspecified (recycled buffers are not zeroed).
func Get(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		return make([]byte, n)
	}
	if hp, _ := pools[ci].Get().(*[]byte); hp != nil {
		b := (*hp)[:n]
		*hp = nil
		headerPool.Put(hp)
		return b
	}
	return make([]byte, n, classSizes[ci])
}

// Put returns b to the free list of the largest class its capacity
// covers. Buffers below the smallest class or above the largest are
// dropped (left to the garbage collector). Put(nil) is a no-op.
func Put(b []byte) {
	c := cap(b)
	ci := floorClassFor(c)
	if ci < 0 || c > classSizes[len(classSizes)-1] {
		return
	}
	hp := headerPool.Get().(*[]byte)
	*hp = b[:0:c]
	pools[ci].Put(hp)
}

// Copy returns a pooled buffer holding a copy of src. It is the
// copy-on-retain helper for code that must keep request or reply bytes
// beyond the owner's release point.
func Copy(src []byte) []byte {
	b := Get(len(src))
	copy(b, src)
	return b
}

package container

import (
	"fmt"

	"corbalc/internal/cdr"
	"corbalc/internal/ior"
	"corbalc/internal/xmldesc"
)

// Capsule is a migration/replication snapshot of a component instance:
// everything another node needs (besides the component package itself)
// to resume the instance's execution — the paper's "the component can be
// migrated into another host (in its binary form), instantiated, and
// then given the previous instance state to continue its execution"
// (§2.2). Capsules are CDR-encoded so they travel inside ordinary GIOP
// requests.
type Capsule struct {
	ComponentID  string
	InstanceName string
	State        []byte
	DynamicPorts []xmldesc.Port
	Connections  map[string]*ior.IOR // uses port -> provider
}

// Encode serialises the capsule.
func (cp *Capsule) Encode(e *cdr.Encoder) {
	e.WriteString(cp.ComponentID)
	e.WriteString(cp.InstanceName)
	e.WriteOctetSeq(cp.State)
	e.WriteULong(uint32(len(cp.DynamicPorts)))
	for _, p := range cp.DynamicPorts {
		e.WriteString(p.Name)
		e.WriteString(string(p.Kind))
		e.WriteString(p.RepoID)
		e.WriteBool(p.Optional)
	}
	e.WriteULong(uint32(len(cp.Connections)))
	for port, target := range cp.Connections {
		e.WriteString(port)
		target.Marshal(e)
	}
}

// Bytes renders the capsule as a standalone CDR encapsulation.
func (cp *Capsule) Bytes() []byte {
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.WriteEncapsulation(cdr.LittleEndian, cp.Encode)
	return e.Bytes()
}

// DecodeCapsule parses a capsule from a decoder positioned at its start.
func DecodeCapsule(d *cdr.Decoder) (*Capsule, error) {
	cp := &Capsule{Connections: make(map[string]*ior.IOR)}
	var err error
	if cp.ComponentID, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("capsule: component id: %w", err)
	}
	if cp.InstanceName, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("capsule: instance name: %w", err)
	}
	if cp.State, err = d.ReadOctetSeq(); err != nil {
		return nil, fmt.Errorf("capsule: state: %w", err)
	}
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining())/4 < n {
		return nil, cdr.ErrTooLong
	}
	for i := uint32(0); i < n; i++ {
		var p xmldesc.Port
		if p.Name, err = d.ReadString(); err != nil {
			return nil, err
		}
		kind, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		p.Kind = xmldesc.PortKind(kind)
		if p.RepoID, err = d.ReadString(); err != nil {
			return nil, err
		}
		if p.Optional, err = d.ReadBool(); err != nil {
			return nil, err
		}
		cp.DynamicPorts = append(cp.DynamicPorts, p)
	}
	m, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if uint32(d.Remaining())/4 < m {
		return nil, cdr.ErrTooLong
	}
	for i := uint32(0); i < m; i++ {
		port, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		target, err := ior.Unmarshal(d)
		if err != nil {
			return nil, err
		}
		cp.Connections[port] = target
	}
	return cp, nil
}

// DecodeCapsuleBytes parses a capsule from a standalone encapsulation
// produced by Bytes.
func DecodeCapsuleBytes(raw []byte) (*Capsule, error) {
	d, err := cdr.NewDecoder(raw, cdr.LittleEndian).ReadEncapsulation()
	if err != nil {
		return nil, err
	}
	return DecodeCapsule(d)
}

// Package container implements the CORBA-LC container framework (paper
// §2.2): the run-time environment component instances live in. The
// container is "the instances' view of the world" — it activates and
// passivates them, satisfies their required ports by collaborating with
// its node, exposes their provided ports and their reflective
// equivalent interface as CORBA objects, runs the automatically
// generated factory for the component type, enforces the QoS admission
// envelope, and captures/restores instance state for migration and
// replication.
package container

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/events"
	"corbalc/internal/ior"
	"corbalc/internal/orb"
	"corbalc/internal/xmldesc"
)

// Host is the container's view of its node: the services the node
// contributes to the component framework. (The node package implements
// it; the indirection keeps the dependency graph acyclic and lets tests
// run containers without a full node.)
type Host interface {
	// NodeName identifies the hosting node.
	NodeName() string
	// ORB returns the node's object request broker.
	ORB() *orb.ORB
	// Hub returns the node's event channel hub.
	Hub() *events.Hub
	// Admit reserves the QoS envelope for a new instance, returning a
	// release function, or an error when the node cannot host it.
	Admit(q xmldesc.QoS) (release func(), err error)
	// ResolveDependency finds a provider for a required uses port,
	// searching the whole network through the Distributed Registry. The
	// context bounds the network-wide search.
	ResolveDependency(ctx context.Context, p xmldesc.Port) (*ior.IOR, error)
}

// Errors returned by the container.
var (
	ErrNoInstance   = errors.New("container: no such instance")
	ErrDuplicate    = errors.New("container: instance name in use")
	ErrMaxInstances = errors.New("container: instance limit reached")
	ErrNotMovable   = errors.New("container: component is not movable")
	ErrPassivated   = errors.New("container: instance is passivated")
	ErrAdmission    = errors.New("container: QoS admission failed")
)

// Container hosts the instances of one component on one node.
type Container struct {
	host Host
	comp *component.Component
	reg  *component.Registry

	mu        sync.Mutex
	instances map[string]*ManagedInstance
	seq       int
	factory   *ior.IOR
	shared    *ManagedInstance // lifecycle "service": one shared instance
}

// knownFrameworkServices are the container services a component type may
// declare in its <framework> element (§2.1.2 "required framework
// services"); a type demanding anything else cannot be hosted.
var knownFrameworkServices = map[string]bool{
	"events":      true,
	"migration":   true,
	"replication": true,
	"lifecycle":   true,
}

// ErrUnknownService reports a framework-service demand this container
// cannot satisfy.
var ErrUnknownService = errors.New("container: unknown framework service required")

// New builds a container for comp, resolving implementations through
// reg. It activates the component's factory servant immediately.
func New(host Host, comp *component.Component, reg *component.Registry) (*Container, error) {
	if host == nil || comp == nil || reg == nil {
		return nil, errors.New("container: nil host, component or registry")
	}
	for _, svc := range comp.Type().Framework {
		if !knownFrameworkServices[svc.Name] {
			return nil, fmt.Errorf("%w: %q (component %s)", ErrUnknownService, svc.Name, comp.ID())
		}
	}
	c := &Container{
		host:      host,
		comp:      comp,
		reg:       reg,
		instances: make(map[string]*ManagedInstance),
	}
	key := "factory/" + comp.ID().String()
	c.factory = host.ORB().Activate(key, &factoryServant{c: c})
	return c, nil
}

// Component returns the component this container hosts.
func (c *Container) Component() *component.Component { return c.comp }

// FactoryIOR returns the reference of the component's factory — the
// CORBA interface clients use to create instances (§2.1.2: "clients can
// search for a factory of the required component and ask it for the
// creation of a component instance").
func (c *Container) FactoryIOR() *ior.IOR { return c.factory }

// FactoryRepoID is the repository ID of generated factories.
const FactoryRepoID = "IDL:corbalc/ComponentFactory:1.0"

// Create instantiates the component under the given instance name (""
// auto-names it). It enforces the factory policy, admits the QoS
// envelope, wires event ports and activates the instance.
func (c *Container) Create(name string) (*ManagedInstance, error) {
	ct := c.comp.Type()

	name, existing, err := c.reserveName(name)
	if err != nil {
		return nil, err
	}
	if existing != nil {
		return existing, nil
	}

	release, err := c.host.Admit(ct.QoS)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAdmission, err)
	}

	// Resolve the implementation entry point for this node's platform;
	// the Spec/package pipeline guarantees a GoRegistered code element.
	im, _, err := c.comp.Package().Binary("any", "any", "corbalc")
	if err != nil {
		im, _, err = c.comp.Package().Binary("", "", "")
	}
	if err != nil {
		release()
		return nil, err
	}
	inst, err := c.reg.New(im.Code.EntryPoint)
	if err != nil {
		release()
		return nil, err
	}

	mi := newManagedInstance(c, name, inst, release)
	if err := mi.activate(); err != nil {
		release()
		return nil, err
	}

	if err := c.adoptInstance(name, mi, ct.Factory.Lifecycle == "service"); err != nil {
		mi.teardown()
		return nil, err
	}
	return mi, nil
}

// reserveName enforces the factory policy under the lock: it returns the
// shared service instance when one already exists, or the (possibly
// auto-generated) name the new instance will be created under.
func (c *Container) reserveName(name string) (string, *ManagedInstance, error) {
	ct := c.comp.Type()
	c.mu.Lock()
	defer c.mu.Unlock()
	if ct.Factory.Lifecycle == "service" && c.shared != nil {
		return "", c.shared, nil
	}
	if name == "" {
		c.seq++
		name = fmt.Sprintf("%s-%d", c.comp.Name(), c.seq)
	}
	if _, dup := c.instances[name]; dup {
		return "", nil, fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	if max := ct.Factory.MaxInstances; max > 0 && len(c.instances) >= max {
		return "", nil, fmt.Errorf("%w (%d)", ErrMaxInstances, max)
	}
	return name, nil, nil
}

// adoptInstance publishes the activated instance unless a concurrent
// Create took the name while the lock was released for admission and
// activation.
func (c *Container) adoptInstance(name string, mi *ManagedInstance, service bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.instances[name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	c.instances[name] = mi
	if service && c.shared == nil {
		c.shared = mi
	}
	return nil
}

// Instance returns a live instance by name.
func (c *Container) Instance(name string) (*ManagedInstance, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mi, ok := c.instances[name]
	return mi, ok
}

// Instances snapshots the live instances.
func (c *Container) Instances() []*ManagedInstance {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*ManagedInstance, 0, len(c.instances))
	for _, mi := range c.instances {
		out = append(out, mi)
	}
	return out
}

// Destroy passivates and removes an instance.
func (c *Container) Destroy(name string) error {
	c.mu.Lock()
	mi, ok := c.instances[name]
	if ok {
		delete(c.instances, name)
		if c.shared == mi {
			c.shared = nil
		}
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	mi.teardown()
	return nil
}

// Close destroys all instances and deactivates the factory.
func (c *Container) Close() {
	c.mu.Lock()
	insts := c.instances
	c.instances = make(map[string]*ManagedInstance)
	c.shared = nil
	c.mu.Unlock()
	for _, mi := range insts {
		mi.teardown()
	}
	c.host.ORB().Adapter().Deactivate("factory/" + c.comp.ID().String())
}

// Migrate passivates an instance, captures its state and connections
// into a capsule, and removes it from this container. The capsule can be
// shipped (with the component package if needed) and handed to
// Restore on another node — the paper's migration story (§2.2).
func (c *Container) Migrate(name string) (*Capsule, error) {
	if !c.comp.Movable() {
		return nil, ErrNotMovable
	}
	c.mu.Lock()
	mi, ok := c.instances[name]
	if ok {
		delete(c.instances, name)
		if c.shared == mi {
			c.shared = nil
		}
	}
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	capsule, err := mi.capture()
	mi.teardown()
	if err != nil {
		return nil, err
	}
	return capsule, nil
}

// Restore re-creates an instance from a migration capsule: a fresh
// implementation object receives the captured state, the dynamic ports
// are re-added and connections re-established.
func (c *Container) Restore(capsule *Capsule) (*ManagedInstance, error) {
	if capsule.ComponentID != c.comp.ID().String() {
		return nil, fmt.Errorf("container: capsule for %s offered to %s",
			capsule.ComponentID, c.comp.ID())
	}
	mi, err := c.Create(capsule.InstanceName)
	if err != nil {
		return nil, err
	}
	if err := mi.inst.RestoreState(capsule.State); err != nil {
		_ = c.Destroy(capsule.InstanceName)
		return nil, err
	}
	for _, p := range capsule.DynamicPorts {
		if err := mi.ports.Add(p); err != nil {
			_ = c.Destroy(capsule.InstanceName)
			return nil, err
		}
		if p.Kind == xmldesc.PortProvides {
			mi.activateProvidedPort(p.Name)
		}
		if p.Kind == xmldesc.PortConsumes {
			mi.subscribeConsumesPort(p)
		}
	}
	for port, target := range capsule.Connections {
		if err := mi.Connect(port, target); err != nil {
			_ = c.Destroy(capsule.InstanceName)
			return nil, err
		}
	}
	return mi, nil
}

// factoryServant is the automatically generated factory implementation
// (§2.1.2: "factory properties ... allow to automatically generate the
// factory code for this type of component").
type factoryServant struct{ c *Container }

func (f *factoryServant) RepositoryID() string { return FactoryRepoID }

func (f *factoryServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "create":
		name, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		mi, err := f.c.Create(name)
		if err != nil {
			return &orb.UserException{
				ID:      "IDL:corbalc/ComponentFactory/CreateFailed:1.0",
				Payload: func(e *cdr.Encoder) { e.WriteString(err.Error()) },
			}
		}
		mi.EquivalentIOR().Marshal(reply)
		return nil
	case "destroy":
		name, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		if err := f.c.Destroy(name); err != nil {
			return &orb.UserException{
				ID:      "IDL:corbalc/ComponentFactory/NoSuchInstance:1.0",
				Payload: func(e *cdr.Encoder) { e.WriteString(err.Error()) },
			}
		}
		return nil
	case "list":
		insts := f.c.Instances()
		names := make([]string, 0, len(insts))
		for _, mi := range insts {
			names = append(names, mi.Name())
		}
		reply.WriteStringSeq(names)
		return nil
	case "component_id":
		reply.WriteString(f.c.comp.ID().String())
		return nil
	}
	return orb.BadOperation()
}

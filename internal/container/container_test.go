package container

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/events"
	"corbalc/internal/ior"
	"corbalc/internal/orb"
	"corbalc/internal/xmldesc"
)

// fakeHost satisfies Host without a full node.
type fakeHost struct {
	name     string
	orb      *orb.ORB
	hub      *events.Hub
	cpuFree  float64
	resolver map[string]*ior.IOR // port repoID -> provider
	admitted atomic.Int64
}

func newFakeHost(name string) *fakeHost {
	return &fakeHost{
		name:     name,
		orb:      orb.NewORB(),
		hub:      events.NewHub(64, events.Block),
		cpuFree:  1.0,
		resolver: make(map[string]*ior.IOR),
	}
}

func (h *fakeHost) NodeName() string { return h.name }
func (h *fakeHost) ORB() *orb.ORB    { return h.orb }
func (h *fakeHost) Hub() *events.Hub { return h.hub }

func (h *fakeHost) Admit(q xmldesc.QoS) (func(), error) {
	if q.CPUMin > h.cpuFree {
		return nil, fmt.Errorf("cpu: need %.2f, free %.2f", q.CPUMin, h.cpuFree)
	}
	h.cpuFree -= q.CPUMin
	h.admitted.Add(1)
	return func() { h.cpuFree += q.CPUMin; h.admitted.Add(-1) }, nil
}

func (h *fakeHost) ResolveDependency(_ context.Context, p xmldesc.Port) (*ior.IOR, error) {
	if ref, ok := h.resolver[p.RepoID]; ok {
		return ref, nil
	}
	return nil, fmt.Errorf("no provider for %s", p.RepoID)
}

// counterInstance is a stateful test component: provided port "count"
// with incr/value, uses port "peer", emits/consumes "tick".
type counterInstance struct {
	component.Base
	value atomic.Int64
	ticks atomic.Int64
}

func (ci *counterInstance) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	if port != "count" {
		return component.ErrNoSuchPort
	}
	switch op {
	case "incr":
		n, err := args.ReadLong()
		if err != nil {
			return err
		}
		reply.WriteLong(int32(ci.value.Add(int64(n))))
		return nil
	case "value":
		reply.WriteLong(int32(ci.value.Load()))
		return nil
	case "tick_peer":
		// Emits a tick event through the framework.
		return ci.Ctx().Emit("ticks_out", []byte("tick"))
	case "call_peer":
		ref, err := ci.Ctx().UsePort("peer")
		if err != nil {
			return err
		}
		var v int32
		err = ref.Invoke("value", nil, func(d *cdr.Decoder) error {
			var e error
			v, e = d.ReadLong()
			return e
		})
		if err != nil {
			return err
		}
		reply.WriteLong(v)
		return nil
	}
	return orb.BadOperation()
}

func (ci *counterInstance) ConsumeEvent(port string, ev events.Event) {
	if port == "ticks_in" {
		ci.ticks.Add(1)
	}
}

func (ci *counterInstance) CaptureState() ([]byte, error) {
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.WriteLongLong(ci.value.Load())
	return e.Bytes(), nil
}

func (ci *counterInstance) RestoreState(state []byte) error {
	if len(state) == 0 {
		return nil
	}
	v, err := cdr.NewDecoder(state, cdr.LittleEndian).ReadLongLong()
	if err != nil {
		return err
	}
	ci.value.Store(v)
	return nil
}

func counterSpec() *component.Spec {
	s := &component.Spec{Name: "counter", Version: "1.0.0", Entrypoint: "test/counter.New"}
	s.Provide("count", "IDL:test/Counter:1.0")
	s.Use("peer", "IDL:test/Counter:1.0", true)
	s.Emit("ticks_out", "IDL:test/Tick:1.0")
	s.Consume("ticks_in", "IDL:test/Tick:1.0", true)
	s.QoS = xmldesc.QoS{CPUMin: 0.25}
	return s
}

func newCounterContainer(t *testing.T, host Host) *Container {
	t.Helper()
	comp, err := counterSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := component.NewRegistry()
	reg.Register("test/counter.New", func() component.Instance { return &counterInstance{} })
	c, err := New(host, comp, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestCreateInvokeDestroy(t *testing.T) {
	host := newFakeHost("node-a")
	c := newCounterContainer(t, host)

	mi, err := c.Create("c1")
	if err != nil {
		t.Fatal(err)
	}
	if mi.Name() != "c1" {
		t.Fatalf("name = %q", mi.Name())
	}
	portRef, err := mi.PortIOR("count")
	if err != nil {
		t.Fatal(err)
	}
	ref := host.orb.NewRef(portRef)
	var v int32
	if err := ref.Invoke("incr",
		func(e *cdr.Encoder) { e.WriteLong(5) },
		func(d *cdr.Decoder) error { var e error; v, e = d.ReadLong(); return e }); err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("incr = %d", v)
	}
	if err := c.Destroy("c1"); err != nil {
		t.Fatal(err)
	}
	// The port servant must be gone.
	err = ref.Invoke("value", nil, nil)
	var se *orb.SystemException
	if !errors.As(err, &se) || se.Name != "OBJECT_NOT_EXIST" {
		t.Fatalf("after destroy: %v", err)
	}
	if err := c.Destroy("c1"); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("double destroy: %v", err)
	}
	if host.admitted.Load() != 0 {
		t.Fatalf("QoS reservations leaked: %d", host.admitted.Load())
	}
}

func TestAutoNamingAndDuplicates(t *testing.T) {
	c := newCounterContainer(t, newFakeHost("n"))
	a, err := c.Create("")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Create("")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() == b.Name() {
		t.Fatalf("auto names collide: %s", a.Name())
	}
	if _, err := c.Create(a.Name()); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate err = %v", err)
	}
	if got := len(c.Instances()); got != 2 {
		t.Fatalf("instances = %d", got)
	}
}

func TestQoSAdmission(t *testing.T) {
	host := newFakeHost("n")
	host.cpuFree = 0.6 // room for two 0.25 instances, not three
	c := newCounterContainer(t, host)
	if _, err := c.Create(""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(""); err != nil {
		t.Fatal(err)
	}
	_, err := c.Create("")
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("third create err = %v", err)
	}
	// Destroying one frees capacity.
	insts := c.Instances()
	if err := c.Destroy(insts[0].Name()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(""); err != nil {
		t.Fatalf("create after release: %v", err)
	}
}

func TestFactoryServantOverORB(t *testing.T) {
	host := newFakeHost("n")
	c := newCounterContainer(t, host)
	fref := host.orb.NewRef(c.FactoryIOR())

	// create via CORBA
	var instRef *ior.IOR
	err := fref.Invoke("create",
		func(e *cdr.Encoder) { e.WriteString("made-by-corba") },
		func(d *cdr.Decoder) error {
			var e error
			instRef, e = ior.Unmarshal(d)
			return e
		})
	if err != nil {
		t.Fatal(err)
	}
	if instRef.TypeID != EquivalentRepoID {
		t.Fatalf("instance ref type = %q", instRef.TypeID)
	}

	// list
	var names []string
	if err := fref.Invoke("list", nil, func(d *cdr.Decoder) error {
		var e error
		names, e = d.ReadStringSeq()
		return e
	}); err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "made-by-corba" {
		t.Fatalf("list = %v", names)
	}

	// duplicate create surfaces as a user exception
	err = fref.Invoke("create", func(e *cdr.Encoder) { e.WriteString("made-by-corba") }, func(d *cdr.Decoder) error { _, e := ior.Unmarshal(d); return e })
	if !orb.IsUserException(err, "IDL:corbalc/ComponentFactory/CreateFailed:1.0") {
		t.Fatalf("dup create err = %v", err)
	}

	// destroy
	if err := fref.Invoke("destroy", func(e *cdr.Encoder) { e.WriteString("made-by-corba") }, nil); err != nil {
		t.Fatal(err)
	}
	err = fref.Invoke("destroy", func(e *cdr.Encoder) { e.WriteString("made-by-corba") }, nil)
	if !orb.IsUserException(err, "IDL:corbalc/ComponentFactory/NoSuchInstance:1.0") {
		t.Fatalf("destroy missing err = %v", err)
	}
}

func TestEquivalentInterfaceReflection(t *testing.T) {
	host := newFakeHost("n")
	c := newCounterContainer(t, host)
	mi, err := c.Create("r1")
	if err != nil {
		t.Fatal(err)
	}
	eref := host.orb.NewRef(mi.EquivalentIOR())

	// ports introspection
	type portRow struct {
		name, kind, repoID  string
		connected, declared bool
	}
	var rows []portRow
	readPorts := func() {
		rows = nil
		err := eref.Invoke("ports", nil, func(d *cdr.Decoder) error {
			n, err := d.ReadULong()
			if err != nil {
				return err
			}
			for i := uint32(0); i < n; i++ {
				var r portRow
				if r.name, err = d.ReadString(); err != nil {
					return err
				}
				if r.kind, err = d.ReadString(); err != nil {
					return err
				}
				if r.repoID, err = d.ReadString(); err != nil {
					return err
				}
				if r.connected, err = d.ReadBool(); err != nil {
					return err
				}
				if r.declared, err = d.ReadBool(); err != nil {
					return err
				}
				rows = append(rows, r)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	readPorts()
	if len(rows) != 4 || rows[0].name != "count" || !rows[0].declared {
		t.Fatalf("ports = %+v", rows)
	}

	// add_port at run-time (reflection, §2.4.2), then verify it shows up.
	err = eref.Invoke("add_port", func(e *cdr.Encoder) {
		e.WriteString("snapshot")
		e.WriteString("provides")
		e.WriteString("IDL:test/Snap:1.0")
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	readPorts()
	if len(rows) != 5 || rows[4].name != "snapshot" || rows[4].declared {
		t.Fatalf("after add_port: %+v", rows)
	}

	// provide_port on the dynamic port yields an invocable ref (the
	// implementation 404s the unknown port, proving dispatch reached it).
	var snapRef *ior.IOR
	err = eref.Invoke("provide_port",
		func(e *cdr.Encoder) { e.WriteString("snapshot") },
		func(d *cdr.Decoder) error { var e error; snapRef, e = ior.Unmarshal(d); return e })
	if err != nil {
		t.Fatal(err)
	}
	if snapRef.TypeID != "IDL:test/Snap:1.0" {
		t.Fatalf("snapshot ref type = %q", snapRef.TypeID)
	}

	// remove_port retracts it.
	if err := eref.Invoke("remove_port", func(e *cdr.Encoder) { e.WriteString("snapshot") }, nil); err != nil {
		t.Fatal(err)
	}
	readPorts()
	if len(rows) != 4 {
		t.Fatalf("after remove_port: %+v", rows)
	}
	// Removing a declared port fails with the NoSuchPort user exception.
	err = eref.Invoke("remove_port", func(e *cdr.Encoder) { e.WriteString("count") }, nil)
	if !orb.IsUserException(err, "IDL:corbalc/ComponentInstance/NoSuchPort:1.0") {
		t.Fatalf("remove declared err = %v", err)
	}
}

func TestDependencyResolutionAndUsePort(t *testing.T) {
	host := newFakeHost("n")
	c := newCounterContainer(t, host)
	provider, err := c.Create("provider")
	if err != nil {
		t.Fatal(err)
	}
	pref, err := provider.PortIOR("count")
	if err != nil {
		t.Fatal(err)
	}
	// Seed provider with a value.
	if err := host.orb.NewRef(pref).Invoke("incr",
		func(e *cdr.Encoder) { e.WriteLong(7) }, func(d *cdr.Decoder) error { _, e := d.ReadLong(); return e }); err != nil {
		t.Fatal(err)
	}
	host.resolver["IDL:test/Counter:1.0"] = pref

	consumer, err := c.Create("consumer")
	if err != nil {
		t.Fatal(err)
	}
	// "peer" is optional so ResolveDependencies skips it; connect it the
	// explicit way first to prove UsePort, then test auto-resolution on
	// a required port via the unsatisfied list.
	if err := consumer.Connect("peer", pref); err != nil {
		t.Fatal(err)
	}
	cref, err := consumer.PortIOR("count")
	if err != nil {
		t.Fatal(err)
	}
	var got int32
	err = host.orb.NewRef(cref).Invoke("call_peer", nil, func(d *cdr.Decoder) error {
		var e error
		got, e = d.ReadLong()
		return e
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("call_peer = %d", got)
	}
}

func TestResolveDependenciesRequiredPort(t *testing.T) {
	host := newFakeHost("n")
	spec := counterSpec()
	spec.Name = "needy"
	spec.Ports[1].Optional = false // "peer" becomes required
	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := component.NewRegistry()
	reg.Register("test/counter.New", func() component.Instance { return &counterInstance{} })
	c, err := New(host, comp, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mi, err := c.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	// Resolution fails with no provider in the network.
	if err := mi.ResolveDependencies(context.Background()); err == nil {
		t.Fatal("resolution succeeded with no provider")
	}
	host.resolver["IDL:test/Counter:1.0"] = ior.New("IDL:test/Counter:1.0", "h", 1, []byte("k"))
	if err := mi.ResolveDependencies(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := mi.Ports().Unsatisfied(); len(got) != 0 {
		t.Fatalf("unsatisfied = %+v", got)
	}
}

func TestEventFlowBetweenInstances(t *testing.T) {
	host := newFakeHost("n")
	c := newCounterContainer(t, host)
	emitter, err := c.Create("emitter")
	if err != nil {
		t.Fatal(err)
	}
	listener, err := c.Create("listener")
	if err != nil {
		t.Fatal(err)
	}
	epRef, err := emitter.PortIOR("count")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := host.orb.NewRef(epRef).Invoke("tick_peer", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	li := listener.Impl().(*counterInstance)
	deadline := time.Now().Add(2 * time.Second)
	// Both instances consume the tick (emitter also has a consumes
	// port), so listener must see exactly 3.
	for li.ticks.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := li.ticks.Load(); got != 3 {
		t.Fatalf("listener ticks = %d", got)
	}
	// Teardown cancels subscriptions: destroy listener, emit again.
	if err := c.Destroy("listener"); err != nil {
		t.Fatal(err)
	}
	if err := host.orb.NewRef(epRef).Invoke("tick_peer", nil, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := li.ticks.Load(); got != 3 {
		t.Fatalf("ticks after destroy = %d", got)
	}
}

func TestServiceLifecycleShared(t *testing.T) {
	host := newFakeHost("n")
	spec := counterSpec()
	spec.Name = "singleton"
	spec.Lifecycle = "service"
	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := component.NewRegistry()
	reg.Register("test/counter.New", func() component.Instance { return &counterInstance{} })
	c, err := New(host, comp, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, err := c.Create("shared")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Create("whatever")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("service lifecycle produced two instances")
	}
}

func TestMaxInstancesEnforced(t *testing.T) {
	host := newFakeHost("n")
	spec := counterSpec()
	spec.Name = "bounded"
	spec.MaxInstances = 2
	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := component.NewRegistry()
	reg.Register("test/counter.New", func() component.Instance { return &counterInstance{} })
	c, err := New(host, comp, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Create(""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(""); !errors.Is(err, ErrMaxInstances) {
		t.Fatalf("err = %v", err)
	}
}

func TestMigrationPreservesState(t *testing.T) {
	hostA := newFakeHost("node-a")
	hostB := newFakeHost("node-b")
	cA := newCounterContainer(t, hostA)
	cB := newCounterContainer(t, hostB)

	mi, err := cA.Create("traveller")
	if err != nil {
		t.Fatal(err)
	}
	pref, err := mi.PortIOR("count")
	if err != nil {
		t.Fatal(err)
	}
	if err := hostA.orb.NewRef(pref).Invoke("incr",
		func(e *cdr.Encoder) { e.WriteLong(41) }, func(d *cdr.Decoder) error { _, e := d.ReadLong(); return e }); err != nil {
		t.Fatal(err)
	}

	capsule, err := cA.Migrate("traveller")
	if err != nil {
		t.Fatal(err)
	}
	if len(cA.Instances()) != 0 {
		t.Fatal("instance still on node A")
	}

	// The capsule survives wire serialisation.
	capsule2, err := DecodeCapsuleBytes(capsule.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	mi2, err := cB.Restore(capsule2)
	if err != nil {
		t.Fatal(err)
	}
	pref2, err := mi2.PortIOR("count")
	if err != nil {
		t.Fatal(err)
	}
	var v int32
	err = hostB.orb.NewRef(pref2).Invoke("incr",
		func(e *cdr.Encoder) { e.WriteLong(1) },
		func(d *cdr.Decoder) error { var e error; v, e = d.ReadLong(); return e })
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("state after migration = %d, want 42", v)
	}
}

func TestMigrateNotMovable(t *testing.T) {
	host := newFakeHost("n")
	spec := counterSpec()
	spec.Name = "anchored"
	spec.Mobility = "fixed"
	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := component.NewRegistry()
	reg.Register("test/counter.New", func() component.Instance { return &counterInstance{} })
	c, err := New(host, comp, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Create("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Migrate("a"); !errors.Is(err, ErrNotMovable) {
		t.Fatalf("err = %v", err)
	}
}

func TestRestoreWrongComponent(t *testing.T) {
	host := newFakeHost("n")
	c := newCounterContainer(t, host)
	capsule := &Capsule{ComponentID: "other-9.9.9", InstanceName: "x"}
	if _, err := c.Restore(capsule); err == nil {
		t.Fatal("foreign capsule accepted")
	}
}

func TestCapsuleRoundTripWithPortsAndConnections(t *testing.T) {
	in := &Capsule{
		ComponentID:  "counter-1.0.0",
		InstanceName: "i",
		State:        []byte{1, 2, 3},
		DynamicPorts: []xmldesc.Port{
			{Kind: xmldesc.PortProvides, Name: "extra", RepoID: "IDL:x:1.0"},
			{Kind: xmldesc.PortUses, Name: "dep", RepoID: "IDL:y:1.0", Optional: true},
		},
		Connections: map[string]*ior.IOR{
			"dep": ior.New("IDL:y:1.0", "h", 2, []byte("k")),
		},
	}
	out, err := DecodeCapsuleBytes(in.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if out.ComponentID != in.ComponentID || out.InstanceName != in.InstanceName ||
		string(out.State) != string(in.State) || len(out.DynamicPorts) != 2 ||
		out.DynamicPorts[1].Optional != true {
		t.Fatalf("capsule = %+v", out)
	}
	if out.Connections["dep"] == nil || out.Connections["dep"].TypeID != "IDL:y:1.0" {
		t.Fatalf("connections = %+v", out.Connections)
	}
	// Garbage rejected.
	if _, err := DecodeCapsuleBytes([]byte{1, 2}); err == nil {
		t.Fatal("garbage capsule accepted")
	}
}

func TestSnapshotKeepsInstanceRunning(t *testing.T) {
	host := newFakeHost("n")
	c := newCounterContainer(t, host)
	mi, err := c.Create("snap")
	if err != nil {
		t.Fatal(err)
	}
	ref := host.orb.NewRef(mustPortIOR(t, mi, "count"))
	if err := ref.Invoke("incr", func(e *cdr.Encoder) { e.WriteLong(3) },
		func(d *cdr.Decoder) error { _, e := d.ReadLong(); return e }); err != nil {
		t.Fatal(err)
	}
	capsule, err := mi.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if capsule.InstanceName != "snap" || len(capsule.State) == 0 {
		t.Fatalf("capsule = %+v", capsule)
	}
	// The instance still serves after the snapshot quiesce.
	var v int32
	if err := ref.Invoke("incr", func(e *cdr.Encoder) { e.WriteLong(1) },
		func(d *cdr.Decoder) error { var e error; v, e = d.ReadLong(); return e }); err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Fatalf("value after snapshot = %d", v)
	}
	// The capsule froze the pre-snapshot state.
	st, err := cdr.NewDecoder(capsule.State, cdr.LittleEndian).ReadLongLong()
	if err != nil || st != 3 {
		t.Fatalf("capsule state = %d, %v", st, err)
	}
}

func mustPortIOR(t *testing.T, mi *ManagedInstance, port string) *ior.IOR {
	t.Helper()
	ref, err := mi.PortIOR(port)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestInstanceContextIdentityAndDisconnect(t *testing.T) {
	host := newFakeHost("ctx-node")
	c := newCounterContainer(t, host)
	if c.Component().Name() != "counter" {
		t.Fatal("Component accessor")
	}
	mi, err := c.Create("idn")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Instance("idn"); !ok || got != mi {
		t.Fatal("Instance accessor")
	}
	ctx := &instanceContext{mi: mi}
	if ctx.InstanceName() != "idn" || ctx.NodeName() != "ctx-node" {
		t.Fatalf("identity = %s@%s", ctx.InstanceName(), ctx.NodeName())
	}
	if got := ctx.Ports(); len(got) != 4 {
		t.Fatalf("ports = %d", len(got))
	}
	// Connect/Disconnect through the instance API.
	target := ior.New("IDL:test/Counter:1.0", "h", 1, []byte("k"))
	if err := mi.Connect("peer", target); err != nil {
		t.Fatal(err)
	}
	if st, _ := mi.Ports().Get("peer"); !st.Connected {
		t.Fatal("not connected")
	}
	if err := mi.Disconnect("peer"); err != nil {
		t.Fatal(err)
	}
	if st, _ := mi.Ports().Get("peer"); st.Connected {
		t.Fatal("still connected")
	}
	// UsePort on a disconnected port errors.
	if _, err := ctx.UsePort("peer"); err == nil {
		t.Fatal("UsePort on disconnected port succeeded")
	}
	if _, err := ctx.UsePort("ghost"); err == nil {
		t.Fatal("UsePort on ghost port succeeded")
	}
}

func TestEquivalentServantEdgeCases(t *testing.T) {
	host := newFakeHost("n")
	c := newCounterContainer(t, host)
	mi, err := c.Create("edge")
	if err != nil {
		t.Fatal(err)
	}
	eref := host.orb.NewRef(mi.EquivalentIOR())

	// name / component_id ops.
	var name, compID string
	if err := eref.Invoke("name", nil, func(d *cdr.Decoder) error {
		var e error
		name, e = d.ReadString()
		return e
	}); err != nil {
		t.Fatal(err)
	}
	if err := eref.Invoke("component_id", nil, func(d *cdr.Decoder) error {
		var e error
		compID, e = d.ReadString()
		return e
	}); err != nil {
		t.Fatal(err)
	}
	if name != "edge" || compID != "counter-1.0.0" {
		t.Fatalf("identity = %s / %s", name, compID)
	}

	// provide_port on a uses port is a NoSuchPort user exception.
	err = eref.Invoke("provide_port", func(e *cdr.Encoder) { e.WriteString("peer") },
		func(d *cdr.Decoder) error { _, e := ior.Unmarshal(d); return e })
	if !orb.IsUserException(err, "IDL:corbalc/ComponentInstance/NoSuchPort:1.0") {
		t.Fatalf("provide uses err = %v", err)
	}
	// connect with a bogus port.
	err = eref.Invoke("connect", func(e *cdr.Encoder) {
		e.WriteString("ghost")
		ior.New("IDL:x:1.0", "h", 1, []byte("k")).Marshal(e)
	}, nil)
	if !orb.IsUserException(err, "IDL:corbalc/ComponentInstance/NoSuchPort:1.0") {
		t.Fatalf("connect ghost err = %v", err)
	}
	// disconnect via CORBA works on a connected port.
	if err := eref.Invoke("connect", func(e *cdr.Encoder) {
		e.WriteString("peer")
		ior.New("IDL:test/Counter:1.0", "h", 1, []byte("k")).Marshal(e)
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eref.Invoke("disconnect", func(e *cdr.Encoder) { e.WriteString("peer") }, nil); err != nil {
		t.Fatal(err)
	}
	// add_port with a bad kind is a PortError.
	err = eref.Invoke("add_port", func(e *cdr.Encoder) {
		e.WriteString("dyn")
		e.WriteString("bogus-kind")
		e.WriteString("IDL:x:1.0")
	}, nil)
	if !orb.IsUserException(err, "IDL:corbalc/ComponentInstance/PortError:1.0") {
		t.Fatalf("bad kind err = %v", err)
	}
	// Unknown operation on the equivalent interface.
	err = eref.Invoke("warp_drive", nil, nil)
	var se *orb.SystemException
	if !errors.As(err, &se) || se.Name != "BAD_OPERATION" {
		t.Fatalf("unknown op err = %v", err)
	}
	// Dynamic consumes port: add, then remove — subscription management.
	if err := eref.Invoke("add_port", func(e *cdr.Encoder) {
		e.WriteString("extra_in")
		e.WriteString("consumes")
		e.WriteString("IDL:test/Tick:1.0")
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eref.Invoke("remove_port", func(e *cdr.Encoder) { e.WriteString("extra_in") }, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreFailuresRollBack(t *testing.T) {
	host := newFakeHost("n")
	c := newCounterContainer(t, host)
	// A capsule with undecodable state: Restore must fail and leave no
	// half-created instance behind.
	capsule := &Capsule{
		ComponentID:  "counter-1.0.0",
		InstanceName: "broken",
		State:        []byte{1, 2, 3}, // too short for a long long
	}
	if _, err := c.Restore(capsule); err == nil {
		t.Fatal("broken capsule accepted")
	}
	if _, ok := c.Instance("broken"); ok {
		t.Fatal("half-restored instance left behind")
	}
}

func TestUnknownFrameworkServiceRefused(t *testing.T) {
	host := newFakeHost("n")
	spec := counterSpec()
	spec.Name = "demanding"
	spec.Framework = []string{"events", "transactions"} // transactions: not offered (the paper's lightweight pitch)
	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := component.NewRegistry()
	reg.Register("test/counter.New", func() component.Instance { return &counterInstance{} })
	if _, err := New(host, comp, reg); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v", err)
	}
	// Declaring only known services works.
	spec.Framework = []string{"events", "migration"}
	comp, err = spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(host, comp, reg)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

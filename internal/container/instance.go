package container

import (
	"context"
	"fmt"
	"sync"

	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/events"
	"corbalc/internal/ior"
	"corbalc/internal/orb"
	"corbalc/internal/xmldesc"
)

// ManagedInstance is one running component instance under container
// control: the implementation object, its runtime port set, its CORBA
// servants (equivalent interface + one per provided port) and its event
// subscriptions.
type ManagedInstance struct {
	c    *Container
	name string
	inst component.Instance

	ports   *component.PortSet
	release func() // QoS reservation release

	mu         sync.Mutex
	active     bool
	cancels    map[string]func() // consumes-port subscriptions
	equivalent *ior.IOR
}

// Repository IDs of the container-level CORBA interfaces.
const (
	EquivalentRepoID = "IDL:corbalc/ComponentInstance:1.0"
)

func newManagedInstance(c *Container, name string, inst component.Instance, release func()) *ManagedInstance {
	return &ManagedInstance{
		c:       c,
		name:    name,
		inst:    inst,
		ports:   component.NewPortSet(c.comp.Type().Ports),
		release: release,
		cancels: make(map[string]func()),
	}
}

// Name returns the framework-assigned instance name.
func (mi *ManagedInstance) Name() string { return mi.name }

// Ports returns the instance's runtime port set.
func (mi *ManagedInstance) Ports() *component.PortSet { return mi.ports }

// Impl exposes the underlying implementation object (examples use it for
// local assertions; network clients go through the CORBA servants).
func (mi *ManagedInstance) Impl() component.Instance { return mi.inst }

// objectKey builds the adapter key for this instance (optionally a port).
func (mi *ManagedInstance) objectKey(port string) string {
	k := "inst/" + mi.c.comp.ID().String() + "/" + mi.name
	if port != "" {
		k += "/port/" + port
	}
	return k
}

// activate registers servants and event wiring, then calls the
// implementation's Activate with the framework context.
func (mi *ManagedInstance) activate() error {
	o := mi.c.host.ORB()
	mi.equivalent = o.Activate(mi.objectKey(""), &equivalentServant{mi: mi})
	for _, st := range mi.ports.List() {
		switch st.Desc.Kind {
		case xmldesc.PortProvides:
			mi.activateProvidedPort(st.Desc.Name)
		case xmldesc.PortConsumes:
			mi.subscribeConsumesPort(st.Desc)
		}
	}
	mi.mu.Lock()
	mi.active = true
	mi.mu.Unlock()
	return mi.inst.Activate(&instanceContext{mi: mi})
}

// activateProvidedPort exposes one provided port as a CORBA object.
func (mi *ManagedInstance) activateProvidedPort(port string) {
	o := mi.c.host.ORB()
	desc, _ := mi.ports.Get(port)
	o.Adapter().Activate(mi.objectKey(port), &portServant{mi: mi, port: port, repoID: desc.Desc.RepoID})
}

// subscribeConsumesPort subscribes a consumes port to the node hub
// channel for its event kind.
func (mi *ManagedInstance) subscribeConsumesPort(p xmldesc.Port) {
	ch := mi.c.host.Hub().Channel(p.RepoID)
	port := p.Name
	cancel := ch.Subscribe(mi.name+"/"+port, func(ev events.Event) {
		mi.mu.Lock()
		ok := mi.active
		mi.mu.Unlock()
		if ok {
			mi.inst.ConsumeEvent(port, ev)
		}
	})
	mi.mu.Lock()
	if old := mi.cancels[port]; old != nil {
		old()
	}
	mi.cancels[port] = cancel
	mi.mu.Unlock()
	_ = mi.ports.Connect(port, nil)
}

// teardown passivates the implementation and retracts all servants and
// subscriptions.
func (mi *ManagedInstance) teardown() {
	mi.mu.Lock()
	wasActive := mi.active
	mi.active = false
	cancels := mi.cancels
	mi.cancels = make(map[string]func())
	mi.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	if wasActive {
		_ = mi.inst.Passivate()
	}
	o := mi.c.host.ORB()
	o.Adapter().Deactivate(mi.objectKey(""))
	for _, st := range mi.ports.List() {
		if st.Desc.Kind == xmldesc.PortProvides {
			o.Adapter().Deactivate(mi.objectKey(st.Desc.Name))
		}
	}
	if mi.release != nil {
		mi.release()
		mi.release = nil
	}
}

// capture passivates the implementation and snapshots everything needed
// to resurrect the instance elsewhere.
func (mi *ManagedInstance) capture() (*Capsule, error) {
	mi.mu.Lock()
	mi.active = false
	mi.mu.Unlock()
	if err := mi.inst.Passivate(); err != nil {
		return nil, err
	}
	return mi.buildCapsule()
}

// buildCapsule serialises the (quiescent) instance into a capsule.
func (mi *ManagedInstance) buildCapsule() (*Capsule, error) {
	state, err := mi.inst.CaptureState()
	if err != nil {
		return nil, err
	}
	capsule := &Capsule{
		ComponentID:  mi.c.comp.ID().String(),
		InstanceName: mi.name,
		State:        state,
		Connections:  make(map[string]*ior.IOR),
	}
	for _, st := range mi.ports.List() {
		if !st.Declared {
			capsule.DynamicPorts = append(capsule.DynamicPorts, st.Desc)
		}
		if st.Desc.Kind == xmldesc.PortUses && st.Connected && st.Target != nil {
			capsule.Connections[st.Desc.Name] = st.Target
		}
	}
	return capsule, nil
}

// Snapshot captures the instance's state and connections without
// removing it: the instance is briefly passivated (so the state is
// quiescent), captured, and reactivated. Replication uses this to seed
// replicas from a live primary; implementations must therefore tolerate
// passivate/activate cycles.
func (mi *ManagedInstance) Snapshot() (*Capsule, error) {
	mi.mu.Lock()
	wasActive := mi.active
	mi.active = false
	mi.mu.Unlock()
	if wasActive {
		if err := mi.inst.Passivate(); err != nil {
			mi.mu.Lock()
			mi.active = wasActive
			mi.mu.Unlock()
			return nil, err
		}
	}
	capsule, err := mi.buildCapsule()
	mi.mu.Lock()
	mi.active = wasActive
	mi.mu.Unlock()
	if wasActive {
		if aerr := mi.inst.Activate(&instanceContext{mi: mi}); aerr != nil && err == nil {
			err = aerr
		}
	}
	return capsule, err
}

// EquivalentIOR returns the instance's reflective "equivalent interface"
// reference.
func (mi *ManagedInstance) EquivalentIOR() *ior.IOR { return mi.equivalent }

// PortIOR returns the CORBA reference of a provided port.
func (mi *ManagedInstance) PortIOR(port string) (*ior.IOR, error) {
	st, ok := mi.ports.Get(port)
	if !ok {
		return nil, fmt.Errorf("%w: %s", component.ErrNoSuchPort, port)
	}
	if st.Desc.Kind != xmldesc.PortProvides {
		return nil, fmt.Errorf("container: port %s is %s, not provides", port, st.Desc.Kind)
	}
	return mi.c.host.ORB().NewIOR(st.Desc.RepoID, mi.objectKey(port)), nil
}

// Connect wires a uses port to a provider reference.
func (mi *ManagedInstance) Connect(port string, target *ior.IOR) error {
	return mi.ports.Connect(port, target)
}

// Disconnect unwires a uses port.
func (mi *ManagedInstance) Disconnect(port string) error {
	return mi.ports.Disconnect(port)
}

// ResolveDependencies asks the host to satisfy every unsatisfied
// required uses port through the network (the automatic dependency
// management of paper §2, requirement 6). Consumes ports are satisfied
// locally by hub subscription at activation.
func (mi *ManagedInstance) ResolveDependencies(ctx context.Context) error {
	for _, p := range mi.ports.Unsatisfied() {
		if p.Kind != xmldesc.PortUses {
			continue
		}
		target, err := mi.c.host.ResolveDependency(ctx, p)
		if err != nil {
			return fmt.Errorf("container: resolving port %s (%s): %w", p.Name, p.RepoID, err)
		}
		if err := mi.ports.Connect(p.Name, target); err != nil {
			return err
		}
	}
	return nil
}

// instanceContext implements component.Context for one instance.
type instanceContext struct{ mi *ManagedInstance }

func (ic *instanceContext) InstanceName() string { return ic.mi.name }
func (ic *instanceContext) NodeName() string     { return ic.mi.c.host.NodeName() }

func (ic *instanceContext) UsePort(name string) (*orb.ObjectRef, error) {
	st, ok := ic.mi.ports.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", component.ErrNoSuchPort, name)
	}
	if !st.Connected || st.Target == nil {
		return nil, fmt.Errorf("%w: %s", component.ErrNotConnected, name)
	}
	return ic.mi.c.host.ORB().NewRef(st.Target), nil
}

func (ic *instanceContext) Emit(port string, data []byte) error {
	st, ok := ic.mi.ports.Get(port)
	if !ok {
		return fmt.Errorf("%w: %s", component.ErrNoSuchPort, port)
	}
	if st.Desc.Kind != xmldesc.PortEmits {
		return fmt.Errorf("container: port %s is %s, not emits", port, st.Desc.Kind)
	}
	return ic.mi.c.host.Hub().Channel(st.Desc.RepoID).Push(events.Event{
		Source: ic.mi.name,
		Data:   data,
	})
}

func (ic *instanceContext) AddPort(p xmldesc.Port) error {
	if err := ic.mi.ports.Add(p); err != nil {
		return err
	}
	switch p.Kind {
	case xmldesc.PortProvides:
		ic.mi.activateProvidedPort(p.Name)
	case xmldesc.PortConsumes:
		ic.mi.subscribeConsumesPort(p)
	}
	return nil
}

func (ic *instanceContext) RemovePort(name string) error {
	st, ok := ic.mi.ports.Get(name)
	if !ok {
		return fmt.Errorf("%w: %s", component.ErrNoSuchPort, name)
	}
	if err := ic.mi.ports.Remove(name); err != nil {
		return err
	}
	switch st.Desc.Kind {
	case xmldesc.PortProvides:
		ic.mi.c.host.ORB().Adapter().Deactivate(ic.mi.objectKey(name))
	case xmldesc.PortConsumes:
		ic.mi.mu.Lock()
		if cancel := ic.mi.cancels[name]; cancel != nil {
			cancel()
			delete(ic.mi.cancels, name)
		}
		ic.mi.mu.Unlock()
	}
	return nil
}

func (ic *instanceContext) Ports() []component.PortState { return ic.mi.ports.List() }

// portServant adapts a provided port to the ORB servant interface.
type portServant struct {
	mi     *ManagedInstance
	port   string
	repoID string
}

func (s *portServant) RepositoryID() string { return s.repoID }

func (s *portServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	s.mi.mu.Lock()
	active := s.mi.active
	s.mi.mu.Unlock()
	if !active {
		return orb.ObjectNotExist()
	}
	return s.mi.inst.InvokePort(s.port, op, args, reply)
}

// equivalentServant is the instance's reflective CORBA interface: port
// introspection, port provisioning, connection management, and the
// run-time port mutation operations of §2.4.2.
type equivalentServant struct{ mi *ManagedInstance }

func (s *equivalentServant) RepositoryID() string { return EquivalentRepoID }

func (s *equivalentServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	mi := s.mi
	switch op {
	case "name":
		reply.WriteString(mi.name)
		return nil
	case "component_id":
		reply.WriteString(mi.c.comp.ID().String())
		return nil
	case "ports":
		// sequence of (name, kind, repoid, connected, declared)
		states := mi.ports.List()
		reply.WriteULong(uint32(len(states)))
		for _, st := range states {
			reply.WriteString(st.Desc.Name)
			reply.WriteString(string(st.Desc.Kind))
			reply.WriteString(st.Desc.RepoID)
			reply.WriteBool(st.Connected)
			reply.WriteBool(st.Declared)
		}
		return nil
	case "provide_port":
		name, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		ref, err := mi.PortIOR(name)
		if err != nil {
			return noPortExc(name)
		}
		ref.Marshal(reply)
		return nil
	case "connect":
		name, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		target, err := ior.Unmarshal(args)
		if err != nil {
			return orb.Marshal()
		}
		if err := mi.Connect(name, target); err != nil {
			return noPortExc(name)
		}
		return nil
	case "disconnect":
		name, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		if err := mi.Disconnect(name); err != nil {
			return noPortExc(name)
		}
		return nil
	case "add_port":
		var p xmldesc.Port
		name, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		kind, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		repoID, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		p = xmldesc.Port{Name: name, Kind: xmldesc.PortKind(kind), RepoID: repoID}
		ctx := &instanceContext{mi: mi}
		if err := ctx.AddPort(p); err != nil {
			return &orb.UserException{
				ID:      "IDL:corbalc/ComponentInstance/PortError:1.0",
				Payload: func(e *cdr.Encoder) { e.WriteString(err.Error()) },
			}
		}
		return nil
	case "remove_port":
		name, err := args.ReadString()
		if err != nil {
			return orb.Marshal()
		}
		ctx := &instanceContext{mi: mi}
		if err := ctx.RemovePort(name); err != nil {
			return noPortExc(name)
		}
		return nil
	}
	return orb.BadOperation()
}

func noPortExc(name string) error {
	return &orb.UserException{
		ID:      "IDL:corbalc/ComponentInstance/NoSuchPort:1.0",
		Payload: func(e *cdr.Encoder) { e.WriteString(name) },
	}
}

package component

import (
	"errors"
	"testing"

	"corbalc/internal/events"
	"corbalc/internal/ior"
	"corbalc/internal/version"
	"corbalc/internal/xmldesc"
)

func demoSpec() *Spec {
	s := &Spec{
		Name:    "whiteboard",
		Version: "2.1.0",
		Title:   "Shared Whiteboard",
		IDL: map[string]string{
			"idl/wb.idl": `module cscw { interface Board { void stroke(in double x, in double y); }; };`,
		},
		Deps:       []xmldesc.Dependency{{Type: "Component", Name: "display", Version: ">=1.0"}},
		Splittable: false,
		Lifecycle:  "session",
	}
	s.Provide("board", "IDL:cscw/Board:1.0")
	s.Use("display", "IDL:corbalc/Display:1.0", false)
	s.Use("stats", "IDL:corbalc/Stats:1.0", true)
	s.Emit("stroke_added", "IDL:cscw/StrokeAdded:1.0")
	s.Consume("clear", "IDL:cscw/Clear:1.0", true)
	return s
}

func TestParseID(t *testing.T) {
	id, err := ParseID("whiteboard-2.1.0")
	if err != nil || id.Name != "whiteboard" || id.Version != version.MustParse("2.1.0") {
		t.Fatalf("id = %+v, %v", id, err)
	}
	// Hyphenated names parse by scanning for the last version-looking
	// suffix.
	id, err = ParseID("codec-core-1.2.3")
	if err != nil || id.Name != "codec-core" {
		t.Fatalf("id = %+v, %v", id, err)
	}
	if id.String() != "codec-core-1.2.3" {
		t.Fatalf("round trip = %q", id.String())
	}
	for _, bad := range []string{"", "noversion", "-1.0.0"} {
		if _, err := ParseID(bad); err == nil {
			t.Errorf("ParseID(%q) accepted", bad)
		}
	}
}

func TestSpecBuildAndLoad(t *testing.T) {
	c, err := demoSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.ID().String() != "whiteboard-2.1.0" {
		t.Fatalf("id = %s", c.ID())
	}
	if c.Type().Name != "whiteboard" || len(c.Type().Ports) != 5 {
		t.Fatalf("type = %+v", c.Type())
	}
	// The IDL in the package must have been parsed.
	board, ok := c.IDL().LookupType("cscw::Board")
	if !ok {
		t.Fatal("Board interface not in component IDL repo")
	}
	if _, ok := board.LookupOperation("stroke"); !ok {
		t.Fatal("stroke operation missing")
	}
	deps := c.DependsOn()
	if len(deps) != 1 || deps[0].Name != "display" {
		t.Fatalf("deps = %+v", deps)
	}
	if !c.Movable() {
		t.Error("default mobility should be movable")
	}
	// Round-trip through raw bytes (what travels between nodes).
	c2, err := LoadBytes(c.Package().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if c2.ID() != c.ID() {
		t.Fatalf("reloaded id = %s", c2.ID())
	}
}

func TestSpecBadIDLRejected(t *testing.T) {
	s := demoSpec()
	s.IDL["idl/broken.idl"] = "interface {{{"
	if _, err := s.Build(); err == nil {
		t.Fatal("broken IDL accepted")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Has("x") {
		t.Fatal("empty registry has entry")
	}
	r.Register("x", func() Instance { return &Base{} })
	if !r.Has("x") {
		t.Fatal("registered entry missing")
	}
	inst, err := r.New("x")
	if err != nil || inst == nil {
		t.Fatalf("New = %v, %v", inst, err)
	}
	if _, err := r.New("missing"); err == nil {
		t.Fatal("missing entrypoint accepted")
	}
	// Later registration replaces (library upgrade semantics).
	r.Register("x", func() Instance { return nil })
	if got, _ := r.New("x"); got != nil {
		t.Fatal("replacement did not win")
	}
}

func TestBaseInstance(t *testing.T) {
	var b Base
	if b.Ctx() != nil {
		t.Fatal("ctx before activate")
	}
	if err := b.Activate(nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Passivate(); err != nil {
		t.Fatal(err)
	}
	st, err := b.CaptureState()
	if err != nil || st != nil {
		t.Fatalf("state = %v, %v", st, err)
	}
	if err := b.RestoreState(nil); err != nil {
		t.Fatal(err)
	}
	b.ConsumeEvent("p", events.Event{})
}

func declaredPorts() []xmldesc.Port {
	return []xmldesc.Port{
		{Kind: xmldesc.PortProvides, Name: "board", RepoID: "IDL:cscw/Board:1.0"},
		{Kind: xmldesc.PortUses, Name: "display", RepoID: "IDL:corbalc/Display:1.0"},
		{Kind: xmldesc.PortUses, Name: "stats", RepoID: "IDL:corbalc/Stats:1.0", Optional: true},
		{Kind: xmldesc.PortConsumes, Name: "clear", RepoID: "IDL:cscw/Clear:1.0"},
	}
}

func TestPortSetDeclaredAndUnsatisfied(t *testing.T) {
	ps := NewPortSet(declaredPorts())
	un := ps.Unsatisfied()
	// display (uses, required) and clear (consumes, required); stats is
	// optional, board is provides.
	if len(un) != 2 || un[0].Name != "display" || un[1].Name != "clear" {
		t.Fatalf("unsatisfied = %+v", un)
	}
	if err := ps.Connect("display", ior.New("IDL:corbalc/Display:1.0", "h", 1, []byte("d"))); err != nil {
		t.Fatal(err)
	}
	if err := ps.Connect("clear", nil); err != nil {
		t.Fatal(err)
	}
	if got := ps.Unsatisfied(); len(got) != 0 {
		t.Fatalf("unsatisfied after connect = %+v", got)
	}
	st, ok := ps.Get("display")
	if !ok || !st.Connected || st.Target == nil {
		t.Fatalf("display state = %+v", st)
	}
	if err := ps.Disconnect("display"); err != nil {
		t.Fatal(err)
	}
	if got := ps.Unsatisfied(); len(got) != 1 {
		t.Fatalf("unsatisfied after disconnect = %+v", got)
	}
}

func TestPortSetReflectionRules(t *testing.T) {
	ps := NewPortSet(declaredPorts())

	// Declared ports cannot be removed (they are the contractual
	// minimum).
	if err := ps.Remove("board"); !errors.Is(err, ErrPortDeclared) {
		t.Fatalf("remove declared err = %v", err)
	}
	// Dynamic ports can be added and removed.
	dyn := xmldesc.Port{Kind: xmldesc.PortProvides, Name: "thumbnail", RepoID: "IDL:cscw/Thumb:1.0"}
	if err := ps.Add(dyn); err != nil {
		t.Fatal(err)
	}
	if err := ps.Add(dyn); !errors.Is(err, ErrDuplicatePort) {
		t.Fatalf("dup add err = %v", err)
	}
	if err := ps.Remove("thumbnail"); err != nil {
		t.Fatal(err)
	}
	if err := ps.Remove("thumbnail"); !errors.Is(err, ErrNoSuchPort) {
		t.Fatalf("remove twice err = %v", err)
	}
	// Provides ports do not connect.
	if err := ps.Connect("board", nil); err == nil {
		t.Fatal("connect on provides accepted")
	}
	if err := ps.Connect("ghost", nil); !errors.Is(err, ErrNoSuchPort) {
		t.Fatalf("connect missing err = %v", err)
	}
	// Invalid dynamic ports rejected.
	if err := ps.Add(xmldesc.Port{Kind: "bogus", Name: "x", RepoID: "IDL:x:1.0"}); err == nil {
		t.Fatal("bogus kind accepted")
	}
	if err := ps.Add(xmldesc.Port{Kind: xmldesc.PortUses, RepoID: "IDL:x:1.0"}); err == nil {
		t.Fatal("unnamed port accepted")
	}
}

func TestPortSetObservers(t *testing.T) {
	ps := NewPortSet(declaredPorts())
	var changes []Change
	ps.Observe(func(c Change) { changes = append(changes, c) })

	dyn := xmldesc.Port{Kind: xmldesc.PortUses, Name: "extra", RepoID: "IDL:x:1.0"}
	_ = ps.Add(dyn)
	_ = ps.Connect("extra", nil)
	_ = ps.Disconnect("extra")
	_ = ps.Remove("extra")

	kinds := []ChangeKind{PortAdded, PortConnected, PortDisconnected, PortRemoved}
	if len(changes) != len(kinds) {
		t.Fatalf("changes = %+v", changes)
	}
	for i, k := range kinds {
		if changes[i].Kind != k || changes[i].Port.Name != "extra" {
			t.Fatalf("change %d = %+v, want kind %v", i, changes[i], k)
		}
	}
}

func TestPortSetListOrder(t *testing.T) {
	ps := NewPortSet(declaredPorts())
	_ = ps.Add(xmldesc.Port{Kind: xmldesc.PortEmits, Name: "zz", RepoID: "IDL:z:1.0"})
	list := ps.List()
	if len(list) != 5 || list[0].Desc.Name != "board" || list[4].Desc.Name != "zz" {
		t.Fatalf("list = %+v", list)
	}
	if !list[0].Declared || list[4].Declared {
		t.Fatal("declared flags wrong")
	}
}

func TestSpecPlatformsAndPayload(t *testing.T) {
	s := &Spec{
		Name:         "codec",
		Platforms:    [][2]string{{"linux", "amd64"}, {"palmos", "arm"}},
		BinarySize:   4096,
		Compressible: true,
	}
	s.Provide("p", "IDL:x/P:1.0")
	c, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.SoftPkg().Implementations); got != 2 {
		t.Fatalf("implementations = %d", got)
	}
	im, bin, err := c.Package().Binary("palmos", "arm", "corbalc")
	if err != nil || im.ID != "palmos-arm" || len(bin) != 4096 {
		t.Fatalf("binary = %+v, %d, %v", im, len(bin), err)
	}
}

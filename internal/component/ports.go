package component

import (
	"fmt"
	"sync"

	"corbalc/internal/ior"
	"corbalc/internal/xmldesc"
)

// PortState is the run-time condition of one port of an instance.
type PortState struct {
	Desc xmldesc.Port
	// Declared marks ports from the component type descriptor (the
	// "minimal set"); only dynamically added ports can be removed.
	Declared bool
	// Connected reports whether a uses port has a bound provider or a
	// consumes port a subscription.
	Connected bool
	// Target is the provider reference of a connected uses port.
	Target *ior.IOR
}

// ChangeKind classifies PortSet mutations, for reflection observers.
type ChangeKind int

// Port change kinds.
const (
	PortAdded ChangeKind = iota
	PortRemoved
	PortConnected
	PortDisconnected
)

func (k ChangeKind) String() string {
	switch k {
	case PortAdded:
		return "added"
	case PortRemoved:
		return "removed"
	case PortConnected:
		return "connected"
	case PortDisconnected:
		return "disconnected"
	}
	return fmt.Sprintf("ChangeKind(%d)", int(k))
}

// Change is one PortSet mutation event.
type Change struct {
	Kind ChangeKind
	Port xmldesc.Port
}

// PortSet is the runtime-mutable set of ports of a component instance —
// the mechanism behind §2.4.2: "component instances can adapt to the
// changing environment requesting new services or offering new ones.
// CORBA-LC offers operations which allow modifying the set of ports a
// component exposes." The Component Registry observes changes to keep
// the reflection meta-data current.
type PortSet struct {
	mu        sync.RWMutex
	ports     map[string]*PortState
	order     []string
	observers []func(Change)
}

// NewPortSet seeds a set with the component type's declared ports.
func NewPortSet(declared []xmldesc.Port) *PortSet {
	ps := &PortSet{ports: make(map[string]*PortState, len(declared))}
	for _, p := range declared {
		ps.ports[p.Name] = &PortState{Desc: p, Declared: true}
		ps.order = append(ps.order, p.Name)
	}
	return ps
}

// Observe registers a callback invoked (synchronously, without the lock
// held) after every mutation.
func (ps *PortSet) Observe(fn func(Change)) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.observers = append(ps.observers, fn)
}

func (ps *PortSet) notify(c Change) {
	ps.mu.RLock()
	obs := make([]func(Change), len(ps.observers))
	copy(obs, ps.observers)
	ps.mu.RUnlock()
	for _, fn := range obs {
		fn(c)
	}
}

// Add extends the set with a new (dynamic) port.
func (ps *PortSet) Add(p xmldesc.Port) error {
	switch p.Kind {
	case xmldesc.PortProvides, xmldesc.PortUses, xmldesc.PortEmits, xmldesc.PortConsumes:
	default:
		return fmt.Errorf("component: port %q: invalid kind %q", p.Name, p.Kind)
	}
	if p.Name == "" {
		return fmt.Errorf("component: unnamed port")
	}
	if err := ps.add(p); err != nil {
		return err
	}
	ps.notify(Change{Kind: PortAdded, Port: p})
	return nil
}

// add inserts the port under the lock; notification happens outside it.
func (ps *PortSet) add(p xmldesc.Port) error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, dup := ps.ports[p.Name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicatePort, p.Name)
	}
	ps.ports[p.Name] = &PortState{Desc: p}
	ps.order = append(ps.order, p.Name)
	return nil
}

// Remove retracts a dynamically added port (declared ports are the
// component's contractual minimum and cannot be removed).
func (ps *PortSet) Remove(name string) error {
	desc, err := ps.remove(name)
	if err != nil {
		return err
	}
	ps.notify(Change{Kind: PortRemoved, Port: desc})
	return nil
}

// remove deletes the port under the lock and returns its descriptor for
// the change notification.
func (ps *PortSet) remove(name string) (xmldesc.Port, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	st, ok := ps.ports[name]
	if !ok {
		return xmldesc.Port{}, fmt.Errorf("%w: %s", ErrNoSuchPort, name)
	}
	if st.Declared {
		return xmldesc.Port{}, fmt.Errorf("%w: %s", ErrPortDeclared, name)
	}
	delete(ps.ports, name)
	for i, n := range ps.order {
		if n == name {
			ps.order = append(ps.order[:i], ps.order[i+1:]...)
			break
		}
	}
	return st.Desc, nil
}

// Connect binds a uses/consumes port to a provider reference.
func (ps *PortSet) Connect(name string, target *ior.IOR) error {
	desc, err := ps.connect(name, target)
	if err != nil {
		return err
	}
	ps.notify(Change{Kind: PortConnected, Port: desc})
	return nil
}

// connect binds the port under the lock and returns its descriptor for
// the change notification.
func (ps *PortSet) connect(name string, target *ior.IOR) (xmldesc.Port, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	st, ok := ps.ports[name]
	if !ok {
		return xmldesc.Port{}, fmt.Errorf("%w: %s", ErrNoSuchPort, name)
	}
	if st.Desc.Kind != xmldesc.PortUses && st.Desc.Kind != xmldesc.PortConsumes {
		return xmldesc.Port{}, fmt.Errorf("component: port %s is %s; only uses/consumes ports connect", name, st.Desc.Kind)
	}
	st.Connected = true
	st.Target = target
	return st.Desc, nil
}

// Disconnect unbinds a port.
func (ps *PortSet) Disconnect(name string) error {
	desc, err := ps.disconnect(name)
	if err != nil {
		return err
	}
	ps.notify(Change{Kind: PortDisconnected, Port: desc})
	return nil
}

// disconnect unbinds the port under the lock and returns its descriptor
// for the change notification.
func (ps *PortSet) disconnect(name string) (xmldesc.Port, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	st, ok := ps.ports[name]
	if !ok {
		return xmldesc.Port{}, fmt.Errorf("%w: %s", ErrNoSuchPort, name)
	}
	st.Connected = false
	st.Target = nil
	return st.Desc, nil
}

// Get returns the state of one port.
func (ps *PortSet) Get(name string) (PortState, bool) {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	st, ok := ps.ports[name]
	if !ok {
		return PortState{}, false
	}
	return *st, true
}

// List snapshots all port states in insertion order.
func (ps *PortSet) List() []PortState {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	out := make([]PortState, 0, len(ps.order))
	for _, n := range ps.order {
		out = append(out, *ps.ports[n])
	}
	return out
}

// Unsatisfied returns the non-optional uses/consumes ports that are not
// yet connected — the dependency set the network must resolve before the
// instance is fully operational.
func (ps *PortSet) Unsatisfied() []xmldesc.Port {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	var out []xmldesc.Port
	for _, n := range ps.order {
		st := ps.ports[n]
		if (st.Desc.Kind == xmldesc.PortUses || st.Desc.Kind == xmldesc.PortConsumes) &&
			!st.Desc.Optional && !st.Connected {
			out = append(out, st.Desc)
		}
	}
	return out
}

// Package component implements the central abstraction of CORBA-LC
// (paper §2.1): components as binary independent units with explicitly
// declared dependencies and offerings. A Component binds together an
// opened package (internal/cpkg), its two descriptor dimensions
// (internal/xmldesc) and its parsed IDL (internal/idl), and defines the
// run-time contracts — Instance, Context — that component
// implementations and containers agree on (§2.2), plus the runtime-
// mutable PortSet that realises the reflection architecture's "the set
// of external properties of a component is not fixed and may change at
// run-time" (§2.4.2).
package component

import (
	"fmt"

	"corbalc/internal/cpkg"
	"corbalc/internal/idl"
	"corbalc/internal/version"
	"corbalc/internal/xmldesc"
)

// ID identifies a component: its package name plus version. Several
// versions of one component may coexist in a repository.
type ID struct {
	Name    string
	Version version.V
}

func (id ID) String() string { return id.Name + "-" + id.Version.String() }

// ParseID parses "name-1.2.3".
func ParseID(s string) (ID, error) {
	for i := len(s) - 1; i > 0; i-- {
		if s[i] == '-' {
			v, err := version.Parse(s[i+1:])
			if err != nil {
				continue
			}
			return ID{Name: s[:i], Version: v}, nil
		}
	}
	return ID{}, fmt.Errorf("component: cannot parse id %q", s)
}

// Component is an installed component: descriptors, IDL and the package
// it arrived in.
type Component struct {
	pkg     *cpkg.Package
	sp      *xmldesc.SoftPkg
	ct      *xmldesc.ComponentType
	idlRepo *idl.Repository
}

// Load opens a package into a Component, parsing its IDL sources into a
// fresh interface repository.
func Load(pkg *cpkg.Package) (*Component, error) {
	c := &Component{
		pkg:     pkg,
		sp:      pkg.SoftPkg(),
		ct:      pkg.ComponentType(),
		idlRepo: idl.NewRepository(),
	}
	sources, err := pkg.IDLSources()
	if err != nil {
		return nil, err
	}
	for path, src := range sources {
		if err := c.idlRepo.ParseString(path, src); err != nil {
			return nil, fmt.Errorf("component %s: %w", c.sp.Name, err)
		}
	}
	return c, nil
}

// LoadBytes opens raw archive bytes into a Component.
func LoadBytes(data []byte) (*Component, error) {
	pkg, err := cpkg.Open(data)
	if err != nil {
		return nil, err
	}
	return Load(pkg)
}

// ID returns the component's identity.
func (c *Component) ID() ID {
	return ID{Name: c.sp.Name, Version: c.sp.ParsedVersion()}
}

// Name returns the component's package name.
func (c *Component) Name() string { return c.sp.Name }

// Version returns the component's version.
func (c *Component) Version() version.V { return c.sp.ParsedVersion() }

// Package returns the underlying archive.
func (c *Component) Package() *cpkg.Package { return c.pkg }

// SoftPkg returns the static-dimension descriptor.
func (c *Component) SoftPkg() *xmldesc.SoftPkg { return c.sp }

// Type returns the dynamic-dimension descriptor.
func (c *Component) Type() *xmldesc.ComponentType { return c.ct }

// IDL returns the component's parsed interface repository.
func (c *Component) IDL() *idl.Repository { return c.idlRepo }

// DependsOn returns the component dependencies (name + version
// requirement) that the network must satisfy before instances run.
func (c *Component) DependsOn() []xmldesc.Dependency {
	return c.sp.ComponentDeps()
}

// Movable reports whether the binary may be fetched to another host.
func (c *Component) Movable() bool { return c.sp.Movable() }

// Splittable reports data-parallel aggregation support (§2.1.1).
func (c *Component) Splittable() bool { return c.sp.Aggregation.Splittable }

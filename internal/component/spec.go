package component

import (
	"fmt"
	"math/rand"

	"corbalc/internal/cpkg"
	"corbalc/internal/xmldesc"
)

// Spec is a programmatic component definition. It assembles the two XML
// descriptors, synthesises the package archive and loads it — the same
// path a component built by cmd/corbalc-pack takes, so code constructed
// from a Spec exercises the full packaging pipeline. Examples, tests and
// benchmarks build their components this way.
type Spec struct {
	Name    string
	Version string
	Title   string

	// Ports of the component type (use the AddX helpers or fill
	// directly).
	Ports []xmldesc.Port

	// IDL maps archive paths to IDL source for the component's types.
	IDL map[string]string

	// Entrypoint is the Go constructor key in a component.Registry. It
	// becomes the code <entrypoint> of a "GoRegistered" implementation.
	Entrypoint string

	// BinarySize synthesises an opaque binary payload of roughly this
	// many bytes (default 1 KiB), standing in for the real DLL and
	// making package-transfer costs observable.
	BinarySize int

	// Compressible selects a repetitive payload (deflates well) instead
	// of a random one.
	Compressible bool

	// Platforms lists (os, processor) pairs to emit implementations
	// for; empty means one "any/any" implementation.
	Platforms [][2]string

	// Optional static properties.
	Deps         []xmldesc.Dependency
	Mobility     string
	Replication  string
	Splittable   bool
	Gather       string
	Lifecycle    string
	MaxInstances int
	QoS          xmldesc.QoS
	Framework    []string
}

// Provide appends a provides port.
func (s *Spec) Provide(name, repoID string) *Spec {
	s.Ports = append(s.Ports, xmldesc.Port{Kind: xmldesc.PortProvides, Name: name, RepoID: repoID})
	return s
}

// Use appends a uses port.
func (s *Spec) Use(name, repoID string, optional bool) *Spec {
	s.Ports = append(s.Ports, xmldesc.Port{Kind: xmldesc.PortUses, Name: name, RepoID: repoID, Optional: optional})
	return s
}

// Emit appends an emits port.
func (s *Spec) Emit(name, eventID string) *Spec {
	s.Ports = append(s.Ports, xmldesc.Port{Kind: xmldesc.PortEmits, Name: name, RepoID: eventID})
	return s
}

// Consume appends a consumes port.
func (s *Spec) Consume(name, eventID string, optional bool) *Spec {
	s.Ports = append(s.Ports, xmldesc.Port{Kind: xmldesc.PortConsumes, Name: name, RepoID: eventID, Optional: optional})
	return s
}

// RepoID returns the component type's repository ID.
func (s *Spec) RepoID() string { return "IDL:corbalc/components/" + s.Name + ":1.0" }

// Build synthesises, signs nothing, and loads the component.
func (s *Spec) Build() (*Component, error) {
	pkg, err := s.BuildPackage()
	if err != nil {
		return nil, err
	}
	return Load(pkg)
}

// BuildPackage synthesises the package archive only.
func (s *Spec) BuildPackage() (*cpkg.Package, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("component: spec needs a name")
	}
	ver := s.Version
	if ver == "" {
		ver = "1.0.0"
	}
	entry := s.Entrypoint
	if entry == "" {
		entry = "corbalc/" + s.Name + ".New"
	}

	platforms := s.Platforms
	if len(platforms) == 0 {
		platforms = [][2]string{{"any", "any"}}
	}
	size := s.BinarySize
	if size <= 0 {
		size = 1024
	}

	sp := &xmldesc.SoftPkg{
		Name:         s.Name,
		Version:      ver,
		Title:        s.Title,
		Dependencies: s.Deps,
		Descriptor:   xmldesc.FileRef{Name: cpkg.ComponentTypeFile},
		Mobility:     s.Mobility,
		Replication:  s.Replication,
		Aggregation:  xmldesc.Aggregation{Splittable: s.Splittable, Gather: s.Gather},
	}
	binaries := make(map[string][]byte, len(platforms))
	rng := rand.New(rand.NewSource(int64(len(s.Name)) + int64(size)))
	for _, pl := range platforms {
		file := fmt.Sprintf("bin/%s-%s-%s.bin", s.Name, pl[0], pl[1])
		sp.Implementations = append(sp.Implementations, xmldesc.Implementation{
			ID:        pl[0] + "-" + pl[1],
			OS:        pl[0],
			Processor: pl[1],
			ORB:       "corbalc",
			Code: xmldesc.CodeRef{
				Type:       "GoRegistered",
				File:       xmldesc.FileRef{Name: file},
				EntryPoint: entry,
			},
		})
		payload := make([]byte, size)
		if s.Compressible {
			for i := range payload {
				payload[i] = byte(i % 16)
			}
		} else {
			_, _ = rng.Read(payload) // math/rand Read cannot fail
		}
		binaries[file] = payload
	}

	var fw []xmldesc.ServiceReq
	for _, name := range s.Framework {
		fw = append(fw, xmldesc.ServiceReq{Name: name})
	}
	ct := &xmldesc.ComponentType{
		Name:      s.Name,
		RepoID:    s.RepoID(),
		Ports:     s.Ports,
		Factory:   xmldesc.Factory{Lifecycle: s.Lifecycle, MaxInstances: s.MaxInstances},
		QoS:       s.QoS,
		Framework: fw,
	}

	idlFiles := s.IDL
	if idlFiles == nil {
		idlFiles = map[string]string{}
	}
	for path := range idlFiles {
		sp.IDLFiles = append(sp.IDLFiles, xmldesc.FileRef{Name: path})
	}

	b := &cpkg.Builder{SoftPkg: sp, ComponentType: ct, IDL: idlFiles, Binaries: binaries}
	data, err := b.Build()
	if err != nil {
		return nil, err
	}
	return cpkg.Open(data)
}

package component

import (
	"errors"
	"fmt"
	"sync"

	"corbalc/internal/cdr"
	"corbalc/internal/events"
	"corbalc/internal/orb"
	"corbalc/internal/xmldesc"
)

// Instance is the agreed local interface a component implementation
// presents to its container (paper §2.2: "the component/container dialog
// is based on agreed local interfaces, thus conforming a component
// framework"). Implementations must be safe for concurrent InvokePort
// calls.
type Instance interface {
	// Activate prepares the instance to serve requests; the container
	// passes the Context giving access to framework services.
	Activate(ctx Context) error
	// Passivate quiesces the instance (prior to destruction or
	// migration). After Passivate the container will not deliver
	// further invocations.
	Passivate() error
	// InvokePort dispatches an operation on a provided port.
	InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error
	// ConsumeEvent delivers an event arriving on a consumes port.
	ConsumeEvent(port string, ev events.Event)
	// CaptureState serialises the instance state so the framework can
	// migrate or replicate it ("the container can ask the component
	// instance to resume its execution returning its internal state").
	CaptureState() ([]byte, error)
	// RestoreState installs state captured from another incarnation.
	RestoreState(state []byte) error
}

// Context is the container-provided view of the framework (§2.2: "the
// instances ask the container for the required services and it in turn
// informs the instance of its environment").
type Context interface {
	// InstanceName returns the framework-assigned instance name.
	InstanceName() string
	// NodeName returns the hosting node's name.
	NodeName() string
	// UsePort resolves a connected uses port to an invocable reference.
	UsePort(name string) (*orb.ObjectRef, error)
	// Emit publishes an event on an emits port's push channel.
	Emit(port string, data []byte) error
	// AddPort extends the instance's port set at run-time (reflection
	// architecture, §2.4.2).
	AddPort(p xmldesc.Port) error
	// RemovePort retracts a dynamically added port.
	RemovePort(name string) error
	// Ports snapshots the instance's current port states.
	Ports() []PortState
}

// Errors shared by instance plumbing.
var (
	ErrNoSuchPort    = errors.New("component: no such port")
	ErrNotConnected  = errors.New("component: port not connected")
	ErrPortDeclared  = errors.New("component: cannot remove a port declared by the component type")
	ErrDuplicatePort = errors.New("component: duplicate port")
)

// Constructor builds a fresh, unactivated instance.
type Constructor func() Instance

// Registry maps implementation entry points (the <entrypoint> element of
// a softpkg code descriptor) to Go constructors. It substitutes for
// dynamic library loading: package installation still moves real binary
// payloads between nodes, but the final dlopen step resolves through
// this table (see DESIGN.md, substitutions).
type Registry struct {
	mu    sync.RWMutex
	ctors map[string]Constructor
}

// NewRegistry returns an empty implementation registry.
func NewRegistry() *Registry {
	return &Registry{ctors: make(map[string]Constructor)}
}

// Register binds an entry point to a constructor; later bindings win,
// mirroring library replacement on disk.
func (r *Registry) Register(entrypoint string, ctor Constructor) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ctors[entrypoint] = ctor
}

// New instantiates the implementation behind an entry point.
func (r *Registry) New(entrypoint string) (Instance, error) {
	r.mu.RLock()
	ctor, ok := r.ctors[entrypoint]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("component: entrypoint %q not registered", entrypoint)
	}
	return ctor(), nil
}

// Has reports whether an entry point is registered.
func (r *Registry) Has(entrypoint string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.ctors[entrypoint]
	return ok
}

// DefaultRegistry is the process-wide registry examples and cmd binaries
// register into.
var DefaultRegistry = NewRegistry()

// Base is an embeddable partial Instance: it stores the context on
// Activate and provides no-op lifecycle, state and event methods, so
// simple components implement only InvokePort (plus whatever they
// override).
type Base struct {
	mu  sync.RWMutex
	ctx Context
}

// Activate implements Instance.
func (b *Base) Activate(ctx Context) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ctx = ctx
	return nil
}

// Passivate implements Instance.
func (b *Base) Passivate() error { return nil }

// InvokePort implements Instance; components embedding Base override it
// for the ports they actually provide.
func (b *Base) InvokePort(port, op string, _ *cdr.Decoder, _ *cdr.Encoder) error {
	return fmt.Errorf("%w: %s (operation %s)", ErrNoSuchPort, port, op)
}

// ConsumeEvent implements Instance.
func (b *Base) ConsumeEvent(string, events.Event) {}

// CaptureState implements Instance (stateless).
func (b *Base) CaptureState() ([]byte, error) { return nil, nil }

// RestoreState implements Instance (stateless).
func (b *Base) RestoreState([]byte) error { return nil }

// Ctx returns the context supplied at activation (nil before).
func (b *Base) Ctx() Context {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.ctx
}

package analysis_test

import (
	"errors"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"corbalc/internal/analysis"
)

// loadSrc type-checks one synthetic file as its own package.
func loadSrc(t *testing.T, src string) *analysis.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.NewLoader().LoadDir(dir, "x")
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("fixture does not type-check: %v", terr)
	}
	return pkg
}

// varFlag reports every package-level var declaration — a minimal
// analyzer for exercising the driver.
var varFlag = &analysis.Analyzer{
	Name: "varflag",
	Doc:  "flag var declarations (test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if gd, ok := n.(*ast.GenDecl); ok && gd.Tok == token.VAR {
					pass.Reportf(gd.Pos(), "var declared")
				}
				return true
			})
		}
		return nil
	},
}

func runOn(t *testing.T, a *analysis.Analyzer, src string) []analysis.Diagnostic {
	t.Helper()
	return analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{loadSrc(t, src)})
}

func TestRunReportsFindings(t *testing.T) {
	diags := runOn(t, varFlag, "package x\n\nvar A = 1\n")
	if len(diags) != 1 || diags[0].Analyzer != "varflag" {
		t.Fatalf("want one varflag diagnostic, got %v", diags)
	}
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	diags := runOn(t, varFlag, "package x\n\n//lint:ignore varflag exercised by TestIgnoreDirectiveSuppresses\nvar A = 1\n")
	if len(diags) != 0 {
		t.Fatalf("valid directive must suppress the finding, got %v", diags)
	}
}

func TestUnknownAnalyzerNameInDirective(t *testing.T) {
	diags := runOn(t, varFlag, "package x\n\n//lint:ignore nosuchanalyzer some reason\nvar A = 1\n")
	var directive *analysis.Diagnostic
	for i := range diags {
		if diags[i].Analyzer == "directive" {
			directive = &diags[i]
		}
	}
	if directive == nil {
		t.Fatalf("a typo'd analyzer name must be reported (it silently suppresses nothing while looking audited), got %v", diags)
	}
	if !strings.Contains(directive.Message, `unknown analyzer "nosuchanalyzer"`) {
		t.Errorf("message should name the bad analyzer: %s", directive.Message)
	}
	if !strings.Contains(directive.Message, "varflag") {
		t.Errorf("message should list the known analyzers: %s", directive.Message)
	}
	// The finding itself still comes through — the directive bound nothing.
	found := false
	for _, d := range diags {
		if d.Analyzer == "varflag" {
			found = true
		}
	}
	if !found {
		t.Errorf("the var finding must survive a typo'd suppression, got %v", diags)
	}
}

func TestMalformedDirective(t *testing.T) {
	diags := runOn(t, varFlag, "package x\n\n//lint:ignore varflag\nvar A = 1\n")
	found := false
	for _, d := range diags {
		if d.Analyzer == "directive" && strings.Contains(d.Message, "malformed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("a directive with no reason must be reported as malformed, got %v", diags)
	}
}

func TestAnalyzerErrorBecomesDiagnostic(t *testing.T) {
	boom := &analysis.Analyzer{
		Name: "boom",
		Doc:  "always errors (test analyzer)",
		Run:  func(*analysis.Pass) error { return errors.New("kaboom") },
	}
	diags := runOn(t, boom, "package x\n")
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "internal error: kaboom") {
		t.Fatalf("analyzer errors must surface as diagnostics, not panics: %v", diags)
	}
}

func TestFinishRunsOncePerBatch(t *testing.T) {
	counter := &analysis.Analyzer{
		Name: "counter",
		Doc:  "counts packages, reports once (test analyzer)",
		Run: func(pass *analysis.Pass) error {
			n, _ := pass.Batch.State.(int)
			pass.Batch.State = n + 1
			return nil
		},
		Finish: func(b *analysis.Batch) error {
			b.Report(analysis.Diagnostic{Message: "saw " + strings.Repeat("*", b.State.(int))})
			return nil
		},
	}
	pkgs := []*analysis.Package{
		loadSrc(t, "package x\n"),
		loadSrc(t, "package y\n"),
	}
	diags := analysis.Run([]*analysis.Analyzer{counter}, pkgs)
	if len(diags) != 1 || diags[0].Message != "saw **" {
		t.Fatalf("Finish must run once after both packages, got %v", diags)
	}
}

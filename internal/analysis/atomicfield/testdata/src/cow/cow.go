// Package cow is the atomicfield fixture for the copy-on-write
// registry idiom the hot path relies on: a snapshot map behind an
// atomic.Pointer that readers Load lock-free while the single writer
// clones and Stores under its mutex. The analyzer must accept that
// disciplined shape and still flag the shortcuts that void it —
// copying the pointer cell, overwriting it wholesale, or touching an
// old-style generation word without atomics.
package cow

import (
	"sync"
	"sync/atomic"
)

// registry mirrors the object adapter's active-object map: mu
// serialises writers only; readers never take it.
type registry struct {
	mu   sync.Mutex
	m    atomic.Pointer[map[string]int]
	gen  uint64
	hits atomic.Uint64
}

// goodLookup is the lock-free read path: Load the snapshot, read the
// immutable map behind it.
func (r *registry) goodLookup(key string) (int, bool) {
	r.hits.Add(1)
	snap := r.m.Load()
	if snap == nil {
		return 0, false
	}
	v, ok := (*snap)[key]
	return v, ok
}

// goodInsert is the disciplined COW write: clone under the writer
// mutex, publish the new snapshot with Store.
func (r *registry) goodInsert(key string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.m.Load()
	next := make(map[string]int, 1)
	if old != nil {
		for k, ov := range *old {
			next[k] = ov
		}
	}
	next[key] = v
	r.m.Store(&next)
	atomic.AddUint64(&r.gen, 1)
}

// badSnapshotCopy copies the pointer cell instead of loading through
// it; the copy's Load races every concurrent Store.
func (r *registry) badSnapshotCopy() map[string]int {
	p := r.m // want `copying atomic field m as a value defeats its atomicity`
	if s := p.Load(); s != nil {
		return *s
	}
	return nil
}

// badReset replaces the cell wholesale — holding the writer mutex does
// not help, readers Load without it.
func (r *registry) badReset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m = atomic.Pointer[map[string]int]{} // want `plain assignment to atomic field m bypasses sync/atomic`
}

// badGenRead reads the old-style generation word plainly while
// goodInsert advances it atomically.
func (r *registry) badGenRead() uint64 {
	return r.gen // want `plain read of gen, which is accessed via atomic\.AddUint64`
}

// Package a is the atomicfield fixture: old-style atomics mixed with
// plain access (flagged), typed atomics copied or overwritten
// (flagged), and the disciplined shapes that pass.
package a

import (
	"sync/atomic"
)

// counters mixes old-style atomic access with plain access: every
// plain touch of gen is a race against the Add.
type counters struct {
	gen   uint64
	clean uint64
	only  uint64
}

func (c *counters) bump() {
	atomic.AddUint64(&c.gen, 1)
}

func (c *counters) badPlainRead() uint64 {
	return c.gen // want `plain read of gen, which is accessed via atomic\.AddUint64`
}

func (c *counters) badPlainWrite() {
	c.gen = 0 // want `plain write of gen, which is accessed via atomic\.AddUint64`
}

func (c *counters) badIncDec() {
	c.gen++ // want `plain write of gen, which is accessed via atomic\.AddUint64`
}

// Good: every access to clean is atomic.
func (c *counters) goodAllAtomic() uint64 {
	atomic.StoreUint64(&c.clean, 7)
	return atomic.LoadUint64(&c.clean)
}

// Good: only is never touched atomically; plain access is fine.
func (c *counters) goodPlainOnly() uint64 {
	c.only++
	return c.only
}

// Good: composite-literal keys are initialization, not access.
func newCounters() *counters {
	return &counters{gen: 0, clean: 0}
}

// Package-level words follow the same rule.
var hits uint64

func bumpHits() { atomic.AddUint64(&hits, 1) }

func badReadHits() uint64 {
	return hits // want `plain read of hits, which is accessed via atomic\.AddUint64`
}

// typed exercises the typed-atomic discipline.
type typed struct {
	n   atomic.Uint64
	ptr atomic.Pointer[int]
}

func (t *typed) goodMethods() uint64 {
	t.n.Add(1)
	t.ptr.Store(nil)
	return t.n.Load()
}

func (t *typed) goodAddress() *atomic.Uint64 {
	return &t.n
}

func (t *typed) badCopy() {
	x := t.n // want `copying atomic field n as a value defeats its atomicity`
	_ = x
}

func (t *typed) badAssign() {
	t.n = atomic.Uint64{} // want `plain assignment to atomic field n bypasses sync/atomic`
}

func consume(v atomic.Uint64) uint64 { return v.Load() }

func (t *typed) badArg() uint64 {
	return consume(t.n) // want `copying atomic field n as a value defeats its atomicity`
}

// Good: an audited pre-publication reset.
func (c *counters) auditedReset() {
	//lint:ignore atomicfield reset happens before the counters value is shared
	c.gen = 0
}

package atomicfield_test

import (
	"testing"

	"corbalc/internal/analysis/analysistest"
	"corbalc/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, atomicfield.Analyzer, "a", "cow")
}

// Package atomicfield enforces all-or-nothing atomicity on struct
// fields and package variables.
//
// The substrate's lock-free state — the reaper's generation counter,
// the coalescer's enqueue counter, the 1-in-8 stats sampling — is
// correct only if EVERY access to an atomically-used word goes through
// sync/atomic: one plain read mixed in is a data race the race detector
// only catches when a test happens to interleave it. Two disciplines
// are checked per package:
//
//  1. Old-style atomics: a field or package variable whose address is
//     passed to a sync/atomic function (atomic.AddUint64(&s.n, 1), …)
//     must never be read or written plainly anywhere else in the
//     package. Composite-literal keys are exempt — initialization
//     before the value is shared is not an access.
//
//  2. Typed atomics (atomic.Uint64, atomic.Pointer[T], atomic.Value,
//     …): the field must only be used through its methods or by
//     address. Copying it as a value or assigning over it bypasses the
//     atomicity (and smuggles a noCopy violation past readers even
//     when vet's copylocks would catch the copy itself).
//
// Both checks are package-local: unexported fields cannot be touched
// elsewhere, and the repo keeps exported state behind accessors.
// Intentional pre-publication plain access (rare; prefer typed atomics,
// whose zero values make it unnecessary) must carry
// //lint:ignore atomicfield <reason>.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"corbalc/internal/analysis"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "forbid mixing sync/atomic and plain access to the same field, and value-copies of typed atomics",
	Run:  run,
}

// atomicUse records one sync/atomic call taking a variable's address.
type atomicUse struct {
	fn  string // e.g. "atomic.AddUint64"
	pos token.Pos
}

// plainAccess records one non-atomic read or write of a variable.
type plainAccess struct {
	pos   token.Pos
	write bool
}

func run(pass *analysis.Pass) error {
	atomics := map[*types.Var]atomicUse{}    // vars address-passed to sync/atomic funcs
	plains := map[*types.Var][]plainAccess{} // plain accesses of candidate vars

	for _, f := range pass.Files {
		walk(f, func(n ast.Node, parents []ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok {
				return
			}
			v := varOf(pass.TypesInfo, id)
			if v == nil || isLitKey(id, parents) {
				return
			}
			if isAtomicNamed(v.Type()) {
				checkTypedUse(pass, id, v, parents)
				return
			}
			if fn, pos, ok := atomicArg(pass.TypesInfo, id, parents); ok {
				if _, seen := atomics[v]; !seen {
					atomics[v] = atomicUse{fn: fn, pos: pos}
				}
				return
			}
			plains[v] = append(plains[v], plainAccess{pos: id.Pos(), write: isWrite(id, parents)})
		})
	}

	for v, use := range atomics {
		for _, p := range plains[v] {
			kind := "read"
			if p.write {
				kind = "write"
			}
			pass.Reportf(p.pos,
				"plain %s of %s, which is accessed via %s at %s; every access to an atomic word must go through sync/atomic (or migrate the field to a typed atomic)",
				kind, v.Name(), use.fn, pass.Fset.Position(use.pos))
		}
	}
	return nil
}

// varOf resolves an identifier to a struct field or package-level
// variable — the shareable kinds whose access discipline matters.
// Locals are skipped: they cannot be reached from another goroutine
// except through closures, where the race detector and lockdiscipline
// do better.
func varOf(info *types.Info, id *ast.Ident) *types.Var {
	// Only Uses: a definition site (the struct field declaration, the
	// var statement itself) is not an access.
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if v.IsField() {
		return v
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe { // package scope
		return v
	}
	return nil
}

// isLitKey reports whether id is the key of a keyed composite-literal
// element (S{n: 0}) — initialization, not access.
func isLitKey(id *ast.Ident, parents []ast.Node) bool {
	if len(parents) < 2 {
		return false
	}
	kv, ok := parents[len(parents)-1].(*ast.KeyValueExpr)
	if !ok || kv.Key != id {
		return false
	}
	_, inLit := parents[len(parents)-2].(*ast.CompositeLit)
	return inLit
}

// atomicArg reports whether the identifier id (whose parents are given,
// innermost last) is being address-passed to a sync/atomic package
// function: selector? -> & -> call. It returns the callee name and
// call position. The receiver side of a selector (the s of &s.n) does
// not count — only the field itself is the atomic word.
func atomicArg(info *types.Info, id *ast.Ident, parents []ast.Node) (string, token.Pos, bool) {
	i := len(parents) - 1
	if i >= 0 {
		if sel, ok := parents[i].(*ast.SelectorExpr); ok {
			if sel.Sel != id {
				return "", token.NoPos, false
			}
			i--
		}
	}
	if i < 0 {
		return "", token.NoPos, false
	}
	u, ok := parents[i].(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return "", token.NoPos, false
	}
	for i--; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			f := analysis.FuncOf(info, p)
			if f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic" &&
				f.Type().(*types.Signature).Recv() == nil {
				return "atomic." + f.Name(), p.Pos(), true
			}
			return "", token.NoPos, false
		default:
			return "", token.NoPos, false
		}
	}
	return "", token.NoPos, false
}

// isWrite reports whether the access is an assignment target or an
// inc/dec operand.
func isWrite(id *ast.Ident, parents []ast.Node) bool {
	// Walk out through the selector/paren wrapping the identifier.
	node := ast.Node(id)
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.SelectorExpr:
			if p.Sel != id && p != node {
				return false
			}
			node = p
		case *ast.ParenExpr:
			node = p
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if ast.Unparen(lhs) == node {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return ast.Unparen(p.X) == node
		case *ast.UnaryExpr:
			// &x then stored/passed: treat as a write-capable escape.
			return p.Op == token.AND
		default:
			return false
		}
	}
	return false
}

// atomicTypeNames are the typed atomics of sync/atomic.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// isAtomicNamed reports whether t is (an alias of) a sync/atomic typed
// atomic.
func isAtomicNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()]
}

// checkTypedUse flags value-copies of and plain assignments to typed
// atomic fields. Legal uses: method calls (v.Load()), taking the
// address (&v, preserving atomicity through the pointer), and
// composite-literal keys (handled by the caller).
func checkTypedUse(pass *analysis.Pass, id *ast.Ident, v *types.Var, parents []ast.Node) {
	node := ast.Node(id)
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.SelectorExpr:
			if p.Sel == id {
				node = p // s.ctr: keep unwrapping
				continue
			}
			if p.X == node {
				// node.Method(...) or node.field — method selection is the
				// blessed use; typed atomics export no fields.
				return
			}
			return
		case *ast.ParenExpr:
			node = p
			continue
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return // &s.ctr keeps atomicity
			}
			node = p
			continue
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if ast.Unparen(lhs) == node {
					pass.Reportf(id.Pos(),
						"plain assignment to atomic field %s bypasses sync/atomic; use %s.Store (a typed atomic's zero value is ready to use — resetting it is never needed)",
						v.Name(), v.Name())
					return
				}
			}
			pass.Reportf(id.Pos(),
				"copying atomic field %s as a value defeats its atomicity (and its noCopy guard); call %s.Load or pass &%s",
				v.Name(), v.Name(), v.Name())
			return
		case *ast.StarExpr:
			node = p
			continue
		default:
			_, isExpr := p.(ast.Expr)
			_, isReturn := p.(*ast.ReturnStmt)
			if isExpr || isReturn {
				// Used as a value inside a larger expression (call
				// argument, composite literal value, return, …).
				pass.Reportf(id.Pos(),
					"copying atomic field %s as a value defeats its atomicity (and its noCopy guard); call %s.Load or pass &%s",
					v.Name(), v.Name(), v.Name())
			}
			return
		}
	}
}

// walk traverses the file keeping a parent stack (innermost parent
// last), invoking fn at every node.
func walk(root ast.Node, fn func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// Package b locks its pool and then calls into a — one half of a
// cross-package lock cycle (the other half lives in package c, which
// holds a.Mu while calling back into b). The cycle is reported once, at
// its earliest edge, which is here.
package b

import (
	"sync"

	"a"
)

type Pool struct {
	mu sync.Mutex
}

var P Pool

func Flush() {
	P.mu.Lock()
	defer P.mu.Unlock()
	a.Touch() // want `lock-order cycle: a\.Mu → b\.Pool\.mu → a\.Mu`
}

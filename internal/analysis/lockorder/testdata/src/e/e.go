// Package e models the striped state the multi-core hot path shards: a
// directory lock over per-stripe locks (the transport's pending-map
// stripes, the ORB's channel cache). The sanctioned order is directory
// first, stripe second; a helper that climbs back from a stripe to the
// directory closes a cycle and must be flagged. Consistent
// directory→stripe sections — direct or through a synchronous helper —
// must pass.
package e

import "sync"

type stripe struct {
	mu sync.Mutex
	n  int
}

type table struct {
	mu      sync.Mutex
	stripes []*stripe
}

// badClimb locks a stripe and then climbs to the directory lock — the
// reverse of goodSweep's order, so the two functions can deadlock.
func (t *table) badClimb(s *stripe) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.mu.Lock() // want `lock-order cycle: e\.stripe\.mu → e\.table\.mu → e\.stripe\.mu`
	t.mu.Unlock()
}

// goodSweep holds the directory lock and visits stripes underneath.
func (t *table) goodSweep() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for _, s := range t.stripes {
		s.mu.Lock()
		total += s.n
		s.mu.Unlock()
	}
	return total
}

// lockedCount assumes the directory lock is held and takes one stripe
// lock — the helper shape the propagation pass must see through.
func (t *table) lockedCount(s *stripe) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// goodViaCall acquires directory→stripe through the helper: the same
// direction as goodSweep, so no new cycle.
func (t *table) goodViaCall(s *stripe) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lockedCount(s)
}

// Package c holds a.Mu while calling into b, closing the cross-package
// cycle started in package b. No diagnostic lands here — the cycle is
// anchored at its earliest edge, in b.
package c

import (
	"a"
	"b"
)

func Drain() {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.Flush()
}

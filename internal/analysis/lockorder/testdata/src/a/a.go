// Package a owns the shared registry mutex both b and c acquire.
package a

import "sync"

var Mu sync.Mutex

func Touch() {
	Mu.Lock()
	defer Mu.Unlock()
}

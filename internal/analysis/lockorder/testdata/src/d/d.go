// Package d holds two intra-package cycles — writer/writer and
// reader/writer (RLock orders like Lock) — plus the consistently
// ordered and strictly sequential shapes that pass.
package d

import "sync"

type S struct {
	mu1, mu2 sync.Mutex
}

func (s *S) lockForward() {
	s.mu1.Lock()
	defer s.mu1.Unlock()
	s.mu2.Lock() // want `lock-order cycle: d\.S\.mu1 → d\.S\.mu2 → d\.S\.mu1`
	defer s.mu2.Unlock()
}

func (s *S) lockBackward() {
	s.mu2.Lock()
	defer s.mu2.Unlock()
	s.mu1.Lock()
	s.mu1.Unlock()
}

type T struct {
	a sync.RWMutex
	b sync.Mutex
}

func (t *T) readThenB() {
	t.a.RLock()
	defer t.a.RUnlock()
	t.b.Lock() // want `lock-order cycle: d\.T\.a → d\.T\.b → d\.T\.a`
	t.b.Unlock()
}

func (t *T) bThenWrite() {
	t.b.Lock()
	defer t.b.Unlock()
	t.a.Lock()
	t.a.Unlock()
}

// U is the disciplined shape: every path that holds both locks takes x
// before y, and sequential critical sections do not nest, so the graph
// stays acyclic.
type U struct {
	x, y sync.Mutex
}

func (u *U) firstPath() {
	u.x.Lock()
	defer u.x.Unlock()
	u.y.Lock()
	u.y.Unlock()
}

func (u *U) secondPath() {
	u.x.Lock()
	defer u.x.Unlock()
	u.y.Lock()
	u.y.Unlock()
}

func (u *U) sequential() {
	u.y.Lock()
	u.y.Unlock()
	u.x.Lock()
	u.x.Unlock()
}

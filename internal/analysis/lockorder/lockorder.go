// Package lockorder builds the whole-program lock-acquisition graph and
// reports ordering cycles — the deadlocks lockdiscipline's per-function
// view cannot see.
//
// The substrate holds several locks with overlapping lifetimes: the
// channel cache mutex, the stripe-pool per-stripe mutexes, the write
// coalescer's flush lock, and the dispatch queue's state lock. Each is
// correct in isolation; a deadlock needs two goroutines acquiring two of
// them in opposite orders, which no single function (and often no single
// package) exhibits. This analyzer:
//
//  1. Per package (Run), records for every function body which locks it
//     acquires directly, which functions it calls synchronously, and —
//     for every held-lock region — the acquisitions and calls made while
//     the lock is held. A lock is identified by its defining site:
//     "pkgpath.Type.field" for a mutex struct field, "pkgpath.Var" for a
//     package-level mutex. RLock counts as Lock: reader/writer pairs
//     deadlock through writer preference just like two writers.
//
//  2. Once all packages are seen (Finish), propagates acquisitions
//     through the call graph to a fixpoint, materializes the edge
//     A -> B ("B acquired while A held", directly or via a call chain),
//     and reports every strongly connected component of two or more
//     locks as a potential deadlock, once, at its earliest edge.
//
// Limitations, by design: locks held across goroutine boundaries are
// goroutinelifetime's problem (go statements are not synchronous calls);
// calls through interfaces and function values do not propagate (the
// callee is unknown statically); local mutexes that never leave a
// function cannot participate in a cross-function cycle and are skipped.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"corbalc/internal/analysis"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:   "lockorder",
	Doc:    "build the cross-package lock-acquisition graph and report ordering cycles (potential deadlocks)",
	Run:    run,
	Finish: finish,
}

// state is the per-batch accumulator shared by all packages of one run.
type state struct {
	fset  *token.FileSet
	funcs map[string]*funcFacts // keyed by types.Func.FullName (or a synthetic literal key)
}

// funcFacts is what one function body contributes to the global graph.
type funcFacts struct {
	acquires map[string]token.Pos // lock id -> first direct acquisition
	calls    map[string]token.Pos // callee full name -> first synchronous call
	regions  []heldRegion
}

// heldRegion is the span of one critical section: everything acquired or
// called between taking the lock and its release (or function end, for
// deferred releases).
type heldRegion struct {
	lock     string
	acquires []lockAt
	calls    []callAt
}

type lockAt struct {
	lock string
	pos  token.Pos
}

type callAt struct {
	fn  string
	pos token.Pos
}

func run(pass *analysis.Pass) error {
	st, _ := pass.Batch.State.(*state)
	if st == nil {
		st = &state{funcs: map[string]*funcFacts{}}
		pass.Batch.State = st
	}
	st.fset = pass.Fset // the loader shares one FileSet across packages

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				if f, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					st.funcs[f.FullName()] = analyzeBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				// Literals cannot be called by name, so they never gain
				// acquisitions from propagation — but their own critical
				// sections still contribute edges.
				key := fmt.Sprintf("%s.func@%v", pass.PkgPath, pass.Fset.Position(fn.Pos()))
				st.funcs[key] = analyzeBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// lockKind distinguishes reader and writer acquisitions for pairing
// releases; the graph itself unifies them.
type lockKind int

const (
	writer lockKind = iota
	reader
)

// lockOp is one Lock/Unlock-family call on an identifiable mutex.
type lockOp struct {
	id       string
	kind     lockKind
	acquire  bool
	deferred bool
	pos      token.Pos // the call
	stmtEnd  token.Pos // end of the enclosing statement
	stmtPos  token.Pos
}

// analyzeBody extracts the lock facts of one function body. Nested
// function literals are excluded — they are analyzed as functions in
// their own right — and go/defer statements are not synchronous
// execution, so their callees do not run under the held lock.
func analyzeBody(pass *analysis.Pass, body *ast.BlockStmt) *funcFacts {
	facts := &funcFacts{
		acquires: map[string]token.Pos{},
		calls:    map[string]token.Pos{},
	}
	ops := collectOps(pass, body)

	for _, op := range ops {
		if !op.acquire {
			continue
		}
		if _, seen := facts.acquires[op.id]; !seen {
			facts.acquires[op.id] = op.pos
		}
		if op.deferred {
			continue // a deferred acquire runs at return, outside any region here
		}
		facts.regions = append(facts.regions, heldRegion{lock: op.id})
		r := &facts.regions[len(facts.regions)-1]
		start, end := op.stmtEnd, regionEnd(body, ops, op)
		for _, other := range ops {
			if other.acquire && other.id != op.id && other.pos > start && other.pos < end {
				r.acquires = append(r.acquires, lockAt{lock: other.id, pos: other.pos})
			}
		}
		collectCallsIn(pass, body, start, end, func(name string, pos token.Pos) {
			r.calls = append(r.calls, callAt{fn: name, pos: pos})
		})
	}

	collectCallsIn(pass, body, body.Pos(), body.End(), func(name string, pos token.Pos) {
		if _, seen := facts.calls[name]; !seen {
			facts.calls[name] = pos
		}
	})
	return facts
}

// regionEnd finds where op's critical section ends: the first manual
// matching release after the acquire, or the end of the function when
// the release is deferred (or missing — lockdiscipline reports that).
func regionEnd(body *ast.BlockStmt, ops []*lockOp, op *lockOp) token.Pos {
	for _, rel := range ops {
		if rel.acquire || rel.id != op.id || rel.kind != op.kind {
			continue
		}
		if rel.deferred {
			return body.End()
		}
	}
	end := body.End()
	for _, rel := range ops {
		if !rel.acquire && rel.id == op.id && rel.kind == op.kind && !rel.deferred &&
			rel.stmtPos > op.stmtEnd && rel.stmtPos < end {
			end = rel.stmtPos
		}
	}
	return end
}

// collectOps gathers Lock/Unlock-family calls on identifiable sync
// mutexes, not descending into nested function literals. Deferred
// closures are scanned so `defer func() { mu.Unlock() }()` pairs.
func collectOps(pass *analysis.Pass, body *ast.BlockStmt) []*lockOp {
	var ops []*lockOp
	addCall := func(stmt ast.Stmt, call *ast.CallExpr, deferred bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		var kind lockKind
		var acquire bool
		switch sel.Sel.Name {
		case "Lock":
			kind, acquire = writer, true
		case "Unlock":
			kind, acquire = writer, false
		case "RLock":
			kind, acquire = reader, true
		case "RUnlock":
			kind, acquire = reader, false
		default:
			return
		}
		f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
			return
		}
		id := lockID(pass, sel.X)
		if id == "" {
			return
		}
		ops = append(ops, &lockOp{
			id: id, kind: kind, acquire: acquire, deferred: deferred,
			pos: call.Pos(), stmtEnd: stmt.End(), stmtPos: stmt.Pos(),
		})
	}
	inspectShallow(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				addCall(s, call, false)
			}
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						addCall(s, call, true)
					}
					return true
				})
				return false
			}
			addCall(s, s.Call, true)
		}
		return true
	})
	return ops
}

// lockID names the mutex behind expr by its defining site, or "" for
// mutexes the graph cannot identify (locals, embedded receivers).
func lockID(pass *analysis.Pass, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && !v.IsField() &&
			v.Parent() != nil && v.Parent().Parent() == types.Universe && v.Pkg() != nil {
			return v.Pkg().Path() + "." + v.Name()
		}
		return ""
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pass.TypesInfo.Uses[x].(*types.PkgName); isPkg {
				if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
					return v.Pkg().Path() + "." + v.Name()
				}
				return ""
			}
		}
		v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return ""
		}
		tv, ok := pass.TypesInfo.Types[e.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + v.Name()
		}
		return ""
	}
	return ""
}

// collectCallsIn invokes fn for every resolvable synchronous call
// positioned inside (start, end), skipping nested literals, go
// statements and defers. sync and sync/atomic callees are excluded —
// lock operations are modeled as ops, not calls.
func collectCallsIn(pass *analysis.Pass, body *ast.BlockStmt, start, end token.Pos, fn func(string, token.Pos)) {
	inspectShallow(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= start || call.End() > end {
			return true
		}
		f := analysis.FuncOf(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p == "sync" || p == "sync/atomic" {
			return true
		}
		fn(f.FullName(), call.Pos())
		return true
	})
}

// inspectShallow walks body without descending into nested function
// literals.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return fn(n)
	})
}

// edgeInfo is the earliest witness of "to acquired while from is held".
type edgeInfo struct {
	pos token.Pos
	via string // callee chain head, "" for a direct acquisition
}

func finish(batch *analysis.Batch) error {
	st, _ := batch.State.(*state)
	if st == nil {
		return nil
	}

	// Propagate acquisitions through the synchronous call graph.
	trans := map[string]map[string]bool{}
	for name, f := range st.funcs {
		set := map[string]bool{}
		for lock := range f.acquires {
			set[lock] = true
		}
		trans[name] = set
	}
	for changed := true; changed; {
		changed = false
		for name, f := range st.funcs {
			for callee := range f.calls {
				for lock := range trans[callee] {
					if !trans[name][lock] {
						trans[name][lock] = true
						changed = true
					}
				}
			}
		}
	}

	// Materialize edges, keeping the earliest witness per pair.
	edges := map[string]map[string]edgeInfo{}
	addEdge := func(from, to string, pos token.Pos, via string) {
		if from == to {
			return
		}
		if edges[from] == nil {
			edges[from] = map[string]edgeInfo{}
		}
		if cur, ok := edges[from][to]; !ok || pos < cur.pos {
			edges[from][to] = edgeInfo{pos: pos, via: via}
		}
	}
	for _, name := range sortedKeys(st.funcs) {
		for _, r := range st.funcs[name].regions {
			for _, acq := range r.acquires {
				addEdge(r.lock, acq.lock, acq.pos, "")
			}
			for _, c := range r.calls {
				for _, lock := range sortedKeys(trans[c.fn]) {
					addEdge(r.lock, lock, c.pos, c.fn)
				}
			}
		}
	}

	for _, scc := range cyclicComponents(edges) {
		cycle := findCycle(edges, scc)
		if cycle == nil {
			continue
		}
		reportCycle(batch, st.fset, edges, cycle)
	}
	return nil
}

// cyclicComponents returns the strongly connected components of two or
// more locks, each sorted, in deterministic order (Tarjan over sorted
// nodes).
func cyclicComponents(edges map[string]map[string]edgeInfo) [][]string {
	nodes := map[string]bool{}
	for from, tos := range edges {
		nodes[from] = true
		for to := range tos {
			nodes[to] = true
		}
	}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(n string)
	strongconnect = func(n string) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, m := range sortedKeys(edges[n]) {
			if _, seen := index[m]; !seen {
				strongconnect(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var scc []string
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			if len(scc) > 1 {
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	for _, n := range sortedKeys(nodes) {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

// findCycle returns a simple cycle through the component's smallest
// lock: [start, n1, ..., nk] with an edge from nk back to start.
func findCycle(edges map[string]map[string]edgeInfo, scc []string) []string {
	inSCC := map[string]bool{}
	for _, n := range scc {
		inSCC[n] = true
	}
	start := scc[0]
	seen := map[string]bool{start: true}
	var path []string
	var dfs func(n string) bool
	dfs = func(n string) bool {
		path = append(path, n)
		for _, m := range sortedKeys(edges[n]) {
			if !inSCC[m] {
				continue
			}
			if m == start && len(path) > 1 {
				return true
			}
			if !seen[m] {
				seen[m] = true
				if dfs(m) {
					return true
				}
				seen[m] = false
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if !dfs(start) {
		return nil
	}
	return path
}

// reportCycle emits one diagnostic for the cycle, anchored at its
// earliest edge, describing every hop.
func reportCycle(batch *analysis.Batch, fset *token.FileSet, edges map[string]map[string]edgeInfo, cycle []string) {
	ring := append(append([]string{}, cycle...), cycle[0])
	minPos := token.Pos(0)
	var hops []string
	for i := 0; i < len(cycle); i++ {
		from, to := ring[i], ring[i+1]
		e := edges[from][to]
		if minPos == 0 || e.pos < minPos {
			minPos = e.pos
		}
		hop := fmt.Sprintf("%s is held while %s is acquired at %v", from, to, fset.Position(e.pos))
		if e.via != "" {
			hop += " via " + e.via
		}
		hops = append(hops, hop)
	}
	batch.Report(analysis.Diagnostic{
		Pos: minPos,
		Message: fmt.Sprintf("lock-order cycle: %s — %s; acquire these locks in one global order",
			strings.Join(ring, " → "), strings.Join(hops, "; ")),
	})
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package lockorder_test

import (
	"testing"

	"corbalc/internal/analysis/analysistest"
	"corbalc/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	// One batch, in dependency order: b and c import a, c imports b.
	// The a/b/c trio forms a cross-package cycle; d holds the
	// intra-package cases.
	analysistest.RunAll(t, lockorder.Analyzer, "a", "b", "c", "d", "e")
}

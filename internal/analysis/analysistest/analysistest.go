// Package analysistest runs an analyzer over fixture packages under a
// testdata directory and checks its diagnostics against expectations
// written in the fixture source, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a trailing comment of the form
//
//	// want "regexp"
//
// on the line the diagnostic must appear on. Multiple expectations on one
// line are written // want "re1" "re2". Lines without a want comment must
// produce no diagnostics.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"corbalc/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads testdata/src/<pkg> for each named fixture package, applies
// the analyzer, and reports mismatches through t. testdata is resolved
// relative to the test's working directory (the analyzer package dir).
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		RunAll(t, a, name)
	}
}

// RunAll loads every named fixture package into ONE driver batch and
// applies the analyzer to all of them together, so whole-program
// analyzers (Finish hooks, cross-package state) see the same shape they
// do in a real corbalc-lint run. Expectations are checked across the
// combined diagnostic set.
func RunAll(t *testing.T, a *analysis.Analyzer, names ...string) {
	t.Helper()
	loader := analysis.NewLoader()
	var loaded []*analysis.Package
	for _, name := range names {
		dir := filepath.Join("testdata", "src", name)
		pkg, err := loader.LoadDir(dir, name)
		if err != nil {
			t.Errorf("%s: load: %v", dir, err)
			continue
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", dir, terr)
		}
		// Later fixtures may import earlier ones by name; list them in
		// dependency order.
		loader.RegisterImport(pkg.PkgPath, pkg.Types)
		loaded = append(loaded, pkg)
	}
	if len(loaded) == 0 {
		return
	}
	diags := analysis.Run([]*analysis.Analyzer{a}, loaded)
	checkExpectations(t, loaded, diags)
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func checkExpectations(t *testing.T, pkgs []*analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	fset := pkgs[0].Fset // the loader shares one FileSet across packages
	// key: "file:line" -> pending expectations.
	wants := map[string][]*expectation{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					key := pos.Filename + ":" + itoa(pos.Line)
					for _, pat := range splitQuoted(m[1]) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Errorf("%s: bad want pattern %q: %v", key, pat, err)
							continue
						}
						wants[key] = append(wants[key], &expectation{re: re})
					}
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := pos.Filename + ":" + itoa(pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

// splitQuoted extracts the quoted strings from a want payload; both
// double quotes and backquotes delimit patterns, e.g. "a" `b` -> [a, b].
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexAny(s, "\"`")
		if i < 0 {
			return out
		}
		quote := s[i]
		s = s[i+1:]
		j := strings.IndexByte(s, quote)
		if j < 0 {
			return out
		}
		out = append(out, s[:j])
		s = s[j+1:]
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"corbalc/internal/analysis"
)

func TestLoadNonexistentPattern(t *testing.T) {
	_, err := analysis.Load("./no/such/dir/...")
	if err == nil {
		t.Fatal("Load of a nonexistent recursive pattern must error, not panic")
	}
	if _, err := analysis.Load("./no/such/dir"); err == nil {
		t.Fatal("Load of a nonexistent directory must error, not panic")
	}
}

func TestLoadOutsideModule(t *testing.T) {
	_, err := analysis.Load(t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "outside module") {
		t.Fatalf("Load outside the module must say so, got %v", err)
	}
}

func TestLoadDirSyntaxError(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc {\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := analysis.NewLoader().LoadDir(dir, "broken")
	if err == nil {
		t.Fatal("LoadDir of unparsable source must return the parse error, not panic")
	}
	if !strings.Contains(err.Error(), "broken.go") {
		t.Errorf("parse error should name the file: %v", err)
	}
}

func TestLoadDirRecordsTypeErrors(t *testing.T) {
	dir := t.TempDir()
	src := "package bad\n\nvar X NoSuchType\n"
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.NewLoader().LoadDir(dir, "bad")
	if err != nil {
		t.Fatalf("type errors must be recorded, not returned: %v", err)
	}
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("undefined type should be captured in TypeErrors")
	}
	if got := pkg.TypeErrors[0].Error(); !strings.Contains(got, "NoSuchType") {
		t.Errorf("type error should name the missing symbol: %s", got)
	}
}

func TestLoadDirEmptyDirectory(t *testing.T) {
	if _, err := analysis.NewLoader().LoadDir(t.TempDir(), "empty"); err == nil {
		t.Fatal("LoadDir of a directory with no Go files must error")
	}
}

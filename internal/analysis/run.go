package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Run applies every analyzer to every package, filters findings through
// //lint:ignore directives, and returns the surviving diagnostics in
// file/line order. Malformed directives (no analyzer name, or no reason)
// are themselves reported under the pseudo-analyzer "directive".
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores, bad := collectDirectives(pkg)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.PkgPath,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				if d.Analyzer == "" {
					d.Analyzer = a.Name
				}
				pos := pkg.Fset.Position(d.Pos)
				if ignores.matches(pos.Filename, pos.Line, d.Analyzer) {
					return
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := i, j
		return comparePos(pkgsPosition(pkgs, diags[pi].Pos), pkgsPosition(pkgs, diags[pj].Pos)) < 0
	})
	return diags
}

func pkgsPosition(pkgs []*Package, pos token.Pos) token.Position {
	if len(pkgs) == 0 {
		return token.Position{}
	}
	return pkgs[0].Fset.Position(pos)
}

func comparePos(a, b token.Position) int {
	if a.Filename != b.Filename {
		return strings.Compare(a.Filename, b.Filename)
	}
	return a.Offset - b.Offset
}

// ignoreSet records //lint:ignore directives as (file, line) -> analyzer
// names. A directive suppresses findings on its own line and on the line
// directly below it, matching the usual staticcheck placement.
type ignoreSet map[string]map[int][]string

func (s ignoreSet) matches(file string, line int, analyzer string) bool {
	lines := s[file]
	for _, l := range []int{line, line - 1} {
		for _, name := range lines[l] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

func (s ignoreSet) add(file string, line int, analyzer string) {
	if s[file] == nil {
		s[file] = map[int][]string{}
	}
	s[file][line] = append(s[file][line], analyzer)
}

// collectDirectives scans a package's comments for lint:ignore
// directives, returning the suppression set and diagnostics for
// malformed directives.
func collectDirectives(pkg *Package) (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "directive",
						Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				set.add(pos.Filename, pos.Line, fields[0])
			}
		}
	}
	return set, bad
}

// InspectFiles walks every file in the pass with fn, in source order.
func InspectFiles(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Batch is one analyzer's view of a whole Run invocation: every package
// in the batch flows through the analyzer's Run with the same Batch, so
// a whole-program analyzer (e.g. lockorder's cross-package lock graph)
// can accumulate State per package and conclude in Finish once all
// packages have been seen.
type Batch struct {
	// State is analyzer-owned accumulator storage, nil until the
	// analyzer sets it.
	State any
	// Report delivers a batch-scoped diagnostic, subject to the same
	// //lint:ignore filtering as per-package reports. Set by the driver.
	Report func(Diagnostic)
}

// Run applies every analyzer to every package, filters findings through
// //lint:ignore directives, and returns the surviving diagnostics in
// file/line order. Analyzers with a Finish hook get it called once after
// the last package. Malformed directives (no analyzer name, or no
// reason) and directives naming an analyzer not in this run are
// reported under the pseudo-analyzer "directive".
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	known := map[string]bool{"all": true, "directive": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ignores := ignoreSet{}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, collectDirectives(pkg, ignores, known)...)
	}
	report := func(a *Analyzer, fset *token.FileSet) func(Diagnostic) {
		return func(d Diagnostic) {
			if d.Analyzer == "" {
				d.Analyzer = a.Name
			}
			pos := fset.Position(d.Pos)
			if ignores.matches(pos.Filename, pos.Line, d.Analyzer) {
				return
			}
			diags = append(diags, d)
		}
	}
	for _, a := range analyzers {
		batch := &Batch{}
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.PkgPath,
				TypesInfo: pkg.Info,
				Batch:     batch,
			}
			pass.Report = report(a, pkg.Fset)
			batch.Report = pass.Report
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
		if a.Finish != nil && len(pkgs) > 0 {
			// Batch diagnostics position into the shared FileSet of the
			// last package (Load gives every package the same FileSet).
			batch.Report = report(a, pkgs[len(pkgs)-1].Fset)
			if err := a.Finish(batch); err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := i, j
		return comparePos(pkgsPosition(pkgs, diags[pi].Pos), pkgsPosition(pkgs, diags[pj].Pos)) < 0
	})
	return diags
}

func pkgsPosition(pkgs []*Package, pos token.Pos) token.Position {
	if len(pkgs) == 0 {
		return token.Position{}
	}
	return pkgs[0].Fset.Position(pos)
}

func comparePos(a, b token.Position) int {
	if a.Filename != b.Filename {
		return strings.Compare(a.Filename, b.Filename)
	}
	return a.Offset - b.Offset
}

// ignoreSet records //lint:ignore directives as (file, line) -> analyzer
// names. A directive suppresses findings on its own line and on the line
// directly below it, matching the usual staticcheck placement.
type ignoreSet map[string]map[int][]string

func (s ignoreSet) matches(file string, line int, analyzer string) bool {
	lines := s[file]
	for _, l := range []int{line, line - 1} {
		for _, name := range lines[l] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

func (s ignoreSet) add(file string, line int, analyzer string) {
	if s[file] == nil {
		s[file] = map[int][]string{}
	}
	s[file][line] = append(s[file][line], analyzer)
}

// collectDirectives scans a package's comments for lint:ignore
// directives, adding them to set and returning diagnostics for
// malformed ones: a missing analyzer name or reason, or a name not
// among the analyzers known to this run (a typo there would silently
// suppress nothing while looking audited).
func collectDirectives(pkg *Package, set ignoreSet, known map[string]bool) []Diagnostic {
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "directive",
						Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				if !known[fields[0]] {
					names := make([]string, 0, len(known))
					for name := range known {
						if name != "all" && name != "directive" {
							names = append(names, name)
						}
					}
					sort.Strings(names)
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "directive",
						Message: fmt.Sprintf("lint:ignore names unknown analyzer %q (known: %s)",
							fields[0], strings.Join(names, ", ")),
					})
					continue
				}
				set.add(pos.Filename, pos.Line, fields[0])
			}
		}
	}
	return bad
}

// InspectFiles walks every file in the pass with fn, in source order.
func InspectFiles(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}

// Package pub stands in for non-internal code — the corbalc facade,
// cmd/ and examples/ — where the context-less wrappers are the
// supported convenience surface and must NOT be flagged.
package pub

import (
	"corbalc/internal/dii"
	"corbalc/internal/orb"
)

// Good here: public-facing code may use the wrappers.
func fineInvoke(ref *orb.ObjectRef) error {
	return ref.Invoke("ping", nil, nil)
}

// Good here: likewise the oneway and liveness wrappers.
func fineOnewayExists(ref *orb.ObjectRef) (bool, error) {
	if err := ref.InvokeOneway("push", nil); err != nil {
		return false, err
	}
	return ref.Exists()
}

// Good here: and the DII convenience forms.
func fineDII(o *dii.Object) error {
	if _, err := o.Call("op"); err != nil {
		return err
	}
	if _, err := o.Get("size"); err != nil {
		return err
	}
	return o.Set("size", int32(1))
}

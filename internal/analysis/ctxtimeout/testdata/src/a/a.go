// Package a is the ctxtimeout fixture.
package a

import (
	"context"
	"net"
	"net/http"
	"time"
)

// Bad: plain dial blocks forever on a dead peer.
func badDial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `net\.Dial has no deadline`
}

// Bad: typed dial variants have no deadline either.
func badDialTCP(raddr *net.TCPAddr) (net.Conn, error) {
	return net.DialTCP("tcp", nil, raddr) // want `net\.DialTCP has no deadline`
}

// Bad: a zero Dialer literal is just net.Dial with extra steps.
func badDialerLit(addr string) (net.Conn, error) {
	return (&net.Dialer{KeepAlive: time.Second}).Dial("tcp", addr) // want `neither Timeout nor Deadline`
}

// Bad: http.DefaultClient has no timeout.
func badHTTPGet(url string) (*http.Response, error) {
	return http.Get(url) // want `deadline-free http\.DefaultClient`
}

// Good: explicit dial timeout.
func goodDialTimeout(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

// Good: Dialer literal with a bound.
func goodBoundedDialer(addr string) (net.Conn, error) {
	return (&net.Dialer{Timeout: 5 * time.Second}).Dial("tcp", addr)
}

// Good: context deadline travels with DialContext.
func goodDialContext(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// Good: a Dialer variable is assumed configured by its owner.
func goodDialerVar(d *net.Dialer, addr string) (net.Conn, error) {
	return d.Dial("tcp", addr)
}

// Good: a Client with Timeout.
func goodHTTPClient(url string) (*http.Response, error) {
	c := &http.Client{Timeout: 10 * time.Second}
	return c.Get(url)
}

// Suppressed: an acknowledged unbounded dial stays silent.
func suppressedDial(addr string) (net.Conn, error) {
	//lint:ignore ctxtimeout local loopback probe in tests, bounded by the harness
	return net.Dial("tcp", addr)
}

// Package b stands in for a corbalc/internal package: here the
// context-less invocation wrappers are off-limits, because internal
// callers sit on the invocation path and must propagate the caller's
// deadline and cancellation end-to-end.
package b

import (
	"context"

	"corbalc/internal/cdr"
	"corbalc/internal/dii"
	"corbalc/internal/orb"
)

// Bad: a context-less two-way call cannot carry a deadline.
func badInvoke(ref *orb.ObjectRef) error {
	return ref.Invoke("ping", nil, nil) // want `use InvokeContext`
}

// Bad: oneways still ride the connection and must be cancellable.
func badOneway(ref *orb.ObjectRef) error {
	return ref.InvokeOneway("push", nil) // want `use InvokeOnewayContext`
}

// Bad: liveness pings are exactly the calls that hang on dead peers.
func badExists(ref *orb.ObjectRef) (bool, error) {
	return ref.Exists() // want `use ExistsContext`
}

// Bad: the DII wrappers are wrappers too.
func badDIICall(o *dii.Object) (*dii.Result, error) {
	return o.Call("op") // want `use CallContext`
}

// Bad: attribute access is a remote call.
func badDIIGet(o *dii.Object) (any, error) {
	return o.Get("size") // want `use GetContext`
}

// Bad: so is attribute mutation.
func badDIISet(o *dii.Object) error {
	return o.Set("size", int32(1)) // want `use SetContext`
}

// Good: the context-aware forms are the internal surface.
func goodContextForms(ctx context.Context, ref *orb.ObjectRef, o *dii.Object) error {
	if err := ref.InvokeContext(ctx, "ping", nil, nil); err != nil {
		return err
	}
	if err := ref.InvokeOnewayContext(ctx, "push", nil); err != nil {
		return err
	}
	if _, err := ref.ExistsContext(ctx); err != nil {
		return err
	}
	if _, err := o.CallContext(ctx, "op"); err != nil {
		return err
	}
	if _, err := o.GetContext(ctx, "size"); err != nil {
		return err
	}
	return o.SetContext(ctx, "size", int32(2))
}

// Good: Servant.Invoke is the server-side dispatch interface, not the
// client wrapper — same method name, different receiver.
func goodServantDispatch(s orb.Servant, args *cdr.Decoder, reply *cdr.Encoder) error {
	return s.Invoke("ping", args, reply)
}

// Suppressed: an acknowledged context-less call stays silent.
func suppressedInvoke(ref *orb.ObjectRef) error {
	//lint:ignore ctxtimeout fire-and-forget shutdown notification, peer may already be gone
	return ref.Invoke("bye", nil, nil)
}

// Package ctxtimeout flags network operations that can block forever.
//
// The paper's node model assumes peers fail: the Network Cohesion
// service notices a vanished node by timeout, never by waiting. A dial
// with no deadline turns one crashed peer into a wedged caller thread —
// and, combined with a held registry lock, into a wedged node. The
// analyzer flags:
//
//   - net.Dial / net.DialTCP / net.DialUDP / net.DialIP / net.DialUnix
//     (use net.DialTimeout or a net.Dialer with Timeout/Deadline);
//   - (net.Dialer).Dial on a Dialer literal with neither Timeout nor
//     Deadline set (use DialContext or set a bound);
//   - http.Get / Head / Post / PostForm, which use the deadline-free
//     http.DefaultClient;
//   - the context-less invocation wrappers ObjectRef.Invoke /
//     InvokeOneway / Exists (internal/orb) and Object.Call / Get / Set
//     (internal/dii) when called from another internal package. The
//     wrappers exist for the public facade, cmd/, examples/ and tests;
//     inside internal/ every call rides a caller context so deadlines
//     and cancellation propagate end-to-end (use the ...Context forms).
package ctxtimeout

import (
	"go/ast"
	"go/types"
	"strings"

	"corbalc/internal/analysis"
)

// Analyzer is the ctxtimeout analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxtimeout",
	Doc:  "flag network dials without a deadline or context",
	Run:  run,
}

// unboundedDials are the package-level net dial variants with no
// deadline parameter.
var unboundedDials = map[string]bool{
	"Dial": true, "DialIP": true, "DialTCP": true, "DialUDP": true, "DialUnix": true,
}

// defaultClientCalls are net/http helpers bound to the deadline-free
// DefaultClient.
var defaultClientCalls = map[string]bool{
	"Get": true, "Head": true, "Post": true, "PostForm": true,
}

// ctxlessWrappers maps {package-path suffix, receiver type, method} of
// the context-less invocation wrappers to the context-aware primary an
// internal caller must use instead. Matching is by path suffix so the
// analyzer's own fixtures (loaded as "internal/...") hit the same code
// path as the real corbalc/internal packages.
var ctxlessWrappers = map[[3]string]string{
	{"internal/orb", "ObjectRef", "Invoke"}:       "InvokeContext",
	{"internal/orb", "ObjectRef", "InvokeOneway"}: "InvokeOnewayContext",
	{"internal/orb", "ObjectRef", "Exists"}:       "ExistsContext",
	{"internal/dii", "Object", "Call"}:            "CallContext",
	{"internal/dii", "Object", "Get"}:             "GetContext",
	{"internal/dii", "Object", "Set"}:             "SetContext",
}

func run(pass *analysis.Pass) error {
	internalCaller := strings.Contains(pass.PkgPath+"/", "internal/")
	analysis.InspectFiles(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := analysis.FuncOf(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		pkg, name := f.Pkg().Path(), f.Name()
		sig := f.Type().(*types.Signature)
		switch {
		case pkg == "net" && sig.Recv() == nil && unboundedDials[name]:
			pass.Reportf(call.Pos(),
				"net.%s has no deadline and can block forever on a dead peer; use net.DialTimeout or a net.Dialer with Timeout", name)
		case pkg == "net" && sig.Recv() != nil && name == "Dial" && isUnboundedDialerLit(call):
			pass.Reportf(call.Pos(),
				"net.Dialer literal has neither Timeout nor Deadline; set one or use DialContext")
		case pkg == "net/http" && sig.Recv() == nil && defaultClientCalls[name]:
			pass.Reportf(call.Pos(),
				"http.%s uses the deadline-free http.DefaultClient; use a Client with Timeout", name)
		case internalCaller && sig.Recv() != nil:
			recv := recvTypeName(sig)
			if ctx, ok := ctxlessWrappers[[3]string{pathSuffix(pkg), recv, name}]; ok {
				pass.Reportf(call.Pos(),
					"context-less %s.%s from an internal package drops deadline/cancellation propagation; use %s", recv, name, ctx)
			}
		}
		return true
	})
	return nil
}

// recvTypeName returns the name of a method's receiver type, stripping
// any pointer indirection ("" for anonymous receivers).
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// pathSuffix normalises a callee package path to its trailing
// internal/<pkg> segment, so "corbalc/internal/orb" and a fixture
// stand-in loaded as "internal/orb" compare equal.
func pathSuffix(pkg string) string {
	if i := strings.Index(pkg, "internal/"); i >= 0 {
		return pkg[i:]
	}
	return pkg
}

// isUnboundedDialerLit reports whether the receiver of a Dialer.Dial
// call is a net.Dialer composite literal that sets neither Timeout nor
// Deadline. Dialers held in variables are assumed configured elsewhere.
func isUnboundedDialerLit(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := ast.Unparen(sel.X)
	if u, ok := recv.(*ast.UnaryExpr); ok {
		recv = ast.Unparen(u.X)
	}
	lit, ok := recv.(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			// Positional Dialer literals set every field; treat as bounded.
			return false
		}
		if id, ok := kv.Key.(*ast.Ident); ok && (id.Name == "Timeout" || id.Name == "Deadline" || id.Name == "Cancel") {
			return false
		}
	}
	return true
}

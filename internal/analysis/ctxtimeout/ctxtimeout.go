// Package ctxtimeout flags network operations that can block forever.
//
// The paper's node model assumes peers fail: the Network Cohesion
// service notices a vanished node by timeout, never by waiting. A dial
// with no deadline turns one crashed peer into a wedged caller thread —
// and, combined with a held registry lock, into a wedged node. The
// analyzer flags:
//
//   - net.Dial / net.DialTCP / net.DialUDP / net.DialIP / net.DialUnix
//     (use net.DialTimeout or a net.Dialer with Timeout/Deadline);
//   - (net.Dialer).Dial on a Dialer literal with neither Timeout nor
//     Deadline set (use DialContext or set a bound);
//   - http.Get / Head / Post / PostForm, which use the deadline-free
//     http.DefaultClient.
package ctxtimeout

import (
	"go/ast"
	"go/types"

	"corbalc/internal/analysis"
)

// Analyzer is the ctxtimeout analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxtimeout",
	Doc:  "flag network dials without a deadline or context",
	Run:  run,
}

// unboundedDials are the package-level net dial variants with no
// deadline parameter.
var unboundedDials = map[string]bool{
	"Dial": true, "DialIP": true, "DialTCP": true, "DialUDP": true, "DialUnix": true,
}

// defaultClientCalls are net/http helpers bound to the deadline-free
// DefaultClient.
var defaultClientCalls = map[string]bool{
	"Get": true, "Head": true, "Post": true, "PostForm": true,
}

func run(pass *analysis.Pass) error {
	analysis.InspectFiles(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := analysis.FuncOf(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		pkg, name := f.Pkg().Path(), f.Name()
		sig := f.Type().(*types.Signature)
		switch {
		case pkg == "net" && sig.Recv() == nil && unboundedDials[name]:
			pass.Reportf(call.Pos(),
				"net.%s has no deadline and can block forever on a dead peer; use net.DialTimeout or a net.Dialer with Timeout", name)
		case pkg == "net" && sig.Recv() != nil && name == "Dial" && isUnboundedDialerLit(call):
			pass.Reportf(call.Pos(),
				"net.Dialer literal has neither Timeout nor Deadline; set one or use DialContext")
		case pkg == "net/http" && sig.Recv() == nil && defaultClientCalls[name]:
			pass.Reportf(call.Pos(),
				"http.%s uses the deadline-free http.DefaultClient; use a Client with Timeout", name)
		}
		return true
	})
	return nil
}

// isUnboundedDialerLit reports whether the receiver of a Dialer.Dial
// call is a net.Dialer composite literal that sets neither Timeout nor
// Deadline. Dialers held in variables are assumed configured elsewhere.
func isUnboundedDialerLit(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := ast.Unparen(sel.X)
	if u, ok := recv.(*ast.UnaryExpr); ok {
		recv = ast.Unparen(u.X)
	}
	lit, ok := recv.(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			// Positional Dialer literals set every field; treat as bounded.
			return false
		}
		if id, ok := kv.Key.(*ast.Ident); ok && (id.Name == "Timeout" || id.Name == "Deadline" || id.Name == "Cancel") {
			return false
		}
	}
	return true
}

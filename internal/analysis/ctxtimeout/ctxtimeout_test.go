package ctxtimeout_test

import (
	"testing"

	"corbalc/internal/analysis/analysistest"
	"corbalc/internal/analysis/ctxtimeout"
)

func TestCtxTimeout(t *testing.T) {
	analysistest.Run(t, ctxtimeout.Analyzer, "a")
}

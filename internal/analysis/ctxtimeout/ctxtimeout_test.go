package ctxtimeout_test

import (
	"testing"

	"corbalc/internal/analysis/analysistest"
	"corbalc/internal/analysis/ctxtimeout"
)

func TestCtxTimeout(t *testing.T) {
	// "internal/b" simulates a corbalc/internal caller (wrapper calls
	// flagged); "pub" simulates the public facade (wrappers allowed).
	analysistest.Run(t, ctxtimeout.Analyzer, "a", "pub", "internal/b")
}

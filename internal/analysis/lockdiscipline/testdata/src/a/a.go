// Package a is the lockdiscipline fixture: known-bad critical sections
// alongside known-good ones that must stay silent.
package a

import (
	"net"
	"sync"
	"time"
)

type registry struct {
	mu    sync.RWMutex
	peers map[string]string
	wg    sync.WaitGroup
	ch    chan string
}

// Bad: early return inside a manually released critical section.
func (r *registry) badEarlyReturn(k string) string {
	r.mu.Lock() // want `released manually but the critical section has 1 return path\(s\); use defer`
	if v, ok := r.peers[k]; ok {
		r.mu.Unlock()
		return v
	}
	r.mu.Unlock()
	return ""
}

// Bad: lock never released in this function.
func (r *registry) badLeak() {
	r.mu.Lock() // want `never released in this function`
	r.peers["x"] = "y"
}

// Bad: sleeping while the lock is held.
func (r *registry) badSleep() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time.Sleep while holding r\.mu\.Lock\(\)`
	r.mu.Unlock()
}

// Bad: blocking under a deferred release too — the lock spans the call.
func (r *registry) badDialUnderDefer() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	conn, err := net.Dial("tcp", "peer:9000") // want `call to net\.Dial while holding r\.mu\.Lock\(\)`
	if err != nil {
		return err
	}
	return conn.Close()
}

// Bad: reader locks follow the same rules.
func (r *registry) badReader() string {
	r.mu.RLock() // want `released manually but the critical section has 1 return path\(s\)`
	if len(r.peers) == 0 {
		r.mu.RUnlock()
		return ""
	}
	v := r.peers["x"]
	r.mu.RUnlock()
	return v
}

// Bad: waiting on a WaitGroup and touching channels under the lock.
func (r *registry) badWaitAndSend(v string) {
	r.mu.Lock()
	r.wg.Wait() // want `call to sync\.WaitGroup\.Wait while holding`
	r.ch <- v   // want `channel send while holding r\.mu\.Lock\(\)`
	<-r.ch      // want `channel receive while holding r\.mu\.Lock\(\)`
	r.mu.Unlock()
}

// Good: defer-released critical section with early returns.
func (r *registry) goodDefer(k string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.peers[k]; ok {
		return v
	}
	return ""
}

// Good: straight-line manual release with no return inside the section.
func (r *registry) goodManual(k, v string) {
	r.mu.Lock()
	r.peers[k] = v
	r.mu.Unlock()
}

// Good: snapshot under lock, block after releasing.
func (r *registry) goodSnapshotThenSend() {
	r.mu.RLock()
	v := r.peers["x"]
	r.mu.RUnlock()
	r.ch <- v
	time.Sleep(time.Millisecond)
}

// Good: two disjoint critical sections with a return between them must
// not be merged into one span.
func (r *registry) goodTwoSections(k string) string {
	r.mu.Lock()
	v := r.peers[k]
	r.mu.Unlock()
	if v != "" {
		return v
	}
	r.mu.Lock()
	r.peers[k] = "default"
	r.mu.Unlock()
	return "default"
}

// Good: release performed by a deferred closure.
func (r *registry) goodDeferredClosure(k string) string {
	r.mu.Lock()
	defer func() {
		delete(r.peers, k)
		r.mu.Unlock()
	}()
	if v, ok := r.peers[k]; ok {
		return v
	}
	return ""
}

// Good: blocking inside a goroutine does not hold the caller's lock.
func (r *registry) goodGoroutine() {
	r.mu.Lock()
	go func() {
		time.Sleep(time.Millisecond)
		r.ch <- "tick"
	}()
	r.mu.Unlock()
}

// Good: selects are exempt — they are assumed to carry timeout arms.
func (r *registry) goodSelect(v string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.ch <- v:
	default:
	}
}

// Good: sync.Cond.Wait is called with the lock held by design.
type condQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (q *condQueue) take() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		q.cond.Wait()
	}
	q.n--
}

// Suppressed: an acknowledged violation stays silent.
func (r *registry) suppressedSleep() {
	r.mu.Lock()
	//lint:ignore lockdiscipline fixture demonstrates an acknowledged wait under lock
	time.Sleep(time.Millisecond)
	r.mu.Unlock()
}

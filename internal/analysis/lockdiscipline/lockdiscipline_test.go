package lockdiscipline_test

import (
	"testing"

	"corbalc/internal/analysis/analysistest"
	"corbalc/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, lockdiscipline.Analyzer, "a")
}
